// The paper's running example: publishing flu statistics at multiple
// privacy levels (Introduction + Section 4.1).
//
// A health agency answers Q = "how many adults from San Diego contracted
// the flu this October?" and publishes it twice:
//   * an internal report for government executives (high accuracy,
//     alpha_1 = 0.25), and
//   * a public Internet version (high privacy, alpha_2 = 0.6),
// using Algorithm 1 so that even if the two audiences collude they learn
// no more than the internal report alone reveals.
//
// Run:  ./build/examples/flu_report

#include <cstdio>

#include "core/geopriv.h"

namespace {

int Run() {
  using namespace geopriv;

  // Synthetic survey population (substitute for the real survey data; the
  // mechanism only ever sees the true count, so this is behaviorally
  // faithful — see DESIGN.md §4).
  // Kept small because the demo also solves the per-consumer LP, whose
  // size grows as (n+1)^2 variables.
  SyntheticPopulationOptions options;
  options.num_rows = 20;
  Xoshiro256 rng(/*seed=*/42);
  Result<Table> population = GenerateSyntheticSurvey(options, rng);
  if (!population.ok()) {
    std::fprintf(stderr, "%s\n", population.status().ToString().c_str());
    return 1;
  }
  CountQuery q = FluCountQuery();
  Result<int64_t> truth = q.Evaluate(*population);
  if (!truth.ok()) return 1;
  const int n = static_cast<int>(population->size());
  std::printf("Q: %s\n", q.predicate().description().c_str());
  std::printf("population n = %d, true count = %lld (never published)\n\n",
              n, static_cast<long long>(*truth));

  // Two privacy levels, correlated via Algorithm 1.
  Result<MultiLevelRelease> release =
      MultiLevelRelease::Create(n, {0.25, 0.6});
  if (!release.ok()) {
    std::fprintf(stderr, "%s\n", release.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<int>> values =
      release->Release(static_cast<int>(*truth), rng);
  if (!values.ok()) return 1;
  std::printf("internal report  (alpha = 0.25): %d\n", (*values)[0]);
  std::printf("public Internet  (alpha = 0.60): %d\n", (*values)[1]);

  // Each consumer post-processes its release with its own loss function
  // and side information.  The government tracks the flu level (absolute
  // loss, no side information); per Theorem 1 its rational interaction
  // with the geometric release is optimal among ALL 0.25-DP mechanisms.
  Result<MinimaxConsumer> government = MinimaxConsumer::Create(
      LossFunction::AbsoluteError(), SideInformation::All(n));
  if (!government.ok()) return 1;
  Result<OptimalInteractionResult> gov_plan =
      SolveOptimalInteraction(release->StageMechanism(0), *government);
  if (!gov_plan.ok()) {
    std::fprintf(stderr, "%s\n", gov_plan.status().ToString().c_str());
    return 1;
  }
  Result<OptimalMechanismResult> gov_best =
      SolveOptimalMechanism(n, 0.25, *government);
  if (!gov_best.ok()) return 1;
  std::printf(
      "\ngovernment's minimax loss via rational interaction: %.6f\n",
      gov_plan->loss);
  std::printf("government's per-consumer LP optimum:              %.6f\n",
              gov_best->loss);
  std::printf("(equal, per Theorem 1 part 2)\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
