// Reprints the paper's concrete artifacts from library-computed objects:
// Table 1 (optimal mechanism / G_{3,1/4} / consumer interaction), Table 2
// (G and G' forms), and the Appendix B counterexample with its violated
// Theorem-2 triple.
//
// Run:  ./build/examples/paper_tables

#include <cstdio>

#include "core/geopriv.h"

namespace {

using namespace geopriv;

void PrintExact(const char* title, const RationalMatrix& m) {
  std::printf("%s\n%s\n", title, m.ToString().c_str());
}

int Run() {
  Table1Parameters params;  // n = 3, alpha = 1/4

  // --- Table 1 ------------------------------------------------------------
  std::printf("== Table 1 (n = 3, alpha = 1/4, l(i,r) = |i-r|, S = {0..3})"
              " ==\n\n");
  Result<MinimaxConsumer> consumer = MinimaxConsumer::Create(
      LossFunction::AbsoluteError(), SideInformation::All(params.n));
  if (!consumer.ok()) return 1;

  Result<OptimalMechanismResult> optimal =
      SolveOptimalMechanism(params.n, params.alpha.ToDouble(), *consumer);
  if (!optimal.ok()) return 1;
  std::printf("(a) optimal mechanism (LP of Sec 2.5), minimax loss %.6f:\n%s\n",
              optimal->loss, optimal->mechanism.ToString(5).c_str());

  Result<RationalMatrix> g =
      GeometricMechanism::BuildExactMatrix(params.n, params.alpha);
  if (!g.ok()) return 1;
  PrintExact("(b) G_{3,1/4} (exact):", *g);
  Rational scale = *Rational::Divide(Rational(1) + params.alpha,
                                     Rational(1) - params.alpha);
  PrintExact("(b') scaled by (1+a)/(1-a) = 5/3 — the form printed in the "
             "paper:",
             g->ScaledBy(scale));

  Result<Mechanism> deployed = Mechanism::FromExact(*g);
  if (!deployed.ok()) return 1;
  Result<OptimalInteractionResult> interaction =
      SolveOptimalInteraction(*deployed, *consumer);
  if (!interaction.ok()) return 1;
  std::printf("(c) consumer interaction (LP of Sec 2.4.3), induced loss "
              "%.6f:\n%s\n",
              interaction->loss, interaction->interaction.ToString(5).c_str());
  std::printf("paper-printed (c) for comparison:\n");
  Result<RationalMatrix> printed_t = PaperTable1cInteraction();
  if (!printed_t.ok()) return 1;
  std::printf("%s\n", printed_t->ToString().c_str());

  // --- Table 2 ------------------------------------------------------------
  std::printf("== Table 2 (matrix forms, n = 4, alpha = 1/3) ==\n\n");
  Rational third = *Rational::FromInts(1, 3);
  Result<RationalMatrix> g4 = GeometricMechanism::BuildExactMatrix(4, third);
  Result<RationalMatrix> gp4 = GeometricMechanism::BuildExactGPrime(4, third);
  if (!g4.ok() || !gp4.ok()) return 1;
  PrintExact("G_{4,1/3}:", *g4);
  PrintExact("G'_{4,1/3} (Toeplitz alpha^|i-j|):", *gp4);
  Result<Rational> det = GeometricMechanism::ExactGPrimeDeterminant(4, third);
  if (!det.ok()) return 1;
  std::printf("det G' = (1 - alpha^2)^4 = %s (Lemma 1)\n\n",
              det->ToString().c_str());

  // --- Appendix B ----------------------------------------------------------
  std::printf("== Appendix B: 1/2-DP mechanism NOT derivable from "
              "G_{3,1/2} ==\n\n");
  Result<RationalMatrix> m = PaperAppendixBMechanism();
  if (!m.ok()) return 1;
  PrintExact("M:", *m);
  Rational half = *Rational::FromInts(1, 2);
  Result<bool> dp = CheckDifferentialPrivacyExact(*m, half);
  Result<DerivabilityVerdict> verdict = CheckDerivabilityExact(*m, half);
  if (!dp.ok() || !verdict.ok()) return 1;
  std::printf("1/2-differentially private: %s\n", *dp ? "yes" : "no");
  std::printf("derivable from G_{3,1/2}:   %s\n",
              verdict->derivable ? "yes" : "no");
  std::printf("violated triple: column %d, center row %d, slack %.6f "
              "(= -1/12, the paper's -0.75/9)\n",
              verdict->column, verdict->row, verdict->slack);
  return 0;
}

}  // namespace

int main() { return Run(); }
