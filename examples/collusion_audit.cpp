// Collusion audit: why Algorithm 1's correlated noise matters.
//
// Two publication strategies for the same count at privacy levels
// alpha in {0.4, 0.5, 0.6, 0.7}:
//   (a) naive — independent geometric noise per level, and
//   (b) Algorithm 1 — a chained release where each less-trusted value is a
//       post-processing of the more-trusted one.
// Colluders average their values to estimate the truth.  Under (a) the
// average is a better estimator than any single release (privacy leaks);
// under (b) it is not (Lemma 4 / Theorem 1 part 1).
//
// Run:  ./build/examples/collusion_audit

#include <cstdio>
#include <vector>

#include "core/geopriv.h"

namespace {

int Run() {
  using namespace geopriv;

  const int n = 50;
  const int truth = 23;
  const std::vector<double> levels = {0.4, 0.5, 0.6, 0.7};
  const int kTrials = 60000;
  Xoshiro256 rng(/*seed=*/2026);

  // (a) Naive independent releases.
  std::vector<GeometricMechanism> independent;
  for (double a : levels) {
    Result<GeometricMechanism> g = GeometricMechanism::Create(n, a);
    if (!g.ok()) return 1;
    independent.push_back(*g);
  }
  double naive_mse_first = 0.0, naive_mse_avg = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    double first = 0.0, avg = 0.0;
    for (size_t j = 0; j < independent.size(); ++j) {
      Result<int> v = independent[j].Sample(truth, rng);
      if (!v.ok()) return 1;
      if (j == 0) first = *v;
      avg += *v;
    }
    avg /= static_cast<double>(independent.size());
    naive_mse_first += (first - truth) * (first - truth);
    naive_mse_avg += (avg - truth) * (avg - truth);
  }
  naive_mse_first /= kTrials;
  naive_mse_avg /= kTrials;

  // (b) Algorithm 1 chained release.
  Result<MultiLevelRelease> chained = MultiLevelRelease::Create(n, levels);
  if (!chained.ok()) {
    std::fprintf(stderr, "%s\n", chained.status().ToString().c_str());
    return 1;
  }
  double chain_mse_first = 0.0, chain_mse_avg = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    Result<std::vector<int>> values = chained->Release(truth, rng);
    if (!values.ok()) return 1;
    double first = (*values)[0], avg = 0.0;
    for (int v : *values) avg += v;
    avg /= static_cast<double>(values->size());
    chain_mse_first += (first - truth) * (first - truth);
    chain_mse_avg += (avg - truth) * (avg - truth);
  }
  chain_mse_first /= kTrials;
  chain_mse_avg /= kTrials;

  std::printf("collusion attack: average the %zu released values\n",
              levels.size());
  std::printf("(mean squared error vs the secret truth, %d trials)\n\n",
              kTrials);
  std::printf("%-28s %14s %14s %9s\n", "strategy", "best single", "colluded avg",
              "leak?");
  std::printf("%-28s %14.4f %14.4f %9s\n", "naive independent noise",
              naive_mse_first, naive_mse_avg,
              naive_mse_avg < 0.95 * naive_mse_first ? "YES" : "no");
  std::printf("%-28s %14.4f %14.4f %9s\n", "Algorithm 1 (chained)",
              chain_mse_first, chain_mse_avg,
              chain_mse_avg < 0.95 * chain_mse_first ? "YES" : "no");
  std::printf(
      "\nUnder Algorithm 1 the colluders' average does not beat the most\n"
      "accurate single release: the joint release is alpha_1-DP (Lemma 4).\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
