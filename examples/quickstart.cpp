// Quickstart: answer one count query with the geometric mechanism.
//
// This is the smallest end-to-end use of the library:
//   1. build a database and a count query,
//   2. deploy the α-geometric mechanism (Definition 4 of the paper),
//   3. release a perturbed count,
//   4. verify the differential-privacy guarantee programmatically.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/geopriv.h"

namespace {

int Run() {
  using namespace geopriv;

  // 1. A tiny medical table and the query "how many patients have the flu".
  Schema schema({{"name", Column::Type::kString},
                 {"has_flu", Column::Type::kBool}});
  Table table(schema);
  for (const auto& [name, flu] :
       std::initializer_list<std::pair<const char*, bool>>{
           {"ada", true}, {"bob", false}, {"cyd", true},
           {"dee", false}, {"eli", false}}) {
    Status s = table.Append({std::string(name), flu});
    if (!s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  CountQuery query(Predicate::Equals("has_flu", true));
  Result<int64_t> truth = query.Evaluate(table);
  if (!truth.ok()) return 1;
  const int n = static_cast<int>(table.size());
  std::printf("database size n = %d, true count = %lld\n", n,
              static_cast<long long>(*truth));

  // 2. Deploy the geometric mechanism at privacy level alpha = 0.5
  //    (equivalently epsilon = ln 2).
  const double alpha = 0.5;
  Result<GeometricMechanism> geo = GeometricMechanism::Create(n, alpha);
  if (!geo.ok()) return 1;

  // 3. Release a perturbed count.
  Xoshiro256 rng(/*seed=*/20260613);
  Result<int> released = geo->Sample(static_cast<int>(*truth), rng);
  if (!released.ok()) return 1;
  std::printf("released (perturbed) count at alpha = %.2f: %d\n", alpha,
              *released);

  // 4. Verify the guarantee on the full mechanism matrix.
  Result<Mechanism> mechanism = geo->ToMechanism();
  if (!mechanism.ok()) return 1;
  Result<PrivacyCheck> check = CheckDifferentialPrivacy(*mechanism, alpha);
  if (!check.ok()) return 1;
  std::printf("mechanism is %.2f-differentially private: %s\n", alpha,
              check->is_private ? "yes" : "NO (bug!)");
  std::printf("strongest alpha it satisfies: %.6f\n",
              StrongestAlpha(*mechanism));
  std::printf("\nmechanism matrix (rows = true count, cols = output):\n%s",
              mechanism->ToString().c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
