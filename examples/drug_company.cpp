// Example 1 from the paper: the drug company with side information.
//
// A drug company knows that l individuals bought its flu drug, so the true
// count of flu cases is at least l: side information S = {l..n}.  It cares
// about production planning, so its loss is the squared error.  This
// example shows how a rational minimax consumer exploits side information:
//   * taking the geometric release at face value is wasteful,
//   * the LP of Section 2.4.3 computes the optimal (randomized!)
//     reinterpretation,
//   * the resulting loss equals the per-consumer optimum (Theorem 1).
//
// Run:  ./build/examples/drug_company

#include <cstdio>

#include "core/geopriv.h"

namespace {

int Run() {
  using namespace geopriv;

  SyntheticPopulationOptions options;
  options.num_rows = 20;
  Xoshiro256 rng(/*seed=*/7);
  Result<Table> population = GenerateSyntheticSurvey(options, rng);
  if (!population.ok()) return 1;
  const int n = static_cast<int>(population->size());

  Result<int64_t> truth = FluCountQuery().Evaluate(*population);
  Result<int64_t> drug_sales = DrugPurchaseCountQuery().Evaluate(*population);
  if (!truth.ok() || !drug_sales.ok()) return 1;
  const int l = static_cast<int>(*drug_sales);
  std::printf("n = %d individuals; true flu count = %lld (secret)\n", n,
              static_cast<long long>(*truth));
  std::printf("drug company knows its own sales: l = %d, so S = {%d..%d}\n",
              l, l, n);

  const double alpha = 0.5;
  Result<GeometricMechanism> geo = GeometricMechanism::Create(n, alpha);
  if (!geo.ok()) return 1;
  Result<Mechanism> deployed = geo->ToMechanism();
  if (!deployed.ok()) return 1;

  Result<SideInformation> side = SideInformation::Interval(l, n, n);
  if (!side.ok()) return 1;
  Result<MinimaxConsumer> company =
      MinimaxConsumer::Create(LossFunction::SquaredError(), *side);
  if (!company.ok()) return 1;

  // Naive: accept the published value as-is.
  Result<double> naive_loss = company->WorstCaseLoss(*deployed);
  if (!naive_loss.ok()) return 1;

  // Rational: optimal randomized reinterpretation (Section 2.4.3 LP).
  Result<OptimalInteractionResult> rational =
      SolveOptimalInteraction(*deployed, *company);
  if (!rational.ok()) {
    std::fprintf(stderr, "%s\n", rational.status().ToString().c_str());
    return 1;
  }

  // The benchmark: the optimal alpha-DP mechanism tailored to the company
  // (Section 2.5 LP), which requires knowing its loss and side info.
  Result<OptimalMechanismResult> tailored =
      SolveOptimalMechanism(n, alpha, *company);
  if (!tailored.ok()) return 1;

  std::printf("\nminimax (worst-case over S) squared-error loss:\n");
  std::printf("  naive consumption of geometric release : %.6f\n",
              *naive_loss);
  std::printf("  rational interaction (Sec 2.4.3 LP)    : %.6f\n",
              rational->loss);
  std::printf("  tailored optimal mechanism (Sec 2.5 LP): %.6f\n",
              tailored->loss);
  std::printf(
      "\nTheorem 1: the rational interaction matches the tailored optimum\n"
      "without the publisher ever knowing the company's parameters.\n");

  // Show a slice of the randomized reinterpretation around l: outputs
  // below the company's lower bound are remapped inside S.
  std::printf("\nreinterpretation of low outputs (rows r=0..%d of T):\n",
              std::min(l + 1, n));
  for (int r = 0; r <= std::min(l + 1, n); ++r) {
    std::printf("  T[%2d]: ", r);
    for (int rp = 0; rp <= n; ++rp) {
      double v = rational->interaction.At(static_cast<size_t>(r),
                                          static_cast<size_t>(rp));
      if (v > 1e-9) std::printf("%d:%.3f ", rp, v);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
