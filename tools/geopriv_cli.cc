// geopriv — command-line front end for the library.
//
// Subcommands:
//   release    sample a geometric release for a true count
//   multilevel run Algorithm 1 at several privacy levels
//   optimal    solve the Section 2.5 LP and write the mechanism to a file
//   interact   solve the Section 2.4.3 LP against a saved mechanism
//   check      verify differential privacy of a saved mechanism
//   analyze    print error statistics of a saved mechanism
//   serve      run the mechanism service (JSONL over stdin or TCP)
//   query      one-shot client for the service's line protocol
//   metrics    fetch the service metrics registry (daemon or in-process)
//
// Example:
//   geopriv optimal --n 8 --alpha 0.5 --loss absolute --out mech.txt
//   geopriv check --file mech.txt --alpha 0.5
//   geopriv release --n 100 --alpha 0.5 --count 42 --seed 7
//   geopriv query --consumer alice --n 8 --alpha 1/2 --count 3 --seed 7

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/geopriv.h"
#include "core/io.h"
#include "service/server.h"
#include "service/service_flags.h"
#include "util/arg_parser.h"
#include "util/string_util.h"

namespace {

using namespace geopriv;

// Minimal --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int begin) {
    for (int i = begin; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        // A stray token in key position desynchronizes the pair walk and
        // silently drops every later flag; record it so the strict
        // subcommands can reject the whole line.
        if (stray_.empty()) stray_ = argv[i];
        continue;
      }
      values_[argv[i] + 2] = argv[i + 1];
      // A "value" that is itself a flag means the real value was
      // forgotten mid-line ("--consumer --n 8"): record the valueless
      // flag so the strict subcommands can reject the whole line.
      if (dangling_.empty() && std::strncmp(argv[i + 1], "--", 2) == 0) {
        dangling_ = argv[i] + 2;
      }
    }
    // A lone trailing flag pairs with nothing: the loop above advances two
    // tokens at a time, so an odd remainder whose last token is a flag
    // means its value was forgotten.
    if (dangling_.empty() && begin < argc && (argc - begin) % 2 == 1 &&
        std::strncmp(argv[argc - 1], "--", 2) == 0) {
      dangling_ = argv[argc - 1] + 2;
    }
  }

  /// A trailing flag with no value ("--persist<EOL>"), or empty.  Legacy
  /// subcommands tolerate it; the service subcommands treat it as fatal.
  const std::string& dangling() const { return dangling_; }

  /// A non-flag token found where a flag was expected, or empty.
  const std::string& stray() const { return stray_; }

  /// First provided key not in `allowed`, or empty.  Lets the service
  /// subcommands reject typoed flags ("--budgte") instead of silently
  /// running without them.
  std::string FirstUnknownKey(
      const std::vector<std::string>& allowed) const {
    for (const auto& [key, value] : values_) {
      bool known = false;
      for (const std::string& candidate : allowed) {
        if (key == candidate) {
          known = true;
          break;
        }
      }
      if (!known) return key;
    }
    return "";
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
  std::string dangling_;
  std::string stray_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<LossFunction> LossByName(const std::string& name) {
  if (name == "absolute") return LossFunction::AbsoluteError();
  if (name == "squared") return LossFunction::SquaredError();
  if (name == "zero-one" || name == "zeroone") return LossFunction::ZeroOne();
  return Status::InvalidArgument("unknown loss '" + name +
                                 "' (absolute|squared|zero-one)");
}

Result<MinimaxConsumer> ConsumerFromArgs(const Args& args, int n) {
  auto loss = LossByName(args.GetString("loss", "absolute"));
  if (!loss.ok()) return loss.status();
  int lo = args.GetInt("lo", 0);
  int hi = args.GetInt("hi", n);
  auto side = SideInformation::Interval(lo, hi, n);
  if (!side.ok()) return side.status();
  return MinimaxConsumer::Create(*loss, *side);
}

int CmdRelease(const Args& args) {
  int n = args.GetInt("n", 100);
  double alpha = args.GetDouble("alpha", 0.5);
  int count = args.GetInt("count", -1);
  if (count < 0) {
    return Fail(Status::InvalidArgument("--count is required"));
  }
  auto geo = GeometricMechanism::Create(n, alpha);
  if (!geo.ok()) return Fail(geo.status());
  Xoshiro256 rng(static_cast<uint64_t>(args.GetInt("seed", 1)));
  auto released = geo->Sample(count, rng);
  if (!released.ok()) return Fail(released.status());
  std::printf("%d\n", *released);
  return 0;
}

// Parses a comma-separated list like "0.3,0.5,0.8" (--alphas values).
std::vector<double> ParseDoubleList(const std::string& spec) {
  std::vector<double> values;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    values.push_back(std::atof(spec.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return values;
}

int CmdMultilevel(const Args& args) {
  int n = args.GetInt("n", 100);
  int count = args.GetInt("count", -1);
  if (count < 0) {
    return Fail(Status::InvalidArgument("--count is required"));
  }
  std::vector<double> alphas =
      ParseDoubleList(args.GetString("alphas", "0.3,0.6"));
  auto release = MultiLevelRelease::Create(n, alphas);
  if (!release.ok()) return Fail(release.status());
  Xoshiro256 rng(static_cast<uint64_t>(args.GetInt("seed", 1)));
  auto values = release->Release(count, rng);
  if (!values.ok()) return Fail(values.status());
  for (size_t level = 0; level < values->size(); ++level) {
    std::printf("alpha=%.3f released=%d\n", release->alpha(level),
                (*values)[level]);
  }
  return 0;
}

int CmdOptimal(const Args& args) {
  int n = args.GetInt("n", 8);
  double alpha = args.GetDouble("alpha", 0.5);
  auto consumer = ConsumerFromArgs(args, n);
  if (!consumer.ok()) return Fail(consumer.status());
  auto result = SolveOptimalMechanism(n, alpha, *consumer);
  if (!result.ok()) return Fail(result.status());
  std::printf("optimal minimax loss: %.9f (%d simplex pivots)\n",
              result->loss, result->lp_iterations);
  if (args.Has("out")) {
    Status s = SaveMechanism(result->mechanism, args.GetString("out", ""));
    if (!s.ok()) return Fail(s);
    std::printf("mechanism written to %s\n",
                args.GetString("out", "").c_str());
  } else {
    std::printf("%s", result->mechanism.ToString().c_str());
  }
  return 0;
}

int CmdSweep(const Args& args) {
  // The α family streams through one warm-started solver: each point's
  // optimal basis seeds the next (SolveOptimalMechanismSweep), so a dense
  // ε grid costs far less than per-point cold solves.
  int n = args.GetInt("n", 8);
  std::vector<double> alphas =
      ParseDoubleList(args.GetString("alphas", "0.3,0.5,0.7"));
  auto consumer = ConsumerFromArgs(args, n);
  if (!consumer.ok()) return Fail(consumer.status());
  auto results = SolveOptimalMechanismSweep(n, alphas, *consumer);
  if (!results.ok()) return Fail(results.status());
  std::printf("%8s %15s %8s\n", "alpha", "optimal-loss", "pivots");
  for (size_t k = 0; k < alphas.size(); ++k) {
    std::printf("%8.4f %15.9f %8d\n", alphas[k], (*results)[k].loss,
                (*results)[k].lp_iterations);
  }
  return 0;
}

int CmdInteract(const Args& args) {
  auto deployed = LoadMechanism(args.GetString("file", ""));
  if (!deployed.ok()) return Fail(deployed.status());
  auto consumer = ConsumerFromArgs(args, deployed->n());
  if (!consumer.ok()) return Fail(consumer.status());
  auto naive = consumer->WorstCaseLoss(*deployed);
  auto result = SolveOptimalInteraction(*deployed, *consumer);
  if (!naive.ok()) return Fail(naive.status());
  if (!result.ok()) return Fail(result.status());
  std::printf("naive loss:    %.9f\n", *naive);
  std::printf("rational loss: %.9f\n", result->loss);
  std::printf("interaction matrix:\n%s", result->interaction.ToString().c_str());
  return 0;
}

int CmdCheck(const Args& args) {
  auto mechanism = LoadMechanism(args.GetString("file", ""));
  if (!mechanism.ok()) return Fail(mechanism.status());
  double alpha = args.GetDouble("alpha", 0.5);
  auto check = CheckDifferentialPrivacy(*mechanism, alpha);
  if (!check.ok()) return Fail(check.status());
  std::printf("%.4f-differentially private: %s\n", alpha,
              check->is_private ? "yes" : "no");
  if (!check->is_private) {
    std::printf("violation at inputs (%d, %d), output %d, ratio %.6f\n",
                check->violation.input, check->violation.input + 1,
                check->violation.output, check->violation.ratio);
  }
  std::printf("strongest alpha satisfied: %.6f (epsilon = %.6f)\n",
              StrongestAlpha(*mechanism),
              EpsilonFromAlpha(StrongestAlpha(*mechanism)));
  return 0;
}

int CmdAnalyze(const Args& args) {
  auto mechanism = LoadMechanism(args.GetString("file", ""));
  if (!mechanism.ok()) return Fail(mechanism.status());
  MechanismSummary summary = Summarize(*mechanism);
  std::printf("n: %d\n", mechanism->n());
  std::printf("strongest alpha: %.6f\n", summary.strongest_alpha);
  std::printf("worst E|error|: %.6f\n", summary.worst_mean_abs_error);
  std::printf("worst E[error^2]: %.6f\n", summary.worst_mean_sq_error);
  std::printf("worst Pr[error]: %.6f\n", summary.worst_prob_error);
  std::printf("max |bias|: %.6f\n\n", summary.max_bias_magnitude);
  std::printf("%s",
              FormatRowErrorStats(ComputeRowErrorStats(*mechanism)).c_str());
  return 0;
}

// The service subcommands parse with the shared strict table
// (service/service_flags.h + util/arg_parser.h) instead of Args: a typoed
// or valueless --budget silently running with enforcement off is the
// exact failure the daemon's strict parser exists to prevent, and sharing
// the table with geopriv_serve means a new service flag lands here for
// free.  They take raw argv because ArgParser owns the walk.

int CmdServe(int argc, char** argv) {
  // The daemon loop lives in service/server.h; this subcommand is the same
  // process as `geopriv_serve`, reachable without a second binary.
  ServiceFlags flags;
  ArgParser parser;
  RegisterServiceFlags(&parser, &flags);
  Status parsed = parser.Parse(argc, argv, 2);
  if (!parsed.ok()) return Fail(parsed);
  Status armed = ArmConfiguredFaults(flags);
  if (!armed.ok()) return Fail(armed);
  MechanismService service(ToServiceOptions(flags));
  auto loaded = service.LoadPersisted();
  if (!loaded.ok()) return Fail(loaded.status());
  const Status status = parser.Provided("port")
                            ? ServeTcp(flags.port, service, std::cout)
                            : RunServeLoop(std::cin, std::cout, service);
  if (!status.ok()) return Fail(status);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  ServiceFlags service_flags;
  ArgParser parser;
  RegisterServiceFlags(&parser, &service_flags);
  std::string line, host = "127.0.0.1";
  std::string consumer = "cli", alpha = "1/2", loss = "absolute";
  std::string mode = "exact";
  int n = 8, lo = 0, hi = 0, count = 0, retries = 3, samples = 1;
  int64_t seed = 1;
  parser.AddString("line", &line, "raw protocol line, sent verbatim")
      .AddString("consumer", &consumer, "consumer identity for budgeting")
      .AddInt("n", &n, 0, 1 << 20, "count-query domain size")
      .AddString("alpha", &alpha, "privacy level (rational, e.g. 1/2)")
      .AddString("loss", &loss, "absolute|squared|zero-one")
      .AddInt("lo", &lo, 0, 1 << 20, "remap interval lower end")
      .AddInt("hi", &hi, 0, 1 << 20, "remap interval upper end (default n)")
      .AddString("mode", &mode, "exact|geometric")
      .AddInt("count", &count, 0, 1 << 20, "true count to release")
      .AddInt64("seed", &seed, 0, INT64_MAX, "per-request RNG stream seed")
      .AddInt("samples", &samples, 1, 4096,
              "draws from the one seeded stream, charged atomically as "
              "one K-fold composition; >1 replies \"released\":[...]")
      .AddString("host", &host, "daemon address (dotted IPv4)")
      .AddInt("retries", &retries, 1, 100,
              "TCP attempts incl. the first; backoff honors the server's "
              "retry_after_ms hint");
  Status parsed = parser.Parse(argc, argv, 2);
  if (!parsed.ok()) return Fail(parsed);
  // Build one protocol line from the flags (or take it verbatim).
  if (line.empty()) {
    line = "{\"op\":\"query\",\"consumer\":\"" + JsonEscape(consumer) +
           "\"" + ",\"n\":" + std::to_string(n) + ",\"alpha\":\"" +
           JsonEscape(alpha) + "\"" + ",\"loss\":\"" + JsonEscape(loss) +
           "\"" + ",\"lo\":" + std::to_string(lo) + ",\"hi\":" +
           std::to_string(parser.Provided("hi") ? hi : n) +
           ",\"mode\":\"" + JsonEscape(mode) + "\"" +
           ",\"count\":" + std::to_string(count) +
           ",\"seed\":" + std::to_string(seed);
    if (samples > 1) {
      // Only when requested: "samples":1 and an absent field are the
      // same protocol object, and omitting it keeps the line (and the
      // reply shape) byte-compatible with pre-PR-10 clients.
      line += ",\"samples\":" + std::to_string(samples);
    }
    if (parser.Provided("deadline-ms")) {
      line += ",\"deadline_ms\":" + std::to_string(service_flags.deadline_ms);
    }
    line += "}";
  }
  if (parser.Provided("port")) {
    // Client against a running daemon, with capped-backoff retries for
    // transient failures (connection refused/lost, shed replies).
    RetryOptions retry;
    retry.attempts = retries;
    retry.jitter_seed = static_cast<uint64_t>(seed);
    auto response =
        TcpRequestWithRetry(host, service_flags.port, line, retry);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", response->c_str());
    return 0;
  }
  // No daemon: answer in-process with a fresh (or persisted) service.
  Status armed = ArmConfiguredFaults(service_flags);
  if (!armed.ok()) return Fail(armed);
  MechanismService service(ToServiceOptions(service_flags));
  auto loaded = service.LoadPersisted();
  if (!loaded.ok()) return Fail(loaded.status());
  bool shutdown = false;
  std::printf("%s\n", service.HandleLine(line, &shutdown).c_str());
  Status persisted = service.Persist();
  if (!persisted.ok()) return Fail(persisted);
  return 0;
}

int CmdMetrics(int argc, char** argv) {
  ServiceFlags service_flags;
  ArgParser parser;
  RegisterServiceFlags(&parser, &service_flags);
  std::string host = "127.0.0.1", format = "json";
  int retries = 3;
  parser.AddString("host", &host, "daemon address (dotted IPv4)")
      .AddString("format", &format,
                 "json (the protocol's metrics op reply) | text "
                 "(Prometheus exposition; in-process only)")
      .AddInt("retries", &retries, 1, 100, "TCP attempts incl. the first");
  Status parsed = parser.Parse(argc, argv, 2);
  if (!parsed.ok()) return Fail(parsed);
  if (parser.Provided("port")) {
    // Against a daemon: the protocol op.  (For Prometheus text, scrape the
    // daemon's --metrics-port endpoint instead.)
    RetryOptions retry;
    retry.attempts = retries;
    auto response = TcpRequestWithRetry(host, service_flags.port,
                                        "{\"op\":\"metrics\"}", retry);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n", response->c_str());
    return 0;
  }
  // No daemon: read the registry of a fresh in-process service (after
  // LoadPersisted, so cache/ledger gauges reflect the persisted state).
  MechanismService service(ToServiceOptions(service_flags));
  auto loaded = service.LoadPersisted();
  if (!loaded.ok()) return Fail(loaded.status());
  if (format == "text") {
    std::printf("%s", service.MetricsText().c_str());
  } else {
    std::printf("%s\n", service.MetricsJson().c_str());
  }
  return 0;
}

void PrintUsage() {
  std::printf(
      "usage: geopriv <command> [--key value ...]\n"
      "\n"
      "commands:\n"
      "  release    --n N --alpha A --count C [--seed S]\n"
      "  multilevel --n N --alphas a1,a2,... --count C [--seed S]\n"
      "  optimal    --n N --alpha A [--loss absolute|squared|zero-one]\n"
      "             [--lo L --hi H] [--out FILE]\n"
      "  sweep      --n N --alphas a1,a2,... [--loss ...] [--lo L --hi H]\n"
      "             (warm-started: each point seeds the next solve)\n"
      "  interact   --file FILE [--loss ...] [--lo L --hi H]\n"
      "  check      --file FILE --alpha A\n"
      "  analyze    --file FILE\n"
      "  serve      [--budget B] [--shards K] [--threads T]\n"
      "             [--persist DIR] [--port P] [--deadline-ms D]\n"
      "             [--max-pending M] [--retry-after-ms R]\n"
      "             [--idle-timeout-ms I] [--cached-only 1] [--fault SPEC]\n"
      "             [--workers W] [--serial-accept 1]\n"
      "             (JSONL mechanism service; same flags as geopriv_serve)\n"
      "  query      --consumer C --n N --alpha A --count K [--seed S]\n"
      "             [--samples K]\n"
      "             [--loss ...] [--lo L --hi H] [--mode exact|geometric]\n"
      "             [--deadline-ms D] [--port P [--host H] [--retries R]]\n"
      "             (or --line '<raw json>')\n"
      "  metrics    [--port P [--host H] [--retries R]] [--format json|text]\n"
      "             [--persist DIR]\n"
      "             (registry snapshot: daemon op reply, or in-process)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "release") return CmdRelease(args);
  if (command == "multilevel") return CmdMultilevel(args);
  if (command == "optimal") return CmdOptimal(args);
  if (command == "sweep") return CmdSweep(args);
  if (command == "interact") return CmdInteract(args);
  if (command == "check") return CmdCheck(args);
  if (command == "analyze") return CmdAnalyze(args);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "metrics") return CmdMetrics(argc, argv);
  PrintUsage();
  return 1;
}
