// geopriv_serve — the mechanism service daemon.
//
// Speaks the JSONL protocol (docs/SERVICE.md) over stdin/stdout by
// default, or over a loopback TCP socket with --port.  One process owns
// the sharded solve cache, the privacy-budget ledger and the batched
// query pipeline; consumers drive it with one JSON object per line:
//
//   echo '{"op":"query","consumer":"alice","n":8,"alpha":"1/2",
//          "loss":"absolute","count":3,"seed":7}' | geopriv_serve
//
// Flags are the shared service table (service/service_flags.h), so
// geopriv_cli's serve/query subcommands accept the identical set; run
// with --help for the generated list.  Strict parsing: a daemon whose
// --budget typo silently became 0 would serve with privacy enforcement
// off, so malformed values are fatal.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "service/server.h"
#include "service/service_flags.h"
#include "util/arg_parser.h"

namespace {

using namespace geopriv;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceFlags flags;
  ArgParser parser;
  RegisterServiceFlags(&parser, &flags);
  if (argc == 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    std::printf("usage: geopriv_serve [--key value ...]\n%s",
                parser.Usage().c_str());
    return 0;
  }
  Status parsed = parser.Parse(argc, argv, 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\nusage: geopriv_serve [--key value ...]\n%s",
                 parsed.ToString().c_str(), parser.Usage().c_str());
    return 2;
  }
  Status armed = ArmConfiguredFaults(flags);
  if (!armed.ok()) return Fail(armed);

  MechanismService service(ToServiceOptions(flags));
  Result<int> loaded = service.LoadPersisted();
  if (!loaded.ok()) return Fail(loaded.status());
  const MechanismCache::Stats startup = service.cache().GetStats();
  if (*loaded > 0 || startup.quarantined > 0) {
    std::fprintf(stderr,
                 "geopriv_serve: reloaded %d cached mechanism(s) "
                 "(%llu warm-start bases, %llu quarantined)\n",
                 *loaded,
                 static_cast<unsigned long long>(startup.basis_warm_reloads),
                 static_cast<unsigned long long>(startup.quarantined));
  }

  const Status status = parser.Provided("port")
                            ? ServeTcp(flags.port, service, std::cout)
                            : RunServeLoop(std::cin, std::cout, service);
  if (!status.ok()) return Fail(status);
  return 0;
}
