// geopriv_serve — the mechanism service daemon.
//
// Speaks the JSONL protocol (docs/SERVICE.md) over stdin/stdout by
// default, or over a loopback TCP socket with --port.  One process owns
// the sharded solve cache, the privacy-budget ledger and the batched
// query pipeline; consumers drive it with one JSON object per line:
//
//   echo '{"op":"query","consumer":"alice","n":8,"alpha":"1/2",
//          "loss":"absolute","count":3,"seed":7}' | geopriv_serve
//
// Flags (all --key value):
//   --budget B     budget floor alpha_B in [0,1]; 0 disables (default 0)
//   --shards K     cache shard count (default 8)
//   --threads T    solver/sampling worker threads (default: GEOPRIV_THREADS)
//   --persist DIR  load cache entries from DIR at start, write them back
//                  at shutdown/EOF
//   --port P       serve TCP on 127.0.0.1:P instead of stdin (0 = pick a
//                  free port; the chosen port is announced on stdout)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "service/server.h"
#include "util/string_util.h"

namespace {

using namespace geopriv;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strict numeric parsing (util/string_util.h): a daemon whose --budget
  // typo silently became 0 would serve with privacy enforcement off, and
  // an out-of-range --port must not truncate into a different valid port,
  // so malformed values are fatal.
  ServiceOptions options;
  int port = -1;
  const auto usage = [](const char* problem, const char* flag) {
    std::fprintf(stderr,
                 "%s '%s'\n"
                 "usage: geopriv_serve [--budget B] [--shards K] "
                 "[--threads T] [--persist DIR] [--port P]\n",
                 problem, flag);
    return 2;
  };
  for (int i = 1; i < argc; i += 2) {
    const std::string key = argv[i];
    // A dangling flag (e.g. a forgotten --persist directory) must be an
    // error, not a silently dropped option — including mid-line, where
    // the "value" would otherwise swallow the next flag.
    if (i + 1 >= argc) return usage("flag needs a value:", key.c_str());
    const std::string value = argv[i + 1];
    if (value.rfind("--", 0) == 0) {
      return usage("flag needs a value:", key.c_str());
    }
    bool ok = true;
    int parsed = 0;
    if (key == "--budget") {
      // Range-checked: NaN and negatives would clamp to 0 in the ledger,
      // i.e. silently disable enforcement.
      ok = ParseDoubleStrict(value, &options.budget_alpha) &&
           options.budget_alpha >= 0.0 && options.budget_alpha <= 1.0;
    } else if (key == "--shards") {
      ok = ParseIntStrict(value, &parsed) && parsed > 0;
      options.shards = static_cast<size_t>(parsed);
    } else if (key == "--threads") {
      ok = ParseIntStrict(value, &options.threads);
    } else if (key == "--persist") {
      options.persist_dir = value;
    } else if (key == "--port") {
      ok = ParseIntStrict(value, &port) && port >= 0 && port <= 65535;
    } else {
      return usage("unknown flag", key.c_str());
    }
    if (!ok) return usage("malformed value for", key.c_str());
  }

  MechanismService service(options);
  Result<int> loaded = service.LoadPersisted();
  if (!loaded.ok()) return Fail(loaded.status());
  if (*loaded > 0) {
    std::fprintf(stderr, "geopriv_serve: reloaded %d cached mechanism(s)\n",
                 *loaded);
  }

  const Status status = port >= 0 ? ServeTcp(port, service, std::cout)
                                  : RunServeLoop(std::cin, std::cout, service);
  if (!status.ok()) return Fail(status);
  return 0;
}
