#!/usr/bin/env bash
# Builds and runs the full benchmark suite with fixed settings and
# consolidates every suite's JSON into BENCH_exact.json, so perf can be
# diffed across PRs.
#
# Usage:
#   tools/run_benches.sh [--large] [--compare SNAPSHOT] [bench_name ...]
#
#   --large        also run the expensive gated cases (exact LP at n=12/16,
#                  dense reference at n=8, double LP at n=20/24)
#   --compare F    after running, diff medians against the committed
#                  snapshot F (e.g. BENCH_exact.json) and exit nonzero if
#                  any shared benchmark regressed by more than 25% OR any
#                  snapshot benchmark of an executed suite is missing from
#                  the fresh results (a bench that silently disappears is
#                  a gate failure, not a pass).  On full runs (no explicit
#                  suite list) a snapshot suite with no fresh counterpart
#                  fails too.  The fresh results go to a scratch file, not
#                  over F.
#   bench_name     restrict to specific suites (default: all bench_* targets)
#
# Environment:
#   BUILD_DIR  (default: <repo>/build)
#   OUT_FILE   (default: <repo>/BENCH_exact.json)
#   GEOPRIV_BENCH_REPS / _WARMUP / _MIN_REP_MS / _BUDGET_MS are forwarded to
#   the harness (see bench/harness.h); the defaults below make runs
#   reproducible across machines of similar speed.
#
# All benchmark workloads use fixed RNG seeds internally, so reruns measure
# the same computation.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT_FILE="${OUT_FILE:-$ROOT/BENCH_exact.json}"
JSON_DIR="$BUILD_DIR/bench_json"

LARGE=""
COMPARE_FILE=""
SUITES=()
RUN_SUITES=()
expect_compare=0
for arg in "$@"; do
  if [ "$expect_compare" -eq 1 ]; then
    COMPARE_FILE="$arg"
    expect_compare=0
    continue
  fi
  case "$arg" in
    --large) LARGE="--large" ;;
    --compare) expect_compare=1 ;;
    --compare=*) COMPARE_FILE="${arg#--compare=}" ;;
    *) SUITES+=("$arg") ;;
  esac
done
if [ "$expect_compare" -eq 1 ]; then
  echo "--compare requires a snapshot file argument" >&2
  exit 2
fi
# Captured before the no-arg autofill below: the compare gate must know
# whether the CALLER restricted the suites (a full run flags snapshot
# suites that produced no fresh results; an explicit list does not).
EXPLICIT_SUITES="${#SUITES[@]}"
if [ -n "$COMPARE_FILE" ]; then
  if [ ! -f "$COMPARE_FILE" ]; then
    echo "snapshot not found: $COMPARE_FILE" >&2
    exit 2
  fi
  # Comparison runs must not clobber the committed snapshot they diff
  # against (unless the caller explicitly redirected OUT_FILE already).
  if [ "$(readlink -f "$COMPARE_FILE")" = "$(readlink -f "$OUT_FILE")" ]; then
    OUT_FILE="$BUILD_DIR/BENCH_compare.json"
  fi
fi

export GEOPRIV_BENCH_REPS="${GEOPRIV_BENCH_REPS:-7}"
export GEOPRIV_BENCH_WARMUP="${GEOPRIV_BENCH_WARMUP:-1}"
export GEOPRIV_BENCH_MIN_REP_MS="${GEOPRIV_BENCH_MIN_REP_MS:-20}"
export GEOPRIV_BENCH_BUDGET_MS="${GEOPRIV_BENCH_BUDGET_MS:-3000}"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench -j"$(nproc)"

if [ "${#SUITES[@]}" -eq 0 ]; then
  for bin in "$BUILD_DIR"/bench_*; do
    [ -x "$bin" ] && [ -f "$bin" ] && SUITES+=("$(basename "$bin")")
  done
fi

mkdir -p "$JSON_DIR"
for suite in "${SUITES[@]}"; do
  bin="$BUILD_DIR/$suite"
  if [ ! -x "$bin" ]; then
    if [ -n "$COMPARE_FILE" ]; then
      # In compare mode a requested suite with no binary is a gate
      # failure, not a skip — it is exactly the "bench silently
      # disappeared" case the comparison exists to catch.
      echo "requested suite has no binary: $suite" >&2
      exit 1
    fi
    echo "skipping unknown suite: $suite" >&2
    continue
  fi
  echo "== $suite"
  GEOPRIV_BENCH_JSON="$JSON_DIR/$suite.json" \
      "$bin" $LARGE > "$JSON_DIR/$suite.log" 2>&1 || {
    echo "   FAILED (see $JSON_DIR/$suite.log)" >&2
    exit 1
  }
  RUN_SUITES+=("$suite")
  tail -n +1 "$JSON_DIR/$suite.log" | grep -E "^# $suite" || true
done

shopt -s nullglob
JSON_FILES=("$JSON_DIR"/*.json)
shopt -u nullglob
if [ "${#JSON_FILES[@]}" -eq 0 ]; then
  echo "no suite JSON produced under $JSON_DIR; nothing to consolidate" >&2
  exit 1
fi

python3 - "$OUT_FILE" "${JSON_FILES[@]}" <<'PY'
import json, os, sys, datetime, platform

out_path, paths = sys.argv[1], sys.argv[2:]
suites = []
for path in sorted(paths):
    with open(path) as f:
        suites.append(json.load(f))

def cpu_model():
    # /proc/cpuinfo's "model name" where available; the throughput and
    # latency suites especially are meaningless without knowing what ran
    # them.
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"

def cpu_flags():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags"):
                    return set(line.split(":", 1)[1].split())
    except OSError:
        pass
    return set()

flags = cpu_flags()
consolidated = {
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "machine": platform.machine(),
    "cpu_count": os.cpu_count() or 0,
    "cpu_model": cpu_model(),
    # SIMD tiers the batched sampling kernel dispatches on: the
    # bench_sampling throughput entries are not comparable across
    # machines with different tiers (--compare warns on drift).
    "avx2": "avx2" in flags,
    "avx512": "avx512f" in flags and "avx512dq" in flags,
    # Whether the consolidated results include --large-gated cases.  This
    # must describe the merged CONTENT — per-suite JSON may be carried
    # over from an earlier --large run even when THIS invocation was not
    # --large — so it is derived from the suites' own flags (written by
    # bench/harness.h), not from this run's arguments.  The --compare
    # missing-case check keys off it so a non---large rerun is not blamed
    # for "losing" the gated cases.
    "large_run": any(s.get("large", False) for s in suites),
    "suites": suites,
}
with open(out_path, "w") as f:
    json.dump(consolidated, f, indent=2)
    f.write("\n")
total = sum(len(s.get("benchmarks", [])) for s in suites)
print(f"wrote {out_path}: {len(suites)} suites, {total} benchmarks")
PY

if [ -n "$COMPARE_FILE" ]; then
  # Only the suites executed by THIS invocation are diffed: $JSON_DIR may
  # hold leftover results from earlier runs (the consolidation above
  # deliberately merges them so partial reruns can refresh a snapshot in
  # place), and comparing stale data would mask real regressions.
  # EXPLICIT_SUITES (captured before the autofill) tells the checker
  # whether the caller restricted the run: on a full run, snapshot suites
  # that produced no fresh results at all (deleted binary, build break)
  # must fail the gate as well.
  python3 - "$COMPARE_FILE" "$OUT_FILE" "$EXPLICIT_SUITES" \
      "${RUN_SUITES[@]}" <<'PY'
import json, sys

THRESHOLD = 0.25  # fractional median slowdown tolerated before failing

snapshot_path, fresh_path = sys.argv[1], sys.argv[2]
explicit_suites = int(sys.argv[3]) > 0
ran_suites = set(sys.argv[4:])

def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for suite in data.get("suites", []):
        for b in suite.get("benchmarks", []):
            out[(suite.get("suite", "?"), b["name"])] = b["median_ms"]
    return out, data.get("large_run", False), data

base, base_large, base_meta = load(snapshot_path)
fresh, fresh_large, fresh_meta = load(fresh_path)

# Core-count drift is the most common reason a concurrency benchmark
# (load latency, service throughput) moves without a code change.  A
# differing count is a WARNING, not a failure: the 25% threshold below
# still decides, but the reader should know the machines differ.  Old
# snapshots without the field are skipped, not blamed.
base_cpus = base_meta.get("cpu_count")
fresh_cpus = fresh_meta.get("cpu_count")
if base_cpus and fresh_cpus and base_cpus != fresh_cpus:
    print(f"WARNING: snapshot was taken on {base_cpus} core(s) "
          f"({base_meta.get('cpu_model', 'unknown')}) but this run used "
          f"{fresh_cpus} ({fresh_meta.get('cpu_model', 'unknown')}); "
          f"concurrency benchmarks are not comparable across core counts",
          file=sys.stderr)
# SIMD-tier drift is the sampling-suite analogue of core-count drift: the
# batched kernel dispatches to the widest available tier, so its
# throughput entries move by integer factors when AVX2/AVX-512
# availability changes.  A WARNING, not a failure, like cpu_count above;
# old snapshots without the fields are skipped, not blamed.
for tier in ("avx2", "avx512"):
    base_tier = base_meta.get(tier)
    fresh_tier = fresh_meta.get(tier)
    if base_tier is not None and fresh_tier is not None \
            and base_tier != fresh_tier:
        print(f"WARNING: snapshot was taken with {tier}={base_tier} but "
              f"this run has {tier}={fresh_tier}; the batched sampling "
              f"benchmarks are not comparable across SIMD tiers",
              file=sys.stderr)
shared = sorted(k for k in set(base) & set(fresh)
                if not ran_suites or k[0] in ran_suites)
if not shared:
    print(f"no shared benchmarks between {snapshot_path} and {fresh_path} "
          f"for the suites run in this invocation", file=sys.stderr)
    sys.exit(2)

# A benchmark present in the snapshot but absent from a suite that DID run
# means the case silently disappeared (renamed, dropped, or no longer
# reached) — flag it instead of letting the gate pass by omission.  The
# per-case check only applies when this run's --large gating covers the
# snapshot's (a non---large rerun legitimately lacks the gated cases); the
# suite-level check below applies regardless.  On full runs, a snapshot
# suite with no fresh results at all is also a failure.
fresh_suites = {suite for suite, _ in fresh}
missing = []
if fresh_large or not base_large:
    missing = sorted(k for k in set(base) - set(fresh)
                     if k[0] in ran_suites and k[0] in fresh_suites)
else:
    print("note: snapshot includes --large cases but this run did not "
          "request them; per-case missing check skipped")
missing_suites = []
if not explicit_suites:
    missing_suites = sorted({suite for suite, _ in base}
                            - fresh_suites)

regressions = []
print(f"comparing {len(shared)} shared benchmarks against {snapshot_path} "
      f"(fail threshold: +{THRESHOLD:.0%} median)")
for key in shared:
    old, new = base[key], fresh[key]
    delta = (new - old) / old if old > 0 else 0.0
    flag = ""
    # Record()-ed throughput entries (SamplesPerSec*) store a
    # higher-is-better rate in the ms fields: a larger fresh value is an
    # improvement, so the slower-is-regression rule does not apply.
    # They still count for the missing-case checks above.
    informational = "SamplesPerSec" in key[1]
    if delta > THRESHOLD and not informational:
        regressions.append((key, old, new, delta))
        flag = "  <-- REGRESSION"
    unit = "samples/s (higher is better)" if informational else "ms"
    print(f"  {key[0]}/{key[1]}: {old:.6f} -> {new:.6f} {unit} "
          f"({delta:+.1%}){flag}")

failed = False
if missing:
    failed = True
    print(f"\n{len(missing)} snapshot benchmark(s) missing from the fresh "
          f"results of executed suites:", file=sys.stderr)
    for suite, name in missing:
        print(f"  {suite}/{name}", file=sys.stderr)
if missing_suites:
    failed = True
    print(f"\n{len(missing_suites)} snapshot suite(s) produced no fresh "
          f"results on this full run:", file=sys.stderr)
    for suite in missing_suites:
        print(f"  {suite}", file=sys.stderr)
if regressions:
    failed = True
    print(f"\n{len(regressions)} benchmark(s) regressed by more than "
          f"{THRESHOLD:.0%}:", file=sys.stderr)
    for (suite, name), old, new, delta in regressions:
        print(f"  {suite}/{name}: {old:.6f} -> {new:.6f} ms ({delta:+.1%})",
              file=sys.stderr)
if failed:
    sys.exit(1)
print("no regressions beyond threshold; no missing cases")
PY
fi
