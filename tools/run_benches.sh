#!/usr/bin/env bash
# Builds and runs the full benchmark suite with fixed settings and
# consolidates every suite's JSON into BENCH_exact.json, so perf can be
# diffed across PRs.
#
# Usage:
#   tools/run_benches.sh [--large] [bench_name ...]
#
#   --large        also run the expensive gated cases (exact LP at n=12/16,
#                  dense reference at n=8, double LP at n=20/24)
#   bench_name     restrict to specific suites (default: all bench_* targets)
#
# Environment:
#   BUILD_DIR  (default: <repo>/build)
#   OUT_FILE   (default: <repo>/BENCH_exact.json)
#   GEOPRIV_BENCH_REPS / _WARMUP / _MIN_REP_MS / _BUDGET_MS are forwarded to
#   the harness (see bench/harness.h); the defaults below make runs
#   reproducible across machines of similar speed.
#
# All benchmark workloads use fixed RNG seeds internally, so reruns measure
# the same computation.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT_FILE="${OUT_FILE:-$ROOT/BENCH_exact.json}"
JSON_DIR="$BUILD_DIR/bench_json"

LARGE=""
SUITES=()
for arg in "$@"; do
  case "$arg" in
    --large) LARGE="--large" ;;
    *) SUITES+=("$arg") ;;
  esac
done

export GEOPRIV_BENCH_REPS="${GEOPRIV_BENCH_REPS:-7}"
export GEOPRIV_BENCH_WARMUP="${GEOPRIV_BENCH_WARMUP:-1}"
export GEOPRIV_BENCH_MIN_REP_MS="${GEOPRIV_BENCH_MIN_REP_MS:-20}"
export GEOPRIV_BENCH_BUDGET_MS="${GEOPRIV_BENCH_BUDGET_MS:-3000}"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench -j"$(nproc)"

if [ "${#SUITES[@]}" -eq 0 ]; then
  for bin in "$BUILD_DIR"/bench_*; do
    [ -x "$bin" ] && [ -f "$bin" ] && SUITES+=("$(basename "$bin")")
  done
fi

mkdir -p "$JSON_DIR"
for suite in "${SUITES[@]}"; do
  bin="$BUILD_DIR/$suite"
  if [ ! -x "$bin" ]; then
    echo "skipping unknown suite: $suite" >&2
    continue
  fi
  echo "== $suite"
  GEOPRIV_BENCH_JSON="$JSON_DIR/$suite.json" \
      "$bin" $LARGE > "$JSON_DIR/$suite.log" 2>&1 || {
    echo "   FAILED (see $JSON_DIR/$suite.log)" >&2
    exit 1
  }
  tail -n +1 "$JSON_DIR/$suite.log" | grep -E "^# $suite" || true
done

shopt -s nullglob
JSON_FILES=("$JSON_DIR"/*.json)
shopt -u nullglob
if [ "${#JSON_FILES[@]}" -eq 0 ]; then
  echo "no suite JSON produced under $JSON_DIR; nothing to consolidate" >&2
  exit 1
fi

python3 - "$OUT_FILE" "${JSON_FILES[@]}" <<'PY'
import json, sys, datetime, platform

out_path, paths = sys.argv[1], sys.argv[2:]
suites = []
for path in sorted(paths):
    with open(path) as f:
        suites.append(json.load(f))
consolidated = {
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "machine": platform.machine(),
    "suites": suites,
}
with open(out_path, "w") as f:
    json.dump(consolidated, f, indent=2)
    f.write("\n")
total = sum(len(s.get("benchmarks", [])) for s in suites)
print(f"wrote {out_path}: {len(suites)} suites, {total} benchmarks")
PY
