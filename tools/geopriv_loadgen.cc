// geopriv_loadgen — open-loop load generator for a live geopriv_serve.
//
// Drives N concurrent connections against the daemon's TCP transport with
// Poisson arrivals at a fixed offered rate (the open-loop discipline that
// makes queueing delay visible — see service/loadgen.h), or with a
// closed-loop pipeline (--rate 0) to find the saturation throughput.
// Every request is a cached-signature query, so the numbers measure the
// transport and pipeline, not the LP solver.  Prints one flat JSON line:
//
//   geopriv_loadgen --port 45123 --connections 16 --rate 2000 \
//       --duration-ms 2000
//   {"connected":16,"sent":4003,"completed":4003,...,"p99_ms":1.9,...}
//
// CI's load-smoke job greps that line for completed > 0 and malformed ==
// 0 against a freshly started daemon.

#include <cstdio>
#include <cstring>
#include <string>

#include "service/loadgen.h"
#include "util/arg_parser.h"

namespace {

using namespace geopriv;

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 1;
  double rate = 0.0;
  int depth = 1;
  int64_t duration_ms = 2000;
  int64_t drain_ms = 2000;
  int64_t seed = 1;
  // The query the load is made of: n/alpha/loss pick the (cached)
  // signature, count is the true value, consumer the ledger account.
  int n = 5;
  std::string alpha = "1/2";
  std::string loss = "absolute";
  int count = 2;
  std::string consumer = "load";
  bool dump_histogram = false;

  ArgParser parser;
  parser.AddString("host", &host, "daemon address (dotted IPv4)");
  parser.AddInt("port", &port, 1, 65535, "daemon TCP port");
  parser.AddInt("connections", &connections, 1, 4096,
                "concurrent TCP connections");
  parser.AddDouble("rate", &rate, 0.0, 1e9,
                   "offered load, queries/second across all connections "
                   "(Poisson arrivals); 0 = closed-loop saturation");
  parser.AddInt("depth", &depth, 1, 4096,
                "closed-loop outstanding requests per connection");
  parser.AddInt64("duration-ms", &duration_ms, 1, 3600000,
                  "arrival-generation window");
  parser.AddInt64("drain-ms", &drain_ms, 0, 3600000,
                  "extra wait for outstanding replies after the window");
  parser.AddInt64("seed", &seed, 0, INT64_MAX,
                  "arrival-process and request-seed base");
  parser.AddInt("n", &n, 1, 1 << 20, "query signature: domain size");
  parser.AddString("alpha", &alpha, "query signature: privacy level");
  parser.AddString("loss", &loss, "query signature: loss function");
  parser.AddInt("count", &count, 0, 1 << 20, "query: true count");
  parser.AddString("consumer", &consumer, "query: ledger account");
  parser.AddBool("dump-histogram", &dump_histogram,
                 "also print the client-side latency histogram as a second "
                 "JSON line (log2 microsecond buckets, cumulative counts — "
                 "same buckets as the server's /metrics histograms)");

  if (argc == 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    std::printf("usage: geopriv_loadgen --port P [--key value ...]\n%s",
                parser.Usage().c_str());
    return 0;
  }
  Status parsed = parser.Parse(argc, argv, 1);
  if (!parsed.ok()) {
    std::fprintf(stderr,
                 "error: %s\nusage: geopriv_loadgen --port P "
                 "[--key value ...]\n%s",
                 parsed.ToString().c_str(), parser.Usage().c_str());
    return 2;
  }
  if (!parser.Provided("port")) {
    std::fprintf(stderr, "error: --port is required\n");
    return 2;
  }

  LoadOptions options;
  options.host = host;
  options.port = port;
  options.connections = connections;
  options.rate = rate;
  options.depth = depth;
  options.duration_ms = duration_ms;
  options.drain_ms = drain_ms;
  options.seed = static_cast<uint64_t>(seed);
  options.line_prefix = "{\"op\":\"query\",\"consumer\":\"" + consumer +
                        "\",\"n\":" + std::to_string(n) + ",\"alpha\":\"" +
                        alpha + "\",\"loss\":\"" + loss +
                        "\",\"count\":" + std::to_string(count) +
                        ",\"seed\":";

  Result<LoadStats> stats = RunLoad(options);
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", FormatLoadStats(*stats).c_str());
  if (dump_histogram) {
    std::printf("%s\n", FormatLatencyHistogram(*stats).c_str());
  }
  return 0;
}
