// Tests for exact rational arithmetic.

#include <gtest/gtest.h>

#include "exact/rational.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.ToString(), "0");
  EXPECT_EQ(r.denominator(), BigInt(1));
}

TEST(RationalTest, ReducesToLowestTerms) {
  auto r = Rational::FromInts(6, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "3/4");
  EXPECT_EQ(Rational::FromInts(-6, 8)->ToString(), "-3/4");
  EXPECT_EQ(Rational::FromInts(6, -8)->ToString(), "-3/4");
  EXPECT_EQ(Rational::FromInts(-6, -8)->ToString(), "3/4");
  EXPECT_EQ(Rational::FromInts(8, 4)->ToString(), "2");
  EXPECT_EQ(Rational::FromInts(0, 17)->ToString(), "0");
}

TEST(RationalTest, ZeroDenominatorFails) {
  EXPECT_FALSE(Rational::FromInts(1, 0).ok());
  EXPECT_FALSE(Rational::Create(BigInt(3), BigInt(0)).ok());
}

TEST(RationalTest, FromStringFormats) {
  EXPECT_EQ(Rational::FromString("3/4")->ToString(), "3/4");
  EXPECT_EQ(Rational::FromString("-10/5")->ToString(), "-2");
  EXPECT_EQ(Rational::FromString("7")->ToString(), "7");
  EXPECT_EQ(Rational::FromString("0.25")->ToString(), "1/4");
  EXPECT_EQ(Rational::FromString("-0.125")->ToString(), "-1/8");
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
  EXPECT_FALSE(Rational::FromString("1.").ok());
}

TEST(RationalTest, ArithmeticExact) {
  Rational third = *Rational::FromInts(1, 3);
  Rational half = *Rational::FromInts(1, 2);
  EXPECT_EQ((third + half).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((third * half).ToString(), "1/6");
  EXPECT_EQ(Rational::Divide(third, half)->ToString(), "2/3");
  EXPECT_EQ((-third).ToString(), "-1/3");
  EXPECT_EQ(third.Abs(), (-third).Abs());
}

TEST(RationalTest, SumOfThirdsIsExactlyOne) {
  Rational third = *Rational::FromInts(1, 3);
  EXPECT_EQ(third + third + third, Rational(1));
}

TEST(RationalTest, DivisionByZeroFails) {
  EXPECT_FALSE(Rational::Divide(Rational(1), Rational(0)).ok());
  EXPECT_FALSE(Rational(0).Inverse().ok());
  EXPECT_EQ(Rational(4).Inverse()->ToString(), "1/4");
}

TEST(RationalTest, PowPositiveAndNegative) {
  Rational half = *Rational::FromInts(1, 2);
  EXPECT_EQ(half.Pow(0)->ToString(), "1");
  EXPECT_EQ(half.Pow(3)->ToString(), "1/8");
  EXPECT_EQ(half.Pow(-2)->ToString(), "4");
  EXPECT_EQ((-half).Pow(2)->ToString(), "1/4");
  EXPECT_EQ((-half).Pow(3)->ToString(), "-1/8");
  EXPECT_FALSE(Rational(0).Pow(-1).ok());
  EXPECT_EQ(Rational(0).Pow(0)->ToString(), "1");
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  Rational a = *Rational::FromInts(1, 3);
  Rational b = *Rational::FromInts(2, 5);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_LT(-b, -a);
  EXPECT_LT(Rational(-1), Rational(0));
}

TEST(RationalTest, ToDoubleMatches) {
  EXPECT_DOUBLE_EQ(Rational::FromInts(1, 4)->ToDouble(), 0.25);
  EXPECT_DOUBLE_EQ(Rational::FromInts(-7, 2)->ToDouble(), -3.5);
}

TEST(RationalTest, FieldAxiomsRandomized) {
  Xoshiro256 rng(777);
  auto random_rational = [&rng]() {
    int64_t num = static_cast<int64_t>(rng.Next() % 2001) - 1000;
    int64_t den = static_cast<int64_t>(rng.Next() % 1000) + 1;
    return *Rational::FromInts(num, den);
  };
  for (int trial = 0; trial < 300; ++trial) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_TRUE((a - a).IsZero());
    if (!a.IsZero()) {
      EXPECT_EQ(a * *a.Inverse(), Rational(1));
    }
  }
}

TEST(RationalTest, LargeValuesStayExact) {
  // (2/3)^50 + (1/3)^50 computed exactly.
  Rational two_thirds = *Rational::FromInts(2, 3);
  Rational one_third = *Rational::FromInts(1, 3);
  Rational sum = *two_thirds.Pow(50) + *one_third.Pow(50);
  Rational expected = *Rational::Create(
      BigInt::Pow(BigInt(2), 50) + BigInt(1), BigInt::Pow(BigInt(3), 50));
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace geopriv
