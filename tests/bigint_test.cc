// Tests for BigInt: construction, string I/O, arithmetic, division
// (including randomized cross-checks against __int128), gcd and pow.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "exact/bigint.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
}

TEST(BigIntTest, Int64Construction) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, StringRoundTrip) {
  for (const char* text :
       {"0", "1", "-1", "999999999999999999999999999999",
        "-123456789012345678901234567890123456789", "7"}) {
    auto v = BigInt::FromString(text);
    ASSERT_TRUE(v.ok()) << text;
    EXPECT_EQ(v->ToString(), text);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
  EXPECT_TRUE(BigInt::FromString("+7").ok());
}

TEST(BigIntTest, ToInt64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, INT64_MAX,
                    INT64_MIN, int64_t{1} << 40}) {
    auto back = BigInt(v).ToInt64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(BigIntTest, ToInt64OverflowDetected) {
  BigInt big = BigInt::Pow(BigInt(2), 64);
  EXPECT_FALSE(big.ToInt64().ok());
  BigInt max_plus_one = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(max_plus_one.ToInt64().ok());
  BigInt min_val = BigInt(INT64_MIN);
  EXPECT_TRUE(min_val.ToInt64().ok());
  EXPECT_FALSE((min_val - BigInt(1)).ToInt64().ok());
}

TEST(BigIntTest, AdditionSubtractionSigns) {
  BigInt a(100), b(-30);
  EXPECT_EQ((a + b).ToString(), "70");
  EXPECT_EQ((b + a).ToString(), "70");
  EXPECT_EQ((a - b).ToString(), "130");
  EXPECT_EQ((b - a).ToString(), "-130");
  EXPECT_EQ((b + b).ToString(), "-60");
  EXPECT_TRUE((a - a).IsZero());
}

TEST(BigIntTest, MultiplicationCarries) {
  auto a = BigInt::FromString("123456789123456789");
  auto b = BigInt::FromString("987654321987654321");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a * *b).ToString(), "121932631356500531347203169112635269");
  EXPECT_EQ((*a * BigInt(0)).ToString(), "0");
  EXPECT_EQ((*a * BigInt(-1)).ToString(), "-123456789123456789");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt::Divide(BigInt(7), BigInt(2))->ToString(), "3");
  EXPECT_EQ(BigInt::Divide(BigInt(-7), BigInt(2))->ToString(), "-3");
  EXPECT_EQ(BigInt::Divide(BigInt(7), BigInt(-2))->ToString(), "-3");
  EXPECT_EQ(BigInt::Divide(BigInt(-7), BigInt(-2))->ToString(), "3");
  EXPECT_EQ(BigInt::Remainder(BigInt(7), BigInt(2))->ToString(), "1");
  EXPECT_EQ(BigInt::Remainder(BigInt(-7), BigInt(2))->ToString(), "-1");
}

TEST(BigIntTest, DivisionByZeroFails) {
  EXPECT_FALSE(BigInt::Divide(BigInt(1), BigInt(0)).ok());
  EXPECT_FALSE(BigInt::Remainder(BigInt(1), BigInt(0)).ok());
}

TEST(BigIntTest, LargeDivisionExact) {
  // (a*b)/b == a for multi-limb values.
  auto a = BigInt::FromString("340282366920938463463374607431768211456");
  auto b = BigInt::FromString("18446744073709551629");
  ASSERT_TRUE(a.ok() && b.ok());
  BigInt product = *a * *b;
  EXPECT_EQ(BigInt::Divide(product, *b)->ToString(), a->ToString());
  EXPECT_TRUE(BigInt::Remainder(product, *b)->IsZero());
}

TEST(BigIntTest, RandomizedDivModAgainstInt128) {
  Xoshiro256 rng(314159);
  for (int trial = 0; trial < 2000; ++trial) {
    // Random numerator up to 96 bits, denominator up to 48 bits.
    __int128 num = (static_cast<__int128>(rng.Next() >> 32) << 64) |
                   rng.Next();
    uint64_t den64 = (rng.Next() >> 16) | 1;  // avoid zero
    if (rng.Next() & 1) num = -num;
    __int128 den = den64;
    if (rng.Next() & 1) den = -den;

    auto to_string128 = [](__int128 v) {
      if (v == 0) return std::string("0");
      bool neg = v < 0;
      unsigned __int128 mag = neg ? -static_cast<unsigned __int128>(v)
                                  : static_cast<unsigned __int128>(v);
      std::string out;
      while (mag) {
        out.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
        mag /= 10;
      }
      if (neg) out.push_back('-');
      std::reverse(out.begin(), out.end());
      return out;
    };

    auto bn = BigInt::FromString(to_string128(num));
    auto bd = BigInt::FromString(to_string128(den));
    ASSERT_TRUE(bn.ok() && bd.ok());
    __int128 q = num / den;
    __int128 r = num % den;
    EXPECT_EQ(BigInt::Divide(*bn, *bd)->ToString(), to_string128(q));
    EXPECT_EQ(BigInt::Remainder(*bn, *bd)->ToString(), to_string128(r));
  }
}

TEST(BigIntTest, DivModIdentityProperty) {
  // num == q*den + r with |r| < |den| for random multi-limb inputs.
  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 500; ++trial) {
    BigInt num = BigInt(static_cast<int64_t>(rng.Next() >> 1)) *
                 BigInt(static_cast<int64_t>(rng.Next() >> 1)) *
                 BigInt(static_cast<int64_t>(rng.Next() >> 40) + 1);
    BigInt den = BigInt(static_cast<int64_t>(rng.Next() >> 20) + 1) *
                 BigInt(static_cast<int64_t>(rng.Next() >> 44) + 1);
    if (rng.Next() & 1) num = -num;
    if (rng.Next() & 1) den = -den;
    BigInt q = *BigInt::Divide(num, den);
    BigInt r = *BigInt::Remainder(num, den);
    EXPECT_EQ(q * den + r, num);
    EXPECT_TRUE(r.Abs() < den.Abs());
    if (!r.IsZero()) EXPECT_EQ(r.Sign(), num.Sign());
  }
}

TEST(BigIntTest, PowMatchesRepeatedMultiplication) {
  BigInt three(3);
  BigInt acc(1);
  for (uint64_t e = 0; e <= 40; ++e) {
    EXPECT_EQ(BigInt::Pow(three, e), acc) << "e=" << e;
    acc *= three;
  }
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).ToString(),
            "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 3).ToString(), "-8");
  EXPECT_EQ(BigInt::Pow(BigInt(0), 0).ToString(), "1");
}

TEST(BigIntTest, GcdProperties) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToString(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)).ToString(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(31)).ToString(), "1");
  // gcd divides both operands (randomized).
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    BigInt a(static_cast<int64_t>(rng.Next() >> 8));
    BigInt b(static_cast<int64_t>(rng.Next() >> 8));
    BigInt g = BigInt::Gcd(a, b);
    if (g.IsZero()) continue;
    EXPECT_TRUE(BigInt::Remainder(a, g)->IsZero());
    EXPECT_TRUE(BigInt::Remainder(b, g)->IsZero());
  }
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> sorted = {BigInt(-100), BigInt(-1), BigInt(0),
                                BigInt(1), BigInt(99),
                                *BigInt::FromString("123456789012345678901")};
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = 0; j < sorted.size(); ++j) {
      EXPECT_EQ(sorted[i] < sorted[j], i < j);
      EXPECT_EQ(sorted[i] == sorted[j], i == j);
      EXPECT_EQ(sorted[i] >= sorted[j], i >= j);
    }
  }
}

TEST(BigIntTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigInt(1000).ToDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-5).ToDouble(), -5.0);
  double big = BigInt::Pow(BigInt(10), 30).ToDouble();
  EXPECT_NEAR(big, 1e30, 1e16);
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(2).BitLength(), 2u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).BitLength(), 101u);
}

}  // namespace
}  // namespace geopriv
