// The mechanism service layer: sharded solve cache (hit/warm/cold paths,
// persistence), privacy-budget ledger (composition arithmetic must match
// core/accounting.h exactly), batched query pipeline (one solve per
// distinct signature, thread-count-independent sampling), and the JSONL
// protocol (parsing, formatting, malformed-input rejection).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/accounting.h"
#include "core/geometric.h"
#include "core/optimal_exact.h"
#include "rng/engine.h"
#include "service/server.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

MechanismSignature Sig(int n, const Rational& alpha,
                       const std::string& loss = "absolute",
                       ServeMode mode = ServeMode::kExactOptimal) {
  auto sig = MechanismSignature::Create(n, alpha, loss, 0, n, mode);
  EXPECT_TRUE(sig.ok()) << sig.status().ToString();
  return *sig;
}

// ---- signatures -------------------------------------------------------------

TEST(SignatureTest, CanonicalizesEquivalentSpellings) {
  MechanismSignature a = Sig(5, R(2, 4));          // reduces to 1/2
  MechanismSignature b = Sig(5, R(1, 2), "absolute");
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_EQ(a.CanonicalKey(),
            "mode=exact;n=5;side=0..5;loss=absolute;alpha=1/2");
  EXPECT_EQ(a.StructuralKey(), "mode=exact;n=5;side=0..5");
  // "zeroone" is the CLI spelling of "zero-one".
  EXPECT_EQ(Sig(5, R(1, 2), "zeroone").CanonicalKey(),
            Sig(5, R(1, 2), "zero-one").CanonicalKey());
  // Same structure, different alpha: shard key collides, map key differs.
  MechanismSignature c = Sig(5, R(2, 5));
  EXPECT_EQ(a.StructuralKey(), c.StructuralKey());
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
}

TEST(SignatureTest, RejectsMalformedProblems) {
  EXPECT_FALSE(
      MechanismSignature::Create(-1, R(1, 2), "absolute", 0, 0,
                                 ServeMode::kExactOptimal).ok());
  EXPECT_FALSE(MechanismSignature::Create(5, R(3, 2), "absolute", 0, 5,
                                          ServeMode::kExactOptimal).ok());
  EXPECT_FALSE(MechanismSignature::Create(5, R(1, 2), "huber", 0, 5,
                                          ServeMode::kExactOptimal).ok());
  EXPECT_FALSE(MechanismSignature::Create(5, R(1, 2), "absolute", 3, 2,
                                          ServeMode::kExactOptimal).ok());
  EXPECT_FALSE(MechanismSignature::Create(5, R(1, 2), "absolute", 0, 6,
                                          ServeMode::kExactOptimal).ok());
  // alpha == 1 has no geometric mechanism (but is a valid LP level).
  EXPECT_FALSE(MechanismSignature::Create(5, R(1), "absolute", 0, 5,
                                          ServeMode::kGeometric).ok());
  EXPECT_TRUE(MechanismSignature::Create(5, R(1), "absolute", 0, 5,
                                         ServeMode::kExactOptimal).ok());
}

TEST(SignatureTest, HashIsStableAcrossRuns) {
  // Persistence filenames and shard placement key off this value; it must
  // never drift with the standard library or the platform.
  EXPECT_EQ(SignatureHash(""), 1469598103934665603ULL);
  EXPECT_EQ(SignatureHash("mode=exact;n=5;side=0..5"),
            SignatureHash("mode=exact;n=5;side=0..5"));
  EXPECT_NE(SignatureHash("a"), SignatureHash("b"));
}

// ---- cache ------------------------------------------------------------------

TEST(MechanismCacheTest, HitReturnsBitIdenticalMechanismToColdSolve) {
  MechanismCache cache;
  const MechanismSignature sig = Sig(5, R(1, 2));

  // The reference answer: a plain cold solve outside the cache.
  auto reference = SolveOptimalMechanismExact(
      5, R(1, 2), ExactLossFunction::AbsoluteError(), SideInformation::All(5));
  ASSERT_TRUE(reference.ok());

  bool hit = true;
  auto first = cache.GetOrSolve(sig, &hit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_TRUE((*first)->exact == reference->matrix);       // operator==, exact
  EXPECT_TRUE((*first)->loss == reference->loss);

  auto second = cache.GetOrSolve(sig, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get());  // the same immutable entry
  EXPECT_TRUE((*second)->exact == reference->matrix);

  const MechanismCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // SolveUncached bypasses the cache but must agree bit-for-bit.
  auto uncached = cache.SolveUncached(sig);
  ASSERT_TRUE(uncached.ok());
  EXPECT_TRUE((*uncached)->exact == (*first)->exact);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(MechanismCacheTest, MissWarmStartsFromNearestCachedBasis) {
  MechanismCache cache;
  (void)cache.GetOrSolve(Sig(5, R(1, 5))).status();   // far neighbor
  (void)cache.GetOrSolve(Sig(5, R(9, 20))).status();  // near neighbor
  auto warm = cache.GetOrSolve(Sig(5, R(1, 2)));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE((*warm)->warm_started);
  // Every solve after the first found a structurally compatible neighbor.
  EXPECT_EQ(cache.GetStats().warm_starts, 2u);

  // Warm starts may land on a different (equally optimal) vertex, but the
  // optimal VALUE over Q is unique — and the result must be a genuine
  // mechanism for the signature.
  auto cold = cache.SolveUncached(Sig(5, R(1, 2)));
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE((*warm)->loss == (*cold)->loss);
  EXPECT_TRUE((*warm)->exact.IsRowStochastic());
}

TEST(MechanismCacheTest, GeometricModeServesClosedForm) {
  MechanismCache cache;
  const MechanismSignature sig =
      Sig(6, R(1, 3), "absolute", ServeMode::kGeometric);
  auto entry = cache.GetOrSolve(sig);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  auto expected = GeometricMechanism::BuildExactMatrix(6, R(1, 3));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE((*entry)->exact == *expected);
  EXPECT_EQ((*entry)->lp_iterations, 0);
  // The geometric mechanism can never beat the per-consumer LP optimum
  // (Theorem 1: it matches it only after the consumer's interaction).
  auto optimum = cache.GetOrSolve(Sig(6, R(1, 3)));
  ASSERT_TRUE(optimum.ok());
  EXPECT_TRUE((*optimum)->loss <= (*entry)->loss);
}

TEST(MechanismCacheTest, PersistsAndReloadsBitIdentically) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/geopriv_cache_test";
  fs::remove_all(dir);
  const MechanismSignature exact_sig = Sig(4, R(1, 2));
  const MechanismSignature geo_sig =
      Sig(6, R(1, 3), "squared", ServeMode::kGeometric);

  RationalMatrix original(0, 0);
  {
    MechanismCache cache;
    auto lp_entry = cache.GetOrSolve(exact_sig);
    ASSERT_TRUE(lp_entry.ok());
    original = (*lp_entry)->exact;
    ASSERT_TRUE(cache.GetOrSolve(geo_sig).ok());
    ASSERT_TRUE(cache.SaveToDirectory(dir).ok());
  }

  MechanismCache reloaded;
  auto loaded = reloaded.LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->loaded, 2);
  EXPECT_EQ(loaded->quarantined, 0);
  // The LP entry's basis came back with it, re-arming warm starts.
  EXPECT_EQ(loaded->basis_reloads, 1);
  EXPECT_EQ(reloaded.GetStats().basis_warm_reloads, 1u);
  bool hit = false;
  auto entry = reloaded.GetOrSolve(exact_sig, &hit);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(hit);  // no solve ran: the persisted entry answered
  EXPECT_TRUE((*entry)->exact == original);
  EXPECT_EQ(reloaded.GetStats().misses, 0u);

  // The two artifacts on disk: the LP entry has a .basis sidecar, the
  // geometric one does not.
  std::string exact_stem, geo_stem;
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (dirent.path().extension() == ".basis") {
      exact_stem = dirent.path().stem().string();
    }
  }
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (dirent.path().extension() == ".entry" &&
        dirent.path().stem().string() != exact_stem) {
      geo_stem = dirent.path().stem().string();
    }
  }
  ASSERT_FALSE(exact_stem.empty());
  ASSERT_FALSE(geo_stem.empty());

  // A file the manifest does not list is debris (a crashed publish or a
  // half-done eviction), removed on load — never adopted, never fatal.
  {
    std::ofstream bad(dir + "/deadbeef00000000.entry");
    bad << "geopriv-service-entry v1\nmode exact\nn 1\nlo 0\nhi 1\n"
           "loss absolute\nalpha 1/2\n"
           "geopriv-mechanism v2\nn 1\nrow 1/3 1/3\nrow 0 1\n";
  }
  {
    MechanismCache debris_tolerant;
    auto report = debris_tolerant.LoadFromDirectory(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->loaded, 2);
    EXPECT_EQ(report->quarantined, 0);
    EXPECT_GE(report->debris_removed, 1);
    EXPECT_FALSE(fs::exists(dir + "/deadbeef00000000.entry"));
  }

  // A corrupted basis sidecar (checksum mismatch) is quarantined; its
  // entry still loads and serves, just without a warm-start seed.
  {
    std::fstream basis(dir + "/" + exact_stem + ".basis",
                       std::ios::in | std::ios::out);
    basis.seekp(-2, std::ios::end);
    basis << 'X';
  }
  {
    MechanismCache basis_strict;
    auto report = basis_strict.LoadFromDirectory(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->loaded, 2);
    EXPECT_EQ(report->basis_reloads, 0);
    EXPECT_EQ(report->quarantined, 1);
    EXPECT_TRUE(basis_strict.Contains(exact_sig));
    EXPECT_FALSE(fs::exists(dir + "/" + exact_stem + ".basis"));
    EXPECT_TRUE(
        fs::exists(dir + "/quarantine/" + exact_stem + ".basis"));
  }

  // A manifested entry whose bytes are torn (truncated mid-matrix) is
  // quarantined, not served and not fatal; the surviving entry loads and
  // the lost one re-solves fresh as an ordinary miss.
  {
    const std::string path = dir + "/" + exact_stem + ".entry";
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    in.close();
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  {
    MechanismCache entry_strict;
    auto report = entry_strict.LoadFromDirectory(dir);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->loaded, 1);
    EXPECT_EQ(report->quarantined, 1);
    EXPECT_EQ(entry_strict.GetStats().quarantined, 1u);
    EXPECT_FALSE(entry_strict.Contains(exact_sig));
    EXPECT_TRUE(entry_strict.Contains(geo_sig));
    EXPECT_TRUE(
        fs::exists(dir + "/quarantine/" + exact_stem + ".entry"));
    // The quarantined signature re-solves fresh — and bit-identically.
    bool was_hit = true;
    auto resolved = entry_strict.GetOrSolve(exact_sig, &was_hit);
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    EXPECT_FALSE(was_hit);
    EXPECT_TRUE((*resolved)->exact == original);
  }
  fs::remove_all(dir);
}

TEST(MechanismCacheTest, QuarantinesTamperedEntriesOnAdoption) {
  // A store with no manifest (pre-manifest layout) is adopted, but every
  // file still re-validates from scratch.  Four corruption shapes, all
  // quarantined, none fatal, none served:
  //   - a matrix that fails structural validation,
  //   - a parseable matrix violating its signature's alpha-DP claim
  //     (serving the identity under alpha=1/2 would bill a plaintext
  //     oracle at level 1/2),
  //   - a geometric entry whose matrix is not G_{n,alpha},
  //   - a truncated alpha line (must not default to the vacuous alpha=0).
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/geopriv_cache_tampered";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string exact_key = Sig(1, R(1, 2)).CanonicalKey();
  const std::string geo_key =
      Sig(1, R(1, 2), "absolute", ServeMode::kGeometric).CanonicalKey();
  {
    std::ofstream bad(dir + "/deadbeef00000000.entry");
    bad << "geopriv-service-entry v1\nkey " << exact_key
        << "\nmode exact\nn 1\nlo 0\nhi 1\nloss absolute\nalpha 1/2\n"
           "geopriv-mechanism v2\nn 1\nrow 1/3 1/3\nrow 0 1\n";
  }
  {
    std::ofstream tampered(dir + "/deadbeef00000001.entry");
    tampered << "geopriv-service-entry v1\nkey " << exact_key
             << "\nmode exact\nn 1\nlo 0\nhi 1\nloss absolute\nalpha 1/2\n"
                "geopriv-mechanism v2\nn 1\nrow 1 0\nrow 0 1\n";
  }
  {
    std::ofstream wrong(dir + "/deadbeef00000002.entry");
    wrong << "geopriv-service-entry v1\nkey " << geo_key
          << "\nmode geometric\nn 1\nlo 0\nhi 1\nloss absolute\nalpha 1/2\n"
             "geopriv-mechanism v2\nn 1\nrow 1/2 1/2\nrow 1/2 1/2\n";
  }
  {
    std::ofstream truncated(dir + "/deadbeef00000003.entry");
    truncated << "geopriv-service-entry v1\nmode exact\nn 1\nlo 0\nhi 1\n"
                 "loss absolute\nalpha\n"
                 "geopriv-mechanism v2\nn 1\nrow 1 0\nrow 0 1\n";
  }
  MechanismCache strict;
  auto report = strict.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 0);
  EXPECT_EQ(report->quarantined, 4);
  EXPECT_EQ(strict.GetStats().entries, 0u);
  int preserved = 0;
  for (const auto& dirent : fs::directory_iterator(dir + "/quarantine")) {
    (void)dirent;
    ++preserved;
  }
  EXPECT_EQ(preserved, 4);
  // A second start sees a clean (now manifested) directory.
  MechanismCache again;
  auto second = again.LoadFromDirectory(dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->loaded, 0);
  EXPECT_EQ(second->quarantined, 0);
  fs::remove_all(dir);
}

TEST(MechanismCacheTest, ConcurrentGetOrSolveIsSafe) {
  // Hammer one cache from many threads: same signature (hit storms),
  // plus a second signature (cross-shard or same-shard miss).  Geometric
  // mode keeps each solve cheap; the interesting part is the locking,
  // which the CI ThreadSanitizer job runs this test under.
  MechanismCache cache;
  const MechanismSignature a =
      Sig(6, R(1, 3), "absolute", ServeMode::kGeometric);
  const MechanismSignature b =
      Sig(6, R(1, 2), "absolute", ServeMode::kGeometric);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        auto entry = cache.GetOrSolve((t + round) % 2 == 0 ? a : b);
        if (!entry.ok() || !(*entry)->exact.IsRowStochastic()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const MechanismCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits + stats.misses, 64u);
  EXPECT_EQ(stats.misses, 2u);  // each signature solved exactly once
}

// ---- budget ledger ----------------------------------------------------------

TEST(BudgetLedgerTest, CompositionMatchesComposeSequential) {
  BudgetLedger ledger(0.25);
  auto first = ledger.Charge("alice", 0.5);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->allowed);
  auto second = ledger.Charge("alice", 0.6);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->allowed);
  // The ledger's arithmetic IS ComposeSequential — exact double equality.
  EXPECT_EQ(second->composed_level, *ComposeSequential({0.5, 0.6}));
  EXPECT_EQ(ledger.Level("alice"), *ComposeSequential({0.5, 0.6}));

  // 0.3 * 0.5 = 0.15 < 0.25: rejected, reported exactly, NOT charged.
  auto third = ledger.Charge("alice", 0.5);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->allowed);
  EXPECT_EQ(third->composed_level, *ComposeSequential({0.5, 0.6, 0.5}));
  EXPECT_EQ(ledger.Level("alice"), *ComposeSequential({0.5, 0.6}));
  EXPECT_EQ(ledger.Releases("alice"), 2u);

  // Other consumers have independent budgets.
  auto bob = ledger.Charge("bob", 0.5);
  ASSERT_TRUE(bob.ok());
  EXPECT_TRUE(bob->allowed);
  EXPECT_EQ(ledger.Level("bob"), 0.5);

  EXPECT_FALSE(ledger.Charge("alice", 1.5).ok());  // not a level
}

TEST(BudgetLedgerTest, ChainedReleasesComposeByMin) {
  BudgetLedger ledger(0.0);
  ASSERT_TRUE(ledger.Charge("carol", 0.3, /*chained=*/true).ok());
  ASSERT_TRUE(ledger.Charge("carol", 0.5, /*chained=*/true).ok());
  // Lemma 4: the chain costs its most trusted level, not the product.
  EXPECT_EQ(ledger.Level("carol"), *ComposeChained({0.3, 0.5}));
  // An independent release multiplies on top of the chain's level.
  ASSERT_TRUE(ledger.Charge("carol", 0.5, /*chained=*/false).ok());
  EXPECT_EQ(ledger.Level("carol"),
            *ComposeSequential({0.5}) * *ComposeChained({0.3, 0.5}));
}

TEST(BudgetLedgerTest, PreviewDoesNotCharge) {
  BudgetLedger ledger(0.25);
  auto preview = ledger.Preview("dave", 0.5);
  ASSERT_TRUE(preview.ok());
  EXPECT_TRUE(preview->allowed);
  EXPECT_EQ(preview->composed_level, 0.5);
  EXPECT_EQ(ledger.Releases("dave"), 0u);
  EXPECT_EQ(ledger.Level("dave"), 1.0);
}

TEST(BudgetLedgerTest, RejectedChargesCreateNoAccountState) {
  // A stream of unique rejected consumer names must not grow the ledger
  // (and its persisted file) without bound.
  BudgetLedger ledger(0.5);
  for (int k = 0; k < 8; ++k) {
    auto rejected =
        ledger.Charge("ghost-" + std::to_string(k), 0.3);  // 0.3 < 0.5
    ASSERT_TRUE(rejected.ok());
    EXPECT_FALSE(rejected->allowed);
  }
  EXPECT_TRUE(ledger.Snapshot().empty());
  ASSERT_TRUE(ledger.Charge("real", 0.6).ok());
  EXPECT_EQ(ledger.Snapshot().size(), 1u);
}

// ---- pipeline ---------------------------------------------------------------

std::vector<ServiceQuery> RepeatedSignatureBatch(size_t count) {
  std::vector<ServiceQuery> batch;
  for (size_t q = 0; q < count; ++q) {
    ServiceQuery query;
    query.consumer = "load-" + std::to_string(q % 3);
    query.signature = q % 2 == 0
                          ? Sig(6, R(1, 3), "absolute", ServeMode::kGeometric)
                          : Sig(6, R(1, 2), "absolute", ServeMode::kGeometric);
    query.true_count = static_cast<int>(q % 7);
    query.seed = 1000 + q;
    batch.push_back(query);
  }
  return batch;
}

TEST(QueryPipelineTest, BatchSolvesEachSignatureOnce) {
  MechanismCache cache;
  QueryPipeline pipeline(&cache, nullptr, 1);
  const std::vector<ServiceReply> replies =
      pipeline.ExecuteBatch(RepeatedSignatureBatch(16));
  ASSERT_EQ(replies.size(), 16u);
  for (const ServiceReply& reply : replies) {
    EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
    EXPECT_GE(reply.released, 0);
  }
  // 16 queries, 2 distinct signatures: exactly 2 solves ran.
  EXPECT_EQ(cache.GetStats().misses, 2u);
  EXPECT_EQ(cache.GetStats().hits, 0u);
}

TEST(QueryPipelineTest, SamplingIsDeterministicForEveryThreadCount) {
  const std::vector<ServiceQuery> batch = RepeatedSignatureBatch(32);
  std::vector<int> serial_released;
  {
    MechanismCache cache;
    QueryPipeline pipeline(&cache, nullptr, 1);
    for (const ServiceReply& reply : pipeline.ExecuteBatch(batch)) {
      ASSERT_TRUE(reply.status.ok());
      serial_released.push_back(reply.released);
    }
  }
  for (int threads : {2, 8}) {
    MechanismCache cache;
    QueryPipeline pipeline(&cache, nullptr, threads);
    const std::vector<ServiceReply> replies = pipeline.ExecuteBatch(batch);
    for (size_t q = 0; q < batch.size(); ++q) {
      ASSERT_TRUE(replies[q].status.ok());
      EXPECT_EQ(replies[q].released, serial_released[q])
          << "threads=" << threads << " q=" << q;
    }
  }
  // The per-request seed fully determines each sample: drawing directly
  // from the mechanism with the same seed reproduces the pipeline.
  MechanismCache cache;
  auto entry = cache.GetOrSolve(batch[0].signature);
  ASSERT_TRUE(entry.ok());
  Xoshiro256 rng(batch[0].seed);
  auto direct = (*entry)->mechanism.Sample(batch[0].true_count, rng);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*direct, serial_released[0]);
}

TEST(QueryPipelineTest, OverBudgetQueriesAreRejectedWithComposedLevel) {
  MechanismCache cache;
  BudgetLedger ledger(0.25);
  QueryPipeline pipeline(&cache, &ledger, 1);
  std::vector<ServiceQuery> batch;
  for (int q = 0; q < 3; ++q) {
    ServiceQuery query;
    query.consumer = "eve";
    query.signature = Sig(6, R(1, 2), "absolute", ServeMode::kGeometric);
    query.true_count = 1;
    query.seed = 7 + static_cast<uint64_t>(q);
    batch.push_back(query);
  }
  const std::vector<ServiceReply> replies = pipeline.ExecuteBatch(batch);
  EXPECT_TRUE(replies[0].status.ok());   // level 1/2
  EXPECT_TRUE(replies[1].status.ok());   // level 1/4 == budget: admitted
  EXPECT_FALSE(replies[2].status.ok());  // level 1/8 < 1/4: rejected
  EXPECT_TRUE(replies[2].status.IsFailedPrecondition());
  EXPECT_EQ(replies[2].composed_level, *ComposeSequential({0.5, 0.5, 0.5}));
  EXPECT_EQ(replies[2].released, -1);  // nothing sampled, nothing leaked
  EXPECT_EQ(ledger.Level("eve"), 0.25);
}

TEST(QueryPipelineTest, OverBudgetConsumerCannotForceFreshSolves) {
  MechanismCache cache;
  BudgetLedger ledger(0.5);
  QueryPipeline pipeline(&cache, &ledger, 1);
  ASSERT_TRUE(ledger.Charge("mallory", 0.5).ok());  // now exactly at the floor

  ServiceQuery query;
  query.consumer = "mallory";
  query.signature = Sig(5, R(1, 2));  // uncached: would cost an exact solve
  query.true_count = 1;
  query.seed = 3;
  const std::vector<ServiceReply> replies = pipeline.ExecuteBatch({query});
  // Rejected for budget — and, crucially, WITHOUT running the solve: an
  // over-budget consumer must not be able to burn solver time for free.
  EXPECT_TRUE(replies[0].status.IsFailedPrecondition());
  EXPECT_STREQ(replies[0].cache, "skipped");
  EXPECT_EQ(cache.GetStats().misses, 0u);
  EXPECT_EQ(cache.GetStats().entries, 0u);

  // An already-cached signature is still looked up (lookups are free).
  ASSERT_TRUE(cache
                  .GetOrSolve(Sig(6, R(1, 2), "absolute",
                                  ServeMode::kGeometric))
                  .ok());
  ServiceQuery cached = query;
  cached.signature = Sig(6, R(1, 2), "absolute", ServeMode::kGeometric);
  const std::vector<ServiceReply> second = pipeline.ExecuteBatch({cached});
  EXPECT_TRUE(second[0].status.IsFailedPrecondition());
  EXPECT_STREQ(second[0].cache, "hit");
}

// ---- protocol ---------------------------------------------------------------

TEST(ProtocolTest, ParsesQueriesWithExactAlpha) {
  auto request = ParseRequestLine(
      "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":8,\"alpha\":\"1/3\","
      "\"loss\":\"zeroone\",\"lo\":2,\"hi\":6,\"count\":4,\"seed\":9,"
      "\"chained\":false,\"mode\":\"geometric\"}");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  ASSERT_EQ(static_cast<int>(request->op),
            static_cast<int>(ServiceOp::kQuery));
  const ServiceQuery& query = request->query;
  EXPECT_EQ(query.consumer, "alice");
  EXPECT_EQ(query.signature.n, 8);
  EXPECT_TRUE(query.signature.alpha == R(1, 3));
  EXPECT_EQ(query.signature.loss, "zero-one");
  EXPECT_EQ(query.signature.lo, 2);
  EXPECT_EQ(query.signature.hi, 6);
  EXPECT_EQ(query.true_count, 4);
  EXPECT_EQ(query.seed, 9u);
  // Client-declared chained accounting would be a budget bypass (min
  // instead of product for independent samples): refused at parse time.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":8,"
                   "\"alpha\":\"1/3\",\"count\":4,\"chained\":true}")
                   .ok());

  // A JSON number is parsed as an exact decimal: 0.3 means 3/10.
  auto decimal = ParseRequestLine(
      "{\"op\":\"query\",\"consumer\":\"c\",\"n\":4,\"alpha\":0.3,"
      "\"count\":1}");
  ASSERT_TRUE(decimal.ok()) << decimal.status().ToString();
  EXPECT_TRUE(decimal->query.signature.alpha == R(3, 10));
}

TEST(ProtocolTest, MalformedLinesAreRejected) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("not json").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"query\"}").ok());  // missing fields
  EXPECT_FALSE(ParseRequestLine("{\"op\":17}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"warp\"}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"ping\"} extra").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"ping\",\"op\":\"ping\"}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"ping\",\"x\":null}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"ping\",\"x\":[1]}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"ping\",\"x\":{\"y\":1}}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"op\":\"ping\",\"x\":\"\\q\"}").ok());
  // Bad query payloads fail signature validation, not just JSON parsing.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"op\":\"query\",\"consumer\":\"a\",\"n\":4,"
                   "\"alpha\":\"5/4\",\"count\":1}")
                   .ok());
}

TEST(ProtocolTest, OutOfRangeAndMistypedFieldsAreErrorsNotDefaults) {
  const std::string head =
      "{\"op\":\"query\",\"consumer\":\"a\",\"alpha\":\"1/2\"";
  // n=2^32+5 must not truncate into the valid problem n=5.
  EXPECT_FALSE(ParseRequestLine(head + ",\"n\":4294967301,\"count\":1}").ok());
  EXPECT_FALSE(ParseRequestLine(head + ",\"n\":-1,\"count\":0}").ok());
  // The n ceiling is per mode: what one entry materializes differs by
  // orders of magnitude between the exact LP and the geometric closed
  // form, and a huge geometric n would be a one-line OOM.
  EXPECT_FALSE(ParseRequestLine(head + ",\"n\":300,\"count\":1}").ok());
  EXPECT_TRUE(ParseRequestLine(
                  head + ",\"n\":300,\"count\":1,\"mode\":\"geometric\"}")
                  .ok());
  EXPECT_FALSE(ParseRequestLine(
                   head + ",\"n\":2000,\"count\":1,\"mode\":\"geometric\"}")
                   .ok());
  // count outside [0, n] is rejected at parse time (before any int cast).
  EXPECT_FALSE(
      ParseRequestLine(head + ",\"n\":4,\"count\":4294967297}").ok());
  EXPECT_FALSE(ParseRequestLine(head + ",\"n\":4,\"count\":-1}").ok());
  // A present-but-mistyped optional field is an error, never a default:
  // hi=3.7 must not silently serve the unrestricted mechanism, a string
  // seed must not silently become seed 1, chained="true" must not charge
  // product-composition.
  const std::string ok_head = head + ",\"n\":4,\"count\":1";
  EXPECT_TRUE(ParseRequestLine(ok_head + "}").ok());
  EXPECT_FALSE(ParseRequestLine(ok_head + ",\"hi\":3.7}").ok());
  EXPECT_FALSE(ParseRequestLine(ok_head + ",\"lo\":\"0\"}").ok());
  EXPECT_FALSE(ParseRequestLine(ok_head + ",\"seed\":\"7\"}").ok());
  EXPECT_FALSE(ParseRequestLine(ok_head + ",\"chained\":\"true\"}").ok());
  EXPECT_FALSE(ParseRequestLine(ok_head + ",\"mode\":7}").ok());
  EXPECT_FALSE(ParseRequestLine(ok_head + ",\"loss\":7}").ok());
}

TEST(ProtocolTest, EscapingRoundTripsThroughTheParser) {
  // Includes control characters (escaped as \uXXXX): a persisted ledger
  // whose consumer name the parser could not re-read would brick restart.
  const std::string raw = "a\"b\\c\nd\te\x08f\x01g";
  auto object = JsonObject::Parse("{\"k\":\"" + JsonEscape(raw) + "\"}");
  ASSERT_TRUE(object.ok()) << object.status().ToString();
  auto value = object->GetString("k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, raw);
  // Non-BMP-surrogate \u escapes decode to UTF-8; malformed ones fail.
  auto unicode = JsonObject::Parse("{\"k\":\"\\u00e9\\u20ac\"}");
  ASSERT_TRUE(unicode.ok());
  EXPECT_EQ(*unicode->GetString("k"), "\xc3\xa9\xe2\x82\xac");
  EXPECT_FALSE(JsonObject::Parse("{\"k\":\"\\u12\"}").ok());
  EXPECT_FALSE(JsonObject::Parse("{\"k\":\"\\uzzzz\"}").ok());
  EXPECT_FALSE(JsonObject::Parse("{\"k\":\"\\ud800\"}").ok());
}

// ---- service facade (in-process protocol sessions) --------------------------

TEST(MechanismServiceTest, ScriptedSessionEnforcesBudget) {
  ServiceOptions options;
  options.budget_alpha = 0.3;
  MechanismService service(options);
  bool shutdown = false;

  EXPECT_EQ(service.HandleLine("{\"op\":\"ping\"}", &shutdown),
            "{\"op\":\"ping\",\"ok\":true}");

  const std::string query =
      "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":5,\"alpha\":\"1/2\","
      "\"loss\":\"absolute\",\"count\":2,\"seed\":11}";
  const std::string first = service.HandleLine(query, &shutdown);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_NE(first.find("\"cache\":\"cold\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"level\":0.5"), std::string::npos) << first;

  // Second release composes to 1/4 < 0.3: rejected with the exact level.
  const std::string second = service.HandleLine(query, &shutdown);
  EXPECT_NE(second.find("\"ok\":false"), std::string::npos) << second;
  EXPECT_NE(second.find("FailedPrecondition"), std::string::npos) << second;
  EXPECT_NE(second.find("\"composed_level\":0.25"), std::string::npos)
      << second;
  EXPECT_NE(second.find("\"cache\":\"hit\""), std::string::npos) << second;

  const std::string budget = service.HandleLine(
      "{\"op\":\"budget\",\"consumer\":\"alice\"}", &shutdown);
  EXPECT_NE(budget.find("\"level\":0.5"), std::string::npos) << budget;
  EXPECT_NE(budget.find("\"releases\":1"), std::string::npos) << budget;

  EXPECT_FALSE(shutdown);
  const std::string bye =
      service.HandleLine("{\"op\":\"shutdown\"}", &shutdown);
  EXPECT_TRUE(shutdown);
  EXPECT_NE(bye.find("\"ok\":true"), std::string::npos);
}

TEST(MechanismServiceTest, BatchWindowBuffersAndExecutesInOrder) {
  MechanismService service;
  bool shutdown = false;
  EXPECT_NE(service.HandleLine("{\"op\":\"batch_begin\"}", &shutdown)
                .find("\"ok\":true"),
            std::string::npos);
  for (int q = 0; q < 3; ++q) {
    const std::string queued = service.HandleLine(
        "{\"op\":\"query\",\"consumer\":\"b\",\"n\":6,\"alpha\":\"1/3\","
        "\"mode\":\"geometric\",\"count\":" + std::to_string(q) +
            ",\"seed\":" + std::to_string(q + 40) + "}",
        &shutdown);
    EXPECT_NE(queued.find("\"op\":\"queued\""), std::string::npos);
    EXPECT_NE(queued.find("\"index\":" + std::to_string(q)),
              std::string::npos);
  }
  const std::string chunk =
      service.HandleLine("{\"op\":\"batch_end\"}", &shutdown);
  std::istringstream lines(chunk);
  std::string line;
  int replies = 0;
  while (std::getline(lines, line)) {
    if (line.find("\"op\":\"query\"") != std::string::npos) ++replies;
  }
  EXPECT_EQ(replies, 3);
  EXPECT_NE(chunk.find("\"batched\":3"), std::string::npos);
  // One distinct signature across the batch: exactly one solve.
  EXPECT_EQ(service.cache().GetStats().misses, 1u);
  // A second batch_end without a window is an error, not a crash.
  EXPECT_NE(service.HandleLine("{\"op\":\"batch_end\"}", &shutdown)
                .find("\"ok\":false"),
            std::string::npos);

  // Shutdown with an open window reports the aborted batch instead of
  // silently dropping queries that were already acknowledged as queued.
  (void)service.HandleLine("{\"op\":\"batch_begin\"}", &shutdown);
  (void)service.HandleLine(
      "{\"op\":\"query\",\"consumer\":\"b\",\"n\":6,\"alpha\":\"1/3\","
      "\"mode\":\"geometric\",\"count\":1,\"seed\":50}",
      &shutdown);
  const std::string bye =
      service.HandleLine("{\"op\":\"shutdown\"}", &shutdown);
  EXPECT_TRUE(shutdown);
  EXPECT_NE(bye.find("batch aborted by shutdown"), std::string::npos) << bye;
  EXPECT_NE(bye.find("\"op\":\"shutdown\",\"ok\":true"), std::string::npos)
      << bye;
}

TEST(MechanismServiceTest, LedgerPersistsAcrossRestarts) {
  // Spent budget must survive a daemon restart: a floor that resets with
  // the process would admit unbounded cumulative epsilon.
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/geopriv_ledger_persist";
  fs::remove_all(dir);
  ServiceOptions options;
  options.budget_alpha = 0.3;
  options.persist_dir = dir;
  const std::string query =
      "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":6,\"alpha\":\"1/2\","
      "\"mode\":\"geometric\",\"count\":2,\"seed\":5}";
  bool shutdown = false;
  {
    MechanismService service(options);
    ASSERT_TRUE(service.LoadPersisted().ok());
    const std::string first = service.HandleLine(query, &shutdown);
    EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
    (void)service.HandleLine("{\"op\":\"shutdown\"}", &shutdown);  // persists
  }
  {
    MechanismService service(options);
    auto loaded = service.LoadPersisted();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded, 1);  // the cache entry came back too
    EXPECT_EQ(service.ledger().Level("alice"), 0.5);
    // 0.5 * 0.5 = 0.25 < 0.3: the restart did not refill the budget.
    const std::string second = service.HandleLine(query, &shutdown);
    EXPECT_NE(second.find("\"ok\":false"), std::string::npos) << second;
    EXPECT_NE(second.find("\"composed_level\":0.25"), std::string::npos)
        << second;
  }
  fs::remove_all(dir);
}

TEST(MechanismServiceTest, ServeLoopRunsAScriptedSession) {
  std::istringstream in(
      "{\"op\":\"ping\"}\n"
      "\n"
      "{\"op\":\"query\",\"consumer\":\"s\",\"n\":6,\"alpha\":\"1/3\","
      "\"mode\":\"geometric\",\"count\":3,\"seed\":5}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"ping\"}\n");  // after shutdown: must not be processed
  std::ostringstream out;
  MechanismService service;
  ASSERT_TRUE(RunServeLoop(in, out, service).ok());
  const std::string transcript = out.str();
  EXPECT_NE(transcript.find("\"op\":\"ping\",\"ok\":true"),
            std::string::npos);
  EXPECT_NE(transcript.find("\"op\":\"query\",\"ok\":true"),
            std::string::npos);
  EXPECT_NE(transcript.find("\"entries\":1"), std::string::npos);
  EXPECT_NE(transcript.find("\"op\":\"shutdown\""), std::string::npos);
  // Exactly one ping response: the loop stopped at shutdown.
  EXPECT_EQ(transcript.find("\"op\":\"ping\""),
            transcript.rfind("\"op\":\"ping\""));
}

}  // namespace
}  // namespace geopriv
