// Tests for exact rational matrices: products, determinants, inverses,
// solves and stochasticity predicates.

#include <gtest/gtest.h>

#include "exact/rational_matrix.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

TEST(RationalMatrixTest, IdentityActsNeutrally) {
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(1), R(2), R(3), R(4)});
  RationalMatrix eye = RationalMatrix::Identity(2);
  EXPECT_EQ(a * eye, a);
  EXPECT_EQ(eye * a, a);
}

TEST(RationalMatrixTest, FromRowsValidatesShape) {
  EXPECT_FALSE(RationalMatrix::FromRows(2, 2, {R(1)}).ok());
  EXPECT_TRUE(RationalMatrix::FromRows(1, 3, {R(1), R(2), R(3)}).ok());
}

TEST(RationalMatrixTest, ProductMatchesHandComputation) {
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(1, 2), R(1, 2), R(1, 3), R(2, 3)});
  RationalMatrix b = *RationalMatrix::FromRows(
      2, 2, {R(1), R(0), R(1, 2), R(1, 2)});
  RationalMatrix c = a * b;
  EXPECT_EQ(c.At(0, 0), R(3, 4));
  EXPECT_EQ(c.At(0, 1), R(1, 4));
  EXPECT_EQ(c.At(1, 0), R(2, 3));
  EXPECT_EQ(c.At(1, 1), R(1, 3));
}

TEST(RationalMatrixTest, DeterminantClosedCases) {
  EXPECT_EQ(*RationalMatrix::Identity(4).Determinant(), R(1));
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(1), R(2), R(3), R(4)});
  EXPECT_EQ(*a.Determinant(), R(-2));
  RationalMatrix singular = *RationalMatrix::FromRows(
      2, 2, {R(1), R(2), R(2), R(4)});
  EXPECT_EQ(*singular.Determinant(), R(0));
  RationalMatrix rect(2, 3);
  EXPECT_FALSE(rect.Determinant().ok());
}

TEST(RationalMatrixTest, DeterminantMultiplicative) {
  Xoshiro256 rng(101);
  auto random_matrix = [&rng](size_t n) {
    RationalMatrix m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.At(i, j) = R(static_cast<int64_t>(rng.Next() % 11) - 5,
                       static_cast<int64_t>(rng.Next() % 4) + 1);
      }
    }
    return m;
  };
  for (int trial = 0; trial < 30; ++trial) {
    RationalMatrix a = random_matrix(4);
    RationalMatrix b = random_matrix(4);
    EXPECT_EQ(*(a * b).Determinant(), *a.Determinant() * *b.Determinant());
  }
}

TEST(RationalMatrixTest, InverseRoundTrip) {
  RationalMatrix a = *RationalMatrix::FromRows(
      3, 3,
      {R(2), R(1), R(0), R(1), R(3), R(1), R(0), R(1), R(2)});
  auto inv = a.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(a * *inv, RationalMatrix::Identity(3));
  EXPECT_EQ(*inv * a, RationalMatrix::Identity(3));
}

TEST(RationalMatrixTest, SingularInverseFails) {
  RationalMatrix s = *RationalMatrix::FromRows(
      2, 2, {R(1), R(2), R(2), R(4)});
  EXPECT_FALSE(s.Inverse().ok());
}

TEST(RationalMatrixTest, SolveIsExact) {
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(1, 3), R(1, 7), R(2, 5), R(3, 11)});
  RationalMatrix b = *RationalMatrix::FromRows(2, 1, {R(1), R(2)});
  auto x = a.Solve(b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(a * *x, b);
}

TEST(RationalMatrixTest, SolveNeedsMatchingShapes) {
  RationalMatrix a(2, 2);
  RationalMatrix b(3, 1);
  EXPECT_FALSE(a.Solve(b).ok());
  RationalMatrix rect(2, 3);
  EXPECT_FALSE(rect.Solve(b).ok());
}

TEST(RationalMatrixTest, SolveWithZeroPivotUsesRowSwap) {
  // a(0,0) == 0 forces pivoting.
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(0), R(1), R(1), R(0)});
  RationalMatrix b = *RationalMatrix::FromRows(2, 1, {R(5), R(7)});
  auto x = a.Solve(b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->At(0, 0), R(7));
  EXPECT_EQ(x->At(1, 0), R(5));
}

TEST(RationalMatrixTest, StochasticityPredicates) {
  RationalMatrix stochastic = *RationalMatrix::FromRows(
      2, 2, {R(1, 3), R(2, 3), R(1), R(0)});
  EXPECT_TRUE(stochastic.IsRowStochastic());
  EXPECT_TRUE(stochastic.IsGeneralizedRowStochastic());

  RationalMatrix generalized = *RationalMatrix::FromRows(
      2, 2, {R(3, 2), R(-1, 2), R(0), R(1)});
  EXPECT_FALSE(generalized.IsRowStochastic());  // negative entry
  EXPECT_TRUE(generalized.IsGeneralizedRowStochastic());

  RationalMatrix bad_sum = *RationalMatrix::FromRows(
      2, 2, {R(1, 2), R(1, 3), R(1), R(0)});
  EXPECT_FALSE(bad_sum.IsRowStochastic());
  EXPECT_FALSE(bad_sum.IsGeneralizedRowStochastic());
}

TEST(RationalMatrixTest, StochasticGroupClosure) {
  // Product of stochastic matrices is stochastic; inverse of a nonsingular
  // generalized stochastic matrix is generalized stochastic (Poole 1995,
  // cited by the paper's Theorem 2 proof).
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(3, 4), R(1, 4), R(1, 2), R(1, 2)});
  RationalMatrix b = *RationalMatrix::FromRows(
      2, 2, {R(1, 5), R(4, 5), R(2, 5), R(3, 5)});
  EXPECT_TRUE((a * b).IsRowStochastic());
  auto inv = a.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(inv->IsGeneralizedRowStochastic());
}

TEST(RationalMatrixTest, TransposeAndScale) {
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 3, {R(1), R(2), R(3), R(4), R(5), R(6)});
  RationalMatrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_EQ(at.At(2, 1), R(6));
  RationalMatrix scaled = a.ScaledBy(R(1, 2));
  EXPECT_EQ(scaled.At(0, 1), R(1));
  EXPECT_EQ(scaled.At(1, 2), R(3));
}

TEST(RationalMatrixTest, AdditionSubtraction) {
  RationalMatrix a = *RationalMatrix::FromRows(2, 2,
                                               {R(1), R(2), R(3), R(4)});
  RationalMatrix b = *RationalMatrix::FromRows(
      2, 2, {R(1, 2), R(1, 2), R(1, 2), R(1, 2)});
  RationalMatrix sum = a + b;
  EXPECT_EQ(sum.At(0, 0), R(3, 2));
  EXPECT_EQ((sum - b), a);
}

TEST(RationalMatrixTest, ToDoublesPreservesLayout) {
  RationalMatrix a = *RationalMatrix::FromRows(
      2, 2, {R(1, 4), R(3, 4), R(1), R(0)});
  std::vector<double> d = a.ToDoubles();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 0.75);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(d[3], 0.0);
}

}  // namespace
}  // namespace geopriv
