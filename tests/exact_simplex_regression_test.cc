// Regression tests pinning the fraction-free exact simplex to the dense
// Rational reference engine (the seed implementation): both engines follow
// the same Bland pivot order, so objective, per-variable values and the
// iteration count must be bit-identical — not merely equal as reals.

#include <gtest/gtest.h>

#include <string>

#include "core/optimal_exact.h"
#include "lp/exact_simplex.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

// The production Section 2.5 optimal-mechanism LP over Q (alpha = 1/2,
// absolute loss, S = {0..n}) — the same model SolveOptimalMechanismExact
// solves, so the regression gate covers exactly what production runs.
ExactLpProblem OptimalMechanismLp(int n) {
  auto lp = BuildOptimalMechanismLpExact(n, R(1, 2),
                                         ExactLossFunction::AbsoluteError(),
                                         SideInformation::All(n));
  EXPECT_TRUE(lp.ok());
  return *std::move(lp);
}

void ExpectIdenticalSolutions(const ExactLpProblem& lp,
                              const std::string& label) {
  // Pin Bland's rule: the bit-identity guarantee between the engines is a
  // property of the fully deterministic reference rule (Devex consults
  // floating-point magnitude keys whose rounding may differ between the
  // integer and rational tableau representations).
  ExactSimplexOptions ff_options;
  ff_options.engine = ExactPivotEngine::kFractionFree;
  ff_options.rule = PivotRule::kBland;
  ExactSimplexOptions dense_options;
  dense_options.engine = ExactPivotEngine::kDenseRational;
  dense_options.rule = PivotRule::kBland;
  ExactSimplexSolver fraction_free(ff_options);
  ExactSimplexSolver dense(dense_options);
  auto ff = fraction_free.Solve(lp);
  auto dn = dense.Solve(lp);
  ASSERT_TRUE(ff.ok()) << label;
  ASSERT_TRUE(dn.ok()) << label;
  EXPECT_EQ(ff->status, dn->status) << label;
  EXPECT_EQ(ff->iterations, dn->iterations) << label;
  if (ff->status != LpStatus::kOptimal) return;
  // Bit-identical: canonical numerator and denominator strings must match,
  // not just the rational values.
  EXPECT_EQ(ff->objective.ToString(), dn->objective.ToString()) << label;
  ASSERT_EQ(ff->values.size(), dn->values.size()) << label;
  for (size_t j = 0; j < ff->values.size(); ++j) {
    EXPECT_EQ(ff->values[j].ToString(), dn->values[j].ToString())
        << label << " variable " << j;
  }
}

TEST(ExactSimplexRegressionTest, OptimalMechanismLpsMatchDenseReference) {
  for (int n : {2, 4, 8}) {
    ExpectIdenticalSolutions(OptimalMechanismLp(n),
                             "optimal-mechanism n=" + std::to_string(n));
  }
}

TEST(ExactSimplexRegressionTest, KnownOptimaUnchanged) {
  // The n = 2, 4 Section 2.5 optima as solved by the seed dense engine.
  ExactSimplexSolver solver;
  auto s2 = solver.Solve(OptimalMechanismLp(2));
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s2->status, LpStatus::kOptimal);
  EXPECT_EQ(s2->objective.ToString(), "4/7");
  auto s4 = solver.Solve(OptimalMechanismLp(4));
  ASSERT_TRUE(s4.ok());
  ASSERT_EQ(s4->status, LpStatus::kOptimal);
  EXPECT_EQ(s4->objective.ToString(), "36/43");
}

TEST(ExactSimplexRegressionTest, InfeasibleMatchesDenseReference) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x, R(1)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(2), {{x, R(1)}});
  ExpectIdenticalSolutions(lp, "infeasible");
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kInfeasible);
}

TEST(ExactSimplexRegressionTest, UnboundedMatchesDenseReference) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(-1));
  lp.AddConstraint(RowRelation::kGreaterEqual, R(1), {{x, R(1)}});
  ExpectIdenticalSolutions(lp, "unbounded");
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kUnbounded);
}

TEST(ExactSimplexRegressionTest, FractionalDataMatchesDenseReference) {
  // Fractional costs/rhs force nontrivial row denominators in the
  // fraction-free tableau.
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1, 3));
  int y = lp.AddVariable("y", R(-2, 5));
  lp.AddConstraint(RowRelation::kLessEqual, R(7, 2),
                   {{x, R(2, 3)}, {y, R(1, 4)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(-1, 6),
                   {{x, R(-1, 2)}, {y, R(5, 7)}});
  lp.AddConstraint(RowRelation::kEqual, R(3, 4),
                   {{x, R(1, 5)}, {y, R(1, 8)}});
  ExpectIdenticalSolutions(lp, "fractional");
}

}  // namespace
}  // namespace geopriv
