// Tests for the Bayesian-consumer baseline (Section 2.7 / Ghosh et al.).

#include <gtest/gtest.h>

#include <vector>

#include "core/bayesian.h"
#include "core/geometric.h"
#include "core/privacy.h"

namespace geopriv {
namespace {

TEST(BayesianConsumerTest, CreateValidatesPrior) {
  LossFunction l = LossFunction::AbsoluteError();
  EXPECT_FALSE(BayesianConsumer::Create(l, {}).ok());
  EXPECT_FALSE(BayesianConsumer::Create(l, {0.5, 0.4}).ok());  // sums to .9
  EXPECT_FALSE(BayesianConsumer::Create(l, {1.5, -0.5}).ok());
  EXPECT_TRUE(BayesianConsumer::Create(l, {0.25, 0.75}).ok());
  auto uniform = BayesianConsumer::WithUniformPrior(l, 4);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->n(), 4);
  EXPECT_DOUBLE_EQ(uniform->prior()[2], 0.2);
}

TEST(BayesianConsumerTest, ExpectedLossOfUniformMechanism) {
  auto c =
      BayesianConsumer::WithUniformPrior(LossFunction::AbsoluteError(), 2);
  ASSERT_TRUE(c.ok());
  // Uniform mechanism over {0,1,2}: E loss = mean over i of mean |i-r|
  // = (1 + 2/3 + 1)/3 = 8/9.
  EXPECT_NEAR(*c->ExpectedLoss(Mechanism::Uniform(2)), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(*c->ExpectedLoss(Mechanism::Identity(2)), 0.0, 1e-15);
  EXPECT_FALSE(c->ExpectedLoss(Mechanism::Uniform(3)).ok());
}

TEST(BayesianConsumerTest, OptimalRemapIsBayesDecision) {
  // Point-mass prior at 3: every observation should be remapped to 3.
  std::vector<double> prior(5, 0.0);
  prior[3] = 1.0;
  auto c = BayesianConsumer::Create(LossFunction::SquaredError(), prior);
  ASSERT_TRUE(c.ok());
  auto geo = GeometricMechanism::Create(4, 0.5);
  auto deployed = geo->ToMechanism();
  ASSERT_TRUE(deployed.ok());
  auto remap = c->OptimalRemap(*deployed);
  ASSERT_TRUE(remap.ok());
  for (int r = 0; r <= 4; ++r) EXPECT_EQ((*remap)[static_cast<size_t>(r)], 3);
  EXPECT_NEAR(*c->LossAfterOptimalRemap(*deployed), 0.0, 1e-12);
}

TEST(BayesianConsumerTest, RemapNeverHurts) {
  auto c =
      BayesianConsumer::WithUniformPrior(LossFunction::SquaredError(), 6);
  ASSERT_TRUE(c.ok());
  for (double alpha : {0.2, 0.5, 0.8}) {
    auto geo = GeometricMechanism::Create(6, alpha);
    auto deployed = geo->ToMechanism();
    ASSERT_TRUE(deployed.ok());
    EXPECT_LE(*c->LossAfterOptimalRemap(*deployed),
              *c->ExpectedLoss(*deployed) + 1e-12)
        << "alpha=" << alpha;
  }
}

TEST(BayesianConsumerTest, RemapToInteractionIsDeterministicStochastic) {
  Matrix t = BayesianConsumer::RemapToInteraction({2, 2, 0});
  EXPECT_TRUE(t.IsRowStochastic());
  EXPECT_DOUBLE_EQ(t.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(1, 1), 0.0);
}

TEST(OptimalBayesianMechanismTest, ValidatesArguments) {
  auto c =
      BayesianConsumer::WithUniformPrior(LossFunction::AbsoluteError(), 3);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(SolveOptimalBayesianMechanism(-1, 0.5, *c).ok());
  EXPECT_FALSE(SolveOptimalBayesianMechanism(3, 2.0, *c).ok());
  EXPECT_FALSE(SolveOptimalBayesianMechanism(4, 0.5, *c).ok());
}

TEST(OptimalBayesianMechanismTest, ResultIsPrivateAndConsistent) {
  auto c =
      BayesianConsumer::WithUniformPrior(LossFunction::AbsoluteError(), 4);
  ASSERT_TRUE(c.ok());
  auto result = SolveOptimalBayesianMechanism(4, 0.4, *c);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto dp = CheckDifferentialPrivacy(result->mechanism, 0.4, 1e-6);
  ASSERT_TRUE(dp.ok());
  EXPECT_TRUE(dp->is_private);
  EXPECT_NEAR(*c->ExpectedLoss(result->mechanism), result->loss, 1e-6);
}

// Ghosh et al.'s headline, reproduced in our framework: deterministic
// post-processing of the geometric mechanism matches the per-consumer
// optimal Bayesian mechanism.
struct BayesianCase {
  int n;
  double alpha;
  bool uniform_prior;
};

class BayesianUniversalityTest
    : public ::testing::TestWithParam<BayesianCase> {};

TEST_P(BayesianUniversalityTest, GeometricPlusRemapMatchesLpOptimum) {
  const BayesianCase& tc = GetParam();
  std::vector<double> prior(static_cast<size_t>(tc.n) + 1);
  if (tc.uniform_prior) {
    for (double& p : prior) p = 1.0 / (tc.n + 1.0);
  } else {
    // A peaked but full-support prior.
    double total = 0.0;
    for (int i = 0; i <= tc.n; ++i) {
      prior[static_cast<size_t>(i)] = 1.0 + std::min(i, tc.n - i);
      total += prior[static_cast<size_t>(i)];
    }
    for (double& p : prior) p /= total;
  }
  auto c = BayesianConsumer::Create(LossFunction::AbsoluteError(), prior);
  ASSERT_TRUE(c.ok());

  auto lp = SolveOptimalBayesianMechanism(tc.n, tc.alpha, *c);
  ASSERT_TRUE(lp.ok()) << lp.status().ToString();

  auto geo = GeometricMechanism::Create(tc.n, tc.alpha);
  auto deployed = geo->ToMechanism();
  ASSERT_TRUE(deployed.ok());
  double remap_loss = *c->LossAfterOptimalRemap(*deployed);

  EXPECT_NEAR(remap_loss, lp->loss, 1e-5)
      << "n=" << tc.n << " alpha=" << tc.alpha;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BayesianUniversalityTest,
    ::testing::Values(BayesianCase{3, 0.25, true},
                      BayesianCase{3, 0.25, false},
                      BayesianCase{5, 0.5, true},
                      BayesianCase{5, 0.5, false},
                      BayesianCase{8, 0.3, true},
                      BayesianCase{8, 0.7, false},
                      BayesianCase{10, 0.5, true}),
    [](const ::testing::TestParamInfo<BayesianCase>& info) {
      const BayesianCase& c = info.param;
      return "n" + std::to_string(c.n) + "_a" +
             std::to_string(static_cast<int>(c.alpha * 100)) +
             (c.uniform_prior ? "_uniform" : "_peaked");
    });

}  // namespace
}  // namespace geopriv
