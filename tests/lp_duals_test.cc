// Dual values and reduced costs at optimality, from every kernel.
//
// Over Q the certificates are exact: strong duality (c'x == y'b),
// complementary slackness (y_i * slack_i == 0 and d_j * x_j == 0), dual
// feasibility (d_j >= 0 for a minimization, y_i <= 0 on <= rows and
// y_i >= 0 on >= rows), and the definition d_j == c_j - y'A_j recomputed
// independently from the model data.  The double kernel asserts the same
// up to its tolerances.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/optimal_exact.h"
#include "lp/exact_simplex.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

ExactLpProblem OptimalMechanismLp(int n) {
  auto lp = BuildOptimalMechanismLpExact(n, R(1, 2),
                                         ExactLossFunction::AbsoluteError(),
                                         SideInformation::All(n));
  EXPECT_TRUE(lp.ok());
  return *std::move(lp);
}

// Asserts every exact optimality certificate on (lp, solution).
void ExpectExactCertificates(const ExactLpProblem& lp,
                             const ExactLpSolution& s,
                             const std::string& label) {
  ASSERT_EQ(s.status, LpStatus::kOptimal) << label;
  ASSERT_EQ(s.duals.size(), static_cast<size_t>(lp.num_constraints()))
      << label;
  ASSERT_EQ(s.reduced_costs.size(), static_cast<size_t>(lp.num_variables()))
      << label;

  // Strong duality: y'b == c'x, exactly.
  Rational yb(0);
  for (int i = 0; i < lp.num_constraints(); ++i) {
    yb += s.duals[static_cast<size_t>(i)] * *lp.row(i).rhs;
  }
  EXPECT_EQ(yb, s.objective) << label << " (strong duality)";

  // Definition of the reduced costs, recomputed from the model:
  // d_j == c_j - y'A_col_j; and dual feasibility d_j >= 0.
  std::vector<Rational> d(static_cast<size_t>(lp.num_variables()));
  for (int j = 0; j < lp.num_variables(); ++j) {
    d[static_cast<size_t>(j)] = lp.cost(j);
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    ExactLpProblem::RowView row = lp.row(i);
    const Rational& y = s.duals[static_cast<size_t>(i)];
    if (y.IsZero()) continue;
    for (size_t k = 0; k < row.num_terms; ++k) {
      d[static_cast<size_t>(row.terms[k].var)] -= y * row.terms[k].coeff;
    }
  }
  for (int j = 0; j < lp.num_variables(); ++j) {
    EXPECT_EQ(s.reduced_costs[static_cast<size_t>(j)],
              d[static_cast<size_t>(j)])
        << label << " rc definition, variable " << j;
    EXPECT_FALSE(s.reduced_costs[static_cast<size_t>(j)].IsNegative())
        << label << " dual feasibility, variable " << j;
    // Complementary slackness on variables: d_j * x_j == 0.
    EXPECT_TRUE((s.reduced_costs[static_cast<size_t>(j)] *
                 s.values[static_cast<size_t>(j)])
                    .IsZero())
        << label << " CS, variable " << j;
  }

  // Row-side complementary slackness and dual sign conditions.
  for (int i = 0; i < lp.num_constraints(); ++i) {
    ExactLpProblem::RowView row = lp.row(i);
    Rational lhs(0);
    for (size_t k = 0; k < row.num_terms; ++k) {
      lhs += row.terms[k].coeff *
             s.values[static_cast<size_t>(row.terms[k].var)];
    }
    const Rational& y = s.duals[static_cast<size_t>(i)];
    const Rational slack = lhs - *row.rhs;
    EXPECT_TRUE((y * slack).IsZero()) << label << " CS, row " << i;
    switch (row.relation) {
      case RowRelation::kLessEqual:
        // min problem: y <= 0 on <= rows.
        EXPECT_LE(y, R(0)) << label << " dual sign, row " << i;
        break;
      case RowRelation::kGreaterEqual:
        EXPECT_GE(y, R(0)) << label << " dual sign, row " << i;
        break;
      case RowRelation::kEqual:
        break;  // free sign
    }
  }
}

TEST(LpDualsTest, ExactCertificatesHoldOnOptimalMechanismLps) {
  for (int n : {2, 4}) {
    ExactLpProblem lp = OptimalMechanismLp(n);
    for (ExactPivotEngine engine :
         {ExactPivotEngine::kFractionFree, ExactPivotEngine::kDenseRational}) {
      ExactSimplexOptions options;
      options.engine = engine;
      options.compute_duals = true;
      auto s = ExactSimplexSolver(options).Solve(lp);
      ASSERT_TRUE(s.ok());
      ExpectExactCertificates(
          lp, *s,
          "n=" + std::to_string(n) +
              (engine == ExactPivotEngine::kFractionFree ? " ff" : " dense"));
    }
  }
}

TEST(LpDualsTest, ExactCertificatesHoldOnFractionalMixedRelationLp) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1, 3));
  int y = lp.AddVariable("y", R(-2, 5));
  lp.AddConstraint(RowRelation::kLessEqual, R(7, 2),
                   {{x, R(2, 3)}, {y, R(1, 4)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(-1, 6),
                   {{x, R(-1, 2)}, {y, R(5, 7)}});
  lp.AddConstraint(RowRelation::kEqual, R(3, 4),
                   {{x, R(1, 5)}, {y, R(1, 8)}});
  ExactSimplexOptions options;
  options.compute_duals = true;
  auto s = ExactSimplexSolver(options).Solve(lp);
  ASSERT_TRUE(s.ok());
  ExpectExactCertificates(lp, *s, "fractional");
}

TEST(LpDualsTest, DualsSurviveWarmStart) {
  // Warm-started solves must produce the same valid certificates — the
  // marker columns are allocated and tracked through the loaded basis.
  ExactLpProblem lp_a = OptimalMechanismLp(4);
  auto lp_b_or = BuildOptimalMechanismLpExact(
      4, R(11, 20), ExactLossFunction::AbsoluteError(), SideInformation::All(4));
  ASSERT_TRUE(lp_b_or.ok());
  ExactLpProblem lp_b = *std::move(lp_b_or);
  ExactSimplexOptions options;
  options.compute_duals = true;
  auto seed = ExactSimplexSolver(options).Solve(lp_a);
  ASSERT_TRUE(seed.ok());
  ExpectExactCertificates(lp_a, *seed, "cold seed");
  options.warm_start = &seed->basis;
  auto warm = ExactSimplexSolver(options).Solve(lp_b);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->warm_started);
  ExpectExactCertificates(lp_b, *warm, "warm");
}

TEST(LpDualsTest, DualsSurviveWarmStartWithPhase1Patch) {
  // Exercises the hardest combination: a warm start whose prior basis is
  // primal-infeasible for the new data (rows patched, short phase 1 ran)
  // with duals requested — the marker columns must track through the
  // load, the patch pivots and the cleanup.
  auto build = [](int64_t b) {
    ExactLpProblem lp;
    int x = lp.AddVariable("x", R(1));
    int y = lp.AddVariable("y", R(1));
    lp.AddConstraint(RowRelation::kEqual, R(b), {{x, R(1)}, {y, R(-1)}});
    lp.AddConstraint(RowRelation::kLessEqual, R(1), {{y, R(1)}});
    return lp;
  };
  ExactLpProblem lp_a = build(1);
  ExactLpProblem lp_b = build(-1);
  ExactSimplexOptions options;
  options.compute_duals = true;
  auto seed = ExactSimplexSolver(options).Solve(lp_a);
  ASSERT_TRUE(seed.ok());
  options.warm_start = &seed->basis;
  auto warm = ExactSimplexSolver(options).Solve(lp_b);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->warm_started);
  ASSERT_GT(warm->warm_patched_rows, 0);
  ExpectExactCertificates(lp_b, *warm, "warm+patch");

  // The marker columns must stay invisible to the patch-cleanup phase 1:
  // the same warm solve without duals must take the identical pivot path
  // (same counts, bit-identical values), or the primal result would
  // depend on whether duals were requested.
  ExactSimplexOptions plain = options;
  plain.compute_duals = false;
  plain.warm_start = &seed->basis;
  auto warm_plain = ExactSimplexSolver(plain).Solve(lp_b);
  ASSERT_TRUE(warm_plain.ok());
  EXPECT_EQ(warm_plain->iterations, warm->iterations);
  EXPECT_EQ(warm_plain->phase1_iterations, warm->phase1_iterations);
  EXPECT_EQ(warm_plain->objective.ToString(), warm->objective.ToString());
  for (size_t j = 0; j < warm->values.size(); ++j) {
    EXPECT_EQ(warm_plain->values[j].ToString(), warm->values[j].ToString());
  }
}

TEST(LpDualsTest, ComputeDualsDoesNotChangeThePivotSequence) {
  ExactLpProblem lp = OptimalMechanismLp(4);
  auto plain = ExactSimplexSolver().Solve(lp);
  ExactSimplexOptions options;
  options.compute_duals = true;
  auto with_duals = ExactSimplexSolver(options).Solve(lp);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_duals.ok());
  EXPECT_EQ(plain->iterations, with_duals->iterations);
  EXPECT_EQ(plain->objective.ToString(), with_duals->objective.ToString());
  for (size_t j = 0; j < plain->values.size(); ++j) {
    EXPECT_EQ(plain->values[j].ToString(), with_duals->values[j].ToString());
  }
}

TEST(LpDualsTest, DoubleKernelCertificatesHoldWithinTolerance) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: optimum -36 at
  // (2, 6), duals (0, -3/2, -1).
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", -3.0);
  int y = lp.AddNonNegativeVariable("y", -5.0);
  lp.AddConstraint("c1", RowRelation::kLessEqual, 4.0, {{x, 1.0}});
  lp.AddConstraint("c2", RowRelation::kLessEqual, 12.0, {{y, 2.0}});
  lp.AddConstraint("c3", RowRelation::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  SimplexOptions options;
  options.compute_duals = true;
  auto s = SimplexSolver(options).Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  ASSERT_EQ(s->duals.size(), 3u);
  EXPECT_NEAR(s->duals[0], 0.0, 1e-9);
  EXPECT_NEAR(s->duals[1], -1.5, 1e-9);
  EXPECT_NEAR(s->duals[2], -1.0, 1e-9);
  // Strong duality: y'b == objective.
  EXPECT_NEAR(s->duals[0] * 4.0 + s->duals[1] * 12.0 + s->duals[2] * 18.0,
              s->objective, 1e-9);
  // Reduced costs vanish on the basic (positive) variables.
  ASSERT_EQ(s->reduced_costs.size(), 2u);
  EXPECT_NEAR(s->reduced_costs[0], 0.0, 1e-9);
  EXPECT_NEAR(s->reduced_costs[1], 0.0, 1e-9);
}

TEST(LpDualsTest, UpperBoundMultiplierFoldsIntoReducedCost) {
  // min -x with 0 <= x <= 1: optimum x = 1.  The bound is enforced by an
  // internal row whose multiplier must fold into x's reduced cost, so
  // the ub-tight variable still certifies rc ~= 0 (not rc = c = -1).
  LpProblem lp;
  int x = lp.AddVariable("x", 0.0, 1.0, -1.0);
  lp.AddConstraint("c", RowRelation::kLessEqual, 10.0, {{x, 1.0}});
  SimplexOptions options;
  options.compute_duals = true;
  auto s = SimplexSolver(options).Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->values[0], 1.0, 1e-9);
  EXPECT_NEAR(s->reduced_costs[0], 0.0, 1e-9);
  EXPECT_NEAR(s->reduced_costs[0] * s->values[0], 0.0, 1e-9);
}

TEST(LpDualsTest, DoubleKernelCertificatesOnOptimalMechanismLp) {
  // The production Section 2.5 LP at n=4: strong duality and CS within
  // solver tolerances, with duals from the mixed <=/>=/= row census.
  const int n = 4;
  const int size = n + 1;
  LpProblem lp;
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.AddNonNegativeVariable("x", 0.0);
    }
  }
  const int d_var = lp.AddNonNegativeVariable("d", 1.0);
  auto cell = [&](int i, int r) { return i * size + r; };
  for (int i = 0; i < size; ++i) {
    lp.BeginConstraint("loss", RowRelation::kLessEqual, 0.0);
    for (int r = 0; r < size; ++r) {
      if (i != r) lp.AddTerm(cell(i, r), std::abs(i - r));
    }
    lp.AddTerm(d_var, -1.0);
  }
  for (int i = 0; i + 1 < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.BeginConstraint("dp_down", RowRelation::kGreaterEqual, 0.0);
      lp.AddTerm(cell(i, r), 1.0);
      lp.AddTerm(cell(i + 1, r), -0.5);
      lp.BeginConstraint("dp_up", RowRelation::kGreaterEqual, 0.0);
      lp.AddTerm(cell(i + 1, r), 1.0);
      lp.AddTerm(cell(i, r), -0.5);
    }
  }
  for (int i = 0; i < size; ++i) {
    lp.BeginConstraint("row", RowRelation::kEqual, 1.0);
    for (int r = 0; r < size; ++r) lp.AddTerm(cell(i, r), 1.0);
  }
  SimplexOptions options;
  options.compute_duals = true;
  auto s = SimplexSolver(options).Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  double yb = 0.0;
  for (int i = 0; i < lp.num_constraints(); ++i) {
    yb += s->duals[static_cast<size_t>(i)] * lp.row(i).rhs;
  }
  EXPECT_NEAR(yb, s->objective, 1e-6);
  for (int j = 0; j < lp.num_variables(); ++j) {
    EXPECT_GE(s->reduced_costs[static_cast<size_t>(j)], -1e-7) << j;
    EXPECT_NEAR(s->reduced_costs[static_cast<size_t>(j)] *
                    s->values[static_cast<size_t>(j)],
                0.0, 1e-6)
        << j;
  }
}

}  // namespace
}  // namespace geopriv
