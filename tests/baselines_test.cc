// Tests for the baseline mechanisms (discretized Laplace, randomized
// response) and their relationship to the geometric mechanism.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/consumer.h"
#include "core/derivability.h"
#include "core/geometric.h"
#include "core/optimal.h"
#include "core/privacy.h"

namespace geopriv {
namespace {

TEST(LaplaceBaselineTest, ValidatesArguments) {
  EXPECT_FALSE(DiscretizedLaplaceMechanism(-1, 0.5).ok());
  EXPECT_FALSE(DiscretizedLaplaceMechanism(3, 0.0).ok());
  EXPECT_FALSE(DiscretizedLaplaceMechanism(3, 1.0).ok());
  EXPECT_TRUE(DiscretizedLaplaceMechanism(3, 0.5).ok());
}

TEST(LaplaceBaselineTest, IsRowStochasticAndPrivate) {
  for (int n : {1, 4, 10}) {
    for (double alpha : {0.2, 0.5, 0.8}) {
      auto m = DiscretizedLaplaceMechanism(n, alpha);
      ASSERT_TRUE(m.ok()) << "n=" << n << " alpha=" << alpha;
      EXPECT_TRUE(m->matrix().IsRowStochastic(1e-9));
      auto dp = CheckDifferentialPrivacy(*m, alpha, 1e-9);
      ASSERT_TRUE(dp.ok());
      EXPECT_TRUE(dp->is_private) << "n=" << n << " alpha=" << alpha;
    }
  }
}

TEST(LaplaceBaselineTest, ConcentratesAroundTruth) {
  auto m = DiscretizedLaplaceMechanism(10, 0.3);
  ASSERT_TRUE(m.ok());
  for (int i = 1; i < 10; ++i) {
    double at_truth = m->Probability(i, i);
    for (int r = 0; r <= 10; ++r) {
      if (r == i) continue;
      EXPECT_GE(at_truth, m->Probability(i, r)) << "i=" << i << " r=" << r;
    }
  }
}

TEST(RandomizedResponseTest, ValidatesArguments) {
  EXPECT_FALSE(RandomizedResponseMechanism(0, 0.5).ok());
  EXPECT_FALSE(RandomizedResponseMechanism(3, 0.0).ok());
  EXPECT_FALSE(RandomizedResponseMechanism(3, 1.0).ok());
  EXPECT_TRUE(RandomizedResponseMechanism(3, 0.5).ok());
}

TEST(RandomizedResponseTest, IsExactlyAlphaPrivate) {
  for (int n : {2, 5, 9}) {
    for (double alpha : {0.25, 0.5, 0.75}) {
      auto m = RandomizedResponseMechanism(n, alpha);
      ASSERT_TRUE(m.ok());
      EXPECT_TRUE(m->matrix().IsRowStochastic(1e-9));
      EXPECT_NEAR(StrongestAlpha(*m), alpha, 1e-9)
          << "n=" << n << " alpha=" << alpha;
    }
  }
}

TEST(RandomizedResponseTest, NotDerivableFromGeometric) {
  // Randomized response is a DP mechanism that the geometric mechanism
  // cannot induce: its columns are flat with one bump, so the three-entry
  // condition fails at the bump for reasonable n and alpha.
  auto m = RandomizedResponseMechanism(6, 0.5);
  ASSERT_TRUE(m.ok());
  auto verdict = CheckDerivability(*m, 0.5);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->derivable);
}

TEST(BaselineComparisonTest, GeometricWeaklyBeatsBaselinesAfterInteraction) {
  // The quantitative content of universal optimality: for every consumer,
  // the optimally post-processed geometric mechanism is at least as good
  // as the optimally post-processed Laplace / randomized-response
  // deployments at the same privacy level.
  const int n = 6;
  const double alpha = 0.5;
  auto geo = GeometricMechanism::Create(n, alpha)->ToMechanism();
  auto lap = DiscretizedLaplaceMechanism(n, alpha);
  auto rr = RandomizedResponseMechanism(n, alpha);
  ASSERT_TRUE(geo.ok() && lap.ok() && rr.ok());

  for (const LossFunction& loss :
       {LossFunction::AbsoluteError(), LossFunction::SquaredError(),
        LossFunction::ZeroOne()}) {
    for (int lo : {0, 2}) {
      auto consumer = MinimaxConsumer::Create(
          loss, *SideInformation::Interval(lo, n, n));
      ASSERT_TRUE(consumer.ok());
      auto from_geo = SolveOptimalInteraction(*geo, *consumer);
      auto from_lap = SolveOptimalInteraction(*lap, *consumer);
      auto from_rr = SolveOptimalInteraction(*rr, *consumer);
      ASSERT_TRUE(from_geo.ok() && from_lap.ok() && from_rr.ok());
      EXPECT_LE(from_geo->loss, from_lap->loss + 1e-6)
          << loss.name() << " lo=" << lo;
      EXPECT_LE(from_geo->loss, from_rr->loss + 1e-6)
          << loss.name() << " lo=" << lo;
    }
  }
}

TEST(BaselineComparisonTest, RandomizedResponseStrictlyWorseForSomeone) {
  // Universality is non-trivial: there exists a consumer for whom the
  // baseline is strictly worse than the geometric deployment.
  const int n = 6;
  const double alpha = 0.5;
  auto geo = GeometricMechanism::Create(n, alpha)->ToMechanism();
  auto rr = RandomizedResponseMechanism(n, alpha);
  ASSERT_TRUE(geo.ok() && rr.ok());
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(n));
  ASSERT_TRUE(consumer.ok());
  auto from_geo = SolveOptimalInteraction(*geo, *consumer);
  auto from_rr = SolveOptimalInteraction(*rr, *consumer);
  ASSERT_TRUE(from_geo.ok() && from_rr.ok());
  EXPECT_LT(from_geo->loss, from_rr->loss - 1e-3);
}

}  // namespace
}  // namespace geopriv
