// Tests pinning the paper's printed artifacts (Tables 1–2, Appendix B)
// against the library's computed objects.

#include <gtest/gtest.h>

#include "core/consumer.h"
#include "core/derivability.h"
#include "core/examples_catalog.h"
#include "core/geometric.h"
#include "core/optimal.h"
#include "core/privacy.h"

namespace geopriv {
namespace {

TEST(CatalogTest, Table1bIsScaledGeometricMechanism) {
  // Table 1(b) == G_{3,1/4} · (1+α)/(1-α), exactly.
  Table1Parameters params;
  auto printed = PaperTable1bAsPrinted();
  auto g = GeometricMechanism::BuildExactMatrix(params.n, params.alpha);
  ASSERT_TRUE(printed.ok() && g.ok());
  Rational scale = *Rational::Divide(Rational(1) + params.alpha,
                                     Rational(1) - params.alpha);
  EXPECT_EQ(g->ScaledBy(scale), *printed);
}

TEST(CatalogTest, Table1cIsAFeasibleInteraction) {
  auto t = PaperTable1cInteraction();
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsRowStochastic());
}

TEST(CatalogTest, Table1aAsPrintedIsNotExactlyStochastic) {
  // Documented quirk: the paper prints rounded fractions; the matrix as
  // printed is not a mechanism.  (Row 0 sums to ~1.011.)
  auto a = PaperTable1aAsPrinted();
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->IsRowStochastic());
  // But it is close to one: every row sums to 1 within 2%.
  for (size_t i = 0; i < a->rows(); ++i) {
    Rational sum(0);
    for (size_t j = 0; j < a->cols(); ++j) sum += a->At(i, j);
    EXPECT_LT((sum - Rational(1)).Abs(),
              *Rational::FromInts(2, 100));
  }
}

TEST(CatalogTest, Table1FactorizationReproducesOptimalLoss) {
  // The pair (b, c) is the paper's factorization of the optimal mechanism.
  // Like Table 1(a), the printed interaction (c) carries rounding: the
  // induced mechanism G_{3,1/4}·T1c achieves minimax loss 357/880
  // ≈ 0.40568, whereas the true LP optimum is ≈ 0.40482.  We therefore
  // pin (i) the printed factorization to within the printing error and
  // (ii) the LP-computed interaction to the exact optimum.
  Table1Parameters params;
  auto g = GeometricMechanism::BuildExactMatrix(params.n, params.alpha);
  auto t = PaperTable1cInteraction();
  ASSERT_TRUE(g.ok() && t.ok());
  RationalMatrix induced_exact = *g * *t;
  EXPECT_TRUE(induced_exact.IsRowStochastic());
  auto induced = Mechanism::FromExact(induced_exact);
  ASSERT_TRUE(induced.ok());

  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(params.n));
  ASSERT_TRUE(consumer.ok());
  double induced_loss = *consumer->WorstCaseLoss(*induced);

  auto optimal =
      SolveOptimalMechanism(params.n, params.alpha.ToDouble(), *consumer);
  ASSERT_TRUE(optimal.ok());
  // Paper-printed interaction: optimal up to the table's rounding (~0.2%).
  EXPECT_GE(induced_loss, optimal->loss - 1e-9);
  EXPECT_NEAR(induced_loss, optimal->loss, 5e-3);

  // The LP-based interaction achieves the optimum exactly (Theorem 1).
  auto geo_mech = Mechanism::FromExact(*g);
  ASSERT_TRUE(geo_mech.ok());
  auto interaction = SolveOptimalInteraction(*geo_mech, *consumer);
  ASSERT_TRUE(interaction.ok());
  EXPECT_NEAR(interaction->loss, optimal->loss, 1e-6);
}

TEST(CatalogTest, Table1cInducedMechanismIsAlphaPrivate) {
  Table1Parameters params;
  auto g = GeometricMechanism::BuildExactMatrix(params.n, params.alpha);
  auto t = PaperTable1cInteraction();
  ASSERT_TRUE(g.ok() && t.ok());
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(*g * *t, params.alpha));
}

TEST(CatalogTest, AppendixBIsHalfDpButNotDerivable) {
  auto m = PaperAppendixBMechanism();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->IsRowStochastic());
  Rational half = *Rational::FromInts(1, 2);
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(*m, half));
  auto verdict = CheckDerivabilityExact(*m, half);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->derivable);
}

TEST(CatalogTest, AppendixBSlackMatchesPaperArithmetic) {
  // (1+α²)·M(1,1) − α·(M(0,1) + M(2,1)) = 5/4·1/9 − 1/2·4/9 = −1/12
  // (the paper writes it as −0.75/9).
  auto m = PaperAppendixBMechanism();
  ASSERT_TRUE(m.ok());
  Rational half = *Rational::FromInts(1, 2);
  Rational slack = (Rational(1) + half * half) * m->At(1, 1) -
                   half * (m->At(0, 1) + m->At(2, 1));
  EXPECT_EQ(slack, *Rational::FromInts(-1, 12));
  EXPECT_EQ(slack, *Rational::Divide(*Rational::FromString("-0.75"),
                                     Rational(9)));
}

}  // namespace
}  // namespace geopriv
