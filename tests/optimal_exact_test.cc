// Tests for the exact-rational versions of the paper's LPs: Theorem 1
// part 2 with exact equality, and the exact Table 1 artifacts.

#include <gtest/gtest.h>

#include "core/geometric.h"
#include "core/optimal.h"
#include "core/optimal_exact.h"
#include "core/privacy.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

TEST(ExactLossTest, FactoriesAndMonotonicity) {
  EXPECT_EQ(ExactLossFunction::AbsoluteError()(2, 5), R(3));
  EXPECT_EQ(ExactLossFunction::SquaredError()(2, 5), R(9));
  EXPECT_EQ(ExactLossFunction::ZeroOne()(2, 5), R(1));
  EXPECT_EQ(ExactLossFunction::ZeroOne()(5, 5), R(0));
  EXPECT_TRUE(ExactLossFunction::AbsoluteError().ValidateMonotone(8).ok());
  auto bad = ExactLossFunction::FromFunction(
      "bad", [](int i, int r) { return R(10 - std::abs(i - r)); });
  EXPECT_FALSE(bad.ValidateMonotone(12).ok());
}

TEST(ExactWorstCaseLossTest, MatchesHandComputation) {
  // Uniform mechanism over {0,1,2}: worst absolute loss is 1 (at i=0,2).
  RationalMatrix uniform(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) uniform.At(i, j) = R(1, 3);
  }
  auto loss = ExactWorstCaseLoss(uniform, ExactLossFunction::AbsoluteError(),
                                 SideInformation::All(2));
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(*loss, R(1));
  auto middle = ExactWorstCaseLoss(uniform,
                                   ExactLossFunction::AbsoluteError(),
                                   *SideInformation::FromSet({1}, 2));
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(*middle, R(2, 3));
}

TEST(ExactOptimalTest, Table1ExactOptimumIs168Over415) {
  // The exact optimal minimax loss for the paper's Table 1 consumer
  // (n = 3, alpha = 1/4, l = |i-r|, S = {0..3}).  The paper's printed
  // tables are rounded; the exact value is 168/415 ≈ 0.404819.
  Rational alpha = R(1, 4);
  auto result = SolveOptimalMechanismExact(
      3, alpha, ExactLossFunction::AbsoluteError(), SideInformation::All(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->loss, R(168, 415));
  EXPECT_TRUE(result->matrix.IsRowStochastic());
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(result->matrix, alpha));
}

TEST(ExactOptimalTest, Table1ExactInteractionEntries) {
  // The exact optimal interaction with G_{3,1/4} maps output 0 to
  // {0: 68/83, 1: 15/83} (the paper prints the rounded 9/11, 2/11).
  Rational alpha = R(1, 4);
  auto g = GeometricMechanism::BuildExactMatrix(3, alpha);
  ASSERT_TRUE(g.ok());
  auto result = SolveOptimalInteractionExact(
      *g, ExactLossFunction::AbsoluteError(), SideInformation::All(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->loss, R(168, 415));
  EXPECT_EQ(result->matrix.At(0, 0), R(68, 83));
  EXPECT_EQ(result->matrix.At(0, 1), R(15, 83));
  EXPECT_EQ(result->matrix.At(1, 1), R(1));
  EXPECT_EQ(result->matrix.At(2, 2), R(1));
  EXPECT_EQ(result->matrix.At(3, 2), R(15, 83));
  EXPECT_EQ(result->matrix.At(3, 3), R(68, 83));
}

struct ExactCase {
  int n;
  int alpha_num;
  int alpha_den;
  const char* loss;
  int lo;
  int hi;
};

class ExactUniversalityTest : public ::testing::TestWithParam<ExactCase> {};

ExactLossFunction ExactLossByName(const std::string& name) {
  if (name == "absolute") return ExactLossFunction::AbsoluteError();
  if (name == "squared") return ExactLossFunction::SquaredError();
  return ExactLossFunction::ZeroOne();
}

TEST_P(ExactUniversalityTest, Theorem1HoldsWithExactEquality) {
  const ExactCase& tc = GetParam();
  Rational alpha = R(tc.alpha_num, tc.alpha_den);
  ExactLossFunction loss = ExactLossByName(tc.loss);
  auto side = SideInformation::Interval(tc.lo, tc.hi, tc.n);
  ASSERT_TRUE(side.ok());

  auto optimal = SolveOptimalMechanismExact(tc.n, alpha, loss, *side);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();

  auto g = GeometricMechanism::BuildExactMatrix(tc.n, alpha);
  ASSERT_TRUE(g.ok());
  auto interaction = SolveOptimalInteractionExact(*g, loss, *side);
  ASSERT_TRUE(interaction.ok()) << interaction.status().ToString();

  // Theorem 1 part 2 with zero tolerance.
  EXPECT_EQ(interaction->loss, optimal->loss)
      << "exact losses differ: interaction "
      << interaction->loss.ToString() << " vs optimal "
      << optimal->loss.ToString();

  // The induced mechanism is exactly alpha-DP and achieves that loss.
  RationalMatrix induced = *g * interaction->matrix;
  EXPECT_TRUE(induced.IsRowStochastic());
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(induced, alpha));
  auto induced_loss = ExactWorstCaseLoss(induced, loss, *side);
  ASSERT_TRUE(induced_loss.ok());
  EXPECT_EQ(*induced_loss, interaction->loss);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactUniversalityTest,
    ::testing::Values(ExactCase{3, 1, 4, "absolute", 0, 3},
                      ExactCase{3, 1, 4, "squared", 0, 3},
                      ExactCase{3, 1, 4, "zero-one", 0, 3},
                      ExactCase{4, 1, 2, "absolute", 1, 4},
                      ExactCase{4, 1, 2, "squared", 0, 2},
                      ExactCase{5, 2, 3, "absolute", 0, 5},
                      ExactCase{5, 1, 3, "zero-one", 2, 5},
                      ExactCase{6, 1, 2, "squared", 2, 4}),
    [](const ::testing::TestParamInfo<ExactCase>& info) {
      const ExactCase& c = info.param;
      std::string name = "n" + std::to_string(c.n) + "_a" +
                         std::to_string(c.alpha_num) + "over" +
                         std::to_string(c.alpha_den) + "_" + c.loss + "_S" +
                         std::to_string(c.lo) + "to" + std::to_string(c.hi);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(ExactOptimalTest, ExactAndDoubleLpAgree) {
  // Cross-validation: the double pipeline's optimum matches the exact one
  // to solver tolerance.
  Rational alpha = R(1, 2);
  auto side = SideInformation::All(4);
  auto exact = SolveOptimalMechanismExact(
      4, alpha, ExactLossFunction::AbsoluteError(), side);
  ASSERT_TRUE(exact.ok());
  auto consumer =
      MinimaxConsumer::Create(LossFunction::AbsoluteError(), side);
  ASSERT_TRUE(consumer.ok());
  auto approx = SolveOptimalMechanism(4, 0.5, *consumer);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(exact->loss.ToDouble(), approx->loss, 1e-8);
}

TEST(ExactOptimalTest, ValidatesArguments) {
  auto loss = ExactLossFunction::AbsoluteError();
  EXPECT_FALSE(
      SolveOptimalMechanismExact(-1, R(1, 2), loss, SideInformation::All(3))
          .ok());
  EXPECT_FALSE(
      SolveOptimalMechanismExact(3, R(3, 2), loss, SideInformation::All(3))
          .ok());
  EXPECT_FALSE(
      SolveOptimalMechanismExact(4, R(1, 2), loss, SideInformation::All(3))
          .ok());
  RationalMatrix not_stochastic(3, 3);
  EXPECT_FALSE(SolveOptimalInteractionExact(not_stochastic, loss,
                                            SideInformation::All(2))
                   .ok());
}

TEST(ExactOptimalTest, AbsolutePrivacyExactOptimum) {
  // alpha = 1 forces constant rows; for absolute loss on {0..2} the best
  // constant distribution has worst-case loss exactly 1.
  auto result = SolveOptimalMechanismExact(
      2, R(1), ExactLossFunction::AbsoluteError(), SideInformation::All(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->loss, R(1));
}

TEST(ExactOptimalTest, NoPrivacyZeroLoss) {
  auto result = SolveOptimalMechanismExact(
      3, R(0), ExactLossFunction::SquaredError(), SideInformation::All(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->loss, R(0));
}

}  // namespace
}  // namespace geopriv
