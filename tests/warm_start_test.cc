// Warm-started LP families: a sweep streamed through one solver
// (SolveSequence / the core sweep drivers) must certify exactly the same
// optima as per-point cold solves — bit-identical objectives over Q — and
// the primal-infeasible fallback must patch the offending rows and run a
// short phase-1 cleanup rather than fail or return garbage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/optimal.h"
#include "core/optimal_exact.h"
#include "lp/exact_simplex.h"
#include "lp/problem.h"
#include "lp/simplex.h"
#include "util/thread_pool.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

std::vector<Rational> AlphaFamily() {
  return {R(2, 5), R(9, 20), R(1, 2), R(11, 20), R(3, 5)};
}

ExactLpProblem MechanismLp(int n, const Rational& alpha) {
  auto lp = BuildOptimalMechanismLpExact(n, alpha,
                                         ExactLossFunction::AbsoluteError(),
                                         SideInformation::All(n));
  EXPECT_TRUE(lp.ok());
  return *std::move(lp);
}

TEST(WarmStartTest, ExactSweepMatchesColdSolvesBitIdentically) {
  for (int n : {2, 4, 8}) {
    const std::string label = "n=" + std::to_string(n);
    std::vector<ExactLpProblem> family;
    for (const Rational& alpha : AlphaFamily()) {
      family.push_back(MechanismLp(n, alpha));
    }
    ExactSimplexSolver solver;
    auto warm = solver.SolveSequence(family);
    ASSERT_TRUE(warm.ok()) << label;
    ASSERT_EQ(warm->size(), family.size()) << label;
    for (size_t k = 0; k < family.size(); ++k) {
      auto cold = solver.Solve(family[k]);
      ASSERT_TRUE(cold.ok()) << label;
      ASSERT_EQ((*warm)[k].status, LpStatus::kOptimal) << label << " k=" << k;
      // The optimal VALUE over Q is unique, so the warm chain must
      // reproduce it to the bit even when it lands on a different
      // (equally optimal) vertex of these degenerate LPs.
      EXPECT_EQ((*warm)[k].objective.ToString(), cold->objective.ToString())
          << label << " k=" << k;
      EXPECT_EQ((*warm)[k].warm_started, k > 0) << label << " k=" << k;
    }
    // The warm points must actually skip phase 1: the family's prior
    // bases stay primal-feasible across these alpha steps.
    for (size_t k = 1; k < family.size(); ++k) {
      EXPECT_EQ((*warm)[k].warm_patched_rows, 0) << label << " k=" << k;
      EXPECT_EQ((*warm)[k].phase1_iterations, 0) << label << " k=" << k;
      EXPECT_GT((*warm)[k].warm_load_pivots, 0) << label << " k=" << k;
    }
  }
}

TEST(WarmStartTest, ExactSweepDriverMatchesSingleSolves) {
  const int n = 4;
  auto sweep = SolveOptimalMechanismExactSweep(
      n, AlphaFamily(), ExactLossFunction::AbsoluteError(),
      SideInformation::All(n));
  ASSERT_TRUE(sweep.ok());
  for (size_t k = 0; k < AlphaFamily().size(); ++k) {
    auto single = SolveOptimalMechanismExact(n, AlphaFamily()[k],
                                             ExactLossFunction::AbsoluteError(),
                                             SideInformation::All(n));
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*sweep)[k].loss.ToString(), single->loss.ToString())
        << "k=" << k;
  }
}

TEST(WarmStartTest, ExactLossSweepMatchesSingleSolves) {
  const int n = 4;
  std::vector<ExactLossFunction> losses = {ExactLossFunction::AbsoluteError(),
                                           ExactLossFunction::SquaredError(),
                                           ExactLossFunction::ZeroOne()};
  auto sweep = SolveOptimalMechanismExactLossSweep(n, R(1, 2), losses,
                                                   SideInformation::All(n));
  ASSERT_TRUE(sweep.ok());
  for (size_t k = 0; k < losses.size(); ++k) {
    auto single = SolveOptimalMechanismExact(n, R(1, 2), losses[k],
                                             SideInformation::All(n));
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*sweep)[k].loss.ToString(), single->loss.ToString())
        << losses[k].name();
  }
}

TEST(WarmStartTest, InfeasiblePriorBasisPatchesAndRecovers) {
  // Family of structurally identical LPs where the first member's optimal
  // basis is primal-INFEASIBLE for the second (the equality row's rhs
  // flips sign):  min x + y  s.t.  x - y == b,  y <= 1.
  //   b = +1: optimum (1, 0), basis {x, slack}.
  //   b = -1: loading {x, slack} gives x = -1 < 0, so the loader must
  //           patch the row and phase 1 must walk to the optimum (0, 1).
  auto build = [](int64_t b) {
    ExactLpProblem lp;
    int x = lp.AddVariable("x", R(1));
    int y = lp.AddVariable("y", R(1));
    lp.AddConstraint(RowRelation::kEqual, R(b), {{x, R(1)}, {y, R(-1)}});
    lp.AddConstraint(RowRelation::kLessEqual, R(1), {{y, R(1)}});
    return lp;
  };
  std::vector<ExactLpProblem> family;
  family.push_back(build(1));
  family.push_back(build(-1));
  auto seq = ExactSimplexSolver().SolveSequence(family);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ((*seq)[0].status, LpStatus::kOptimal);
  EXPECT_EQ((*seq)[0].objective.ToString(), "1");
  ASSERT_EQ((*seq)[1].status, LpStatus::kOptimal);
  EXPECT_TRUE((*seq)[1].warm_started);
  EXPECT_GT((*seq)[1].warm_patched_rows, 0);
  EXPECT_GT((*seq)[1].phase1_iterations, 0);  // the short cleanup ran
  EXPECT_EQ((*seq)[1].objective.ToString(), "1");  // optimum (0, 1)
}

TEST(WarmStartTest, GarbageWarmBasisIsRejectedLoudly) {
  ExactLpProblem lp = MechanismLp(2, R(1, 2));
  LpBasis garbage;
  garbage.basic_columns = {0, 0};  // duplicate
  ExactSimplexOptions options;
  options.warm_start = &garbage;
  EXPECT_FALSE(ExactSimplexSolver(options).Solve(lp).ok());
  garbage.basic_columns = {1 << 20};  // out of range
  EXPECT_FALSE(ExactSimplexSolver(options).Solve(lp).ok());
}

TEST(WarmStartTest, DenseReferenceEngineIgnoresWarmStart) {
  ExactLpProblem lp = MechanismLp(2, R(1, 2));
  auto cold = ExactSimplexSolver().Solve(lp);
  ASSERT_TRUE(cold.ok());
  ExactSimplexOptions options;
  options.engine = ExactPivotEngine::kDenseRational;
  options.warm_start = &cold->basis;
  auto s = ExactSimplexSolver(options).Solve(lp);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->warm_started);
  EXPECT_EQ(s->objective.ToString(), cold->objective.ToString());
}

TEST(WarmStartTest, DenseBasisCanSeedFractionFreeWarmStart) {
  // The two engines share the standard-form layout, so a reference-engine
  // basis is a valid warm seed for the optimized kernel.
  ExactLpProblem lp4 = MechanismLp(4, R(1, 2));
  ExactSimplexOptions dense;
  dense.engine = ExactPivotEngine::kDenseRational;
  auto seed = ExactSimplexSolver(dense).Solve(lp4);
  ASSERT_TRUE(seed.ok());
  ExactLpProblem lp4b = MechanismLp(4, R(11, 20));
  ExactSimplexOptions warm;
  warm.warm_start = &seed->basis;
  auto s = ExactSimplexSolver(warm).Solve(lp4b);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->warm_started);
  auto cold = ExactSimplexSolver().Solve(lp4b);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(s->objective.ToString(), cold->objective.ToString());
}

TEST(WarmStartTest, DoubleSweepMatchesColdSolves) {
  const int n = 6;
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(n));
  ASSERT_TRUE(consumer.ok());
  std::vector<double> alphas = {0.3, 0.4, 0.5, 0.6, 0.7};
  auto sweep = SolveOptimalMechanismSweep(n, alphas, *consumer);
  ASSERT_TRUE(sweep.ok());
  for (size_t k = 0; k < alphas.size(); ++k) {
    auto cold = SolveOptimalMechanism(n, alphas[k], *consumer);
    ASSERT_TRUE(cold.ok());
    EXPECT_NEAR((*sweep)[k].loss, cold->loss, 1e-7) << "k=" << k;
  }
}

TEST(WarmStartTest, DoubleWarmStartPatchesInfeasiblePrior) {
  auto build = [](double b) {
    LpProblem lp;
    int x = lp.AddNonNegativeVariable("x", 1.0);
    int y = lp.AddNonNegativeVariable("y", 1.0);
    lp.AddConstraint("eq", RowRelation::kEqual, b, {{x, 1.0}, {y, -1.0}});
    lp.AddConstraint("cap", RowRelation::kLessEqual, 1.0, {{y, 1.0}});
    return lp;
  };
  std::vector<LpProblem> family;
  family.push_back(build(1.0));
  family.push_back(build(-1.0));
  auto seq = SimplexSolver().SolveSequence(family);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ((*seq)[1].status, LpStatus::kOptimal);
  EXPECT_TRUE((*seq)[1].warm_started);
  EXPECT_GT((*seq)[1].warm_patched_rows, 0);
  EXPECT_NEAR((*seq)[1].objective, 1.0, 1e-9);
}

TEST(WarmStartTest, SharedPoolChainIsBitIdenticalToSerial) {
  // SolveSequence now constructs ONE pool for the whole chain
  // (ExactSimplexOptions::pool) instead of one per member, and callers may
  // pass their own long-lived pool (the service's solve cache does).
  // Either way every member must stay byte-for-byte the serial chain.
  std::vector<ExactLpProblem> family;
  for (const Rational& alpha : AlphaFamily()) {
    family.push_back(MechanismLp(4, alpha));
  }
  auto serial = ExactSimplexSolver().SolveSequence(family);
  ASSERT_TRUE(serial.ok());

  ExactSimplexOptions threaded;
  threaded.threads = 2;
  auto pooled = ExactSimplexSolver(threaded).SolveSequence(family);
  ASSERT_TRUE(pooled.ok());

  ThreadPool external(3);
  ExactSimplexOptions borrowed;
  borrowed.pool = &external;
  auto via_external = ExactSimplexSolver(borrowed).SolveSequence(family);
  ASSERT_TRUE(via_external.ok());

  for (size_t k = 0; k < family.size(); ++k) {
    ASSERT_EQ((*pooled)[k].status, LpStatus::kOptimal) << "k=" << k;
    EXPECT_TRUE((*pooled)[k].objective == (*serial)[k].objective)
        << "k=" << k;
    EXPECT_TRUE((*pooled)[k].values == (*serial)[k].values) << "k=" << k;
    EXPECT_EQ((*pooled)[k].iterations, (*serial)[k].iterations) << "k=" << k;
    EXPECT_TRUE((*via_external)[k].objective == (*serial)[k].objective)
        << "k=" << k;
    EXPECT_TRUE((*via_external)[k].values == (*serial)[k].values)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace geopriv
