// Tests for Theorem 2 (derivability characterization), Lemma 3 privacy
// transitions, and the Appendix B counterexample.

#include <gtest/gtest.h>

#include <cmath>

#include "core/derivability.h"
#include "core/examples_catalog.h"
#include "core/geometric.h"
#include "core/mechanism.h"
#include "core/privacy.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(DerivabilityTest, GeometricDerivableFromItself) {
  auto geo = GeometricMechanism::Create(4, 0.5);
  ASSERT_TRUE(geo.ok());
  auto m = geo->ToMechanism();
  ASSERT_TRUE(m.ok());
  auto verdict = CheckDerivability(*m, 0.5);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->derivable);
  auto t = DeriveInteraction(*m, 0.5);
  ASSERT_TRUE(t.ok());
  // T should be (numerically) the identity.
  EXPECT_LT(Matrix::MaxAbsDiff(*t, Matrix::Identity(5)), 1e-8);
}

TEST(DerivabilityTest, Lemma3MorePrivateIsDerivable) {
  // For α <= β, G_β is derivable from G_α; the transition is stochastic.
  for (double alpha : {0.2, 0.4}) {
    for (double beta : {0.4, 0.6, 0.9}) {
      if (beta < alpha) continue;
      auto t = PrivacyTransition(6, alpha, beta);
      ASSERT_TRUE(t.ok()) << "alpha=" << alpha << " beta=" << beta;
      EXPECT_TRUE(t->IsRowStochastic(1e-7));
      // Composing reproduces G_β.
      auto g_alpha = GeometricMechanism::BuildMatrix(6, alpha);
      auto g_beta = GeometricMechanism::BuildMatrix(6, beta);
      ASSERT_TRUE(g_alpha.ok() && g_beta.ok());
      EXPECT_LT(Matrix::MaxAbsDiff(*g_alpha * *t, *g_beta), 1e-9);
    }
  }
}

TEST(DerivabilityTest, Lemma3ReverseDirectionFails) {
  // Removing privacy by post-processing is impossible.
  auto t = PrivacyTransition(6, 0.6, 0.3);
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsFailedPrecondition());
}

TEST(DerivabilityTest, Lemma3ExactTransitionsAreStochastic) {
  Rational alpha = *Rational::FromInts(1, 4);
  Rational beta = *Rational::FromInts(1, 2);
  auto t = PrivacyTransitionExact(5, alpha, beta);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsRowStochastic());
  // Exact composition: G_α · T == G_β with zero error.
  auto g_alpha = GeometricMechanism::BuildExactMatrix(5, alpha);
  auto g_beta = GeometricMechanism::BuildExactMatrix(5, beta);
  ASSERT_TRUE(g_alpha.ok() && g_beta.ok());
  EXPECT_EQ(*g_alpha * *t, *g_beta);
}

TEST(DerivabilityTest, Lemma3ExactReverseFails) {
  Rational alpha = *Rational::FromInts(1, 2);
  Rational beta = *Rational::FromInts(1, 4);
  EXPECT_FALSE(PrivacyTransitionExact(5, alpha, beta).ok());
}

TEST(DerivabilityTest, AppendixBCounterexample) {
  // The Appendix B matrix is 1/2-DP but NOT derivable from G_{3,1/2}; the
  // violated triple is column 1, rows (0,1,2), with slack exactly -1/12.
  auto m = PaperAppendixBMechanism();
  ASSERT_TRUE(m.ok());
  Rational half = *Rational::FromInts(1, 2);
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(*m, half));
  auto verdict = CheckDerivabilityExact(*m, half);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->derivable);
  EXPECT_EQ(verdict->column, 1);
  EXPECT_EQ(verdict->row, 1);
  EXPECT_NEAR(verdict->slack, -1.0 / 12.0, 1e-15);
  // And the factorization indeed fails.
  EXPECT_FALSE(DeriveInteractionExact(*m, half).ok());
  auto numeric = Mechanism::FromExact(*m);
  ASSERT_TRUE(numeric.ok());
  EXPECT_FALSE(DeriveInteraction(*numeric, 0.5).ok());
}

TEST(DerivabilityTest, RoundTripThroughRandomStochasticPostProcessing) {
  // Any y = G·T with stochastic T must pass the Theorem 2 test, and the
  // recovered factor must reproduce y.
  Xoshiro256 rng(2025);
  const int n = 5;
  const double alpha = 0.35;
  auto g = GeometricMechanism::BuildMatrix(n, alpha);
  ASSERT_TRUE(g.ok());
  for (int trial = 0; trial < 20; ++trial) {
    Matrix t(static_cast<size_t>(n) + 1, static_cast<size_t>(n) + 1);
    for (size_t r = 0; r < t.rows(); ++r) {
      double sum = 0.0;
      for (size_t c = 0; c < t.cols(); ++c) {
        t.At(r, c) = rng.NextDoublePositive();
        sum += t.At(r, c);
      }
      for (size_t c = 0; c < t.cols(); ++c) t.At(r, c) /= sum;
    }
    Matrix derived_matrix = *g * t;
    auto m = Mechanism::Create(derived_matrix, 1e-9);
    ASSERT_TRUE(m.ok());
    auto verdict = CheckDerivability(*m, alpha);
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(verdict->derivable) << "trial " << trial;
    auto recovered = DeriveInteraction(*m, alpha);
    ASSERT_TRUE(recovered.ok());
    EXPECT_LT(Matrix::MaxAbsDiff(*g * *recovered, derived_matrix), 1e-8);
  }
}

TEST(DerivabilityTest, ConditionAndFactorizationAgreeOnRandomDpMechanisms) {
  // Property: for random α-DP mechanisms, the three-entry condition and
  // the sign pattern of G⁻¹M give the same verdict (Theorem 2 both ways).
  Xoshiro256 rng(777);
  const int n = 4;
  const double alpha = 0.5;
  int derivable_seen = 0, underivable_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Random DP mechanism: start from uniform and apply bounded random
    // multiplicative bumps that keep adjacent ratios within [α, 1/α].
    Matrix m(static_cast<size_t>(n) + 1, static_cast<size_t>(n) + 1);
    for (size_t c = 0; c < m.cols(); ++c) {
      double v = 0.5 + rng.NextDouble();
      for (size_t r = 0; r < m.rows(); ++r) {
        // Multiply by a factor in [α^(1/2), α^(-1/2)] per step.
        double f = std::pow(alpha, (rng.NextDouble() - 0.5));
        v *= f;
        m.At(r, c) = v;
      }
    }
    // Normalize rows... but row normalization breaks column ratios, so
    // instead normalize the whole matrix per-row via a common column scale:
    // rescale each column by 1, then divide each row by its sum — to keep
    // DP we verify after the fact and skip failures.
    for (size_t r = 0; r < m.rows(); ++r) {
      double sum = 0.0;
      for (size_t c = 0; c < m.cols(); ++c) sum += m.At(r, c);
      for (size_t c = 0; c < m.cols(); ++c) m.At(r, c) /= sum;
    }
    auto mech = Mechanism::Create(m, 1e-9);
    ASSERT_TRUE(mech.ok());
    auto dp = CheckDifferentialPrivacy(*mech, alpha);
    ASSERT_TRUE(dp.ok());
    if (!dp->is_private) continue;  // normalization broke DP; skip

    auto verdict = CheckDerivability(*mech, alpha);
    ASSERT_TRUE(verdict.ok());
    auto factor = DeriveInteraction(*mech, alpha);
    EXPECT_EQ(verdict->derivable, factor.ok())
        << "Theorem 2 condition and factorization disagree on trial "
        << trial;
    if (verdict->derivable) {
      ++derivable_seen;
    } else {
      ++underivable_seen;
    }
  }
  // The generator should exercise both sides of the characterization.
  EXPECT_GT(derivable_seen + underivable_seen, 50);
}

TEST(DerivabilityTest, TransitionChainComposesExactly) {
  // T_{α1,α2}·T_{α2,α3} == T_{α1,α3} (exact) — the algebra behind
  // Algorithm 1's correlated noise.
  Rational a1 = *Rational::FromInts(1, 5);
  Rational a2 = *Rational::FromInts(2, 5);
  Rational a3 = *Rational::FromInts(4, 5);
  auto t12 = PrivacyTransitionExact(4, a1, a2);
  auto t23 = PrivacyTransitionExact(4, a2, a3);
  auto t13 = PrivacyTransitionExact(4, a1, a3);
  ASSERT_TRUE(t12.ok() && t23.ok() && t13.ok());
  EXPECT_EQ(*t12 * *t23, *t13);
}

TEST(DerivabilityTest, CheckValidatesArguments) {
  Mechanism uni = Mechanism::Uniform(3);
  EXPECT_FALSE(CheckDerivability(uni, -0.2).ok());
  EXPECT_FALSE(CheckDerivability(uni, 1.0).ok());
  RationalMatrix rect(2, 3);
  EXPECT_FALSE(
      CheckDerivabilityExact(rect, *Rational::FromInts(1, 2)).ok());
}

TEST(DerivabilityTest, UniformIsDerivableFromGeometric) {
  // The uniform mechanism is y = G·T with T = G⁻¹·U; since U's columns are
  // constant the three-entry condition (1+α²)c >= 2αc holds, so it must
  // pass.
  Mechanism uni = Mechanism::Uniform(4);
  auto verdict = CheckDerivability(uni, 0.5);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->derivable);
  EXPECT_TRUE(DeriveInteraction(uni, 0.5).ok());
}

TEST(DerivabilityTest, IdentityIsNotDerivableFromGeometric) {
  // The identity (no-noise) mechanism is 0-DP only; deriving it from a
  // noisy G_{n,α} with α > 0 would remove noise, which Theorem 2 forbids:
  // column 0 has entries (1, 0, 0, ...) and the triple (1, 0, 0) violates
  // (1+α²)·0 >= α·(1+0).
  Mechanism id = Mechanism::Identity(4);
  auto verdict = CheckDerivability(id, 0.5);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->derivable);
  EXPECT_FALSE(DeriveInteraction(id, 0.5).ok());
}

}  // namespace
}  // namespace geopriv
