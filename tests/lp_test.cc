// Tests for the LP model and the two-phase simplex solver.

#include <gtest/gtest.h>

#include <cmath>

#include "lp/problem.h"
#include "lp/simplex.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

LpSolution SolveOrDie(const LpProblem& lp) {
  SimplexSolver solver;
  auto result = solver.Solve(lp);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(LpProblemTest, ValidateCatchesBadModels) {
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 1.0);
  lp.AddConstraint("ok", RowRelation::kLessEqual, 1.0, {{x, 1.0}});
  EXPECT_TRUE(lp.Validate().ok());

  LpProblem bad_var;
  bad_var.AddVariable("x", 2.0, 1.0, 0.0);  // lb > ub
  EXPECT_FALSE(bad_var.Validate().ok());

  LpProblem bad_ref;
  bad_ref.AddNonNegativeVariable("x", 0.0);
  bad_ref.AddConstraint("bad", RowRelation::kEqual, 0.0, {{5, 1.0}});
  EXPECT_FALSE(bad_ref.Validate().ok());

  LpProblem bad_rhs;
  int y = bad_rhs.AddNonNegativeVariable("y", 0.0);
  bad_rhs.AddConstraint("bad", RowRelation::kEqual,
                        std::numeric_limits<double>::infinity(),
                        {{y, 1.0}});
  EXPECT_FALSE(bad_rhs.Validate().ok());

#ifdef NDEBUG
  // A term streamed before any row is opened belongs to no constraint;
  // Validate must reject it rather than let the solver silently drop it.
  // (Debug builds already die on the assert inside AddTerm, so this
  // misuse path only exists with NDEBUG.)
  LpProblem orphan;
  orphan.AddNonNegativeVariable("x", 1.0);
  orphan.AddTerm(0, 1.0);
  orphan.BeginConstraint("late", RowRelation::kLessEqual, 1.0);
  EXPECT_FALSE(orphan.Validate().ok());
#endif
}

TEST(LpProblemTest, StreamedRowsMatchVectorRows) {
  // BeginConstraint/AddTerm streams terms into the CSR arena; the result
  // must be indistinguishable from the AddConstraint vector wrapper.
  LpProblem streamed;
  LpProblem wrapped;
  for (LpProblem* lp : {&streamed, &wrapped}) {
    lp->AddNonNegativeVariable("x", 2.0);
    lp->AddNonNegativeVariable("y", 3.0);
  }
  streamed.BeginConstraint("c1", RowRelation::kGreaterEqual, 4.0);
  streamed.AddTerm(0, 1.0);
  streamed.AddTerm(1, 1.0);
  streamed.BeginConstraint("c2", RowRelation::kGreaterEqual, 6.0);
  streamed.AddTerm(0, 1.0);
  streamed.AddTerm(1, 3.0);
  wrapped.AddConstraint("c1", RowRelation::kGreaterEqual, 4.0,
                        {{0, 1.0}, {1, 1.0}});
  wrapped.AddConstraint("c2", RowRelation::kGreaterEqual, 6.0,
                        {{0, 1.0}, {1, 3.0}});

  ASSERT_EQ(streamed.num_constraints(), wrapped.num_constraints());
  for (int i = 0; i < streamed.num_constraints(); ++i) {
    LpProblem::RowView a = streamed.row(i);
    LpProblem::RowView b = wrapped.row(i);
    EXPECT_EQ(*a.name, *b.name);
    EXPECT_EQ(a.relation, b.relation);
    EXPECT_EQ(a.rhs, b.rhs);
    ASSERT_EQ(a.num_terms, b.num_terms);
    for (size_t k = 0; k < a.num_terms; ++k) {
      EXPECT_EQ(a.terms[k].var, b.terms[k].var);
      EXPECT_EQ(a.terms[k].coeff, b.terms[k].coeff);
    }
  }
  LpSolution sa = SolveOrDie(streamed);
  LpSolution sb = SolveOrDie(wrapped);
  ASSERT_EQ(sa.status, LpStatus::kOptimal);
  EXPECT_EQ(sa.objective, sb.objective);
  EXPECT_EQ(sa.iterations, sb.iterations);
}

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), obj 36.
  LpProblem lp;
  lp.SetSense(LpSense::kMaximize);
  int x = lp.AddNonNegativeVariable("x", 3.0);
  int y = lp.AddNonNegativeVariable("y", 5.0);
  lp.AddConstraint("c1", RowRelation::kLessEqual, 4.0, {{x, 1.0}});
  lp.AddConstraint("c2", RowRelation::kLessEqual, 12.0, {{y, 2.0}});
  lp.AddConstraint("c3", RowRelation::kLessEqual, 18.0,
                   {{x, 3.0}, {y, 2.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 6.0, 1e-9);
}

TEST(SimplexTest, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6  ->  (3, 1), obj 9.
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 2.0);
  int y = lp.AddNonNegativeVariable("y", 3.0);
  lp.AddConstraint("c1", RowRelation::kGreaterEqual, 4.0,
                   {{x, 1.0}, {y, 1.0}});
  lp.AddConstraint("c2", RowRelation::kGreaterEqual, 6.0,
                   {{x, 1.0}, {y, 3.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 3.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 1.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + y s.t. x + 2y = 4, 3x + y = 7  ->  x = 2, y = 1, obj 3.
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 1.0);
  int y = lp.AddNonNegativeVariable("y", 1.0);
  lp.AddConstraint("e1", RowRelation::kEqual, 4.0, {{x, 1.0}, {y, 2.0}});
  lp.AddConstraint("e2", RowRelation::kEqual, 7.0, {{x, 3.0}, {y, 1.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 1.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 1.0);
  lp.AddConstraint("c1", RowRelation::kLessEqual, 1.0, {{x, 1.0}});
  lp.AddConstraint("c2", RowRelation::kGreaterEqual, 2.0, {{x, 1.0}});
  LpSolution s = SolveOrDie(lp);
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  LpProblem lp;
  lp.SetSense(LpSense::kMaximize);
  int x = lp.AddNonNegativeVariable("x", 1.0);
  int y = lp.AddNonNegativeVariable("y", 1.0);
  lp.AddConstraint("c1", RowRelation::kGreaterEqual, 1.0,
                   {{x, 1.0}, {y, -1.0}});
  LpSolution s = SolveOrDie(lp);
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, FreeVariables) {
  // min |shift|-style: x free, min x s.t. x >= -5 is modeled via bounds.
  // Here: min y s.t. y >= x - 3, y >= 3 - x with x free  ->  y = 0, x = 3.
  LpProblem lp;
  int x = lp.AddVariable("x", -kLpInfinity, kLpInfinity, 0.0);
  int y = lp.AddNonNegativeVariable("y", 1.0);
  lp.AddConstraint("c1", RowRelation::kGreaterEqual, -3.0,
                   {{y, 1.0}, {x, -1.0}});
  lp.AddConstraint("c2", RowRelation::kGreaterEqual, 3.0,
                   {{y, 1.0}, {x, 1.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 3.0, 1e-9);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x s.t. x >= -5 (bound)  ->  x = -5.
  LpProblem lp;
  int x = lp.AddVariable("x", -5.0, kLpInfinity, 1.0);
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], -5.0, 1e-9);
}

TEST(SimplexTest, TwoSidedBounds) {
  // max x + y with 1 <= x <= 2, -3 <= y <= -1  ->  (2, -1).
  LpProblem lp;
  lp.SetSense(LpSense::kMaximize);
  int x = lp.AddVariable("x", 1.0, 2.0, 1.0);
  int y = lp.AddVariable("y", -3.0, -1.0, 1.0);
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], -1.0, 1e-9);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
}

TEST(SimplexTest, UpperBoundOnlyVariable) {
  // max x with x <= 7 and x unbounded below; objective pushes up.
  LpProblem lp;
  lp.SetSense(LpSense::kMaximize);
  int x = lp.AddVariable("x", -kLpInfinity, 7.0, 1.0);
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 7.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  LpProblem lp;
  lp.SetSense(LpSense::kMaximize);
  int x = lp.AddNonNegativeVariable("x", 10.0);
  int y = lp.AddNonNegativeVariable("y", -57.0);
  int z = lp.AddNonNegativeVariable("z", -9.0);
  int w = lp.AddNonNegativeVariable("w", -24.0);
  lp.AddConstraint("c1", RowRelation::kLessEqual, 0.0,
                   {{x, 0.5}, {y, -5.5}, {z, -2.5}, {w, 9.0}});
  lp.AddConstraint("c2", RowRelation::kLessEqual, 0.0,
                   {{x, 0.5}, {y, -1.5}, {z, -0.5}, {w, 1.0}});
  lp.AddConstraint("c3", RowRelation::kLessEqual, 1.0, {{x, 1.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Known optimum of Chvatal's cycling example: x = (1, 0, 1, 0), obj 1.
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // Duplicate equality rows leave a basic artificial at zero; the solver
  // must still finish and report the right optimum.
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 1.0);
  int y = lp.AddNonNegativeVariable("y", 2.0);
  lp.AddConstraint("e1", RowRelation::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  lp.AddConstraint("e1_dup", RowRelation::kEqual, 3.0,
                   {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 3.0, 1e-9);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -2  (i.e. x >= 2).
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 1.0);
  lp.AddConstraint("c", RowRelation::kLessEqual, -2.0, {{x, -1.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-9);
}

TEST(SimplexTest, ZeroObjectiveFindsFeasiblePoint) {
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", 0.0);
  int y = lp.AddNonNegativeVariable("y", 0.0);
  lp.AddConstraint("e", RowRelation::kEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)] +
                  s.values[static_cast<size_t>(y)],
              5.0, 1e-9);
}

// Property sweep: randomized transportation problems have known optimal
// cost structure we can sanity-check via feasibility + duality bound.
class SimplexRandomizedTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomizedTest, TransportationProblemsSolveAndAreFeasible) {
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()));
  const int suppliers = 3 + GetParam() % 3;
  const int consumers = 2 + GetParam() % 4;
  std::vector<double> supply(suppliers), demand(consumers);
  double total = 0.0;
  for (int i = 0; i < suppliers; ++i) {
    supply[static_cast<size_t>(i)] = 1.0 + static_cast<double>(rng.NextBounded(9));
    total += supply[static_cast<size_t>(i)];
  }
  // Make demand sum equal supply sum.
  double remaining = total;
  for (int j = 0; j < consumers; ++j) {
    double d = (j == consumers - 1)
                   ? remaining
                   : remaining * 0.5 * rng.NextDouble();
    demand[static_cast<size_t>(j)] = d;
    remaining -= d;
  }

  LpProblem lp;
  std::vector<std::vector<int>> var(static_cast<size_t>(suppliers),
                                    std::vector<int>(consumers));
  for (int i = 0; i < suppliers; ++i) {
    for (int j = 0; j < consumers; ++j) {
      double cost = 1.0 + static_cast<double>(rng.NextBounded(20));
      var[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          lp.AddNonNegativeVariable("t", cost);
    }
  }
  for (int i = 0; i < suppliers; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < consumers; ++j) {
      terms.push_back({var[static_cast<size_t>(i)][static_cast<size_t>(j)], 1.0});
    }
    lp.AddConstraint("supply", RowRelation::kEqual,
                     supply[static_cast<size_t>(i)], std::move(terms));
  }
  for (int j = 0; j < consumers; ++j) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < suppliers; ++i) {
      terms.push_back({var[static_cast<size_t>(i)][static_cast<size_t>(j)], 1.0});
    }
    lp.AddConstraint("demand", RowRelation::kEqual,
                     demand[static_cast<size_t>(j)], std::move(terms));
  }

  LpSolution s = SolveOrDie(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Feasibility: all flows non-negative, rows satisfied.
  double shipped = 0.0;
  for (double v : s.values) {
    EXPECT_GE(v, -1e-9);
    shipped += v;
  }
  EXPECT_NEAR(shipped, total, 1e-6);
  EXPECT_GE(s.objective, total * 1.0 - 1e-6);  // every unit costs >= 1
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexRandomizedTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace geopriv
