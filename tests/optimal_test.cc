// Tests for the two LPs of Sections 2.4.3 / 2.5 and the paper's headline
// Theorem 1 part 2: optimally post-processing the geometric mechanism is
// exactly as good as the per-consumer optimal DP mechanism.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/consumer.h"
#include "core/geometric.h"
#include "core/loss.h"
#include "core/optimal.h"
#include "core/privacy.h"

namespace geopriv {
namespace {

MinimaxConsumer MakeConsumer(const LossFunction& loss,
                             const SideInformation& side) {
  auto c = MinimaxConsumer::Create(loss, side);
  EXPECT_TRUE(c.ok());
  return *c;
}

TEST(OptimalMechanismTest, ValidatesArguments) {
  MinimaxConsumer c =
      MakeConsumer(LossFunction::AbsoluteError(), SideInformation::All(3));
  EXPECT_FALSE(SolveOptimalMechanism(-1, 0.5, c).ok());
  EXPECT_FALSE(SolveOptimalMechanism(3, 1.5, c).ok());
  EXPECT_FALSE(SolveOptimalMechanism(4, 0.5, c).ok());  // n mismatch
  EXPECT_TRUE(SolveOptimalMechanism(3, 0.5, c).ok());
}

TEST(OptimalMechanismTest, ResultIsAlphaPrivateAndStochastic) {
  MinimaxConsumer c =
      MakeConsumer(LossFunction::AbsoluteError(), SideInformation::All(4));
  auto result = SolveOptimalMechanism(4, 0.4, c);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->mechanism.matrix().IsRowStochastic(1e-6));
  auto dp = CheckDifferentialPrivacy(result->mechanism, 0.4, 1e-6);
  ASSERT_TRUE(dp.ok());
  EXPECT_TRUE(dp->is_private);
  // The reported loss matches the mechanism's actual minimax loss.
  EXPECT_NEAR(*c.WorstCaseLoss(result->mechanism), result->loss, 1e-6);
}

TEST(OptimalMechanismTest, AlphaZeroAllowsPerfectAccuracy) {
  MinimaxConsumer c =
      MakeConsumer(LossFunction::SquaredError(), SideInformation::All(3));
  auto result = SolveOptimalMechanism(3, 0.0, c);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->loss, 0.0, 1e-9);
}

TEST(OptimalMechanismTest, AbsolutePrivacyForcesConstantRows) {
  // α = 1 forces identical rows; the best constant distribution's worst
  // case for absolute loss on {0..2} is 1 (put all mass on the middle).
  MinimaxConsumer c =
      MakeConsumer(LossFunction::AbsoluteError(), SideInformation::All(2));
  auto result = SolveOptimalMechanism(2, 1.0, c);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->loss, 1.0, 1e-6);
  for (int r = 0; r <= 2; ++r) {
    EXPECT_NEAR(result->mechanism.Probability(0, r),
                result->mechanism.Probability(2, r), 1e-6);
  }
}

TEST(OptimalMechanismTest, LossDecreasesAsAlphaDecreases) {
  // Less privacy (smaller α) can only help utility.
  MinimaxConsumer c =
      MakeConsumer(LossFunction::AbsoluteError(), SideInformation::All(5));
  double previous = 1e100;
  for (double alpha : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    auto result = SolveOptimalMechanism(5, alpha, c);
    ASSERT_TRUE(result.ok()) << "alpha=" << alpha;
    EXPECT_LE(result->loss, previous + 1e-7) << "alpha=" << alpha;
    previous = result->loss;
  }
}

TEST(OptimalInteractionTest, InducedMechanismAndLossConsistent) {
  auto geo = GeometricMechanism::Create(4, 0.5);
  ASSERT_TRUE(geo.ok());
  auto deployed = geo->ToMechanism();
  ASSERT_TRUE(deployed.ok());
  MinimaxConsumer c = MakeConsumer(LossFunction::SquaredError(),
                                   *SideInformation::Interval(1, 3, 4));
  auto result = SolveOptimalInteraction(*deployed, c);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->interaction.IsRowStochastic(1e-6));
  EXPECT_NEAR(*c.WorstCaseLoss(result->induced), result->loss, 1e-6);
  // Rational interaction can only improve on taking y at face value.
  EXPECT_LE(result->loss, *c.WorstCaseLoss(*deployed) + 1e-7);
}

TEST(OptimalInteractionTest, SideInformationIsExploited) {
  // A consumer who knows the count is exactly 2 can achieve zero loss by
  // remapping every output to 2.
  auto geo = GeometricMechanism::Create(4, 0.5);
  ASSERT_TRUE(geo.ok());
  auto deployed = geo->ToMechanism();
  ASSERT_TRUE(deployed.ok());
  MinimaxConsumer c = MakeConsumer(LossFunction::AbsoluteError(),
                                   *SideInformation::FromSet({2}, 4));
  auto result = SolveOptimalInteraction(*deployed, c);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->loss, 0.0, 1e-9);
}

TEST(OptimalInteractionTest, PaperExample1DrugCompanyRemap) {
  // Example 1: side information S = {l..n}; the rational consumer remaps
  // outputs below l, and its loss strictly improves over face value.
  const int n = 8, l = 5;
  auto geo = GeometricMechanism::Create(n, 0.5);
  ASSERT_TRUE(geo.ok());
  auto deployed = geo->ToMechanism();
  ASSERT_TRUE(deployed.ok());
  MinimaxConsumer c = MakeConsumer(LossFunction::AbsoluteError(),
                                   *SideInformation::Interval(l, n, n));
  auto result = SolveOptimalInteraction(*deployed, c);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->loss, *c.WorstCaseLoss(*deployed) - 1e-6);
}

// ---------------------------------------------------------------------------
// The headline: Theorem 1 part 2 (universal optimality), swept over
// consumers (loss x side-information), privacy levels and database sizes.
// ---------------------------------------------------------------------------

struct UniversalCase {
  int n;
  double alpha;
  std::string loss_name;
  int side_lo;
  int side_hi;
};

class UniversalOptimalityTest
    : public ::testing::TestWithParam<UniversalCase> {};

LossFunction LossByName(const std::string& name) {
  if (name == "absolute") return LossFunction::AbsoluteError();
  if (name == "squared") return LossFunction::SquaredError();
  if (name == "zero-one") return LossFunction::ZeroOne();
  return *LossFunction::CappedAbsoluteError(2.0);
}

TEST_P(UniversalOptimalityTest,
       PostProcessedGeometricMatchesPerConsumerOptimum) {
  const UniversalCase& tc = GetParam();
  MinimaxConsumer consumer = MakeConsumer(
      LossByName(tc.loss_name),
      *SideInformation::Interval(tc.side_lo, tc.side_hi, tc.n));

  // Per-consumer optimum (Section 2.5 LP).
  auto optimal = SolveOptimalMechanism(tc.n, tc.alpha, consumer);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();

  // Rational interaction with the deployed geometric mechanism
  // (Section 2.4.3 LP).
  auto geo = GeometricMechanism::Create(tc.n, tc.alpha);
  ASSERT_TRUE(geo.ok());
  auto deployed = geo->ToMechanism();
  ASSERT_TRUE(deployed.ok());
  auto interaction = SolveOptimalInteraction(*deployed, consumer);
  ASSERT_TRUE(interaction.ok()) << interaction.status().ToString();

  // Theorem 1 part 2: equal losses.  The interaction can never beat the
  // optimum (its induced mechanism is itself α-DP), and by universality it
  // must achieve it.
  EXPECT_NEAR(interaction->loss, optimal->loss, 1e-5)
      << "n=" << tc.n << " alpha=" << tc.alpha << " loss=" << tc.loss_name
      << " S={" << tc.side_lo << ".." << tc.side_hi << "}";

  // The induced mechanism stays differentially private.
  auto dp = CheckDifferentialPrivacy(interaction->induced, tc.alpha, 1e-6);
  ASSERT_TRUE(dp.ok());
  EXPECT_TRUE(dp->is_private);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniversalOptimalityTest,
    ::testing::Values(
        // The paper's Table 1 instance.
        UniversalCase{3, 0.25, "absolute", 0, 3},
        UniversalCase{3, 0.25, "squared", 0, 3},
        UniversalCase{3, 0.25, "zero-one", 0, 3},
        // Varying privacy level.
        UniversalCase{4, 0.1, "absolute", 0, 4},
        UniversalCase{4, 0.5, "absolute", 0, 4},
        UniversalCase{4, 0.8, "absolute", 0, 4},
        // Varying side information (drug-company lower bounds, upper
        // bounds, tight windows).
        UniversalCase{5, 0.5, "absolute", 2, 5},
        UniversalCase{5, 0.5, "squared", 0, 3},
        UniversalCase{5, 0.5, "zero-one", 1, 4},
        UniversalCase{5, 0.4, "capped", 2, 4},
        // Larger databases.
        UniversalCase{8, 0.3, "absolute", 0, 8},
        UniversalCase{8, 0.6, "squared", 3, 8},
        UniversalCase{10, 0.5, "zero-one", 0, 10},
        UniversalCase{10, 0.7, "absolute", 4, 7},
        UniversalCase{12, 0.45, "squared", 0, 12}),
    [](const ::testing::TestParamInfo<UniversalCase>& info) {
      const UniversalCase& c = info.param;
      std::string name = "n" + std::to_string(c.n) + "_a" +
                         std::to_string(static_cast<int>(c.alpha * 100)) +
                         "_" + c.loss_name + "_S" +
                         std::to_string(c.side_lo) + "to" +
                         std::to_string(c.side_hi);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(UniversalOptimalityTest, SingletonSideInformationAchievesZero) {
  // Degenerate consumers (|S| = 1) reach zero loss both ways.
  const int n = 6;
  for (int known = 0; known <= n; ++known) {
    MinimaxConsumer consumer =
        MakeConsumer(LossFunction::AbsoluteError(),
                     *SideInformation::FromSet({known}, n));
    auto optimal = SolveOptimalMechanism(n, 0.5, consumer);
    ASSERT_TRUE(optimal.ok());
    EXPECT_NEAR(optimal->loss, 0.0, 1e-8);
    auto geo = GeometricMechanism::Create(n, 0.5);
    auto deployed = geo->ToMechanism();
    ASSERT_TRUE(deployed.ok());
    auto interaction = SolveOptimalInteraction(*deployed, consumer);
    ASSERT_TRUE(interaction.ok());
    EXPECT_NEAR(interaction->loss, 0.0, 1e-8);
  }
}

}  // namespace
}  // namespace geopriv
