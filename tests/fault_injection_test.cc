// Fault injection and the robustness guarantees it proves.
//
// Three layers of tests:
//   1. The registry itself: spec grammar, catalog validation, trigger
//      counts, disarming.
//   2. Injected *failures* (action "fail"): every persistence path must
//      surface a Status and leave previously committed state loadable.
//   3. Injected *crashes* (action "abort", run in a fork()ed child): the
//      write-then-rename persistence paths must be crash-consistent — the
//      ledger never under-charges a committed (replied-to) batch, and a
//      cache entry is either absent or bit-identical after a crash at any
//      registered persistence fault point, never torn.
//
// Plus the deadline and overload-degradation guarantees from the same PR:
// a deadline-bounded cold solve times out within 2x its deadline while
// cached queries keep being served, and shed replies carry retry hints.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/geometric.h"

#include "core/io.h"
#include "service/server.h"
#include "service/service_flags.h"
#include "util/arg_parser.h"
#include "util/fault_injection.h"

namespace geopriv {
namespace {

namespace fs = std::filesystem;
namespace fi = fault_injection;

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

MechanismSignature Sig(int n, const Rational& alpha,
                       const std::string& loss = "absolute",
                       ServeMode mode = ServeMode::kExactOptimal) {
  auto sig = MechanismSignature::Create(n, alpha, loss, 0, n, mode);
  EXPECT_TRUE(sig.ok()) << sig.status().ToString();
  return *sig;
}

// Every test leaves the process-global registry clean, so test order can
// never leak an armed fault into an unrelated test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fi::Disarm(); }
  void TearDown() override { fi::Disarm(); }
};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

// A cheap charging query (geometric mode solves in microseconds).
std::string GeometricQuery(const std::string& consumer, int seed, int n = 6) {
  return "{\"op\":\"query\",\"consumer\":\"" + consumer +
         "\",\"n\":" + std::to_string(n) +
         ",\"alpha\":\"1/2\",\"mode\":\"geometric\",\"count\":2,"
         "\"seed\":" + std::to_string(seed) + "}";
}

bool HasTmpDebris(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return false;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    if (dirent.path().extension() == ".tmp") return true;
  }
  return false;
}

// ---- the registry -----------------------------------------------------------

TEST_F(FaultInjectionTest, CatalogListsEveryRegisteredPoint) {
  const std::vector<std::string> points = fi::KnownPoints();
  for (const char* expected :
       {"cache.basis.rename", "cache.basis.write", "cache.entry.rename",
        "cache.entry.write", "cache.evict.unlink", "cache.manifest.rename",
        "cache.manifest.write", "io.save.write", "ledger.rename",
        "ledger.write", "server.accept", "server.recv", "server.send"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), expected),
              points.end())
        << expected;
  }
}

TEST_F(FaultInjectionTest, RejectsUnknownPointsActionsAndCounts) {
  EXPECT_FALSE(fi::ArmFromSpec("no.such.point=fail").ok());
  EXPECT_FALSE(fi::ArmFromSpec("io.save.write=explode").ok());
  EXPECT_FALSE(fi::ArmFromSpec("io.save.write=fail@zero").ok());
  EXPECT_FALSE(fi::ArmFromSpec("io.save.write=fail@0").ok());
  EXPECT_FALSE(fi::ArmFromSpec("io.save.write=delay:never").ok());
  EXPECT_FALSE(fi::ArmFromSpec("io.save.write").ok());
  // A bad clause anywhere in the list arms nothing.
  EXPECT_FALSE(
      fi::ArmFromSpec("io.save.write=fail,ledger.write=explode").ok());
  EXPECT_FALSE(fi::Armed());
  EXPECT_TRUE(fi::Fire("io.save.write").ok());
}

TEST_F(FaultInjectionTest, TriggerCountDelaysTheFailure) {
  ASSERT_TRUE(fi::ArmFromSpec("io.save.write=fail@3").ok());
  EXPECT_TRUE(fi::Armed());
  EXPECT_TRUE(fi::Fire("io.save.write").ok());
  EXPECT_TRUE(fi::Fire("io.save.write").ok());
  EXPECT_FALSE(fi::Fire("io.save.write").ok());
  EXPECT_FALSE(fi::Fire("io.save.write").ok());  // sticky once triggered
  EXPECT_EQ(fi::HitCount("io.save.write"), 4);
  // An unarmed point in the same process is unaffected.
  EXPECT_TRUE(fi::Fire("ledger.write").ok());
  fi::Disarm();
  EXPECT_FALSE(fi::Armed());
  EXPECT_TRUE(fi::Fire("io.save.write").ok());
  EXPECT_EQ(fi::HitCount("io.save.write"), 0);
}

TEST_F(FaultInjectionTest, DelayActionPassesAfterSleeping) {
  ASSERT_TRUE(fi::ArmFromSpec("io.save.write=delay:10").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(fi::Fire("io.save.write").ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(10));
}

// ---- injected failures ------------------------------------------------------

TEST_F(FaultInjectionTest, SaveMechanismSurfacesInjectedFailure) {
  auto geometric = GeometricMechanism::Create(4, 0.5);
  ASSERT_TRUE(geometric.ok());
  auto mechanism = geometric->ToMechanism();
  ASSERT_TRUE(mechanism.ok());
  const std::string path =
      FreshDir("geopriv_fault_io") + "/mech.txt";
  fs::create_directories(fs::path(path).parent_path());
  ASSERT_TRUE(fi::ArmFromSpec("io.save.write=fail").ok());
  const Status failed = SaveMechanism(*mechanism, path);
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected fault"), std::string::npos);
  // Fired before the destination is touched: nothing was created.
  EXPECT_FALSE(fs::exists(path));
  fi::Disarm();
  EXPECT_TRUE(SaveMechanism(*mechanism, path).ok());
  EXPECT_TRUE(LoadMechanism(path).ok());
}

TEST_F(FaultInjectionTest, CacheSaveFailureLeavesLoadableDirectory) {
  const std::string dir = FreshDir("geopriv_fault_cache_fail");
  MechanismCache cache;
  ASSERT_TRUE(
      cache.GetOrSolve(Sig(6, R(1, 2), "absolute", ServeMode::kGeometric))
          .ok());
  // A committed entry first, so the failing re-save has a survivor to
  // endanger.
  ASSERT_TRUE(cache.SaveToDirectory(dir).ok());
  ASSERT_TRUE(fi::ArmFromSpec("cache.entry.write=fail").ok());
  EXPECT_FALSE(cache.SaveToDirectory(dir).ok());
  fi::Disarm();
  // The failed rewrite left tmp debris at worst; the committed entry
  // still loads bit-identically (load re-validates the matrix).
  MechanismCache reloaded;
  auto loaded = reloaded.LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->loaded, 1);
  EXPECT_EQ(loaded->quarantined, 0);
  EXPECT_FALSE(HasTmpDebris(dir));
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, LedgerWriteFailureWithholdsTheReply) {
  const std::string dir = FreshDir("geopriv_fault_ledger_fail");
  ServiceOptions options;
  options.budget_alpha = 0.1;
  options.persist_dir = dir;
  options.threads = 1;
  bool shutdown = false;
  {
    MechanismService service(options);
    ASSERT_TRUE(service.LoadPersisted().ok());
    ASSERT_TRUE(fi::ArmFromSpec("ledger.write=fail").ok());
    // The charge cannot be made durable, so the released value must be
    // withheld (a "persist" error), not handed out and forgotten.
    const std::string reply =
        service.HandleLine(GeometricQuery("alice", 7), &shutdown);
    EXPECT_NE(reply.find("\"op\":\"persist\""), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    fi::Disarm();
  }
  // Nothing durable: a fresh service sees an uncharged consumer.
  MechanismService service(options);
  ASSERT_TRUE(service.LoadPersisted().ok());
  EXPECT_EQ(service.ledger().Level("alice"), 1.0);
  fs::remove_all(dir);
}

// ---- crash recovery (fork + abort) ------------------------------------------

// Runs `child` in a fork()ed process.  The child must end by crashing at
// an armed abort fault point; reaching the end alive is reported as a
// clean exit (and failed by the caller's SIGABRT assertion).  The service
// under test runs with threads=1: a forked child must stay single-
// threaded, and the serial path exercises the same persistence code.
template <typename Fn>
int RunForked(Fn&& child) {
  std::fflush(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    child();
    _exit(0);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

ServiceOptions SerialPersistOptions(const std::string& dir) {
  ServiceOptions options;
  options.budget_alpha = 0.1;
  options.persist_dir = dir;
  options.threads = 1;
  return options;
}

// The ledger side of the acceptance harness, shared by the write- and
// rename-point tests: the child commits one charging batch (replied to),
// then crashes persisting the second.  After restart the ledger must
// still hold the FIRST charge — the committed batch is never
// under-charged — while the second, whose reply never went out, may
// legitimately be absent.
void LedgerCrashRoundTrip(const std::string& point) {
  const std::string dir = FreshDir("geopriv_crash_" + point);
  const int status = RunForked([&] {
    ASSERT_TRUE(fi::ArmFromSpec(point + "=abort@2").ok());
    MechanismService service(SerialPersistOptions(dir));
    ASSERT_TRUE(service.LoadPersisted().ok());
    bool shutdown = false;
    // First batch: persists (hit 1 passes) and replies.
    (void)service.HandleLine(GeometricQuery("alice", 1), &shutdown);
    // Second batch: crashes inside PersistLedger, before any reply.
    (void)service.HandleLine(GeometricQuery("alice", 2), &shutdown);
  });
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGABRT);

  MechanismService service(SerialPersistOptions(dir));
  auto loaded = service.LoadPersisted();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Exactly the committed charge: alpha=1/2 once.  Less than 0.5 would
  // mean the crash charged budget nobody received; more than 0.5 would
  // mean the committed release was forgotten (the unsafe direction).
  EXPECT_EQ(service.ledger().Level("alice"), 0.5);
  EXPECT_EQ(service.ledger().Releases("alice"), 1u);
  // LoadPersisted swept the uncommitted tmp debris.
  EXPECT_FALSE(fs::exists(dir + "/ledger.jsonl.tmp"));
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, CrashDuringLedgerWriteNeverUnderCharges) {
  LedgerCrashRoundTrip("ledger.write");
}

TEST_F(FaultInjectionTest, CrashBeforeLedgerRenameKeepsCommittedSnapshot) {
  LedgerCrashRoundTrip("ledger.rename");
}

// The cache side: entries persist at publish time (inside GetOrSolve),
// so the crash fires mid-query, before the ledger charge and before any
// reply.  A crash mid-entry-write (or pre-rename) must leave previously
// committed entries intact and the in-flight entry simply absent — never
// torn.  LoadFromDirectory re-validates every matrix, so "loads at all"
// certifies "not torn".
void CacheEntryCrashRoundTrip(const std::string& point) {
  const std::string dir = FreshDir("geopriv_crash_" + point);
  // Run 1 (clean): commit one entry + one charge, so the crashing publish
  // in run 2 endangers a real committed store.
  {
    MechanismService service(SerialPersistOptions(dir));
    ASSERT_TRUE(service.LoadPersisted().ok());
    bool shutdown = false;
    (void)service.HandleLine(GeometricQuery("alice", 1), &shutdown);
    (void)service.HandleLine("{\"op\":\"shutdown\"}", &shutdown);
  }
  ASSERT_FALSE(HasTmpDebris(dir));

  // Run 2: a query for a NEW signature publishes (and persists) a second
  // entry; the child crashes at the armed point inside that persist —
  // before the charge, before the reply.
  const int status = RunForked([&] {
    ASSERT_TRUE(fi::ArmFromSpec(point + "=abort").ok());
    MechanismService service(SerialPersistOptions(dir));
    ASSERT_TRUE(service.LoadPersisted().ok());
    bool shutdown = false;
    (void)service.HandleLine(GeometricQuery("alice", 2, /*n=*/7), &shutdown);
  });
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGABRT);

  // Restart: the committed entry survived intact (a torn file would be
  // quarantined, not loaded), the crashed entry is absent, the ledger
  // still holds exactly the committed charge (the crashed query never
  // replied, so it must not have charged), the debris is gone.
  MechanismService service(SerialPersistOptions(dir));
  auto loaded = service.LoadPersisted();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 1);
  EXPECT_EQ(service.cache().GetStats().quarantined, 0u);
  EXPECT_EQ(service.ledger().Level("alice"), 0.5);
  EXPECT_FALSE(HasTmpDebris(dir));
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, CrashDuringCacheEntryWriteLeavesOldEntryIntact) {
  CacheEntryCrashRoundTrip("cache.entry.write");
}

TEST_F(FaultInjectionTest, CrashBeforeCacheEntryRenameLeavesOldEntryIntact) {
  CacheEntryCrashRoundTrip("cache.entry.rename");
}

TEST_F(FaultInjectionTest, CrashOnFirstEverEntryPersistLeavesStoreEmpty) {
  // No committed version exists: after the crash the entry must simply be
  // absent (and its torn tmp swept), never half-loaded.  The crash fires
  // at publish time, before the ledger charge, so the consumer stays
  // uncharged for the reply that never went out.
  const std::string dir = FreshDir("geopriv_crash_first_persist");
  const int status = RunForked([&] {
    ASSERT_TRUE(fi::ArmFromSpec("cache.entry.write=abort").ok());
    MechanismService service(SerialPersistOptions(dir));
    ASSERT_TRUE(service.LoadPersisted().ok());
    bool shutdown = false;
    (void)service.HandleLine(GeometricQuery("alice", 1), &shutdown);
  });
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGABRT);

  MechanismService service(SerialPersistOptions(dir));
  auto loaded = service.LoadPersisted();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 0);
  EXPECT_EQ(service.ledger().Level("alice"), 1.0);
  EXPECT_FALSE(HasTmpDebris(dir));
  fs::remove_all(dir);
}

// ---- crash recovery: basis, manifest, eviction fault points -----------------

CacheOptions PersistCacheOptions(const std::string& dir) {
  CacheOptions options;
  options.threads = 1;
  options.persist_dir = dir;
  return options;
}

// A crash while persisting the basis sidecar (mid-write or pre-rename)
// happens AFTER the entry file committed but BEFORE the manifest listed
// it.  Restart must still adopt the entry (first-ever store: no manifest
// yet), sweep the torn basis tmp, and simply run without a warm-start
// seed — a lost basis is a performance artifact, never an error.
void BasisCrashRoundTrip(const std::string& point) {
  const std::string dir = FreshDir("geopriv_crash_" + point);
  const int status = RunForked([&] {
    ASSERT_TRUE(fi::ArmFromSpec(point + "=abort").ok());
    MechanismCache cache(PersistCacheOptions(dir));
    // Exact mode: the only mode that carries an LP basis.
    (void)cache.GetOrSolve(Sig(5, R(1, 2)));
  });
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGABRT);

  MechanismCache reloaded(PersistCacheOptions(dir));
  auto report = reloaded.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_EQ(report->basis_reloads, 0);
  EXPECT_EQ(report->quarantined, 0);
  EXPECT_TRUE(reloaded.Contains(Sig(5, R(1, 2))));
  EXPECT_FALSE(HasTmpDebris(dir));
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, CrashDuringBasisWriteLeavesEntryServableSeedless) {
  BasisCrashRoundTrip("cache.basis.write");
}

TEST_F(FaultInjectionTest, CrashBeforeBasisRenameLeavesEntryServableSeedless) {
  BasisCrashRoundTrip("cache.basis.rename");
}

// A crash while committing the manifest leaves the just-persisted entry
// files on disk with no manifest (first-ever store).  Restart adopts
// them — fully re-validated — and rewrites the manifest.
void ManifestCrashRoundTrip(const std::string& point) {
  const std::string dir = FreshDir("geopriv_crash_" + point);
  const int status = RunForked([&] {
    ASSERT_TRUE(fi::ArmFromSpec(point + "=abort").ok());
    MechanismCache cache(PersistCacheOptions(dir));
    (void)cache.GetOrSolve(
        Sig(6, R(1, 2), "absolute", ServeMode::kGeometric));
  });
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGABRT);

  MechanismCache reloaded(PersistCacheOptions(dir));
  auto report = reloaded.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_EQ(report->quarantined, 0);
  EXPECT_TRUE(
      reloaded.Contains(Sig(6, R(1, 2), "absolute", ServeMode::kGeometric)));
  EXPECT_FALSE(HasTmpDebris(dir));
  // The adopting load re-committed the manifest.
  EXPECT_TRUE(fs::exists(dir + "/manifest"));
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, CrashDuringManifestWriteAdoptsFilesOnRestart) {
  ManifestCrashRoundTrip("cache.manifest.write");
}

TEST_F(FaultInjectionTest, CrashBeforeManifestRenameAdoptsFilesOnRestart) {
  ManifestCrashRoundTrip("cache.manifest.rename");
}

TEST_F(FaultInjectionTest, CrashBeforeEvictionUnlinkNeverResurrects) {
  // Eviction commits the shrunken manifest BEFORE unlinking; a crash in
  // between leaves the victim's files on disk but unmanifested.  Restart
  // must remove them as debris — loading them would resurrect an entry
  // the bound already evicted.
  const std::string dir = FreshDir("geopriv_crash_evict_unlink");
  const int status = RunForked([&] {
    ASSERT_TRUE(fi::ArmFromSpec("cache.evict.unlink=abort").ok());
    CacheOptions options = PersistCacheOptions(dir);
    options.max_entries = 1;
    MechanismCache cache(options);
    // Anchor (denominator 2) survives; alpha=1/3 is the victim.
    (void)cache.GetOrSolve(
        Sig(6, R(1, 2), "absolute", ServeMode::kGeometric));
    (void)cache.GetOrSolve(
        Sig(6, R(1, 3), "absolute", ServeMode::kGeometric));
  });
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of crashing";
  ASSERT_EQ(WTERMSIG(status), SIGABRT);

  MechanismCache reloaded(PersistCacheOptions(dir));
  auto report = reloaded.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_GE(report->debris_removed, 1);
  EXPECT_TRUE(
      reloaded.Contains(Sig(6, R(1, 2), "absolute", ServeMode::kGeometric)));
  EXPECT_FALSE(
      reloaded.Contains(Sig(6, R(1, 3), "absolute", ServeMode::kGeometric)));
  fs::remove_all(dir);
}

// ---- ledger file corruption -------------------------------------------------

Status TryLoad(const std::string& dir) {
  MechanismService service(SerialPersistOptions(dir));
  return service.LoadPersisted().status();
}

void WriteLedger(const std::string& dir, const std::string& content) {
  fs::create_directories(dir);
  std::ofstream out(dir + "/ledger.jsonl", std::ios::trunc);
  out << content;
}

constexpr char kLedgerHeaderLine[] = "{\"ledger\":\"geopriv-ledger v1\"}\n";

TEST_F(FaultInjectionTest, TornLedgerLineFailsClosed) {
  const std::string dir = FreshDir("geopriv_ledger_torn");
  WriteLedger(dir, std::string(kLedgerHeaderLine) +
                       "{\"consumer\":\"alice\",\"level\":0.5,\"rel");
  EXPECT_FALSE(TryLoad(dir).ok());
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, TruncatedLedgerFileFailsClosed) {
  const std::string dir = FreshDir("geopriv_ledger_truncated");
  WriteLedger(dir, "");
  EXPECT_FALSE(TryLoad(dir).ok());
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, DuplicatedConsumerLinesMergeMostCharged) {
  // A duplicated account (hand-merged file, replayed concatenation) must
  // resolve toward MORE spent budget, never less: min level, max count.
  const std::string dir = FreshDir("geopriv_ledger_dup");
  WriteLedger(
      dir,
      std::string(kLedgerHeaderLine) +
          "{\"consumer\":\"alice\",\"level\":0.5,\"releases\":1,"
          "\"chained_level\":1,\"chained_releases\":0}\n" +
          "{\"consumer\":\"alice\",\"level\":0.25,\"releases\":2,"
          "\"chained_level\":1,\"chained_releases\":0}\n" +
          "{\"consumer\":\"alice\",\"level\":0.5,\"releases\":1,"
          "\"chained_level\":1,\"chained_releases\":0}\n");
  MechanismService service(SerialPersistOptions(dir));
  ASSERT_TRUE(service.LoadPersisted().ok());
  EXPECT_EQ(service.ledger().Level("alice"), 0.25);
  EXPECT_EQ(service.ledger().Releases("alice"), 2u);
  fs::remove_all(dir);
}

TEST_F(FaultInjectionTest, StaleLedgerTmpIsSweptNotLoaded) {
  const std::string dir = FreshDir("geopriv_ledger_stale_tmp");
  WriteLedger(dir,
              std::string(kLedgerHeaderLine) +
                  "{\"consumer\":\"alice\",\"level\":0.5,\"releases\":1,"
                  "\"chained_level\":1,\"chained_releases\":0}\n");
  {
    std::ofstream tmp(dir + "/ledger.jsonl.tmp", std::ios::trunc);
    tmp << "{\"ledger\":\"geopriv-ledger v1\"}\n{\"consumer\":\"al";  // torn
  }
  MechanismService service(SerialPersistOptions(dir));
  ASSERT_TRUE(service.LoadPersisted().ok());
  EXPECT_EQ(service.ledger().Level("alice"), 0.5);
  EXPECT_FALSE(fs::exists(dir + "/ledger.jsonl.tmp"));
  fs::remove_all(dir);
}

// ---- deadlines --------------------------------------------------------------

TEST_F(FaultInjectionTest, ColdSolveDeadlineTimesOutWhileCacheServesHits) {
  // The PR's acceptance scenario: a deadline-bounded query against a cold
  // n=32 exact solve (which runs for minutes unbounded) must come back
  // DeadlineExceeded within 2x the deadline, while a concurrent cached
  // query is served normally.
  CacheOptions options;
  options.threads = 2;
  MechanismCache cache(options);
  const MechanismSignature small = Sig(5, R(1, 2));
  ASSERT_TRUE(cache.GetOrSolve(small).ok());  // pre-solved: later = hits

  constexpr int64_t kDeadlineMs = 1500;
  std::atomic<bool> timed_out{false};
  std::atomic<int64_t> elapsed_ms{0};
  std::thread solver([&] {
    const auto start = std::chrono::steady_clock::now();
    auto result = cache.GetOrSolve(Sig(32, R(1, 2)), nullptr, kDeadlineMs);
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    timed_out = !result.ok() && result.status().IsDeadlineExceeded();
  });

  // While the big solve grinds, cached service is unaffected: hits never
  // touch the solver mutex.
  bool hit = false;
  const auto hit_start = std::chrono::steady_clock::now();
  auto served = cache.GetOrSolve(small, &hit);
  const auto hit_elapsed = std::chrono::steady_clock::now() - hit_start;
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(hit);
  EXPECT_LT(hit_elapsed, std::chrono::milliseconds(kDeadlineMs));

  solver.join();
  EXPECT_TRUE(timed_out.load()) << "cold solve did not hit its deadline";
  EXPECT_LT(elapsed_ms.load(), 2 * kDeadlineMs)
      << "timeout returned after 2x the deadline";
  EXPECT_GE(cache.GetStats().timeouts, 1u);
}

TEST_F(FaultInjectionTest, ExpiredWaiterAbandonsOnlyItsOwnWait) {
  // A second caller waiting on an in-flight solve with a too-short
  // deadline gives up; the solve itself keeps running and publishes.
  CacheOptions options;
  options.threads = 1;
  MechanismCache cache(options);
  const MechanismSignature sig =
      Sig(6, R(1, 3), "absolute", ServeMode::kGeometric);
  // Make the (otherwise instant) solve observable by delaying... geometric
  // solves are too fast to race against reliably, so instead check the
  // semantics on the exact path: waiter times out, solver finishes.
  const MechanismSignature big = Sig(24, R(1, 2));
  std::thread solver([&] {
    // Unbounded would take minutes; bound it but far beyond the waiter's
    // deadline so the waiter reliably expires first.
    (void)cache.GetOrSolve(big, nullptr, 3000);
  });
  // Wait until the solve is registered in-flight.
  while (cache.PendingSolves() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto waiter = cache.GetOrSolve(big, nullptr, 50);
  EXPECT_FALSE(waiter.ok());
  EXPECT_TRUE(waiter.status().IsDeadlineExceeded())
      << waiter.status().ToString();
  solver.join();
  // The cache is healthy afterwards: nothing stuck in flight.
  ASSERT_TRUE(cache.GetOrSolve(sig).ok());
  EXPECT_EQ(cache.PendingSolves(), 0u);
}

// ---- overload degradation ---------------------------------------------------

TEST_F(FaultInjectionTest, MaxPendingShedsTheSecondMiss) {
  CacheOptions options;
  options.threads = 1;
  options.max_pending = 1;
  MechanismCache cache(options);
  std::thread solver([&] {
    (void)cache.GetOrSolve(Sig(24, R(1, 2)), nullptr, 3000);
  });
  while (cache.PendingSolves() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // A different signature (no in-flight wait): admission says no.
  auto shed = cache.GetOrSolve(Sig(6, R(1, 2)));
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_GE(cache.GetStats().shed, 1u);
  solver.join();
  // Capacity freed: the same signature now solves.
  EXPECT_TRUE(cache.GetOrSolve(Sig(6, R(1, 2))).ok());
}

TEST_F(FaultInjectionTest, CachedOnlyModeShedsMissesAndServesHits) {
  MechanismCache cache;
  const MechanismSignature cached =
      Sig(6, R(1, 2), "absolute", ServeMode::kGeometric);
  ASSERT_TRUE(cache.GetOrSolve(cached).ok());
  BudgetLedger ledger(0.0);
  PipelineOptions options;
  options.cached_only = true;
  options.retry_after_ms = 77;
  QueryPipeline pipeline(&cache, &ledger, options);

  ServiceQuery hit;
  hit.consumer = "alice";
  hit.signature = cached;
  hit.true_count = 2;
  ServiceQuery miss = hit;
  miss.signature = Sig(7, R(1, 2), "absolute", ServeMode::kGeometric);
  const std::vector<ServiceReply> replies =
      pipeline.ExecuteBatch({hit, miss});
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[0].status.ok()) << replies[0].status.ToString();
  EXPECT_STREQ(replies[0].cache, "hit");
  EXPECT_TRUE(replies[1].status.IsUnavailable());
  EXPECT_STREQ(replies[1].cache, "shed");
  EXPECT_EQ(replies[1].retry_after_ms, 77);
  // The shed query charged nothing.
  EXPECT_FALSE(replies[1].charged);
  EXPECT_EQ(ledger.Releases("alice"), 1u);
}

TEST_F(FaultInjectionTest, MaxBatchSolvesAdmitsOnlyTheFirstMissGroups) {
  MechanismCache cache;
  BudgetLedger ledger(0.0);
  PipelineOptions options;
  options.max_batch_solves = 1;
  QueryPipeline pipeline(&cache, &ledger, options);

  // Two distinct uncached signatures: solve order is (structure, alpha),
  // so alpha=1/3 is admitted and alpha=1/2 is shed.
  ServiceQuery a;
  a.consumer = "alice";
  a.signature = Sig(6, R(1, 3), "absolute", ServeMode::kGeometric);
  a.true_count = 1;
  ServiceQuery b = a;
  b.signature = Sig(6, R(1, 2), "absolute", ServeMode::kGeometric);
  const std::vector<ServiceReply> replies = pipeline.ExecuteBatch({b, a});
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[1].status.ok()) << replies[1].status.ToString();
  EXPECT_TRUE(replies[0].status.IsUnavailable());
  EXPECT_STREQ(replies[0].cache, "shed");
  EXPECT_GT(replies[0].retry_after_ms, 0);
}

// ---- batch warm-family ordering ---------------------------------------------

TEST_F(FaultInjectionTest, ColdBatchSolvesAsOneWarmFamilyInAlphaOrder) {
  // Satellite: a cold batch over one structural family pays one cold
  // phase 1; the other members warm-start from the just-published
  // neighbor because the pipeline solves in (structure, alpha) order.
  MechanismCache cache;
  BudgetLedger ledger(0.0);
  QueryPipeline pipeline(&cache, &ledger, PipelineOptions{});
  std::vector<ServiceQuery> queries;
  for (const auto& alpha : {R(1, 2), R(1, 3), R(2, 3)}) {
    ServiceQuery query;
    query.consumer = "alice";
    query.signature = Sig(5, alpha);
    query.true_count = 1;
    query.seed = 7;
    queries.push_back(query);
  }
  const std::vector<ServiceReply> replies = pipeline.ExecuteBatch(queries);
  ASSERT_EQ(replies.size(), 3u);
  for (const ServiceReply& reply : replies) {
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  }
  // alpha=1/3 is the family's smallest: it solved cold; 1/2 and 2/3
  // chained off cached neighbors.
  EXPECT_STREQ(replies[1].cache, "cold");
  EXPECT_STREQ(replies[0].cache, "warm");
  EXPECT_STREQ(replies[2].cache, "warm");
  EXPECT_EQ(cache.GetStats().warm_starts, 2u);
}

// ---- TCP retry client -------------------------------------------------------

TEST_F(FaultInjectionTest, TcpRetryGivesUpAfterConfiguredAttempts) {
  // Nothing listens on this port: every attempt fails to connect, the
  // client backs off (1ms base) and returns the final failure.
  RetryOptions retry;
  retry.attempts = 3;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 4;
  auto response = TcpRequestWithRetry("127.0.0.1", 1, "{\"op\":\"ping\"}",
                                      retry);
  EXPECT_FALSE(response.ok());
}

// Captures the daemon's "listening on 127.0.0.1:<port>" announce line and
// hands the port to the test thread through a promise (the stream itself
// is only ever touched from the server thread).
class AnnouncedPort : public std::stringbuf {
 public:
  std::future<int> port() { return port_.get_future(); }

 protected:
  int sync() override {
    const std::string text = str();
    const size_t nl = text.find('\n');
    if (!set_ && nl != std::string::npos) {
      const size_t colon = text.rfind(':', nl);
      port_.set_value(std::atoi(text.c_str() + colon + 1));
      set_ = true;
    }
    return 0;
  }

 private:
  std::promise<int> port_;
  bool set_ = false;
};

TEST_F(FaultInjectionTest, TcpRetrySucceedsAgainstARealServer) {
  ServiceOptions options;
  options.threads = 1;
  MechanismService service(options);
  AnnouncedPort buffer;
  std::future<int> announced = buffer.port();
  std::thread server([&] {
    std::ostream announce(&buffer);
    ASSERT_TRUE(ServeTcp(0, service, announce).ok());
  });
  const int port = announced.get();
  ASSERT_GT(port, 0);
  RetryOptions retry;
  retry.attempts = 3;
  retry.base_backoff_ms = 1;
  auto pong =
      TcpRequestWithRetry("127.0.0.1", port, "{\"op\":\"ping\"}", retry);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_NE(pong->find("\"op\":\"ping\",\"ok\":true"), std::string::npos);
  auto bye =
      TcpRequestWithRetry("127.0.0.1", port, "{\"op\":\"shutdown\"}", retry);
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  server.join();
}

// ---- shared flag table ------------------------------------------------------

TEST_F(FaultInjectionTest, ServiceFlagsMapOntoServiceOptions) {
  ServiceFlags flags;
  ArgParser parser;
  RegisterServiceFlags(&parser, &flags);
  const char* argv[] = {"geopriv_serve",    "--budget",        "0.25",
                        "--shards",         "4",               "--threads",
                        "2",                "--persist",       "/tmp/x",
                        "--deadline-ms",    "1500",            "--max-pending",
                        "3",                "--retry-after-ms", "250",
                        "--idle-timeout-ms", "9000",           "--cached-only",
                        "true",             "--max-entries",   "64",
                        "--max-bytes",      "1048576"};
  ASSERT_TRUE(parser
                  .Parse(static_cast<int>(std::size(argv)),
                         const_cast<char**>(argv), 1)
                  .ok());
  const ServiceOptions options = ToServiceOptions(flags);
  EXPECT_EQ(options.budget_alpha, 0.25);
  EXPECT_EQ(options.shards, 4u);
  EXPECT_EQ(options.threads, 2);
  EXPECT_EQ(options.persist_dir, "/tmp/x");
  EXPECT_EQ(options.default_deadline_ms, 1500);
  EXPECT_EQ(options.max_pending, 3u);
  EXPECT_EQ(options.retry_after_ms, 250);
  EXPECT_EQ(options.idle_timeout_ms, 9000);
  EXPECT_TRUE(options.cached_only);
  EXPECT_EQ(options.max_entries, 64u);
  EXPECT_EQ(options.max_bytes, 1048576u);
  EXPECT_FALSE(parser.Provided("port"));
}

TEST_F(FaultInjectionTest, ServiceFlagsRejectMalformedValues) {
  const auto parses = [](std::vector<const char*> argv) {
    ServiceFlags flags;
    ArgParser parser;
    RegisterServiceFlags(&parser, &flags);
    argv.insert(argv.begin(), "geopriv_serve");
    return parser
        .Parse(static_cast<int>(argv.size()), const_cast<char**>(argv.data()),
               1)
        .ok();
  };
  EXPECT_FALSE(parses({"--budget", "1.5"}));       // out of range
  EXPECT_FALSE(parses({"--budget", "abc"}));       // malformed
  EXPECT_FALSE(parses({"--max-entries", "-1"}));   // below minimum
  EXPECT_FALSE(parses({"--max-bytes", "lots"}));   // malformed
  EXPECT_FALSE(parses({"--port", "70000"}));       // out of range
  EXPECT_FALSE(parses({"--shards", "0"}));         // below minimum
  EXPECT_FALSE(parses({"--budgte", "0.5"}));       // unknown flag
  EXPECT_FALSE(parses({"--persist"}));             // dangling
  EXPECT_FALSE(parses({"--persist", "--port"}));   // flag as value
  EXPECT_FALSE(parses({"stray"}));                 // bare token
  EXPECT_TRUE(parses({"--budget", "0.5", "--port", "0"}));
}

TEST_F(FaultInjectionTest, ArmConfiguredFaultsValidatesTheSpec) {
  ServiceFlags flags;
  flags.fault = "no.such.point=fail";
  EXPECT_FALSE(ArmConfiguredFaults(flags).ok());
  EXPECT_FALSE(fi::Armed());
  flags.fault = "io.save.write=fail";
  EXPECT_TRUE(ArmConfiguredFaults(flags).ok());
  EXPECT_TRUE(fi::Armed());
}

}  // namespace
}  // namespace geopriv
