// Tests for the Lemma 5 construction: the lexicographically canonical
// optimal mechanism is derivable from the geometric mechanism even when
// an arbitrary LP-optimal vertex is not.

#include <gtest/gtest.h>

#include "core/derivability.h"
#include "core/optimal.h"

namespace geopriv {
namespace {

TEST(CanonicalOptimalTest, MatchesPlainOptimalLoss) {
  const int n = 6;
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(n));
  ASSERT_TRUE(consumer.ok());
  auto plain = SolveOptimalMechanism(n, 0.5, *consumer);
  auto canonical = SolveCanonicalOptimalMechanism(n, 0.5, *consumer);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(canonical.ok()) << canonical.status().ToString();
  EXPECT_NEAR(canonical->loss, plain->loss, 1e-5);
}

struct CanonicalCase {
  int n;
  double alpha;
  int lo;
  int hi;
};

class CanonicalDerivabilityTest
    : public ::testing::TestWithParam<CanonicalCase> {};

TEST_P(CanonicalDerivabilityTest, CanonicalOptimumIsDerivable) {
  // These side-information-restricted instances are exactly the ones
  // where the plain LP returns non-derivable optimal vertices (see
  // integration_test.cc); the Lemma 5 refinement must fix that.
  const CanonicalCase& tc = GetParam();
  auto consumer = MinimaxConsumer::Create(
      LossFunction::AbsoluteError(),
      *SideInformation::Interval(tc.lo, tc.hi, tc.n));
  ASSERT_TRUE(consumer.ok());
  auto canonical =
      SolveCanonicalOptimalMechanism(tc.n, tc.alpha, *consumer);
  ASSERT_TRUE(canonical.ok()) << canonical.status().ToString();
  auto verdict =
      CheckDerivability(canonical->mechanism, tc.alpha, /*tol=*/1e-5);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->derivable)
      << "violated at column " << verdict->column << " row "
      << verdict->row << " slack " << verdict->slack;
  auto factor = DeriveInteraction(canonical->mechanism, tc.alpha, 1e-4);
  EXPECT_TRUE(factor.ok()) << factor.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CanonicalDerivabilityTest,
    ::testing::Values(CanonicalCase{6, 0.25, 2, 6},
                      CanonicalCase{6, 0.5, 2, 6},
                      CanonicalCase{6, 0.75, 2, 6},
                      CanonicalCase{6, 0.5, 0, 6},
                      CanonicalCase{5, 0.4, 1, 3},
                      CanonicalCase{8, 0.6, 3, 8}),
    [](const ::testing::TestParamInfo<CanonicalCase>& info) {
      const CanonicalCase& c = info.param;
      return "n" + std::to_string(c.n) + "_a" +
             std::to_string(static_cast<int>(c.alpha * 100)) + "_S" +
             std::to_string(c.lo) + "to" + std::to_string(c.hi);
    });

TEST(CanonicalOptimalTest, SecondaryObjectiveActuallyImproves) {
  // With restricted S the plain vertex wastes probability mass far from
  // the diagonal on rows outside S; the canonical mechanism must have a
  // (weakly) smaller total |i-r| mass.
  const int n = 6;
  auto consumer = MinimaxConsumer::Create(
      LossFunction::AbsoluteError(), *SideInformation::Interval(2, n, n));
  ASSERT_TRUE(consumer.ok());
  auto plain = SolveOptimalMechanism(n, 0.5, *consumer);
  auto canonical = SolveCanonicalOptimalMechanism(n, 0.5, *consumer);
  ASSERT_TRUE(plain.ok() && canonical.ok());
  auto lprime = [n](const Mechanism& m) {
    double acc = 0.0;
    for (int i = 0; i <= n; ++i) {
      for (int r = 0; r <= n; ++r) {
        acc += std::abs(i - r) * m.Probability(i, r);
      }
    }
    return acc;
  };
  EXPECT_LE(lprime(canonical->mechanism),
            lprime(plain->mechanism) + 1e-6);
}

}  // namespace
}  // namespace geopriv
