// Tests for the database substrate: schemas, predicates, count queries,
// the neighbor relation, and the synthetic population generator.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/synthetic.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

Schema TestSchema() {
  return Schema({
      {"city", Column::Type::kString},
      {"age", Column::Type::kInt},
      {"has_flu", Column::Type::kBool},
  });
}

TEST(SchemaTest, IndexOfFindsColumns) {
  Schema schema = TestSchema();
  EXPECT_EQ(*schema.IndexOf("city"), 0u);
  EXPECT_EQ(*schema.IndexOf("has_flu"), 2u);
  EXPECT_FALSE(schema.IndexOf("missing").ok());
}

TEST(SchemaTest, ValidateRowChecksArityAndTypes) {
  Schema schema = TestSchema();
  EXPECT_TRUE(
      schema.ValidateRow({std::string("SD"), int64_t{30}, true}).ok());
  EXPECT_FALSE(schema.ValidateRow({std::string("SD"), int64_t{30}}).ok());
  EXPECT_FALSE(
      schema.ValidateRow({std::string("SD"), 30.0, true}).ok());  // double
  EXPECT_FALSE(
      schema.ValidateRow({int64_t{1}, int64_t{30}, true}).ok());
}

TEST(TableTest, AppendValidates) {
  Table t(TestSchema());
  EXPECT_TRUE(t.Append({std::string("SD"), int64_t{40}, false}).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.Append({std::string("SD")}).ok());
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, ReplaceIsTheNeighborOperation) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Append({std::string("SD"), int64_t{40}, false}).ok());
  EXPECT_TRUE(t.Replace(0, {std::string("SD"), int64_t{40}, true}).ok());
  EXPECT_EQ(std::get<bool>(t.row(0)[2]), true);
  EXPECT_FALSE(t.Replace(5, {std::string("SD"), int64_t{40}, true}).ok());
  EXPECT_FALSE(t.Replace(0, {std::string("SD")}).ok());
}

TEST(PredicateTest, EqualsAndBooleanAlgebra) {
  Schema schema = TestSchema();
  Row sd_flu = {std::string("San Diego"), int64_t{30}, true};
  Row sd_healthy = {std::string("San Diego"), int64_t{30}, false};
  Row la_flu = {std::string("LA"), int64_t{30}, true};

  Predicate sd = Predicate::Equals("city", std::string("San Diego"));
  Predicate flu = Predicate::Equals("has_flu", true);
  EXPECT_TRUE(*sd.Evaluate(schema, sd_flu));
  EXPECT_FALSE(*sd.Evaluate(schema, la_flu));

  Predicate both = sd && flu;
  EXPECT_TRUE(*both.Evaluate(schema, sd_flu));
  EXPECT_FALSE(*both.Evaluate(schema, sd_healthy));
  EXPECT_FALSE(*both.Evaluate(schema, la_flu));

  Predicate either = sd || flu;
  EXPECT_TRUE(*either.Evaluate(schema, la_flu));
  EXPECT_TRUE(*either.Evaluate(schema, sd_healthy));

  Predicate not_sd = !sd;
  EXPECT_FALSE(*not_sd.Evaluate(schema, sd_flu));
  EXPECT_TRUE(*not_sd.Evaluate(schema, la_flu));
}

TEST(PredicateTest, NumericComparisons) {
  Schema schema = TestSchema();
  Row adult = {std::string("SD"), int64_t{20}, false};
  Row minor = {std::string("SD"), int64_t{10}, false};
  Predicate adult_p = Predicate::AtLeast("age", 18);
  EXPECT_TRUE(*adult_p.Evaluate(schema, adult));
  EXPECT_FALSE(*adult_p.Evaluate(schema, minor));
  Predicate teen = Predicate::Between("age", 13, 19);
  EXPECT_FALSE(*teen.Evaluate(schema, adult));
  EXPECT_FALSE(*teen.Evaluate(schema, minor));
  Row fifteen = {std::string("SD"), int64_t{15}, false};
  EXPECT_TRUE(*teen.Evaluate(schema, fifteen));
}

TEST(PredicateTest, ErrorsOnMissingOrNonNumericField) {
  Schema schema = TestSchema();
  Row row = {std::string("SD"), int64_t{30}, true};
  Predicate missing = Predicate::Equals("nope", int64_t{1});
  EXPECT_FALSE(missing.Evaluate(schema, row).ok());
  Predicate non_numeric = Predicate::AtLeast("city", 3.0);
  EXPECT_FALSE(non_numeric.Evaluate(schema, row).ok());
}

TEST(PredicateTest, DescriptionIsHumanReadable) {
  Predicate p = Predicate::Equals("city", std::string("SD")) &&
                Predicate::AtLeast("age", 18);
  EXPECT_NE(p.description().find("city"), std::string::npos);
  EXPECT_NE(p.description().find("AND"), std::string::npos);
}

TEST(CountQueryTest, CountsMatchingRows) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Append({std::string("SD"), int64_t{30}, true}).ok());
  ASSERT_TRUE(t.Append({std::string("SD"), int64_t{10}, true}).ok());
  ASSERT_TRUE(t.Append({std::string("LA"), int64_t{40}, true}).ok());
  ASSERT_TRUE(t.Append({std::string("SD"), int64_t{50}, false}).ok());
  CountQuery q(Predicate::Equals("city", std::string("SD")) &&
               Predicate::Equals("has_flu", true));
  EXPECT_EQ(*q.Evaluate(t), 2);
}

TEST(CountQueryTest, SensitivityIsOne) {
  // Changing one row changes the count by at most 1 — the property that
  // justifies Definition 2.
  Table t(TestSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t.Append({std::string("SD"), int64_t{20 + i}, i % 2 == 0}).ok());
  }
  CountQuery q(Predicate::Equals("has_flu", true));
  int64_t before = *q.Evaluate(t);
  for (size_t idx = 0; idx < t.size(); ++idx) {
    Table modified = t;
    bool was_flu = std::get<bool>(t.row(idx)[2]);
    ASSERT_TRUE(
        modified.Replace(idx, {std::string("SD"), int64_t{99}, !was_flu})
            .ok());
    int64_t after = *q.Evaluate(modified);
    EXPECT_LE(std::abs(after - before), 1);
  }
}

TEST(NeighborsTest, DetectsSingleRowDifference) {
  Table a(TestSchema());
  ASSERT_TRUE(a.Append({std::string("SD"), int64_t{1}, true}).ok());
  ASSERT_TRUE(a.Append({std::string("SD"), int64_t{2}, false}).ok());
  Table b = a;
  EXPECT_TRUE(*AreNeighbors(a, b));  // identical counts as differing in <= 1
  ASSERT_TRUE(b.Replace(1, {std::string("LA"), int64_t{2}, false}).ok());
  EXPECT_TRUE(*AreNeighbors(a, b));
  ASSERT_TRUE(b.Replace(0, {std::string("LA"), int64_t{1}, true}).ok());
  EXPECT_FALSE(*AreNeighbors(a, b));
}

TEST(NeighborsTest, SizeMismatchFails) {
  Table a(TestSchema());
  Table b(TestSchema());
  ASSERT_TRUE(a.Append({std::string("SD"), int64_t{1}, true}).ok());
  EXPECT_FALSE(AreNeighbors(a, b).ok());
}

TEST(SyntheticTest, GeneratesRequestedRows) {
  SyntheticPopulationOptions options;
  options.num_rows = 500;
  Xoshiro256 rng(1);
  auto table = GenerateSyntheticSurvey(options, rng);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 500u);
}

TEST(SyntheticTest, ValidatesOptions) {
  Xoshiro256 rng(1);
  SyntheticPopulationOptions bad;
  bad.num_rows = -1;
  EXPECT_FALSE(GenerateSyntheticSurvey(bad, rng).ok());
  SyntheticPopulationOptions no_city;
  no_city.cities.clear();
  EXPECT_FALSE(GenerateSyntheticSurvey(no_city, rng).ok());
  SyntheticPopulationOptions bad_p;
  bad_p.adult_probability = 1.5;
  EXPECT_FALSE(GenerateSyntheticSurvey(bad_p, rng).ok());
}

TEST(SyntheticTest, FluQueryCountsPlausibly) {
  SyntheticPopulationOptions options;
  options.num_rows = 3000;
  Xoshiro256 rng(42);
  auto table = GenerateSyntheticSurvey(options, rng);
  ASSERT_TRUE(table.ok());
  int64_t flu = *FluCountQuery().Evaluate(*table);
  int64_t drug = *DrugPurchaseCountQuery().Evaluate(*table);
  // Drug purchases imply flu, so drug count <= flu count.
  EXPECT_LE(drug, flu);
  EXPECT_GT(flu, 0);
  EXPECT_LT(flu, options.num_rows);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticPopulationOptions options;
  options.num_rows = 100;
  Xoshiro256 rng1(7), rng2(7);
  auto t1 = GenerateSyntheticSurvey(options, rng1);
  auto t2 = GenerateSyntheticSurvey(options, rng2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (size_t i = 0; i < t1->size(); ++i) {
    EXPECT_EQ(t1->row(i), t2->row(i));
  }
}

}  // namespace
}  // namespace geopriv
