// Tests for the Appendix A reduction: obliviousness is WLOG.

#include <gtest/gtest.h>

#include <cmath>

#include "core/consumer.h"
#include "core/geometric.h"
#include "core/oblivious.h"
#include "core/privacy.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

DatabaseMechanism MakeSimple() {
  // 4 databases over n = 1: two with count 0, two with count 1.
  DatabaseMechanism m;
  m.counts = {0, 0, 1, 1};
  m.probs = *Matrix::FromRows(4, 2,
                              {0.8, 0.2,   //
                               0.6, 0.4,   //
                               0.3, 0.7,   //
                               0.5, 0.5});
  return m;
}

TEST(ObliviousTest, ValidateCatchesShapeErrors) {
  DatabaseMechanism m = MakeSimple();
  EXPECT_TRUE(ValidateDatabaseMechanism(m, 1).ok());
  EXPECT_FALSE(ValidateDatabaseMechanism(m, 2).ok());  // wrong output range
  m.counts = {0, 0, 1};
  EXPECT_FALSE(ValidateDatabaseMechanism(m, 1).ok());  // count/row mismatch
  m = MakeSimple();
  m.counts = {0, 0, 1, 5};
  EXPECT_FALSE(ValidateDatabaseMechanism(m, 1).ok());  // count out of range
  m = MakeSimple();
  m.probs.At(0, 0) = 0.9;  // row no longer sums to 1
  EXPECT_FALSE(ValidateDatabaseMechanism(m, 1).ok());
}

TEST(ObliviousTest, ReductionAveragesClasses) {
  auto reduced = ObliviousReduction(MakeSimple(), 1);
  ASSERT_TRUE(reduced.ok());
  EXPECT_NEAR(reduced->Probability(0, 0), 0.7, 1e-12);  // avg(0.8, 0.6)
  EXPECT_NEAR(reduced->Probability(1, 0), 0.4, 1e-12);  // avg(0.3, 0.5)
  EXPECT_TRUE(reduced->matrix().IsRowStochastic());
}

TEST(ObliviousTest, EmptyCountClassFails) {
  DatabaseMechanism m;
  m.counts = {0, 0};
  m.probs = *Matrix::FromRows(2, 3,
                              {0.5, 0.3, 0.2,  //
                               0.2, 0.5, 0.3});
  auto reduced = ObliviousReduction(m, 2);
  EXPECT_FALSE(reduced.ok());
  EXPECT_TRUE(reduced.status().IsFailedPrecondition());
}

TEST(ObliviousTest, ReductionPreservesDifferentialPrivacy) {
  // Lemma 6 first half: if the database mechanism satisfies the DP ratio
  // across all neighbor pairs, the averaged mechanism satisfies count-DP.
  // Build a DP database mechanism by perturbing a geometric-like base.
  const int n = 3;
  const double alpha = 0.5;
  DatabaseMechanism dbm;
  // Several databases per count class, all using the (exactly α-DP)
  // range-restricted geometric rows as their output distributions.
  Matrix base = *GeometricMechanism::BuildMatrix(n, alpha);
  std::vector<double> rows;
  for (int i = 0; i <= n; ++i) {
    for (int copy = 0; copy < 3; ++copy) {
      dbm.counts.push_back(i);
      for (int r = 0; r <= n; ++r) {
        rows.push_back(base.At(static_cast<size_t>(i),
                               static_cast<size_t>(r)));
      }
    }
  }
  dbm.probs = *Matrix::FromRows(dbm.counts.size(),
                                static_cast<size_t>(n) + 1, rows);

  auto reduced = ObliviousReduction(dbm, n);
  ASSERT_TRUE(reduced.ok());
  auto dp = CheckDifferentialPrivacy(*reduced, alpha, 1e-9);
  ASSERT_TRUE(dp.ok());
  EXPECT_TRUE(dp->is_private);
}

TEST(ObliviousTest, ReductionNeverIncreasesWorstCaseLoss) {
  // Lemma 6 second half, on randomized inputs: L(x') <= L(x).
  Xoshiro256 rng(123);
  const int n = 2;
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(n));
  ASSERT_TRUE(consumer.ok());
  for (int trial = 0; trial < 50; ++trial) {
    DatabaseMechanism dbm;
    std::vector<double> rows;
    // 2-4 databases per class, random distributions.
    for (int c = 0; c <= n; ++c) {
      int copies = 2 + static_cast<int>(rng.NextBounded(3));
      for (int k = 0; k < copies; ++k) {
        dbm.counts.push_back(c);
        double sum = 0.0;
        std::vector<double> row(static_cast<size_t>(n) + 1);
        for (double& v : row) {
          v = rng.NextDoublePositive();
          sum += v;
        }
        for (double& v : row) rows.push_back(v / sum);
      }
    }
    dbm.probs = *Matrix::FromRows(dbm.counts.size(),
                                  static_cast<size_t>(n) + 1, rows);
    auto reduced = ObliviousReduction(dbm, n);
    ASSERT_TRUE(reduced.ok());
    double non_oblivious_loss =
        *DatabaseMechanismWorstCaseLoss(dbm, *consumer);
    double oblivious_loss = *consumer->WorstCaseLoss(*reduced);
    EXPECT_LE(oblivious_loss, non_oblivious_loss + 1e-9)
        << "trial " << trial;
  }
}

TEST(ObliviousTest, WorstCaseLossRespectsSideInformation) {
  DatabaseMechanism m = MakeSimple();
  auto only_one = MinimaxConsumer::Create(
      LossFunction::AbsoluteError(), *SideInformation::FromSet({1}, 1));
  ASSERT_TRUE(only_one.ok());
  // Only databases with count 1 matter: rows 2 and 3, losses
  // 0.3·1 = 0.3 and 0.5·1 = 0.5.
  EXPECT_NEAR(*DatabaseMechanismWorstCaseLoss(m, *only_one), 0.5, 1e-12);
}

}  // namespace
}  // namespace geopriv
