// Tests for the RNG engines and the distribution samplers.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "rng/distributions.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the published algorithm.
  SplitMix64 sm(1234567);
  uint64_t first = sm.Next();
  uint64_t second = sm.Next();
  EXPECT_NE(first, second);
  // Determinism: same seed, same stream.
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_EQ(sm2.Next(), second);
}

TEST(Xoshiro256Test, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c;
  }
  Xoshiro256 d(43);
  bool any_diff = false;
  Xoshiro256 e(42);
  for (int i = 0; i < 16; ++i) any_diff |= (d.Next() != e.Next());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoublePositiveNeverZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDoublePositive();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoundedIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.NextBounded(kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(Xoshiro256Test, JumpDecorrelatesStreams) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(TwoSidedGeometricTest, RejectsBadAlpha) {
  EXPECT_FALSE(TwoSidedGeometricSampler::Create(0.0).ok());
  EXPECT_FALSE(TwoSidedGeometricSampler::Create(1.0).ok());
  EXPECT_FALSE(TwoSidedGeometricSampler::Create(-0.5).ok());
  EXPECT_FALSE(TwoSidedGeometricSampler::Create(1.5).ok());
  EXPECT_TRUE(TwoSidedGeometricSampler::Create(0.5).ok());
}

TEST(TwoSidedGeometricTest, PmfMatchesClosedForm) {
  auto s = TwoSidedGeometricSampler::Create(0.2);
  ASSERT_TRUE(s.ok());
  double mass0 = (1.0 - 0.2) / (1.0 + 0.2);
  EXPECT_NEAR(s->Pmf(0), mass0, 1e-12);
  EXPECT_NEAR(s->Pmf(3), mass0 * std::pow(0.2, 3), 1e-12);
  EXPECT_NEAR(s->Pmf(-3), s->Pmf(3), 1e-15);
}

TEST(TwoSidedGeometricTest, PmfSumsToOne) {
  auto s = TwoSidedGeometricSampler::Create(0.7);
  ASSERT_TRUE(s.ok());
  double total = 0.0;
  for (int64_t z = -200; z <= 200; ++z) total += s->Pmf(z);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TwoSidedGeometricTest, CdfConsistentWithPmf) {
  auto s = TwoSidedGeometricSampler::Create(0.35);
  ASSERT_TRUE(s.ok());
  double acc = 0.0;
  for (int64_t z = -80; z <= 80; ++z) {
    acc += s->Pmf(z);
    EXPECT_NEAR(s->Cdf(z) - s->Cdf(-81), acc, 1e-10) << "z=" << z;
  }
}

TEST(TwoSidedGeometricTest, EmpiricalFrequenciesMatchPmf) {
  auto s = TwoSidedGeometricSampler::Create(0.5);
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(2024);
  std::map<int64_t, int> hist;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++hist[s->Sample(rng)];
  for (int64_t z = -4; z <= 4; ++z) {
    double expected = s->Pmf(z) * kDraws;
    EXPECT_NEAR(hist[z], expected, 5.0 * std::sqrt(expected) + 10.0)
        << "z=" << z;
  }
}

TEST(LaplaceTest, RejectsBadScale) {
  EXPECT_FALSE(LaplaceSampler::Create(0.0, 0.0).ok());
  EXPECT_FALSE(LaplaceSampler::Create(0.0, -1.0).ok());
  EXPECT_TRUE(LaplaceSampler::Create(0.0, 2.0).ok());
}

TEST(LaplaceTest, PdfIntegratesToOneNumerically) {
  auto s = LaplaceSampler::Create(1.0, 0.8);
  ASSERT_TRUE(s.ok());
  double integral = 0.0;
  const double dx = 1e-3;
  for (double x = -20.0; x <= 22.0; x += dx) integral += s->Pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LaplaceTest, CdfMedianAtMu) {
  auto s = LaplaceSampler::Create(3.0, 1.5);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->Cdf(3.0), 0.5, 1e-12);
  EXPECT_LT(s->Cdf(1.0), 0.5);
  EXPECT_GT(s->Cdf(5.0), 0.5);
}

TEST(LaplaceTest, EmpiricalMeanNearMu) {
  auto s = LaplaceSampler::Create(-2.0, 1.0);
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += s->Sample(rng);
  EXPECT_NEAR(sum / kDraws, -2.0, 0.02);
}

TEST(DiscreteSamplerTest, RejectsInvalidWeights) {
  EXPECT_FALSE(DiscreteSampler::Create({}).ok());
  EXPECT_FALSE(DiscreteSampler::Create({0.0, 0.0}).ok());
  EXPECT_FALSE(DiscreteSampler::Create({1.0, -0.5}).ok());
  EXPECT_FALSE(
      DiscreteSampler::Create({1.0, std::nan("")}).ok());
  EXPECT_TRUE(DiscreteSampler::Create({2.0, 1.0}).ok());
}

TEST(DiscreteSamplerTest, NormalizesWeights) {
  auto s = DiscreteSampler::Create({2.0, 6.0});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(s->Probability(1), 0.75, 1e-12);
}

TEST(DiscreteSamplerTest, EmpiricalMatchesWeights) {
  auto s = DiscreteSampler::Create({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(13);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[s->Sample(rng)];
  for (size_t k = 0; k < 4; ++k) {
    double expected = s->Probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected));
  }
}

TEST(DiscreteSamplerTest, DegenerateDistributionAlwaysSame) {
  auto s = DiscreteSampler::Create({0.0, 1.0, 0.0});
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s->Sample(rng), 1u);
}

TEST(AliasSamplerTest, RejectsInvalidWeights) {
  EXPECT_FALSE(AliasSampler::Create({}).ok());
  EXPECT_FALSE(AliasSampler::Create({0.0}).ok());
  EXPECT_FALSE(AliasSampler::Create({-1.0, 2.0}).ok());
}

TEST(AliasSamplerTest, EmpiricalMatchesWeights) {
  std::vector<double> weights = {0.5, 0.1, 0.05, 0.3, 0.05};
  auto s = AliasSampler::Create(weights);
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(17);
  std::vector<int> counts(weights.size(), 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[s->Sample(rng)];
  for (size_t k = 0; k < weights.size(); ++k) {
    double expected = weights[k] * kDraws;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 10.0);
  }
}

TEST(AliasSamplerTest, AgreesWithDiscreteSamplerInDistribution) {
  std::vector<double> weights = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  auto alias = AliasSampler::Create(weights);
  auto discrete = DiscreteSampler::Create(weights);
  ASSERT_TRUE(alias.ok());
  ASSERT_TRUE(discrete.ok());
  Xoshiro256 rng_a(23), rng_d(29);
  std::vector<double> freq_a(weights.size(), 0), freq_d(weights.size(), 0);
  constexpr int kDraws = 150000;
  for (int i = 0; i < kDraws; ++i) {
    freq_a[alias->Sample(rng_a)] += 1.0 / kDraws;
    freq_d[discrete->Sample(rng_d)] += 1.0 / kDraws;
  }
  for (size_t k = 0; k < weights.size(); ++k) {
    EXPECT_NEAR(freq_a[k], freq_d[k], 0.01);
  }
}

TEST(AliasSamplerTest, SingleOutcome) {
  auto s = AliasSampler::Create({7.0});
  ASSERT_TRUE(s.ok());
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s->Sample(rng), 0u);
}

}  // namespace
}  // namespace geopriv
