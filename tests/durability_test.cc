// The durable bounded mechanism store (PR 8).
//
// Four contracts under test:
//   1. Restart recovery — a restarted cache serves bit-identical values,
//      reloads LP bases (so misses warm-start exactly as on a live
//      cache), skips half-evicted files, sweeps tmp orphans, and
//      quarantines — never serves, never dies on — corrupt artifacts.
//   2. Bounded residency — --max-entries / --max-bytes evict strictly
//      within the coldest structural class first, and never evict a
//      class's warm-start anchor (the smallest-denominator alpha).
//   3. No resurrection — an evicted entry stays evicted across restart:
//      the manifest, not the file set, decides what is live.
//   4. Post-eviction serving contract — a request classified as cached
//      but evicted before execution is shed as transient Unavailable
//      (the retry re-routes to a solving path), never answered wrong and
//      never cold-solved on a cached-only path.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/geometric.h"
#include "core/io.h"
#include "service/server.h"

namespace geopriv {
namespace {

namespace fs = std::filesystem;

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

MechanismSignature Sig(int n, const Rational& alpha,
                       const std::string& loss = "absolute",
                       ServeMode mode = ServeMode::kExactOptimal) {
  auto sig = MechanismSignature::Create(n, alpha, loss, 0, n, mode);
  EXPECT_TRUE(sig.ok()) << sig.status().ToString();
  return *sig;
}

MechanismSignature Geo(int n, const Rational& alpha) {
  return Sig(n, alpha, "absolute", ServeMode::kGeometric);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- bounded residency ------------------------------------------------------

TEST(DurabilityTest, MaxEntriesEvictsOldestNonAnchor) {
  CacheOptions options;
  options.threads = 1;
  options.max_entries = 2;
  MechanismCache cache(options);
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());  // anchor (den 2)
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(2, 5))).ok());
  const MechanismCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE(cache.Contains(Geo(6, R(1, 2))));   // pinned anchor
  EXPECT_FALSE(cache.Contains(Geo(6, R(1, 3))));  // oldest non-anchor
  EXPECT_TRUE(cache.Contains(Geo(6, R(2, 5))));
}

TEST(DurabilityTest, EvictionDrainsTheColdestClassFirst) {
  CacheOptions options;
  options.threads = 1;
  options.max_entries = 3;
  MechanismCache cache(options);
  // Class A (n=6) fills first, so by the time class B (n=7) overflows the
  // bound, A is the colder class — the victim comes from A, but never A's
  // anchor.
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());
  ASSERT_TRUE(cache.GetOrSolve(Geo(7, R(1, 2))).ok());
  ASSERT_TRUE(cache.GetOrSolve(Geo(7, R(1, 3))).ok());
  const MechanismCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE(cache.Contains(Geo(6, R(1, 2))));   // cold class's anchor
  EXPECT_FALSE(cache.Contains(Geo(6, R(1, 3))));  // cold class, non-anchor
  EXPECT_TRUE(cache.Contains(Geo(7, R(1, 2))));   // hot class untouched
  EXPECT_TRUE(cache.Contains(Geo(7, R(1, 3))));
}

TEST(DurabilityTest, MaxBytesIsASoftBoundThatNeverEvictsAnchors) {
  CacheOptions options;
  options.threads = 1;
  options.max_bytes = 1;  // everything is over budget
  MechanismCache cache(options);
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
  // The lone anchor survives even though the byte bound is busted: the
  // bound is soft precisely so eviction can never destroy a class's
  // warm-start seed.
  EXPECT_EQ(cache.GetStats().entries, 1u);
  EXPECT_EQ(cache.GetStats().evictions, 0u);
  EXPECT_GT(cache.GetStats().bytes, 1u);
  // A non-anchor is evicted as soon as it lands.
  ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());
  EXPECT_EQ(cache.GetStats().entries, 1u);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_TRUE(cache.Contains(Geo(6, R(1, 2))));
}

TEST(DurabilityTest, PinnedAnchorKeepsSeedingWarmStartsThroughSweeps) {
  // The acceptance test for anchor pinning: with max_entries=1 every
  // non-anchor entry is swept immediately after publishing, yet every new
  // alpha in the family still warm-starts — the anchor's basis survives
  // all sweeps.
  CacheOptions options;
  options.threads = 1;
  options.max_entries = 1;
  MechanismCache cache(options);
  ASSERT_TRUE(cache.GetOrSolve(Sig(5, R(1, 2))).ok());  // anchor, cold
  EXPECT_EQ(cache.GetStats().warm_starts, 0u);
  ASSERT_TRUE(cache.GetOrSolve(Sig(5, R(9, 20))).ok());
  ASSERT_TRUE(cache.GetOrSolve(Sig(5, R(11, 20))).ok());
  const MechanismCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.warm_starts, 2u);  // unchanged by the interleaved sweeps
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_TRUE(cache.Contains(Sig(5, R(1, 2))));
}

// ---- restart recovery -------------------------------------------------------

CacheOptions PersistOptions(const std::string& dir) {
  CacheOptions options;
  options.threads = 1;
  options.persist_dir = dir;
  return options;
}

TEST(DurabilityTest, RestartReloadsBasisAndWarmStartsLikeALiveCache) {
  // The tentpole's core claim: a restarted daemon's first miss in a known
  // family warm-starts exactly as it would have on the live cache,
  // because the anchor's basis came back from disk.
  const std::string dir = FreshDir("geopriv_durability_warm");
  RationalMatrix original(0, 0);
  {
    MechanismCache cache(PersistOptions(dir));
    auto solved = cache.GetOrSolve(Sig(5, R(1, 2)));
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
    original = (*solved)->exact;
  }
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_EQ(report->basis_reloads, 1);
  EXPECT_EQ(restarted.GetStats().basis_warm_reloads, 1u);

  // The reloaded entry answers hits bit-identically...
  bool hit = false;
  auto entry = restarted.GetOrSolve(Sig(5, R(1, 2)), &hit);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(hit);
  EXPECT_TRUE((*entry)->exact == original);

  // ...and its basis seeds the neighbor miss, just like a live cache.
  auto neighbor = restarted.GetOrSolve(Sig(5, R(9, 20)));
  ASSERT_TRUE(neighbor.ok()) << neighbor.status().ToString();
  EXPECT_TRUE((*neighbor)->warm_started);
  EXPECT_EQ(restarted.GetStats().warm_starts, 1u);
  fs::remove_all(dir);
}

TEST(DurabilityTest, RestartNeverResurrectsAnEvictedEntry) {
  const std::string dir = FreshDir("geopriv_durability_no_resurrect");
  {
    CacheOptions options = PersistOptions(dir);
    options.max_entries = 1;
    MechanismCache cache(options);
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());  // evicted
    EXPECT_EQ(cache.GetStats().evictions, 1u);
  }
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_TRUE(restarted.Contains(Geo(6, R(1, 2))));
  EXPECT_FALSE(restarted.Contains(Geo(6, R(1, 3))));
  fs::remove_all(dir);
}

TEST(DurabilityTest, HalfEvictedFilesAreDebrisNotEntries) {
  // A crash between the manifest commit and the unlink leaves the
  // victim's files on disk; restart must treat the manifest as the truth
  // and remove them.  Built by hand here (the fork-crash version lives in
  // fault_injection_test.cc).
  const std::string dir = FreshDir("geopriv_durability_half_evict");
  std::string victim_entry;
  {
    MechanismCache cache(PersistOptions(dir));
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());
  }
  // Both manifested.  Rewrite the manifest to list only one stem — the
  // state a crashed eviction leaves — keeping the other file on disk.
  std::vector<std::string> stems;
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (dirent.path().extension() == ".entry") {
      stems.push_back(dirent.path().stem().string());
    }
  }
  ASSERT_EQ(stems.size(), 2u);
  const std::string keep = std::min(stems[0], stems[1]);
  const std::string drop = std::max(stems[0], stems[1]);
  {
    const std::string body = "entry " + keep + "\n";
    std::ofstream manifest(dir + "/manifest", std::ios::trunc);
    manifest << "geopriv-manifest v1\nchecksum " << Fnv1a64Hex(body) << "\n"
             << body;
  }
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_GE(report->debris_removed, 1);
  EXPECT_EQ(report->quarantined, 0);
  EXPECT_FALSE(fs::exists(dir + "/" + drop + ".entry"));
  EXPECT_EQ(restarted.GetStats().entries, 1u);
  fs::remove_all(dir);
}

TEST(DurabilityTest, ManifestedButMissingFileIsSkippedNotFatal) {
  const std::string dir = FreshDir("geopriv_durability_missing");
  {
    MechanismCache cache(PersistOptions(dir));
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());
  }
  // Delete one manifested entry file — the other half of a crashed
  // eviction (manifest committed, file already unlinked... of the OLD
  // manifest's entries).  The load skips it.
  bool removed = false;
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (!removed && dirent.path().extension() == ".entry") {
      fs::remove(dirent.path());
      removed = true;
    }
  }
  ASSERT_TRUE(removed);
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_EQ(report->quarantined, 0);
  fs::remove_all(dir);
}

TEST(DurabilityTest, CorruptManifestIsQuarantinedAndEntriesAdopted) {
  const std::string dir = FreshDir("geopriv_durability_bad_manifest");
  {
    MechanismCache cache(PersistOptions(dir));
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 3))).ok());
  }
  // Flip a byte inside the manifest body: the checksum catches it.
  {
    std::string text = ReadAll(dir + "/manifest");
    text[text.size() - 2] ^= 1;
    std::ofstream out(dir + "/manifest", std::ios::trunc);
    out << text;
  }
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The corrupt index is quarantined; the entries themselves re-validate
  // and are adopted — losing the index must not lose the store.
  EXPECT_EQ(report->quarantined, 1);
  EXPECT_EQ(report->loaded, 2);
  EXPECT_TRUE(fs::exists(dir + "/quarantine/manifest"));
  // The load re-committed a fresh manifest.
  EXPECT_TRUE(fs::exists(dir + "/manifest"));
  fs::remove_all(dir);
}

TEST(DurabilityTest, TmpOrphansAreSweptOnLoad) {
  const std::string dir = FreshDir("geopriv_durability_tmps");
  {
    MechanismCache cache(PersistOptions(dir));
    ASSERT_TRUE(cache.GetOrSolve(Geo(6, R(1, 2))).ok());
  }
  for (const char* name :
       {"0123456789abcdef.entry.tmp", "0123456789abcdef.basis.tmp",
        "manifest.tmp"}) {
    std::ofstream tmp(dir + "/" + name);
    tmp << "torn";
  }
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 1);
  EXPECT_EQ(report->debris_removed, 3);
  for (const auto& dirent : fs::directory_iterator(dir)) {
    EXPECT_NE(dirent.path().extension(), ".tmp") << dirent.path();
  }
  fs::remove_all(dir);
}

TEST(DurabilityTest, BitFlippedEntryIsQuarantinedAndReSolvedFresh) {
  // A single flipped bit inside the matrix body — parseable by eye,
  // caught by the v3 checksum.  The value served after recovery is the
  // freshly re-solved one, bit-identical to a cold oracle.
  const std::string dir = FreshDir("geopriv_durability_bitflip");
  RationalMatrix original(0, 0);
  std::string entry_path;
  {
    MechanismCache cache(PersistOptions(dir));
    auto solved = cache.GetOrSolve(Geo(6, R(1, 2)));
    ASSERT_TRUE(solved.ok());
    original = (*solved)->exact;
  }
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (dirent.path().extension() == ".entry") {
      entry_path = dirent.path().string();
    }
  }
  ASSERT_FALSE(entry_path.empty());
  {
    std::string text = ReadAll(entry_path);
    text[text.size() - 3] ^= 1;
    std::ofstream out(entry_path, std::ios::trunc);
    out << text;
  }
  MechanismCache restarted(PersistOptions(dir));
  auto report = restarted.LoadFromDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded, 0);
  EXPECT_EQ(report->quarantined, 1);
  bool hit = true;
  auto fresh = restarted.GetOrSolve(Geo(6, R(1, 2)), &hit);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_TRUE((*fresh)->exact == original);
  fs::remove_all(dir);
}

// ---- the stats protocol op --------------------------------------------------

TEST(DurabilityTest, StatsOpReportsDurabilityCounters) {
  ServiceOptions options;
  options.threads = 1;
  MechanismService service(options);
  bool shutdown = false;
  (void)service.HandleLine(
      "{\"op\":\"query\",\"consumer\":\"a\",\"n\":6,\"alpha\":\"1/2\","
      "\"mode\":\"geometric\",\"count\":1,\"seed\":1}",
      &shutdown);
  const std::string stats = service.HandleLine("{\"op\":\"stats\"}",
                                               &shutdown);
  // The historical prefix stays stable (CI greps it), the durability
  // counters ride behind it.
  EXPECT_NE(stats.find("\"entries\":1,\"hits\":0,\"misses\":1"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"bytes\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"evictions\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"quarantined\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"basis_warm_reloads\":0"), std::string::npos)
      << stats;
}

// ---- post-eviction serving contract -----------------------------------------

TEST(DurabilityTest, CachedOnlyRequestShedsAnEvictedSignature) {
  // The event loop classifies a request as cached (inline, I/O thread)
  // and an eviction races in before execution.  The inline path executes
  // with cached_only=true: the stale classification must degrade to a
  // transient shed carrying a retry hint — never a wrong answer, never an
  // inline cold solve.
  ServiceOptions options;
  options.threads = 1;
  options.retry_after_ms = 123;
  MechanismService service(options);
  bool shutdown = false;
  (void)service.HandleLine(
      "{\"op\":\"query\",\"consumer\":\"a\",\"n\":6,\"alpha\":\"1/2\","
      "\"mode\":\"geometric\",\"count\":1,\"seed\":1}",
      &shutdown);

  // Simulate "classified cached, then evicted": ask for a signature that
  // is simply not cached, through the cached_only entry point.
  auto request = ParseRequestLine(
      "{\"op\":\"query\",\"consumer\":\"a\",\"n\":7,\"alpha\":\"1/2\","
      "\"mode\":\"geometric\",\"count\":1,\"seed\":1}");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  BatchWindow window;
  const std::string shed =
      service.HandleRequest(*request, &window, &shutdown,
                            /*cached_only=*/true);
  EXPECT_NE(shed.find("\"ok\":false"), std::string::npos) << shed;
  EXPECT_NE(shed.find("\"retry_after_ms\":123"), std::string::npos) << shed;
  EXPECT_NE(shed.find("evicted since classification"), std::string::npos)
      << shed;
  // No cold solve ran on the "I/O thread": still exactly one entry.
  EXPECT_EQ(service.cache().GetStats().entries, 1u);

  // The cached signature itself is served normally through the same path.
  auto cached = ParseRequestLine(
      "{\"op\":\"query\",\"consumer\":\"a\",\"n\":6,\"alpha\":\"1/2\","
      "\"mode\":\"geometric\",\"count\":1,\"seed\":2}");
  ASSERT_TRUE(cached.ok());
  const std::string served =
      service.HandleRequest(*cached, &window, &shutdown,
                            /*cached_only=*/true);
  EXPECT_NE(served.find("\"ok\":true"), std::string::npos) << served;
  EXPECT_NE(served.find("\"cache\":\"hit\""), std::string::npos) << served;

  // The ordinary executor path (cached_only=false) still solves misses.
  const std::string solved =
      service.HandleRequest(*request, &window, &shutdown,
                            /*cached_only=*/false);
  EXPECT_NE(solved.find("\"ok\":true"), std::string::npos) << solved;
  EXPECT_EQ(service.cache().GetStats().entries, 2u);
}

}  // namespace
}  // namespace geopriv
