// Tests for the Mechanism type: validation, canned mechanisms,
// interactions (Definition 3) and sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/mechanism.h"
#include "exact/rational_matrix.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(MechanismTest, CreateRejectsNonStochastic) {
  EXPECT_FALSE(Mechanism::Create(Matrix(0, 0)).ok());
  EXPECT_FALSE(Mechanism::Create(Matrix(2, 3)).ok());
  Matrix bad_sum = *Matrix::FromRows(2, 2, {0.5, 0.4, 0.5, 0.5});
  EXPECT_FALSE(Mechanism::Create(bad_sum).ok());
  Matrix negative = *Matrix::FromRows(2, 2, {1.5, -0.5, 0.5, 0.5});
  EXPECT_FALSE(Mechanism::Create(negative).ok());
  Matrix good = *Matrix::FromRows(2, 2, {0.25, 0.75, 0.5, 0.5});
  EXPECT_TRUE(Mechanism::Create(good).ok());
}

TEST(MechanismTest, FromExactRequiresExactStochasticity) {
  RationalMatrix good(2, 2);
  good.At(0, 0) = *Rational::FromInts(1, 3);
  good.At(0, 1) = *Rational::FromInts(2, 3);
  good.At(1, 0) = Rational(1);
  EXPECT_TRUE(Mechanism::FromExact(good).ok());
  good.At(1, 0) = *Rational::FromInts(99, 100);
  EXPECT_FALSE(Mechanism::FromExact(good).ok());
}

TEST(MechanismTest, IdentityAndUniform) {
  Mechanism id = Mechanism::Identity(3);
  EXPECT_EQ(id.n(), 3);
  EXPECT_DOUBLE_EQ(id.Probability(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id.Probability(2, 1), 0.0);
  Mechanism uni = Mechanism::Uniform(3);
  for (int i = 0; i <= 3; ++i) {
    for (int r = 0; r <= 3; ++r) {
      EXPECT_DOUBLE_EQ(uni.Probability(i, r), 0.25);
    }
  }
}

TEST(MechanismTest, RowDistributionSums) {
  Mechanism uni = Mechanism::Uniform(4);
  Vector row = uni.RowDistribution(2);
  double sum = 0.0;
  for (double p : row) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MechanismTest, ApplyInteractionComposesDistributions) {
  Mechanism id = Mechanism::Identity(1);
  Matrix flip = *Matrix::FromRows(2, 2, {0.0, 1.0, 1.0, 0.0});
  auto flipped = id.ApplyInteraction(flip);
  ASSERT_TRUE(flipped.ok());
  EXPECT_DOUBLE_EQ(flipped->Probability(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(flipped->Probability(1, 0), 1.0);
}

TEST(MechanismTest, ApplyInteractionRejectsNonStochasticT) {
  Mechanism id = Mechanism::Identity(1);
  Matrix not_stochastic = *Matrix::FromRows(2, 2, {0.5, 0.4, 1.0, 0.0});
  EXPECT_FALSE(id.ApplyInteraction(not_stochastic).ok());
  Matrix wrong_shape = *Matrix::FromRows(1, 1, {1.0});
  EXPECT_FALSE(id.ApplyInteraction(wrong_shape).ok());
}

TEST(MechanismTest, InteractionPreservesStochasticity) {
  // Any stochastic y composed with stochastic T stays a mechanism.
  Matrix y = *Matrix::FromRows(3, 3,
                               {0.6, 0.3, 0.1,  //
                                0.2, 0.5, 0.3,  //
                                0.1, 0.2, 0.7});
  Matrix t = *Matrix::FromRows(3, 3,
                               {1.0, 0.0, 0.0,  //
                                0.4, 0.6, 0.0,  //
                                0.0, 0.5, 0.5});
  auto m = Mechanism::Create(y);
  ASSERT_TRUE(m.ok());
  auto induced = m->ApplyInteraction(t);
  ASSERT_TRUE(induced.ok());
  EXPECT_TRUE(induced->matrix().IsRowStochastic());
}

TEST(MechanismTest, SampleRespectsRowDistribution) {
  Matrix y = *Matrix::FromRows(2, 2, {0.8, 0.2, 0.3, 0.7});
  auto m = Mechanism::Create(y);
  ASSERT_TRUE(m.ok());
  Xoshiro256 rng(5);
  int kDraws = 100000;
  int count_zero = 0;
  for (int i = 0; i < kDraws; ++i) {
    auto s = m->Sample(0, rng);
    ASSERT_TRUE(s.ok());
    if (*s == 0) ++count_zero;
  }
  EXPECT_NEAR(count_zero, 0.8 * kDraws, 5 * std::sqrt(0.16 * kDraws));
}

TEST(MechanismTest, SampleOutOfRangeFails) {
  Mechanism id = Mechanism::Identity(2);
  Xoshiro256 rng(1);
  EXPECT_FALSE(id.Sample(-1, rng).ok());
  EXPECT_FALSE(id.Sample(3, rng).ok());
  EXPECT_TRUE(id.Sample(2, rng).ok());
}

TEST(MechanismTest, PreparedSamplersMatchAdHocSampling) {
  Matrix y = *Matrix::FromRows(3, 3,
                               {0.5, 0.25, 0.25,  //
                                0.1, 0.8, 0.1,    //
                                0.0, 0.0, 1.0});
  auto m = Mechanism::Create(y);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->PrepareSamplers().ok());
  Xoshiro256 rng(9);
  std::vector<int> counts(3, 0);
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(*m->Sample(0, rng))];
  EXPECT_NEAR(counts[0], 0.5 * kDraws, 5 * std::sqrt(0.25 * kDraws));
  EXPECT_NEAR(counts[1], 0.25 * kDraws, 5 * std::sqrt(0.1875 * kDraws));
  // Deterministic row stays deterministic.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*m->Sample(2, rng), 2);
}

TEST(MechanismTest, MaxTotalVariation) {
  Mechanism id = Mechanism::Identity(1);
  Mechanism uni = Mechanism::Uniform(1);
  auto tv = id.MaxTotalVariation(uni);
  ASSERT_TRUE(tv.ok());
  EXPECT_NEAR(*tv, 0.5, 1e-12);
  EXPECT_NEAR(*id.MaxTotalVariation(id), 0.0, 1e-15);
  Mechanism bigger = Mechanism::Identity(2);
  EXPECT_FALSE(id.MaxTotalVariation(bigger).ok());
}

TEST(MechanismTest, ToStringContainsEntries) {
  Mechanism uni = Mechanism::Uniform(1);
  std::string s = uni.ToString();
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace geopriv
