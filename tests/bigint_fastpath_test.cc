// Tests for the BigInt small-value fast path: promotion/demotion across the
// single-word boundary, INT64_MIN edge cases, carries at 2^32, gcd of mixed
// small/large operands, and a randomized cross-check of the fast paths
// against reference arithmetic.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "exact/bigint.h"

namespace geopriv {
namespace {

BigInt FromString(const std::string& s) {
  auto r = BigInt::FromString(s);
  EXPECT_TRUE(r.ok()) << s;
  return *r;
}

TEST(BigIntFastPathTest, Int64BoundaryPromotion) {
  BigInt max(INT64_MAX);
  EXPECT_TRUE(max.FitsInt64());

  BigInt promoted = max + BigInt(1);  // 2^63: first value past the boundary
  EXPECT_FALSE(promoted.FitsInt64());
  EXPECT_EQ(promoted.ToString(), "9223372036854775808");
  EXPECT_FALSE(promoted.ToInt64().ok());

  // Demotion: subtracting back crosses into the inline representation.
  BigInt demoted = promoted - BigInt(1);
  EXPECT_TRUE(demoted.FitsInt64());
  EXPECT_EQ(*demoted.ToInt64(), INT64_MAX);
  EXPECT_EQ(demoted, max);
}

TEST(BigIntFastPathTest, Int64MinEdgeCases) {
  BigInt min(INT64_MIN);
  EXPECT_TRUE(min.FitsInt64());
  EXPECT_EQ(*min.ToInt64(), INT64_MIN);
  EXPECT_EQ(min.BitLength(), 64u);

  // -INT64_MIN == 2^63 does not fit; negating back demotes again.
  BigInt negated = -min;
  EXPECT_FALSE(negated.FitsInt64());
  EXPECT_EQ(negated.ToString(), "9223372036854775808");
  EXPECT_EQ(-negated, min);
  EXPECT_EQ(min.Abs(), negated);

  // The lone overflowing small/small quotient and its remainder.
  EXPECT_EQ(*BigInt::Divide(min, BigInt(-1)), negated);
  EXPECT_EQ(*BigInt::Remainder(min, BigInt(-1)), BigInt(0));

  // Compound subtraction hitting the negate-INT64_MIN slow path.
  BigInt x(0);
  x -= min;
  EXPECT_EQ(x, negated);
}

TEST(BigIntFastPathTest, CarriesAtLimbBoundary) {
  const int64_t two32 = int64_t{1} << 32;
  EXPECT_EQ(BigInt(two32 - 1) + BigInt(1), BigInt(two32));
  EXPECT_EQ(BigInt(two32) - BigInt(1), BigInt(two32 - 1));

  // Carries across the two-limb boundary (2^64) in large space.
  BigInt two64 = FromString("18446744073709551616");
  EXPECT_EQ(BigInt(two32 - 1) * BigInt(two32 + 1), two64 - BigInt(1));
  EXPECT_EQ(FromString("18446744073709551615") + BigInt(1), two64);
  EXPECT_EQ(two64 - BigInt(1), FromString("18446744073709551615"));
  EXPECT_EQ(BigInt(two32) * BigInt(two32), two64);
}

TEST(BigIntFastPathTest, GcdMixedSmallLarge) {
  // gcd(3 * 2^80, 48) = 48 exercises the large/small mixed path.
  BigInt large = BigInt::Pow(BigInt(2), 80) * BigInt(3);
  EXPECT_FALSE(large.FitsInt64());
  EXPECT_EQ(BigInt::Gcd(large, BigInt(48)), BigInt(48));
  EXPECT_EQ(BigInt::Gcd(BigInt(48), large), BigInt(48));

  // Coprime mixed operands.
  EXPECT_EQ(BigInt::Gcd(large, BigInt(7)), BigInt(1));

  // Zero handling in both positions.
  EXPECT_EQ(BigInt::Gcd(large, BigInt(0)), large);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), large), large);

  // gcd whose value is exactly 2^63 must promote (it exceeds INT64_MAX).
  BigInt two63 = BigInt(INT64_MIN).Abs();
  EXPECT_EQ(BigInt::Gcd(two63, two63), two63);
  EXPECT_FALSE(BigInt::Gcd(two63, two63).FitsInt64());

  // Large/large reduced by the Euclid loop.
  BigInt a = BigInt::Pow(BigInt(10), 30) * BigInt(36);
  BigInt b = BigInt::Pow(BigInt(10), 30) * BigInt(48);
  EXPECT_EQ(BigInt::Gcd(a, b), BigInt::Pow(BigInt(10), 30) * BigInt(12));
}

TEST(BigIntFastPathTest, CompoundOpsMutateInPlace) {
  BigInt x(41);
  x += BigInt(1);
  EXPECT_EQ(x, BigInt(42));
  x -= BigInt(2);
  EXPECT_EQ(x, BigInt(40));
  x *= BigInt(-3);
  EXPECT_EQ(x, BigInt(-120));

  // Self-aliased compound ops.
  x = BigInt(INT64_MAX);
  x += x;  // promotes
  EXPECT_EQ(x, FromString("18446744073709551614"));
  x -= x;  // back to zero, demotes
  EXPECT_TRUE(x.IsZero());
  EXPECT_TRUE(x.FitsInt64());

  BigInt big = BigInt::Pow(BigInt(7), 40);
  BigInt expected = big * big;
  big *= big;
  EXPECT_EQ(big, expected);
}

TEST(BigIntFastPathTest, RandomizedFastVsSlowCrossCheck) {
  // Deterministic xorshift; operands straddle the small/large boundary so
  // fast paths, promotions and demotions all fire.  Each op is validated
  // with representation-independent algebraic identities, and small results
  // additionally against native __int128 arithmetic.
  uint64_t s = 0x243f6a8885a308d3ULL;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int trial = 0; trial < 20000; ++trial) {
    int64_t av = static_cast<int64_t>(next());
    int64_t bv = static_cast<int64_t>(next());
    BigInt a(av), b(bv);
    switch (trial % 4) {
      case 0:  // keep both small-ish
        a = BigInt(av % 1000000);
        b = BigInt(bv % 1000000);
        break;
      case 1:  // a large
        a = a * b + BigInt(av % 97);
        break;
      case 2:  // both large
        a = a * b;
        b = b * b;
        break;
      default:  // boundary values
        a = BigInt(trial % 2 == 0 ? INT64_MAX : INT64_MIN);
        break;
    }

    // Small results must agree with native arithmetic.
    __int128 wide_sum = static_cast<__int128>(0);
    if (a.FitsInt64() && b.FitsInt64()) {
      wide_sum = static_cast<__int128>(*a.ToInt64()) + *b.ToInt64();
      BigInt sum = a + b;
      if (wide_sum >= INT64_MIN && wide_sum <= INT64_MAX) {
        ASSERT_TRUE(sum.FitsInt64()) << trial;
        ASSERT_EQ(*sum.ToInt64(), static_cast<int64_t>(wide_sum)) << trial;
      } else {
        ASSERT_FALSE(sum.FitsInt64()) << trial;
      }
    }

    // Identities that hold in every representation.
    ASSERT_EQ((a + b) - b, a) << trial;
    ASSERT_EQ((a - b) + b, a) << trial;
    BigInt c = a;
    c += b;
    ASSERT_EQ(c, a + b) << trial;
    c = a;
    c -= b;
    ASSERT_EQ(c, a - b) << trial;
    c = a;
    c *= b;
    ASSERT_EQ(c, a * b) << trial;
    if (!b.IsZero()) {
      BigInt q = *BigInt::Divide(a, b);
      BigInt r = *BigInt::Remainder(a, b);
      ASSERT_EQ(q * b + r, a) << trial;
      ASSERT_TRUE(r.Abs() < b.Abs()) << trial;
      if (!r.IsZero()) {
        ASSERT_EQ(r.IsNegative(), a.IsNegative()) << trial;
      }
    }
    BigInt g = BigInt::Gcd(a, b);
    if (!g.IsZero()) {
      ASSERT_TRUE((*BigInt::Remainder(a, g)).IsZero()) << trial;
      ASSERT_TRUE((*BigInt::Remainder(b, g)).IsZero()) << trial;
    }
    ASSERT_EQ(*BigInt::FromString(a.ToString()), a) << trial;
  }
}

}  // namespace
}  // namespace geopriv
