// Direct verification of Lemma 2 (the determinant computations behind
// Theorem 2): for G = G_{n,alpha} and a vector x,
//   det G(1, x)   > 0  iff  x_1 > alpha*x_2           (first column)
//   det G(n, x)   > 0  iff  x_n > alpha*x_{n-1}       (last column)
//   det G(i, x)  >= 0  iff  (1+alpha^2)*x_i >= alpha*(x_{i-1}+x_{i+1})
// where G(i, x) replaces column i of G by x.  All checked over exact
// rationals, so the sign comparisons are unambiguous.

#include <gtest/gtest.h>

#include "core/geometric.h"
#include "exact/rational_matrix.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

// Replaces column `col` of `g` with `x`.
RationalMatrix ReplaceColumn(const RationalMatrix& g, size_t col,
                             const std::vector<Rational>& x) {
  RationalMatrix out = g;
  for (size_t i = 0; i < g.rows(); ++i) out.At(i, col) = x[i];
  return out;
}

std::vector<Rational> RandomVector(size_t size, Xoshiro256& rng) {
  std::vector<Rational> x(size);
  for (Rational& v : x) {
    // Positive rationals with small numerators/denominators; Lemma 2 is
    // applied to probability-mass columns, which are non-negative.
    v = R(static_cast<int64_t>(rng.NextBounded(20)),
          static_cast<int64_t>(rng.NextBounded(6)) + 1);
  }
  return x;
}

class Lemma2Test : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma2Test, FirstColumnSignCharacterization) {
  const int n = std::get<0>(GetParam());
  Rational alpha = R(std::get<1>(GetParam()), 10);
  auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
  ASSERT_TRUE(g.ok());
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rational> x = RandomVector(g->rows(), rng);
    Rational det = *ReplaceColumn(*g, 0, x).Determinant();
    bool condition = x[0] > alpha * x[1];
    EXPECT_EQ(det > Rational(0), condition)
        << "n=" << n << " alpha=" << alpha.ToString() << " trial " << trial;
  }
}

TEST_P(Lemma2Test, LastColumnSignCharacterization) {
  const int n = std::get<0>(GetParam());
  Rational alpha = R(std::get<1>(GetParam()), 10);
  auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
  ASSERT_TRUE(g.ok());
  Xoshiro256 rng(23);
  const size_t last = g->rows() - 1;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rational> x = RandomVector(g->rows(), rng);
    Rational det = *ReplaceColumn(*g, last, x).Determinant();
    bool condition = x[last] > alpha * x[last - 1];
    EXPECT_EQ(det > Rational(0), condition)
        << "n=" << n << " alpha=" << alpha.ToString() << " trial " << trial;
  }
}

TEST_P(Lemma2Test, InteriorColumnSignCharacterization) {
  const int n = std::get<0>(GetParam());
  if (n < 2) return;  // needs an interior column
  Rational alpha = R(std::get<1>(GetParam()), 10);
  auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
  ASSERT_TRUE(g.ok());
  Xoshiro256 rng(29);
  const Rational coeff = Rational(1) + alpha * alpha;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rational> x = RandomVector(g->rows(), rng);
    for (size_t col = 1; col + 1 < g->rows(); ++col) {
      Rational det = *ReplaceColumn(*g, col, x).Determinant();
      bool condition =
          coeff * x[col] >= alpha * (x[col - 1] + x[col + 1]);
      EXPECT_EQ(det >= Rational(0), condition)
          << "n=" << n << " alpha=" << alpha.ToString() << " col=" << col
          << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma2Test,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(2, 5, 8)));

TEST(Lemma2Test, CramerEntriesMatchClosedFormFactorization) {
  // Theorem 2's proof computes T entries by Cramer's rule:
  // t_{i,j} = det G(i, m_j) / det G.  Cross-check against the
  // closed-form-inverse factorization on a mechanism known derivable.
  const int n = 3;
  Rational alpha = R(1, 4);
  Rational beta = R(1, 2);
  auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
  auto m = GeometricMechanism::BuildExactMatrix(n, beta);
  ASSERT_TRUE(g.ok() && m.ok());
  auto t = g->Solve(*m);  // the factor via elimination
  ASSERT_TRUE(t.ok());
  Rational det_g = *g->Determinant();
  for (size_t i = 0; i < g->rows(); ++i) {
    for (size_t j = 0; j < g->cols(); ++j) {
      std::vector<Rational> mj(g->rows());
      for (size_t k = 0; k < g->rows(); ++k) mj[k] = m->At(k, j);
      Rational cramer =
          *Rational::Divide(*ReplaceColumn(*g, i, mj).Determinant(), det_g);
      EXPECT_EQ(cramer, t->At(i, j)) << "entry (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace geopriv
