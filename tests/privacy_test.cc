// Tests for differential-privacy verification (Definition 2).

#include <gtest/gtest.h>

#include <cmath>

#include "core/geometric.h"
#include "core/mechanism.h"
#include "core/privacy.h"

namespace geopriv {
namespace {

TEST(PrivacyTest, UniformIsPerfectlyPrivate) {
  Mechanism uni = Mechanism::Uniform(4);
  auto check = CheckDifferentialPrivacy(uni, 1.0);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->is_private);
  EXPECT_DOUBLE_EQ(StrongestAlpha(uni), 1.0);
}

TEST(PrivacyTest, IdentityHasNoPrivacy) {
  Mechanism id = Mechanism::Identity(4);
  EXPECT_DOUBLE_EQ(StrongestAlpha(id), 0.0);
  auto vacuous = CheckDifferentialPrivacy(id, 0.0);
  ASSERT_TRUE(vacuous.ok());
  EXPECT_TRUE(vacuous->is_private);  // α = 0 is the vacuous guarantee
  auto strict = CheckDifferentialPrivacy(id, 0.5);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->is_private);
  EXPECT_EQ(strict->violation.output, 0);
}

TEST(PrivacyTest, RejectsAlphaOutsideUnitInterval) {
  Mechanism uni = Mechanism::Uniform(2);
  EXPECT_FALSE(CheckDifferentialPrivacy(uni, -0.1).ok());
  EXPECT_FALSE(CheckDifferentialPrivacy(uni, 1.5).ok());
}

TEST(PrivacyTest, GeometricIsExactlyAlphaPrivate) {
  for (double alpha : {0.1, 0.25, 0.5, 0.8}) {
    auto geo = GeometricMechanism::Create(8, alpha);
    ASSERT_TRUE(geo.ok());
    auto m = geo->ToMechanism();
    ASSERT_TRUE(m.ok());
    auto at_alpha = CheckDifferentialPrivacy(*m, alpha);
    ASSERT_TRUE(at_alpha.ok());
    EXPECT_TRUE(at_alpha->is_private) << "alpha=" << alpha;
    // The geometric mechanism achieves its α tightly: a stronger guarantee
    // must fail.
    auto stronger = CheckDifferentialPrivacy(*m, alpha + 0.05);
    ASSERT_TRUE(stronger.ok());
    EXPECT_FALSE(stronger->is_private) << "alpha=" << alpha;
    EXPECT_NEAR(StrongestAlpha(*m), alpha, 1e-9);
  }
}

TEST(PrivacyTest, StrongestAlphaMonotoneUnderPostProcessing) {
  // Post-processing never weakens privacy: α*(y·T) >= α*(y).
  auto geo = GeometricMechanism::Create(5, 0.3);
  ASSERT_TRUE(geo.ok());
  auto y = geo->ToMechanism();
  ASSERT_TRUE(y.ok());
  // A blur interaction.
  Matrix t(6, 6);
  for (size_t r = 0; r < 6; ++r) {
    t.At(r, r) = 0.5;
    t.At(r, (r + 1) % 6) = 0.5;
  }
  auto induced = y->ApplyInteraction(t);
  ASSERT_TRUE(induced.ok());
  EXPECT_GE(StrongestAlpha(*induced), StrongestAlpha(*y) - 1e-12);
}

TEST(PrivacyTest, ExactCheckerAgreesWithDoubleChecker) {
  Rational half = *Rational::FromInts(1, 2);
  auto exact = GeometricMechanism::BuildExactMatrix(5, half);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(*exact, half));
  Rational stronger = *Rational::FromInts(3, 5);
  EXPECT_FALSE(*CheckDifferentialPrivacyExact(*exact, stronger));
  Rational weaker = *Rational::FromInts(2, 5);
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(*exact, weaker));
}

TEST(PrivacyTest, ExactCheckerValidatesInput) {
  RationalMatrix rect(2, 3);
  EXPECT_FALSE(
      CheckDifferentialPrivacyExact(rect, *Rational::FromInts(1, 2)).ok());
  RationalMatrix square(2, 2);
  EXPECT_FALSE(
      CheckDifferentialPrivacyExact(square, Rational(2)).ok());
  EXPECT_FALSE(
      CheckDifferentialPrivacyExact(square, Rational(-1)).ok());
}

TEST(PrivacyTest, AlphaEpsilonConversionRoundTrips) {
  for (double eps : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(EpsilonFromAlpha(AlphaFromEpsilon(eps)), eps, 1e-12);
  }
  EXPECT_NEAR(AlphaFromEpsilon(std::log(2.0)), 0.5, 1e-12);
}

TEST(PrivacyTest, ViolationReportIsActionable) {
  // Build a mechanism with a single sharp violation and confirm it is
  // located correctly.
  Matrix m = *Matrix::FromRows(3, 3,
                               {0.9, 0.05, 0.05,   //
                                0.05, 0.9, 0.05,   //
                                0.05, 0.05, 0.9});
  auto mech = Mechanism::Create(m);
  ASSERT_TRUE(mech.ok());
  auto check = CheckDifferentialPrivacy(*mech, 0.5);
  ASSERT_TRUE(check.ok());
  ASSERT_FALSE(check->is_private);
  EXPECT_NEAR(check->violation.ratio, 0.05 / 0.9, 1e-12);
}

}  // namespace
}  // namespace geopriv
