// Tests for loss functions and the monotonicity validator (Section 2.3).

#include <gtest/gtest.h>

#include "core/loss.h"

namespace geopriv {
namespace {

TEST(LossTest, AbsoluteError) {
  LossFunction l = LossFunction::AbsoluteError();
  EXPECT_DOUBLE_EQ(l(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(l(3, 7), 4.0);
  EXPECT_DOUBLE_EQ(l(7, 3), 4.0);
  EXPECT_TRUE(l.ValidateMonotone(20).ok());
}

TEST(LossTest, SquaredError) {
  LossFunction l = LossFunction::SquaredError();
  EXPECT_DOUBLE_EQ(l(2, 5), 9.0);
  EXPECT_DOUBLE_EQ(l(5, 2), 9.0);
  EXPECT_TRUE(l.ValidateMonotone(20).ok());
}

TEST(LossTest, ZeroOne) {
  LossFunction l = LossFunction::ZeroOne();
  EXPECT_DOUBLE_EQ(l(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(l(4, 5), 1.0);
  EXPECT_DOUBLE_EQ(l(4, 0), 1.0);
  EXPECT_TRUE(l.ValidateMonotone(20).ok());
}

TEST(LossTest, CappedAbsolute) {
  auto l = LossFunction::CappedAbsoluteError(2.0);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ((*l)(0, 1), 1.0);
  EXPECT_DOUBLE_EQ((*l)(0, 2), 2.0);
  EXPECT_DOUBLE_EQ((*l)(0, 9), 2.0);
  EXPECT_TRUE(l->ValidateMonotone(20).ok());
  EXPECT_FALSE(LossFunction::CappedAbsoluteError(0.0).ok());
  EXPECT_FALSE(LossFunction::CappedAbsoluteError(-3.0).ok());
}

TEST(LossTest, PowerError) {
  auto linear = LossFunction::PowerError(1.0);
  auto quad = LossFunction::PowerError(2.0);
  auto sqrt_loss = LossFunction::PowerError(0.5);
  ASSERT_TRUE(linear.ok() && quad.ok() && sqrt_loss.ok());
  EXPECT_DOUBLE_EQ((*linear)(0, 4), 4.0);
  EXPECT_DOUBLE_EQ((*quad)(0, 4), 16.0);
  EXPECT_DOUBLE_EQ((*sqrt_loss)(0, 4), 2.0);
  EXPECT_TRUE(sqrt_loss->ValidateMonotone(20).ok());
  EXPECT_FALSE(LossFunction::PowerError(-1.0).ok());
}

TEST(LossTest, ValidateMonotoneCatchesViolations) {
  // A loss that *decreases* with distance is invalid.
  LossFunction inverted = LossFunction::FromFunction(
      "inverted", [](int i, int r) { return 10.0 - std::abs(i - r); });
  EXPECT_FALSE(inverted.ValidateMonotone(5).ok());
  // Negative losses are invalid too.
  LossFunction negative = LossFunction::FromFunction(
      "negative", [](int i, int r) { return static_cast<double>(i - r); });
  EXPECT_FALSE(negative.ValidateMonotone(5).ok());
}

TEST(LossTest, NonSymmetricButMonotoneIsAccepted) {
  // Monotonicity in |i - r| per the paper does not require symmetry in
  // (i, r) across different i; this loss penalizes under-estimates twice.
  LossFunction asymmetric = LossFunction::FromFunction(
      "one-sided", [](int i, int r) {
        int d = std::abs(i - r);
        return r < i ? 2.0 * d : 1.0 * d;
      });
  EXPECT_TRUE(asymmetric.ValidateMonotone(10).ok());
}

TEST(LossTest, NamesAreStable) {
  EXPECT_EQ(LossFunction::AbsoluteError().name(), "absolute");
  EXPECT_EQ(LossFunction::SquaredError().name(), "squared");
  EXPECT_EQ(LossFunction::ZeroOne().name(), "zero-one");
}

}  // namespace
}  // namespace geopriv
