// The metrics plane: registry primitives (bucket math, striped
// concurrency, Prometheus exposition), the per-request trace fields on
// query replies, the slow-query log, and the stats-op-reads-the-registry
// unification.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"
#include "util/metrics.h"

namespace geopriv {
namespace {

// ---- bucket math ------------------------------------------------------------

TEST(HistogramBuckets, BoundaryEdges) {
  using metrics::Histogram;
  // v <= 1 lands in bucket 0; after that, bucket i is (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketFor(-5), 0);
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 0);
  EXPECT_EQ(Histogram::BucketFor(2), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 2);
  EXPECT_EQ(Histogram::BucketFor(5), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 3);
  EXPECT_EQ(Histogram::BucketFor(9), 4);
  EXPECT_EQ(Histogram::BucketFor(1024), 10);
  EXPECT_EQ(Histogram::BucketFor(1025), 11);
  // The last finite bound is 2^(kBuckets-1); above it is +Inf.
  const int64_t top = Histogram::BucketBound(metrics::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(top), metrics::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(top + 1), metrics::kBuckets);
  EXPECT_EQ(Histogram::BucketFor(INT64_MAX), metrics::kBuckets);
}

TEST(HistogramBuckets, ObservationsLandWhereBucketForSays) {
  metrics::Registry registry;
  metrics::Histogram* h = registry.GetHistogram("t_hist", "test");
  h->Observe(0);
  h->Observe(1);
  h->Observe(7);
  h->Observe(100);
  EXPECT_EQ(h->Count(), 4);
  EXPECT_EQ(h->Sum(), 108);
  std::vector<int64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), static_cast<size_t>(metrics::kBuckets + 1));
  EXPECT_EQ(buckets[0], 2);  // 0 and 1
  EXPECT_EQ(buckets[3], 1);  // 7 in (4, 8]
  EXPECT_EQ(buckets[7], 1);  // 100 in (64, 128]
}

// ---- exposition golden ------------------------------------------------------

TEST(Exposition, PrometheusTextFormat) {
  metrics::Registry registry;
  registry.GetCounter("t_requests_total", "Requests", {{"op", "query"}})
      ->Add(3);
  registry.GetCounter("t_requests_total", "Requests", {{"op", "ping"}})
      ->Add(1);
  registry.GetGauge("t_depth", "Queue depth")->Set(5);
  metrics::Histogram* h = registry.GetHistogram("t_wait_us", "Wait");
  h->Observe(1);
  h->Observe(3);

  const std::string text = registry.RenderPrometheus();
  // One HELP/TYPE pair per name, shared across label variants; samples
  // sorted by (name, labels).
  EXPECT_NE(text.find("# HELP t_requests_total Requests\n"
                      "# TYPE t_requests_total counter\n"
                      "t_requests_total{op=\"ping\"} 1\n"
                      "t_requests_total{op=\"query\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE t_depth gauge\nt_depth 5\n"),
            std::string::npos)
      << text;
  // Histogram: cumulative le buckets, then +Inf == count, sum, count.
  EXPECT_NE(text.find("# TYPE t_wait_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_wait_us_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_us_count 2\n"), std::string::npos);
  // HELP/TYPE appear exactly once per name.
  EXPECT_EQ(text.find("# HELP t_wait_us"), text.rfind("# HELP t_wait_us"));
}

TEST(Exposition, DisabledRegistryRecordsNothing) {
  metrics::Registry registry;
  metrics::Counter* c = registry.GetCounter("t_off_total", "off");
  metrics::SetEnabled(false);
  c->Increment();
  metrics::SetEnabled(true);
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  EXPECT_EQ(c->Value(), 1);
}

// ---- concurrency (validated under TSan in CI) -------------------------------

TEST(Concurrency, StripedUpdatesSumExactly) {
  metrics::Registry registry;
  metrics::Counter* counter = registry.GetCounter("t_conc_total", "test");
  metrics::Gauge* gauge = registry.GetGauge("t_conc_gauge", "test");
  metrics::Histogram* hist = registry.GetHistogram("t_conc_us", "test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        hist->Observe(i % 257);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(gauge->Value(), 0);  // half added, half subtracted
  EXPECT_EQ(hist->Count(), int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : hist->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->Count());
}

// ---- per-request tracing ----------------------------------------------------

std::string QueryLine(bool trace) {
  std::string line =
      "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":5,\"alpha\":\"1/2\","
      "\"count\":2,\"seed\":7";
  if (trace) line += ",\"trace\":true";
  return line + "}";
}

TEST(Tracing, TraceTrueRepliesCarryStageSpans) {
  MechanismService service(ServiceOptions{});
  bool shutdown = false;
  const std::string reply = service.HandleLine(QueryLine(true), &shutdown);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  for (const char* key :
       {"\"trace_parse_us\":", "\"trace_queue_us\":", "\"trace_solve_us\":",
        "\"trace_charge_us\":", "\"trace_sample_us\":",
        "\"trace_persist_us\":", "\"trace_serialize_us\":"}) {
    EXPECT_NE(reply.find(key), std::string::npos) << key << " in " << reply;
  }
}

TEST(Tracing, UntracedRepliesStayClean) {
  MechanismService service(ServiceOptions{});
  bool shutdown = false;
  const std::string reply = service.HandleLine(QueryLine(false), &shutdown);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  EXPECT_EQ(reply.find("trace_"), std::string::npos) << reply;
}

// ---- slow-query log ---------------------------------------------------------

TEST(SlowQueryLog, ColdSolveAboveThresholdLogsOneLine) {
  std::ostringstream log;
  ServiceOptions options;
  options.slow_query_ms = 1;  // a cold n=12 exact solve exceeds 1ms
  options.slow_query_log = &log;
  MechanismService service(options);
  bool shutdown = false;
  const std::string reply = service.HandleLine(
      "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":12,\"alpha\":\"1/2\","
      "\"count\":3,\"seed\":7}",
      &shutdown);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  const std::string line = log.str();
  EXPECT_NE(line.find("\"slow_query\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"consumer\":\"alice\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"total_us\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"solve_us\":"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "one JSONL line: " << line;
}

TEST(SlowQueryLog, FastQueriesBelowThresholdDoNotLog) {
  std::ostringstream log;
  ServiceOptions options;
  options.slow_query_ms = 60000;  // far above any test query
  options.slow_query_log = &log;
  MechanismService service(options);
  bool shutdown = false;
  (void)service.HandleLine(QueryLine(false), &shutdown);
  (void)service.HandleLine(QueryLine(false), &shutdown);
  EXPECT_TRUE(log.str().empty()) << log.str();
}

// ---- the protocol metrics op & stats unification ----------------------------

TEST(MetricsOp, ReportsRegistryAndAgreesWithStats) {
  MechanismService service(ServiceOptions{});
  bool shutdown = false;
  (void)service.HandleLine(QueryLine(false), &shutdown);  // one cold solve
  (void)service.HandleLine(QueryLine(false), &shutdown);  // one cache hit

  const std::string metrics_reply =
      service.HandleLine("{\"op\":\"metrics\"}", &shutdown);
  EXPECT_NE(metrics_reply.find("\"op\":\"metrics\",\"ok\":true"),
            std::string::npos)
      << metrics_reply;
  // The cache gauges the stats op reads come from the same registry.
  EXPECT_NE(metrics_reply.find("\"geopriv_cache_entries\":1"),
            std::string::npos)
      << metrics_reply;
  EXPECT_NE(metrics_reply.find("\"geopriv_cache_hits\":1"),
            std::string::npos)
      << metrics_reply;

  const std::string stats_reply =
      service.HandleLine("{\"op\":\"stats\"}", &shutdown);
  EXPECT_NE(stats_reply.find("\"entries\":1,\"hits\":1,\"misses\":1"),
            std::string::npos)
      << stats_reply;
  EXPECT_NE(stats_reply.find("\"persist_failures\":0"), std::string::npos)
      << stats_reply;

  // Prometheus text carries the same values.
  const std::string text = service.MetricsText();
  EXPECT_NE(text.find("geopriv_cache_entries 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE geopriv_cache_solve_latency_us histogram"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace geopriv
