// Tests for side information and minimax consumers (Eq. 1).

#include <gtest/gtest.h>

#include "core/consumer.h"
#include "core/loss.h"
#include "core/mechanism.h"

namespace geopriv {
namespace {

TEST(SideInformationTest, AllCoversRange) {
  SideInformation s = SideInformation::All(4);
  EXPECT_EQ(s.members().size(), 5u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(s.ToString(), "{0..4}");
}

TEST(SideInformationTest, IntervalValidates) {
  auto s = SideInformation::Interval(2, 5, 8);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Contains(2));
  EXPECT_TRUE(s->Contains(5));
  EXPECT_FALSE(s->Contains(1));
  EXPECT_FALSE(s->Contains(6));
  EXPECT_FALSE(SideInformation::Interval(-1, 5, 8).ok());
  EXPECT_FALSE(SideInformation::Interval(3, 9, 8).ok());
  EXPECT_FALSE(SideInformation::Interval(5, 3, 8).ok());
}

TEST(SideInformationTest, FromSetSortsAndDedupes) {
  auto s = SideInformation::FromSet({5, 1, 3, 1}, 8);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->members(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(s->ToString(), "{1,3,5}");
  EXPECT_FALSE(SideInformation::FromSet({}, 8).ok());
  EXPECT_FALSE(SideInformation::FromSet({9}, 8).ok());
  EXPECT_FALSE(SideInformation::FromSet({-1}, 8).ok());
}

TEST(MinimaxConsumerTest, CreateValidatesLoss) {
  LossFunction bad = LossFunction::FromFunction(
      "bad", [](int i, int r) { return -std::abs(i - r); });
  EXPECT_FALSE(
      MinimaxConsumer::Create(bad, SideInformation::All(3)).ok());
  EXPECT_TRUE(MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                      SideInformation::All(3))
                  .ok());
}

TEST(MinimaxConsumerTest, ExpectedLossAtRow) {
  // Uniform mechanism on {0..2} with absolute loss at i=0:
  // (0 + 1 + 2)/3 = 1.
  auto c = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                   SideInformation::All(2));
  ASSERT_TRUE(c.ok());
  Mechanism uni = Mechanism::Uniform(2);
  EXPECT_NEAR(*c->ExpectedLossAt(uni, 0), 1.0, 1e-12);
  EXPECT_NEAR(*c->ExpectedLossAt(uni, 1), 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(c->ExpectedLossAt(uni, 5).ok());
}

TEST(MinimaxConsumerTest, WorstCaseOverSideInformation) {
  auto all = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                     SideInformation::All(2));
  ASSERT_TRUE(all.ok());
  Mechanism uni = Mechanism::Uniform(2);
  // Worst row is i=0 or i=2 with loss 1; middle row has 2/3.
  EXPECT_NEAR(*all->WorstCaseLoss(uni), 1.0, 1e-12);

  auto middle_only = MinimaxConsumer::Create(
      LossFunction::AbsoluteError(), *SideInformation::FromSet({1}, 2));
  ASSERT_TRUE(middle_only.ok());
  EXPECT_NEAR(*middle_only->WorstCaseLoss(uni), 2.0 / 3.0, 1e-12);
}

TEST(MinimaxConsumerTest, SideInformationNeverHurts) {
  // Shrinking S can only lower (or keep) the minimax loss.
  Mechanism uni = Mechanism::Uniform(5);
  auto full = MinimaxConsumer::Create(LossFunction::SquaredError(),
                                      SideInformation::All(5));
  ASSERT_TRUE(full.ok());
  double full_loss = *full->WorstCaseLoss(uni);
  for (int lo = 0; lo <= 5; ++lo) {
    for (int hi = lo; hi <= 5; ++hi) {
      auto sub = MinimaxConsumer::Create(
          LossFunction::SquaredError(),
          *SideInformation::Interval(lo, hi, 5));
      ASSERT_TRUE(sub.ok());
      EXPECT_LE(*sub->WorstCaseLoss(uni), full_loss + 1e-12);
    }
  }
}

TEST(MinimaxConsumerTest, IdentityMechanismHasZeroLoss) {
  auto c = MinimaxConsumer::Create(LossFunction::SquaredError(),
                                   SideInformation::All(4));
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c->WorstCaseLoss(Mechanism::Identity(4)), 0.0, 1e-15);
}

TEST(MinimaxConsumerTest, MechanismSizeMismatchFails) {
  auto c = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                   SideInformation::All(3));
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->WorstCaseLoss(Mechanism::Uniform(4)).ok());
}

}  // namespace
}  // namespace geopriv
