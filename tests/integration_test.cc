// Cross-module integration tests: the full pipelines a deployment would
// run, plus theorem-level consistency between independently implemented
// components.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/geopriv.h"

namespace geopriv {
namespace {

TEST(IntegrationTest, SurveyToMultiLevelReleaseToConsumers) {
  // database -> count -> Algorithm 1 -> two consumers, end to end.
  SyntheticPopulationOptions options;
  options.num_rows = 12;
  options.adult_flu_probability = 0.5;
  options.minor_flu_probability = 0.5;
  Xoshiro256 rng(2026);
  auto table = GenerateSyntheticSurvey(options, rng);
  ASSERT_TRUE(table.ok());
  const int n = static_cast<int>(table->size());
  auto truth = FluCountQuery().Evaluate(*table);
  ASSERT_TRUE(truth.ok());

  auto release = MultiLevelRelease::Create(n, {0.3, 0.7});
  ASSERT_TRUE(release.ok());
  auto values = release->Release(static_cast<int>(*truth), rng);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 2u);
  for (int v : *values) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, n);
  }

  // The internal consumer at level 0 and the public consumer at level 1
  // both achieve their per-consumer optimum by rational interaction.
  for (size_t level = 0; level < 2; ++level) {
    auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                            SideInformation::All(n));
    ASSERT_TRUE(consumer.ok());
    auto interaction =
        SolveOptimalInteraction(release->StageMechanism(level), *consumer);
    auto tailored =
        SolveOptimalMechanism(n, release->alpha(level), *consumer);
    ASSERT_TRUE(interaction.ok() && tailored.ok());
    EXPECT_NEAR(interaction->loss, tailored->loss, 1e-5)
        << "level " << level;
  }
}

TEST(IntegrationTest, ADerivableOptimalMechanismAlwaysExists) {
  // Section 4.2 / Lemma 5 claim EXISTENCE: *some* optimal mechanism is
  // derivable from the geometric mechanism.  (LP optima are not unique —
  // with restricted side information our vertex solver can and does
  // return optimal mechanisms that are NOT derivable, which is fine.)
  // The constructive witness is the interaction route: G·T* is derivable
  // by construction and achieves the LP-optimal loss.
  for (double alpha : {0.25, 0.5, 0.75}) {
    for (int lo : {0, 2}) {
      const int n = 6;
      auto consumer = MinimaxConsumer::Create(
          LossFunction::AbsoluteError(),
          *SideInformation::Interval(lo, n, n));
      ASSERT_TRUE(consumer.ok());
      auto optimal = SolveOptimalMechanism(n, alpha, *consumer);
      ASSERT_TRUE(optimal.ok());

      auto geo = GeometricMechanism::Create(n, alpha);
      ASSERT_TRUE(geo.ok());
      auto deployed = geo->ToMechanism();
      ASSERT_TRUE(deployed.ok());
      auto interaction = SolveOptimalInteraction(*deployed, *consumer);
      ASSERT_TRUE(interaction.ok());

      // The induced mechanism is the derivable optimal witness.
      EXPECT_NEAR(interaction->loss, optimal->loss, 1e-5)
          << "alpha=" << alpha << " lo=" << lo;
      auto verdict =
          CheckDerivability(interaction->induced, alpha, /*tol=*/1e-6);
      ASSERT_TRUE(verdict.ok());
      EXPECT_TRUE(verdict->derivable)
          << "alpha=" << alpha << " lo=" << lo;
      // And its factor through G reproduces it.
      auto recovered = DeriveInteraction(interaction->induced, alpha);
      ASSERT_TRUE(recovered.ok()) << "alpha=" << alpha << " lo=" << lo;
    }
  }
}

TEST(IntegrationTest, SerializeOptimalMechanismAndReuse) {
  // optimal LP -> serialize -> parse -> analyze/check, as the CLI does.
  const int n = 5;
  auto consumer = MinimaxConsumer::Create(LossFunction::SquaredError(),
                                          SideInformation::All(n));
  ASSERT_TRUE(consumer.ok());
  auto optimal = SolveOptimalMechanism(n, 0.5, *consumer);
  ASSERT_TRUE(optimal.ok());

  std::string path = ::testing::TempDir() + "/integration.mech";
  ASSERT_TRUE(SaveMechanism(optimal->mechanism, path).ok());
  auto loaded = LoadMechanism(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  auto dp = CheckDifferentialPrivacy(*loaded, 0.5, 1e-6);
  ASSERT_TRUE(dp.ok());
  EXPECT_TRUE(dp->is_private);
  auto loss = consumer->WorstCaseLoss(*loaded);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(*loss, optimal->loss, 1e-9);
}

TEST(IntegrationTest, ExactAndNumericPipelinesAgreeEndToEnd) {
  // The exact-rational and double pipelines must tell the same story.
  const int n = 4;
  Rational alpha_q = *Rational::FromInts(2, 5);
  double alpha = 0.4;
  auto side = *SideInformation::Interval(1, 4, n);

  auto exact = SolveOptimalMechanismExact(
      n, alpha_q, ExactLossFunction::SquaredError(), side);
  ASSERT_TRUE(exact.ok());

  auto consumer = MinimaxConsumer::Create(LossFunction::SquaredError(), side);
  ASSERT_TRUE(consumer.ok());
  auto numeric = SolveOptimalMechanism(n, alpha, *consumer);
  ASSERT_TRUE(numeric.ok());

  EXPECT_NEAR(exact->loss.ToDouble(), numeric->loss, 1e-7);

  // A derivable exact-optimal mechanism exists: the one induced by the
  // exact optimal interaction (the LP's own vertex need not be
  // derivable — only existence is claimed; see Lemma 5).
  auto g = GeometricMechanism::BuildExactMatrix(n, alpha_q);
  ASSERT_TRUE(g.ok());
  auto interaction = SolveOptimalInteractionExact(
      *g, ExactLossFunction::SquaredError(), side);
  ASSERT_TRUE(interaction.ok());
  EXPECT_EQ(interaction->loss, exact->loss);
  RationalMatrix induced = *g * interaction->matrix;
  auto verdict = CheckDerivabilityExact(induced, alpha_q);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->derivable);
  auto t = DeriveInteractionExact(induced, alpha_q);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*g * *t, induced);
}

TEST(IntegrationTest, TradeoffCurveBracketsTheoreticalExtremes) {
  const int n = 6;
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(n));
  ASSERT_TRUE(consumer.ok());
  auto curve = GeometricTradeoffCurve(*consumer, {0.01, 0.99});
  ASSERT_TRUE(curve.ok());
  // Near alpha = 0: almost no noise, loss near 0.
  EXPECT_LT((*curve)[0].loss, 0.05);
  // Near alpha = 1: approaching the best constant-row loss.  For absolute
  // loss on {0..6} the constant optimum is 12/7 (mass split between
  // outputs 0 and 6... actually the best single output is the median, 3,
  // with worst loss 3); the LP can mix, giving at most 3.
  EXPECT_GT((*curve)[1].loss, 1.0);
  EXPECT_LE((*curve)[1].loss, 3.0 + 1e-6);
}

TEST(IntegrationTest, BaselinesAreDominatedAfterPostProcessing) {
  // A compact version of bench X3 as a regression test.
  const int n = 5;
  const double alpha = 0.5;
  auto geo = GeometricMechanism::Create(n, alpha)->ToMechanism();
  auto lap = DiscretizedLaplaceMechanism(n, alpha);
  ASSERT_TRUE(geo.ok() && lap.ok());
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          *SideInformation::Interval(2, 5, n));
  ASSERT_TRUE(consumer.ok());
  auto from_geo = SolveOptimalInteraction(*geo, *consumer);
  auto from_lap = SolveOptimalInteraction(*lap, *consumer);
  ASSERT_TRUE(from_geo.ok() && from_lap.ok());
  EXPECT_LE(from_geo->loss, from_lap->loss + 1e-7);
}

}  // namespace
}  // namespace geopriv
