// Tests for dense double matrices and the LU decomposition.

#include <gtest/gtest.h>

#include <cmath>

#include "exact/rational_matrix.h"
#include "linalg/matrix.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(MatrixTest, FromRowsValidates) {
  EXPECT_FALSE(Matrix::FromRows(2, 2, {1.0}).ok());
  auto m = Matrix::FromRows(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(1, 0), 3.0);
}

TEST(MatrixTest, RowAndColCopies) {
  Matrix m = *Matrix::FromRows(2, 3, {1, 2, 3, 4, 5, 6});
  Vector row = m.Row(1);
  EXPECT_EQ(row, (Vector{4, 5, 6}));
  Vector col = m.Col(2);
  EXPECT_EQ(col, (Vector{3, 6}));
}

TEST(MatrixTest, ArithmeticAndTranspose) {
  Matrix a = *Matrix::FromRows(2, 2, {1, 2, 3, 4});
  Matrix b = *Matrix::FromRows(2, 2, {5, 6, 7, 8});
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum.At(0, 1), 8.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff.At(1, 1), 4.0);
  Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod.At(1, 1), 50.0);
  Matrix t = a.Transposed();
  EXPECT_DOUBLE_EQ(t.At(0, 1), 3.0);
  Matrix s = a.ScaledBy(2.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 6.0);
}

TEST(MatrixTest, ApplyVector) {
  Matrix a = *Matrix::FromRows(2, 3, {1, 0, 2, 0, 1, -1});
  Vector v = {3, 4, 5};
  Vector out = a.Apply(v);
  EXPECT_DOUBLE_EQ(out[0], 13.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(MatrixTest, MaxAbsDiffAndMaxAbs) {
  Matrix a = *Matrix::FromRows(2, 2, {1, 2, 3, 4});
  Matrix b = *Matrix::FromRows(2, 2, {1, 2.5, 3, 3});
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, RowStochasticPredicate) {
  Matrix good = *Matrix::FromRows(2, 2, {0.25, 0.75, 1.0, 0.0});
  EXPECT_TRUE(good.IsRowStochastic());
  Matrix negative = *Matrix::FromRows(2, 2, {1.5, -0.5, 0.5, 0.5});
  EXPECT_FALSE(negative.IsRowStochastic());
  Matrix bad_sum = *Matrix::FromRows(2, 2, {0.5, 0.4, 0.5, 0.5});
  EXPECT_FALSE(bad_sum.IsRowStochastic());
  EXPECT_TRUE(bad_sum.IsRowStochastic(/*tol=*/0.2));
}

TEST(LuTest, RequiresSquare) {
  Matrix rect(2, 3);
  EXPECT_FALSE(LuDecomposition::Compute(rect).ok());
}

TEST(LuTest, DetectsSingular) {
  Matrix singular = *Matrix::FromRows(2, 2, {1, 2, 2, 4});
  EXPECT_FALSE(LuDecomposition::Compute(singular).ok());
}

TEST(LuTest, DeterminantKnownCases) {
  Matrix a = *Matrix::FromRows(2, 2, {1, 2, 3, 4});
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -2.0, 1e-12);
  auto eye = LuDecomposition::Compute(Matrix::Identity(5));
  ASSERT_TRUE(eye.ok());
  EXPECT_NEAR(eye->Determinant(), 1.0, 1e-12);
}

TEST(LuTest, SolveRoundTrip) {
  Matrix a = *Matrix::FromRows(3, 3, {4, 1, 0, 1, 3, 1, 0, 1, 2});
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  Vector b = {1, 2, 3};
  auto x = lu->Solve(b);
  ASSERT_TRUE(x.ok());
  Vector back = a.Apply(*x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-12);
}

TEST(LuTest, SolveRejectsWrongLength) {
  auto lu = LuDecomposition::Compute(Matrix::Identity(3));
  ASSERT_TRUE(lu.ok());
  EXPECT_FALSE(lu->Solve(Vector{1, 2}).ok());
}

TEST(LuTest, InverseRoundTrip) {
  Matrix a = *Matrix::FromRows(3, 3, {2, 1, 0, 1, 3, 1, 0, 1, 2});
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto inv = lu->Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(a * *inv, Matrix::Identity(3)), 1e-12);
  EXPECT_LT(Matrix::MaxAbsDiff(*inv * a, Matrix::Identity(3)), 1e-12);
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  Matrix a = *Matrix::FromRows(2, 2, {0, 1, 1, 0});
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-12);
  auto x = lu->Solve(Vector{5, 7});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 5.0, 1e-12);
}

TEST(LuTest, RandomizedAgainstExactRationals) {
  // Cross-validate double LU determinant/solve against the exact kernel.
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 4;
    RationalMatrix exact(n, n);
    Matrix approx(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        int64_t num = static_cast<int64_t>(rng.Next() % 19) - 9;
        int64_t den = static_cast<int64_t>(rng.Next() % 5) + 1;
        exact.At(i, j) = *Rational::FromInts(num, den);
        approx.At(i, j) = static_cast<double>(num) / den;
      }
    }
    Rational exact_det = *exact.Determinant();
    auto lu = LuDecomposition::Compute(approx);
    if (exact_det.IsZero()) {
      // Numeric LU may or may not flag exactly-singular inputs; skip.
      continue;
    }
    ASSERT_TRUE(lu.ok());
    EXPECT_NEAR(lu->Determinant(), exact_det.ToDouble(),
                1e-9 * std::max(1.0, std::abs(exact_det.ToDouble())));
  }
}

}  // namespace
}  // namespace geopriv
