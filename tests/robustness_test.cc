// Robustness and failure-injection tests: malformed inputs, extreme
// parameters, and randomized garbage must produce clean Status errors —
// never crashes, hangs or silent nonsense.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/geopriv.h"
#include "lp/exact_simplex.h"

namespace geopriv {
namespace {

TEST(RobustnessTest, ParseMechanismSurvivesRandomGarbage) {
  Xoshiro256 rng(0xfeedface);
  const std::string alphabet =
      "geopriv-mechanism v1\nrow 0.5 .e+- \t7";
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    size_t len = rng.NextBounded(200);
    for (size_t k = 0; k < len; ++k) {
      garbage.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    auto parsed = ParseMechanism(garbage);
    if (parsed.ok()) {
      // Only a structurally valid mechanism may parse.
      EXPECT_TRUE(parsed->matrix().IsRowStochastic(1e-9));
    }
  }
}

TEST(RobustnessTest, ParseMechanismRejectsNonFiniteValues) {
  EXPECT_FALSE(
      ParseMechanism("geopriv-mechanism v1\nn 1\nrow nan nan\nrow 0 1\n")
          .ok());
  EXPECT_FALSE(
      ParseMechanism("geopriv-mechanism v1\nn 1\nrow inf 0\nrow 0 1\n")
          .ok());
}

TEST(RobustnessTest, ExtremePrivacyParameters) {
  // Alphas very close to the ends of (0, 1) must not break anything.
  for (double alpha : {1e-9, 1.0 - 1e-9}) {
    auto geo = GeometricMechanism::Create(8, alpha);
    ASSERT_TRUE(geo.ok()) << alpha;
    auto m = geo->ToMechanism();
    ASSERT_TRUE(m.ok()) << alpha;
    EXPECT_TRUE(m->matrix().IsRowStochastic(1e-9)) << alpha;
    Xoshiro256 rng(1);
    for (int i = 0; i < 100; ++i) {
      auto s = geo->Sample(4, rng);
      ASSERT_TRUE(s.ok());
      EXPECT_GE(*s, 0);
      EXPECT_LE(*s, 8);
    }
  }
}

TEST(RobustnessTest, TinyAndSingletonDomains) {
  // n = 0: the only mechanism is [1]; everything should degenerate
  // gracefully.
  auto geo = GeometricMechanism::Create(0, 0.5);
  ASSERT_TRUE(geo.ok());
  auto m = geo->ToMechanism();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->n(), 0);
  EXPECT_DOUBLE_EQ(m->Probability(0, 0), 1.0);
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(0));
  ASSERT_TRUE(consumer.ok());
  EXPECT_DOUBLE_EQ(*consumer->WorstCaseLoss(*m), 0.0);
  auto optimal = SolveOptimalMechanism(0, 0.5, *consumer);
  ASSERT_TRUE(optimal.ok());
  EXPECT_NEAR(optimal->loss, 0.0, 1e-12);
}

TEST(RobustnessTest, RandomizedLpProblemsNeverCrashAndStayConsistent) {
  Xoshiro256 rng(4242);
  SimplexSolver solver;
  int optimal_count = 0;
  for (int trial = 0; trial < 300; ++trial) {
    LpProblem lp;
    const int nv = 1 + static_cast<int>(rng.NextBounded(5));
    const int nc = 1 + static_cast<int>(rng.NextBounded(6));
    for (int j = 0; j < nv; ++j) {
      double cost = static_cast<double>(rng.NextBounded(21)) - 10.0;
      // Mix of bounded and free variables.
      switch (rng.NextBounded(3)) {
        case 0:
          lp.AddNonNegativeVariable("x", cost);
          break;
        case 1:
          lp.AddVariable("x", -5.0, 5.0, cost);
          break;
        default:
          lp.AddVariable("x", -kLpInfinity, kLpInfinity, cost);
          break;
      }
    }
    for (int i = 0; i < nc; ++i) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < nv; ++j) {
        double a = static_cast<double>(rng.NextBounded(11)) - 5.0;
        if (a != 0.0) terms.push_back({j, a});
      }
      RowRelation rel = static_cast<RowRelation>(rng.NextBounded(3));
      double rhs = static_cast<double>(rng.NextBounded(21)) - 10.0;
      lp.AddConstraint("c", rel, rhs, std::move(terms));
    }
    auto solution = solver.Solve(lp);
    ASSERT_TRUE(solution.ok()) << "trial " << trial;
    if (solution->status == LpStatus::kOptimal) {
      ++optimal_count;
      EXPECT_LT(solution->max_violation, 1e-6) << "trial " << trial;
    }
  }
  // The generator must exercise the optimal path meaningfully.
  EXPECT_GT(optimal_count, 30);
}

TEST(RobustnessTest, ExactSolverHandlesZeroRowsAndColumns) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", Rational(1));
  lp.AddVariable("unused", Rational(0));
  lp.AddConstraint(RowRelation::kGreaterEqual, Rational(2),
                   {{x, Rational(1)}});
  // An all-zero constraint row (0 >= 0) is vacuous but must not break.
  lp.AddConstraint(RowRelation::kGreaterEqual, Rational(0), {});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->values[static_cast<size_t>(x)], Rational(2));
}

TEST(RobustnessTest, MultiLevelReleaseExtremeLevels) {
  auto release = MultiLevelRelease::Create(10, {0.001, 0.999});
  ASSERT_TRUE(release.ok());
  Xoshiro256 rng(3);
  for (int t = 0; t < 200; ++t) {
    auto values = release->Release(5, rng);
    ASSERT_TRUE(values.ok());
    for (int v : *values) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 10);
    }
  }
}

TEST(RobustnessTest, BigIntStringRoundTripRandomized) {
  Xoshiro256 rng(0xabc);
  for (int trial = 0; trial < 200; ++trial) {
    // Random decimal strings up to 60 digits.
    std::string digits;
    if (rng.Next() & 1) digits.push_back('-');
    size_t len = 1 + rng.NextBounded(60);
    digits.push_back(static_cast<char>('1' + rng.NextBounded(9)));
    for (size_t k = 1; k < len; ++k) {
      digits.push_back(static_cast<char>('0' + rng.NextBounded(10)));
    }
    auto v = BigInt::FromString(digits);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->ToString(), digits);
  }
}

TEST(RobustnessTest, LossFunctionWithNanIsRejected) {
  LossFunction nan_loss = LossFunction::FromFunction(
      "nan", [](int i, int r) {
        return i == 2 && r == 3 ? std::nan("") : std::abs(i - r) * 1.0;
      });
  EXPECT_FALSE(nan_loss.ValidateMonotone(5).ok());
}

TEST(RobustnessTest, InteractionShapeMismatchesFailCleanly) {
  auto geo = GeometricMechanism::Create(4, 0.5)->ToMechanism();
  ASSERT_TRUE(geo.ok());
  EXPECT_FALSE(geo->ApplyInteraction(Matrix(3, 3)).ok());
  EXPECT_FALSE(geo->ApplyInteraction(Matrix(5, 4)).ok());
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(7));
  ASSERT_TRUE(consumer.ok());
  EXPECT_FALSE(SolveOptimalInteraction(*geo, *consumer).ok());
}

}  // namespace
}  // namespace geopriv
