// Tests for mechanism text serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/geometric.h"
#include "core/io.h"

namespace geopriv {
namespace {

TEST(IoTest, RoundTripPreservesEveryProbability) {
  auto geo = *GeometricMechanism::Create(7, 0.37)->ToMechanism();
  std::string text = SerializeMechanism(geo);
  auto back = ParseMechanism(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->n(), 7);
  for (int i = 0; i <= 7; ++i) {
    for (int r = 0; r <= 7; ++r) {
      EXPECT_DOUBLE_EQ(back->Probability(i, r), geo.Probability(i, r));
    }
  }
}

TEST(IoTest, HeaderIsRequired) {
  EXPECT_FALSE(ParseMechanism("").ok());
  EXPECT_FALSE(ParseMechanism("wrong header\nn 1\nrow 1 0\nrow 0 1\n").ok());
}

TEST(IoTest, ShapeErrorsAreCaught) {
  std::string base = "geopriv-mechanism v1\n";
  EXPECT_FALSE(ParseMechanism(base + "m 1\n").ok());        // wrong keyword
  EXPECT_FALSE(ParseMechanism(base + "n -2\n").ok());       // negative n
  EXPECT_FALSE(ParseMechanism(base + "n 1\nrow 1\n").ok()); // short row
  EXPECT_FALSE(
      ParseMechanism(base + "n 1\nrow 1 0\n").ok());        // missing row
  EXPECT_FALSE(
      ParseMechanism(base + "n 0\nrow 1\nrow 1\n").ok());   // extra row
}

TEST(IoTest, StochasticityIsValidatedOnParse) {
  std::string text =
      "geopriv-mechanism v1\nn 1\nrow 0.9 0.3\nrow 0.5 0.5\n";
  auto parsed = ParseMechanism(text);
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, SaveAndLoadFile) {
  auto geo = *GeometricMechanism::Create(4, 0.5)->ToMechanism();
  std::string path = ::testing::TempDir() + "/geopriv_io_test.mech";
  ASSERT_TRUE(SaveMechanism(geo, path).ok());
  auto back = LoadMechanism(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->n(), 4);
  EXPECT_DOUBLE_EQ(back->Probability(2, 2), geo.Probability(2, 2));
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  auto missing = LoadMechanism("/nonexistent/path/x.mech");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(IoTest, SerializedFormIsStable) {
  Mechanism id = Mechanism::Identity(1);
  std::string text = SerializeMechanism(id);
  EXPECT_EQ(text, "geopriv-mechanism v1\nn 1\nrow 1 0\nrow 0 1\n");
}

// ---- v2 (exact rational) format ---------------------------------------------

RationalMatrix ThirdsMatrix() {
  RationalMatrix m(2, 2);
  m.At(0, 0) = *Rational::FromInts(1, 3);
  m.At(0, 1) = *Rational::FromInts(2, 3);
  m.At(1, 0) = *Rational::FromInts(2, 7);
  m.At(1, 1) = *Rational::FromInts(5, 7);
  return m;
}

TEST(IoTest, ExactRoundTripIsLossless) {
  // 1/3 and 2/7 have no finite binary expansion: only the v2 format can
  // round-trip them; operator== is exact equality over Q.
  RationalMatrix m = ThirdsMatrix();
  std::string text = SerializeExactMechanism(m);
  EXPECT_EQ(text,
            "geopriv-mechanism v2\nn 1\nrow 1/3 2/3\nrow 2/7 5/7\n");
  auto back = ParseExactMechanism(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);
}

TEST(IoTest, ExactGeometricMechanismRoundTrips) {
  auto g = GeometricMechanism::BuildExactMatrix(6, *Rational::FromInts(1, 3));
  ASSERT_TRUE(g.ok());
  auto back = ParseExactMechanism(SerializeExactMechanism(*g));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == *g);
}

TEST(IoTest, ParseMechanismAcceptsV2) {
  // The v1 entry point reads v2 documents too (converted to doubles), so
  // every existing consumer of saved mechanisms understands cache files.
  auto m = ParseMechanism(SerializeExactMechanism(ThirdsMatrix()));
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->Probability(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m->Probability(1, 1), 5.0 / 7.0);
}

TEST(IoTest, V2MalformedInputsAreRejected) {
  const std::string base = "geopriv-mechanism v2\n";
  // v1 header is not a v2 document.
  EXPECT_FALSE(ParseExactMechanism("geopriv-mechanism v1\nn 0\nrow 1\n").ok());
  EXPECT_FALSE(ParseExactMechanism(base + "m 1\n").ok());
  EXPECT_FALSE(ParseExactMechanism(base + "n -2\n").ok());
  EXPECT_FALSE(ParseExactMechanism(base + "n 1\nrow 1/2\n").ok());  // short
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 1\nrow 1/2 1/2\n").ok());  // missing row
  EXPECT_FALSE(ParseExactMechanism(base + "n 0\nrow x/y\n").ok());  // token
  EXPECT_FALSE(ParseExactMechanism(base + "n 0\nrow 1/0\n").ok());  // div 0
  // Exactly stochastic is required: 1/3 + 1/3 != 1.
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 1\nrow 1/3 1/3\nrow 0 1\n").ok());
  // Negative entries are not probabilities.
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 1\nrow -1/2 3/2\nrow 0 1\n").ok());
  // Trailing content after the last row.
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 0\nrow 1\nrow 1\n").ok());
}

// ---- v3 (checksummed) format ------------------------------------------------

TEST(IoTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors; the checksum lines in v3 / basis docs
  // and the persistence filenames all key off this exact function.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(Fnv1a64Hex("foobar"), "85944171f73967e8");
  EXPECT_EQ(Fnv1a64Hex("").size(), 16u);
}

TEST(IoTest, V3RoundTripsWithChecksum) {
  RationalMatrix m = ThirdsMatrix();
  const std::string text = SerializeExactMechanismV3(m);
  // The v3 document is the v2 body behind a header + checksum line.
  EXPECT_EQ(text.compare(0, 20, "geopriv-mechanism v3"), 0);
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
  EXPECT_NE(text.find("row 1/3 2/3"), std::string::npos);
  auto back = ParseExactMechanism(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);
  // The double-precision entry point reads v3 too.
  auto doubles = ParseMechanism(text);
  ASSERT_TRUE(doubles.ok()) << doubles.status().ToString();
  EXPECT_DOUBLE_EQ(doubles->Probability(0, 0), 1.0 / 3.0);
}

TEST(IoTest, V3DetectsCorruptionThatV2CannotSee) {
  // Swapping two digits keeps the document parseable and stochastic —
  // only the checksum catches it.
  std::string text = SerializeExactMechanismV3(ThirdsMatrix());
  const size_t pos = text.find("2/7 5/7");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "5/7 2/7");
  auto back = ParseExactMechanism(text);
  EXPECT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("checksum"), std::string::npos)
      << back.status().ToString();
}

TEST(IoTest, V3MalformedChecksumLinesAreRejected) {
  const std::string good = SerializeExactMechanismV3(ThirdsMatrix());
  // Truncated mid-checksum line.
  EXPECT_FALSE(ParseExactMechanism("geopriv-mechanism v3\nchecksum 0123")
                   .ok());
  // Missing checksum line entirely (a v2 body behind a v3 header).
  EXPECT_FALSE(
      ParseExactMechanism("geopriv-mechanism v3\nn 1\nrow 1 0\nrow 0 1\n")
          .ok());
  // Wrong checksum value.
  std::string bad = good;
  const size_t pos = bad.find("checksum ") + 9;
  bad[pos] = bad[pos] == '0' ? '1' : '0';
  EXPECT_FALSE(ParseExactMechanism(bad).ok());
}

// ---- basis sidecar documents ------------------------------------------------

TEST(IoTest, BasisDocRoundTrips) {
  const std::string key = "mode=exact;n=4;side=0..4;loss=absolute;alpha=1/2";
  const std::vector<size_t> columns = {0, 3, 7, 12, 13};
  const std::string doc = SerializeBasisDoc(key, columns);
  EXPECT_EQ(doc.compare(0, 16, "geopriv-basis v1"), 0);
  std::string key_out;
  auto back = ParseBasisDoc(doc, &key_out);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, columns);
  EXPECT_EQ(key_out, key);
}

TEST(IoTest, BasisDocRejectsCorruptionAndMalformedShapes) {
  const std::string key = "mode=exact;n=4;side=0..4;loss=absolute;alpha=1/2";
  const std::string doc = SerializeBasisDoc(key, {1, 2, 5});
  std::string key_out;

  // A flipped digit in the column list breaks the checksum.
  std::string flipped = doc;
  flipped[flipped.size() - 2] = '9';
  EXPECT_FALSE(ParseBasisDoc(flipped, &key_out).ok());

  // Truncation breaks it too — a torn basis can never be half-loaded.
  EXPECT_FALSE(
      ParseBasisDoc(doc.substr(0, doc.size() - 1), &key_out).ok());

  // Hand-built documents with a correct checksum but a bad body: the
  // column list must be strictly increasing and complete.
  const auto with_checksum = [](const std::string& body) {
    return "geopriv-basis v1\nchecksum " + Fnv1a64Hex(body) + "\n" + body;
  };
  EXPECT_FALSE(ParseBasisDoc(with_checksum("key k\ncolumns 3 1 2\n"),
                             &key_out).ok());  // count < list... short list
  EXPECT_FALSE(ParseBasisDoc(with_checksum("key k\ncolumns 2 5 5\n"),
                             &key_out).ok());  // not strictly increasing
  EXPECT_FALSE(ParseBasisDoc(with_checksum("key k\ncolumns 2 5 3\n"),
                             &key_out).ok());  // decreasing
  EXPECT_FALSE(ParseBasisDoc(with_checksum("columns 1 0\n"),
                             &key_out).ok());  // missing key line
  EXPECT_TRUE(ParseBasisDoc(with_checksum("key k\ncolumns 2 3 5\n"),
                            &key_out).ok());
  EXPECT_EQ(key_out, "k");
}

TEST(IoTest, SaveAndLoadExactFile) {
  RationalMatrix m = ThirdsMatrix();
  std::string path = ::testing::TempDir() + "/geopriv_io_test.mech2";
  ASSERT_TRUE(SaveExactMechanism(m, path).ok());
  auto back = LoadExactMechanism(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);
  std::remove(path.c_str());

  RationalMatrix bogus(1, 1);
  bogus.At(0, 0) = *Rational::FromInts(2, 1);
  EXPECT_FALSE(SaveExactMechanism(bogus, path).ok());
  // The empty matrix would serialize to an unparseable document.
  EXPECT_FALSE(SaveExactMechanism(RationalMatrix(0, 0), path).ok());
}

}  // namespace
}  // namespace geopriv
