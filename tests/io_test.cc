// Tests for mechanism text serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/geometric.h"
#include "core/io.h"

namespace geopriv {
namespace {

TEST(IoTest, RoundTripPreservesEveryProbability) {
  auto geo = *GeometricMechanism::Create(7, 0.37)->ToMechanism();
  std::string text = SerializeMechanism(geo);
  auto back = ParseMechanism(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->n(), 7);
  for (int i = 0; i <= 7; ++i) {
    for (int r = 0; r <= 7; ++r) {
      EXPECT_DOUBLE_EQ(back->Probability(i, r), geo.Probability(i, r));
    }
  }
}

TEST(IoTest, HeaderIsRequired) {
  EXPECT_FALSE(ParseMechanism("").ok());
  EXPECT_FALSE(ParseMechanism("wrong header\nn 1\nrow 1 0\nrow 0 1\n").ok());
}

TEST(IoTest, ShapeErrorsAreCaught) {
  std::string base = "geopriv-mechanism v1\n";
  EXPECT_FALSE(ParseMechanism(base + "m 1\n").ok());        // wrong keyword
  EXPECT_FALSE(ParseMechanism(base + "n -2\n").ok());       // negative n
  EXPECT_FALSE(ParseMechanism(base + "n 1\nrow 1\n").ok()); // short row
  EXPECT_FALSE(
      ParseMechanism(base + "n 1\nrow 1 0\n").ok());        // missing row
  EXPECT_FALSE(
      ParseMechanism(base + "n 0\nrow 1\nrow 1\n").ok());   // extra row
}

TEST(IoTest, StochasticityIsValidatedOnParse) {
  std::string text =
      "geopriv-mechanism v1\nn 1\nrow 0.9 0.3\nrow 0.5 0.5\n";
  auto parsed = ParseMechanism(text);
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, SaveAndLoadFile) {
  auto geo = *GeometricMechanism::Create(4, 0.5)->ToMechanism();
  std::string path = ::testing::TempDir() + "/geopriv_io_test.mech";
  ASSERT_TRUE(SaveMechanism(geo, path).ok());
  auto back = LoadMechanism(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->n(), 4);
  EXPECT_DOUBLE_EQ(back->Probability(2, 2), geo.Probability(2, 2));
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  auto missing = LoadMechanism("/nonexistent/path/x.mech");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(IoTest, SerializedFormIsStable) {
  Mechanism id = Mechanism::Identity(1);
  std::string text = SerializeMechanism(id);
  EXPECT_EQ(text, "geopriv-mechanism v1\nn 1\nrow 1 0\nrow 0 1\n");
}

// ---- v2 (exact rational) format ---------------------------------------------

RationalMatrix ThirdsMatrix() {
  RationalMatrix m(2, 2);
  m.At(0, 0) = *Rational::FromInts(1, 3);
  m.At(0, 1) = *Rational::FromInts(2, 3);
  m.At(1, 0) = *Rational::FromInts(2, 7);
  m.At(1, 1) = *Rational::FromInts(5, 7);
  return m;
}

TEST(IoTest, ExactRoundTripIsLossless) {
  // 1/3 and 2/7 have no finite binary expansion: only the v2 format can
  // round-trip them; operator== is exact equality over Q.
  RationalMatrix m = ThirdsMatrix();
  std::string text = SerializeExactMechanism(m);
  EXPECT_EQ(text,
            "geopriv-mechanism v2\nn 1\nrow 1/3 2/3\nrow 2/7 5/7\n");
  auto back = ParseExactMechanism(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);
}

TEST(IoTest, ExactGeometricMechanismRoundTrips) {
  auto g = GeometricMechanism::BuildExactMatrix(6, *Rational::FromInts(1, 3));
  ASSERT_TRUE(g.ok());
  auto back = ParseExactMechanism(SerializeExactMechanism(*g));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == *g);
}

TEST(IoTest, ParseMechanismAcceptsV2) {
  // The v1 entry point reads v2 documents too (converted to doubles), so
  // every existing consumer of saved mechanisms understands cache files.
  auto m = ParseMechanism(SerializeExactMechanism(ThirdsMatrix()));
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_DOUBLE_EQ(m->Probability(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m->Probability(1, 1), 5.0 / 7.0);
}

TEST(IoTest, V2MalformedInputsAreRejected) {
  const std::string base = "geopriv-mechanism v2\n";
  // v1 header is not a v2 document.
  EXPECT_FALSE(ParseExactMechanism("geopriv-mechanism v1\nn 0\nrow 1\n").ok());
  EXPECT_FALSE(ParseExactMechanism(base + "m 1\n").ok());
  EXPECT_FALSE(ParseExactMechanism(base + "n -2\n").ok());
  EXPECT_FALSE(ParseExactMechanism(base + "n 1\nrow 1/2\n").ok());  // short
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 1\nrow 1/2 1/2\n").ok());  // missing row
  EXPECT_FALSE(ParseExactMechanism(base + "n 0\nrow x/y\n").ok());  // token
  EXPECT_FALSE(ParseExactMechanism(base + "n 0\nrow 1/0\n").ok());  // div 0
  // Exactly stochastic is required: 1/3 + 1/3 != 1.
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 1\nrow 1/3 1/3\nrow 0 1\n").ok());
  // Negative entries are not probabilities.
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 1\nrow -1/2 3/2\nrow 0 1\n").ok());
  // Trailing content after the last row.
  EXPECT_FALSE(
      ParseExactMechanism(base + "n 0\nrow 1\nrow 1\n").ok());
}

TEST(IoTest, SaveAndLoadExactFile) {
  RationalMatrix m = ThirdsMatrix();
  std::string path = ::testing::TempDir() + "/geopriv_io_test.mech2";
  ASSERT_TRUE(SaveExactMechanism(m, path).ok());
  auto back = LoadExactMechanism(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == m);
  std::remove(path.c_str());

  RationalMatrix bogus(1, 1);
  bogus.At(0, 0) = *Rational::FromInts(2, 1);
  EXPECT_FALSE(SaveExactMechanism(bogus, path).ok());
  // The empty matrix would serialize to an unparseable document.
  EXPECT_FALSE(SaveExactMechanism(RationalMatrix(0, 0), path).ok());
}

}  // namespace
}  // namespace geopriv
