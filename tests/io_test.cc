// Tests for mechanism text serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/geometric.h"
#include "core/io.h"

namespace geopriv {
namespace {

TEST(IoTest, RoundTripPreservesEveryProbability) {
  auto geo = *GeometricMechanism::Create(7, 0.37)->ToMechanism();
  std::string text = SerializeMechanism(geo);
  auto back = ParseMechanism(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->n(), 7);
  for (int i = 0; i <= 7; ++i) {
    for (int r = 0; r <= 7; ++r) {
      EXPECT_DOUBLE_EQ(back->Probability(i, r), geo.Probability(i, r));
    }
  }
}

TEST(IoTest, HeaderIsRequired) {
  EXPECT_FALSE(ParseMechanism("").ok());
  EXPECT_FALSE(ParseMechanism("wrong header\nn 1\nrow 1 0\nrow 0 1\n").ok());
}

TEST(IoTest, ShapeErrorsAreCaught) {
  std::string base = "geopriv-mechanism v1\n";
  EXPECT_FALSE(ParseMechanism(base + "m 1\n").ok());        // wrong keyword
  EXPECT_FALSE(ParseMechanism(base + "n -2\n").ok());       // negative n
  EXPECT_FALSE(ParseMechanism(base + "n 1\nrow 1\n").ok()); // short row
  EXPECT_FALSE(
      ParseMechanism(base + "n 1\nrow 1 0\n").ok());        // missing row
  EXPECT_FALSE(
      ParseMechanism(base + "n 0\nrow 1\nrow 1\n").ok());   // extra row
}

TEST(IoTest, StochasticityIsValidatedOnParse) {
  std::string text =
      "geopriv-mechanism v1\nn 1\nrow 0.9 0.3\nrow 0.5 0.5\n";
  auto parsed = ParseMechanism(text);
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, SaveAndLoadFile) {
  auto geo = *GeometricMechanism::Create(4, 0.5)->ToMechanism();
  std::string path = ::testing::TempDir() + "/geopriv_io_test.mech";
  ASSERT_TRUE(SaveMechanism(geo, path).ok());
  auto back = LoadMechanism(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->n(), 4);
  EXPECT_DOUBLE_EQ(back->Probability(2, 2), geo.Probability(2, 2));
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  auto missing = LoadMechanism("/nonexistent/path/x.mech");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(IoTest, SerializedFormIsStable) {
  Mechanism id = Mechanism::Identity(1);
  std::string text = SerializeMechanism(id);
  EXPECT_EQ(text, "geopriv-mechanism v1\nn 1\nrow 1 0\nrow 0 1\n");
}

}  // namespace
}  // namespace geopriv
