// Tests for Status, Result<T> and string utilities.

#include <gtest/gtest.h>

#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace geopriv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryCodeHasDistinctName) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnbounded), "Unbounded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericalError),
            "NumericalError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  GEOPRIV_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsOutOfRange());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  GEOPRIV_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2 = 3 is odd downstream
  EXPECT_FALSE(QuarterEven(5).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
}

TEST(StringUtilTest, FormatMatrixAligns) {
  std::string out = FormatMatrix({1.0, 22.5, 0.125, 3.0}, 2, 2);
  // Two rows, bracketed, contains all values.
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_NE(out.find("0.125"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace geopriv
