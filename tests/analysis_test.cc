// Tests for the mechanism-analysis module.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/geometric.h"

namespace geopriv {
namespace {

TEST(AnalysisTest, IdentityMechanismHasPerfectStats) {
  Mechanism id = Mechanism::Identity(4);
  auto stats = ComputeRowErrorStats(id);
  ASSERT_EQ(stats.size(), 5u);
  for (const RowErrorStats& row : stats) {
    EXPECT_DOUBLE_EQ(row.mean_error, 0.0);
    EXPECT_DOUBLE_EQ(row.mean_abs_error, 0.0);
    EXPECT_DOUBLE_EQ(row.mean_sq_error, 0.0);
    EXPECT_DOUBLE_EQ(row.prob_exact, 1.0);
  }
  MechanismSummary summary = Summarize(id);
  EXPECT_DOUBLE_EQ(summary.worst_mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(summary.worst_prob_error, 0.0);
  EXPECT_DOUBLE_EQ(summary.strongest_alpha, 0.0);
}

TEST(AnalysisTest, UniformMechanismStats) {
  Mechanism uni = Mechanism::Uniform(2);
  auto stats = ComputeRowErrorStats(uni);
  // Input 0: errors {0, 1, 2} each with prob 1/3.
  EXPECT_NEAR(stats[0].mean_error, 1.0, 1e-12);
  EXPECT_NEAR(stats[0].mean_abs_error, 1.0, 1e-12);
  EXPECT_NEAR(stats[0].mean_sq_error, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats[0].prob_exact, 1.0 / 3.0, 1e-12);
  // Input 1 is unbiased by symmetry.
  EXPECT_NEAR(stats[1].mean_error, 0.0, 1e-12);
  MechanismSummary summary = Summarize(uni);
  EXPECT_NEAR(summary.worst_prob_error, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(summary.strongest_alpha, 1.0, 1e-12);
}

TEST(AnalysisTest, GeometricBiasOnlyAtBoundary) {
  // The range-restricted geometric mechanism clamps, so interior inputs
  // are unbiased while boundary inputs are biased inward.
  auto geo = *GeometricMechanism::Create(10, 0.5)->ToMechanism();
  auto stats = ComputeRowErrorStats(geo);
  EXPECT_GT(stats[0].mean_error, 0.1);    // pushed up from 0
  EXPECT_LT(stats[10].mean_error, -0.1);  // pushed down from n
  EXPECT_NEAR(stats[5].mean_error, 0.0, 1e-9);
}

TEST(AnalysisTest, TradeoffCurveIsMonotone) {
  // More privacy (larger alpha) can only increase minimax loss.
  auto consumer = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                          SideInformation::All(6));
  ASSERT_TRUE(consumer.ok());
  auto curve =
      GeometricTradeoffCurve(*consumer, {0.1, 0.3, 0.5, 0.7, 0.9});
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 5u);
  for (size_t k = 1; k < curve->size(); ++k) {
    EXPECT_GE((*curve)[k].loss, (*curve)[k - 1].loss - 1e-7)
        << "alpha=" << (*curve)[k].alpha;
  }
  // Extremes: near-zero loss at alpha -> 0.
  EXPECT_LT((*curve)[0].loss, 0.3);
}

TEST(AnalysisTest, PostProcessingRegretNonNegative) {
  auto consumer = MinimaxConsumer::Create(LossFunction::SquaredError(),
                                          *SideInformation::Interval(2, 6, 6));
  ASSERT_TRUE(consumer.ok());
  auto geo = *GeometricMechanism::Create(6, 0.5)->ToMechanism();
  auto regret = PostProcessingRegret(geo, *consumer);
  ASSERT_TRUE(regret.ok());
  EXPECT_GT(*regret, 0.0);  // side information makes remapping valuable

  // A consumer with no side information and symmetric loss still gains
  // nothing or little, but regret is never negative.
  auto plain = MinimaxConsumer::Create(LossFunction::AbsoluteError(),
                                       SideInformation::All(6));
  ASSERT_TRUE(plain.ok());
  auto regret2 = PostProcessingRegret(geo, *plain);
  ASSERT_TRUE(regret2.ok());
  EXPECT_GE(*regret2, -1e-9);
}

TEST(AnalysisTest, FormatRowErrorStatsContainsColumns) {
  auto geo = *GeometricMechanism::Create(3, 0.5)->ToMechanism();
  std::string table = FormatRowErrorStats(ComputeRowErrorStats(geo));
  EXPECT_NE(table.find("bias"), std::string::npos);
  EXPECT_NE(table.find("Pr[exact]"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 5);  // header + 4
}

}  // namespace
}  // namespace geopriv
