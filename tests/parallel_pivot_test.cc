// Parallel fraction-free pivots must be BIT-identical to the serial
// kernel for every thread count: each non-pivot row's elimination writes
// only its own row, so the schedule cannot change a single bit of the
// tableau — this suite pins that contract on the paper's LPs and on the
// degenerate/infeasible/unbounded corpus, under both the explicit
// ExactSimplexOptions::threads knob and the GEOPRIV_THREADS environment
// variable.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/optimal_exact.h"
#include "lp/exact_simplex.h"
#include "util/thread_pool.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

ExactLpProblem OptimalMechanismLp(int n) {
  auto lp = BuildOptimalMechanismLpExact(n, R(1, 2),
                                         ExactLossFunction::AbsoluteError(),
                                         SideInformation::All(n));
  EXPECT_TRUE(lp.ok());
  return *std::move(lp);
}

// Chvatal's degenerate cycling instance (see pivot_rule_test.cc).
ExactLpProblem DegenerateLp() {
  ExactLpProblem lp;
  int x1 = lp.AddVariable("x1", R(-10));
  int x2 = lp.AddVariable("x2", R(57));
  int x3 = lp.AddVariable("x3", R(9));
  int x4 = lp.AddVariable("x4", R(24));
  lp.AddConstraint(RowRelation::kLessEqual, R(0),
                   {{x1, R(1, 2)}, {x2, R(-11, 2)}, {x3, R(-5, 2)}, {x4, R(9)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(0),
                   {{x1, R(1, 2)}, {x2, R(-3, 2)}, {x3, R(-1, 2)}, {x4, R(1)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x1, R(1)}});
  return lp;
}

ExactLpProblem InfeasibleLp() {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x, R(1)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(2), {{x, R(1)}});
  return lp;
}

ExactLpProblem UnboundedLp() {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(-1));
  lp.AddConstraint(RowRelation::kGreaterEqual, R(1), {{x, R(1)}});
  return lp;
}

ExactLpSolution SolveWithThreads(const ExactLpProblem& lp, int threads) {
  ExactSimplexOptions options;
  options.threads = threads;
  auto s = ExactSimplexSolver(options).Solve(lp);
  EXPECT_TRUE(s.ok());
  return *std::move(s);
}

void ExpectBitIdentical(const ExactLpSolution& a, const ExactLpSolution& b,
                        const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.phase1_iterations, b.phase1_iterations) << label;
  EXPECT_EQ(a.phase2_iterations, b.phase2_iterations) << label;
  if (a.status != LpStatus::kOptimal) return;
  EXPECT_EQ(a.objective.ToString(), b.objective.ToString()) << label;
  ASSERT_EQ(a.values.size(), b.values.size()) << label;
  for (size_t j = 0; j < a.values.size(); ++j) {
    EXPECT_EQ(a.values[j].ToString(), b.values[j].ToString())
        << label << " variable " << j;
  }
  ASSERT_EQ(a.basis.basic_columns.size(), b.basis.basic_columns.size())
      << label;
  for (size_t k = 0; k < a.basis.basic_columns.size(); ++k) {
    EXPECT_EQ(a.basis.basic_columns[k], b.basis.basic_columns[k]) << label;
  }
}

TEST(ParallelPivotTest, OptimalMechanismLpsBitIdenticalAcrossThreadCounts) {
  for (int n : {2, 4, 8}) {
    ExactLpProblem lp = OptimalMechanismLp(n);
    ExactLpSolution serial = SolveWithThreads(lp, 1);
    for (int threads : {2, 8}) {
      ExpectBitIdentical(serial, SolveWithThreads(lp, threads),
                         "n=" + std::to_string(n) +
                             " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelPivotTest, DegenerateInfeasibleUnboundedCorpusBitIdentical) {
  struct Case {
    const char* name;
    ExactLpProblem lp;
  };
  std::vector<Case> corpus;
  corpus.push_back({"degenerate", DegenerateLp()});
  corpus.push_back({"infeasible", InfeasibleLp()});
  corpus.push_back({"unbounded", UnboundedLp()});
  for (Case& c : corpus) {
    ExactLpSolution serial = SolveWithThreads(c.lp, 1);
    for (int threads : {2, 8}) {
      ExpectBitIdentical(serial, SolveWithThreads(c.lp, threads),
                         std::string(c.name) +
                             " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelPivotTest, WarmStartedSweepBitIdenticalUnderThreads) {
  std::vector<ExactLpProblem> family;
  for (int num : {2, 9, 10, 11, 12}) {
    auto lp = BuildOptimalMechanismLpExact(4, R(num, 20),
                                           ExactLossFunction::AbsoluteError(),
                                           SideInformation::All(4));
    ASSERT_TRUE(lp.ok());
    family.push_back(*std::move(lp));
  }
  ExactSimplexOptions serial_opts;
  serial_opts.threads = 1;
  auto serial = ExactSimplexSolver(serial_opts).SolveSequence(family);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 8}) {
    ExactSimplexOptions options;
    options.threads = threads;
    auto parallel = ExactSimplexSolver(options).SolveSequence(family);
    ASSERT_TRUE(parallel.ok());
    for (size_t k = 0; k < family.size(); ++k) {
      ExpectBitIdentical((*serial)[k], (*parallel)[k],
                         "k=" + std::to_string(k) +
                             " threads=" + std::to_string(threads));
      EXPECT_EQ((*serial)[k].warm_load_pivots, (*parallel)[k].warm_load_pivots);
    }
  }
}

TEST(ParallelPivotTest, GeopriveThreadsEnvironmentVariableIsHonored) {
  ExactLpProblem lp = OptimalMechanismLp(4);
  ExactLpSolution serial = SolveWithThreads(lp, 1);
  ASSERT_EQ(setenv("GEOPRIV_THREADS", "4", 1), 0);
  // threads=0 defers to the environment.
  ExactLpSolution via_env = SolveWithThreads(lp, 0);
  ASSERT_EQ(unsetenv("GEOPRIV_THREADS"), 0);
  ExpectBitIdentical(serial, via_env, "GEOPRIV_THREADS=4");
}

TEST(ParallelPivotTest, ConfiguredThreadsPolicy) {
  ASSERT_EQ(unsetenv("GEOPRIV_THREADS"), 0);
  EXPECT_EQ(ThreadPool::ConfiguredThreads(0), 1);   // no env, no option
  EXPECT_EQ(ThreadPool::ConfiguredThreads(3), 3);   // option wins
  EXPECT_EQ(ThreadPool::ConfiguredThreads(-7), 1);  // clamped
  ASSERT_EQ(setenv("GEOPRIV_THREADS", "6", 1), 0);
  EXPECT_EQ(ThreadPool::ConfiguredThreads(0), 6);   // env fallback
  EXPECT_EQ(ThreadPool::ConfiguredThreads(2), 2);   // option still wins
  ASSERT_EQ(unsetenv("GEOPRIV_THREADS"), 0);
}

TEST(ParallelPivotTest, ThreadPoolParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Reuse across jobs must work (workers are parked, not joined).
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

}  // namespace
}  // namespace geopriv
