// Tests for privacy accounting: sequential vs chained composition, and
// the numerical verification of Lemma 4's guarantee.

#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/derivability.h"
#include "core/geometric.h"

namespace geopriv {
namespace {

TEST(AccountingTest, SequentialCompositionMultiplies) {
  auto level = ComposeSequential({0.5, 0.5});
  ASSERT_TRUE(level.ok());
  EXPECT_DOUBLE_EQ(*level, 0.25);
  EXPECT_DOUBLE_EQ(*ComposeSequential({0.9}), 0.9);
  EXPECT_DOUBLE_EQ(*ComposeSequential({0.5, 0.4, 1.0}), 0.2);
  EXPECT_FALSE(ComposeSequential({}).ok());
  EXPECT_FALSE(ComposeSequential({1.5}).ok());
}

TEST(AccountingTest, ChainedCompositionTakesTheMin) {
  auto level = ComposeChained({0.3, 0.6, 0.9});
  ASSERT_TRUE(level.ok());
  EXPECT_DOUBLE_EQ(*level, 0.3);
  EXPECT_FALSE(ComposeChained({}).ok());
  EXPECT_FALSE(ComposeChained({-0.1}).ok());
}

TEST(AccountingTest, IndependentJointDegradesToTheProduct) {
  // Two independent geometric releases at alpha each: the joint law is
  // only alpha^2-DP — the quantitative privacy leak of re-randomizing.
  const int n = 5;
  const double alpha = 0.6;
  auto y = GeometricMechanism::Create(n, alpha)->ToMechanism();
  ASSERT_TRUE(y.ok());
  auto joint = IndependentJointMatrix(*y, *y);
  ASSERT_TRUE(joint.ok());
  EXPECT_NEAR(StrongestJointAlpha(*joint), alpha * alpha, 1e-9);
}

TEST(AccountingTest, ChainedJointKeepsTheFirstLevel) {
  // Lemma 4 numerically: chaining through T_{alpha,beta} keeps the joint
  // at the first (strongest-utility) level alpha, not alpha*beta.
  const int n = 5;
  const double alpha = 0.4, beta = 0.7;
  auto y1 = GeometricMechanism::Create(n, alpha)->ToMechanism();
  ASSERT_TRUE(y1.ok());
  auto t = PrivacyTransition(n, alpha, beta);
  ASSERT_TRUE(t.ok());
  auto joint = ChainedJointMatrix(*y1, *t);
  ASSERT_TRUE(joint.ok());
  double joint_alpha = StrongestJointAlpha(*joint);
  EXPECT_NEAR(joint_alpha, alpha, 1e-6);
  // Strictly better than what independent releases would give.
  EXPECT_GT(joint_alpha, alpha * beta + 0.05);
}

TEST(AccountingTest, JointMatrixShapesAndErrors) {
  auto y5 = GeometricMechanism::Create(5, 0.5)->ToMechanism();
  auto y3 = GeometricMechanism::Create(3, 0.5)->ToMechanism();
  ASSERT_TRUE(y5.ok() && y3.ok());
  EXPECT_FALSE(IndependentJointMatrix(*y5, *y3).ok());
  auto joint = IndependentJointMatrix(*y5, *y5);
  ASSERT_TRUE(joint.ok());
  EXPECT_EQ(joint->rows(), 6u);
  EXPECT_EQ(joint->cols(), 36u);
  Matrix bad_t(6, 6);  // all-zero, not stochastic
  EXPECT_FALSE(ChainedJointMatrix(*y5, bad_t).ok());
  Matrix wrong_shape = Matrix::Identity(4);
  EXPECT_FALSE(ChainedJointMatrix(*y5, wrong_shape).ok());
}

TEST(AccountingTest, PostProcessingPreservesLevelExactly) {
  // Definition 3 transformations never change the guarantee: the induced
  // mechanism of any stochastic T is still alpha-DP with the same
  // strongest level (for the geometric deployment, exactly alpha).
  const int n = 6;
  const double alpha = 0.5;
  auto y = GeometricMechanism::Create(n, alpha)->ToMechanism();
  ASSERT_TRUE(y.ok());
  auto t = PrivacyTransition(n, alpha, 0.8);
  ASSERT_TRUE(t.ok());
  auto induced = y->ApplyInteraction(*t);
  ASSERT_TRUE(induced.ok());
  // Post-processing to G_{0.8}: strongest alpha becomes 0.8 >= 0.5.
  EXPECT_GE(StrongestJointAlpha(induced->matrix()), alpha - 1e-9);
}

}  // namespace
}  // namespace geopriv
