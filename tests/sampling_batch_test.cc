// The batched sampling kernel's one non-negotiable property: bit-identity
// with the scalar per-request path.  Lane k of any batch, on any backend,
// must reproduce EXACTLY the draw sequence `Xoshiro256 rng(seed_k)` +
// sequential AliasSampler::Sample calls yield — across batch sizes
// (including non-multiples of the vector width), every row of a served
// mechanism, the forced-scalar environment override, and the full
// transport (1 vs 32 concurrent connections with multi-sample queries).
// A chi-square check then confirms the quantized table still samples the
// mechanism's PMF, so a systematic off-by-one in the threshold math
// cannot hide behind determinism.

#include <algorithm>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "rng/batch_sampler.h"
#include "rng/distributions.h"
#include "rng/engine.h"
#include "service/protocol.h"
#include "service/server.h"

namespace geopriv {
namespace {

// Deterministic positive weights, n not restricted to vector multiples.
std::vector<double> TestWeights(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    // Mix in occasional near-zero and dominant weights so alias cells get
    // thresholds near 0, near 2^53 and in between.
    const double u = rng.NextDouble();
    weights[i] = u < 0.1 ? 1e-9 : (u > 0.9 ? 50.0 : 0.1 + u);
  }
  return weights;
}

// The scalar oracle: the exact per-request path the service ran before
// batching existed — one engine per seed, sequential Sample calls.
std::vector<int32_t> OracleDraws(const AliasSampler& sampler,
                                 const std::vector<uint64_t>& seeds,
                                 const std::vector<int32_t>& counts) {
  std::vector<int32_t> out;
  for (size_t k = 0; k < seeds.size(); ++k) {
    Xoshiro256 rng(seeds[k]);
    for (int32_t j = 0; j < counts[k]; ++j) {
      out.push_back(static_cast<int32_t>(sampler.Sample(rng)));
    }
  }
  return out;
}

std::vector<uint64_t> TestSeeds(size_t count) {
  std::vector<uint64_t> seeds(count);
  for (size_t k = 0; k < count; ++k) {
    // Adversarial-ish spread: small, huge, and bit-dense seeds.
    seeds[k] = 0x9e3779b97f4a7c15ULL * (k + 1) ^ (k << 17) ^ 0xdeadbeefULL;
  }
  return seeds;
}

const char* BackendName(SampleBackend backend) {
  switch (backend) {
    case SampleBackend::kScalar:
      return "scalar";
    case SampleBackend::kAvx2:
      return "avx2";
    case SampleBackend::kAvx512:
      return "avx512";
  }
  return "?";
}

// Every backend, everywhere: a backend the CPU lacks falls back to the
// next-widest available one inside the kernel, so requesting all three
// is safe on any machine and exercises whatever silicon is present.
constexpr SampleBackend kAllBackends[] = {
    SampleBackend::kScalar, SampleBackend::kAvx2, SampleBackend::kAvx512};

TEST(SampleBackendTest, DispatchReportsAConsistentBackend) {
  RefreshSampleBackend();
  const SampleBackend active = ActiveSampleBackend();
  if (!Avx2Available()) {
    EXPECT_EQ(active, SampleBackend::kScalar);
  }
  if (!Avx512Available()) {
    EXPECT_NE(active, SampleBackend::kAvx512);
  }
  // Idempotent: repeated reads agree.
  EXPECT_EQ(ActiveSampleBackend(), active);
}

TEST(AliasTableTest, MatchesAliasSamplerOnEveryBackend) {
  // n deliberately covers 1, non-multiples of 4, and a power of two.
  for (size_t n : {size_t{1}, size_t{3}, size_t{7}, size_t{16}, size_t{33}}) {
    const std::vector<double> weights = TestWeights(n, 1000 + n);
    Result<AliasSampler> sampler = AliasSampler::Create(weights);
    ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
    Result<AliasTable> table = AliasTable::FromWeights(weights);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_EQ(table->size(), n);

    const std::vector<uint64_t> seeds = TestSeeds(257);
    const std::vector<int32_t> counts(seeds.size(), 1);
    const std::vector<int32_t> oracle = OracleDraws(*sampler, seeds, counts);
    for (SampleBackend backend : kAllBackends) {
      std::vector<int32_t> got(seeds.size(), -1);
      table->SampleBatch(seeds.data(), seeds.size(), got.data(), backend);
      EXPECT_EQ(got, oracle)
          << "n=" << n << " backend=" << BackendName(backend);
    }
  }
}

TEST(AliasTableTest, BitIdenticalAcrossBatchSizes) {
  const std::vector<double> weights = TestWeights(16, 77);
  Result<AliasSampler> sampler = AliasSampler::Create(weights);
  ASSERT_TRUE(sampler.ok());
  Result<AliasTable> table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());

  for (size_t batch : {size_t{1}, size_t{2}, size_t{63}, size_t{64},
                       size_t{65}, size_t{4096}}) {
    const std::vector<uint64_t> seeds = TestSeeds(batch);
    const std::vector<int32_t> counts(batch, 1);
    const std::vector<int32_t> oracle = OracleDraws(*sampler, seeds, counts);
    for (SampleBackend backend : kAllBackends) {
      std::vector<int32_t> got(batch, -1);
      table->SampleBatch(seeds.data(), batch, got.data(), backend);
      EXPECT_EQ(got, oracle)
          << "batch=" << batch << " backend=" << BackendName(backend);
    }
  }
}

TEST(AliasTableTest, SampleRunsMatchesSequentialScalarDraws) {
  const std::vector<double> weights = TestWeights(9, 5);
  Result<AliasSampler> sampler = AliasSampler::Create(weights);
  ASSERT_TRUE(sampler.ok());
  Result<AliasTable> table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());

  // Ragged run lengths, including runs crossing the 4-lane chunking.
  const std::vector<uint64_t> seeds = TestSeeds(67);
  std::vector<int32_t> counts(seeds.size());
  std::vector<size_t> offsets(seeds.size());
  size_t total = 0;
  for (size_t k = 0; k < seeds.size(); ++k) {
    counts[k] = static_cast<int32_t>(1 + (k * 13) % 7);
    offsets[k] = total;
    total += static_cast<size_t>(counts[k]);
  }
  const std::vector<int32_t> oracle = OracleDraws(*sampler, seeds, counts);
  ASSERT_EQ(oracle.size(), total);
  for (SampleBackend backend : kAllBackends) {
    std::vector<int32_t> got(total, -1);
    table->SampleRuns(seeds.data(), counts.data(), offsets.data(),
                      seeds.size(), got.data(), backend);
    EXPECT_EQ(got, oracle) << "backend=" << BackendName(backend);
  }
}

Mechanism TestMechanism(int n) {
  const int size = n + 1;
  std::vector<double> rows;
  rows.reserve(static_cast<size_t>(size) * static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    std::vector<double> w =
        TestWeights(static_cast<size_t>(size), 400 + static_cast<uint64_t>(i));
    double sum = 0.0;
    for (double v : w) sum += v;
    for (double v : w) rows.push_back(v / sum);
  }
  Result<Matrix> matrix = Matrix::FromRows(
      static_cast<size_t>(size), static_cast<size_t>(size), rows);
  EXPECT_TRUE(matrix.ok());
  Result<Mechanism> mechanism = Mechanism::Create(*matrix, 1e-6);
  EXPECT_TRUE(mechanism.ok()) << mechanism.status().ToString();
  return *mechanism;
}

TEST(MechanismSampleBatchTest, EveryRowMatchesScalarSample) {
  Mechanism prepared = TestMechanism(16);
  ASSERT_TRUE(prepared.PrepareSamplers().ok());
  Mechanism unprepared = TestMechanism(16);

  const std::vector<uint64_t> seeds = TestSeeds(128);
  for (int i = 0; i <= 16; ++i) {
    std::vector<int32_t> oracle(seeds.size());
    for (size_t k = 0; k < seeds.size(); ++k) {
      Xoshiro256 rng(seeds[k]);
      Result<int> draw = prepared.Sample(i, rng);
      ASSERT_TRUE(draw.ok());
      oracle[k] = static_cast<int32_t>(*draw);
    }
    std::vector<int32_t> batched(seeds.size(), -1);
    ASSERT_TRUE(prepared
                    .SampleBatch(seeds.data(), i, seeds.size(), batched.data())
                    .ok());
    EXPECT_EQ(batched, oracle) << "row " << i;
    // The unprepared path builds a throwaway table; same draws.
    std::vector<int32_t> lazy(seeds.size(), -1);
    ASSERT_TRUE(
        unprepared.SampleBatch(seeds.data(), i, seeds.size(), lazy.data())
            .ok());
    EXPECT_EQ(lazy, oracle) << "row " << i;
  }
  EXPECT_FALSE(prepared.SampleBatch(seeds.data(), -1, 1, nullptr).ok());
  EXPECT_FALSE(prepared.SampleBatch(seeds.data(), 17, 1, nullptr).ok());
}

TEST(MechanismSampleBatchTest, ForcedScalarEnvOverrideIsBitIdentical) {
  Mechanism mechanism = TestMechanism(8);
  ASSERT_TRUE(mechanism.PrepareSamplers().ok());
  const std::vector<uint64_t> seeds = TestSeeds(101);

  std::vector<int32_t> dispatched(seeds.size(), -1);
  RefreshSampleBackend();
  ASSERT_TRUE(
      mechanism.SampleBatch(seeds.data(), 3, seeds.size(), dispatched.data())
          .ok());

  ::setenv("GEOPRIV_FORCE_SCALAR", "1", 1);
  RefreshSampleBackend();
  EXPECT_EQ(ActiveSampleBackend(), SampleBackend::kScalar);
  std::vector<int32_t> forced(seeds.size(), -1);
  ASSERT_TRUE(
      mechanism.SampleBatch(seeds.data(), 3, seeds.size(), forced.data())
          .ok());
  ::unsetenv("GEOPRIV_FORCE_SCALAR");
  RefreshSampleBackend();

  EXPECT_EQ(forced, dispatched);
}

TEST(MechanismSampleBatchTest, ChiSquareAgreesWithRowProbabilities) {
  Mechanism mechanism = TestMechanism(16);
  ASSERT_TRUE(mechanism.PrepareSamplers().ok());
  const int row = 7;
  const size_t kDraws = 200000;
  const std::vector<uint64_t> seeds = TestSeeds(kDraws);
  std::vector<int32_t> draws(kDraws, -1);
  ASSERT_TRUE(
      mechanism.SampleBatch(seeds.data(), row, kDraws, draws.data()).ok());

  std::vector<size_t> counts(17, 0);
  for (int32_t d : draws) {
    ASSERT_GE(d, 0);
    ASSERT_LE(d, 16);
    ++counts[static_cast<size_t>(d)];
  }
  double chi_square = 0.0;
  int dof = 0;
  for (int r = 0; r <= 16; ++r) {
    const double expected =
        mechanism.Probability(row, r) * static_cast<double>(kDraws);
    if (expected < 5.0) continue;  // standard small-cell exclusion
    const double diff = static_cast<double>(counts[static_cast<size_t>(r)]) -
                        expected;
    chi_square += diff * diff / expected;
    ++dof;
  }
  --dof;
  ASSERT_GT(dof, 4);
  // 99.99th percentile of chi-square at these dof is well under 3x dof +
  // 30; a quantization bug (every threshold off by one ulp-of-2^53 scale
  // would still pass, but an off-by-one in the *bucket* math would not).
  EXPECT_LT(chi_square, 3.0 * dof + 30.0)
      << "chi-square " << chi_square << " at " << dof << " dof";
}

TEST(ProtocolSamplesTest, ParserBoundsAndDefault) {
  const std::string base =
      "{\"op\":\"query\",\"consumer\":\"c\",\"n\":4,\"alpha\":\"1/2\","
      "\"loss\":\"absolute\",\"count\":1,\"seed\":9";
  Result<ServiceRequest> plain = ParseRequestLine(base + "}");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->query.samples, 1);
  Result<ServiceRequest> multi = ParseRequestLine(base + ",\"samples\":32}");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->query.samples, 32);
  EXPECT_FALSE(ParseRequestLine(base + ",\"samples\":0}").ok());
  EXPECT_FALSE(ParseRequestLine(base + ",\"samples\":4097}").ok());
  EXPECT_FALSE(ParseRequestLine(base + ",\"samples\":2.5}").ok());
}

// ---------------------------------------------------------------------------
// Transport-level bit-identity with multi-sample queries: a trimmed copy
// of the event-loop test rig (tests/event_loop_test.cc owns the full
// framing/drain coverage; here the rig only carries the K>1 contract).

class AnnouncedPort : public std::stringbuf {
 public:
  std::future<int> port() { return port_.get_future(); }

 protected:
  int sync() override {
    const std::string text = str();
    const size_t nl = text.find('\n');
    if (!set_ && nl != std::string::npos) {
      const size_t colon = text.rfind(':', nl);
      port_.set_value(std::atoi(text.c_str() + colon + 1));
      set_ = true;
    }
    return 0;
  }

 private:
  std::promise<int> port_;
  bool set_ = false;
};

struct Client {
  int fd = -1;
  std::string buffered;

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  bool Connect(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  bool SendLine(const std::string& line) {
    const std::string bytes = line + "\n";
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t k = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (k <= 0) return false;
      sent += static_cast<size_t>(k);
    }
    return true;
  }

  std::string ReadLine() {
    char chunk[4096];
    for (;;) {
      const size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      const ssize_t k = ::recv(fd, chunk, sizeof(chunk), 0);
      if (k <= 0) return "";
      buffered.append(chunk, static_cast<size_t>(k));
    }
  }
};

std::string MultiSampleQuery(const std::string& consumer, uint64_t seed,
                             int samples) {
  std::string line = "{\"op\":\"query\",\"consumer\":\"" + consumer +
                     "\",\"n\":4,\"alpha\":\"1/2\",\"loss\":\"absolute\","
                     "\"count\":1,\"seed\":" + std::to_string(seed);
  if (samples > 1) line += ",\"samples\":" + std::to_string(samples);
  return line + "}";
}

class SamplingTransportTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (server_.joinable()) {
      (void)TcpRequest("127.0.0.1", port_, "{\"op\":\"shutdown\"}");
      server_.join();
    }
  }

  void Start() {
    ServiceOptions options;
    options.threads = 4;
    service_ = std::make_unique<MechanismService>(options);
    auto buffer = std::make_shared<AnnouncedPort>();
    std::future<int> announced = buffer->port();
    server_ = std::thread([this, buffer] {
      std::ostream announce(buffer.get());
      serve_status_ = ServeTcp(0, *service_, announce);
    });
    port_ = announced.get();
    ASSERT_GT(port_, 0);
  }

  void ShutdownAndJoin() {
    auto bye = TcpRequest("127.0.0.1", port_, "{\"op\":\"shutdown\"}");
    ASSERT_TRUE(bye.ok()) << bye.status().ToString();
    server_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  std::unique_ptr<MechanismService> service_;
  std::thread server_;
  Status serve_status_ = Status::OK();
  int port_ = 0;
};

TEST_F(SamplingTransportTest, MultiSampleRepliesBitIdenticalAcross1And32Conns) {
  constexpr int kQueries = 64;
  constexpr int kConns = 32;
  constexpr int kSamples = 3;
  const auto run = [this](int conns) {
    std::vector<std::string> replies(kQueries);
    Client warm;
    EXPECT_TRUE(warm.Connect(port_));
    EXPECT_TRUE(warm.SendLine(MultiSampleQuery("warmup", 1, 1)));
    EXPECT_NE(warm.ReadLine().find("\"ok\":true"), std::string::npos);
    std::vector<std::thread> threads;
    const int per_conn = kQueries / conns;
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([this, c, per_conn, &replies] {
        Client client;
        ASSERT_TRUE(client.Connect(port_));
        for (int q = c * per_conn; q < (c + 1) * per_conn; ++q) {
          ASSERT_TRUE(client.SendLine(
              MultiSampleQuery("consumer-" + std::to_string(q),
                               static_cast<uint64_t>(5000 + q), kSamples)));
          replies[static_cast<size_t>(q)] = client.ReadLine();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return replies;
  };

  Start();
  std::vector<std::string> serial = run(1);
  ShutdownAndJoin();
  Start();  // fresh service: same ledger state as the first run saw
  std::vector<std::string> concurrent = run(kConns);

  for (int q = 0; q < kQueries; ++q) {
    ASSERT_FALSE(serial[static_cast<size_t>(q)].empty());
    // Every reply carries the K-sample array form.
    EXPECT_NE(serial[static_cast<size_t>(q)].find("\"released\":["),
              std::string::npos);
    EXPECT_EQ(serial[static_cast<size_t>(q)],
              concurrent[static_cast<size_t>(q)])
        << "reply " << q << " differs between 1 and " << kConns
        << " connections";
  }
}

TEST_F(SamplingTransportTest, BatchedMultiSampleMatchesSingles) {
  // The columnar batch path (one kernel call per row group) and the
  // single-query fast path must release identical values for identical
  // (seed, samples) requests, and a K=1 query keeps the historical
  // scalar "released":N shape.
  Start();
  Client client;
  ASSERT_TRUE(client.Connect(port_));
  // Prewarm so every measured reply is a cache hit in both runs — the
  // `cache` annotation is the one field allowed to depend on history.
  ASSERT_TRUE(client.SendLine(MultiSampleQuery("warmup", 1, 1)));
  EXPECT_NE(client.ReadLine().find("\"ok\":true"), std::string::npos);

  std::vector<std::string> singles;
  for (uint64_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(client.SendLine(
        MultiSampleQuery("solo-" + std::to_string(s), 100 + s, 4)));
    singles.push_back(client.ReadLine());
    EXPECT_NE(singles.back().find("\"released\":["), std::string::npos);
  }
  ShutdownAndJoin();

  Start();  // fresh ledger so the batch sees the same budget state
  Client batcher;
  ASSERT_TRUE(batcher.Connect(port_));
  ASSERT_TRUE(batcher.SendLine(MultiSampleQuery("warmup", 1, 1)));
  EXPECT_NE(batcher.ReadLine().find("\"ok\":true"), std::string::npos);
  ASSERT_TRUE(batcher.SendLine("{\"op\":\"batch_begin\"}"));
  EXPECT_NE(batcher.ReadLine().find("\"ok\":true"), std::string::npos);
  for (uint64_t s = 0; s < 6; ++s) {
    ASSERT_TRUE(batcher.SendLine(
        MultiSampleQuery("solo-" + std::to_string(s), 100 + s, 4)));
    EXPECT_NE(batcher.ReadLine().find("\"op\":\"queued\""), std::string::npos);
  }
  ASSERT_TRUE(batcher.SendLine("{\"op\":\"batch_end\"}"));
  for (uint64_t s = 0; s < 6; ++s) {
    const std::string reply = batcher.ReadLine();
    EXPECT_EQ(reply, singles[s]) << "batched reply " << s;
  }
  EXPECT_NE(batcher.ReadLine().find("\"op\":\"batch_end\",\"ok\":true"),
            std::string::npos);

  // K=1 replies keep the scalar shape (no array) — the wire format for
  // every pre-existing client is byte-for-byte unchanged.
  Client scalar;
  ASSERT_TRUE(scalar.Connect(port_));
  ASSERT_TRUE(scalar.SendLine(MultiSampleQuery("k1", 42, 1)));
  const std::string k1 = scalar.ReadLine();
  EXPECT_EQ(k1.find("\"released\":["), std::string::npos);
  EXPECT_NE(k1.find("\"released\":"), std::string::npos);
}

}  // namespace
}  // namespace geopriv
