// Tests for the geometric mechanism: Definition 4 matrix, Table 2 forms,
// Lemma 1 determinants, closed-form inverses, and the sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/geometric.h"
#include "core/privacy.h"
#include "rng/engine.h"

namespace geopriv {
namespace {

TEST(GeometricTest, CreateValidates) {
  EXPECT_FALSE(GeometricMechanism::Create(-1, 0.5).ok());
  EXPECT_FALSE(GeometricMechanism::Create(3, -0.1).ok());
  EXPECT_FALSE(GeometricMechanism::Create(3, 1.0).ok());
  EXPECT_TRUE(GeometricMechanism::Create(3, 0.0).ok());
  EXPECT_TRUE(GeometricMechanism::Create(0, 0.5).ok());
}

TEST(GeometricTest, MatrixIsRowStochastic) {
  for (int n : {1, 2, 5, 10, 25}) {
    for (double alpha : {0.0, 0.1, 0.5, 0.9, 0.99}) {
      auto m = GeometricMechanism::BuildMatrix(n, alpha);
      ASSERT_TRUE(m.ok());
      EXPECT_TRUE(m->IsRowStochastic(1e-12))
          << "n=" << n << " alpha=" << alpha;
    }
  }
}

TEST(GeometricTest, AlphaZeroIsIdentity) {
  auto m = GeometricMechanism::BuildMatrix(4, 0.0);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(Matrix::MaxAbsDiff(*m, Matrix::Identity(5)), 1e-15);
}

TEST(GeometricTest, SizeZeroDatabase) {
  auto m = GeometricMechanism::BuildMatrix(0, 0.5);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(0, 0), 1.0);
}

TEST(GeometricTest, MatchesDefinitionFourEntrywise) {
  const int n = 5;
  const double alpha = 0.3;
  auto m = GeometricMechanism::BuildMatrix(n, alpha);
  ASSERT_TRUE(m.ok());
  for (int k = 0; k <= n; ++k) {
    for (int z = 0; z <= n; ++z) {
      double expected;
      if (z == 0 || z == n) {
        expected = std::pow(alpha, std::abs(z - k)) / (1.0 + alpha);
      } else {
        expected = (1.0 - alpha) / (1.0 + alpha) *
                   std::pow(alpha, std::abs(z - k));
      }
      EXPECT_NEAR(m->At(static_cast<size_t>(k), static_cast<size_t>(z)),
                  expected, 1e-14)
          << "k=" << k << " z=" << z;
    }
  }
}

TEST(GeometricTest, GPrimeScalingRelation) {
  // G = G'·D with column scaling d_0 = d_n = 1/(1+α), else (1-α)/(1+α)
  // (this is the content of Table 2).
  const int n = 6;
  const double alpha = 0.4;
  auto g = GeometricMechanism::BuildMatrix(n, alpha);
  auto gp = GeometricMechanism::BuildGPrime(n, alpha);
  ASSERT_TRUE(g.ok() && gp.ok());
  for (size_t i = 0; i <= static_cast<size_t>(n); ++i) {
    for (size_t j = 0; j <= static_cast<size_t>(n); ++j) {
      double d = (j == 0 || j == static_cast<size_t>(n))
                     ? 1.0 / (1.0 + alpha)
                     : (1.0 - alpha) / (1.0 + alpha);
      EXPECT_NEAR(g->At(i, j), gp->At(i, j) * d, 1e-14);
    }
  }
}

TEST(GeometricTest, ClosedFormInverseIsExactInverse) {
  for (int n : {1, 2, 4, 8}) {
    for (double alpha : {0.1, 0.5, 0.9}) {
      auto g = GeometricMechanism::BuildMatrix(n, alpha);
      auto inv = GeometricMechanism::BuildInverse(n, alpha);
      ASSERT_TRUE(g.ok() && inv.ok());
      Matrix eye = Matrix::Identity(static_cast<size_t>(n) + 1);
      EXPECT_LT(Matrix::MaxAbsDiff(*g * *inv, eye), 1e-10)
          << "n=" << n << " alpha=" << alpha;
      EXPECT_LT(Matrix::MaxAbsDiff(*inv * *g, eye), 1e-10);
    }
  }
}

TEST(GeometricTest, InverseRejectsDegenerateParameters) {
  EXPECT_FALSE(GeometricMechanism::BuildInverse(0, 0.5).ok());
  EXPECT_FALSE(GeometricMechanism::BuildInverse(3, 0.0).ok());
  EXPECT_FALSE(GeometricMechanism::BuildInverse(3, 1.0).ok());
}

TEST(GeometricTest, ExactMatrixMatchesDoubleMatrix) {
  Rational alpha = *Rational::FromInts(1, 4);
  auto exact = GeometricMechanism::BuildExactMatrix(3, alpha);
  auto approx = GeometricMechanism::BuildMatrix(3, 0.25);
  ASSERT_TRUE(exact.ok() && approx.ok());
  std::vector<double> e = exact->ToDoubles();
  for (size_t k = 0; k < e.size(); ++k) {
    EXPECT_NEAR(e[k], approx->data()[k], 1e-15);
  }
  EXPECT_TRUE(exact->IsRowStochastic());
}

TEST(GeometricTest, ExactInverseTimesMatrixIsIdentity) {
  Rational alpha = *Rational::FromInts(2, 7);
  for (int n : {1, 3, 6}) {
    auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
    auto inv = GeometricMechanism::BuildExactInverse(n, alpha);
    ASSERT_TRUE(g.ok() && inv.ok());
    EXPECT_EQ(*g * *inv,
              RationalMatrix::Identity(static_cast<size_t>(n) + 1));
    EXPECT_EQ(*inv * *g,
              RationalMatrix::Identity(static_cast<size_t>(n) + 1));
  }
}

TEST(GeometricTest, Lemma1DeterminantClosedForm) {
  // det G'_{n,α} = (1-α²)^n for the (n+1)x(n+1) matrix — verified against
  // exact Gaussian elimination.
  Rational alpha = *Rational::FromInts(1, 3);
  for (int n : {1, 2, 3, 5, 8}) {
    auto gp = GeometricMechanism::BuildExactGPrime(n, alpha);
    ASSERT_TRUE(gp.ok());
    Rational elim = *gp->Determinant();
    Rational closed = *GeometricMechanism::ExactGPrimeDeterminant(n, alpha);
    EXPECT_EQ(elim, closed) << "n=" << n;
    EXPECT_GT(closed, Rational(0));  // Lemma 1: strictly positive
  }
}

TEST(GeometricTest, ExactDeterminantMatchesElimination) {
  Rational alpha = *Rational::FromInts(2, 5);
  for (int n : {1, 2, 4, 6}) {
    auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(*g->Determinant(),
              *GeometricMechanism::ExactDeterminant(n, alpha))
        << "n=" << n;
  }
}

TEST(GeometricTest, DeterminantPositiveForAllAlpha) {
  // Lemma 1's consequence: G is invertible, columns span the simplex face.
  for (int num = 1; num <= 9; ++num) {
    Rational alpha = *Rational::FromInts(num, 10);
    Rational det = *GeometricMechanism::ExactDeterminant(6, alpha);
    EXPECT_GT(det, Rational(0)) << "alpha=" << alpha.ToString();
  }
}

TEST(GeometricTest, SamplerMatchesMatrixDistribution) {
  const int n = 6;
  const double alpha = 0.45;
  auto geo = GeometricMechanism::Create(n, alpha);
  ASSERT_TRUE(geo.ok());
  auto matrix = GeometricMechanism::BuildMatrix(n, alpha);
  ASSERT_TRUE(matrix.ok());
  Xoshiro256 rng(31337);
  const int kDraws = 200000;
  for (int input : {0, 3, 6}) {
    std::vector<int> counts(static_cast<size_t>(n) + 1, 0);
    for (int d = 0; d < kDraws; ++d) {
      auto s = geo->Sample(input, rng);
      ASSERT_TRUE(s.ok());
      ++counts[static_cast<size_t>(*s)];
    }
    for (int z = 0; z <= n; ++z) {
      double expected =
          matrix->At(static_cast<size_t>(input), static_cast<size_t>(z)) *
          kDraws;
      EXPECT_NEAR(counts[static_cast<size_t>(z)], expected,
                  5.0 * std::sqrt(expected) + 10.0)
          << "input=" << input << " z=" << z;
    }
  }
}

TEST(GeometricTest, SampleRangeChecks) {
  auto geo = GeometricMechanism::Create(4, 0.5);
  ASSERT_TRUE(geo.ok());
  Xoshiro256 rng(1);
  EXPECT_FALSE(geo->Sample(-1, rng).ok());
  EXPECT_FALSE(geo->Sample(5, rng).ok());
}

TEST(GeometricTest, ToMechanismIsAlphaPrivate) {
  auto geo = GeometricMechanism::Create(7, 0.6);
  ASSERT_TRUE(geo.ok());
  auto m = geo->ToMechanism();
  ASSERT_TRUE(m.ok());
  auto check = CheckDifferentialPrivacy(*m, 0.6);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->is_private);
}

// Parameterized sweep: exact stochasticity + exact DP across a grid.
class GeometricSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeometricSweepTest, ExactMatrixIsStochasticAndAlphaPrivate) {
  const int n = std::get<0>(GetParam());
  const int num = std::get<1>(GetParam());
  Rational alpha = *Rational::FromInts(num, 10);
  auto g = GeometricMechanism::BuildExactMatrix(n, alpha);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsRowStochastic());
  EXPECT_TRUE(*CheckDifferentialPrivacyExact(*g, alpha));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometricSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12),
                       ::testing::Values(1, 3, 5, 7, 9)));

}  // namespace
}  // namespace geopriv
