// Tests for the exact rational simplex over Q.  These run the solver's
// defaults (fraction-free engine, Devex pricing with Bland fallback);
// rule-specific behavior is covered in pivot_rule_test.cc and the
// engine-equivalence guarantee in exact_simplex_regression_test.cc.

#include <gtest/gtest.h>

#include "lp/exact_simplex.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

TEST(ExactSimplexTest, ValidatesVariableReferences) {
  ExactLpProblem lp;
  lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kEqual, R(1), {{5, R(1)}});
  ExactSimplexSolver solver;
  EXPECT_FALSE(solver.Solve(lp).ok());
}

TEST(ExactSimplexTest, TextbookProblemExactOptimum) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: optimum -36 at (2,6).
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(-3));
  int y = lp.AddVariable("y", R(-5));
  lp.AddConstraint(RowRelation::kLessEqual, R(4), {{x, R(1)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(12), {{y, R(2)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(18), {{x, R(3)}, {y, R(2)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->objective, R(-36));
  EXPECT_EQ(s->values[static_cast<size_t>(x)], R(2));
  EXPECT_EQ(s->values[static_cast<size_t>(y)], R(6));
}

TEST(ExactSimplexTest, FractionalOptimumIsExact) {
  // min x + y s.t. 3x + y >= 1, x + 3y >= 1: optimum 1/2 at (1/4, 1/4).
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  int y = lp.AddVariable("y", R(1));
  lp.AddConstraint(RowRelation::kGreaterEqual, R(1), {{x, R(3)}, {y, R(1)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(1), {{x, R(1)}, {y, R(3)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->objective, R(1, 2));
  EXPECT_EQ(s->values[static_cast<size_t>(x)], R(1, 4));
  EXPECT_EQ(s->values[static_cast<size_t>(y)], R(1, 4));
}

TEST(ExactSimplexTest, EqualityConstraints) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  int y = lp.AddVariable("y", R(1));
  lp.AddConstraint(RowRelation::kEqual, R(4), {{x, R(1)}, {y, R(2)}});
  lp.AddConstraint(RowRelation::kEqual, R(7), {{x, R(3)}, {y, R(1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->values[static_cast<size_t>(x)], R(2));
  EXPECT_EQ(s->values[static_cast<size_t>(y)], R(1));
}

TEST(ExactSimplexTest, DetectsInfeasibilityExactly) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x, R(1)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(2), {{x, R(1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kInfeasible);
}

TEST(ExactSimplexTest, BarelyFeasibleIsNotInfeasible) {
  // x <= 1 and x >= 1 simultaneously: exactly feasible at the point 1 —
  // a case where tolerance-based solvers can go either way.
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x, R(1)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(1), {{x, R(1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->values[static_cast<size_t>(x)], R(1));
}

TEST(ExactSimplexTest, DetectsUnboundedness) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(-1));
  lp.AddConstraint(RowRelation::kGreaterEqual, R(0), {{x, R(1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kUnbounded);
}

TEST(ExactSimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -2  (x >= 2).
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kLessEqual, R(-2), {{x, R(-1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->values[static_cast<size_t>(x)], R(2));
}

TEST(ExactSimplexTest, BlandTerminatesOnCyclingExample) {
  // Chvatal's cycling instance (Dantzig pricing cycles without
  // safeguards); the solver must terminate with optimum 1 under its
  // default rule thanks to the anti-cycling Bland fallback.
  ExactLpProblem lp;
  int x1 = lp.AddVariable("x1", R(-10));
  int x2 = lp.AddVariable("x2", R(57));
  int x3 = lp.AddVariable("x3", R(9));
  int x4 = lp.AddVariable("x4", R(24));
  lp.AddConstraint(RowRelation::kLessEqual, R(0),
                   {{x1, R(1, 2)}, {x2, R(-11, 2)}, {x3, R(-5, 2)}, {x4, R(9)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(0),
                   {{x1, R(1, 2)}, {x2, R(-3, 2)}, {x3, R(-1, 2)}, {x4, R(1)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x1, R(1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->objective, R(-1));
}

TEST(ExactSimplexTest, RedundantEqualityRows) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  int y = lp.AddVariable("y", R(2));
  lp.AddConstraint(RowRelation::kEqual, R(3), {{x, R(1)}, {y, R(1)}});
  lp.AddConstraint(RowRelation::kEqual, R(3), {{x, R(1)}, {y, R(1)}});
  ExactSimplexSolver solver;
  auto s = solver.Solve(lp);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->objective, R(3));
}

TEST(ExactSimplexTest, AgreesWithDoubleSimplexOnRandomProblems) {
  // Property: on small random LPs with modest rational data, the exact
  // optimum equals the double solver's optimum within round-off.
  uint64_t seed = 12345;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int64_t>((seed >> 33) % 11) - 5;
  };
  for (int trial = 0; trial < 40; ++trial) {
    ExactLpProblem exact;
    LpProblem approx;
    const int nv = 3, nc = 3;
    for (int j = 0; j < nv; ++j) {
      int64_t c = next();
      exact.AddVariable("x", R(c));
      approx.AddNonNegativeVariable("x", static_cast<double>(c));
    }
    for (int i = 0; i < nc; ++i) {
      std::vector<ExactLpTerm> eterms;
      std::vector<LpTerm> aterms;
      for (int j = 0; j < nv; ++j) {
        int64_t a = next();
        if (a == 0) continue;
        eterms.push_back({j, R(a)});
        aterms.push_back({j, static_cast<double>(a)});
      }
      int64_t b = std::abs(next()) + 1;
      // <= rows with positive rhs keep the instance feasible (origin).
      exact.AddConstraint(RowRelation::kLessEqual, R(b), std::move(eterms));
      approx.AddConstraint("c", RowRelation::kLessEqual,
                           static_cast<double>(b), std::move(aterms));
    }
    ExactSimplexSolver esolver;
    SimplexSolver asolver;
    auto es = esolver.Solve(exact);
    auto as = asolver.Solve(approx);
    ASSERT_TRUE(es.ok() && as.ok());
    ASSERT_EQ(es->status == LpStatus::kOptimal,
              as->status == LpStatus::kOptimal)
        << "trial " << trial;
    if (es->status == LpStatus::kOptimal) {
      EXPECT_NEAR(es->objective.ToDouble(), as->objective, 1e-9)
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace geopriv
