// Framing, concurrency and drain semantics of the event-loop transport.
//
// These tests drive ServeTcpEventLoop (via ServeTcp, the default) with
// raw blocking sockets so they control exactly which bytes hit the wire
// and when: one-byte writes (reassembly), interleaved batch windows on
// concurrent connections, an oversized line behind a valid one, a
// slow-loris half line against the idle timer wheel, graceful drain, the
// poll(2) fallback backend, and a send-fault that must drop one client
// without touching the daemon or its neighbors.  The concurrency
// bit-identity test pins the per-request seed contract: the reply SET for
// a fixed query set is byte-identical whether it arrives over 1
// connection or 32.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/server.h"
#include "util/fault_injection.h"

namespace geopriv {
namespace {

// Captures the daemon's "listening on 127.0.0.1:<port>" announce line and
// hands the port to the test thread through a promise.
class AnnouncedPort : public std::stringbuf {
 public:
  std::future<int> port() { return port_.get_future(); }

 protected:
  int sync() override {
    const std::string text = str();
    const size_t nl = text.find('\n');
    if (!set_ && nl != std::string::npos) {
      const size_t colon = text.rfind(':', nl);
      port_.set_value(std::atoi(text.c_str() + colon + 1));
      set_ = true;
    }
    return 0;
  }

 private:
  std::promise<int> port_;
  bool set_ = false;
};

// A blocking test client with explicit control over the bytes sent.
struct Client {
  int fd = -1;
  std::string buffered;

  ~Client() { Close(); }

  bool Connect(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      Close();
      return false;
    }
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t k = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (k <= 0) return false;
      sent += static_cast<size_t>(k);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return Send(line + "\n"); }

  /// One '\n'-terminated reply line (without the newline); empty string on
  /// EOF or timeout.
  std::string ReadLine() {
    char chunk[4096];
    for (;;) {
      const size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      const ssize_t k = ::recv(fd, chunk, sizeof(chunk), 0);
      if (k <= 0) return "";
      buffered.append(chunk, static_cast<size_t>(k));
    }
  }

  /// Everything until the server closes (plus what was buffered).
  std::string ReadToEof() {
    std::string out = std::move(buffered);
    buffered.clear();
    char chunk[4096];
    for (;;) {
      const ssize_t k = ::recv(fd, chunk, sizeof(chunk), 0);
      if (k <= 0) return out;
      out.append(chunk, static_cast<size_t>(k));
    }
  }

  void HalfClose() { ::shutdown(fd, SHUT_WR); }

  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

std::string Query(const std::string& consumer, uint64_t seed) {
  return "{\"op\":\"query\",\"consumer\":\"" + consumer +
         "\",\"n\":4,\"alpha\":\"1/2\",\"loss\":\"absolute\",\"count\":1,"
         "\"seed\":" + std::to_string(seed) + "}";
}

class EventLoopTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault_injection::Disarm();
    if (server_.joinable()) {
      (void)TcpRequest("127.0.0.1", port_, "{\"op\":\"shutdown\"}");
      server_.join();
    }
  }

  void Start(ServiceOptions options = {}) {
    options.threads = options.threads == 0 ? 2 : options.threads;
    service_ = std::make_unique<MechanismService>(options);
    // The server thread co-owns the announce buffer: Start() returns the
    // moment the promise fires, which can be before the daemon finishes
    // the `<< std::flush` that fired it — a stack-local buffer here would
    // be written after this frame is gone.
    auto buffer = std::make_shared<AnnouncedPort>();
    std::future<int> announced = buffer->port();
    serve_status_ = Status::OK();
    server_ = std::thread([this, buffer] {
      std::ostream announce(buffer.get());
      serve_status_ = ServeTcp(0, *service_, announce);
    });
    port_ = announced.get();
    ASSERT_GT(port_, 0);
  }

  void ShutdownAndJoin() {
    auto bye = TcpRequest("127.0.0.1", port_, "{\"op\":\"shutdown\"}");
    ASSERT_TRUE(bye.ok()) << bye.status().ToString();
    EXPECT_NE(bye->find("\"op\":\"shutdown\",\"ok\":true"),
              std::string::npos);
    server_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  std::unique_ptr<MechanismService> service_;
  std::thread server_;
  Status serve_status_ = Status::OK();
  int port_ = 0;
};

TEST_F(EventLoopTest, ReassemblesOneByteWrites) {
  Start();
  Client client;
  ASSERT_TRUE(client.Connect(port_));
  const std::string line = Query("alice", 7) + "\n";
  for (char c : line) {
    ASSERT_TRUE(client.Send(std::string(1, c)));
  }
  const std::string reply = client.ReadLine();
  EXPECT_NE(reply.find("\"op\":\"query\",\"ok\":true"), std::string::npos);
  EXPECT_NE(reply.find("\"released\":"), std::string::npos);
  // Framing intact afterwards: a normal request still round-trips.
  ASSERT_TRUE(client.SendLine("{\"op\":\"ping\"}"));
  EXPECT_NE(client.ReadLine().find("\"op\":\"ping\",\"ok\":true"),
            std::string::npos);
}

TEST_F(EventLoopTest, BatchWindowsOnConcurrentConnectionsAreIndependent) {
  Start();
  Client a, b;
  ASSERT_TRUE(a.Connect(port_));
  ASSERT_TRUE(b.Connect(port_));
  // Interleave: both windows open at once, each buffers its own queries.
  ASSERT_TRUE(a.SendLine("{\"op\":\"batch_begin\"}"));
  EXPECT_NE(a.ReadLine().find("\"op\":\"batch_begin\",\"ok\":true"),
            std::string::npos);
  ASSERT_TRUE(b.SendLine("{\"op\":\"batch_begin\"}"));
  EXPECT_NE(b.ReadLine().find("\"op\":\"batch_begin\",\"ok\":true"),
            std::string::npos);
  ASSERT_TRUE(a.SendLine(Query("alice", 1)));
  EXPECT_NE(a.ReadLine().find("\"op\":\"queued\",\"ok\":true,\"index\":0"),
            std::string::npos);
  ASSERT_TRUE(b.SendLine(Query("bob", 2)));
  ASSERT_TRUE(b.SendLine(Query("bob", 3)));
  EXPECT_NE(b.ReadLine().find("\"index\":0"), std::string::npos);
  EXPECT_NE(b.ReadLine().find("\"index\":1"), std::string::npos);
  // a's batch_end must flush exactly a's one query, not b's two.
  ASSERT_TRUE(a.SendLine("{\"op\":\"batch_end\"}"));
  EXPECT_NE(a.ReadLine().find("\"consumer\":\"alice\""), std::string::npos);
  EXPECT_NE(a.ReadLine().find("\"op\":\"batch_end\",\"ok\":true,"
                              "\"batched\":1"),
            std::string::npos);
  ASSERT_TRUE(b.SendLine("{\"op\":\"batch_end\"}"));
  EXPECT_NE(b.ReadLine().find("\"consumer\":\"bob\""), std::string::npos);
  EXPECT_NE(b.ReadLine().find("\"consumer\":\"bob\""), std::string::npos);
  EXPECT_NE(b.ReadLine().find("\"batched\":2"), std::string::npos);
}

TEST_F(EventLoopTest, OversizedLineMidStreamAnswersThenRejects) {
  Start();
  Client client;
  ASSERT_TRUE(client.Connect(port_));
  // A valid query, then > 1 MiB with no newline in the same burst.  The
  // query must be answered; the oversized tail draws the parse error and
  // the connection closes.
  ASSERT_TRUE(client.Send(Query("alice", 5) + "\n"));
  ASSERT_TRUE(client.Send(std::string((1 << 20) + 4096, 'x')));
  const std::string first = client.ReadLine();
  EXPECT_NE(first.find("\"op\":\"query\",\"ok\":true"), std::string::npos);
  const std::string rest = client.ReadToEof();
  EXPECT_NE(rest.find("exceeds 1 MiB"), std::string::npos);
}

TEST_F(EventLoopTest, ReplySetIsBitIdenticalAcross1And32Connections) {
  constexpr int kQueries = 128;
  constexpr int kConns = 32;
  // Distinct consumers and seeds: every reply is then a deterministic
  // function of its own request — ledger interleaving across connections
  // has nothing to change.
  const auto run = [this](int conns) {
    std::vector<std::string> replies(kQueries);
    // Prewarm so every measured reply is a cache hit in both runs (which
    // query solves cold is scheduling-dependent with 32 connections).
    Client warm;
    EXPECT_TRUE(warm.Connect(port_));
    EXPECT_TRUE(warm.SendLine(Query("warmup", 1)));
    EXPECT_NE(warm.ReadLine().find("\"ok\":true"), std::string::npos);
    std::vector<std::thread> threads;
    const int per_conn = kQueries / conns;
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([this, c, per_conn, &replies] {
        Client client;
        ASSERT_TRUE(client.Connect(port_));
        for (int q = c * per_conn; q < (c + 1) * per_conn; ++q) {
          ASSERT_TRUE(client.SendLine(
              Query("consumer-" + std::to_string(q),
                    static_cast<uint64_t>(1000 + q))));
          replies[static_cast<size_t>(q)] = client.ReadLine();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return replies;
  };

  Start();
  std::vector<std::string> serial = run(1);
  ShutdownAndJoin();
  Start();  // fresh service: same ledger state as the first run saw
  std::vector<std::string> concurrent = run(kConns);

  // Same request -> byte-identical reply, regardless of the transport's
  // interleaving (the per-request seed contract).
  for (int q = 0; q < kQueries; ++q) {
    EXPECT_FALSE(serial[static_cast<size_t>(q)].empty());
    EXPECT_EQ(serial[static_cast<size_t>(q)],
              concurrent[static_cast<size_t>(q)])
        << "reply " << q << " differs between 1 and 32 connections";
  }
  std::sort(serial.begin(), serial.end());
  std::sort(concurrent.begin(), concurrent.end());
  EXPECT_EQ(serial, concurrent);
}

TEST_F(EventLoopTest, SlowLorisHalfLineIsDroppedUnansweredOnIdleTimeout) {
  ServiceOptions options;
  options.idle_timeout_ms = 300;
  Start(options);
  Client loris, healthy;
  ASSERT_TRUE(loris.Connect(port_));
  ASSERT_TRUE(healthy.Connect(port_));
  // The slow loris parks half a request and goes quiet.
  ASSERT_TRUE(loris.Send("{\"op\":\"pi"));
  // The healthy neighbor keeps talking through the loris's timeout window
  // and must never be disturbed.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(healthy.SendLine("{\"op\":\"ping\"}"));
    EXPECT_NE(healthy.ReadLine().find("\"ok\":true"), std::string::npos);
  }
  // ~500ms elapsed > 300ms timeout: the loris is gone, and its half line
  // was dropped UNANSWERED — EOF with zero reply bytes.
  EXPECT_EQ(loris.ReadToEof(), "");
}

TEST_F(EventLoopTest, FinalUnterminatedLineIsAnsweredOnHalfClose) {
  Start();
  Client client;
  ASSERT_TRUE(client.Connect(port_));
  ASSERT_TRUE(client.Send("{\"op\":\"ping\"}"));  // no trailing newline
  client.HalfClose();
  const std::string all = client.ReadToEof();
  EXPECT_NE(all.find("\"op\":\"ping\",\"ok\":true"), std::string::npos);
}

TEST_F(EventLoopTest, ShutdownDrainsAndClosesEveryConnection) {
  Start();
  Client idle, closer;
  ASSERT_TRUE(idle.Connect(port_));
  ASSERT_TRUE(closer.Connect(port_));
  // Prove `idle` is actually registered before the drain begins.
  ASSERT_TRUE(idle.SendLine("{\"op\":\"ping\"}"));
  EXPECT_NE(idle.ReadLine().find("\"ok\":true"), std::string::npos);
  ASSERT_TRUE(closer.SendLine("{\"op\":\"shutdown\"}"));
  EXPECT_NE(closer.ReadLine().find("\"op\":\"shutdown\",\"ok\":true"),
            std::string::npos);
  // The shutdown requester and the idle bystander both get clean EOFs.
  EXPECT_EQ(closer.ReadToEof(), "");
  EXPECT_EQ(idle.ReadToEof(), "");
  server_.join();
  EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  // The listener is gone: further connects are refused.
  Client late;
  EXPECT_FALSE(late.Connect(port_));
}

TEST_F(EventLoopTest, PollFallbackBackendServesTheSameProtocol) {
  ::setenv("GEOPRIV_FORCE_POLL", "1", 1);
  Start();
  Client client;
  ASSERT_TRUE(client.Connect(port_));
  ASSERT_TRUE(client.SendLine(Query("alice", 11)));
  EXPECT_NE(client.ReadLine().find("\"op\":\"query\",\"ok\":true"),
            std::string::npos);
  ASSERT_TRUE(client.SendLine("{\"op\":\"stats\"}"));
  EXPECT_NE(client.ReadLine().find("\"op\":\"stats\",\"ok\":true"),
            std::string::npos);
  ShutdownAndJoin();
  ::unsetenv("GEOPRIV_FORCE_POLL");
}

TEST_F(EventLoopTest, EvictionChurnNeverYieldsWrongOrLostReplies) {
  // Post-eviction serving contract, end to end: with max_entries=1 the
  // cache evicts on nearly every publish, so the Contains-based executor
  // classification is stale all the time.  The contract is that a stale
  // "cached" classification degrades to a transient shed the client's
  // retry absorbs — every query eventually answers ok, none answers
  // wrong, and the I/O thread never wedges.
  ServiceOptions options;
  options.max_entries = 1;
  options.retry_after_ms = 1;
  Start(options);
  RetryOptions retry;
  retry.attempts = 8;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 8;
  // One structural class (fixed n), four alphas: the class anchor (the
  // smallest denominator, 1/2) is pinned, so the other three churn
  // through the single remaining slot.  Distinct n values would NOT
  // churn — each n is its own class whose lone entry is its anchor.
  const char* alphas[] = {"1/2", "1/3", "2/5", "3/7"};
  for (int round = 0; round < 3; ++round) {
    for (const char* alpha : alphas) {
      const std::string line =
          "{\"op\":\"query\",\"consumer\":\"alice\",\"n\":5,\"alpha\":\"" +
          std::string(alpha) +
          "\",\"mode\":\"geometric\",\"count\":1,"
          "\"seed\":" + std::to_string(round) + "}";
      auto reply = TcpRequestWithRetry("127.0.0.1", port_, line, retry);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_NE(reply->find("\"op\":\"query\",\"ok\":true"),
                std::string::npos)
          << *reply;
      // The reply echoes the canonical signature: right answer, right
      // signature, even while that signature churns in and out of cache.
      EXPECT_NE(reply->find(";alpha=" + std::string(alpha)),
                std::string::npos)
          << *reply;
    }
  }
  // The bound held (the anchor may pin one extra entry above it).
  EXPECT_LE(service_->cache().GetStats().entries, 2u);
  EXPECT_GE(service_->cache().GetStats().evictions, 1u);
  ShutdownAndJoin();
}

TEST_F(EventLoopTest, SendFaultDropsOnlyThatClient) {
  Start();
  ASSERT_TRUE(fault_injection::ArmFromSpec("server.send=fail").ok());
  Client victim;
  ASSERT_TRUE(victim.Connect(port_));
  ASSERT_TRUE(victim.SendLine("{\"op\":\"ping\"}"));
  // The injected send failure plays a vanished peer: dropped, no reply.
  EXPECT_EQ(victim.ReadToEof(), "");
  fault_injection::Disarm();
  // The daemon survived and serves the next client normally.
  Client healthy;
  ASSERT_TRUE(healthy.Connect(port_));
  ASSERT_TRUE(healthy.SendLine("{\"op\":\"ping\"}"));
  EXPECT_NE(healthy.ReadLine().find("\"op\":\"ping\",\"ok\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace geopriv
