// Devex vs Bland pricing on the shared simplex core: both rules must
// certify the same exact optimum (bit-identical rationals on the exact
// path), Devex must never need more pivots than Bland on the paper's
// optimal-mechanism LPs, and the infeasible/unbounded/degenerate paths
// must classify identically under either rule.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/optimal_exact.h"
#include "lp/exact_simplex.h"
#include "lp/problem.h"
#include "lp/simplex.h"

namespace geopriv {
namespace {

Rational R(int64_t num, int64_t den = 1) {
  return *Rational::FromInts(num, den);
}

ExactLpProblem OptimalMechanismLp(int n) {
  auto lp = BuildOptimalMechanismLpExact(n, R(1, 2),
                                         ExactLossFunction::AbsoluteError(),
                                         SideInformation::All(n));
  EXPECT_TRUE(lp.ok());
  return *std::move(lp);
}

ExactLpSolution SolveExact(const ExactLpProblem& lp, PivotRule rule,
                           ExactPivotEngine engine =
                               ExactPivotEngine::kFractionFree) {
  ExactSimplexOptions options;
  options.engine = engine;
  options.rule = rule;
  auto s = ExactSimplexSolver(options).Solve(lp);
  EXPECT_TRUE(s.ok());
  return *std::move(s);
}

TEST(PivotRuleTest, DevexMatchesBlandBitIdenticallyOnOptimalMechanismLps) {
  for (int n : {2, 4, 8}) {
    const std::string label = "n=" + std::to_string(n);
    ExactLpProblem lp = OptimalMechanismLp(n);
    ExactLpSolution bland = SolveExact(lp, PivotRule::kBland);
    ExactLpSolution devex = SolveExact(lp, PivotRule::kDevex);
    ASSERT_EQ(bland.status, LpStatus::kOptimal) << label;
    ASSERT_EQ(devex.status, LpStatus::kOptimal) << label;
    // Bit-identical exact optimum: canonical numerator/denominator strings,
    // not merely equal values — for the objective AND every variable (these
    // degenerate LPs have multiple optimal bases, so identical values are a
    // property worth pinning, not a given).
    EXPECT_EQ(devex.objective.ToString(), bland.objective.ToString()) << label;
    ASSERT_EQ(devex.values.size(), bland.values.size()) << label;
    for (size_t j = 0; j < devex.values.size(); ++j) {
      EXPECT_EQ(devex.values[j].ToString(), bland.values[j].ToString())
          << label << " variable " << j;
    }
    // The pricing rule must be reported so callers can assert on it.
    EXPECT_EQ(bland.rule, PivotRule::kBland) << label;
    EXPECT_EQ(devex.rule, PivotRule::kDevex) << label;
  }
}

TEST(PivotRuleTest, DevexNeverNeedsMorePivotsThanBland) {
  // The whole point of reference-weight pricing: on these degenerate LPs
  // Devex must do no worse than Bland, and by n=8 it should be winning by
  // a wide margin (686 vs 99 pivots when this test was written).
  for (int n : {2, 4, 8}) {
    const std::string label = "n=" + std::to_string(n);
    ExactLpProblem lp = OptimalMechanismLp(n);
    ExactLpSolution bland = SolveExact(lp, PivotRule::kBland);
    ExactLpSolution devex = SolveExact(lp, PivotRule::kDevex);
    EXPECT_LE(devex.iterations, bland.iterations) << label;
    // Per-phase counts must add up to the reported total.
    EXPECT_EQ(devex.iterations,
              devex.phase1_iterations + devex.phase2_iterations)
        << label;
    EXPECT_EQ(bland.iterations,
              bland.phase1_iterations + bland.phase2_iterations)
        << label;
  }
  // The asymptotic gap, pinned loosely at n=8 so a pricing regression
  // (e.g. Devex silently degrading to Bland) fails loudly.
  ExactLpProblem lp = OptimalMechanismLp(8);
  ExactLpSolution bland = SolveExact(lp, PivotRule::kBland);
  ExactLpSolution devex = SolveExact(lp, PivotRule::kDevex);
  EXPECT_LE(devex.iterations * 3, bland.iterations)
      << "Devex lost its pivot-count advantage at n=8";
}

TEST(PivotRuleTest, RulesAgreeOnBothExactEngines) {
  ExactLpProblem lp = OptimalMechanismLp(4);
  const std::string expected =
      SolveExact(lp, PivotRule::kBland).objective.ToString();
  for (ExactPivotEngine engine :
       {ExactPivotEngine::kFractionFree, ExactPivotEngine::kDenseRational}) {
    for (PivotRule rule :
         {PivotRule::kBland, PivotRule::kDantzig, PivotRule::kDevex}) {
      ExactLpSolution s = SolveExact(lp, rule, engine);
      ASSERT_EQ(s.status, LpStatus::kOptimal);
      EXPECT_EQ(s.objective.ToString(), expected);
    }
  }
}

TEST(PivotRuleTest, InfeasibleClassifiedIdenticallyUnderEveryRule) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(1));
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x, R(1)}});
  lp.AddConstraint(RowRelation::kGreaterEqual, R(2), {{x, R(1)}});
  for (PivotRule rule :
       {PivotRule::kBland, PivotRule::kDantzig, PivotRule::kDevex}) {
    EXPECT_EQ(SolveExact(lp, rule).status, LpStatus::kInfeasible);
  }
}

TEST(PivotRuleTest, UnboundedClassifiedIdenticallyUnderEveryRule) {
  ExactLpProblem lp;
  int x = lp.AddVariable("x", R(-1));
  lp.AddConstraint(RowRelation::kGreaterEqual, R(0), {{x, R(1)}});
  for (PivotRule rule :
       {PivotRule::kBland, PivotRule::kDantzig, PivotRule::kDevex}) {
    EXPECT_EQ(SolveExact(lp, rule).status, LpStatus::kUnbounded);
  }
}

TEST(PivotRuleTest, DevexTerminatesOnDegenerateCyclingExample) {
  // Chvatal's cycling instance: Dantzig pricing cycles without safeguards.
  // Devex must ride its anti-cycling Bland fallback to the optimum -1 and
  // agree with Bland exactly.
  ExactLpProblem lp;
  int x1 = lp.AddVariable("x1", R(-10));
  int x2 = lp.AddVariable("x2", R(57));
  int x3 = lp.AddVariable("x3", R(9));
  int x4 = lp.AddVariable("x4", R(24));
  lp.AddConstraint(RowRelation::kLessEqual, R(0),
                   {{x1, R(1, 2)}, {x2, R(-11, 2)}, {x3, R(-5, 2)}, {x4, R(9)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(0),
                   {{x1, R(1, 2)}, {x2, R(-3, 2)}, {x3, R(-1, 2)}, {x4, R(1)}});
  lp.AddConstraint(RowRelation::kLessEqual, R(1), {{x1, R(1)}});
  for (PivotRule rule :
       {PivotRule::kBland, PivotRule::kDantzig, PivotRule::kDevex}) {
    ExactLpSolution s = SolveExact(lp, rule);
    ASSERT_EQ(s.status, LpStatus::kOptimal);
    EXPECT_EQ(s.objective, R(-1));
  }
}

TEST(PivotRuleTest, ExactIterationCapReportsIterationLimit) {
  ExactLpProblem lp = OptimalMechanismLp(4);
  ExactSimplexOptions options;
  options.rule = PivotRule::kBland;
  options.max_iterations = 3;  // far below the ~67 pivots this LP needs
  auto s = ExactSimplexSolver(options).Solve(lp);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kIterationLimit);
  EXPECT_EQ(s->iterations, 3);
}

TEST(PivotRuleTest, CapEqualToRequiredPivotsStillReportsOptimal) {
  // The budget is checked only when another pivot is needed, so a solve
  // that reaches optimality in exactly max_iterations pivots must not be
  // misclassified as hitting the limit.
  ExactLpProblem lp = OptimalMechanismLp(2);
  ExactSimplexOptions options;
  options.rule = PivotRule::kBland;
  ExactLpSolution uncapped = *ExactSimplexSolver(options).Solve(lp);
  ASSERT_EQ(uncapped.status, LpStatus::kOptimal);
  options.max_iterations = uncapped.iterations;
  auto capped = ExactSimplexSolver(options).Solve(lp);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->status, LpStatus::kOptimal);
  EXPECT_EQ(capped->objective, uncapped.objective);
  EXPECT_EQ(capped->iterations, uncapped.iterations);
}

TEST(PivotRuleTest, DoubleSolverSupportsAllRulesAndReportsPhases) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: optimum -36 at (2,6).
  LpProblem lp;
  int x = lp.AddNonNegativeVariable("x", -3.0);
  int y = lp.AddNonNegativeVariable("y", -5.0);
  lp.AddConstraint("c1", RowRelation::kLessEqual, 4.0, {{x, 1.0}});
  lp.AddConstraint("c2", RowRelation::kLessEqual, 12.0, {{y, 2.0}});
  lp.AddConstraint("c3", RowRelation::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  for (PivotRule rule :
       {PivotRule::kDantzig, PivotRule::kBland, PivotRule::kDevex}) {
    SimplexOptions options;
    options.rule = rule;
    auto s = SimplexSolver(options).Solve(lp);
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(s->status, LpStatus::kOptimal);
    EXPECT_NEAR(s->objective, -36.0, 1e-9);
    EXPECT_NEAR(s->values[static_cast<size_t>(x)], 2.0, 1e-9);
    EXPECT_NEAR(s->values[static_cast<size_t>(y)], 6.0, 1e-9);
    EXPECT_EQ(s->rule, rule);
    EXPECT_EQ(s->iterations, s->phase1_iterations + s->phase2_iterations);
    // No equality/>= rows here, so everything is phase-2 work.
    EXPECT_EQ(s->phase1_iterations, 0);
    EXPECT_GT(s->phase2_iterations, 0);
  }
}

// Large-instance acceptance gate (n=16 Bland needs ~half an hour of CPU in
// debug containers), opt-in via GEOPRIV_LARGE_TESTS=1: Devex must beat
// Bland by >= 5x in pivots with a bit-identical optimum.
TEST(PivotRuleTest, LargeDevexBeatsBlandFiveFold) {
  if (const char* env = std::getenv("GEOPRIV_LARGE_TESTS");
      env == nullptr || std::string(env) != "1") {
    GTEST_SKIP() << "set GEOPRIV_LARGE_TESTS=1 to run the n=16 gate";
  }
  ExactLpProblem lp = OptimalMechanismLp(16);
  ExactLpSolution bland = SolveExact(lp, PivotRule::kBland);
  ExactLpSolution devex = SolveExact(lp, PivotRule::kDevex);
  ASSERT_EQ(bland.status, LpStatus::kOptimal);
  ASSERT_EQ(devex.status, LpStatus::kOptimal);
  EXPECT_EQ(devex.objective.ToString(), bland.objective.ToString());
  ASSERT_EQ(devex.values.size(), bland.values.size());
  for (size_t j = 0; j < devex.values.size(); ++j) {
    EXPECT_EQ(devex.values[j].ToString(), bland.values[j].ToString())
        << "variable " << j;
  }
  EXPECT_LE(devex.iterations * 5, bland.iterations);
}

}  // namespace
}  // namespace geopriv
