// Synthetic population generator.
//
// The paper's running example queries real survey data (San Diego flu
// counts) that is not available offline.  Because every mechanism in the
// library is oblivious — it only ever sees the true count — any database
// realizing a given count exercises identical code paths, so a synthetic
// Bernoulli-mixture population is a faithful substitute (DESIGN.md §4).

#ifndef GEOPRIV_DB_SYNTHETIC_H_
#define GEOPRIV_DB_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "rng/engine.h"
#include "util/result.h"

namespace geopriv {

/// Parameters of the synthetic survey population.
struct SyntheticPopulationOptions {
  /// Number of individuals (database rows).
  int64_t num_rows = 1000;
  /// Cities individuals are drawn from (uniformly at random).
  std::vector<std::string> cities = {"San Diego", "Sacramento", "Fresno"};
  /// Probability that an individual is an adult.
  double adult_probability = 0.75;
  /// Probability that an adult contracted the flu this month.
  double adult_flu_probability = 0.08;
  /// Probability that a minor contracted the flu this month.
  double minor_flu_probability = 0.15;
  /// Probability that an individual with flu bought the surveyed drug.
  double drug_purchase_probability = 0.4;
};

/// Schema: {city: string, age: int, has_flu: bool, bought_drug: bool}.
Schema SyntheticSurveySchema();

/// Generates a population table under `options` using `rng`.
Result<Table> GenerateSyntheticSurvey(const SyntheticPopulationOptions& options,
                                      Xoshiro256& rng);

/// The paper's running query Q: "How many adults from San Diego contracted
/// the flu this October?" against SyntheticSurveySchema().
CountQuery FluCountQuery();

/// Lower-bound side information of the drug company in Example 1: the count
/// of individuals who bought the drug (each of whom has the flu).
CountQuery DrugPurchaseCountQuery();

}  // namespace geopriv

#endif  // GEOPRIV_DB_SYNTHETIC_H_
