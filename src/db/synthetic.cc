#include "db/synthetic.h"

namespace geopriv {

Schema SyntheticSurveySchema() {
  return Schema({
      {"city", Column::Type::kString},
      {"age", Column::Type::kInt},
      {"has_flu", Column::Type::kBool},
      {"bought_drug", Column::Type::kBool},
  });
}

Result<Table> GenerateSyntheticSurvey(
    const SyntheticPopulationOptions& options, Xoshiro256& rng) {
  if (options.num_rows < 0) {
    return Status::InvalidArgument("num_rows must be non-negative");
  }
  if (options.cities.empty()) {
    return Status::InvalidArgument("at least one city is required");
  }
  for (double p :
       {options.adult_probability, options.adult_flu_probability,
        options.minor_flu_probability, options.drug_purchase_probability}) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }

  Table table(SyntheticSurveySchema());
  for (int64_t i = 0; i < options.num_rows; ++i) {
    const std::string& city =
        options.cities[rng.NextBounded(options.cities.size())];
    bool adult = rng.NextDouble() < options.adult_probability;
    // Adults 18..90, minors 0..17.
    int64_t age = adult ? 18 + static_cast<int64_t>(rng.NextBounded(73))
                        : static_cast<int64_t>(rng.NextBounded(18));
    double flu_p = adult ? options.adult_flu_probability
                         : options.minor_flu_probability;
    bool has_flu = rng.NextDouble() < flu_p;
    bool bought =
        has_flu && rng.NextDouble() < options.drug_purchase_probability;
    GEOPRIV_RETURN_IF_ERROR(table.Append({city, age, has_flu, bought}));
  }
  return table;
}

CountQuery FluCountQuery() {
  Predicate p = Predicate::Equals("city", std::string("San Diego")) &&
                Predicate::AtLeast("age", 18) &&
                Predicate::Equals("has_flu", true);
  return CountQuery(std::move(p));
}

CountQuery DrugPurchaseCountQuery() {
  Predicate p = Predicate::Equals("city", std::string("San Diego")) &&
                Predicate::AtLeast("age", 18) &&
                Predicate::Equals("bought_drug", true);
  return CountQuery(std::move(p));
}

}  // namespace geopriv
