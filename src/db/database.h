// In-memory database substrate.
//
// The paper's mechanisms answer *count queries* over a database of rows,
// one per individual (Section 2.1).  This module provides the concrete
// substrate: typed rows, schemas, composable predicates, count queries, and
// the neighbor relation ("databases differing in one individual's data")
// that differential privacy quantifies over.  It also backs the Appendix A
// reduction and the end-to-end examples (the running flu query Q).
//
// No real data is available offline; db/synthetic.h generates populations
// whose *count* matches any scenario — sufficient because the mechanisms
// are oblivious and only ever see the true count.

#ifndef GEOPRIV_DB_DATABASE_H_
#define GEOPRIV_DB_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace geopriv {

/// A single cell: the domains D the paper allows are arbitrary, we support
/// the types that cover survey-style data.
using Value = std::variant<int64_t, double, bool, std::string>;

/// Column description.
struct Column {
  std::string name;
  enum class Type { kInt, kDouble, kBool, kString } type;
};

/// Returns whether `v` holds the type `t` declares.
bool ValueMatchesType(const Value& v, Column::Type t);

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Index of a column by name.
  Result<size_t> IndexOf(const std::string& name) const;

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Verifies a row's arity and cell types against this schema.
  Status ValidateRow(const std::vector<Value>& row) const;

 private:
  std::vector<Column> columns_;
};

/// One individual's record.
using Row = std::vector<Value>;

/// Composable boolean predicate over rows — the `p : D -> {True, False}`
/// of a count query.  Built from field comparisons and boolean algebra.
class Predicate {
 public:
  /// Always-true predicate.
  Predicate();

  /// field == value.
  static Predicate Equals(std::string field, Value value);
  /// Numeric field >= threshold (int or double fields).
  static Predicate AtLeast(std::string field, double threshold);
  /// Numeric field <= threshold.
  static Predicate AtMost(std::string field, double threshold);
  /// lo <= field <= hi.
  static Predicate Between(std::string field, double lo, double hi);
  /// Arbitrary user predicate (escape hatch).
  static Predicate FromFunction(
      std::string description,
      std::function<Result<bool>(const Schema&, const Row&)> fn);

  Predicate operator&&(const Predicate& other) const;
  Predicate operator||(const Predicate& other) const;
  Predicate operator!() const;

  /// Evaluates on a row; fails when a referenced field is missing or has an
  /// incompatible type.
  Result<bool> Evaluate(const Schema& schema, const Row& row) const;

  /// Human-readable rendering, e.g. "(city == \"San Diego\" AND flu == 1)".
  const std::string& description() const { return description_; }

 private:
  using Fn = std::function<Result<bool>(const Schema&, const Row&)>;
  Predicate(std::string description, Fn fn);

  std::string description_;
  std::shared_ptr<const Fn> fn_;
};

/// An in-memory table: schema + rows.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a row after validating it against the schema.
  Status Append(Row row);

  /// Replaces row `index`; fails when out of range or invalid.  This is the
  /// "change one individual's data" operation of the neighbor relation.
  Status Replace(size_t index, Row row);

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// A count query: |{rows r : p(r)}|, an integer in {0..n}.
class CountQuery {
 public:
  explicit CountQuery(Predicate predicate)
      : predicate_(std::move(predicate)) {}

  /// Evaluates the true (unperturbed) count.
  Result<int64_t> Evaluate(const Table& table) const;

  const Predicate& predicate() const { return predicate_; }

 private:
  Predicate predicate_;
};

/// True when `a` and `b` have the same schema arity and differ in at most
/// one row (the differential-privacy neighbor relation over D^n).
Result<bool> AreNeighbors(const Table& a, const Table& b);

}  // namespace geopriv

#endif  // GEOPRIV_DB_DATABASE_H_
