#include "db/database.h"

#include <cmath>
#include <utility>

namespace geopriv {

bool ValueMatchesType(const Value& v, Column::Type t) {
  switch (t) {
    case Column::Type::kInt:
      return std::holds_alternative<int64_t>(v);
    case Column::Type::kDouble:
      return std::holds_alternative<double>(v);
    case Column::Type::kBool:
      return std::holds_alternative<bool>(v);
    case Column::Type::kString:
      return std::holds_alternative<std::string>(v);
  }
  return false;
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueMatchesType(row[i], columns_[i].type)) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     columns_[i].name + "'");
    }
  }
  return Status::OK();
}

namespace {

/// Reads a numeric cell as double; fails for bool/string cells.
Result<double> NumericCell(const Schema& schema, const Row& row,
                           const std::string& field) {
  GEOPRIV_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(field));
  const Value& v = row[idx];
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  return Status::InvalidArgument("column '" + field + "' is not numeric");
}

std::string ValueToString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return std::to_string(*d);
  if (const auto* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  return "\"" + std::get<std::string>(v) + "\"";
}

}  // namespace

Predicate::Predicate(std::string description, Fn fn)
    : description_(std::move(description)),
      fn_(std::make_shared<const Fn>(std::move(fn))) {}

Predicate::Predicate()
    : Predicate("true",
                [](const Schema&, const Row&) -> Result<bool> {
                  return true;
                }) {}

Predicate Predicate::Equals(std::string field, Value value) {
  std::string desc = field + " == " + ValueToString(value);
  return Predicate(
      std::move(desc),
      [field = std::move(field), value = std::move(value)](
          const Schema& schema, const Row& row) -> Result<bool> {
        GEOPRIV_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(field));
        return row[idx] == value;
      });
}

Predicate Predicate::AtLeast(std::string field, double threshold) {
  std::string desc = field + " >= " + std::to_string(threshold);
  return Predicate(std::move(desc),
                   [field = std::move(field), threshold](
                       const Schema& schema, const Row& row) -> Result<bool> {
                     GEOPRIV_ASSIGN_OR_RETURN(
                         double v, NumericCell(schema, row, field));
                     return v >= threshold;
                   });
}

Predicate Predicate::AtMost(std::string field, double threshold) {
  std::string desc = field + " <= " + std::to_string(threshold);
  return Predicate(std::move(desc),
                   [field = std::move(field), threshold](
                       const Schema& schema, const Row& row) -> Result<bool> {
                     GEOPRIV_ASSIGN_OR_RETURN(
                         double v, NumericCell(schema, row, field));
                     return v <= threshold;
                   });
}

Predicate Predicate::Between(std::string field, double lo, double hi) {
  return AtLeast(field, lo) && AtMost(std::move(field), hi);
}

Predicate Predicate::FromFunction(
    std::string description,
    std::function<Result<bool>(const Schema&, const Row&)> fn) {
  return Predicate(std::move(description), std::move(fn));
}

Predicate Predicate::operator&&(const Predicate& other) const {
  std::string desc = "(" + description_ + " AND " + other.description_ + ")";
  auto lhs = fn_;
  auto rhs = other.fn_;
  return Predicate(std::move(desc),
                   [lhs, rhs](const Schema& schema,
                              const Row& row) -> Result<bool> {
                     GEOPRIV_ASSIGN_OR_RETURN(bool a, (*lhs)(schema, row));
                     if (!a) return false;
                     return (*rhs)(schema, row);
                   });
}

Predicate Predicate::operator||(const Predicate& other) const {
  std::string desc = "(" + description_ + " OR " + other.description_ + ")";
  auto lhs = fn_;
  auto rhs = other.fn_;
  return Predicate(std::move(desc),
                   [lhs, rhs](const Schema& schema,
                              const Row& row) -> Result<bool> {
                     GEOPRIV_ASSIGN_OR_RETURN(bool a, (*lhs)(schema, row));
                     if (a) return true;
                     return (*rhs)(schema, row);
                   });
}

Predicate Predicate::operator!() const {
  std::string desc = "NOT " + description_;
  auto inner = fn_;
  return Predicate(std::move(desc),
                   [inner](const Schema& schema,
                           const Row& row) -> Result<bool> {
                     GEOPRIV_ASSIGN_OR_RETURN(bool a, (*inner)(schema, row));
                     return !a;
                   });
}

Result<bool> Predicate::Evaluate(const Schema& schema, const Row& row) const {
  return (*fn_)(schema, row);
}

Status Table::Append(Row row) {
  GEOPRIV_RETURN_IF_ERROR(schema_.ValidateRow(row));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::Replace(size_t index, Row row) {
  if (index >= rows_.size()) {
    return Status::OutOfRange("row index out of range");
  }
  GEOPRIV_RETURN_IF_ERROR(schema_.ValidateRow(row));
  rows_[index] = std::move(row);
  return Status::OK();
}

Result<int64_t> CountQuery::Evaluate(const Table& table) const {
  int64_t count = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    GEOPRIV_ASSIGN_OR_RETURN(
        bool match, predicate_.Evaluate(table.schema(), table.row(i)));
    if (match) ++count;
  }
  return count;
}

Result<bool> AreNeighbors(const Table& a, const Table& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "neighboring databases must have equal size");
  }
  size_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.row(i) != b.row(i)) ++diff;
    if (diff > 1) return false;
  }
  return true;
}

}  // namespace geopriv
