#include "core/accounting.h"

#include <algorithm>

namespace geopriv {

namespace {

Status ValidateAlphas(const std::vector<double>& alphas) {
  if (alphas.empty()) {
    return Status::InvalidArgument("at least one privacy level is required");
  }
  for (double a : alphas) {
    if (!(a >= 0.0 && a <= 1.0)) {
      return Status::InvalidArgument("privacy levels must lie in [0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> ComposeSequential(const std::vector<double>& alphas) {
  GEOPRIV_RETURN_IF_ERROR(ValidateAlphas(alphas));
  double product = 1.0;
  for (double a : alphas) product *= a;
  return product;
}

Result<double> ComposeChained(const std::vector<double>& alphas) {
  GEOPRIV_RETURN_IF_ERROR(ValidateAlphas(alphas));
  return *std::min_element(alphas.begin(), alphas.end());
}

Result<Matrix> IndependentJointMatrix(const Mechanism& y1,
                                      const Mechanism& y2) {
  if (y1.size() != y2.size()) {
    return Status::InvalidArgument("mechanism sizes must match");
  }
  const size_t size = static_cast<size_t>(y1.size());
  Matrix joint(size, size * size);
  for (size_t i = 0; i < size; ++i) {
    for (size_t r1 = 0; r1 < size; ++r1) {
      double p1 = y1.Probability(static_cast<int>(i), static_cast<int>(r1));
      if (p1 == 0.0) continue;
      for (size_t r2 = 0; r2 < size; ++r2) {
        joint.At(i, r1 * size + r2) =
            p1 * y2.Probability(static_cast<int>(i), static_cast<int>(r2));
      }
    }
  }
  if (!joint.IsRowStochastic(1e-9)) {
    return Status::Internal("joint release rows failed stochasticity");
  }
  return joint;
}

Result<Matrix> ChainedJointMatrix(const Mechanism& y1,
                                  const Matrix& transition) {
  const size_t size = static_cast<size_t>(y1.size());
  if (transition.rows() != size || transition.cols() != size) {
    return Status::InvalidArgument("transition shape mismatch");
  }
  if (!transition.IsRowStochastic(1e-9)) {
    return Status::InvalidArgument("transition must be row-stochastic");
  }
  Matrix joint(size, size * size);
  for (size_t i = 0; i < size; ++i) {
    for (size_t r1 = 0; r1 < size; ++r1) {
      double p1 = y1.Probability(static_cast<int>(i), static_cast<int>(r1));
      if (p1 == 0.0) continue;
      for (size_t r2 = 0; r2 < size; ++r2) {
        joint.At(i, r1 * size + r2) = p1 * transition.At(r1, r2);
      }
    }
  }
  if (!joint.IsRowStochastic(1e-9)) {
    return Status::Internal("joint release rows failed stochasticity");
  }
  return joint;
}

double StrongestJointAlpha(const Matrix& joint) {
  double alpha = 1.0;
  for (size_t i = 0; i + 1 < joint.rows(); ++i) {
    for (size_t c = 0; c < joint.cols(); ++c) {
      double a = joint.At(i, c);
      double b = joint.At(i + 1, c);
      if (a == 0.0 && b == 0.0) continue;
      double lo = std::min(a, b);
      double hi = std::max(a, b);
      alpha = std::min(alpha, lo / hi);
    }
  }
  return alpha;
}

}  // namespace geopriv
