#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/geometric.h"
#include "core/optimal.h"
#include "core/privacy.h"

namespace geopriv {

std::vector<RowErrorStats> ComputeRowErrorStats(const Mechanism& mechanism) {
  const int n = mechanism.n();
  std::vector<RowErrorStats> out;
  out.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    RowErrorStats stats;
    stats.input = i;
    for (int r = 0; r <= n; ++r) {
      double p = mechanism.Probability(i, r);
      double err = static_cast<double>(r - i);
      stats.mean_error += p * err;
      stats.mean_abs_error += p * std::abs(err);
      stats.mean_sq_error += p * err * err;
      if (r == i) stats.prob_exact += p;
    }
    out.push_back(stats);
  }
  return out;
}

MechanismSummary Summarize(const Mechanism& mechanism) {
  MechanismSummary summary;
  for (const RowErrorStats& row : ComputeRowErrorStats(mechanism)) {
    summary.worst_mean_abs_error =
        std::max(summary.worst_mean_abs_error, row.mean_abs_error);
    summary.worst_mean_sq_error =
        std::max(summary.worst_mean_sq_error, row.mean_sq_error);
    summary.worst_prob_error =
        std::max(summary.worst_prob_error, 1.0 - row.prob_exact);
    summary.max_bias_magnitude =
        std::max(summary.max_bias_magnitude, std::abs(row.mean_error));
  }
  summary.strongest_alpha = StrongestAlpha(mechanism);
  return summary;
}

Result<std::vector<TradeoffPoint>> GeometricTradeoffCurve(
    const MinimaxConsumer& consumer, const std::vector<double>& alphas) {
  const int n = consumer.side_information().n();
  std::vector<TradeoffPoint> curve;
  curve.reserve(alphas.size());
  for (double alpha : alphas) {
    GEOPRIV_ASSIGN_OR_RETURN(GeometricMechanism geo,
                             GeometricMechanism::Create(n, alpha));
    GEOPRIV_ASSIGN_OR_RETURN(Mechanism deployed, geo.ToMechanism());
    GEOPRIV_ASSIGN_OR_RETURN(OptimalInteractionResult interaction,
                             SolveOptimalInteraction(deployed, consumer));
    curve.push_back(TradeoffPoint{alpha, interaction.loss});
  }
  return curve;
}

Result<double> PostProcessingRegret(const Mechanism& deployed,
                                    const MinimaxConsumer& consumer) {
  GEOPRIV_ASSIGN_OR_RETURN(double naive, consumer.WorstCaseLoss(deployed));
  GEOPRIV_ASSIGN_OR_RETURN(OptimalInteractionResult rational,
                           SolveOptimalInteraction(deployed, consumer));
  if (rational.loss <= 0.0) {
    return naive <= 1e-12 ? 0.0
                          : std::numeric_limits<double>::infinity();
  }
  return (naive - rational.loss) / rational.loss;
}

std::string FormatRowErrorStats(const std::vector<RowErrorStats>& stats) {
  std::string out =
      "  input       bias   E|error|   E[error^2]   Pr[exact]\n";
  char line[128];
  for (const RowErrorStats& row : stats) {
    std::snprintf(line, sizeof(line), "  %5d %10.4f %10.4f %12.4f %11.4f\n",
                  row.input, row.mean_error, row.mean_abs_error,
                  row.mean_sq_error, row.prob_exact);
    out += line;
  }
  return out;
}

}  // namespace geopriv
