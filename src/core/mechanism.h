// Mechanism: oblivious privacy mechanisms for count queries.
//
// Section 2.2 of the paper: an oblivious mechanism for a count query over a
// database of size n is a row-stochastic (n+1)x(n+1) matrix x, where
// x[i][r] = Pr[release r | true count i].  This type is the currency of the
// whole library: the geometric mechanism, LP-optimal mechanisms, consumer
// interactions and multi-level releases all produce or consume it.

#ifndef GEOPRIV_CORE_MECHANISM_H_
#define GEOPRIV_CORE_MECHANISM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exact/rational_matrix.h"
#include "linalg/matrix.h"
#include "rng/batch_sampler.h"
#include "rng/distributions.h"
#include "rng/engine.h"
#include "util/result.h"

namespace geopriv {

/// An oblivious mechanism over inputs/outputs {0, ..., n}.
/// Immutable after construction; value semantics.
class Mechanism {
 public:
  /// Wraps a row-stochastic square matrix.  Fails when the matrix is not
  /// square, empty, or not row-stochastic within `tol`.
  static Result<Mechanism> Create(Matrix probabilities, double tol = 1e-9);

  /// Converts an exact mechanism; fails when not exactly row-stochastic.
  static Result<Mechanism> FromExact(const RationalMatrix& probabilities);

  /// The identity (no-noise) mechanism on {0..n} — the α = 0 extreme.
  static Mechanism Identity(int n);

  /// The maximally private mechanism that outputs uniformly on {0..n}
  /// regardless of the input — an α = 1 (vacuous utility) extreme.
  static Mechanism Uniform(int n);

  /// Largest query result, i.e. the database size n; inputs are {0..n}.
  int n() const { return static_cast<int>(probs_.rows()) - 1; }
  /// Number of inputs/outputs, n+1.
  int size() const { return static_cast<int>(probs_.rows()); }

  /// Pr[release r | true count i].
  double Probability(int i, int r) const {
    return probs_.At(static_cast<size_t>(i), static_cast<size_t>(r));
  }

  /// The full probability matrix.
  const Matrix& matrix() const { return probs_; }

  /// Output distribution for input i (row i).
  Vector RowDistribution(int i) const {
    return probs_.Row(static_cast<size_t>(i));
  }

  /// Applies a consumer interaction T (Definition 3): returns the induced
  /// mechanism x = y·T.  Fails when T is not (n+1)x(n+1) row-stochastic.
  Result<Mechanism> ApplyInteraction(const Matrix& interaction,
                                     double tol = 1e-9) const;

  /// Samples a released value for true count i.  Fails when i ∉ {0..n}.
  Result<int> Sample(int i, Xoshiro256& rng) const;

  /// Batched sampling for true count i: out[k] receives the draw of the
  /// per-request stream seeded with seeds[k] — bit-identical to calling
  /// Sample(i, Xoshiro256(seeds[k])) per request, but executed through
  /// the columnar kernel (rng/batch_sampler.h), so one quantized alias
  /// table serves the whole lane group.  Fails when i ∉ {0..n}.
  Status SampleBatch(const uint64_t* seeds, int i, size_t count,
                     int32_t* out) const;

  /// Batched multi-draw sampling: counts[k] sequential draws from
  /// request k's stream land in out[offsets[k]...] — bit-identical to
  /// counts[k] Sample calls on one fresh stream per request.
  Status SampleRuns(const uint64_t* seeds, const int32_t* counts,
                    const size_t* offsets, int i, size_t count,
                    int32_t* out) const;

  /// Builds per-row alias samplers once — and their pre-quantized batch
  /// tables — so Sample is O(1)/draw and SampleBatch skips the per-call
  /// threshold quantization.  (Both work without this, constructing the
  /// sampler/table per call.)
  Status PrepareSamplers();

  /// Total variation distance between this mechanism's and `other`'s output
  /// distributions, maximized over inputs.  Shapes must match.
  Result<double> MaxTotalVariation(const Mechanism& other) const;

  /// Multi-line text rendering of the matrix.
  std::string ToString(int precision = 4) const {
    return probs_.ToString(precision);
  }

 private:
  explicit Mechanism(Matrix probs) : probs_(std::move(probs)) {}

  Matrix probs_;
  std::vector<AliasSampler> samplers_;  // empty until PrepareSamplers()
  std::vector<AliasTable> tables_;      // quantized twins of samplers_
};

}  // namespace geopriv

#endif  // GEOPRIV_CORE_MECHANISM_H_
