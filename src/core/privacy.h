// Differential-privacy verification (Definitions in Sections 2.1–2.2).
//
// For count queries adjacent databases change the true count by at most 1,
// so α-DP for an oblivious mechanism reduces to the per-column two-entry
// condition of Definition 2:  α·x[i][r] <= x[i+1][r] <= x[i][r]/α.
//
// The parameter convention follows the paper: α ∈ [0, 1], α = 0 vacuous
// (no privacy), α = 1 absolute privacy.  The relation to the common ε
// convention is α = e^{-ε}.

#ifndef GEOPRIV_CORE_PRIVACY_H_
#define GEOPRIV_CORE_PRIVACY_H_

#include "core/mechanism.h"
#include "exact/rational_matrix.h"
#include "util/result.h"

namespace geopriv {

/// A violation of Definition 2, reported by CheckDifferentialPrivacy.
struct PrivacyViolation {
  int input;    ///< the smaller of the two adjacent inputs (i vs i+1)
  int output;   ///< the column r where the ratio condition fails
  double ratio; ///< min(x[i][r]/x[i+1][r], x[i+1][r]/x[i][r]) observed
};

/// Verdict of a DP check.
struct PrivacyCheck {
  bool is_private = false;
  /// Populated with the first violation when is_private == false.
  PrivacyViolation violation{};
};

/// Checks Definition 2 for `alpha` ∈ [0, 1] with numeric tolerance `tol`.
/// Fails only for malformed arguments (alpha outside [0, 1]).
Result<PrivacyCheck> CheckDifferentialPrivacy(const Mechanism& mechanism,
                                              double alpha,
                                              double tol = 1e-9);

/// The strongest (largest) α the mechanism satisfies:
///   α* = min over adjacent pairs and columns of
///        min(x[i][r], x[i+1][r]) / max(x[i][r], x[i+1][r]),
/// with the convention that a column where exactly one of the pair is zero
/// forces α* = 0, and a column where both are zero is unconstrained.
/// The identity mechanism therefore has α* = 0, the uniform mechanism 1.
double StrongestAlpha(const Mechanism& mechanism);

/// Exact version of Definition 2 over rationals: no tolerances.
/// Fails when `alpha` ∉ [0, 1] or the matrix is not square.
Result<bool> CheckDifferentialPrivacyExact(const RationalMatrix& mechanism,
                                           const Rational& alpha);

/// Converts between the paper's α and the standard ε = -ln α.
double AlphaFromEpsilon(double epsilon);
double EpsilonFromAlpha(double alpha);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_PRIVACY_H_
