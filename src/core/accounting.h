// Privacy accounting: how guarantees compose across releases.
//
// In the paper's α convention (α = e^-ε), guarantees multiply where ε's
// add:
//   * sequential composition — releasing k independent mechanisms at
//     levels α₁..α_k about the same database is Πα_i-DP;
//   * post-processing — applying any data-independent transformation
//     (Definition 3) preserves the level exactly;
//   * Algorithm 1's chained release — α_min(C)-DP for any coalition C
//     (Lemma 4), i.e. the *best* level in the coalition, NOT the product:
//     this is the quantitative content of collusion resistance.
//
// This module provides those combinators plus numeric verification
// helpers used by tests and the CLI.

#ifndef GEOPRIV_CORE_ACCOUNTING_H_
#define GEOPRIV_CORE_ACCOUNTING_H_

#include <vector>

#include "core/mechanism.h"
#include "util/result.h"

namespace geopriv {

/// Level of k independent releases at levels `alphas` combined
/// (sequential composition): Πα_i.  Fails when any α ∉ [0, 1].
Result<double> ComposeSequential(const std::vector<double>& alphas);

/// Level guaranteed by Lemma 4 for a coalition holding chained releases
/// at levels `alphas` (Algorithm 1): min α_i — the most trusted member's
/// level, independent of coalition size.  Fails on empty input or
/// α ∉ [0, 1].
Result<double> ComposeChained(const std::vector<double>& alphas);

/// The joint law of two *independent* releases y1, y2 of the same count:
/// a row-stochastic (n+1) x (n+1)^2 matrix whose columns are output pairs
/// (r1, r2) flattened to r1*(n+1)+r2.  Used to verify sequential
/// composition numerically.  Shapes must match.
Result<Matrix> IndependentJointMatrix(const Mechanism& y1,
                                      const Mechanism& y2);

/// The joint law of a two-stage chained release (Algorithm 1 with two
/// levels): r1 ~ y1(i), then r2 ~ T(r1).  Same layout as
/// IndependentJointMatrix.  T must be (n+1)x(n+1) row-stochastic.
Result<Matrix> ChainedJointMatrix(const Mechanism& y1,
                                  const Matrix& transition);

/// Largest α such that a (possibly rectangular) joint release matrix
/// satisfies Definition 2 down its adjacent input rows.  Rows are indexed
/// by inputs {0..n}; columns may be any output alphabet.
double StrongestJointAlpha(const Matrix& joint);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_ACCOUNTING_H_
