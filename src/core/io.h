// Text serialization for mechanisms and interaction matrices.
//
// A deployed mechanism is an artifact that gets reviewed, versioned and
// shipped between the data owner and consumers, so the library provides a
// stable, human-readable format:
//
//   geopriv-mechanism v1
//   n <n>
//   row <p_0> <p_1> ... <p_n>     (n+1 rows, each a distribution)
//
// Probabilities are written with 17 significant digits (round-trip safe
// for doubles).  Parsing validates shape and stochasticity.

#ifndef GEOPRIV_CORE_IO_H_
#define GEOPRIV_CORE_IO_H_

#include <string>

#include "core/mechanism.h"
#include "util/result.h"

namespace geopriv {

/// Serializes a mechanism to the v1 text format.
std::string SerializeMechanism(const Mechanism& mechanism);

/// Parses the v1 text format; validates header, shape and stochasticity.
Result<Mechanism> ParseMechanism(const std::string& text);

/// Writes a mechanism to `path` (overwrites).  Fails on I/O errors.
Status SaveMechanism(const Mechanism& mechanism, const std::string& path);

/// Reads a mechanism from `path`.
Result<Mechanism> LoadMechanism(const std::string& path);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_IO_H_
