// Text serialization for mechanisms and interaction matrices.
//
// A deployed mechanism is an artifact that gets reviewed, versioned and
// shipped between the data owner and consumers, so the library provides a
// stable, human-readable format.  Three versions exist:
//
//   geopriv-mechanism v1
//   n <n>
//   row <p_0> <p_1> ... <p_n>     (n+1 rows, each a distribution)
//
// with probabilities written with 17 significant digits (round-trip safe
// for doubles),
//
//   geopriv-mechanism v2
//   n <n>
//   row <p_0> <p_1> ... <p_n>     (entries are exact rationals "p/q")
//
// whose entries round-trip *losslessly*, and
//
//   geopriv-mechanism v3
//   checksum <16 hex digits>
//   n <n>
//   row <p_0> <p_1> ... <p_n>     (body identical to v2)
//
// which adds an FNV-1a-64 checksum over the canonical body bytes
// (everything after the checksum line).  v3 is what the mechanism
// service's durable store persists: an exact LP optimum reloaded after a
// restart is bit-identical (operator==) to the freshly solved one, and a
// bit-flipped or torn file is *detected* rather than trusted.  Parsing
// validates shape and stochasticity; ParseMechanism accepts all three
// versions (rational entries are converted to doubles),
// ParseExactMechanism accepts v2 and v3 and verifies the v3 checksum.

#ifndef GEOPRIV_CORE_IO_H_
#define GEOPRIV_CORE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "exact/rational_matrix.h"
#include "util/result.h"

namespace geopriv {

/// Serializes a mechanism to the v1 text format.
std::string SerializeMechanism(const Mechanism& mechanism);

/// Parses the v1, v2 or v3 text format; validates header, shape and
/// stochasticity (and the checksum for v3).  Rational entries are
/// converted to the closest doubles.
Result<Mechanism> ParseMechanism(const std::string& text);

/// Writes a mechanism to `path` (overwrites).  Fails on I/O errors.
Status SaveMechanism(const Mechanism& mechanism, const std::string& path);

/// Reads a mechanism from `path`.
Result<Mechanism> LoadMechanism(const std::string& path);

// ---- exact (v2/v3) format ---------------------------------------------------

/// Serializes an exact row-stochastic matrix to the v2 text format with
/// lossless "p/q" entries (lowest terms).
std::string SerializeExactMechanism(const RationalMatrix& mechanism);

/// Serializes to the v3 text format: the v2 body prefixed by a
/// "checksum <16 hex>" FNV-1a-64 digest of the body bytes.  This is the
/// format the service's durable store writes.
std::string SerializeExactMechanismV3(const RationalMatrix& mechanism);

/// Parses the v2 or v3 text format; validates the header, shape, *exact*
/// row-stochasticity (every row sums to exactly 1, entries >= 0), and —
/// for v3 — that the stored checksum matches the body bytes.
Result<RationalMatrix> ParseExactMechanism(const std::string& text);

// ---- checksums --------------------------------------------------------------

/// FNV-1a 64-bit digest of `bytes` (the checksum primitive used by the v3
/// mechanism format, basis documents and the service manifest).
uint64_t Fnv1a64(const std::string& bytes);

/// `Fnv1a64` formatted as exactly 16 lowercase hex digits.
std::string Fnv1a64Hex(const std::string& bytes);

// ---- LP basis documents -----------------------------------------------------
//
// The service persists the optimal LP basis next to each cached mechanism
// so a restarted daemon warm-starts exactly as a live cache does.  The
// format mirrors v3's checksum discipline:
//
//   geopriv-basis v1
//   checksum <16 hex digits>
//   key <canonical signature key>
//   columns <k> <c_0> <c_1> ... <c_{k-1}>
//
// where the checksum covers everything after its own line and the columns
// are the basic column indices of an LpBasis, sorted and duplicate-free.
// The column vector is passed as plain indices so core/ stays independent
// of lp/.

/// Serializes a basis document for `key` with the given basic columns.
std::string SerializeBasisDoc(const std::string& key,
                              const std::vector<size_t>& basic_columns);

/// Parses a basis document; validates header, checksum, and that the
/// columns are sorted and duplicate-free.  Returns the basic columns and
/// stores the embedded canonical key in `*key_out` (if non-null).
Result<std::vector<size_t>> ParseBasisDoc(const std::string& text,
                                          std::string* key_out);

/// Writes an exact mechanism to `path` (overwrites).  Fails on I/O errors
/// and on non-stochastic input.
Status SaveExactMechanism(const RationalMatrix& mechanism,
                          const std::string& path);

/// Reads an exact mechanism from `path`.
Result<RationalMatrix> LoadExactMechanism(const std::string& path);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_IO_H_
