// Text serialization for mechanisms and interaction matrices.
//
// A deployed mechanism is an artifact that gets reviewed, versioned and
// shipped between the data owner and consumers, so the library provides a
// stable, human-readable format.  Two versions exist:
//
//   geopriv-mechanism v1
//   n <n>
//   row <p_0> <p_1> ... <p_n>     (n+1 rows, each a distribution)
//
// with probabilities written with 17 significant digits (round-trip safe
// for doubles), and
//
//   geopriv-mechanism v2
//   n <n>
//   row <p_0> <p_1> ... <p_n>     (entries are exact rationals "p/q")
//
// whose entries round-trip *losslessly*: v2 is what the mechanism
// service's solve cache persists, so an exact LP optimum reloaded after a
// restart is bit-identical (operator==) to the freshly solved one.
// Parsing validates shape and stochasticity; ParseMechanism accepts both
// versions (v2 entries are converted to doubles), ParseExactMechanism
// requires v2.

#ifndef GEOPRIV_CORE_IO_H_
#define GEOPRIV_CORE_IO_H_

#include <string>

#include "core/mechanism.h"
#include "exact/rational_matrix.h"
#include "util/result.h"

namespace geopriv {

/// Serializes a mechanism to the v1 text format.
std::string SerializeMechanism(const Mechanism& mechanism);

/// Parses the v1 or v2 text format; validates header, shape and
/// stochasticity.  v2 entries are converted to the closest doubles.
Result<Mechanism> ParseMechanism(const std::string& text);

/// Writes a mechanism to `path` (overwrites).  Fails on I/O errors.
Status SaveMechanism(const Mechanism& mechanism, const std::string& path);

/// Reads a mechanism from `path`.
Result<Mechanism> LoadMechanism(const std::string& path);

// ---- exact (v2) format ------------------------------------------------------

/// Serializes an exact row-stochastic matrix to the v2 text format with
/// lossless "p/q" entries (lowest terms).
std::string SerializeExactMechanism(const RationalMatrix& mechanism);

/// Parses the v2 text format; validates the header, shape, and *exact*
/// row-stochasticity (every row sums to exactly 1, entries >= 0).
Result<RationalMatrix> ParseExactMechanism(const std::string& text);

/// Writes an exact mechanism to `path` (overwrites).  Fails on I/O errors
/// and on non-stochastic input.
Status SaveExactMechanism(const RationalMatrix& mechanism,
                          const std::string& path);

/// Reads an exact mechanism from `path`.
Result<RationalMatrix> LoadExactMechanism(const std::string& path);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_IO_H_
