#include "core/optimal_exact.h"

#include <cstdlib>
#include <memory>
#include <vector>

#include "lp/exact_simplex.h"
#include "util/thread_pool.h"

namespace geopriv {

ExactLossFunction ExactLossFunction::AbsoluteError() {
  return ExactLossFunction("absolute", [](int i, int r) {
    return Rational(std::abs(i - r));
  });
}

ExactLossFunction ExactLossFunction::SquaredError() {
  return ExactLossFunction("squared", [](int i, int r) {
    int64_t d = i - r;
    return Rational(d * d);
  });
}

ExactLossFunction ExactLossFunction::ZeroOne() {
  return ExactLossFunction("zero-one", [](int i, int r) {
    return Rational(i == r ? 0 : 1);
  });
}

ExactLossFunction ExactLossFunction::FromFunction(
    std::string name, std::function<Rational(int, int)> fn) {
  return ExactLossFunction(std::move(name), std::move(fn));
}

Status ExactLossFunction::ValidateMonotone(int n) const {
  for (int i = 0; i <= n; ++i) {
    for (int r = 0; r <= n; ++r) {
      if ((*this)(i, r).IsNegative()) {
        return Status::InvalidArgument("exact loss must be non-negative");
      }
    }
    for (int r = i; r + 1 <= n; ++r) {
      if ((*this)(i, r + 1) < (*this)(i, r)) {
        return Status::InvalidArgument(
            "exact loss decreases with distance right of i=" +
            std::to_string(i));
      }
    }
    for (int r = i; r - 1 >= 0; --r) {
      if ((*this)(i, r - 1) < (*this)(i, r)) {
        return Status::InvalidArgument(
            "exact loss decreases with distance left of i=" +
            std::to_string(i));
      }
    }
  }
  return Status::OK();
}

Result<Rational> ExactWorstCaseLoss(const RationalMatrix& mechanism,
                                    const ExactLossFunction& loss,
                                    const SideInformation& side) {
  if (mechanism.rows() != mechanism.cols() ||
      mechanism.rows() != static_cast<size_t>(side.n()) + 1) {
    return Status::InvalidArgument("mechanism shape does not match n");
  }
  Rational worst(0);
  bool first = true;
  for (int i : side.members()) {
    Rational acc(0);
    for (size_t r = 0; r < mechanism.cols(); ++r) {
      acc += loss(i, static_cast<int>(r)) *
             mechanism.At(static_cast<size_t>(i), r);
    }
    if (first || acc > worst) {
      worst = std::move(acc);
      first = false;
    }
  }
  return worst;
}

namespace {

constexpr int CellVar(int i, int r, int n) { return i * (n + 1) + r; }

Status ValidateExactArgs(int n, const Rational& alpha,
                         const ExactLossFunction& loss,
                         const SideInformation& side) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (alpha.IsNegative() || alpha > Rational(1)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (side.n() != n) {
    return Status::InvalidArgument("side information n does not match");
  }
  return loss.ValidateMonotone(n);
}

// Extracts the (n+1)x(n+1) cell block of an exact LP solution.
RationalMatrix ExtractMatrix(const std::vector<Rational>& values, int n) {
  const int size = n + 1;
  RationalMatrix out(static_cast<size_t>(size), static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      out.At(static_cast<size_t>(i), static_cast<size_t>(r)) =
          values[static_cast<size_t>(CellVar(i, r, n))];
    }
  }
  return out;
}

}  // namespace

Result<ExactLpProblem> BuildOptimalMechanismLpExact(
    int n, const Rational& alpha, const ExactLossFunction& loss,
    const SideInformation& side) {
  GEOPRIV_RETURN_IF_ERROR(ValidateExactArgs(n, alpha, loss, side));

  ExactLpProblem lp;
  const int size = n + 1;
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.AddVariable("x_" + std::to_string(i) + "_" + std::to_string(r),
                     Rational(0));
    }
  }
  const int d_var = lp.AddVariable("d", Rational(1));

  // Rows are streamed straight into the model's term arena; no intermediate
  // term vectors are materialized.
  const Rational neg_alpha = -alpha;
  for (int i : side.members()) {
    lp.BeginConstraint(RowRelation::kLessEqual, Rational(0));
    for (int r = 0; r < size; ++r) {
      Rational l = loss(i, r);
      if (!l.IsZero()) lp.AddTerm(CellVar(i, r, n), std::move(l));
    }
    lp.AddTerm(d_var, Rational(-1));
  }
  for (int i = 0; i + 1 < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.BeginConstraint(RowRelation::kGreaterEqual, Rational(0));
      lp.AddTerm(CellVar(i, r, n), Rational(1));
      lp.AddTerm(CellVar(i + 1, r, n), neg_alpha);
      lp.BeginConstraint(RowRelation::kGreaterEqual, Rational(0));
      lp.AddTerm(CellVar(i + 1, r, n), Rational(1));
      lp.AddTerm(CellVar(i, r, n), neg_alpha);
    }
  }
  for (int i = 0; i < size; ++i) {
    lp.BeginConstraint(RowRelation::kEqual, Rational(1));
    for (int r = 0; r < size; ++r) {
      lp.AddTerm(CellVar(i, r, n), Rational(1));
    }
  }
  return lp;
}

namespace {

// Solution -> ExactOptimalResult, shared by the single solve and the
// warm-started sweeps.
Result<ExactOptimalResult> PackMechanismResult(ExactLpSolution solution,
                                               int n) {
  if (solution.status == LpStatus::kCancelled) {
    // A timed-out solve proved nothing about feasibility; reporting it as
    // Infeasible would let a transient deadline masquerade as a property
    // of the LP.
    return Status::DeadlineExceeded(
        "exact optimal-mechanism LP hit its solve deadline");
  }
  if (solution.status != LpStatus::kOptimal) {
    return Status::Infeasible("exact optimal-mechanism LP did not solve");
  }
  RationalMatrix mechanism = ExtractMatrix(solution.values, n);
  if (!mechanism.IsRowStochastic()) {
    return Status::Internal("exact LP produced a non-stochastic mechanism");
  }
  return ExactOptimalResult{std::move(mechanism),
                            std::move(solution.objective),
                            solution.iterations,
                            solution.phase1_iterations,
                            solution.phase2_iterations,
                            solution.warm_started,
                            std::move(solution.basis)};
}

}  // namespace

Result<ExactOptimalResult> SolveOptimalMechanismExact(
    int n, const Rational& alpha, const ExactLossFunction& loss,
    const SideInformation& side, const ExactSimplexOptions& options) {
  GEOPRIV_ASSIGN_OR_RETURN(ExactLpProblem lp,
                           BuildOptimalMechanismLpExact(n, alpha, loss, side));
  ExactSimplexSolver solver(options);
  GEOPRIV_ASSIGN_OR_RETURN(ExactLpSolution solution, solver.Solve(lp));
  return PackMechanismResult(std::move(solution), n);
}

Result<std::vector<ExactOptimalResult>> SolveOptimalMechanismExactSweep(
    int n, const std::vector<Rational>& alphas, const ExactLossFunction& loss,
    const SideInformation& side, const ExactSimplexOptions& options) {
  std::vector<ExactLpProblem> family;
  family.reserve(alphas.size());
  for (const Rational& alpha : alphas) {
    GEOPRIV_ASSIGN_OR_RETURN(
        ExactLpProblem lp, BuildOptimalMechanismLpExact(n, alpha, loss, side));
    family.push_back(std::move(lp));
  }

  if (family.empty()) return std::vector<ExactOptimalResult>{};

  // The cold anchor solve dominates a warm-started sweep (the warm points
  // cost only their basis-load eliminations), and exact cold-solve time
  // varies by an order of magnitude with the bit size of α — α = 1/2 at
  // n = 16 solves ~6x faster cold than α = 9/20.  So: anchor at the α
  // with the smallest denominator (cheapest exact arithmetic), then chain
  // outward through the α-sorted neighbors in both directions so every
  // warm seed comes from an adjacent grid point.  Results return in
  // input order; every optimum is certified exactly as if solved cold.
  const size_t count = alphas.size();
  std::vector<size_t> sorted(count);
  for (size_t k = 0; k < count; ++k) sorted[k] = k;
  std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return alphas[a] < alphas[b];
  });
  size_t anchor_pos = 0;
  for (size_t p = 1; p < count; ++p) {
    const size_t best_bits =
        alphas[sorted[anchor_pos]].denominator().BitLength();
    const size_t bits = alphas[sorted[p]].denominator().BitLength();
    // Tie-break toward the middle of the grid: it seeds both chains with
    // the nearest possible neighbor.
    const size_t mid = (count - 1) / 2;
    const size_t best_dist =
        anchor_pos > mid ? anchor_pos - mid : mid - anchor_pos;
    const size_t dist = p > mid ? p - mid : mid - p;
    if (bits < best_bits || (bits == best_bits && dist < best_dist)) {
      anchor_pos = p;
    }
  }

  std::vector<ExactLpSolution> solutions(count);
  ExactSimplexOptions chain_options = options;
  // The whole sweep shares one worker pool: spawn threads once per family,
  // not once per member (see ExactSimplexOptions::pool).
  std::unique_ptr<ThreadPool> sweep_pool = MakeChainPool(chain_options, count);
  if (sweep_pool != nullptr) chain_options.pool = sweep_pool.get();
  {
    GEOPRIV_ASSIGN_OR_RETURN(
        ExactLpSolution anchor,
        ExactSimplexSolver(chain_options).Solve(family[sorted[anchor_pos]]));
    solutions[sorted[anchor_pos]] = std::move(anchor);
  }
  const LpBasis anchor_basis = solutions[sorted[anchor_pos]].basis;
  for (int direction : {+1, -1}) {
    LpBasis seed = anchor_basis;
    for (size_t step = 1;; ++step) {
      const size_t offset = direction > 0 ? anchor_pos + step : step;
      if (direction > 0 ? offset >= count : step > anchor_pos) break;
      const size_t p = direction > 0 ? offset : anchor_pos - step;
      chain_options.warm_start = seed.empty() ? nullptr : &seed;
      GEOPRIV_ASSIGN_OR_RETURN(
          ExactLpSolution solution,
          ExactSimplexSolver(chain_options).Solve(family[sorted[p]]));
      seed = solution.status == LpStatus::kOptimal ? solution.basis
                                                   : LpBasis{};
      solutions[sorted[p]] = std::move(solution);
    }
  }

  std::vector<ExactOptimalResult> out;
  out.reserve(count);
  for (ExactLpSolution& solution : solutions) {
    GEOPRIV_ASSIGN_OR_RETURN(ExactOptimalResult result,
                             PackMechanismResult(std::move(solution), n));
    out.push_back(std::move(result));
  }
  return out;
}

Result<std::vector<ExactOptimalResult>> SolveOptimalMechanismExactLossSweep(
    int n, const Rational& alpha,
    const std::vector<ExactLossFunction>& losses, const SideInformation& side,
    const ExactSimplexOptions& options) {
  std::vector<ExactLpProblem> family;
  family.reserve(losses.size());
  for (const ExactLossFunction& loss : losses) {
    GEOPRIV_ASSIGN_OR_RETURN(
        ExactLpProblem lp, BuildOptimalMechanismLpExact(n, alpha, loss, side));
    family.push_back(std::move(lp));
  }
  GEOPRIV_ASSIGN_OR_RETURN(std::vector<ExactLpSolution> solutions,
                           ExactSimplexSolver(options).SolveSequence(family));
  std::vector<ExactOptimalResult> out;
  out.reserve(solutions.size());
  for (ExactLpSolution& solution : solutions) {
    GEOPRIV_ASSIGN_OR_RETURN(ExactOptimalResult result,
                             PackMechanismResult(std::move(solution), n));
    out.push_back(std::move(result));
  }
  return out;
}

Result<ExactOptimalResult> SolveOptimalInteractionExact(
    const RationalMatrix& deployed, const ExactLossFunction& loss,
    const SideInformation& side) {
  const int n = side.n();
  if (deployed.rows() != deployed.cols() ||
      deployed.rows() != static_cast<size_t>(n) + 1) {
    return Status::InvalidArgument("deployed mechanism shape mismatch");
  }
  if (!deployed.IsRowStochastic()) {
    return Status::InvalidArgument("deployed mechanism must be stochastic");
  }
  GEOPRIV_RETURN_IF_ERROR(loss.ValidateMonotone(n));

  ExactLpProblem lp;
  const int size = n + 1;
  for (int r = 0; r < size; ++r) {
    for (int rp = 0; rp < size; ++rp) {
      lp.AddVariable("T_" + std::to_string(r) + "_" + std::to_string(rp),
                     Rational(0));
    }
  }
  const int d_var = lp.AddVariable("d", Rational(1));

  // Streamed rows, with the per-i loss values hoisted out of the inner
  // product so loss(i, ·) is evaluated O(n) instead of O(n²) times per row.
  std::vector<Rational> loss_row(static_cast<size_t>(size));
  for (int i : side.members()) {
    for (int rp = 0; rp < size; ++rp) {
      loss_row[static_cast<size_t>(rp)] = loss(i, rp);
    }
    lp.BeginConstraint(RowRelation::kLessEqual, Rational(0));
    for (int r = 0; r < size; ++r) {
      const Rational& y =
          deployed.At(static_cast<size_t>(i), static_cast<size_t>(r));
      if (y.IsZero()) continue;
      for (int rp = 0; rp < size; ++rp) {
        const Rational& l = loss_row[static_cast<size_t>(rp)];
        if (!l.IsZero()) lp.AddTerm(CellVar(r, rp, n), y * l);
      }
    }
    lp.AddTerm(d_var, Rational(-1));
  }
  for (int r = 0; r < size; ++r) {
    lp.BeginConstraint(RowRelation::kEqual, Rational(1));
    for (int rp = 0; rp < size; ++rp) {
      lp.AddTerm(CellVar(r, rp, n), Rational(1));
    }
  }

  ExactSimplexSolver solver;
  GEOPRIV_ASSIGN_OR_RETURN(ExactLpSolution solution, solver.Solve(lp));
  if (solution.status != LpStatus::kOptimal) {
    return Status::Infeasible("exact optimal-interaction LP did not solve");
  }
  RationalMatrix t = ExtractMatrix(solution.values, n);
  if (!t.IsRowStochastic()) {
    return Status::Internal("exact LP produced a non-stochastic interaction");
  }
  return ExactOptimalResult{std::move(t), std::move(solution.objective),
                            solution.iterations,
                            solution.phase1_iterations,
                            solution.phase2_iterations, false,
                            std::move(solution.basis)};
}

}  // namespace geopriv
