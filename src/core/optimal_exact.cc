#include "core/optimal_exact.h"

#include <cstdlib>
#include <vector>

#include "lp/exact_simplex.h"

namespace geopriv {

ExactLossFunction ExactLossFunction::AbsoluteError() {
  return ExactLossFunction("absolute", [](int i, int r) {
    return Rational(std::abs(i - r));
  });
}

ExactLossFunction ExactLossFunction::SquaredError() {
  return ExactLossFunction("squared", [](int i, int r) {
    int64_t d = i - r;
    return Rational(d * d);
  });
}

ExactLossFunction ExactLossFunction::ZeroOne() {
  return ExactLossFunction("zero-one", [](int i, int r) {
    return Rational(i == r ? 0 : 1);
  });
}

ExactLossFunction ExactLossFunction::FromFunction(
    std::string name, std::function<Rational(int, int)> fn) {
  return ExactLossFunction(std::move(name), std::move(fn));
}

Status ExactLossFunction::ValidateMonotone(int n) const {
  for (int i = 0; i <= n; ++i) {
    for (int r = 0; r <= n; ++r) {
      if ((*this)(i, r).IsNegative()) {
        return Status::InvalidArgument("exact loss must be non-negative");
      }
    }
    for (int r = i; r + 1 <= n; ++r) {
      if ((*this)(i, r + 1) < (*this)(i, r)) {
        return Status::InvalidArgument(
            "exact loss decreases with distance right of i=" +
            std::to_string(i));
      }
    }
    for (int r = i; r - 1 >= 0; --r) {
      if ((*this)(i, r - 1) < (*this)(i, r)) {
        return Status::InvalidArgument(
            "exact loss decreases with distance left of i=" +
            std::to_string(i));
      }
    }
  }
  return Status::OK();
}

Result<Rational> ExactWorstCaseLoss(const RationalMatrix& mechanism,
                                    const ExactLossFunction& loss,
                                    const SideInformation& side) {
  if (mechanism.rows() != mechanism.cols() ||
      mechanism.rows() != static_cast<size_t>(side.n()) + 1) {
    return Status::InvalidArgument("mechanism shape does not match n");
  }
  Rational worst(0);
  bool first = true;
  for (int i : side.members()) {
    Rational acc(0);
    for (size_t r = 0; r < mechanism.cols(); ++r) {
      acc += loss(i, static_cast<int>(r)) *
             mechanism.At(static_cast<size_t>(i), r);
    }
    if (first || acc > worst) {
      worst = std::move(acc);
      first = false;
    }
  }
  return worst;
}

namespace {

constexpr int CellVar(int i, int r, int n) { return i * (n + 1) + r; }

Status ValidateExactArgs(int n, const Rational& alpha,
                         const ExactLossFunction& loss,
                         const SideInformation& side) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (alpha.IsNegative() || alpha > Rational(1)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (side.n() != n) {
    return Status::InvalidArgument("side information n does not match");
  }
  return loss.ValidateMonotone(n);
}

// Extracts the (n+1)x(n+1) cell block of an exact LP solution.
RationalMatrix ExtractMatrix(const std::vector<Rational>& values, int n) {
  const int size = n + 1;
  RationalMatrix out(static_cast<size_t>(size), static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      out.At(static_cast<size_t>(i), static_cast<size_t>(r)) =
          values[static_cast<size_t>(CellVar(i, r, n))];
    }
  }
  return out;
}

}  // namespace

Result<ExactLpProblem> BuildOptimalMechanismLpExact(
    int n, const Rational& alpha, const ExactLossFunction& loss,
    const SideInformation& side) {
  GEOPRIV_RETURN_IF_ERROR(ValidateExactArgs(n, alpha, loss, side));

  ExactLpProblem lp;
  const int size = n + 1;
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.AddVariable("x_" + std::to_string(i) + "_" + std::to_string(r),
                     Rational(0));
    }
  }
  const int d_var = lp.AddVariable("d", Rational(1));

  // Rows are streamed straight into the model's term arena; no intermediate
  // term vectors are materialized.
  const Rational neg_alpha = -alpha;
  for (int i : side.members()) {
    lp.BeginConstraint(RowRelation::kLessEqual, Rational(0));
    for (int r = 0; r < size; ++r) {
      Rational l = loss(i, r);
      if (!l.IsZero()) lp.AddTerm(CellVar(i, r, n), std::move(l));
    }
    lp.AddTerm(d_var, Rational(-1));
  }
  for (int i = 0; i + 1 < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.BeginConstraint(RowRelation::kGreaterEqual, Rational(0));
      lp.AddTerm(CellVar(i, r, n), Rational(1));
      lp.AddTerm(CellVar(i + 1, r, n), neg_alpha);
      lp.BeginConstraint(RowRelation::kGreaterEqual, Rational(0));
      lp.AddTerm(CellVar(i + 1, r, n), Rational(1));
      lp.AddTerm(CellVar(i, r, n), neg_alpha);
    }
  }
  for (int i = 0; i < size; ++i) {
    lp.BeginConstraint(RowRelation::kEqual, Rational(1));
    for (int r = 0; r < size; ++r) {
      lp.AddTerm(CellVar(i, r, n), Rational(1));
    }
  }
  return lp;
}

Result<ExactOptimalResult> SolveOptimalMechanismExact(
    int n, const Rational& alpha, const ExactLossFunction& loss,
    const SideInformation& side) {
  GEOPRIV_ASSIGN_OR_RETURN(ExactLpProblem lp,
                           BuildOptimalMechanismLpExact(n, alpha, loss, side));
  ExactSimplexSolver solver;
  GEOPRIV_ASSIGN_OR_RETURN(ExactLpSolution solution, solver.Solve(lp));
  if (solution.status != LpStatus::kOptimal) {
    return Status::Infeasible("exact optimal-mechanism LP did not solve");
  }
  RationalMatrix mechanism = ExtractMatrix(solution.values, n);
  if (!mechanism.IsRowStochastic()) {
    return Status::Internal("exact LP produced a non-stochastic mechanism");
  }
  return ExactOptimalResult{std::move(mechanism),
                            std::move(solution.objective),
                            solution.iterations};
}

Result<ExactOptimalResult> SolveOptimalInteractionExact(
    const RationalMatrix& deployed, const ExactLossFunction& loss,
    const SideInformation& side) {
  const int n = side.n();
  if (deployed.rows() != deployed.cols() ||
      deployed.rows() != static_cast<size_t>(n) + 1) {
    return Status::InvalidArgument("deployed mechanism shape mismatch");
  }
  if (!deployed.IsRowStochastic()) {
    return Status::InvalidArgument("deployed mechanism must be stochastic");
  }
  GEOPRIV_RETURN_IF_ERROR(loss.ValidateMonotone(n));

  ExactLpProblem lp;
  const int size = n + 1;
  for (int r = 0; r < size; ++r) {
    for (int rp = 0; rp < size; ++rp) {
      lp.AddVariable("T_" + std::to_string(r) + "_" + std::to_string(rp),
                     Rational(0));
    }
  }
  const int d_var = lp.AddVariable("d", Rational(1));

  // Streamed rows, with the per-i loss values hoisted out of the inner
  // product so loss(i, ·) is evaluated O(n) instead of O(n²) times per row.
  std::vector<Rational> loss_row(static_cast<size_t>(size));
  for (int i : side.members()) {
    for (int rp = 0; rp < size; ++rp) {
      loss_row[static_cast<size_t>(rp)] = loss(i, rp);
    }
    lp.BeginConstraint(RowRelation::kLessEqual, Rational(0));
    for (int r = 0; r < size; ++r) {
      const Rational& y =
          deployed.At(static_cast<size_t>(i), static_cast<size_t>(r));
      if (y.IsZero()) continue;
      for (int rp = 0; rp < size; ++rp) {
        const Rational& l = loss_row[static_cast<size_t>(rp)];
        if (!l.IsZero()) lp.AddTerm(CellVar(r, rp, n), y * l);
      }
    }
    lp.AddTerm(d_var, Rational(-1));
  }
  for (int r = 0; r < size; ++r) {
    lp.BeginConstraint(RowRelation::kEqual, Rational(1));
    for (int rp = 0; rp < size; ++rp) {
      lp.AddTerm(CellVar(r, rp, n), Rational(1));
    }
  }

  ExactSimplexSolver solver;
  GEOPRIV_ASSIGN_OR_RETURN(ExactLpSolution solution, solver.Solve(lp));
  if (solution.status != LpStatus::kOptimal) {
    return Status::Infeasible("exact optimal-interaction LP did not solve");
  }
  RationalMatrix t = ExtractMatrix(solution.values, n);
  if (!t.IsRowStochastic()) {
    return Status::Internal("exact LP produced a non-stochastic interaction");
  }
  return ExactOptimalResult{std::move(t), std::move(solution.objective),
                            solution.iterations};
}

}  // namespace geopriv
