// Derivability from the geometric mechanism (Section 3, Theorem 2).
//
// A mechanism x is *derivable* from a deployed mechanism y when a
// row-stochastic T exists with x = y·T (Definition 3) — T is the consumer's
// randomized post-processing.  Theorem 2 characterizes derivability from
// G_{n,α}: an oblivious DP mechanism M is derivable iff every three
// consecutive entries x1, x2, x3 of every column satisfy
//     (1+α²)·x2 >= α·(x1 + x3),
// together with the boundary conditions x_first >= α·x_second and
// x_last >= α·x_secondlast (Lemma 2 cases 1 and n; DP already implies
// those).  The witness is T = G⁻¹·M, computed here via the closed-form
// inverse — exactly over rationals or in doubles.
//
// Lemma 3 is the special case M = G_{n,β} with β >= α: the resulting
// stochastic T_{α,β} "adds privacy" and drives Algorithm 1 (multilevel.h).

#ifndef GEOPRIV_CORE_DERIVABILITY_H_
#define GEOPRIV_CORE_DERIVABILITY_H_

#include "core/mechanism.h"
#include "exact/rational.h"
#include "exact/rational_matrix.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace geopriv {

/// Outcome of the Theorem 2 three-entry test.
struct DerivabilityVerdict {
  bool derivable = false;
  /// When !derivable: the column and the center row of the violating triple
  /// (or the boundary row), and the (negative) slack
  /// (1+α²)·x2 − α·(x1+x3).
  int column = -1;
  int row = -1;
  double slack = 0.0;
};

/// Checks the Theorem 2 condition on a mechanism against G_{n,α}.
/// The theorem presumes `mechanism` is α-differentially private; verify
/// that separately with CheckDifferentialPrivacy.  `tol` absorbs round-off.
Result<DerivabilityVerdict> CheckDerivability(const Mechanism& mechanism,
                                              double alpha,
                                              double tol = 1e-9);

/// Exact Theorem 2 test over rationals; no tolerance.
Result<DerivabilityVerdict> CheckDerivabilityExact(
    const RationalMatrix& mechanism, const Rational& alpha);

/// Computes the witness interaction T with mechanism = G_{n,α}·T via the
/// closed-form inverse and verifies it is row-stochastic (within tol).
/// Returns FailedPrecondition when the mechanism is not derivable.
Result<Matrix> DeriveInteraction(const Mechanism& mechanism, double alpha,
                                 double tol = 1e-7);

/// Exact witness; fails with FailedPrecondition when some entry of
/// G⁻¹·M is negative (not derivable), with no numeric ambiguity.
Result<RationalMatrix> DeriveInteractionExact(const RationalMatrix& mechanism,
                                              const Rational& alpha);

/// Lemma 3: the stochastic transition T_{α,β} with
/// G_{n,β} = G_{n,α}·T_{α,β}.  Fails (FailedPrecondition) when β < α —
/// privacy can be added but never removed by post-processing.
Result<Matrix> PrivacyTransition(int n, double alpha, double beta,
                                 double tol = 1e-7);

/// Exact Lemma 3 transition.
Result<RationalMatrix> PrivacyTransitionExact(int n, const Rational& alpha,
                                              const Rational& beta);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_DERIVABILITY_H_
