// Multi-level, collusion-resistant release (Section 4.1, Algorithm 1).
//
// Releasing the same count independently at k privacy levels lets colluding
// consumers average away the noise.  Algorithm 1 instead releases a *chain*:
// r1 ~ G_{n,α1}(true count), then r_{i+1} ~ T_{αi,α_{i+1}}(r_i), where the
// transitions come from Lemma 3 (derivability.h).  Marginally each r_i is
// distributed exactly as G_{n,αi}(true count); jointly, every r_{i+1} is a
// post-processing of r_i, so any coalition learns no more than its most
// trusted member (Lemma 4) — the release is α_{min(C)}-DP for coalition C.

#ifndef GEOPRIV_CORE_MULTILEVEL_H_
#define GEOPRIV_CORE_MULTILEVEL_H_

#include <vector>

#include "core/mechanism.h"
#include "linalg/matrix.h"
#include "rng/engine.h"
#include "util/result.h"

namespace geopriv {

/// A prepared multi-level release plan for one count query.
/// Create once, then call Release per publication.
class MultiLevelRelease {
 public:
  /// Builds the chain for levels α1 < α2 < ... < αk (all in (0, 1)).
  /// Fails when levels are not strictly increasing or out of range.
  static Result<MultiLevelRelease> Create(int n, std::vector<double> alphas);

  /// Runs Algorithm 1: samples r1 from G_{n,α1}(true_count) and each
  /// subsequent r_{i+1} from row r_i of T_{αi,α_{i+1}}.  Returns one value
  /// per level, ordered least private (most accurate) first.
  Result<std::vector<int>> Release(int true_count, Xoshiro256& rng) const;

  /// The marginal mechanism of level i (== G_{n,α_i}); i in [0, k).
  const Mechanism& StageMechanism(size_t level) const {
    return stage_mechanisms_[level];
  }

  /// The Lemma 3 transition applied between level i-1 and level i
  /// (i in [1, k)).
  const Matrix& Transition(size_t level) const {
    return transitions_[level - 1];
  }

  size_t num_levels() const { return alphas_.size(); }
  double alpha(size_t level) const { return alphas_[level]; }
  int n() const { return n_; }

 private:
  MultiLevelRelease(int n, std::vector<double> alphas,
                    std::vector<Mechanism> stage_mechanisms,
                    std::vector<Matrix> transitions)
      : n_(n),
        alphas_(std::move(alphas)),
        stage_mechanisms_(std::move(stage_mechanisms)),
        transitions_(std::move(transitions)) {}

  int n_;
  std::vector<double> alphas_;
  std::vector<Mechanism> stage_mechanisms_;  // k marginals
  std::vector<Matrix> transitions_;          // k-1 chained transitions
};

}  // namespace geopriv

#endif  // GEOPRIV_CORE_MULTILEVEL_H_
