#include "core/bayesian.h"

#include <cmath>
#include <string>

#include "lp/problem.h"

namespace geopriv {

Result<BayesianConsumer> BayesianConsumer::Create(LossFunction loss,
                                                  std::vector<double> prior,
                                                  double tol) {
  if (prior.empty()) {
    return Status::InvalidArgument("prior must be non-empty");
  }
  double sum = 0.0;
  for (double p : prior) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument("prior entries must be in [0, 1]");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > tol) {
    return Status::InvalidArgument("prior must sum to 1");
  }
  GEOPRIV_RETURN_IF_ERROR(
      loss.ValidateMonotone(static_cast<int>(prior.size()) - 1));
  return BayesianConsumer(std::move(loss), std::move(prior));
}

Result<BayesianConsumer> BayesianConsumer::WithUniformPrior(LossFunction loss,
                                                            int n) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  std::vector<double> prior(static_cast<size_t>(n) + 1,
                            1.0 / (static_cast<double>(n) + 1.0));
  return Create(std::move(loss), std::move(prior));
}

Result<double> BayesianConsumer::ExpectedLoss(
    const Mechanism& mechanism) const {
  if (mechanism.n() != n()) {
    return Status::InvalidArgument("mechanism size mismatch");
  }
  double acc = 0.0;
  for (int i = 0; i <= n(); ++i) {
    double pi = prior_[static_cast<size_t>(i)];
    if (pi == 0.0) continue;
    for (int r = 0; r <= n(); ++r) {
      acc += pi * loss_(i, r) * mechanism.Probability(i, r);
    }
  }
  return acc;
}

Result<std::vector<int>> BayesianConsumer::OptimalRemap(
    const Mechanism& deployed) const {
  if (deployed.n() != n()) {
    return Status::InvalidArgument("mechanism size mismatch");
  }
  const int size = n() + 1;
  std::vector<int> remap(static_cast<size_t>(size), 0);
  for (int r = 0; r < size; ++r) {
    // Bayes decision: minimize Σ_i p_i·y[i][r]·l(i, r') over r'.  The
    // normalization by Pr[observe r] is a positive constant and can be
    // dropped (when Pr[observe r] = 0 any choice is fine).
    double best = 0.0;
    int best_rp = 0;
    for (int rp = 0; rp < size; ++rp) {
      double risk = 0.0;
      for (int i = 0; i < size; ++i) {
        risk += prior_[static_cast<size_t>(i)] * deployed.Probability(i, r) *
                loss_(i, rp);
      }
      if (rp == 0 || risk < best) {
        best = risk;
        best_rp = rp;
      }
    }
    remap[static_cast<size_t>(r)] = best_rp;
  }
  return remap;
}

Matrix BayesianConsumer::RemapToInteraction(const std::vector<int>& remap) {
  const size_t size = remap.size();
  Matrix t(size, size);
  for (size_t r = 0; r < size; ++r) {
    t.At(r, static_cast<size_t>(remap[r])) = 1.0;
  }
  return t;
}

Result<double> BayesianConsumer::LossAfterOptimalRemap(
    const Mechanism& deployed) const {
  GEOPRIV_ASSIGN_OR_RETURN(std::vector<int> remap, OptimalRemap(deployed));
  GEOPRIV_ASSIGN_OR_RETURN(
      Mechanism induced,
      deployed.ApplyInteraction(RemapToInteraction(remap)));
  return ExpectedLoss(induced);
}

namespace {

// Builds the Bayesian analogue of the Section 2.5 LP (linear objective
// p_i·l(i,r); DP and row-stochasticity constraints).
Result<LpProblem> BuildBayesianLp(int n, double alpha,
                                  const BayesianConsumer& consumer) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (consumer.n() != n) {
    return Status::InvalidArgument("consumer's n does not match");
  }

  LpProblem lp;
  const int size = n + 1;
  auto cell = [n](int i, int r) { return i * (n + 1) + r; };
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      // Objective coefficient: p_i · l(i, r).
      double c = consumer.prior()[static_cast<size_t>(i)] *
                 consumer.loss()(i, r);
      lp.AddNonNegativeVariable(
          "x_" + std::to_string(i) + "_" + std::to_string(r), c);
    }
  }
  // Rows are streamed straight into the model's CSR term arena.
  for (int i = 0; i + 1 < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.BeginConstraint("dp_down", RowRelation::kGreaterEqual, 0.0);
      lp.AddTerm(cell(i, r), 1.0);
      lp.AddTerm(cell(i + 1, r), -alpha);
      lp.BeginConstraint("dp_up", RowRelation::kGreaterEqual, 0.0);
      lp.AddTerm(cell(i + 1, r), 1.0);
      lp.AddTerm(cell(i, r), -alpha);
    }
  }
  for (int i = 0; i < size; ++i) {
    lp.BeginConstraint("row_" + std::to_string(i), RowRelation::kEqual, 1.0);
    for (int r = 0; r < size; ++r) lp.AddTerm(cell(i, r), 1.0);
  }
  return lp;
}

// Solution -> mechanism result, absorbing simplex round-off (clip
// negatives, renormalize rows).
Result<OptimalBayesianMechanismResult> PackBayesianSolution(
    const LpSolution& solution, int n) {
  if (solution.status != LpStatus::kOptimal) {
    return Status::NumericalError(
        "simplex did not reach optimality on the Bayesian LP");
  }
  const int size = n + 1;
  Matrix probs(static_cast<size_t>(size), static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    double row_sum = 0.0;
    for (int r = 0; r < size; ++r) {
      double v = solution.values[static_cast<size_t>(i * size + r)];
      if (v < 0.0) v = 0.0;
      probs.At(static_cast<size_t>(i), static_cast<size_t>(r)) = v;
      row_sum += v;
    }
    if (!(row_sum > 0.5)) {
      return Status::NumericalError(
          "LP solution row does not resemble a distribution");
    }
    for (int r = 0; r < size; ++r) {
      probs.At(static_cast<size_t>(i), static_cast<size_t>(r)) /= row_sum;
    }
  }
  GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism,
                           Mechanism::Create(std::move(probs), 1e-9));
  return OptimalBayesianMechanismResult{std::move(mechanism),
                                        solution.objective,
                                        solution.iterations};
}

}  // namespace

Result<OptimalBayesianMechanismResult> SolveOptimalBayesianMechanism(
    int n, double alpha, const BayesianConsumer& consumer,
    const SimplexOptions& options) {
  GEOPRIV_ASSIGN_OR_RETURN(LpProblem lp, BuildBayesianLp(n, alpha, consumer));
  SimplexSolver solver(options);
  GEOPRIV_ASSIGN_OR_RETURN(LpSolution solution, solver.Solve(lp));
  return PackBayesianSolution(solution, n);
}

Result<std::vector<OptimalBayesianMechanismResult>>
SolveOptimalBayesianMechanismSweep(int n, const std::vector<double>& alphas,
                                   const BayesianConsumer& consumer,
                                   const SimplexOptions& options) {
  std::vector<LpProblem> family;
  family.reserve(alphas.size());
  for (double alpha : alphas) {
    GEOPRIV_ASSIGN_OR_RETURN(LpProblem lp,
                             BuildBayesianLp(n, alpha, consumer));
    family.push_back(std::move(lp));
  }
  GEOPRIV_ASSIGN_OR_RETURN(std::vector<LpSolution> solutions,
                           SimplexSolver(options).SolveSequence(family));
  std::vector<OptimalBayesianMechanismResult> out;
  out.reserve(solutions.size());
  for (const LpSolution& solution : solutions) {
    GEOPRIV_ASSIGN_OR_RETURN(OptimalBayesianMechanismResult result,
                             PackBayesianSolution(solution, n));
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace geopriv
