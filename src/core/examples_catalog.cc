#include "core/examples_catalog.h"

#include <vector>

namespace geopriv {

namespace {

Result<RationalMatrix> FromFractionTable(
    const std::vector<std::vector<std::pair<int64_t, int64_t>>>& rows) {
  const size_t r = rows.size();
  const size_t c = rows.empty() ? 0 : rows[0].size();
  std::vector<Rational> data;
  data.reserve(r * c);
  for (const auto& row : rows) {
    if (row.size() != c) {
      return Status::InvalidArgument("ragged fraction table");
    }
    for (const auto& [num, den] : row) {
      GEOPRIV_ASSIGN_OR_RETURN(Rational value, Rational::FromInts(num, den));
      data.push_back(std::move(value));
    }
  }
  return RationalMatrix::FromRows(r, c, std::move(data));
}

}  // namespace

Result<RationalMatrix> PaperTable1aAsPrinted() {
  return FromFractionTable({
      {{2, 3}, {5, 17}, {1, 25}, {1, 98}},
      {{1, 6}, {7, 11}, {7, 44}, {2, 49}},
      {{2, 49}, {7, 44}, {7, 11}, {1, 6}},
      {{1, 98}, {1, 25}, {5, 17}, {2, 3}},
  });
}

Result<RationalMatrix> PaperTable1bAsPrinted() {
  return FromFractionTable({
      {{4, 3}, {1, 4}, {1, 16}, {1, 48}},
      {{1, 3}, {1, 1}, {1, 4}, {1, 12}},
      {{1, 12}, {1, 4}, {1, 1}, {1, 3}},
      {{1, 48}, {1, 16}, {1, 4}, {4, 3}},
  });
}

Result<RationalMatrix> PaperTable1cInteraction() {
  return FromFractionTable({
      {{9, 11}, {2, 11}, {0, 1}, {0, 1}},
      {{0, 1}, {1, 1}, {0, 1}, {0, 1}},
      {{0, 1}, {0, 1}, {1, 1}, {0, 1}},
      {{0, 1}, {0, 1}, {2, 11}, {9, 11}},
  });
}

Result<RationalMatrix> PaperAppendixBMechanism() {
  return FromFractionTable({
      {{1, 9}, {2, 9}, {4, 9}, {2, 9}},
      {{2, 9}, {1, 9}, {2, 9}, {4, 9}},
      {{4, 9}, {2, 9}, {1, 9}, {2, 9}},
      {{13, 18}, {1, 9}, {1, 18}, {1, 9}},
  });
}

}  // namespace geopriv
