#include "core/optimal.h"

#include <cmath>

#include <string>
#include <vector>

#include "lp/problem.h"

namespace geopriv {

namespace {

// Variable layout shared by both LPs: cell (i, r) of an (n+1)x(n+1) matrix
// maps to column i*(n+1)+r; the epigraph variable d is appended last.
int CellVar(int i, int r, int n) { return i * (n + 1) + r; }

// Reads a row-stochastic matrix out of an LP solution, absorbing simplex
// round-off: negative values are clipped to zero and each row is
// renormalized.  At a vertex the true values are exact rationals; the
// observed dirt is O(1e-6) for the largest LPs we solve, so this cleanup
// perturbs the mechanism far below the loss tolerances used downstream.
Result<Matrix> ExtractStochasticMatrix(const std::vector<double>& values,
                                       int n) {
  const int size = n + 1;
  Matrix probs(static_cast<size_t>(size), static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    double row_sum = 0.0;
    for (int r = 0; r < size; ++r) {
      double v = values[static_cast<size_t>(CellVar(i, r, n))];
      if (v < 0.0) v = 0.0;
      probs.At(static_cast<size_t>(i), static_cast<size_t>(r)) = v;
      row_sum += v;
    }
    if (!(row_sum > 0.5)) {
      return Status::NumericalError(
          "LP solution row does not resemble a distribution");
    }
    double inv = 1.0 / row_sum;
    for (int r = 0; r < size; ++r) {
      probs.At(static_cast<size_t>(i), static_cast<size_t>(r)) *= inv;
    }
  }
  return probs;
}

}  // namespace

namespace {

// Builds the Section 2.5 LP shared by SolveOptimalMechanism and
// SolveCanonicalOptimalMechanism; returns the index of the epigraph
// variable d through `d_var_out`.
Result<LpProblem> BuildOptimalMechanismLp(int n, double alpha,
                                          const MinimaxConsumer& consumer,
                                          int* d_var_out) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (consumer.side_information().n() != n) {
    return Status::InvalidArgument("consumer's n does not match");
  }

  LpProblem lp;
  const int size = n + 1;
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.AddNonNegativeVariable(
          "x_" + std::to_string(i) + "_" + std::to_string(r), 0.0);
    }
  }
  const int d_var = lp.AddNonNegativeVariable("d", 1.0);  // objective: min d

  // Rows are streamed straight into the model's term arena (the same CSR
  // layout ExactLpProblem uses); no intermediate term vectors are
  // materialized.
  //
  // Epigraph rows: Σ_r l(i,r)·x[i][r] - d <= 0 for each i in S.
  for (int i : consumer.side_information().members()) {
    lp.BeginConstraint("loss_" + std::to_string(i), RowRelation::kLessEqual,
                       0.0);
    for (int r = 0; r < size; ++r) {
      double l = consumer.loss()(i, r);
      if (l != 0.0) lp.AddTerm(CellVar(i, r, n), l);
    }
    lp.AddTerm(d_var, -1.0);
  }

  // Differential privacy (Definition 2), per adjacent input pair and column.
  for (int i = 0; i + 1 < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.BeginConstraint("dp_down_" + std::to_string(i) + "_" +
                             std::to_string(r),
                         RowRelation::kGreaterEqual, 0.0);
      lp.AddTerm(CellVar(i, r, n), 1.0);
      lp.AddTerm(CellVar(i + 1, r, n), -alpha);
      lp.BeginConstraint("dp_up_" + std::to_string(i) + "_" +
                             std::to_string(r),
                         RowRelation::kGreaterEqual, 0.0);
      lp.AddTerm(CellVar(i + 1, r, n), 1.0);
      lp.AddTerm(CellVar(i, r, n), -alpha);
    }
  }

  // Row-stochasticity.
  for (int i = 0; i < size; ++i) {
    lp.BeginConstraint("row_" + std::to_string(i), RowRelation::kEqual, 1.0);
    for (int r = 0; r < size; ++r) lp.AddTerm(CellVar(i, r, n), 1.0);
  }

  *d_var_out = d_var;
  return lp;
}

}  // namespace

namespace {

// Solution -> OptimalMechanismResult with the shared validation: the
// returned loss is recomputed from the cleaned mechanism, and a large
// disagreement with the LP objective means the tableau drifted — fail
// loudly rather than return garbage.
Result<OptimalMechanismResult> PackMechanismSolution(
    const LpSolution& solution, int n, const MinimaxConsumer& consumer) {
  if (solution.status == LpStatus::kInfeasible) {
    return Status::Infeasible(
        "optimal-mechanism LP infeasible (should never happen: the uniform "
        "mechanism is feasible for every alpha in [0,1])");
  }
  if (solution.status != LpStatus::kOptimal) {
    return Status::NumericalError(
        "simplex did not reach optimality on the optimal-mechanism LP");
  }
  GEOPRIV_ASSIGN_OR_RETURN(Matrix probs,
                           ExtractStochasticMatrix(solution.values, n));
  GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism,
                           Mechanism::Create(std::move(probs), 1e-9));
  GEOPRIV_ASSIGN_OR_RETURN(double actual_loss,
                           consumer.WorstCaseLoss(mechanism));
  if (std::abs(actual_loss - solution.objective) >
      1e-4 * (1.0 + std::abs(actual_loss))) {
    return Status::NumericalError(
        "simplex objective disagrees with the recomputed minimax loss; "
        "the LP is too large for the dense tableau's numerics");
  }
  return OptimalMechanismResult{std::move(mechanism), actual_loss,
                                solution.iterations};
}

}  // namespace

Result<OptimalMechanismResult> SolveOptimalMechanism(
    int n, double alpha, const MinimaxConsumer& consumer,
    const SimplexOptions& options) {
  int d_var = -1;
  GEOPRIV_ASSIGN_OR_RETURN(
      LpProblem lp, BuildOptimalMechanismLp(n, alpha, consumer, &d_var));

  SimplexSolver solver(options);
  GEOPRIV_ASSIGN_OR_RETURN(LpSolution solution, solver.Solve(lp));
  return PackMechanismSolution(solution, n, consumer);
}

Result<std::vector<OptimalMechanismResult>> SolveOptimalMechanismSweep(
    int n, const std::vector<double>& alphas, const MinimaxConsumer& consumer,
    const SimplexOptions& options) {
  std::vector<LpProblem> family;
  family.reserve(alphas.size());
  for (double alpha : alphas) {
    int d_var = -1;
    GEOPRIV_ASSIGN_OR_RETURN(
        LpProblem lp, BuildOptimalMechanismLp(n, alpha, consumer, &d_var));
    family.push_back(std::move(lp));
  }
  GEOPRIV_ASSIGN_OR_RETURN(std::vector<LpSolution> solutions,
                           SimplexSolver(options).SolveSequence(family));
  std::vector<OptimalMechanismResult> out;
  out.reserve(solutions.size());
  for (const LpSolution& solution : solutions) {
    GEOPRIV_ASSIGN_OR_RETURN(OptimalMechanismResult result,
                             PackMechanismSolution(solution, n, consumer));
    out.push_back(std::move(result));
  }
  return out;
}

Result<OptimalMechanismResult> SolveCanonicalOptimalMechanism(
    int n, double alpha, const MinimaxConsumer& consumer,
    const SimplexOptions& options) {
  // Stage 1: the optimal loss d*.
  GEOPRIV_ASSIGN_OR_RETURN(OptimalMechanismResult stage1,
                           SolveOptimalMechanism(n, alpha, consumer, options));

  // Stage 2: among mechanisms with loss <= d* (+ numeric slack), minimize
  // the paper's secondary objective L'(x) = Σ_i Σ_r |i−r|·x[i][r].
  int d_var = -1;
  GEOPRIV_ASSIGN_OR_RETURN(
      LpProblem lp, BuildOptimalMechanismLp(n, alpha, consumer, &d_var));
  lp.SetObjectiveCoefficient(d_var, 0.0);
  const int size = n + 1;
  for (int i = 0; i < size; ++i) {
    for (int r = 0; r < size; ++r) {
      lp.SetObjectiveCoefficient(CellVar(i, r, n),
                                 static_cast<double>(std::abs(i - r)));
    }
  }
  lp.AddConstraint("pin_d", RowRelation::kLessEqual,
                   stage1.loss + 1e-7 * (1.0 + stage1.loss),
                   {{d_var, 1.0}});

  SimplexSolver solver(options);
  GEOPRIV_ASSIGN_OR_RETURN(LpSolution solution, solver.Solve(lp));
  if (solution.status != LpStatus::kOptimal) {
    return Status::NumericalError(
        "simplex did not reach optimality on the Lemma-5 stage-2 LP");
  }
  GEOPRIV_ASSIGN_OR_RETURN(Matrix probs,
                           ExtractStochasticMatrix(solution.values, n));
  GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism,
                           Mechanism::Create(std::move(probs), 1e-9));
  GEOPRIV_ASSIGN_OR_RETURN(double actual_loss,
                           consumer.WorstCaseLoss(mechanism));
  if (actual_loss > stage1.loss + 1e-5 * (1.0 + stage1.loss)) {
    return Status::NumericalError(
        "Lemma-5 stage-2 mechanism lost optimality beyond tolerance");
  }
  return OptimalMechanismResult{std::move(mechanism), actual_loss,
                                stage1.lp_iterations + solution.iterations};
}

Result<OptimalInteractionResult> SolveOptimalInteraction(
    const Mechanism& deployed, const MinimaxConsumer& consumer,
    const SimplexOptions& options) {
  const int n = deployed.n();
  if (consumer.side_information().n() != n) {
    return Status::InvalidArgument("consumer's n does not match");
  }

  LpProblem lp;
  const int size = n + 1;
  for (int r = 0; r < size; ++r) {
    for (int rp = 0; rp < size; ++rp) {
      lp.AddNonNegativeVariable(
          "T_" + std::to_string(r) + "_" + std::to_string(rp), 0.0);
    }
  }
  const int d_var = lp.AddNonNegativeVariable("d", 1.0);

  // Induced loss rows, streamed into the term arena: for i in S,
  //   Σ_{r'} l(i,r')·Σ_r y[i][r]·T[r][r']  <=  d.
  for (int i : consumer.side_information().members()) {
    lp.BeginConstraint("loss_" + std::to_string(i), RowRelation::kLessEqual,
                       0.0);
    for (int r = 0; r < size; ++r) {
      double y = deployed.Probability(i, r);
      if (y == 0.0) continue;
      for (int rp = 0; rp < size; ++rp) {
        double l = consumer.loss()(i, rp);
        if (l != 0.0) lp.AddTerm(CellVar(r, rp, n), y * l);
      }
    }
    lp.AddTerm(d_var, -1.0);
  }

  // T is row-stochastic.
  for (int r = 0; r < size; ++r) {
    lp.BeginConstraint("rowT_" + std::to_string(r), RowRelation::kEqual, 1.0);
    for (int rp = 0; rp < size; ++rp) lp.AddTerm(CellVar(r, rp, n), 1.0);
  }

  SimplexSolver solver(options);
  GEOPRIV_ASSIGN_OR_RETURN(LpSolution solution, solver.Solve(lp));
  if (solution.status != LpStatus::kOptimal) {
    return Status::NumericalError(
        "simplex did not reach optimality on the optimal-interaction LP");
  }

  GEOPRIV_ASSIGN_OR_RETURN(Matrix t,
                           ExtractStochasticMatrix(solution.values, n));
  GEOPRIV_ASSIGN_OR_RETURN(Mechanism induced,
                           deployed.ApplyInteraction(t, 1e-9));
  GEOPRIV_ASSIGN_OR_RETURN(double actual_loss,
                           consumer.WorstCaseLoss(induced));
  if (std::abs(actual_loss - solution.objective) >
      1e-4 * (1.0 + std::abs(actual_loss))) {
    return Status::NumericalError(
        "simplex objective disagrees with the recomputed minimax loss; "
        "the LP is too large for the dense tableau's numerics");
  }
  return OptimalInteractionResult{std::move(t), std::move(induced),
                                  actual_loss, solution.iterations};
}

}  // namespace geopriv
