// The geometric mechanism (Definitions 1 and 4) and its linear algebra.
//
// The α-geometric mechanism adds two-sided geometric noise
// Pr[Z=z] = (1-α)/(1+α)·α^|z| to the true count.  Its range-restricted
// version (Definition 4) clamps the output to {0..n}, collapsing each tail
// onto the nearest endpoint; as a matrix G_{n,α} it is the paper's central
// object.  The scaled form G'_{n,α}[i][j] = α^|i-j| (Table 2) is a
// Kac–Murdock–Szegő Toeplitz matrix whose determinant and inverse have
// closed forms:
//     det G'_{n,α} = (1-α²)^n                       (Lemma 1, 0-indexed)
//     (G')⁻¹ = 1/(1-α²) · tridiag(-α; 1, 1+α², ..., 1+α², 1; -α)
// from which G⁻¹ follows by column scaling.  These closed forms make
// derivability factorizations (Theorem 2, derivability.h) exact and fast.

#ifndef GEOPRIV_CORE_GEOMETRIC_H_
#define GEOPRIV_CORE_GEOMETRIC_H_

#include "core/mechanism.h"
#include "exact/rational.h"
#include "exact/rational_matrix.h"
#include "linalg/matrix.h"
#include "rng/engine.h"
#include "util/result.h"

namespace geopriv {

/// The α-geometric mechanism for a count query with results in {0..n}.
/// Sampling is O(1) (noise addition + clamp); the matrix forms are built on
/// demand.
class GeometricMechanism {
 public:
  /// Fails unless n >= 0 and alpha ∈ [0, 1).  (alpha == 1 is the vacuous
  /// "identical distributions" extreme and has no sampler or inverse.)
  static Result<GeometricMechanism> Create(int n, double alpha);

  int n() const { return n_; }
  double alpha() const { return alpha_; }

  /// Samples the range-restricted release for true count i (Definition 4):
  /// draws two-sided geometric noise and clamps i+Z into {0..n}.
  Result<int> Sample(int i, Xoshiro256& rng) const;

  /// G_{n,α} as a Mechanism.
  Result<Mechanism> ToMechanism() const;

  // ---- double-precision matrix forms --------------------------------------

  /// The (n+1)x(n+1) matrix of Definition 4.
  static Result<Matrix> BuildMatrix(int n, double alpha);

  /// G'_{n,α}[i][j] = α^|i-j|  (Table 2 right).
  static Result<Matrix> BuildGPrime(int n, double alpha);

  /// Closed-form G⁻¹_{n,α}; fails when alpha is not in (0, 1) (G is
  /// singular at the extremes) or n < 1.
  static Result<Matrix> BuildInverse(int n, double alpha);

  // ---- exact (rational) forms ---------------------------------------------

  /// Exact G_{n,α}; alpha must satisfy 0 <= alpha < 1.
  static Result<RationalMatrix> BuildExactMatrix(int n,
                                                 const Rational& alpha);

  /// Exact G'_{n,α}.
  static Result<RationalMatrix> BuildExactGPrime(int n,
                                                 const Rational& alpha);

  /// Exact closed-form G⁻¹_{n,α}; requires 0 < alpha < 1 and n >= 1.
  static Result<RationalMatrix> BuildExactInverse(int n,
                                                  const Rational& alpha);

  /// Lemma 1 closed form det G'_{n,α} = (1-α²)^n for the (n+1)x(n+1)
  /// matrix over {0..n}.
  static Result<Rational> ExactGPrimeDeterminant(int n,
                                                 const Rational& alpha);

  /// det G_{n,α} = det G' · (1/(1+α))² · ((1-α)/(1+α))^{n-1}   (n >= 1),
  /// obtained from the column scaling between G and G'.
  static Result<Rational> ExactDeterminant(int n, const Rational& alpha);

 private:
  GeometricMechanism(int n, double alpha);

  int n_;
  double alpha_;
  double log_alpha_;   // log(alpha); -inf when alpha == 0
  double mass_zero_;   // (1-α)/(1+α)
};

}  // namespace geopriv

#endif  // GEOPRIV_CORE_GEOMETRIC_H_
