#include "core/privacy.h"

#include <algorithm>
#include <cmath>

namespace geopriv {

Result<PrivacyCheck> CheckDifferentialPrivacy(const Mechanism& mechanism,
                                              double alpha, double tol) {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  PrivacyCheck check;
  check.is_private = true;
  const int n = mechanism.n();
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r <= n; ++r) {
      double a = mechanism.Probability(i, r);
      double b = mechanism.Probability(i + 1, r);
      // Definition 2: b >= α·a and a >= α·b.
      if (b + tol < alpha * a || a + tol < alpha * b) {
        check.is_private = false;
        double lo = std::min(a, b);
        double hi = std::max(a, b);
        check.violation = PrivacyViolation{i, r, hi > 0.0 ? lo / hi : 0.0};
        return check;
      }
    }
  }
  return check;
}

double StrongestAlpha(const Mechanism& mechanism) {
  double alpha = 1.0;
  const int n = mechanism.n();
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r <= n; ++r) {
      double a = mechanism.Probability(i, r);
      double b = mechanism.Probability(i + 1, r);
      if (a == 0.0 && b == 0.0) continue;  // unconstrained column pair
      double lo = std::min(a, b);
      double hi = std::max(a, b);
      alpha = std::min(alpha, lo / hi);  // 0 when exactly one is zero
    }
  }
  return alpha;
}

Result<bool> CheckDifferentialPrivacyExact(const RationalMatrix& mechanism,
                                           const Rational& alpha) {
  if (mechanism.rows() != mechanism.cols() || mechanism.rows() == 0) {
    return Status::InvalidArgument("mechanism must be square and non-empty");
  }
  if (alpha.IsNegative() || alpha > Rational(1)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  for (size_t i = 0; i + 1 < mechanism.rows(); ++i) {
    for (size_t r = 0; r < mechanism.cols(); ++r) {
      const Rational& a = mechanism.At(i, r);
      const Rational& b = mechanism.At(i + 1, r);
      if (b < alpha * a || a < alpha * b) return false;
    }
  }
  return true;
}

double AlphaFromEpsilon(double epsilon) { return std::exp(-epsilon); }

double EpsilonFromAlpha(double alpha) { return -std::log(alpha); }

}  // namespace geopriv
