#include "core/oblivious.h"

#include <algorithm>

namespace geopriv {

Status ValidateDatabaseMechanism(const DatabaseMechanism& mechanism, int n) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (mechanism.counts.size() != mechanism.probs.rows()) {
    return Status::InvalidArgument(
        "counts and probability rows must correspond one-to-one");
  }
  if (mechanism.probs.cols() != static_cast<size_t>(n) + 1) {
    return Status::InvalidArgument("output range must be {0..n}");
  }
  if (!mechanism.probs.IsRowStochastic()) {
    return Status::InvalidArgument("database rows must be distributions");
  }
  for (int c : mechanism.counts) {
    if (c < 0 || c > n) {
      return Status::OutOfRange("a database count lies outside {0..n}");
    }
  }
  return Status::OK();
}

Result<Mechanism> ObliviousReduction(const DatabaseMechanism& mechanism,
                                     int n) {
  GEOPRIV_RETURN_IF_ERROR(ValidateDatabaseMechanism(mechanism, n));
  const size_t size = static_cast<size_t>(n) + 1;
  Matrix avg(size, size);
  std::vector<int> class_sizes(size, 0);
  for (size_t d = 0; d < mechanism.counts.size(); ++d) {
    size_t c = static_cast<size_t>(mechanism.counts[d]);
    ++class_sizes[c];
    for (size_t r = 0; r < size; ++r) {
      avg.At(c, r) += mechanism.probs.At(d, r);
    }
  }
  for (size_t c = 0; c < size; ++c) {
    if (class_sizes[c] == 0) {
      return Status::FailedPrecondition(
          "count class " + std::to_string(c) +
          " has no database; the oblivious row is undefined");
    }
    double inv = 1.0 / class_sizes[c];
    for (size_t r = 0; r < size; ++r) avg.At(c, r) *= inv;
  }
  return Mechanism::Create(std::move(avg));
}

Result<double> DatabaseMechanismWorstCaseLoss(
    const DatabaseMechanism& mechanism, const MinimaxConsumer& consumer) {
  const int n = consumer.side_information().n();
  GEOPRIV_RETURN_IF_ERROR(ValidateDatabaseMechanism(mechanism, n));
  double worst = 0.0;
  for (size_t d = 0; d < mechanism.counts.size(); ++d) {
    int count = mechanism.counts[d];
    if (!consumer.side_information().Contains(count)) continue;
    double loss = 0.0;
    for (int r = 0; r <= n; ++r) {
      loss += consumer.loss()(count, r) *
              mechanism.probs.At(d, static_cast<size_t>(r));
    }
    worst = std::max(worst, loss);
  }
  return worst;
}

}  // namespace geopriv
