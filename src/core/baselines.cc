#include "core/baselines.h"

#include <cmath>

namespace geopriv {

namespace {

/// CDF of the zero-centered Laplace distribution with scale b.
double LaplaceCdf(double x, double b) {
  if (x < 0.0) return 0.5 * std::exp(x / b);
  return 1.0 - 0.5 * std::exp(-x / b);
}

}  // namespace

Result<Mechanism> DiscretizedLaplaceMechanism(int n, double alpha) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument("alpha must lie in (0, 1)");
  }
  // Matching privacy budget: ε = -ln α, Laplace scale b = 1/ε.
  const double b = -1.0 / std::log(alpha);
  const size_t size = static_cast<size_t>(n) + 1;
  Matrix m(size, size);
  for (int i = 0; i <= n; ++i) {
    if (n == 0) {
      m.At(0, 0) = 1.0;
      break;
    }
    // out = clamp(round(i + X)): cell z gets the density mass of the
    // interval [z-1/2, z+1/2) shifted by i, the endpoints absorb the tails.
    m.At(static_cast<size_t>(i), 0) = LaplaceCdf(0.5 - i, b);
    for (int z = 1; z < n; ++z) {
      m.At(static_cast<size_t>(i), static_cast<size_t>(z)) =
          LaplaceCdf(z + 0.5 - i, b) - LaplaceCdf(z - 0.5 - i, b);
    }
    m.At(static_cast<size_t>(i), static_cast<size_t>(n)) =
        1.0 - LaplaceCdf(n - 0.5 - i, b);
  }
  return Mechanism::Create(std::move(m));
}

Result<Mechanism> RandomizedResponseMechanism(int n, double alpha) {
  if (n < 1) return Status::InvalidArgument("n must be at least 1");
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument("alpha must lie in (0, 1)");
  }
  // Largest truth bonus λ keeping every adjacent-row ratio within [α, 1/α]:
  // the binding cell pairs are (u+λ, u), giving λ = (1-α)/(α·n + 1).
  const double lambda = (1.0 - alpha) / (alpha * n + 1.0);
  const double uniform = (1.0 - lambda) / (n + 1.0);
  const size_t size = static_cast<size_t>(n) + 1;
  Matrix m(size, size);
  for (size_t i = 0; i < size; ++i) {
    for (size_t j = 0; j < size; ++j) m.At(i, j) = uniform;
    m.At(i, i) += lambda;
  }
  return Mechanism::Create(std::move(m));
}

}  // namespace geopriv
