// Optimal mechanisms and optimal interactions (Sections 2.4.3 and 2.5).
//
// Two LP families, both solved with the in-tree simplex (lp/simplex.h):
//
// 1. SolveOptimalMechanism — the LP of Section 2.5: over all α-DP oblivious
//    mechanisms x, minimize the consumer's minimax loss
//        min d  s.t.  d >= Σ_r l(i,r)·x[i][r]   ∀ i ∈ S
//                     α·x[i+1][r] <= x[i][r],  α·x[i][r] <= x[i+1][r]
//                     Σ_r x[i][r] = 1,  x >= 0.
//    This is the per-consumer benchmark the geometric mechanism must match
//    (Theorem 1 part 2).
//
// 2. SolveOptimalInteraction — the LP of Section 2.4.3: given a *deployed*
//    mechanism y, find the row-stochastic reinterpretation T minimizing the
//    minimax loss of the induced mechanism x = y·T.
//
// The headline theorem says: deploying G_{n,α} and letting each rational
// consumer run LP 2 achieves exactly the LP 1 optimum, for every consumer.

#ifndef GEOPRIV_CORE_OPTIMAL_H_
#define GEOPRIV_CORE_OPTIMAL_H_

#include "core/consumer.h"
#include "core/mechanism.h"
#include "linalg/matrix.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace geopriv {

/// Result of the Section 2.5 LP.
struct OptimalMechanismResult {
  Mechanism mechanism;   ///< an optimal α-DP mechanism for the consumer
  double loss = 0.0;     ///< its minimax loss (the LP optimum)
  int lp_iterations = 0; ///< simplex pivots spent
};

/// Solves LP 1 for a known consumer.  Fails on malformed inputs, when the
/// LP is infeasible (cannot happen for α ∈ [0,1] — the uniform mechanism is
/// always feasible — so infeasibility signals a solver problem), or when
/// the solution fails validation.
Result<OptimalMechanismResult> SolveOptimalMechanism(
    int n, double alpha, const MinimaxConsumer& consumer,
    const SimplexOptions& options = {});

/// The α-sweep family of LP 1 (Figure 1's curves, ε grids): one result per
/// entry of `alphas`, in order.  The family streams through a single
/// warm-started solver (SimplexSolver::SolveSequence) — each solved basis
/// seeds the next point instead of every point paying a cold phase 1.
Result<std::vector<OptimalMechanismResult>> SolveOptimalMechanismSweep(
    int n, const std::vector<double>& alphas, const MinimaxConsumer& consumer,
    const SimplexOptions& options = {});

/// Result of the Section 2.4.3 LP.
struct OptimalInteractionResult {
  Matrix interaction;    ///< row-stochastic T, (n+1)x(n+1)
  Mechanism induced;     ///< y·T
  double loss = 0.0;     ///< minimax loss of the induced mechanism
  int lp_iterations = 0;
};

/// Solves LP 2: the consumer's rational response to a deployed mechanism.
Result<OptimalInteractionResult> SolveOptimalInteraction(
    const Mechanism& deployed, const MinimaxConsumer& consumer,
    const SimplexOptions& options = {});

/// The Lemma 5 construction: among all optimal mechanisms for the
/// consumer, returns one minimizing the secondary objective
/// L'(x) = Σ_i Σ_r |i−r|·x[i][r] (the lexicographic (L, L') optimum used
/// in the paper's proof).  Unlike an arbitrary LP vertex, this canonical
/// optimum satisfies Lemma 5's row pattern and is therefore derivable
/// from G_{n,α} (Section 4.2) — SolveOptimalMechanism alone does not
/// guarantee that, because LP optima are not unique.
///
/// Implemented as a two-stage solve: stage 1 finds the optimal loss d*,
/// stage 2 minimizes L' subject to the loss staying within
/// d* (plus a small numeric slack).
Result<OptimalMechanismResult> SolveCanonicalOptimalMechanism(
    int n, double alpha, const MinimaxConsumer& consumer,
    const SimplexOptions& options = {});

}  // namespace geopriv

#endif  // GEOPRIV_CORE_OPTIMAL_H_
