// Umbrella header: the full public API of the geopriv library.
//
// geopriv is a from-scratch C++20 implementation of
//   Gupte & Sundararajan, "Universally Optimal Privacy Mechanisms for
//   Minimax Agents", PODS 2010 (arXiv:1001.2767),
// including the geometric mechanism, minimax/Bayesian consumer models, the
// optimal-mechanism and optimal-interaction linear programs, the Theorem-2
// derivability characterization, and the Algorithm-1 multi-level release —
// together with the substrates they need (LP solver, exact rationals,
// database layer).  See README.md for a tour and DESIGN.md for the map.

#ifndef GEOPRIV_CORE_GEOPRIV_H_
#define GEOPRIV_CORE_GEOPRIV_H_

#include "core/accounting.h"       // IWYU pragma: export
#include "core/analysis.h"         // IWYU pragma: export
#include "core/baselines.h"        // IWYU pragma: export
#include "core/bayesian.h"         // IWYU pragma: export
#include "core/consumer.h"         // IWYU pragma: export
#include "core/derivability.h"     // IWYU pragma: export
#include "core/examples_catalog.h" // IWYU pragma: export
#include "core/geometric.h"        // IWYU pragma: export
#include "core/io.h"               // IWYU pragma: export
#include "core/loss.h"             // IWYU pragma: export
#include "core/mechanism.h"        // IWYU pragma: export
#include "core/multilevel.h"       // IWYU pragma: export
#include "core/oblivious.h"        // IWYU pragma: export
#include "core/optimal.h"          // IWYU pragma: export
#include "core/optimal_exact.h"    // IWYU pragma: export
#include "core/privacy.h"          // IWYU pragma: export
#include "db/database.h"           // IWYU pragma: export
#include "db/synthetic.h"          // IWYU pragma: export
#include "service/budget_ledger.h"   // IWYU pragma: export
#include "service/mechanism_cache.h" // IWYU pragma: export
#include "service/protocol.h"        // IWYU pragma: export
#include "service/query_pipeline.h"  // IWYU pragma: export
#include "service/server.h"          // IWYU pragma: export
#include "service/signature.h"       // IWYU pragma: export

#endif  // GEOPRIV_CORE_GEOPRIV_H_
