#include "core/multilevel.h"

#include "core/derivability.h"
#include "core/geometric.h"
#include "rng/distributions.h"

namespace geopriv {

Result<MultiLevelRelease> MultiLevelRelease::Create(
    int n, std::vector<double> alphas) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (alphas.empty()) {
    return Status::InvalidArgument("at least one privacy level is required");
  }
  for (size_t i = 0; i < alphas.size(); ++i) {
    if (!(alphas[i] > 0.0) || !(alphas[i] < 1.0)) {
      return Status::InvalidArgument("privacy levels must lie in (0, 1)");
    }
    if (i > 0 && !(alphas[i] > alphas[i - 1])) {
      return Status::InvalidArgument(
          "privacy levels must be strictly increasing (alpha_1 < ... < "
          "alpha_k)");
    }
  }

  std::vector<Mechanism> stages;
  stages.reserve(alphas.size());
  for (double a : alphas) {
    GEOPRIV_ASSIGN_OR_RETURN(GeometricMechanism geo,
                             GeometricMechanism::Create(n, a));
    GEOPRIV_ASSIGN_OR_RETURN(Mechanism m, geo.ToMechanism());
    stages.push_back(std::move(m));
  }

  std::vector<Matrix> transitions;
  transitions.reserve(alphas.size() - 1);
  for (size_t i = 0; i + 1 < alphas.size(); ++i) {
    GEOPRIV_ASSIGN_OR_RETURN(
        Matrix t, PrivacyTransition(n, alphas[i], alphas[i + 1]));
    transitions.push_back(std::move(t));
  }
  return MultiLevelRelease(n, std::move(alphas), std::move(stages),
                           std::move(transitions));
}

Result<std::vector<int>> MultiLevelRelease::Release(int true_count,
                                                    Xoshiro256& rng) const {
  if (true_count < 0 || true_count > n_) {
    return Status::OutOfRange("true count outside {0..n}");
  }
  std::vector<int> out;
  out.reserve(alphas_.size());
  GEOPRIV_ASSIGN_OR_RETURN(int current,
                           stage_mechanisms_[0].Sample(true_count, rng));
  out.push_back(current);
  for (const Matrix& t : transitions_) {
    GEOPRIV_ASSIGN_OR_RETURN(
        DiscreteSampler row_sampler,
        DiscreteSampler::Create(t.Row(static_cast<size_t>(current))));
    current = static_cast<int>(row_sampler.Sample(rng));
    out.push_back(current);
  }
  return out;
}

}  // namespace geopriv
