// Minimax information consumers (Sections 2.3–2.4).
//
// A consumer has a monotone loss function and side information S ⊆ {0..n}
// (the true count is known to lie in S).  Its dis-utility for a mechanism x
// is the worst case over S:  L(x) = max_{i∈S} Σ_r l(i,r)·x[i][r]   (Eq. 1).

#ifndef GEOPRIV_CORE_CONSUMER_H_
#define GEOPRIV_CORE_CONSUMER_H_

#include <string>
#include <vector>

#include "core/loss.h"
#include "core/mechanism.h"
#include "util/result.h"

namespace geopriv {

/// Side information: the set S of still-possible true counts.
class SideInformation {
 public:
  /// S = {0..n} (no side information).
  static SideInformation All(int n);
  /// S = {lo..hi}; fails unless 0 <= lo <= hi <= n.  The paper's Example 1
  /// (drug company knowing a lower bound) is Interval(l, n, n).
  static Result<SideInformation> Interval(int lo, int hi, int n);
  /// Arbitrary non-empty subset of {0..n}; duplicates are removed.
  static Result<SideInformation> FromSet(std::vector<int> members, int n);

  /// The members of S in increasing order.
  const std::vector<int>& members() const { return members_; }
  /// The ambient n (S ⊆ {0..n}).
  int n() const { return n_; }
  bool Contains(int i) const;

  std::string ToString() const;

 private:
  SideInformation(std::vector<int> members, int n)
      : members_(std::move(members)), n_(n) {}

  std::vector<int> members_;  // sorted, unique
  int n_;
};

/// A minimax (risk-averse) information consumer.
class MinimaxConsumer {
 public:
  /// Fails when the loss is not monotone over {0..side_information.n()}.
  static Result<MinimaxConsumer> Create(LossFunction loss,
                                        SideInformation side_information);

  const LossFunction& loss() const { return loss_; }
  const SideInformation& side_information() const { return side_; }

  /// Expected loss of mechanism row i:  Σ_r l(i,r)·x[i][r].
  Result<double> ExpectedLossAt(const Mechanism& mechanism, int i) const;

  /// The minimax dis-utility L(x) of Eq. 1 (worst case over S).
  /// Fails when the mechanism's n differs from the consumer's.
  Result<double> WorstCaseLoss(const Mechanism& mechanism) const;

 private:
  MinimaxConsumer(LossFunction loss, SideInformation side)
      : loss_(std::move(loss)), side_(std::move(side)) {}

  LossFunction loss_;
  SideInformation side_;
};

}  // namespace geopriv

#endif  // GEOPRIV_CORE_CONSUMER_H_
