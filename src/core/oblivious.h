// Obliviousness is without loss of generality (Appendix A).
//
// A general (non-oblivious) mechanism assigns an output distribution to
// each *database* rather than each count.  Appendix A shows that averaging
// those distributions over the equivalence classes "same true count"
// yields an oblivious mechanism that is still α-DP and never has larger
// minimax loss.  This module implements that reduction and the loss
// comparison used to validate it.

#ifndef GEOPRIV_CORE_OBLIVIOUS_H_
#define GEOPRIV_CORE_OBLIVIOUS_H_

#include <vector>

#include "core/consumer.h"
#include "core/mechanism.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace geopriv {

/// A mechanism defined directly on databases: row d of `probs` is the
/// output distribution (over {0..n}) used when the database is d, and
/// `counts[d]` is that database's true count.
struct DatabaseMechanism {
  std::vector<int> counts;  ///< true count per database, in {0..n}
  Matrix probs;             ///< |databases| x (n+1), row-stochastic
};

/// Validates shapes and stochasticity of a DatabaseMechanism against n.
Status ValidateDatabaseMechanism(const DatabaseMechanism& mechanism, int n);

/// The Appendix A reduction: x'[c][r] = avg over databases d with
/// counts[d] == c of probs[d][r].  Every count class in {0..n} must be
/// non-empty (otherwise the oblivious row would be undefined).
Result<Mechanism> ObliviousReduction(const DatabaseMechanism& mechanism,
                                     int n);

/// Worst-case loss of a non-oblivious mechanism for a minimax consumer
/// whose side information restricts the *count*:
///   max over databases d with counts[d] ∈ S of Σ_r l(counts[d], r)·probs[d][r].
/// Appendix A (Lemma 6) guarantees this is >= the loss of the reduction.
Result<double> DatabaseMechanismWorstCaseLoss(
    const DatabaseMechanism& mechanism, const MinimaxConsumer& consumer);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_OBLIVIOUS_H_
