#include "core/loss.h"

#include <cmath>
#include <cstdlib>

namespace geopriv {

LossFunction LossFunction::AbsoluteError() {
  return LossFunction("absolute", [](int i, int r) {
    return static_cast<double>(std::abs(i - r));
  });
}

LossFunction LossFunction::SquaredError() {
  return LossFunction("squared", [](int i, int r) {
    double d = static_cast<double>(i - r);
    return d * d;
  });
}

LossFunction LossFunction::ZeroOne() {
  return LossFunction("zero-one",
                      [](int i, int r) { return i == r ? 0.0 : 1.0; });
}

Result<LossFunction> LossFunction::CappedAbsoluteError(double cap) {
  if (!(cap > 0.0) || !std::isfinite(cap)) {
    return Status::InvalidArgument("cap must be positive and finite");
  }
  return LossFunction("capped-absolute", [cap](int i, int r) {
    return std::min(static_cast<double>(std::abs(i - r)), cap);
  });
}

Result<LossFunction> LossFunction::PowerError(double p) {
  if (!(p >= 0.0) || !std::isfinite(p)) {
    return Status::InvalidArgument("exponent must be non-negative and finite");
  }
  return LossFunction("power-" + std::to_string(p), [p](int i, int r) {
    return std::pow(static_cast<double>(std::abs(i - r)), p);
  });
}

LossFunction LossFunction::FromFunction(std::string name,
                                        std::function<double(int, int)> fn) {
  return LossFunction(std::move(name), std::move(fn));
}

Status LossFunction::ValidateMonotone(int n) const {
  for (int i = 0; i <= n; ++i) {
    for (int r = 0; r <= n; ++r) {
      double value = (*this)(i, r);
      if (!(value >= 0.0) || !std::isfinite(value)) {
        return Status::InvalidArgument(
            "loss must be finite and non-negative at (" + std::to_string(i) +
            ", " + std::to_string(r) + ")");
      }
    }
    // Non-decreasing as r moves away from i on either side.
    for (int r = i; r + 1 <= n; ++r) {
      if ((*this)(i, r + 1) < (*this)(i, r)) {
        return Status::InvalidArgument(
            "loss decreases with distance to the right of i=" +
            std::to_string(i) + " at r=" + std::to_string(r + 1));
      }
    }
    for (int r = i; r - 1 >= 0; --r) {
      if ((*this)(i, r - 1) < (*this)(i, r)) {
        return Status::InvalidArgument(
            "loss decreases with distance to the left of i=" +
            std::to_string(i) + " at r=" + std::to_string(r - 1));
      }
    }
  }
  return Status::OK();
}

}  // namespace geopriv
