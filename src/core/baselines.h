// Baseline mechanisms the paper compares against (implicitly or in the
// cited literature).
//
// * DiscretizedLaplaceMechanism — the Laplace mechanism of Dwork et al.
//   (TCC 2006), of which the geometric mechanism is "a discrete version"
//   (paper, Definition 1).  We discretize by rounding to the nearest
//   integer and clamping into {0..n}, yielding a proper oblivious count
//   mechanism whose utility can be compared head-to-head with G_{n,α}.
// * RandomizedResponseMechanism — a classical non-geometric DP mechanism:
//   with probability (1+γ) keep a uniform draw biased toward the truth.
//   Useful as a "strictly worse for some consumers" contrast in X3 and as
//   a source of DP-but-not-derivable matrices for Theorem 2 tests.

#ifndef GEOPRIV_CORE_BASELINES_H_
#define GEOPRIV_CORE_BASELINES_H_

#include "core/mechanism.h"
#include "util/result.h"

namespace geopriv {

/// Builds the clamped, rounded Laplace mechanism with scale b = -1/ln(α),
/// matching the α-geometric mechanism's privacy budget ε = -ln α.
/// Fails unless n >= 0 and alpha ∈ (0, 1).
Result<Mechanism> DiscretizedLaplaceMechanism(int n, double alpha);

/// Builds the randomized-response style mechanism
///   x[i][r] = (1-λ)/(n+1) + λ·[i == r],
/// which keeps the truth with bonus weight λ and otherwise answers
/// uniformly.  It is α-DP for λ <= (1-α)/(α·n + 1) (per-column ratio
/// bound); Create computes the largest valid λ for the requested alpha.
/// Fails unless n >= 1 and alpha ∈ (0, 1).
Result<Mechanism> RandomizedResponseMechanism(int n, double alpha);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_BASELINES_H_
