// Exact (rational-arithmetic) versions of the paper's two LPs.
//
// When alpha and the loss are rational, the optimal mechanism LP
// (Section 2.5) and the optimal interaction LP (Section 2.4.3) have exact
// rational optima.  This module builds them over lp/exact_simplex.h, so
// Theorem 1 part 2 — "rational interaction with the geometric mechanism
// achieves the per-consumer optimum" — can be verified with exact
// equality, and EXPERIMENTS.md can state optimal losses as fractions
// (e.g. the Table 1 consumer's optimum).
//
// Intended for paper-scale n (the exact tableau costs grow quickly);
// use core/optimal.h for larger numeric instances.

#ifndef GEOPRIV_CORE_OPTIMAL_EXACT_H_
#define GEOPRIV_CORE_OPTIMAL_EXACT_H_

#include <functional>
#include <string>

#include "core/consumer.h"
#include "exact/rational.h"
#include "exact/rational_matrix.h"
#include "lp/exact_simplex.h"
#include "util/result.h"

namespace geopriv {

/// A monotone loss with exact rational values.
class ExactLossFunction {
 public:
  /// l(i, r) = |i - r|.
  static ExactLossFunction AbsoluteError();
  /// l(i, r) = (i - r)^2.
  static ExactLossFunction SquaredError();
  /// l(i, r) = [i != r].
  static ExactLossFunction ZeroOne();
  /// Arbitrary exact loss; caller promises monotonicity in |i - r|.
  static ExactLossFunction FromFunction(
      std::string name, std::function<Rational(int, int)> fn);

  Rational operator()(int i, int r) const { return fn_(i, r); }
  const std::string& name() const { return name_; }

  /// Verifies non-negativity and monotonicity in |i - r| over {0..n}.
  Status ValidateMonotone(int n) const;

 private:
  ExactLossFunction(std::string name, std::function<Rational(int, int)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name_;
  std::function<Rational(int, int)> fn_;
};

/// Exact minimax loss of a mechanism for (loss, S):
/// max_{i in S} sum_r l(i,r)·x[i][r].
Result<Rational> ExactWorstCaseLoss(const RationalMatrix& mechanism,
                                    const ExactLossFunction& loss,
                                    const SideInformation& side);

/// Exact result of either LP.
struct ExactOptimalResult {
  RationalMatrix matrix;  ///< the mechanism (Sec 2.5) or interaction T (2.4.3)
  Rational loss;          ///< the exact optimal minimax loss
  int lp_iterations = 0;
  int phase1_iterations = 0;  ///< pivots spent finding feasibility
  int phase2_iterations = 0;  ///< pivots spent optimizing
  bool warm_started = false;  ///< solved from a prior family member's basis
  /// The optimal basis, fit to warm-start a structurally identical solve
  /// (ExactSimplexOptions::warm_start).  The mechanism service's solve
  /// cache keeps it per entry so a cache miss can seed from the nearest
  /// cached neighbor instead of solving cold.
  LpBasis basis;
};

/// Section 2.5 LP over Q: the optimal alpha-DP mechanism for the consumer
/// (loss, side).  alpha must lie in [0, 1].
Result<ExactOptimalResult> SolveOptimalMechanismExact(
    int n, const Rational& alpha, const ExactLossFunction& loss,
    const SideInformation& side, const ExactSimplexOptions& options = {});

/// The α/ε-sweep family of the Section 2.5 LP: one result per entry of
/// `alphas`, in order.  All members share one structural shape, so the
/// whole family streams through a single warm-started solver — each
/// solved basis seeds the next solve (ExactSimplexSolver::SolveSequence)
/// instead of every point paying a cold phase 1.  Exact optima are
/// identical to per-point cold solves.
Result<std::vector<ExactOptimalResult>> SolveOptimalMechanismExactSweep(
    int n, const std::vector<Rational>& alphas, const ExactLossFunction& loss,
    const SideInformation& side, const ExactSimplexOptions& options = {});

/// The loss-function-sweep family of the Section 2.5 LP at a fixed alpha
/// (Table 1's absolute/squared/zero-one columns): one result per entry of
/// `losses`, warm-chained exactly like the α-sweep.
Result<std::vector<ExactOptimalResult>> SolveOptimalMechanismExactLossSweep(
    int n, const Rational& alpha,
    const std::vector<ExactLossFunction>& losses, const SideInformation& side,
    const ExactSimplexOptions& options = {});

/// Builds (but does not solve) the Section 2.5 LP over Q.  Shared by
/// SolveOptimalMechanismExact and by benchmarks/tests that want to run the
/// identical model through a specific ExactPivotEngine.
Result<ExactLpProblem> BuildOptimalMechanismLpExact(
    int n, const Rational& alpha, const ExactLossFunction& loss,
    const SideInformation& side);

/// Section 2.4.3 LP over Q: the consumer's optimal interaction with a
/// deployed mechanism.  `deployed` must be (n+1)x(n+1) row-stochastic.
/// The returned matrix is T; the loss is of the induced mechanism
/// deployed·T.
Result<ExactOptimalResult> SolveOptimalInteractionExact(
    const RationalMatrix& deployed, const ExactLossFunction& loss,
    const SideInformation& side);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_OPTIMAL_EXACT_H_
