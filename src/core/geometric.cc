#include "core/geometric.h"

#include <cmath>
#include <vector>

namespace geopriv {

namespace {

Status ValidateShape(int n, double alpha) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (!(alpha >= 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument("alpha must lie in [0, 1)");
  }
  return Status::OK();
}

Status ValidateShapeExact(int n, const Rational& alpha) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (alpha.IsNegative() || alpha >= Rational(1)) {
    return Status::InvalidArgument("alpha must lie in [0, 1)");
  }
  return Status::OK();
}

// Power table alpha^0 .. alpha^n: O(n) multiplications once, instead of an
// O(n²) storm of std::pow / Rational::Pow calls from the per-cell loops.
// std::pow(0, 0) == 1, so powers[0] = 1 even for alpha == 0.
std::vector<double> PowerTable(double alpha, int n) {
  std::vector<double> powers(static_cast<size_t>(n) + 1);
  powers[0] = 1.0;
  for (int k = 1; k <= n; ++k) {
    powers[static_cast<size_t>(k)] = powers[static_cast<size_t>(k) - 1] * alpha;
  }
  return powers;
}

std::vector<Rational> ExactPowerTable(const Rational& alpha, int n) {
  std::vector<Rational> powers(static_cast<size_t>(n) + 1);
  powers[0] = Rational(1);
  for (int k = 1; k <= n; ++k) {
    powers[static_cast<size_t>(k)] = powers[static_cast<size_t>(k) - 1] * alpha;
  }
  return powers;
}

}  // namespace

GeometricMechanism::GeometricMechanism(int n, double alpha)
    : n_(n),
      alpha_(alpha),
      log_alpha_(std::log(alpha)),
      mass_zero_((1.0 - alpha) / (1.0 + alpha)) {}

Result<GeometricMechanism> GeometricMechanism::Create(int n, double alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShape(n, alpha));
  return GeometricMechanism(n, alpha);
}

Result<int> GeometricMechanism::Sample(int i, Xoshiro256& rng) const {
  if (i < 0 || i > n_) return Status::OutOfRange("true count outside {0..n}");
  if (alpha_ == 0.0) return i;  // no noise
  // Draw Z from the two-sided geometric, then clamp (Definition 4 collapses
  // each tail onto the nearest endpoint, which is exactly clamping).
  double u = rng.NextDouble();
  int64_t z = 0;
  if (u >= mass_zero_) {
    double v = rng.NextDoublePositive();
    int64_t magnitude =
        1 + static_cast<int64_t>(std::floor(std::log(v) / log_alpha_));
    z = (rng.Next() & 1) ? magnitude : -magnitude;
  }
  int64_t out = static_cast<int64_t>(i) + z;
  if (out < 0) out = 0;
  if (out > n_) out = n_;
  return static_cast<int>(out);
}

Result<Mechanism> GeometricMechanism::ToMechanism() const {
  GEOPRIV_ASSIGN_OR_RETURN(Matrix m, BuildMatrix(n_, alpha_));
  return Mechanism::Create(std::move(m));
}

Result<Matrix> GeometricMechanism::BuildMatrix(int n, double alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShape(n, alpha));
  const size_t size = static_cast<size_t>(n) + 1;
  Matrix m(size, size);
  if (n == 0) {
    m.At(0, 0) = 1.0;
    return m;
  }
  const double interior = (1.0 - alpha) / (1.0 + alpha);
  const double edge = 1.0 / (1.0 + alpha);
  const std::vector<double> powers = PowerTable(alpha, n);
  for (int k = 0; k <= n; ++k) {
    // Endpoint columns absorb the clamped tails: Pr[out = 0] = Pr[Z <= -k]
    // = α^k/(1+α), symmetrically for n.  powers[0] == 1 makes the α = 0
    // (identity) case fall out naturally.
    m.At(static_cast<size_t>(k), 0) = edge * powers[static_cast<size_t>(k)];
    m.At(static_cast<size_t>(k), static_cast<size_t>(n)) =
        edge * powers[static_cast<size_t>(n - k)];
    for (int z = 1; z < n; ++z) {
      m.At(static_cast<size_t>(k), static_cast<size_t>(z)) =
          interior * powers[static_cast<size_t>(std::abs(z - k))];
    }
  }
  return m;
}

Result<Matrix> GeometricMechanism::BuildGPrime(int n, double alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShape(n, alpha));
  const size_t size = static_cast<size_t>(n) + 1;
  Matrix m(size, size);
  const std::vector<double> powers = PowerTable(alpha, n);
  for (size_t i = 0; i < size; ++i) {
    for (size_t j = 0; j < size; ++j) {
      m.At(i, j) = powers[static_cast<size_t>(
          std::abs(static_cast<int>(i) - static_cast<int>(j)))];
    }
  }
  return m;
}

Result<Matrix> GeometricMechanism::BuildInverse(int n, double alpha) {
  if (n < 1) {
    return Status::InvalidArgument("closed-form inverse needs n >= 1");
  }
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument(
        "closed-form inverse needs alpha in (0, 1)");
  }
  const size_t size = static_cast<size_t>(n) + 1;
  const double denom = 1.0 - alpha * alpha;
  // (G')⁻¹ is tridiagonal; G = G'·D with D = diag(d_j), so
  // G⁻¹ = D⁻¹·(G')⁻¹ scales the *rows* of (G')⁻¹ by 1/d_i.
  Matrix inv(size, size);
  for (size_t i = 0; i < size; ++i) {
    double diag = (i == 0 || i + 1 == size) ? 1.0 : 1.0 + alpha * alpha;
    inv.At(i, i) = diag / denom;
    if (i > 0) inv.At(i, i - 1) = -alpha / denom;
    if (i + 1 < size) inv.At(i, i + 1) = -alpha / denom;
  }
  for (size_t i = 0; i < size; ++i) {
    double d = (i == 0 || i + 1 == size) ? 1.0 / (1.0 + alpha)
                                         : (1.0 - alpha) / (1.0 + alpha);
    double scale = 1.0 / d;
    for (size_t j = 0; j < size; ++j) inv.At(i, j) *= scale;
  }
  return inv;
}

Result<RationalMatrix> GeometricMechanism::BuildExactMatrix(
    int n, const Rational& alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShapeExact(n, alpha));
  const size_t size = static_cast<size_t>(n) + 1;
  RationalMatrix m(size, size);
  if (n == 0) {
    m.At(0, 0) = Rational(1);
    return m;
  }
  const Rational one(1);
  GEOPRIV_ASSIGN_OR_RETURN(Rational edge,
                           Rational::Divide(one, one + alpha));
  GEOPRIV_ASSIGN_OR_RETURN(Rational interior,
                           Rational::Divide(one - alpha, one + alpha));
  const std::vector<Rational> powers = ExactPowerTable(alpha, n);
  for (int k = 0; k <= n; ++k) {
    m.At(static_cast<size_t>(k), 0) =
        edge * powers[static_cast<size_t>(k)];
    m.At(static_cast<size_t>(k), static_cast<size_t>(n)) =
        edge * powers[static_cast<size_t>(n - k)];
    for (int z = 1; z < n; ++z) {
      m.At(static_cast<size_t>(k), static_cast<size_t>(z)) =
          interior * powers[static_cast<size_t>(std::abs(z - k))];
    }
  }
  return m;
}

Result<RationalMatrix> GeometricMechanism::BuildExactGPrime(
    int n, const Rational& alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShapeExact(n, alpha));
  const size_t size = static_cast<size_t>(n) + 1;
  RationalMatrix m(size, size);
  const std::vector<Rational> powers = ExactPowerTable(alpha, n);
  for (size_t i = 0; i < size; ++i) {
    for (size_t j = 0; j < size; ++j) {
      int d = std::abs(static_cast<int>(i) - static_cast<int>(j));
      m.At(i, j) = powers[static_cast<size_t>(d)];
    }
  }
  return m;
}

Result<RationalMatrix> GeometricMechanism::BuildExactInverse(
    int n, const Rational& alpha) {
  if (n < 1) {
    return Status::InvalidArgument("closed-form inverse needs n >= 1");
  }
  if (alpha.Sign() <= 0 || alpha >= Rational(1)) {
    return Status::InvalidArgument(
        "closed-form inverse needs alpha in (0, 1)");
  }
  const size_t size = static_cast<size_t>(n) + 1;
  const Rational one(1);
  const Rational alpha2 = alpha * alpha;
  GEOPRIV_ASSIGN_OR_RETURN(Rational inv_denom,
                           (one - alpha2).Inverse());
  RationalMatrix inv(size, size);
  for (size_t i = 0; i < size; ++i) {
    Rational diag = (i == 0 || i + 1 == size) ? one : one + alpha2;
    inv.At(i, i) = diag * inv_denom;
    Rational off = -alpha * inv_denom;
    if (i > 0) inv.At(i, i - 1) = off;
    if (i + 1 < size) inv.At(i, i + 1) = off;
  }
  // Row-scale by 1/d_i (G = G'·D).
  GEOPRIV_ASSIGN_OR_RETURN(Rational edge_scale,
                           Rational::Divide(one + alpha, one));
  GEOPRIV_ASSIGN_OR_RETURN(Rational interior_scale,
                           Rational::Divide(one + alpha, one - alpha));
  for (size_t i = 0; i < size; ++i) {
    const Rational& scale =
        (i == 0 || i + 1 == size) ? edge_scale : interior_scale;
    for (size_t j = 0; j < size; ++j) {
      if (!inv.At(i, j).IsZero()) inv.At(i, j) *= scale;
    }
  }
  return inv;
}

Result<Rational> GeometricMechanism::ExactGPrimeDeterminant(
    int n, const Rational& alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShapeExact(n, alpha));
  const Rational one(1);
  return *(one - alpha * alpha).Pow(n);
}

Result<Rational> GeometricMechanism::ExactDeterminant(int n,
                                                      const Rational& alpha) {
  GEOPRIV_RETURN_IF_ERROR(ValidateShapeExact(n, alpha));
  const Rational one(1);
  if (n == 0) return one;
  GEOPRIV_ASSIGN_OR_RETURN(Rational gprime_det,
                           ExactGPrimeDeterminant(n, alpha));
  GEOPRIV_ASSIGN_OR_RETURN(Rational edge,
                           Rational::Divide(one, one + alpha));
  GEOPRIV_ASSIGN_OR_RETURN(Rational interior,
                           Rational::Divide(one - alpha, one + alpha));
  return gprime_det * edge * edge * *interior.Pow(n - 1);
}

}  // namespace geopriv
