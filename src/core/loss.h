// Loss functions (Section 2.3).
//
// A loss function l(i, r) gives the consumer's dis-utility when the
// mechanism outputs r while the true count is i.  The paper's only
// assumption is monotonicity: l(i, r) is non-decreasing in |i - r| for each
// fixed i.  This module provides the paper's three worked examples
// (absolute error for the government, squared error for the drug company,
// 0/1 error), plus capped variants and an escape hatch for arbitrary
// losses, together with a monotonicity validator.

#ifndef GEOPRIV_CORE_LOSS_H_
#define GEOPRIV_CORE_LOSS_H_

#include <functional>
#include <memory>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace geopriv {

/// A monotone loss function l : N x N -> R>=0.  Cheap to copy.
class LossFunction {
 public:
  /// l(i, r) = |i - r|  (mean error; the paper's government example).
  static LossFunction AbsoluteError();
  /// l(i, r) = (i - r)^2  (error variance; the drug-company example).
  static LossFunction SquaredError();
  /// l(i, r) = [i != r]  (frequency of error).
  static LossFunction ZeroOne();
  /// l(i, r) = min(|i - r|, cap); models consumers indifferent beyond a
  /// blowout threshold.  cap must be positive.
  static Result<LossFunction> CappedAbsoluteError(double cap);
  /// l(i, r) = |i - r|^p for p >= 0 (p = 1, 2 recover the above).
  static Result<LossFunction> PowerError(double p);
  /// Arbitrary loss; caller promises monotonicity (check with
  /// ValidateMonotone before relying on the paper's theorems).
  static LossFunction FromFunction(std::string name,
                                   std::function<double(int, int)> fn);

  /// Evaluates l(i, r).
  double operator()(int i, int r) const { return (*fn_)(i, r); }

  const std::string& name() const { return name_; }

  /// Verifies, for inputs/outputs in {0..n}, that l(i, r) is non-negative
  /// and non-decreasing in |i - r| for every fixed i — the paper's validity
  /// condition.  Returns the first violation found.
  Status ValidateMonotone(int n) const;

 private:
  using Fn = std::function<double(int, int)>;
  LossFunction(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::make_shared<const Fn>(std::move(fn))) {}

  std::string name_;
  std::shared_ptr<const Fn> fn_;
};

}  // namespace geopriv

#endif  // GEOPRIV_CORE_LOSS_H_
