// The paper's concrete worked examples, as exact library constants.
//
// * Table 1 (n = 3, α = 1/4, consumer: l = |i-r|, S = {0..3}):
//     (a) "the optimal mechanism" as printed in the paper.  NOTE: the
//         printed fractions are inexact — the rows of (a) do not sum to 1
//         (e.g. 2/3 + 5/17 + 1/25 + 1/98 ≈ 1.011), so we expose it as
//         PaperTable1aAsPrinted for provenance and let tests compare
//         against the LP-computed optimum instead.
//     (b) G_{3,1/4} scaled by (1+α)/(1-α) = 5/3, exactly as printed.
//     (c) the consumer-interaction matrix (exactly row-stochastic).
// * Appendix B: the 1/2-DP mechanism that is NOT derivable from G_{3,1/2};
//   its Theorem-2 slack at column 1, rows (0,1,2) is exactly -1/12
//   ((1+α²)·1/9 − α·(2/9+2/9) = 5/36 − 2/9).
//
// These are used by tests (exactness checks) and by the Table-1/Appendix-B
// benches that reprint the paper's artifacts.

#ifndef GEOPRIV_CORE_EXAMPLES_CATALOG_H_
#define GEOPRIV_CORE_EXAMPLES_CATALOG_H_

#include "exact/rational_matrix.h"
#include "util/result.h"

namespace geopriv {

/// Parameters of the Table 1 example.
struct Table1Parameters {
  int n = 3;
  /// α = 1/4.
  Rational alpha = *Rational::FromInts(1, 4);
};

/// Table 1(a) exactly as printed in the paper (rows do NOT sum to 1; see
/// file comment).
Result<RationalMatrix> PaperTable1aAsPrinted();

/// Table 1(b) exactly as printed: G_{3,1/4}·(1+α)/(1-α).
Result<RationalMatrix> PaperTable1bAsPrinted();

/// Table 1(c): the minimax consumer's interaction matrix (row-stochastic).
Result<RationalMatrix> PaperTable1cInteraction();

/// Appendix B: the 1/2-DP mechanism not derivable from the geometric
/// mechanism.
Result<RationalMatrix> PaperAppendixBMechanism();

}  // namespace geopriv

#endif  // GEOPRIV_CORE_EXAMPLES_CATALOG_H_
