#include "core/consumer.h"

#include <algorithm>

namespace geopriv {

SideInformation SideInformation::All(int n) {
  std::vector<int> members(static_cast<size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) members[static_cast<size_t>(i)] = i;
  return SideInformation(std::move(members), n);
}

Result<SideInformation> SideInformation::Interval(int lo, int hi, int n) {
  if (lo < 0 || hi > n || lo > hi) {
    return Status::InvalidArgument(
        "interval side information requires 0 <= lo <= hi <= n");
  }
  std::vector<int> members;
  members.reserve(static_cast<size_t>(hi - lo) + 1);
  for (int i = lo; i <= hi; ++i) members.push_back(i);
  return SideInformation(std::move(members), n);
}

Result<SideInformation> SideInformation::FromSet(std::vector<int> members,
                                                 int n) {
  if (members.empty()) {
    return Status::InvalidArgument("side information must be non-empty");
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  if (members.front() < 0 || members.back() > n) {
    return Status::OutOfRange("side information must lie inside {0..n}");
  }
  return SideInformation(std::move(members), n);
}

bool SideInformation::Contains(int i) const {
  return std::binary_search(members_.begin(), members_.end(), i);
}

std::string SideInformation::ToString() const {
  // Contiguous sets render as ranges, otherwise as explicit lists.
  if (static_cast<int>(members_.size()) ==
      members_.back() - members_.front() + 1) {
    return "{" + std::to_string(members_.front()) + ".." +
           std::to_string(members_.back()) + "}";
  }
  std::string out = "{";
  for (size_t k = 0; k < members_.size(); ++k) {
    if (k != 0) out += ",";
    out += std::to_string(members_[k]);
  }
  return out + "}";
}

Result<MinimaxConsumer> MinimaxConsumer::Create(
    LossFunction loss, SideInformation side_information) {
  GEOPRIV_RETURN_IF_ERROR(loss.ValidateMonotone(side_information.n()));
  return MinimaxConsumer(std::move(loss), std::move(side_information));
}

Result<double> MinimaxConsumer::ExpectedLossAt(const Mechanism& mechanism,
                                               int i) const {
  if (mechanism.n() != side_.n()) {
    return Status::InvalidArgument(
        "mechanism size does not match consumer's n");
  }
  if (i < 0 || i > side_.n()) {
    return Status::OutOfRange("input outside {0..n}");
  }
  double acc = 0.0;
  for (int r = 0; r <= mechanism.n(); ++r) {
    acc += loss_(i, r) * mechanism.Probability(i, r);
  }
  return acc;
}

Result<double> MinimaxConsumer::WorstCaseLoss(
    const Mechanism& mechanism) const {
  double worst = 0.0;
  for (int i : side_.members()) {
    GEOPRIV_ASSIGN_OR_RETURN(double loss, ExpectedLossAt(mechanism, i));
    worst = std::max(worst, loss);
  }
  return worst;
}

}  // namespace geopriv
