#include "core/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "exact/rational.h"
#include "util/fault_injection.h"

namespace geopriv {

namespace {
constexpr char kHeaderV1[] = "geopriv-mechanism v1";
constexpr char kHeaderV2[] = "geopriv-mechanism v2";
constexpr char kHeaderV3[] = "geopriv-mechanism v3";
constexpr char kBasisHeader[] = "geopriv-basis v1";

// Reads a "checksum <16 hex>" line from `in` and verifies it against the
// FNV-1a digest of everything that follows it.  On success leaves `in`
// positioned at the body.
Status ConsumeChecksumLine(std::istringstream& in, const std::string& what) {
  std::string line;
  if (!std::getline(in, line) || line.size() != 9 + 16 ||
      line.compare(0, 9, "checksum ") != 0) {
    return Status::InvalidArgument("missing 'checksum <16 hex>' line in " +
                                   what);
  }
  const std::string stored = line.substr(9);
  const std::string body = in.str().substr(static_cast<size_t>(in.tellg()));
  if (Fnv1a64Hex(body) != stored) {
    return Status::InvalidArgument(what + " checksum mismatch: stored " +
                                   stored + ", computed " + Fnv1a64Hex(body));
  }
  return Status::OK();
}

// Shared v1/v2 body scaffolding: reads "n <n>" then n+1 "row ..." lines,
// handing each entry token to `parse_entry(i, r)`; rejects trailing content.
template <typename ParseEntry>
Status ParseBody(std::istringstream& in, int* n_out, ParseEntry&& parse_entry) {
  std::string keyword;
  int n = -1;
  if (!(in >> keyword >> n) || keyword != "n" || n < 0) {
    return Status::InvalidArgument("missing or malformed 'n <size>' line");
  }
  *n_out = n;
  const size_t size = static_cast<size_t>(n) + 1;
  for (size_t i = 0; i < size; ++i) {
    if (!(in >> keyword) || keyword != "row") {
      return Status::InvalidArgument("expected 'row' line " +
                                     std::to_string(i));
    }
    for (size_t r = 0; r < size; ++r) {
      GEOPRIV_RETURN_IF_ERROR(parse_entry(i, r));
    }
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument("trailing content after last row");
  }
  return Status::OK();
}

Result<RationalMatrix> ParseExactBody(std::istringstream& in) {
  // Entries arrive before the shape is known per row, so collect them
  // flat; ParseBody fixes the iteration order to row-major.
  int n = -1;
  std::vector<Rational> entries;
  GEOPRIV_RETURN_IF_ERROR(ParseBody(in, &n, [&](size_t i, size_t r) {
    std::string token;
    if (!(in >> token)) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has too few probabilities");
    }
    Result<Rational> value = Rational::FromString(token);
    if (!value.ok()) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " entry " + std::to_string(r) +
          ": " + value.status().message());
    }
    entries.push_back(std::move(*value));
    return Status::OK();
  }));
  const size_t size = static_cast<size_t>(n) + 1;
  GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix matrix, RationalMatrix::FromRows(
                                                      size, size,
                                                      std::move(entries)));
  if (!matrix.IsRowStochastic()) {
    return Status::InvalidArgument(
        "v2 mechanism must be exactly row-stochastic (rows sum to 1, "
        "entries >= 0)");
  }
  return matrix;
}

}  // namespace

std::string SerializeMechanism(const Mechanism& mechanism) {
  std::string out = kHeaderV1;
  out += "\nn " + std::to_string(mechanism.n()) + "\n";
  char buf[40];
  for (int i = 0; i <= mechanism.n(); ++i) {
    out += "row";
    for (int r = 0; r <= mechanism.n(); ++r) {
      std::snprintf(buf, sizeof(buf), " %.17g", mechanism.Probability(i, r));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Result<Mechanism> ParseMechanism(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(
        "missing 'geopriv-mechanism v1' (or v2) header");
  }
  if (line == kHeaderV2 || line == kHeaderV3) {
    if (line == kHeaderV3) {
      GEOPRIV_RETURN_IF_ERROR(ConsumeChecksumLine(in, "v3 mechanism"));
    }
    GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix exact, ParseExactBody(in));
    return Mechanism::FromExact(exact);
  }
  if (line != kHeaderV1) {
    return Status::InvalidArgument(
        "missing 'geopriv-mechanism v1' (or v2) header");
  }
  int n = -1;
  Matrix probs;
  bool sized = false;
  GEOPRIV_RETURN_IF_ERROR(ParseBody(in, &n, [&](size_t i, size_t r) {
    if (!sized) {
      const size_t size = static_cast<size_t>(n) + 1;
      probs = Matrix(size, size);
      sized = true;
    }
    double v = 0.0;
    if (!(in >> v)) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has too few probabilities");
    }
    probs.At(i, r) = v;
    return Status::OK();
  }));
  return Mechanism::Create(std::move(probs));
}

Status SaveMechanism(const Mechanism& mechanism, const std::string& path) {
  // Fired before the file is opened: unlike the service's write-then-
  // rename persistence, these CLI-facing saves truncate in place, so the
  // only crash-safe point to inject is before the destination is touched.
  GEOPRIV_INJECT_FAULT("io.save.write");
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << SerializeMechanism(mechanism);
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Mechanism> LoadMechanism(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseMechanism(buffer.str());
}

std::string SerializeExactMechanism(const RationalMatrix& mechanism) {
  std::string out = kHeaderV2;
  out += "\nn " + std::to_string(mechanism.rows() == 0
                                     ? -1
                                     : static_cast<int>(mechanism.rows()) - 1);
  out += "\n";
  for (size_t i = 0; i < mechanism.rows(); ++i) {
    out += "row";
    for (size_t r = 0; r < mechanism.cols(); ++r) {
      out += " " + mechanism.At(i, r).ToString();
    }
    out += "\n";
  }
  return out;
}

std::string SerializeExactMechanismV3(const RationalMatrix& mechanism) {
  // Reuse the v2 serializer for the body so v3 stays byte-compatible with
  // the format ParseExactBody already understands.
  const std::string v2 = SerializeExactMechanism(mechanism);
  const std::string body = v2.substr(std::string(kHeaderV2).size() + 1);
  std::string out = kHeaderV3;
  out += "\nchecksum " + Fnv1a64Hex(body) + "\n";
  out += body;
  return out;
}

Result<RationalMatrix> ParseExactMechanism(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || (line != kHeaderV2 && line != kHeaderV3)) {
    return Status::InvalidArgument(
        "missing 'geopriv-mechanism v2' (or v3) header");
  }
  if (line == kHeaderV3) {
    GEOPRIV_RETURN_IF_ERROR(ConsumeChecksumLine(in, "v3 mechanism"));
  }
  return ParseExactBody(in);
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string Fnv1a64Hex(const std::string& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(bytes)));
  return std::string(buf);
}

std::string SerializeBasisDoc(const std::string& key,
                              const std::vector<size_t>& basic_columns) {
  std::string body = "key " + key + "\n";
  body += "columns " + std::to_string(basic_columns.size());
  for (const size_t column : basic_columns) {
    body += " " + std::to_string(column);
  }
  body += "\n";
  std::string out = kBasisHeader;
  out += "\nchecksum " + Fnv1a64Hex(body) + "\n";
  out += body;
  return out;
}

Result<std::vector<size_t>> ParseBasisDoc(const std::string& text,
                                          std::string* key_out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kBasisHeader) {
    return Status::InvalidArgument("missing 'geopriv-basis v1' header");
  }
  GEOPRIV_RETURN_IF_ERROR(ConsumeChecksumLine(in, "basis document"));
  if (!std::getline(in, line) || line.compare(0, 4, "key ") != 0) {
    return Status::InvalidArgument("missing 'key <canonical key>' line in "
                                   "basis document");
  }
  if (key_out != nullptr) *key_out = line.substr(4);
  std::string keyword;
  long long count = -1;
  if (!(in >> keyword >> count) || keyword != "columns" || count < 0) {
    return Status::InvalidArgument(
        "missing or malformed 'columns <k> ...' line in basis document");
  }
  std::vector<size_t> columns;
  columns.reserve(static_cast<size_t>(count));
  for (long long i = 0; i < count; ++i) {
    long long column = -1;
    if (!(in >> column) || column < 0) {
      return Status::InvalidArgument("basis document has fewer than " +
                                     std::to_string(count) + " columns");
    }
    if (!columns.empty() && static_cast<size_t>(column) <= columns.back()) {
      return Status::InvalidArgument(
          "basis columns must be strictly increasing");
    }
    columns.push_back(static_cast<size_t>(column));
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument("trailing content after basis columns");
  }
  return columns;
}

Status SaveExactMechanism(const RationalMatrix& mechanism,
                          const std::string& path) {
  // Empty and rectangular matrices can pass IsRowStochastic (vacuously /
  // row-sums only) yet serialize to documents the parser rejects; refuse
  // them here instead of round-tripping a successful save into a hard
  // load error.
  if (mechanism.rows() == 0 || mechanism.rows() != mechanism.cols() ||
      !mechanism.IsRowStochastic()) {
    return Status::InvalidArgument(
        "refusing to save an empty, non-square or non-row-stochastic "
        "exact mechanism");
  }
  GEOPRIV_INJECT_FAULT("io.save.write");
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << SerializeExactMechanism(mechanism);
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<RationalMatrix> LoadExactMechanism(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseExactMechanism(buffer.str());
}

}  // namespace geopriv
