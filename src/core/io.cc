#include "core/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "exact/rational.h"
#include "util/fault_injection.h"

namespace geopriv {

namespace {
constexpr char kHeaderV1[] = "geopriv-mechanism v1";
constexpr char kHeaderV2[] = "geopriv-mechanism v2";

// Shared v1/v2 body scaffolding: reads "n <n>" then n+1 "row ..." lines,
// handing each entry token to `parse_entry(i, r)`; rejects trailing content.
template <typename ParseEntry>
Status ParseBody(std::istringstream& in, int* n_out, ParseEntry&& parse_entry) {
  std::string keyword;
  int n = -1;
  if (!(in >> keyword >> n) || keyword != "n" || n < 0) {
    return Status::InvalidArgument("missing or malformed 'n <size>' line");
  }
  *n_out = n;
  const size_t size = static_cast<size_t>(n) + 1;
  for (size_t i = 0; i < size; ++i) {
    if (!(in >> keyword) || keyword != "row") {
      return Status::InvalidArgument("expected 'row' line " +
                                     std::to_string(i));
    }
    for (size_t r = 0; r < size; ++r) {
      GEOPRIV_RETURN_IF_ERROR(parse_entry(i, r));
    }
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument("trailing content after last row");
  }
  return Status::OK();
}

Result<RationalMatrix> ParseExactBody(std::istringstream& in) {
  // Entries arrive before the shape is known per row, so collect them
  // flat; ParseBody fixes the iteration order to row-major.
  int n = -1;
  std::vector<Rational> entries;
  GEOPRIV_RETURN_IF_ERROR(ParseBody(in, &n, [&](size_t i, size_t r) {
    std::string token;
    if (!(in >> token)) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has too few probabilities");
    }
    Result<Rational> value = Rational::FromString(token);
    if (!value.ok()) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " entry " + std::to_string(r) +
          ": " + value.status().message());
    }
    entries.push_back(std::move(*value));
    return Status::OK();
  }));
  const size_t size = static_cast<size_t>(n) + 1;
  GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix matrix, RationalMatrix::FromRows(
                                                      size, size,
                                                      std::move(entries)));
  if (!matrix.IsRowStochastic()) {
    return Status::InvalidArgument(
        "v2 mechanism must be exactly row-stochastic (rows sum to 1, "
        "entries >= 0)");
  }
  return matrix;
}

}  // namespace

std::string SerializeMechanism(const Mechanism& mechanism) {
  std::string out = kHeaderV1;
  out += "\nn " + std::to_string(mechanism.n()) + "\n";
  char buf[40];
  for (int i = 0; i <= mechanism.n(); ++i) {
    out += "row";
    for (int r = 0; r <= mechanism.n(); ++r) {
      std::snprintf(buf, sizeof(buf), " %.17g", mechanism.Probability(i, r));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Result<Mechanism> ParseMechanism(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(
        "missing 'geopriv-mechanism v1' (or v2) header");
  }
  if (line == kHeaderV2) {
    GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix exact, ParseExactBody(in));
    return Mechanism::FromExact(exact);
  }
  if (line != kHeaderV1) {
    return Status::InvalidArgument(
        "missing 'geopriv-mechanism v1' (or v2) header");
  }
  int n = -1;
  Matrix probs;
  bool sized = false;
  GEOPRIV_RETURN_IF_ERROR(ParseBody(in, &n, [&](size_t i, size_t r) {
    if (!sized) {
      const size_t size = static_cast<size_t>(n) + 1;
      probs = Matrix(size, size);
      sized = true;
    }
    double v = 0.0;
    if (!(in >> v)) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has too few probabilities");
    }
    probs.At(i, r) = v;
    return Status::OK();
  }));
  return Mechanism::Create(std::move(probs));
}

Status SaveMechanism(const Mechanism& mechanism, const std::string& path) {
  // Fired before the file is opened: unlike the service's write-then-
  // rename persistence, these CLI-facing saves truncate in place, so the
  // only crash-safe point to inject is before the destination is touched.
  GEOPRIV_INJECT_FAULT("io.save.write");
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << SerializeMechanism(mechanism);
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Mechanism> LoadMechanism(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseMechanism(buffer.str());
}

std::string SerializeExactMechanism(const RationalMatrix& mechanism) {
  std::string out = kHeaderV2;
  out += "\nn " + std::to_string(mechanism.rows() == 0
                                     ? -1
                                     : static_cast<int>(mechanism.rows()) - 1);
  out += "\n";
  for (size_t i = 0; i < mechanism.rows(); ++i) {
    out += "row";
    for (size_t r = 0; r < mechanism.cols(); ++r) {
      out += " " + mechanism.At(i, r).ToString();
    }
    out += "\n";
  }
  return out;
}

Result<RationalMatrix> ParseExactMechanism(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeaderV2) {
    return Status::InvalidArgument("missing 'geopriv-mechanism v2' header");
  }
  return ParseExactBody(in);
}

Status SaveExactMechanism(const RationalMatrix& mechanism,
                          const std::string& path) {
  // Empty and rectangular matrices can pass IsRowStochastic (vacuously /
  // row-sums only) yet serialize to documents the parser rejects; refuse
  // them here instead of round-tripping a successful save into a hard
  // load error.
  if (mechanism.rows() == 0 || mechanism.rows() != mechanism.cols() ||
      !mechanism.IsRowStochastic()) {
    return Status::InvalidArgument(
        "refusing to save an empty, non-square or non-row-stochastic "
        "exact mechanism");
  }
  GEOPRIV_INJECT_FAULT("io.save.write");
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << SerializeExactMechanism(mechanism);
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<RationalMatrix> LoadExactMechanism(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseExactMechanism(buffer.str());
}

}  // namespace geopriv
