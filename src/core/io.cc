#include "core/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace geopriv {

namespace {
constexpr char kHeader[] = "geopriv-mechanism v1";
}  // namespace

std::string SerializeMechanism(const Mechanism& mechanism) {
  std::string out = kHeader;
  out += "\nn " + std::to_string(mechanism.n()) + "\n";
  char buf[40];
  for (int i = 0; i <= mechanism.n(); ++i) {
    out += "row";
    for (int r = 0; r <= mechanism.n(); ++r) {
      std::snprintf(buf, sizeof(buf), " %.17g", mechanism.Probability(i, r));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Result<Mechanism> ParseMechanism(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument(
        "missing 'geopriv-mechanism v1' header");
  }
  std::string keyword;
  int n = -1;
  if (!(in >> keyword >> n) || keyword != "n" || n < 0) {
    return Status::InvalidArgument("missing or malformed 'n <size>' line");
  }
  const size_t size = static_cast<size_t>(n) + 1;
  Matrix probs(size, size);
  for (size_t i = 0; i < size; ++i) {
    if (!(in >> keyword) || keyword != "row") {
      return Status::InvalidArgument("expected 'row' line " +
                                     std::to_string(i));
    }
    for (size_t r = 0; r < size; ++r) {
      double v = 0.0;
      if (!(in >> v)) {
        return Status::InvalidArgument("row " + std::to_string(i) +
                                       " has too few probabilities");
      }
      probs.At(i, r) = v;
    }
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument("trailing content after last row");
  }
  return Mechanism::Create(std::move(probs));
}

Status SaveMechanism(const Mechanism& mechanism, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << SerializeMechanism(mechanism);
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Mechanism> LoadMechanism(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseMechanism(buffer.str());
}

}  // namespace geopriv
