// Bayesian information consumers (Section 2.7 / Ghosh-Roughgarden-
// Sundararajan STOC'09) — the paper's comparison baseline.
//
// A Bayesian consumer replaces the side-information set with a prior p over
// {0..n} and the minimax rule with expected loss
//     L(x) = Σ_i p_i · Σ_r l(i,r)·x[i][r].
// For a fixed deployed mechanism y the optimal post-processing is
// *deterministic*: remap each output r to
//     argmin_{r'} Σ_i p_i · y[i][r] · l(i, r'),
// the Bayes decision against the posterior given r.  (Minimax consumers, by
// contrast, need randomized interactions — Table 1(c) in the paper.)
// Ghosh et al. prove the geometric mechanism is universally optimal in this
// model too; we reproduce that claim empirically as experiment X5.

#ifndef GEOPRIV_CORE_BAYESIAN_H_
#define GEOPRIV_CORE_BAYESIAN_H_

#include <vector>

#include "core/loss.h"
#include "core/mechanism.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace geopriv {

/// A Bayesian (risk-neutral) information consumer.
class BayesianConsumer {
 public:
  /// `prior` is a distribution over {0..n} (n = prior.size()-1); it must be
  /// non-negative and sum to 1 within `tol`.  The loss must be monotone.
  static Result<BayesianConsumer> Create(LossFunction loss,
                                         std::vector<double> prior,
                                         double tol = 1e-9);

  /// Uniform prior over {0..n}.
  static Result<BayesianConsumer> WithUniformPrior(LossFunction loss, int n);

  int n() const { return static_cast<int>(prior_.size()) - 1; }
  const LossFunction& loss() const { return loss_; }
  const std::vector<double>& prior() const { return prior_; }

  /// Expected loss Σ_i p_i Σ_r l(i,r)·x[i][r].
  Result<double> ExpectedLoss(const Mechanism& mechanism) const;

  /// The optimal deterministic remap against `deployed`: element r is the
  /// output the consumer substitutes when it observes r.
  Result<std::vector<int>> OptimalRemap(const Mechanism& deployed) const;

  /// Expected loss after applying OptimalRemap to `deployed`.
  Result<double> LossAfterOptimalRemap(const Mechanism& deployed) const;

  /// Converts a deterministic remap to a (0/1) interaction matrix.
  static Matrix RemapToInteraction(const std::vector<int>& remap);

 private:
  BayesianConsumer(LossFunction loss, std::vector<double> prior)
      : loss_(std::move(loss)), prior_(std::move(prior)) {}

  LossFunction loss_;
  std::vector<double> prior_;
};

/// Result of the optimal Bayesian mechanism LP.
struct OptimalBayesianMechanismResult {
  Mechanism mechanism;
  double loss = 0.0;
  int lp_iterations = 0;
};

/// The Bayesian analogue of the Section 2.5 LP: over α-DP mechanisms,
/// minimize expected (rather than worst-case) loss.  The objective is
/// linear, so no epigraph variable is needed.
Result<OptimalBayesianMechanismResult> SolveOptimalBayesianMechanism(
    int n, double alpha, const BayesianConsumer& consumer,
    const SimplexOptions& options = {});

/// The α-sweep family of the Bayesian LP (the X5 baseline curves): one
/// result per entry of `alphas`, streamed through a single warm-started
/// solver (SimplexSolver::SolveSequence) instead of N cold solves.
Result<std::vector<OptimalBayesianMechanismResult>>
SolveOptimalBayesianMechanismSweep(int n, const std::vector<double>& alphas,
                                   const BayesianConsumer& consumer,
                                   const SimplexOptions& options = {});

}  // namespace geopriv

#endif  // GEOPRIV_CORE_BAYESIAN_H_
