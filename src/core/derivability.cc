#include "core/derivability.h"

#include <cmath>

#include "core/geometric.h"

namespace geopriv {

Result<DerivabilityVerdict> CheckDerivability(const Mechanism& mechanism,
                                              double alpha, double tol) {
  if (!(alpha >= 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument("alpha must lie in [0, 1)");
  }
  DerivabilityVerdict verdict;
  verdict.derivable = true;
  const int n = mechanism.n();
  const double alpha2 = alpha * alpha;
  for (int j = 0; j <= n; ++j) {
    // Boundary conditions (Lemma 2, cases i = 1 and i = n).
    if (n >= 1) {
      double first = mechanism.Probability(0, j) -
                     alpha * mechanism.Probability(1, j);
      if (first < -tol) {
        return DerivabilityVerdict{false, j, 0, first};
      }
      double last = mechanism.Probability(n, j) -
                    alpha * mechanism.Probability(n - 1, j);
      if (last < -tol) {
        return DerivabilityVerdict{false, j, n, last};
      }
    }
    // Interior triples (Lemma 2, cases 2 <= i <= n-1).
    for (int i = 1; i + 1 <= n; ++i) {
      double slack = (1.0 + alpha2) * mechanism.Probability(i, j) -
                     alpha * (mechanism.Probability(i - 1, j) +
                              mechanism.Probability(i + 1, j));
      if (slack < -tol) {
        return DerivabilityVerdict{false, j, i, slack};
      }
    }
  }
  return verdict;
}

Result<DerivabilityVerdict> CheckDerivabilityExact(
    const RationalMatrix& mechanism, const Rational& alpha) {
  if (mechanism.rows() != mechanism.cols() || mechanism.rows() == 0) {
    return Status::InvalidArgument("mechanism must be square and non-empty");
  }
  if (alpha.IsNegative() || alpha >= Rational(1)) {
    return Status::InvalidArgument("alpha must lie in [0, 1)");
  }
  const size_t size = mechanism.rows();
  const Rational one(1);
  const Rational coeff = one + alpha * alpha;
  for (size_t j = 0; j < size; ++j) {
    if (size >= 2) {
      Rational first = mechanism.At(0, j) - alpha * mechanism.At(1, j);
      if (first.IsNegative()) {
        return DerivabilityVerdict{false, static_cast<int>(j), 0,
                                   first.ToDouble()};
      }
      Rational last = mechanism.At(size - 1, j) -
                      alpha * mechanism.At(size - 2, j);
      if (last.IsNegative()) {
        return DerivabilityVerdict{false, static_cast<int>(j),
                                   static_cast<int>(size) - 1,
                                   last.ToDouble()};
      }
    }
    for (size_t i = 1; i + 1 < size; ++i) {
      Rational slack = coeff * mechanism.At(i, j) -
                       alpha * (mechanism.At(i - 1, j) +
                                mechanism.At(i + 1, j));
      if (slack.IsNegative()) {
        return DerivabilityVerdict{false, static_cast<int>(j),
                                   static_cast<int>(i), slack.ToDouble()};
      }
    }
  }
  DerivabilityVerdict verdict;
  verdict.derivable = true;
  return verdict;
}

Result<Matrix> DeriveInteraction(const Mechanism& mechanism, double alpha,
                                 double tol) {
  GEOPRIV_ASSIGN_OR_RETURN(
      Matrix ginv, GeometricMechanism::BuildInverse(mechanism.n(), alpha));
  Matrix t = ginv * mechanism.matrix();
  // Clean round-off, then insist on stochasticity: Theorem 2 says this is
  // exactly the derivability test.
  for (size_t i = 0; i < t.rows(); ++i) {
    for (size_t j = 0; j < t.cols(); ++j) {
      if (t.At(i, j) < 0.0 && t.At(i, j) > -tol) t.At(i, j) = 0.0;
    }
  }
  if (!t.IsRowStochastic(tol)) {
    return Status::FailedPrecondition(
        "mechanism is not derivable from the geometric mechanism "
        "(G^{-1}M has a negative entry)");
  }
  return t;
}

Result<RationalMatrix> DeriveInteractionExact(const RationalMatrix& mechanism,
                                              const Rational& alpha) {
  if (mechanism.rows() != mechanism.cols() || mechanism.rows() < 2) {
    return Status::InvalidArgument("mechanism must be square with n >= 1");
  }
  const int n = static_cast<int>(mechanism.rows()) - 1;
  GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix ginv,
                           GeometricMechanism::BuildExactInverse(n, alpha));
  RationalMatrix t = ginv * mechanism;
  if (!t.IsRowStochastic()) {
    return Status::FailedPrecondition(
        "mechanism is not derivable from the geometric mechanism "
        "(exact G^{-1}M has a negative entry or a row not summing to 1)");
  }
  return t;
}

Result<Matrix> PrivacyTransition(int n, double alpha, double beta,
                                 double tol) {
  if (beta < alpha) {
    return Status::FailedPrecondition(
        "Lemma 3 requires alpha <= beta: post-processing can only add "
        "privacy");
  }
  GEOPRIV_ASSIGN_OR_RETURN(GeometricMechanism geo,
                           GeometricMechanism::Create(n, beta));
  GEOPRIV_ASSIGN_OR_RETURN(Mechanism target, geo.ToMechanism());
  return DeriveInteraction(target, alpha, tol);
}

Result<RationalMatrix> PrivacyTransitionExact(int n, const Rational& alpha,
                                              const Rational& beta) {
  if (beta < alpha) {
    return Status::FailedPrecondition(
        "Lemma 3 requires alpha <= beta: post-processing can only add "
        "privacy");
  }
  GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix target,
                           GeometricMechanism::BuildExactMatrix(n, beta));
  return DeriveInteractionExact(target, alpha);
}

}  // namespace geopriv
