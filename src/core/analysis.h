// Mechanism analysis: the summary statistics a practitioner inspects
// before deploying a privacy mechanism.
//
// Everything here is derived from the mechanism matrix alone (no
// sampling): per-input error moments, worst-case profiles, accuracy
// curves as the privacy level varies, and head-to-head comparisons.
// The benches and the CLI build their reports on this module.

#ifndef GEOPRIV_CORE_ANALYSIS_H_
#define GEOPRIV_CORE_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/consumer.h"
#include "core/mechanism.h"
#include "util/result.h"

namespace geopriv {

/// Error moments of one input row of a mechanism.
struct RowErrorStats {
  int input = 0;
  double mean_error = 0.0;      ///< E[out - i] (signed bias)
  double mean_abs_error = 0.0;  ///< E|out - i|
  double mean_sq_error = 0.0;   ///< E[(out - i)^2]
  double prob_exact = 0.0;      ///< Pr[out == i]
};

/// Per-input error statistics for every input in {0..n}.
std::vector<RowErrorStats> ComputeRowErrorStats(const Mechanism& mechanism);

/// Worst-case (over all inputs) summary of a mechanism.
struct MechanismSummary {
  double worst_mean_abs_error = 0.0;
  double worst_mean_sq_error = 0.0;
  double worst_prob_error = 0.0;  ///< max over i of Pr[out != i]
  double max_bias_magnitude = 0.0;
  double strongest_alpha = 0.0;   ///< see StrongestAlpha (privacy.h)
};

/// Computes the summary (single pass over the matrix).
MechanismSummary Summarize(const Mechanism& mechanism);

/// One point of a privacy-utility curve.
struct TradeoffPoint {
  double alpha = 0.0;
  double loss = 0.0;
};

/// Sweeps the geometric mechanism's minimax loss for `consumer` over the
/// privacy levels `alphas` (each in [0,1)); the consumer interacts
/// rationally at every level (Section 2.4.3 LP).  This is the
/// privacy-utility trade-off curve of the Introduction.
Result<std::vector<TradeoffPoint>> GeometricTradeoffCurve(
    const MinimaxConsumer& consumer, const std::vector<double>& alphas);

/// Relative regret of consuming `deployed` naively instead of rationally:
/// (naive loss - rational loss) / rational loss.  Zero means
/// post-processing cannot help this consumer.
Result<double> PostProcessingRegret(const Mechanism& deployed,
                                    const MinimaxConsumer& consumer);

/// Renders ComputeRowErrorStats as an aligned text table.
std::string FormatRowErrorStats(const std::vector<RowErrorStats>& stats);

}  // namespace geopriv

#endif  // GEOPRIV_CORE_ANALYSIS_H_
