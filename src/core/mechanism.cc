#include "core/mechanism.h"

#include <cmath>

namespace geopriv {

Result<Mechanism> Mechanism::Create(Matrix probabilities, double tol) {
  if (probabilities.rows() == 0 ||
      probabilities.rows() != probabilities.cols()) {
    return Status::InvalidArgument(
        "a mechanism needs a non-empty square matrix");
  }
  if (!probabilities.IsRowStochastic(tol)) {
    return Status::InvalidArgument(
        "mechanism matrix must be row-stochastic (rows sum to 1, entries "
        ">= 0)");
  }
  return Mechanism(std::move(probabilities));
}

Result<Mechanism> Mechanism::FromExact(const RationalMatrix& probabilities) {
  if (!probabilities.IsRowStochastic()) {
    return Status::InvalidArgument(
        "exact mechanism matrix must be exactly row-stochastic");
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      Matrix m, Matrix::FromRows(probabilities.rows(), probabilities.cols(),
                                 probabilities.ToDoubles()));
  return Mechanism(std::move(m));
}

Mechanism Mechanism::Identity(int n) {
  return Mechanism(Matrix::Identity(static_cast<size_t>(n) + 1));
}

Mechanism Mechanism::Uniform(int n) {
  size_t size = static_cast<size_t>(n) + 1;
  Matrix m(size, size);
  double p = 1.0 / static_cast<double>(size);
  for (size_t i = 0; i < size; ++i) {
    for (size_t j = 0; j < size; ++j) m.At(i, j) = p;
  }
  return Mechanism(std::move(m));
}

Result<Mechanism> Mechanism::ApplyInteraction(const Matrix& interaction,
                                              double tol) const {
  if (interaction.rows() != probs_.cols() ||
      interaction.cols() != probs_.cols()) {
    return Status::InvalidArgument("interaction matrix shape mismatch");
  }
  if (!interaction.IsRowStochastic(tol)) {
    return Status::InvalidArgument(
        "a feasible interaction must be row-stochastic (Definition 3)");
  }
  return Mechanism(probs_ * interaction);
}

Result<int> Mechanism::Sample(int i, Xoshiro256& rng) const {
  if (i < 0 || i > n()) {
    return Status::OutOfRange("true count outside {0..n}");
  }
  if (!samplers_.empty()) {
    return static_cast<int>(samplers_[static_cast<size_t>(i)].Sample(rng));
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      AliasSampler sampler,
      AliasSampler::Create(probs_.Row(static_cast<size_t>(i))));
  return static_cast<int>(sampler.Sample(rng));
}

Status Mechanism::SampleBatch(const uint64_t* seeds, int i, size_t count,
                              int32_t* out) const {
  return SampleRuns(seeds, /*counts=*/nullptr, /*offsets=*/nullptr, i,
                    count, out);
}

Status Mechanism::SampleRuns(const uint64_t* seeds, const int32_t* counts,
                             const size_t* offsets, int i, size_t count,
                             int32_t* out) const {
  if (i < 0 || i > n()) {
    return Status::OutOfRange("true count outside {0..n}");
  }
  if (!tables_.empty()) {
    tables_[static_cast<size_t>(i)].SampleRuns(seeds, counts, offsets,
                                               count, out);
    return Status::OK();
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      AliasTable table,
      AliasTable::FromWeights(probs_.Row(static_cast<size_t>(i))));
  table.SampleRuns(seeds, counts, offsets, count, out);
  return Status::OK();
}

Status Mechanism::PrepareSamplers() {
  std::vector<AliasSampler> samplers;
  std::vector<AliasTable> tables;
  samplers.reserve(probs_.rows());
  tables.reserve(probs_.rows());
  for (size_t i = 0; i < probs_.rows(); ++i) {
    Result<AliasSampler> sampler = AliasSampler::Create(probs_.Row(i));
    if (!sampler.ok()) return sampler.status();
    // The u64 threshold form is quantized here, once per row, so batch
    // calls never pay a per-batch requantization.
    tables.push_back(AliasTable::FromSampler(*sampler));
    samplers.push_back(std::move(sampler).value());
  }
  samplers_ = std::move(samplers);
  tables_ = std::move(tables);
  return Status::OK();
}

Result<double> Mechanism::MaxTotalVariation(const Mechanism& other) const {
  if (other.size() != size()) {
    return Status::InvalidArgument("mechanism size mismatch");
  }
  double worst = 0.0;
  for (size_t i = 0; i < probs_.rows(); ++i) {
    double tv = 0.0;
    for (size_t j = 0; j < probs_.cols(); ++j) {
      tv += std::abs(probs_.At(i, j) - other.probs_.At(i, j));
    }
    worst = std::max(worst, 0.5 * tv);
  }
  return worst;
}

}  // namespace geopriv
