#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "rng/engine.h"
#include "service/event_loop.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace geopriv {

namespace {

CacheOptions MakeCacheOptions(const ServiceOptions& options) {
  CacheOptions cache;
  cache.shards = options.shards;
  cache.threads = options.threads;
  cache.solver = options.solver;
  cache.max_pending = options.max_pending;
  // The cache persists its own entries at publish time; the service's
  // Persist() only needs to flush the ledger.
  cache.persist_dir = options.persist_dir;
  cache.max_entries = options.max_entries;
  cache.max_bytes = options.max_bytes;
  return cache;
}

// Serializes a sync-then-read of the process registry, so two services
// (or a stats op racing a /metrics scrape) can never interleave their
// mirrored snapshots.  Process-wide on purpose: the registry it guards is.
std::mutex& MetricsSyncMu() {
  static std::mutex* const mu = new std::mutex;
  return *mu;
}

// Per-op request counters, interned once.
void RecordRequestOp(ServiceOp op) {
  if (!metrics::Enabled()) return;
  metrics::Registry* registry = metrics::Registry::Default();
  static const char* const kHelp = "Protocol requests by op";
  static metrics::Counter* const by_op[] = {
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "query"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "batch_begin"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "batch_end"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "budget"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "stats"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "metrics"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "ping"}}),
      registry->GetCounter("geopriv_requests_total", kHelp,
                           {{"op", "shutdown"}}),
  };
  by_op[static_cast<size_t>(op)]->Increment();
}

// The value of a (name, labels) pair in a Collect() snapshot; 0 if absent.
int64_t RegistryValue(const std::vector<metrics::Sample>& samples,
                      const std::string& name,
                      const metrics::Labels& labels = {}) {
  for (const metrics::Sample& sample : samples) {
    if (sample.name == name && sample.labels == labels) return sample.value;
  }
  return 0;
}

// Label values flattened into a stable key suffix for the flat-JSON
// metrics op: geopriv_solver_pivots{phase="1",start="warm"} ->
// "geopriv_solver_pivots_1_warm" (label keys are sorted by the map).
std::string FlatKey(const metrics::Sample& sample) {
  std::string key = sample.name;
  for (const auto& [label, value] : sample.labels) {
    key += "_" + value;
  }
  return key;
}

}  // namespace

// The cache (solve pool) and pipeline (sampling pool) each own a worker
// pool on purpose: ThreadPool is not reentrant, and while THIS service
// drives them strictly sequentially, both components are public API that
// embedders may drive from concurrent threads — sharing one pool would
// trade idle-thread memory for a correctness landmine.  Idle workers park
// on a condition variable and cost no CPU.
MechanismService::MechanismService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(MakeCacheOptions(options_)),
      ledger_(options_.budget_alpha),
      pipeline_(&cache_, &ledger_,
                PipelineOptions{options_.threads, /*max_batch_solves=*/0,
                                options_.cached_only, options_.retry_after_ms,
                                options_.default_deadline_ms,
                                /*time_stages=*/options_.slow_query_ms > 0}) {}

namespace {

constexpr char kLedgerFile[] = "ledger.jsonl";
constexpr char kLedgerHeader[] = "geopriv-ledger v1";

// The ledger persists as JSONL through the same flat-JSON code path the
// wire protocol uses: a header line, then one line per consumer with the
// running composition aggregates.  Spent budget MUST survive restarts —
// a floor that resets with the process would admit unbounded cumulative
// epsilon across restarts — so the service rewrites this small file after
// every batch that may have charged, not only at graceful shutdown.
std::string SerializeLedger(const BudgetLedger& ledger) {
  std::string out =
      std::string("{\"ledger\":\"") + kLedgerHeader + "\"}\n";
  char buf[64];
  for (const BudgetLedger::AccountSnapshot& account : ledger.Snapshot()) {
    out += "{\"consumer\":\"" + JsonEscape(account.consumer) + "\"";
    std::snprintf(buf, sizeof(buf), ",\"level\":%.17g",
                  account.independent_level);
    out += buf;
    out += ",\"releases\":" + std::to_string(account.independent_releases);
    std::snprintf(buf, sizeof(buf), ",\"chained_level\":%.17g",
                  account.chained_level);
    out += buf;
    out += ",\"chained_releases\":" +
           std::to_string(account.chained_releases) + "}\n";
  }
  return out;
}

Status ParseLedger(std::istream& in, BudgetLedger* ledger) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty ledger file");
  }
  GEOPRIV_ASSIGN_OR_RETURN(JsonObject header, JsonObject::Parse(line));
  GEOPRIV_ASSIGN_OR_RETURN(std::string version, header.GetString("ledger"));
  if (version != kLedgerHeader) {
    return Status::InvalidArgument("unknown ledger version '" + version +
                                   "'");
  }
  std::vector<BudgetLedger::AccountSnapshot> accounts;
  std::unordered_map<std::string, size_t> index;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // A torn/unparseable line is a hard error, never skipped: this file is
    // the budget floor's memory, and guessing at damaged accounting could
    // only err toward admitting releases the floor should refuse.
    GEOPRIV_ASSIGN_OR_RETURN(JsonObject object, JsonObject::Parse(line));
    BudgetLedger::AccountSnapshot account;
    GEOPRIV_ASSIGN_OR_RETURN(account.consumer,
                             object.GetString("consumer"));
    GEOPRIV_ASSIGN_OR_RETURN(account.independent_level,
                             object.GetDouble("level"));
    GEOPRIV_ASSIGN_OR_RETURN(int64_t releases, object.GetInt("releases"));
    GEOPRIV_ASSIGN_OR_RETURN(account.chained_level,
                             object.GetDouble("chained_level"));
    GEOPRIV_ASSIGN_OR_RETURN(int64_t chained_releases,
                             object.GetInt("chained_releases"));
    if (releases < 0 || chained_releases < 0) {
      return Status::InvalidArgument("negative release count for consumer '" +
                                     account.consumer + "'");
    }
    account.independent_releases = static_cast<uint64_t>(releases);
    account.chained_releases = static_cast<uint64_t>(chained_releases);
    // Duplicated consumer lines (a crash replayed into a concatenation, a
    // hand-merged file) keep the MOST-charged view of every field: levels
    // only fall and release counts only rise as budget is spent, so min
    // level / max count can over-charge but never under-charge — the only
    // safe direction for a privacy floor.
    auto [it, inserted] = index.emplace(account.consumer, accounts.size());
    if (inserted) {
      accounts.push_back(std::move(account));
    } else {
      BudgetLedger::AccountSnapshot& kept = accounts[it->second];
      kept.independent_level =
          std::min(kept.independent_level, account.independent_level);
      kept.independent_releases =
          std::max(kept.independent_releases, account.independent_releases);
      kept.chained_level =
          std::min(kept.chained_level, account.chained_level);
      kept.chained_releases =
          std::max(kept.chained_releases, account.chained_releases);
    }
  }
  return ledger->Restore(accounts);
}

}  // namespace

Result<int> MechanismService::LoadPersisted() {
  if (options_.persist_dir.empty()) return 0;
  GEOPRIV_ASSIGN_OR_RETURN(MechanismCache::LoadReport report,
                           cache_.LoadFromDirectory(options_.persist_dir));
  const int loaded = report.loaded;
  const std::string path = options_.persist_dir + "/" + kLedgerFile;
  // A leftover .tmp is an uncommitted rewrite from a crash mid-persist.
  // The batch it described never replied (replies only go out after the
  // rename lands), so the committed file is the consistent state; the
  // debris must go or a later crash-between-open-and-write could rename
  // stale bytes over a newer ledger.
  std::error_code ec;
  std::filesystem::remove(path + ".tmp", ec);
  std::ifstream in(path);
  if (in) {
    Status parsed = ParseLedger(in, &ledger_);
    if (!parsed.ok()) {
      return Status::InvalidArgument(path + ": " + parsed.message());
    }
  }
  return loaded;
}

Status MechanismService::PersistLedger() {
  std::lock_guard<std::mutex> lock(persist_mu_);
  return PersistLedgerLocked();
}

Status MechanismService::PersistLedgerLocked() {
  if (options_.persist_dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.persist_dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + options_.persist_dir +
                            "': " + ec.message());
  }
  // Write-then-rename: a crash mid-rewrite must leave the previous
  // snapshot intact, never an empty/torn file that bricks the next start
  // (whose only manual recovery — deleting the ledger — would reset every
  // consumer's spent budget).
  const std::string path = options_.persist_dir + "/" + kLedgerFile;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::NotFound("cannot open '" + tmp + "' for write");
    const std::string serialized = SerializeLedger(ledger_);
    // Two flushes straddling the fault point so "ledger.write" aborts with
    // the tmp genuinely torn on disk (header landed, accounts did not) —
    // the exact artifact write-then-rename exists to survive.
    const size_t header_end = serialized.find('\n') + 1;
    out.write(serialized.data(), static_cast<std::streamsize>(header_end));
    out.flush();
    GEOPRIV_INJECT_FAULT("ledger.write");
    out.write(serialized.data() + header_end,
              static_cast<std::streamsize>(serialized.size() - header_end));
    out.flush();
    if (!out) return Status::Internal("write to '" + tmp + "' failed");
  }
  GEOPRIV_INJECT_FAULT("ledger.rename");
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename '" + tmp + "': " + ec.message());
  }
  return Status::OK();
}

Status MechanismService::Persist() {
  std::lock_guard<std::mutex> lock(persist_mu_);
  if (options_.persist_dir.empty()) return Status::OK();
  // Cache entries are already durable: each one persisted (entry, basis,
  // manifest) when it was published.  Re-writing them here would only
  // double the shutdown I/O, so shutdown flushes the ledger alone.
  return PersistLedgerLocked();
}

std::string MechanismService::HandleLine(const std::string& line,
                                         bool* shutdown) {
  return HandleLine(line, &default_window_, shutdown);
}

std::string MechanismService::HandleLine(const std::string& line,
                                         BatchWindow* window,
                                         bool* shutdown) {
  if (shutdown != nullptr) *shutdown = false;
  // Blank lines are keep-alives, not requests.
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return "";
  Stopwatch parse_watch;
  Result<ServiceRequest> request = ParseRequestLine(line);
  if (!request.ok()) return FormatErrorReply("parse", request.status());
  request->parse_us = static_cast<int64_t>(parse_watch.ElapsedMicros());
  return HandleRequest(*request, window, shutdown);
}

std::string MechanismService::HandleRequest(const ServiceRequest& request,
                                            BatchWindow* window,
                                            bool* shutdown,
                                            bool cached_only) {
  if (shutdown != nullptr) *shutdown = false;
  RecordRequestOp(request.op);
  switch (request.op) {
    case ServiceOp::kPing:
      return "{\"op\":\"ping\",\"ok\":true}";

    case ServiceOp::kShutdown: {
      if (shutdown != nullptr) *shutdown = true;
      std::string out;
      if (window->open) {
        // Queries already acknowledged as "queued" must not vanish
        // silently: tell the client its window died unexecuted.
        out += FormatErrorReply(
                   "batch_end",
                   Status::FailedPrecondition(
                       "batch aborted by shutdown; " +
                       std::to_string(window->pending.size()) +
                       " queued queries dropped uncharged")) +
               "\n";
        window->Reset();
      }
      Status persisted = Persist();
      if (!persisted.ok()) return out + FormatErrorReply("shutdown", persisted);
      return out + "{\"op\":\"shutdown\",\"ok\":true}";
    }

    case ServiceOp::kStats: {
      // The stats op IS a registry read: the cache aggregates are synced
      // into the process registry and the reply is formatted from the
      // snapshot, so `stats` and `metrics` can never disagree.  The
      // sync-then-collect pair is atomic under the sync mutex.
      std::vector<metrics::Sample> samples;
      {
        std::lock_guard<std::mutex> lock(MetricsSyncMu());
        const bool was_enabled = metrics::Enabled();
        // The stats op must answer even when recording is switched off
        // for overhead measurement — force the sync writes through.
        if (!was_enabled) metrics::SetEnabled(true);
        SyncMetricsLocked();
        samples = metrics::Registry::Default()->Collect();
        if (!was_enabled) metrics::SetEnabled(false);
      }
      std::ostringstream out;
      out << "{\"op\":\"stats\",\"ok\":true,\"entries\":"
          << RegistryValue(samples, "geopriv_cache_entries")
          << ",\"hits\":" << RegistryValue(samples, "geopriv_cache_hits")
          << ",\"misses\":" << RegistryValue(samples, "geopriv_cache_misses")
          << ",\"warm_starts\":"
          << RegistryValue(samples, "geopriv_cache_warm_starts")
          << ",\"bytes\":" << RegistryValue(samples, "geopriv_cache_bytes")
          << ",\"evictions\":"
          << RegistryValue(samples, "geopriv_cache_evictions")
          << ",\"quarantined\":"
          << RegistryValue(samples, "geopriv_cache_quarantined")
          << ",\"basis_warm_reloads\":"
          << RegistryValue(samples, "geopriv_cache_basis_warm_reloads")
          << ",\"persist_failures\":"
          << RegistryValue(samples, "geopriv_cache_persist_failures") << "}";
      return out.str();
    }

    case ServiceOp::kMetrics:
      return MetricsJson();

    case ServiceOp::kBudget: {
      char buf[64];
      std::string out = "{\"op\":\"budget\",\"ok\":true,\"consumer\":\"" +
                        JsonEscape(request.consumer) + "\"";
      std::snprintf(buf, sizeof(buf), ",\"level\":%.17g",
                    ledger_.Level(request.consumer));
      out += buf;
      out += ",\"releases\":" + std::to_string(
                                    ledger_.Releases(request.consumer));
      std::snprintf(buf, sizeof(buf), ",\"budget\":%.17g", ledger_.budget());
      out += buf;
      return out + "}";
    }

    case ServiceOp::kBatchBegin:
      if (window->open) {
        return FormatErrorReply(
            "batch_begin",
            Status::FailedPrecondition("a batch is already open"));
      }
      window->open = true;
      window->pending.clear();
      return "{\"op\":\"batch_begin\",\"ok\":true}";

    case ServiceOp::kBatchEnd: {
      if (!window->open) {
        return FormatErrorReply(
            "batch_end", Status::FailedPrecondition("no batch is open"));
      }
      window->open = false;
      std::vector<ServiceQuery> batch = std::move(window->pending);
      window->pending.clear();
      Stopwatch handle_watch;
      std::vector<ServiceReply> replies =
          pipeline_.ExecuteBatch(batch, cached_only);
      Stopwatch persist_watch;
      Status persisted = PersistLedgerIfCharged(replies);
      if (!persisted.ok()) {
        // The charges happened but could not be made durable: withhold the
        // released values rather than risk re-admitting them after a crash.
        return FormatErrorReply("persist", persisted);
      }
      const int64_t persist_us =
          static_cast<int64_t>(persist_watch.ElapsedMicros());
      // Transport spans: parse/queue describe the batch_end line itself;
      // the persist span is batch-level like the pipeline stages.
      const int64_t total_us = request.parse_us + request.queue_us +
                               static_cast<int64_t>(
                                   handle_watch.ElapsedMicros());
      // Columnar reply encoding: one reserved buffer, every reply
      // serialized in place (protocol.h AppendQueryReply) — no per-reply
      // temporary strings on the batch path.
      std::string out;
      out.reserve(batch.size() * 192);
      for (size_t q = 0; q < batch.size(); ++q) {
        ServiceReply& reply = replies[q];
        reply.trace_parse_us = request.parse_us;
        reply.trace_queue_us = request.queue_us;
        reply.trace_persist_us = persist_us;
        MaybeLogSlowQuery(batch[q], reply, total_us);
        AppendQueryReply(batch[q], reply, &out);
        out += '\n';
      }
      out += "{\"op\":\"batch_end\",\"ok\":true,\"batched\":" +
             std::to_string(batch.size()) + "}";
      return out;
    }

    case ServiceOp::kQuery:
      break;
  }

  if (window->open) {
    // Bounded window: an endless stream of queued queries must not grow
    // daemon memory without limit (same unauthenticated-DoS class as the
    // protocol's n ceiling).  The cap is per connection — the event loop
    // keeps many windows open at once, each bounded on its own.
    constexpr size_t kMaxBatch = 4096;
    if (window->pending.size() >= kMaxBatch) {
      return FormatErrorReply(
          "query", Status::FailedPrecondition(
                       "batch window is full (" +
                       std::to_string(kMaxBatch) +
                       " queries); send batch_end"));
    }
    window->pending.push_back(request.query);
    return "{\"op\":\"queued\",\"ok\":true,\"index\":" +
           std::to_string(window->pending.size() - 1) + "}";
  }
  Stopwatch handle_watch;
  std::vector<ServiceReply> replies =
      pipeline_.ExecuteBatch({request.query}, cached_only);
  Stopwatch persist_watch;
  Status persisted = PersistLedgerIfCharged(replies);
  if (!persisted.ok()) return FormatErrorReply("persist", persisted);
  ServiceReply& reply = replies.front();
  reply.trace_parse_us = request.parse_us;
  reply.trace_queue_us = request.queue_us;
  reply.trace_persist_us = static_cast<int64_t>(persist_watch.ElapsedMicros());
  if (options_.slow_query_ms > 0) {
    MaybeLogSlowQuery(request.query, reply,
                      request.parse_us + request.queue_us +
                          static_cast<int64_t>(handle_watch.ElapsedMicros()));
  }
  return FormatQueryReply(request.query, reply);
}

Status MechanismService::PersistLedgerIfCharged(
    const std::vector<ServiceReply>& replies) {
  // Rejected-only batches changed no ledger state: skip the rewrite so an
  // over-budget consumer cannot put disk I/O on the hot path.
  for (const ServiceReply& reply : replies) {
    if (reply.charged) return PersistLedger();
  }
  return Status::OK();
}

void MechanismService::SyncMetricsLocked() {
  // The cache keeps its own authoritative counters (tests assert on
  // GetStats() directly); the registry carries mirrors, refreshed here so
  // every exposition path — stats op, metrics op, GET /metrics — reads
  // one source.  Mirrored values are gauges: they are set absolutely,
  // and with several services in one process (tests) the last sync wins,
  // which the sync mutex makes atomic per read.
  metrics::Registry* registry = metrics::Registry::Default();
  struct Mirror {
    metrics::Gauge* entries;
    metrics::Gauge* bytes;
    metrics::Gauge* hits;
    metrics::Gauge* misses;
    metrics::Gauge* warm_starts;
    metrics::Gauge* shed;
    metrics::Gauge* timeouts;
    metrics::Gauge* evictions;
    metrics::Gauge* quarantined;
    metrics::Gauge* basis_warm_reloads;
    metrics::Gauge* persist_failures;
    metrics::Gauge* pending_solves;
    metrics::Gauge* ledger_consumers;
  };
  static const Mirror m = {
      registry->GetGauge("geopriv_cache_entries", "Live cache entries"),
      registry->GetGauge("geopriv_cache_bytes",
                         "Serialized size of live cache entries"),
      registry->GetGauge("geopriv_cache_hits", "Cache lookups served"),
      registry->GetGauge("geopriv_cache_misses",
                         "Cache misses that ran a solve"),
      registry->GetGauge("geopriv_cache_warm_starts",
                         "Misses seeded from a cached basis"),
      registry->GetGauge("geopriv_cache_shed",
                         "Misses rejected by the admission cap"),
      registry->GetGauge("geopriv_cache_timeouts",
                         "Cache calls that hit their deadline"),
      registry->GetGauge("geopriv_cache_evictions",
                         "Entries removed by the LRU bound"),
      registry->GetGauge("geopriv_cache_quarantined",
                         "Corrupt files moved to quarantine/"),
      registry->GetGauge("geopriv_cache_basis_warm_reloads",
                         "Bases restored from disk on load"),
      registry->GetGauge("geopriv_cache_persist_failures",
                         "Entries degraded to memory-only by a failed "
                         "persist"),
      registry->GetGauge("geopriv_cache_pending_solves",
                         "Solves running or queued on the solver mutex"),
      registry->GetGauge("geopriv_ledger_consumers",
                         "Consumers with a ledger account"),
  };
  const MechanismCache::Stats stats = cache_.GetStats();
  m.entries->Set(static_cast<int64_t>(stats.entries));
  m.bytes->Set(static_cast<int64_t>(stats.bytes));
  m.hits->Set(static_cast<int64_t>(stats.hits));
  m.misses->Set(static_cast<int64_t>(stats.misses));
  m.warm_starts->Set(static_cast<int64_t>(stats.warm_starts));
  m.shed->Set(static_cast<int64_t>(stats.shed));
  m.timeouts->Set(static_cast<int64_t>(stats.timeouts));
  m.evictions->Set(static_cast<int64_t>(stats.evictions));
  m.quarantined->Set(static_cast<int64_t>(stats.quarantined));
  m.basis_warm_reloads->Set(static_cast<int64_t>(stats.basis_warm_reloads));
  m.persist_failures->Set(static_cast<int64_t>(stats.persist_failures));
  m.pending_solves->Set(static_cast<int64_t>(cache_.PendingSolves()));
  m.ledger_consumers->Set(static_cast<int64_t>(ledger_.Snapshot().size()));
}

std::string MechanismService::MetricsText() {
  std::lock_guard<std::mutex> lock(MetricsSyncMu());
  SyncMetricsLocked();
  return metrics::Registry::Default()->RenderPrometheus();
}

std::string MechanismService::MetricsJson() {
  std::vector<metrics::Sample> samples;
  {
    std::lock_guard<std::mutex> lock(MetricsSyncMu());
    SyncMetricsLocked();
    samples = metrics::Registry::Default()->Collect();
  }
  std::string out = "{\"op\":\"metrics\",\"ok\":true";
  for (const metrics::Sample& sample : samples) {
    const std::string key = FlatKey(sample);
    if (sample.type == "histogram") {
      out += ",\"" + key + "_count\":" + std::to_string(sample.count);
      out += ",\"" + key + "_sum\":" + std::to_string(sample.sum);
    } else {
      out += ",\"" + key + "\":" + std::to_string(sample.value);
    }
  }
  out += "}";
  return out;
}

void MechanismService::MaybeLogSlowQuery(const ServiceQuery& query,
                                         const ServiceReply& reply,
                                         int64_t total_us) {
  if (options_.slow_query_ms <= 0) return;
  if (total_us < options_.slow_query_ms * 1000) return;
  std::string line = "{\"slow_query\":true";
  line += ",\"consumer\":\"" + JsonEscape(query.consumer) + "\"";
  line += ",\"signature\":\"" + JsonEscape(query.signature.CanonicalKey()) +
          "\"";
  line += std::string(",\"ok\":") + (reply.status.ok() ? "true" : "false");
  line += std::string(",\"cache\":\"") + reply.cache + "\"";
  line += ",\"total_us\":" + std::to_string(total_us);
  line += ",\"parse_us\":" + std::to_string(reply.trace_parse_us);
  line += ",\"queue_us\":" + std::to_string(reply.trace_queue_us);
  line += ",\"solve_us\":" + std::to_string(reply.trace_solve_us);
  line += ",\"charge_us\":" + std::to_string(reply.trace_charge_us);
  line += ",\"sample_us\":" + std::to_string(reply.trace_sample_us);
  line += ",\"persist_us\":" + std::to_string(reply.trace_persist_us);
  line += "}\n";
  std::ostream* sink = options_.slow_query_log;
  std::lock_guard<std::mutex> lock(slow_log_mu_);
  if (sink != nullptr) {
    *sink << line << std::flush;
  } else {
    std::fputs(line.c_str(), stderr);
    std::fflush(stderr);
  }
}

Status RunServeLoop(std::istream& in, std::ostream& out,
                    MechanismService& service) {
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    const std::string response = service.HandleLine(line, &shutdown);
    if (!response.empty()) out << response << "\n" << std::flush;
  }
  // EOF without an explicit shutdown still persists: a drained stdin is
  // the daemon's normal exit in scripted (CI) sessions.  An open batch
  // window dies with the stream (nothing is listening for its replies).
  if (!shutdown) {
    service.ResetBatch();
    return service.Persist();
  }
  return Status::OK();
}

namespace {

// RAII for a POSIX fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

Status SendAll(int fd, const std::string& data) {
  // Fires for every protocol send in this process — the daemon's replies
  // and the one-shot client's request alike; tests arm it against
  // whichever side the process under test is playing.
  GEOPRIV_INJECT_FAULT("server.send");
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that disconnected without reading must yield
    // EPIPE (drop that client), not SIGPIPE (kill the daemon).
    const ssize_t k = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (k <= 0) return Status::Internal("send failed");
    sent += static_cast<size_t>(k);
  }
  return Status::OK();
}

}  // namespace

Status ServeTcp(int port, MechanismService& service, std::ostream& announce) {
  if (service.options().serial_accept) {
    return ServeTcpSerial(port, service, announce);
  }
  return ServeTcpEventLoop(port, service, announce);
}

Status ServeTcpSerial(int port, MechanismService& service,
                      std::ostream& announce) {
  // Transport failures must not lose charged budget: persist before every
  // error return (the per-batch ledger writes cover the common case; this
  // covers the solve cache too).
  const auto fail = [&service](Status status) {
    (void)service.Persist();
    return status;
  };
  Fd server;
  server.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server.fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(server.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(server.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind to 127.0.0.1:" + std::to_string(port) +
                            " failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(server.fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal("getsockname failed");
  }
  const int bound_port = ntohs(addr.sin_port);
  if (::listen(server.fd, 16) != 0) return Status::Internal("listen failed");
  announce << "geopriv_serve listening on 127.0.0.1:" << bound_port << "\n"
           << std::flush;

  bool shutdown = false;
  while (!shutdown) {
    Fd client;
    client.fd = ::accept(server.fd, nullptr, nullptr);
    if (client.fd < 0) {
      // Transient per-connection failures (a client aborting between the
      // handshake and our accept) must not take the daemon down.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return fail(Status::Internal("accept failed"));
    }
    if (fault_injection::Armed()) {
      // An injected accept failure plays the client that aborted right
      // after the handshake: this connection is dropped, the daemon lives.
      if (!fault_injection::Fire("server.accept").ok()) continue;
    }
    // Idle clients must not pin the single-threaded accept loop forever:
    // with a timeout configured, a connection that sends nothing for that
    // long is dropped (recv fails with EAGAIN below) and the daemon moves
    // on to the next accept.
    const int64_t idle_ms = service.options().idle_timeout_ms;
    if (idle_ms > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(idle_ms / 1000);
      tv.tv_usec = static_cast<suseconds_t>((idle_ms % 1000) * 1000);
      ::setsockopt(client.fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    // A send failure likewise drops only this client, never the daemon.
    bool client_alive = true;
    const auto respond = [&](const std::string& line) {
      const std::string response = service.HandleLine(line, &shutdown);
      if (!response.empty()) {
        client_alive = SendAll(client.fd, response + "\n").ok();
      }
    };
    // One protocol line is small; a client streaming unbounded bytes with
    // no newline is the same DoS class as an unbounded batch window.
    constexpr size_t kMaxLineBytes = 1 << 20;
    std::string buffer;
    char chunk[4096];
    while (client_alive && !shutdown) {
      if (fault_injection::Armed() &&
          !fault_injection::Fire("server.recv").ok()) {
        // Injected receive failure: the connection "died" mid-request.
        client_alive = false;
        break;
      }
      const ssize_t k = ::recv(client.fd, chunk, sizeof(chunk), 0);
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Idle timeout fired.  Drop without answering: a half-received
        // line is not a request, and the client stopped talking.
        client_alive = false;
        break;
      }
      if (k <= 0) break;  // client closed its write side (or error)
      buffer.append(chunk, static_cast<size_t>(k));
      if (buffer.size() > kMaxLineBytes &&
          buffer.find('\n') == std::string::npos) {
        (void)SendAll(client.fd,
                      FormatErrorReply(
                          "parse", Status::InvalidArgument(
                                       "request line exceeds 1 MiB")) +
                          "\n");
        client_alive = false;
        break;
      }
      size_t newline;
      while (client_alive && !shutdown &&
             (newline = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        respond(line);
      }
    }
    // A client that half-closes without a trailing newline still sent a
    // complete request; answer it before dropping the connection.
    if (client_alive && !shutdown && !buffer.empty()) respond(buffer);
    // Whatever batch window the client left open dies with it: the next
    // client must neither inherit queueing mode nor be able to flush (and
    // budget-charge) a stranger's buffered queries.
    service.ResetBatch();
  }
  return service.Persist();
}

Result<std::string> TcpRequest(const std::string& host, int port,
                               const std::string& line) {
  Fd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host +
                                   "' (dotted IPv4 only)");
  }
  if (::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::NotFound("cannot connect to " + host + ":" +
                            std::to_string(port));
  }
  GEOPRIV_RETURN_IF_ERROR(SendAll(sock.fd, line + "\n"));
  // Half-close: tells the server this client has no further requests, so
  // it answers what it has and closes — the client reads until EOF.
  ::shutdown(sock.fd, SHUT_WR);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t k = ::recv(sock.fd, chunk, sizeof(chunk), 0);
    if (k == 0) break;  // orderly EOF: the server answered and closed
    if (k < 0) {
      // A reset mid-response must not masquerade as a complete reply.
      return Status::Internal("connection lost while reading the response");
    }
    response.append(chunk, static_cast<size_t>(k));
  }
  while (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

namespace {

// A reply is worth retrying only when the server itself marked it
// transient: shed replies carry "error":"Unavailable".  Everything else —
// parse errors, budget rejections, deadline timeouts — is deterministic
// for this request and retrying would just repeat (or re-charge) it.
bool ReplyIsTransient(const std::string& response) {
  return response.find("\"error\":\"Unavailable\"") != std::string::npos;
}

// The server's backoff hint from a shed reply; 0 when absent.
int64_t ParseRetryAfterMs(const std::string& response) {
  const size_t at = response.find("\"retry_after_ms\":");
  if (at == std::string::npos) return 0;
  int64_t value = 0;
  size_t p = at + sizeof("\"retry_after_ms\":") - 1;
  while (p < response.size() && response[p] >= '0' && response[p] <= '9') {
    value = value * 10 + (response[p] - '0');
    if (value > 600000) return 600000;  // cap a hostile/corrupt hint
    ++p;
  }
  return value;
}

}  // namespace

Result<std::string> TcpRequestWithRetry(const std::string& host, int port,
                                        const std::string& line,
                                        const RetryOptions& retry) {
  const int attempts = std::max(1, retry.attempts);
  Xoshiro256 jitter(retry.jitter_seed);
  int64_t backoff = std::max<int64_t>(1, retry.base_backoff_ms);
  const int64_t cap = std::max<int64_t>(1, retry.max_backoff_ms);
  Status last = Status::Internal("retry loop made no attempt");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Result<std::string> response = TcpRequest(host, port, line);
    int64_t floor_ms = 0;
    if (response.ok()) {
      if (!ReplyIsTransient(*response)) return response;
      if (attempt + 1 == attempts) {
        // Out of attempts: hand back the shed reply itself, not a
        // client-invented error — it carries the server's own hint.
        return response;
      }
      floor_ms = ParseRetryAfterMs(*response);
      last = Status::Unavailable("server shed the request");
    } else {
      // Bad host is the caller's bug, not the network's; fail fast.
      if (response.status().code() == StatusCode::kInvalidArgument) {
        return response;
      }
      last = response.status();
    }
    if (attempt + 1 == attempts) break;
    // Capped exponential backoff with FULL jitter — uniform in
    // [0, backoff], floored at the server's retry_after_ms so a shed herd
    // spreads out instead of re-converging on the same tick.
    const int64_t jittered =
        static_cast<int64_t>(jitter.Next() % static_cast<uint64_t>(backoff + 1));
    const int64_t wait = std::max(jittered, floor_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    backoff = std::min(backoff * 2, cap);
  }
  return last;
}

}  // namespace geopriv
