// Per-consumer privacy-budget accounting for the mechanism service.
//
// Every release the service grants a consumer weakens that consumer's
// guarantee about the database: k independent releases at levels
// alpha_1..alpha_k compose to the product (ComposeSequential), while the
// releases inside one Algorithm-1 chain cost only their best level
// (ComposeChained, Lemma 4).  The ledger tracks both streams per consumer:
//
//   composed level = ComposeSequential(independent releases)
//                    x ComposeChained(chained releases)   (when any exist)
//
// and enforces a floor: a configured budget alpha_B below which no
// consumer's composed level may drop (alpha = e^-eps, so a *lower* alpha
// is a *weaker* guarantee — the floor caps cumulative epsilon at
// -ln(alpha_B)).  A query that would cross the floor is rejected and NOT
// charged; the decision reports the exact level the release would have
// composed to, so the consumer can renegotiate instead of guessing.
//
// Thread-safe; composition arithmetic delegates to core/accounting.h so
// the ledger can never drift from the library's composition semantics.

#ifndef GEOPRIV_SERVICE_BUDGET_LEDGER_H_
#define GEOPRIV_SERVICE_BUDGET_LEDGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace geopriv {

/// Outcome of a charge (or preview): whether the release fits the budget
/// and the exact arithmetic behind the answer.
struct BudgetDecision {
  bool allowed = false;
  double composed_level = 1.0;  ///< level after the proposed release
  double current_level = 1.0;   ///< level before it
  double budget = 0.0;          ///< the configured floor
};

class BudgetLedger {
 public:
  /// `budget_alpha` is the floor in [0, 1]; 0 admits everything (the
  /// ledger still tracks levels).  Values outside [0, 1] are clamped.
  explicit BudgetLedger(double budget_alpha = 0.0);

  /// Records a release at level `alpha` for `consumer` if it fits the
  /// budget; otherwise leaves the account untouched.  `chained` marks the
  /// release as part of the consumer's Algorithm-1 chain (min-composition)
  /// rather than an independent release (product-composition).  Fails on
  /// alpha outside [0, 1]; an over-budget query is NOT a failure — it
  /// returns allowed == false with the exact composed level.
  Result<BudgetDecision> Charge(const std::string& consumer, double alpha,
                                bool chained = false);

  /// Atomically records `k` independent releases at level `alpha` — the
  /// multi-sample query's charge.  The k levels are folded sequentially
  /// (the same left-fold k Charge calls would run, bit for bit; k == 1
  /// IS Charge), and because sequential composition never raises a
  /// level, checking the final composed level against the budget admits
  /// exactly the set of k-step sequences whose every step fits.  All k
  /// releases are admitted together or the account is left untouched:
  /// a K-sample query never partially releases.
  Result<BudgetDecision> ChargeMany(const std::string& consumer,
                                    double alpha, uint64_t k);

  /// Same arithmetic as Charge without recording anything.
  Result<BudgetDecision> Preview(const std::string& consumer, double alpha,
                                 bool chained = false) const;

  /// The consumer's current composed level (1.0 for unknown consumers).
  double Level(const std::string& consumer) const;

  /// Number of releases charged to `consumer` so far.
  uint64_t Releases(const std::string& consumer) const;

  double budget() const { return budget_; }

  /// One consumer's composed state, for persistence snapshots.  The
  /// ledger keeps running aggregates, not release histories: the product
  /// (ComposeSequential is a left fold of products) and the min
  /// (ComposeChained) compose new releases in O(1) with bit-identical
  /// results, and accounts stay bounded no matter how long a consumer
  /// lives.
  struct AccountSnapshot {
    std::string consumer;
    double independent_level = 1.0;    ///< Πα over independent releases
    uint64_t independent_releases = 0;
    double chained_level = 1.0;        ///< min α over the chain (1 if none)
    uint64_t chained_releases = 0;
  };

  /// Every account, sorted by consumer name (deterministic files).  The
  /// daemon persists this next to the solve cache so spent budget
  /// survives restarts — otherwise the floor would reset with the process
  /// and cumulative epsilon would be unbounded across restarts.
  std::vector<AccountSnapshot> Snapshot() const;

  /// Replaces the ledger's state with `accounts`.  Fails (leaving the
  /// ledger untouched) when any recorded level is outside [0, 1].
  Status Restore(const std::vector<AccountSnapshot>& accounts);

 private:
  struct Account {
    double independent_level = 1.0;
    uint64_t independent_releases = 0;
    double chained_level = 1.0;
    uint64_t chained_releases = 0;
  };

  /// The account's per-stream levels with the proposed alpha folded into
  /// the selected stream (no fold when alpha < 0).  The admission check
  /// AND the state recorded on success both come from this one
  /// computation, so decision and ledger can never diverge.
  struct FoldedLevels {
    double independent = 1.0;
    double chained = 1.0;
  };
  static Result<FoldedLevels> Fold(const Account& account, double alpha,
                                   bool chained);

  /// The full admission decision for one proposed release — Charge and
  /// Preview share this one implementation (differing only in whether the
  /// folded levels get recorded), so their arithmetic cannot drift.
  Result<FoldedLevels> Decide(const Account& account, double alpha,
                              bool chained, BudgetDecision* decision) const;

  double budget_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Account> accounts_;
};

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_BUDGET_LEDGER_H_
