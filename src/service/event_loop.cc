#include "service/event_loop.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "service/protocol.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace geopriv {

namespace {

// Event-loop metrics, interned once.  Everything here updates off the
// per-query hot path (loop wakeups, accepts, sheds, drops) except the
// send histogram, whose two clock reads ride on a send(2) syscall.
struct LoopMetrics {
  metrics::Histogram* wait_us;
  metrics::Histogram* send_us;
  metrics::Gauge* queue_depth;
  metrics::Gauge* connections_open;
  metrics::Counter* connections_accepted;
  metrics::Counter* idle_dropped;
  metrics::Counter* backpressure;
  metrics::Counter* shed_executor_queue;

  static const LoopMetrics& Get() {
    static const LoopMetrics m = [] {
      metrics::Registry* registry = metrics::Registry::Default();
      LoopMetrics out;
      out.wait_us = registry->GetHistogram(
          "geopriv_eventloop_wait_us",
          "Time the I/O thread spent blocked in the poller per wakeup, "
          "microseconds");
      out.send_us = registry->GetHistogram(
          "geopriv_send_us", "Reply send (outbox flush) time, microseconds");
      out.queue_depth = registry->GetGauge(
          "geopriv_executor_queue_depth",
          "Batch-executor jobs queued at the last loop wakeup");
      out.connections_open = registry->GetGauge(
          "geopriv_connections_open", "Connections currently open");
      out.connections_accepted = registry->GetCounter(
          "geopriv_connections_accepted_total", "Connections accepted");
      out.idle_dropped = registry->GetCounter(
          "geopriv_connections_idle_dropped_total",
          "Connections dropped by the idle timeout");
      out.backpressure = registry->GetCounter(
          "geopriv_outbox_backpressure_total",
          "Reply flushes that left residual bytes waiting for writability");
      out.shed_executor_queue = registry->GetCounter(
          "geopriv_sheds_total", "Requests shed, by cause",
          {{"cause", "executor_queue"}});
      return out;
    }();
    return m;
  }
};

// One protocol line is small; a client streaming unbounded bytes with no
// newline is the same DoS class as an unbounded batch window.  Same cap as
// the serial loop.
constexpr size_t kMaxLineBytes = 1 << 20;

// Executor admission bound: decoded batches queued beyond this are shed
// with Unavailable + retry_after_ms instead of growing an unbounded queue
// behind a slow solve.  Shedding happens here, per admission — connections
// themselves are always accepted.
constexpr size_t kMaxQueuedJobs = 256;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// ---- Readiness demultiplexer: epoll with a poll(2) fallback -----------------
//
// epoll is O(ready) per wakeup and the natural Linux backend; the poll
// path keeps the daemon portable and is runtime-selectable with
// GEOPRIV_FORCE_POLL=1 so the fallback stays tested on Linux CI.
class Poller {
 public:
  enum : uint32_t { kRead = 1u, kWrite = 2u };
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  // EPOLLERR/EPOLLHUP — the peer is gone or broken
  };

  Poller() {
#ifdef __linux__
    const char* force = std::getenv("GEOPRIV_FORCE_POLL");
    if (force == nullptr || force[0] != '1') {
      epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    }
#endif
  }
  ~Poller() {
    if (epfd_ >= 0) ::close(epfd_);
  }
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool Add(int fd, uint32_t mask) {
    interest_[fd] = mask;
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev{};
      ev.events = ToEpoll(mask);
      ev.data.fd = fd;
      return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    }
#endif
    return true;
  }

  bool Modify(int fd, uint32_t mask) {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return false;
    if (it->second == mask) return true;
    it->second = mask;
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev{};
      ev.events = ToEpoll(mask);
      ev.data.fd = fd;
      return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
    }
#endif
    return true;
  }

  void Remove(int fd) {
    interest_.erase(fd);
#ifdef __linux__
    if (epfd_ >= 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  }

  /// Waits up to `timeout_ms` (-1 = forever) and fills `out` with the
  /// ready set.  Returns false on an unrecoverable demultiplexer error.
  bool Wait(int timeout_ms, std::vector<Event>* out) {
    out->clear();
#ifdef __linux__
    if (epfd_ >= 0) {
      std::array<epoll_event, 256> ready;
      const int n = ::epoll_wait(epfd_, ready.data(),
                                 static_cast<int>(ready.size()), timeout_ms);
      if (n < 0) return errno == EINTR;
      for (int i = 0; i < n; ++i) {
        Event event;
        event.fd = ready[i].data.fd;
        event.readable = (ready[i].events & EPOLLIN) != 0;
        event.writable = (ready[i].events & EPOLLOUT) != 0;
        event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        out->push_back(event);
      }
      return true;
    }
#endif
    pollfds_.clear();
    for (const auto& [fd, mask] : interest_) {
      pollfd p{};
      p.fd = fd;
      if (mask & kRead) p.events |= POLLIN;
      if (mask & kWrite) p.events |= POLLOUT;
      pollfds_.push_back(p);
    }
    const int n = ::poll(pollfds_.data(),
                         static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) return errno == EINTR;
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      Event event;
      event.fd = p.fd;
      event.readable = (p.revents & POLLIN) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(event);
    }
    return true;
  }

 private:
#ifdef __linux__
  static uint32_t ToEpoll(uint32_t mask) {
    uint32_t events = 0;
    if (mask & kRead) events |= EPOLLIN;
    if (mask & kWrite) events |= EPOLLOUT;
    return events;
  }
  int epfd_ = -1;
#endif
  std::unordered_map<int, uint32_t> interest_;
  std::vector<pollfd> pollfds_;
};

// ---- Idle-connection timer wheel --------------------------------------------
//
// Replaces the serial loop's per-client SO_RCVTIMEO: one wheel holds every
// idle deadline, Arm/Cancel are O(1), and each tick only touches the due
// bucket.  Cancellation is lazy — a bucket entry whose stored deadline no
// longer matches the armed deadline is stale and dropped when its bucket
// comes due, so re-arming on every received byte costs no removal scan.
class TimerWheel {
 public:
  explicit TimerWheel(int64_t timeout_ms)
      : timeout_ms_(timeout_ms),
        tick_ms_(std::max<int64_t>(1, timeout_ms / 16)) {}

  int64_t tick_ms() const { return tick_ms_; }
  bool AnyArmed() const { return !armed_.empty(); }

  void Arm(int fd, int64_t now_ms) {
    const int64_t deadline = now_ms + timeout_ms_;
    armed_[fd] = deadline;
    Bucket(deadline).push_back({fd, deadline});
  }

  void Cancel(int fd) { armed_.erase(fd); }

  /// Appends every fd whose armed deadline passed to `expired` and disarms
  /// it.  Sweeps only the buckets that became due since the last call
  /// (capped at one full lap).
  void Expire(int64_t now_ms, std::vector<int>* expired) {
    if (last_ms_ == 0) last_ms_ = now_ms;
    int64_t t = std::max(last_ms_,
                         now_ms - tick_ms_ * static_cast<int64_t>(kBuckets - 1));
    for (; t <= now_ms; t += tick_ms_) {
      std::vector<std::pair<int, int64_t>>& bucket = Bucket(t);
      size_t keep = 0;
      for (const std::pair<int, int64_t>& entry : bucket) {
        auto it = armed_.find(entry.first);
        if (it == armed_.end() || it->second != entry.second) continue;
        if (entry.second <= now_ms) {
          armed_.erase(it);
          expired->push_back(entry.first);
        } else {
          bucket[keep++] = entry;  // a future lap of the same slot
        }
      }
      bucket.resize(keep);
    }
    last_ms_ = now_ms;
  }

 private:
  static constexpr size_t kBuckets = 64;
  std::vector<std::pair<int, int64_t>>& Bucket(int64_t ms) {
    return buckets_[static_cast<size_t>((ms / tick_ms_) %
                                        static_cast<int64_t>(kBuckets))];
  }

  int64_t timeout_ms_;
  int64_t tick_ms_;
  int64_t last_ms_ = 0;
  std::array<std::vector<std::pair<int, int64_t>>, kBuckets> buckets_;
  std::unordered_map<int, int64_t> armed_;
};

// ---- Batch executor ---------------------------------------------------------
//
// Solve-bearing work runs here so the I/O thread never blocks on the
// solver mutex.  One job per connection may be in flight at a time (the
// loop stops parsing a connection's buffer while it is busy), so a worker
// owns the connection's BatchWindow for the duration of its job.
struct Job {
  int fd = -1;
  ServiceRequest request;
  BatchWindow* window = nullptr;
  int64_t enqueued_us = 0;  ///< steady-clock stamp at Submit, for queue_us
};

struct Completion {
  int fd = -1;
  std::string response;
};

class Executor {
 public:
  Executor(MechanismService& service, int workers, int wake_fd)
      : service_(service), wake_fd_(wake_fd) {
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }
  ~Executor() { Stop(); }

  /// Lets queued jobs finish, then joins the workers.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  size_t QueueDepth() {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
  }

  void Submit(Job job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
    }
    work_cv_.notify_one();
  }

  std::vector<Completion> DrainCompletions() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(completions_);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop requested and queue drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      // The shutdown op is classified inline-only, so workers never see it
      // and the shutdown flag can be dropped here.
      job.request.queue_us = NowMicros() - job.enqueued_us;
      {
        static metrics::Histogram* const queue_wait =
            metrics::Registry::Default()->GetHistogram(
                "geopriv_executor_queue_wait_us",
                "Executor queue wait per dispatched job, microseconds");
        queue_wait->Observe(job.request.queue_us);
      }
      std::string response =
          service_.HandleRequest(job.request, job.window, nullptr);
      {
        std::lock_guard<std::mutex> lock(mu_);
        completions_.push_back({job.fd, std::move(response)});
      }
      const char byte = 1;
      // A full wake pipe is fine: the loop drains completions on every
      // wakeup, so one pending byte already guarantees delivery.
      (void)!::write(wake_fd_, &byte, 1);
    }
  }

  MechanismService& service_;
  const int wake_fd_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> jobs_;
  std::vector<Completion> completions_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// ---- Per-connection state ---------------------------------------------------

struct Connection {
  int fd = -1;
  bool http = false;  // a metrics-endpoint connection, not a protocol one
  BatchWindow window;
  std::string inbox;   // received, not yet parsed
  std::string outbox;  // formatted, not yet sent
  size_t out_off = 0;
  bool busy = false;     // a job for this connection is queued or running
  bool eof = false;      // peer half-closed; answer what it sent, then close
  bool closing = false;  // no further input; close once the outbox drains
  bool doomed = false;   // hard drop (transport/fault failure); no flush owed
  bool oversized = false;  // unterminated line exceeded the cap; error owed
  uint32_t interest = 0;  // mask currently registered with the poller
};

// RAII for a POSIX fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

// ---- The loop ---------------------------------------------------------------

class EventLoopServer {
 public:
  EventLoopServer(MechanismService& service, std::ostream& announce)
      : service_(service), announce_(announce) {}

  Status Serve(int port) {
    GEOPRIV_RETURN_IF_ERROR(Listen(port));
    if (service_.options().metrics_port >= 0) {
      GEOPRIV_RETURN_IF_ERROR(ListenMetrics(service_.options().metrics_port));
    }
    if (::pipe(wake_pipe_) != 0) {
      return Status::Internal("pipe() failed");
    }
    Fd wake_rd{wake_pipe_[0]};
    Fd wake_wr{wake_pipe_[1]};
    SetNonBlocking(wake_rd.fd);
    SetNonBlocking(wake_wr.fd);

    poller_.Add(listen_.fd, Poller::kRead);
    if (metrics_listen_.fd >= 0) poller_.Add(metrics_listen_.fd, Poller::kRead);
    poller_.Add(wake_rd.fd, Poller::kRead);

    const int64_t idle_ms = service_.options().idle_timeout_ms;
    if (idle_ms > 0) wheel_ = std::make_unique<TimerWheel>(idle_ms);

    Executor executor(service_, Workers(), wake_wr.fd);
    executor_ = &executor;

    std::vector<Poller::Event> events;
    std::vector<int> expired;
    while (!(draining_ && conns_.empty())) {
      int timeout_ms = -1;
      if (wheel_ != nullptr && wheel_->AnyArmed()) {
        timeout_ms = static_cast<int>(wheel_->tick_ms());
      }
      // Drain is completion-driven, but a bounded tick keeps it live even
      // if a wake byte is ever lost.
      if (draining_) timeout_ms = 50;
      Stopwatch wait_watch;
      if (!poller_.Wait(timeout_ms, &events)) {
        break;  // demultiplexer failure: fall through to drain + persist
      }
      const LoopMetrics& lm = LoopMetrics::Get();
      if (metrics::Enabled()) {
        lm.wait_us->Observe(
            static_cast<int64_t>(wait_watch.ElapsedMicros()));
        lm.queue_depth->Set(
            static_cast<int64_t>(executor.QueueDepth()));
      }
      for (const Poller::Event& event : events) {
        if (event.fd == wake_rd.fd) {
          char sink[256];
          while (::read(wake_rd.fd, sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (event.fd == listen_.fd) {
          AcceptReady(listen_.fd, /*http=*/false);
          continue;
        }
        if (metrics_listen_.fd >= 0 && event.fd == metrics_listen_.fd) {
          AcceptReady(metrics_listen_.fd, /*http=*/true);
          continue;
        }
        HandleConnEvent(event);
      }
      for (Completion& done : executor.DrainCompletions()) {
        HandleCompletion(done);
      }
      if (wheel_ != nullptr) {
        expired.clear();
        wheel_->Expire(NowMs(), &expired);
        for (int fd : expired) HandleIdleExpiry(fd);
      }
    }

    // All connections are gone; queued jobs (if any) finished with them.
    executor.Stop();
    executor_ = nullptr;
    return service_.Persist();
  }

 private:
  int Workers() const {
    int workers = service_.options().workers;
    if (workers <= 0) {
      int hw = static_cast<int>(std::thread::hardware_concurrency());
      if (hw < 1) hw = 1;
      workers = std::min(8, std::max(2, hw / 2));
    }
    return workers;
  }

  Status Listen(int port) {
    listen_.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_.fd < 0) return Status::Internal("socket() failed");
    const int one = 1;
    ::setsockopt(listen_.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(listen_.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Internal("bind to 127.0.0.1:" + std::to_string(port) +
                              " failed");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_.fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return Status::Internal("getsockname failed");
    }
    if (::listen(listen_.fd, 128) != 0) {
      return Status::Internal("listen failed");
    }
    if (!SetNonBlocking(listen_.fd)) {
      return Status::Internal("cannot make the listen socket nonblocking");
    }
    announce_ << "geopriv_serve listening on 127.0.0.1:"
              << ntohs(addr.sin_port) << "\n"
              << std::flush;
    return Status::OK();
  }

  /// Loopback HTTP listener for GET /metrics, served by the same loop.
  Status ListenMetrics(int port) {
    metrics_listen_.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (metrics_listen_.fd < 0) {
      return Status::Internal("metrics socket() failed");
    }
    const int one = 1;
    ::setsockopt(metrics_listen_.fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(metrics_listen_.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Internal("metrics bind to 127.0.0.1:" +
                              std::to_string(port) + " failed");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(metrics_listen_.fd,
                      reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return Status::Internal("metrics getsockname failed");
    }
    if (::listen(metrics_listen_.fd, 16) != 0) {
      return Status::Internal("metrics listen failed");
    }
    if (!SetNonBlocking(metrics_listen_.fd)) {
      return Status::Internal("cannot make the metrics socket nonblocking");
    }
    announce_ << "geopriv_serve metrics on 127.0.0.1:" << ntohs(addr.sin_port)
              << "\n"
              << std::flush;
    return Status::OK();
  }

  void AcceptReady(int listen_fd, bool http) {
    for (;;) {
      const int cfd = ::accept(listen_fd, nullptr, nullptr);
      if (cfd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        // Transient per-connection failures (a client aborting between the
        // handshake and our accept, fd pressure) never take the daemon
        // down — there is no client to lose yet.
        return;
      }
      if (fault_injection::Armed() &&
          !fault_injection::Fire("server.accept").ok()) {
        // An injected accept failure plays the client that aborted right
        // after the handshake: this connection is dropped, the daemon
        // lives.
        ::close(cfd);
        continue;
      }
      if (draining_ || !SetNonBlocking(cfd)) {
        ::close(cfd);
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = cfd;
      conn->http = http;
      conn->interest = Poller::kRead;
      poller_.Add(cfd, Poller::kRead);
      if (wheel_ != nullptr) wheel_->Arm(cfd, NowMs());
      conns_.emplace(cfd, std::move(conn));
      if (metrics::Enabled()) {
        const LoopMetrics& lm = LoopMetrics::Get();
        lm.connections_accepted->Increment();
        lm.connections_open->Add(1);
      }
    }
  }

  void HandleConnEvent(const Poller::Event& event) {
    auto it = conns_.find(event.fd);
    if (it == conns_.end()) return;
    Connection& conn = *it->second;
    if (event.error) conn.doomed = true;
    if (!conn.doomed && event.writable) {
      if (!FlushOutbox(conn)) conn.doomed = true;
    }
    if (!conn.doomed && event.readable && !conn.closing) {
      ReadReady(conn);
    }
    ProcessBuffered(event.fd);
    Maintain(event.fd);
  }

  void ReadReady(Connection& conn) {
    bool got_bytes = false;
    char chunk[65536];
    while (!conn.busy && !conn.doomed && !conn.eof && !conn.oversized) {
      if (fault_injection::Armed() &&
          !fault_injection::Fire("server.recv").ok()) {
        // Injected receive failure: the connection "died" mid-request.  A
        // half-received line is dropped unanswered, like the serial loop.
        conn.doomed = true;
        break;
      }
      const ssize_t k = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (k > 0) {
        got_bytes = true;
        conn.inbox.append(chunk, static_cast<size_t>(k));
        // The cap is per LINE: the inbox may legitimately hold more than
        // the cap as complete lines (buffered behind a busy batch), so
        // only the unterminated tail counts.  Complete lines received
        // ahead of the oversized tail are still answered — the error is
        // queued by ProcessBuffered after they execute, like the serial
        // loop's chunk-at-a-time ordering.
        const size_t last_nl = conn.inbox.rfind('\n');
        const size_t tail = last_nl == std::string::npos
                                ? conn.inbox.size()
                                : conn.inbox.size() - last_nl - 1;
        if (tail > kMaxLineBytes) {
          conn.oversized = true;
          break;
        }
        continue;
      }
      if (k == 0) {
        conn.eof = true;  // half-close: answer what was sent, then close
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.doomed = true;
      break;
    }
    if (got_bytes && wheel_ != nullptr && !conn.doomed) {
      wheel_->Arm(conn.fd, NowMs());
    }
  }

  /// Parses as many buffered lines as possible.  Stops when the
  /// connection goes busy (a job was dispatched — its reply must come
  /// back before later lines may run, preserving per-connection order).
  ///
  /// Looks the connection up by fd after every dispatched line: a
  /// shutdown line triggers BeginDrain, which may close and erase THIS
  /// connection before control returns here.
  void ProcessBuffered(int fd) {
    Connection* conn = FindConn(fd);
    if (conn == nullptr) return;
    if (conn->http) {
      ProcessHttp(*conn);
      return;
    }
    while (!conn->busy && !conn->doomed && !conn->closing && !draining_) {
      const size_t newline = conn->inbox.find('\n');
      if (newline == std::string::npos) break;
      std::string line = conn->inbox.substr(0, newline);
      conn->inbox.erase(0, newline + 1);
      HandleLine(*conn, line);
      conn = FindConn(fd);
      if (conn == nullptr) return;
    }
    // The oversized-line error goes out only after every complete line
    // ahead of it was answered.
    if (conn->oversized && !conn->busy && !conn->doomed && !conn->closing) {
      QueueResponse(*conn,
                    FormatErrorReply("parse",
                                     Status::InvalidArgument(
                                         "request line exceeds 1 MiB")));
      conn->inbox.clear();
      conn->closing = true;
    }
    // A client that half-closes without a trailing newline still sent a
    // complete request; answer it before dropping the connection.
    if (conn->eof && !conn->busy && !conn->doomed && !conn->closing &&
        !draining_ && !conn->inbox.empty() &&
        conn->inbox.find('\n') == std::string::npos) {
      std::string line = std::move(conn->inbox);
      conn->inbox.clear();
      HandleLine(*conn, line);
      conn = FindConn(fd);
      if (conn == nullptr) return;
    }
    if (conn->eof && !conn->busy && conn->inbox.empty()) conn->closing = true;
    if (draining_) conn->closing = true;
  }

  Connection* FindConn(int fd) {
    auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : it->second.get();
  }

  /// Minimal HTTP/1.0-style handler for the metrics listener: one request
  /// per connection, `GET /metrics` answered with the Prometheus text
  /// exposition, everything else with 404.  The response goes straight
  /// into the outbox (no protocol newline framing) and the connection
  /// closes once it drains — exactly what a scraper expects from
  /// `Connection: close`.
  void ProcessHttp(Connection& conn) {
    if (conn.closing) return;
    size_t header_end = conn.inbox.find("\r\n\r\n");
    size_t skip = 4;
    if (header_end == std::string::npos) {
      header_end = conn.inbox.find("\n\n");
      skip = 2;
    }
    if (header_end == std::string::npos) {
      // Headers incomplete.  A half-closed or oversized connection will
      // never complete them; drop it.
      if (conn.eof || conn.oversized) conn.doomed = true;
      return;
    }
    const std::string request_line =
        conn.inbox.substr(0, conn.inbox.find_first_of("\r\n"));
    conn.inbox.erase(0, header_end + skip);
    std::string status_line;
    std::string body;
    if (request_line == "GET /metrics" ||
        request_line.rfind("GET /metrics ", 0) == 0) {
      status_line = "HTTP/1.0 200 OK";
      body = service_.MetricsText();
    } else {
      status_line = "HTTP/1.0 404 Not Found";
      body = "not found: only GET /metrics is served here\n";
    }
    conn.outbox += status_line;
    conn.outbox +=
        "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
        "\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    conn.outbox += body;
    conn.closing = true;
    if (!FlushOutbox(conn)) conn.doomed = true;
  }

  void HandleLine(Connection& conn, const std::string& line) {
    // Blank lines are keep-alives, not requests.
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) return;
    Stopwatch parse_watch;
    Result<ServiceRequest> request = ParseRequestLine(line);
    if (!request.ok()) {
      QueueResponse(conn, FormatErrorReply("parse", request.status()));
      return;
    }
    request->parse_us = static_cast<int64_t>(parse_watch.ElapsedMicros());
    if (NeedsExecutor(*request, conn)) {
      if (executor_->QueueDepth() >= kMaxQueuedJobs) {
        if (metrics::Enabled()) {
          LoopMetrics::Get().shed_executor_queue->Increment();
        }
        QueueResponse(conn, ShedResponse(*request, conn));
        return;
      }
      conn.busy = true;
      executor_->Submit(
          Job{conn.fd, std::move(*request), &conn.window, NowMicros()});
      return;
    }
    bool shutdown = false;
    // cached_only=true: this work was classified as fully cached, but
    // under eviction that classification can go stale before it executes.
    // The flag makes the failure mode a transient Unavailable shed (the
    // client's retry re-classifies — now a miss — and routes through the
    // executor) instead of a cold solve stalling the I/O thread.
    QueueResponse(conn,
                  service_.HandleRequest(*request, &conn.window, &shutdown,
                                         /*cached_only=*/true));
    if (shutdown) BeginDrain();
  }

  /// True when the request may run a solve: a query (or batch_end) whose
  /// signature set is not fully cached.  Cached-signature work executes
  /// inline on the I/O thread — microseconds — so it can never queue
  /// behind another connection's slow solve.
  ///
  /// Post-eviction contract: Contains() is advisory in BOTH directions.
  /// A stale false sends already-cached work to the executor (wasted
  /// hand-off, harmless); a stale true — possible now that the LRU bound
  /// can evict between this probe and execution — runs the inline path,
  /// whose cached_only flag degrades the vanished entry to a transient
  /// Unavailable shed rather than a wrong reply or an inline cold solve.
  /// Misclassification may cost a re-route or a retry; it can never cost
  /// correctness or stall the I/O thread.
  bool NeedsExecutor(const ServiceRequest& request,
                     const Connection& conn) const {
    const MechanismCache& cache = service_.cache();
    switch (request.op) {
      case ServiceOp::kQuery:
        if (conn.window.open) return false;  // a "queued" ack, no execution
        return !cache.Contains(request.query.signature);
      case ServiceOp::kBatchEnd: {
        if (!conn.window.open) return false;  // protocol error, no execution
        for (const ServiceQuery& query : conn.window.pending) {
          if (!cache.Contains(query.signature)) return true;
        }
        return false;
      }
      default:
        return false;  // control ops never block
    }
  }

  /// Unavailable replies for an executor-queue shed, shaped exactly like
  /// the pipeline's shed replies so clients need one retry path.
  std::string ShedResponse(const ServiceRequest& request, Connection& conn) {
    const int64_t retry_ms = service_.options().retry_after_ms;
    const auto shed_one = [&](const ServiceQuery& query) {
      ServiceReply reply;
      reply.status = Status::Unavailable(
          "service executor queue is full; retry later");
      reply.retry_after_ms = retry_ms;
      reply.cache = "shed";
      reply.budget = service_.ledger().budget();
      return FormatQueryReply(query, reply);
    };
    if (request.op == ServiceOp::kQuery) return shed_one(request.query);
    // batch_end: shed every buffered query, close the window.
    std::string out;
    std::vector<ServiceQuery> batch = std::move(conn.window.pending);
    conn.window.Reset();
    for (const ServiceQuery& query : batch) {
      out += shed_one(query) + "\n";
    }
    out += "{\"op\":\"batch_end\",\"ok\":true,\"batched\":" +
           std::to_string(batch.size()) + "}";
    return out;
  }

  void HandleCompletion(Completion& done) {
    auto it = conns_.find(done.fd);
    if (it == conns_.end()) return;  // cannot happen: busy conns are kept
    Connection& conn = *it->second;
    conn.busy = false;
    if (!conn.doomed) {
      QueueResponse(conn, done.response);
      if (wheel_ != nullptr) wheel_->Arm(conn.fd, NowMs());
      ProcessBuffered(done.fd);  // more lines may already be buffered
    }
    Maintain(done.fd);
  }

  void HandleIdleExpiry(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Connection& conn = *it->second;
    if (conn.busy) {
      // Not idle — the server owes this connection a reply.  Re-arm; the
      // clock restarts when the reply is queued.
      if (wheel_ != nullptr) wheel_->Arm(fd, NowMs());
      return;
    }
    // Idle timeout: drop without answering.  A half-received line is not
    // a request, and the client stopped talking — the slow-loris case.
    if (metrics::Enabled()) LoopMetrics::Get().idle_dropped->Increment();
    conn.doomed = true;
    Maintain(fd);
  }

  void QueueResponse(Connection& conn, const std::string& response) {
    if (response.empty()) return;
    conn.outbox += response;
    conn.outbox += '\n';
    if (!FlushOutbox(conn)) conn.doomed = true;
  }

  /// Sends as much of the outbox as the socket accepts; the rest waits
  /// for writability (write backpressure).  False = the peer is gone.
  bool FlushOutbox(Connection& conn) {
    if (conn.out_off < conn.outbox.size() && fault_injection::Armed() &&
        !fault_injection::Fire("server.send").ok()) {
      // An injected send failure plays the peer that vanished mid-reply:
      // this client is dropped, the daemon lives.
      return false;
    }
    const bool timed = metrics::Enabled() && conn.out_off < conn.outbox.size();
    Stopwatch send_watch;
    while (conn.out_off < conn.outbox.size()) {
      const ssize_t k =
          ::send(conn.fd, conn.outbox.data() + conn.out_off,
                 conn.outbox.size() - conn.out_off, MSG_NOSIGNAL);
      if (k > 0) {
        conn.out_off += static_cast<size_t>(k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (k < 0 && errno == EINTR) continue;
      return false;
    }
    if (timed) {
      const LoopMetrics& lm = LoopMetrics::Get();
      lm.send_us->Observe(static_cast<int64_t>(send_watch.ElapsedMicros()));
      if (conn.out_off < conn.outbox.size()) lm.backpressure->Increment();
    }
    if (conn.out_off == conn.outbox.size()) {
      conn.outbox.clear();
      conn.out_off = 0;
    }
    return true;
  }

  /// Re-registers the poller interest and closes the connection when it
  /// has nothing left to do.  The single place a connection dies.
  void Maintain(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Connection& conn = *it->second;
    // A busy connection is kept alive even when doomed: its worker still
    // holds the BatchWindow, so the object must survive until completion.
    if (conn.busy) {
      SetInterest(conn, conn.outbox.empty() ? 0u : Poller::kWrite);
      return;
    }
    const bool flushed = conn.outbox.empty();
    if (conn.doomed || (conn.closing && flushed)) {
      poller_.Remove(fd);
      if (wheel_ != nullptr) wheel_->Cancel(fd);
      ::close(fd);
      conns_.erase(it);
      if (metrics::Enabled()) LoopMetrics::Get().connections_open->Add(-1);
      return;
    }
    uint32_t mask = 0;
    if (!conn.closing && !conn.eof && !conn.oversized && !draining_) {
      mask |= Poller::kRead;
    }
    if (!flushed) mask |= Poller::kWrite;
    SetInterest(conn, mask);
  }

  void SetInterest(Connection& conn, uint32_t mask) {
    if (conn.interest == mask) return;
    conn.interest = mask;
    poller_.Modify(conn.fd, mask);
  }

  /// Graceful drain: stop accepting, let in-flight batches finish, flush
  /// every outbox, then close.  Buffered-but-unparsed input is dropped —
  /// exactly like the serial loop, where shutdown stopped service for
  /// every other client immediately.
  void BeginDrain() {
    if (draining_) return;
    draining_ = true;
    poller_.Remove(listen_.fd);
    ::close(listen_.fd);
    listen_.fd = -1;
    if (metrics_listen_.fd >= 0) {
      poller_.Remove(metrics_listen_.fd);
      ::close(metrics_listen_.fd);
      metrics_listen_.fd = -1;
    }
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      it->second->closing = true;
      Maintain(fd);
    }
  }

  MechanismService& service_;
  std::ostream& announce_;
  Poller poller_;
  Fd listen_;
  Fd metrics_listen_;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<TimerWheel> wheel_;
  Executor* executor_ = nullptr;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  bool draining_ = false;
};

}  // namespace

Status ServeTcpEventLoop(int port, MechanismService& service,
                         std::ostream& announce) {
  EventLoopServer server(service, announce);
  Status served = server.Serve(port);
  if (!served.ok()) {
    // Transport failures must not lose charged budget: persist before the
    // error surfaces (mirrors the serial loop).
    (void)service.Persist();
  }
  return served;
}

}  // namespace geopriv
