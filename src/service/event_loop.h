// Concurrent TCP transport for the mechanism service.
//
// The PR-4 daemon served TCP clients one at a time, so the system's
// throughput ceiling was one connection's round-trip latency.  This event
// loop multiplexes thousands of concurrent connections over one I/O
// thread (epoll on Linux, poll(2) elsewhere or under GEOPRIV_FORCE_POLL=1)
// with:
//
//   - per-connection read/write buffers with partial-line reassembly
//     (the 1 MiB request-line cap and the final-unterminated-line flush
//     survive from the serial loop),
//   - one BatchWindow per connection, so many batch windows can be open
//     simultaneously (each still capped at 4096 queries),
//   - write backpressure: a reply that does not fit the socket buffer is
//     kept in the connection's outbox and drained on writability,
//   - an idle-connection timer wheel replacing SO_RCVTIMEO — a slow-loris
//     client holding a half-received line is dropped unanswered,
//   - graceful drain on shutdown: stop accepting, finish in-flight
//     batches, flush every outbox, then persist and return.
//
// The QueryPipeline stays the backpressure point: batches that may SOLVE
// are enqueued on a small executor pool and the connection is resumed when
// its reply is ready, while batches whose every signature is already
// cached execute inline on the I/O thread — so a slow cold solve on one
// connection never stalls cached-signature traffic on the others.
// Admission-level shedding (cache max_pending, executor queue bound)
// answers Unavailable + retry_after_ms; connections are always accepted.
//
// The fault points `server.accept`, `server.recv` and `server.send` fire
// at the same logical places as in the serial loop.

#ifndef GEOPRIV_SERVICE_EVENT_LOOP_H_
#define GEOPRIV_SERVICE_EVENT_LOOP_H_

#include <ostream>

#include "service/server.h"
#include "util/status.h"

namespace geopriv {

/// Serves the JSONL protocol on 127.0.0.1:`port` (0 picks a free port)
/// with the concurrent event loop described above.  Announces
/// "geopriv_serve listening on 127.0.0.1:<port>" on `announce` before
/// accepting.  Returns after a shutdown request has drained, persisting
/// when configured.  ServiceOptions consulted: workers, idle_timeout_ms,
/// retry_after_ms (shed hint), persist_dir.
Status ServeTcpEventLoop(int port, MechanismService& service,
                         std::ostream& announce);

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_EVENT_LOOP_H_
