// Canonical problem signatures for the mechanism service.
//
// A signature names one solvable problem: "the optimal alpha-DP mechanism
// for database size n, loss l and side information {lo..hi}" (kExactOptimal,
// the Section 2.5 LP over Q) or "the range-restricted geometric mechanism
// G_{n,alpha}" (kGeometric, Definition 4's closed form).  Two textually
// different requests that mean the same problem must collide, so Create
// canonicalizes: alpha is reduced to lowest terms, the loss name to its
// catalog spelling, and the side interval validated against n.
//
// Two derived keys drive the solve cache (mechanism_cache.h):
//   * CanonicalKey() — the full identity; the cache's map key and the
//     persistence filename stem.
//   * StructuralKey() — only the parts that fix the LP's *shape* (n, side,
//     mode).  It selects the cache shard, so structurally identical
//     problems (same LP rows/columns, different alpha or loss) colocate
//     and a miss can warm-start from a neighbor without leaving its shard.

#ifndef GEOPRIV_SERVICE_SIGNATURE_H_
#define GEOPRIV_SERVICE_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "core/consumer.h"
#include "core/optimal_exact.h"
#include "exact/rational.h"
#include "util/result.h"

namespace geopriv {

/// Which family of mechanisms a signature asks the service for.
enum class ServeMode {
  kExactOptimal,  ///< per-consumer optimum: the Section 2.5 LP over Q
  kGeometric,     ///< G_{n,alpha} (closed form; no LP solve)
};

/// Parses "exact" / "geometric"; fails on anything else.
Result<ServeMode> ServeModeFromString(const std::string& text);
const char* ServeModeName(ServeMode mode);

/// The canonical identity of one servable problem.  Construct only through
/// Create so the canonicalization invariants hold.
struct MechanismSignature {
  int n = 0;
  Rational alpha;        ///< lowest terms, in [0, 1] ((0, 1) for geometric)
  std::string loss;      ///< "absolute" | "squared" | "zero-one"
  int lo = 0;            ///< side information S = {lo..hi}
  int hi = 0;
  ServeMode mode = ServeMode::kExactOptimal;

  /// Validates and canonicalizes.  `loss_name` accepts the CLI spellings
  /// ("zeroone" == "zero-one"); lo/hi must satisfy 0 <= lo <= hi <= n.
  static Result<MechanismSignature> Create(int n, Rational alpha,
                                           const std::string& loss_name,
                                           int lo, int hi, ServeMode mode);

  /// Full identity, e.g. "mode=exact;n=8;side=0..8;loss=absolute;alpha=1/2".
  std::string CanonicalKey() const;

  /// Shape-only prefix, e.g. "mode=exact;n=8;side=0..8" — everything that
  /// fixes the LP's rows and columns, i.e. the warm-start compatibility
  /// class (ExactSimplexOptions::warm_start requires structural identity).
  std::string StructuralKey() const;

  bool operator==(const MechanismSignature& o) const {
    return mode == o.mode && n == o.n && lo == o.lo && hi == o.hi &&
           loss == o.loss && alpha == o.alpha;
  }

  /// The exact loss function the canonical name denotes.
  Result<ExactLossFunction> ResolveLoss() const;

  /// The side-information set {lo..hi}.
  Result<SideInformation> ResolveSide() const;
};

/// FNV-1a over the key bytes: stable across platforms and restarts (unlike
/// std::hash), so shard selection and persistence filenames never move
/// between runs.
uint64_t SignatureHash(const std::string& key);

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_SIGNATURE_H_
