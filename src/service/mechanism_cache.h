// Sharded solve cache: the mechanism service's hot core.
//
// Solving the Section 2.5 LP over Q costs milliseconds to minutes; looking
// a solved mechanism up costs a hash and a mutex.  A data owner serving
// many consumers sees the same problems over and over — the same (n, alpha,
// loss, side) tuples negotiated into contracts — so the service keeps every
// solved mechanism, keyed by its canonical signature (signature.h).
//
// Sharding is by *structural* key (n, side, mode): all members of one LP
// family land in one shard, which buys two things at once — map contention
// spreads across families, and a cache miss can scan its own shard, under
// its own lock, for the structurally compatible neighbor whose basis warm-
// starts the new solve (nearest alpha wins; a warm load typically
// re-optimizes in zero pivots, see docs/PERFORMANCE.md).  Misses serialize
// on one solver mutex: exact solves are memory-hungry and share one worker
// pool (ExactSimplexOptions::pool), so running them one at a time is the
// deliberate policy; hits never touch the solver mutex.
//
// Entries are immutable once published and handed out as
// shared_ptr<const ServedMechanism>, so readers never hold a lock while
// sampling.  SaveToDirectory/LoadFromDirectory persist the exact matrices
// in the io v2 format: a reloaded entry is bit-identical (operator==) to
// the solve that produced it.

#ifndef GEOPRIV_SERVICE_MECHANISM_CACHE_H_
#define GEOPRIV_SERVICE_MECHANISM_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mechanism.h"
#include "exact/rational_matrix.h"
#include "lp/exact_simplex.h"
#include "service/signature.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace geopriv {

/// One solved, immutable, ready-to-sample cache entry.
struct ServedMechanism {
  MechanismSignature signature;
  /// Exact row-stochastic matrix (LP optimum or G); the placeholder shape
  /// is replaced before an entry is published.
  RationalMatrix exact{0, 0};
  Rational loss;          ///< exact minimax loss over the signature's side
  Mechanism mechanism = Mechanism::Identity(0);  ///< double view, prepared
  LpBasis basis;          ///< warm-start seed for neighbors (may be empty)
  int lp_iterations = 0;  ///< pivots of the producing solve (0 = no LP)
  bool warm_started = false;  ///< solved from a cached neighbor's basis
};

struct CacheOptions {
  /// Shard count; structural families map to shards by stable hash.
  size_t shards = 8;
  /// Worker threads for miss solves (0 defers to GEOPRIV_THREADS, else 1).
  /// The cache owns one pool for its lifetime and passes it into every
  /// solve — the service's warm-start path never re-spawns workers.
  int threads = 0;
  /// Base solver configuration for miss solves (engine, pivot rule, ...).
  /// warm_start/pool/threads are managed by the cache and ignored here.
  ExactSimplexOptions solver;
  /// Overload admission: the maximum number of solves allowed to be
  /// running or queued on the solver mutex at once; further misses are
  /// shed with Status::Unavailable instead of joining the convoy.  0
  /// means unbounded (the historical behavior).  Hits are never shed.
  size_t max_pending = 0;
};

class MechanismCache {
 public:
  explicit MechanismCache(CacheOptions options = {});

  MechanismCache(const MechanismCache&) = delete;
  MechanismCache& operator=(const MechanismCache&) = delete;

  /// Returns the cached entry for `signature`, solving (and publishing) it
  /// on a miss.  Miss handling warm-starts from the nearest structurally
  /// compatible cached basis when one exists.  `was_hit`, when non-null,
  /// reports whether the entry was already present.  Thread-safe; each
  /// signature is solved at most once (concurrent requests for an
  /// in-flight signature wait for its solve and come back as hits), and
  /// the shard lock is NOT held during a solve, so hits and stats stay
  /// cheap while misses grind.
  ///
  /// `deadline_ms > 0` bounds the whole call in wall-clock time: waiting
  /// on an in-flight duplicate, queueing on the solver mutex, and the
  /// solve's own pivots (cooperative cancellation, lp/simplex_core.h) all
  /// run against one deadline, and an expired call returns
  /// Status::DeadlineExceeded with the solver mutex released.  An expired
  /// waiter abandons only its own wait — the in-flight solve it was
  /// watching continues and still publishes.  Under CacheOptions::
  /// max_pending an over-subscribed miss returns Status::Unavailable
  /// without solving.
  Result<std::shared_ptr<const ServedMechanism>> GetOrSolve(
      const MechanismSignature& signature, bool* was_hit = nullptr,
      int64_t deadline_ms = 0);

  /// Lookup-only: the cached entry, or null on a miss (no solve, no
  /// waiting).  A found entry counts as a hit.  The pipeline uses this to
  /// serve already-solved signatures to consumers whose budget admission
  /// would never justify a fresh solve.
  std::shared_ptr<const ServedMechanism> Peek(
      const MechanismSignature& signature);

  /// Stats-neutral presence probe (no hit recorded, no solve, no wait).
  /// Entries are never evicted, so a true answer stays true — the event
  /// loop relies on that to classify a decoded batch as cached-only work
  /// it can execute inline instead of queueing behind slow solves.
  bool Contains(const MechanismSignature& signature) const;

  /// Solves `signature` cold, bypassing the cache in both directions
  /// (nothing read, nothing published).  The solve-per-query baseline the
  /// throughput bench and the bit-identity tests compare against.
  Result<std::shared_ptr<const ServedMechanism>> SolveUncached(
      const MechanismSignature& signature) const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;        ///< misses that ran a solve
    uint64_t warm_starts = 0;   ///< misses seeded from a cached basis
    uint64_t entries = 0;
    uint64_t shed = 0;          ///< misses rejected by the admission cap
    uint64_t timeouts = 0;      ///< calls that hit their deadline
  };
  Stats GetStats() const;

  /// Solves currently running or queued on the solver mutex (the load
  /// signal behind admission and the server's retry_after_ms hint).
  size_t PendingSolves() const {
    return pending_solves_.load(std::memory_order_relaxed);
  }

  /// Persists every entry to `dir` (created if missing), one io-v2 file
  /// per entry named by the stable signature hash.  Existing entry files
  /// are overwritten; foreign files are left alone.
  Status SaveToDirectory(const std::string& dir) const;

  /// Loads every "*.entry" file under `dir` into the cache; returns the
  /// number loaded.  Loaded entries carry no LP basis (a basis cannot be
  /// reconstructed from the matrix), so they serve hits but do not seed
  /// warm starts.  Malformed files fail the load; a missing directory
  /// loads nothing.
  Result<int> LoadFromDirectory(const std::string& dir);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable solved;  ///< signaled when an in-flight key lands
    std::unordered_map<std::string, std::shared_ptr<const ServedMechanism>>
        entries;
    std::unordered_set<std::string> in_flight;  ///< keys being solved now
  };

  Shard& ShardFor(const MechanismSignature& signature);
  const Shard& ShardFor(const MechanismSignature& signature) const;

  /// Solves `signature` with an optional warm seed.  Caller must hold
  /// solve_mu_ (the pool is not reentrant).  `deadline_ms > 0` bounds the
  /// solve's pivots (ExactSimplexOptions::deadline_ms).
  Result<ServedMechanism> SolveLocked(const MechanismSignature& signature,
                                      const LpBasis* warm_seed,
                                      int64_t deadline_ms) const;

  CacheOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // shared by every miss solve
  mutable std::timed_mutex solve_mu_;  // serializes solves / guards pool_
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<size_t> pending_solves_{0};
};

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_MECHANISM_CACHE_H_
