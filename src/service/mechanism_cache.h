// Sharded solve cache: the mechanism service's hot core.
//
// Solving the Section 2.5 LP over Q costs milliseconds to minutes; looking
// a solved mechanism up costs a hash and a mutex.  A data owner serving
// many consumers sees the same problems over and over — the same (n, alpha,
// loss, side) tuples negotiated into contracts — so the service keeps every
// solved mechanism, keyed by its canonical signature (signature.h).
//
// Sharding is by *structural* key (n, side, mode): all members of one LP
// family land in one shard, which buys two things at once — map contention
// spreads across families, and a cache miss can scan its own shard, under
// its own lock, for the structurally compatible neighbor whose basis warm-
// starts the new solve (nearest alpha wins; a warm load typically
// re-optimizes in zero pivots, see docs/PERFORMANCE.md).  Misses serialize
// on one solver mutex: exact solves are memory-hungry and share one worker
// pool (ExactSimplexOptions::pool), so running them one at a time is the
// deliberate policy; hits never touch the solver mutex.
//
// Entries are immutable once published and handed out as
// shared_ptr<const ServedMechanism>, so readers never hold a lock while
// sampling.
//
// The cache doubles as a *durable, bounded* store:
//
//  - Durability.  With CacheOptions::persist_dir set, every newly solved
//    entry is persisted at publish time — the exact matrix in the
//    checksummed io v3 format, the optimal LP basis as a checksummed
//    basis document — so a restarted daemon serves the same hits and
//    warm-starts misses exactly as the live cache did.  A write-then-
//    rename manifest indexes the live entries; restart never resurrects
//    an evicted file or loads a half-deleted one.  Reloaded entries are
//    bit-identical (operator==) to the solves that produced them.
//  - Integrity.  Every persisted artifact carries an FNV-1a-64 checksum.
//    On load, a corrupt, torn or claim-violating file is *quarantined*
//    (moved to a quarantine/ subdir, counted, re-solved fresh on the next
//    miss) — never served, never fatal to the load.
//  - Bounds.  CacheOptions::max_entries / max_bytes cap the store with
//    LRU eviction that respects structural shards: victims come from the
//    coldest compatibility class first, and the warm-start anchor of each
//    class (the smallest-denominator alpha) is pinned so eviction never
//    destroys the seeds that make misses cheap.

#ifndef GEOPRIV_SERVICE_MECHANISM_CACHE_H_
#define GEOPRIV_SERVICE_MECHANISM_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mechanism.h"
#include "exact/rational_matrix.h"
#include "lp/exact_simplex.h"
#include "service/signature.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace geopriv {

/// One solved, immutable, ready-to-sample cache entry.
struct ServedMechanism {
  MechanismSignature signature;
  /// Exact row-stochastic matrix (LP optimum or G); the placeholder shape
  /// is replaced before an entry is published.
  RationalMatrix exact{0, 0};
  Rational loss;          ///< exact minimax loss over the signature's side
  Mechanism mechanism = Mechanism::Identity(0);  ///< double view, prepared
  LpBasis basis;          ///< warm-start seed for neighbors (may be empty)
  int lp_iterations = 0;  ///< pivots of the producing solve (0 = no LP)
  int phase1_iterations = 0;  ///< pivots spent finding feasibility
  int phase2_iterations = 0;  ///< pivots spent optimizing
  bool warm_started = false;  ///< solved from a cached neighbor's basis
};

struct CacheOptions {
  /// Shard count; structural families map to shards by stable hash.
  size_t shards = 8;
  /// Worker threads for miss solves (0 defers to GEOPRIV_THREADS, else 1).
  /// The cache owns one pool for its lifetime and passes it into every
  /// solve — the service's warm-start path never re-spawns workers.
  int threads = 0;
  /// Base solver configuration for miss solves (engine, pivot rule, ...).
  /// warm_start/pool/threads are managed by the cache and ignored here.
  ExactSimplexOptions solver;
  /// Overload admission: the maximum number of solves allowed to be
  /// running or queued on the solver mutex at once; further misses are
  /// shed with Status::Unavailable instead of joining the convoy.  0
  /// means unbounded (the historical behavior).  Hits are never shed.
  size_t max_pending = 0;
  /// When non-empty, each newly solved entry (and its basis) is persisted
  /// here at publish time and the manifest is updated, so a SIGKILL'd
  /// daemon loses at most the solve in flight.  Persist failures degrade
  /// the entry to memory-only (the cache is a performance artifact, not a
  /// correctness one); they never fail the query.
  std::string persist_dir;
  /// LRU bounds; 0 means unbounded.  max_entries is a soft bound: the
  /// per-class warm-start anchors are pinned, so the store never shrinks
  /// below one entry per structural compatibility class.
  size_t max_entries = 0;
  size_t max_bytes = 0;
};

class MechanismCache {
 public:
  explicit MechanismCache(CacheOptions options = {});

  MechanismCache(const MechanismCache&) = delete;
  MechanismCache& operator=(const MechanismCache&) = delete;

  /// Returns the cached entry for `signature`, solving (and publishing) it
  /// on a miss.  Miss handling warm-starts from the nearest structurally
  /// compatible cached basis when one exists.  `was_hit`, when non-null,
  /// reports whether the entry was already present.  Thread-safe; each
  /// signature is solved at most once (concurrent requests for an
  /// in-flight signature wait for its solve and come back as hits), and
  /// the shard lock is NOT held during a solve, so hits and stats stay
  /// cheap while misses grind.
  ///
  /// `deadline_ms > 0` bounds the whole call in wall-clock time: waiting
  /// on an in-flight duplicate, queueing on the solver mutex, and the
  /// solve's own pivots (cooperative cancellation, lp/simplex_core.h) all
  /// run against one deadline, and an expired call returns
  /// Status::DeadlineExceeded with the solver mutex released.  An expired
  /// waiter abandons only its own wait — the in-flight solve it was
  /// watching continues and still publishes.  Under CacheOptions::
  /// max_pending an over-subscribed miss returns Status::Unavailable
  /// without solving.
  Result<std::shared_ptr<const ServedMechanism>> GetOrSolve(
      const MechanismSignature& signature, bool* was_hit = nullptr,
      int64_t deadline_ms = 0);

  /// Lookup-only: the cached entry, or null on a miss (no solve, no
  /// waiting).  A found entry counts as a hit.  The pipeline uses this to
  /// serve already-solved signatures to consumers whose budget admission
  /// would never justify a fresh solve.
  std::shared_ptr<const ServedMechanism> Peek(
      const MechanismSignature& signature);

  /// Stats-neutral presence probe (no hit recorded, no solve, no wait,
  /// no LRU touch).  The answer is advisory only: under max_entries /
  /// max_bytes an entry can be evicted between this probe and the lookup
  /// it advised.  The event loop uses it to classify a decoded batch as
  /// cached-only work — the post-eviction contract is that
  /// misclassification may cost a re-route or a shed, never a wrong
  /// reply or an inline cold solve (see event_loop.cc).
  bool Contains(const MechanismSignature& signature) const;

  /// Solves `signature` cold, bypassing the cache in both directions
  /// (nothing read, nothing published).  The solve-per-query baseline the
  /// throughput bench and the bit-identity tests compare against.
  Result<std::shared_ptr<const ServedMechanism>> SolveUncached(
      const MechanismSignature& signature) const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;        ///< misses that ran a solve
    uint64_t warm_starts = 0;   ///< misses seeded from a cached basis
    uint64_t entries = 0;
    uint64_t shed = 0;          ///< misses rejected by the admission cap
    uint64_t timeouts = 0;      ///< calls that hit their deadline
    uint64_t bytes = 0;         ///< serialized size of all live entries
    uint64_t evictions = 0;     ///< entries removed by the LRU bound
    uint64_t quarantined = 0;   ///< corrupt files moved to quarantine/
    uint64_t basis_warm_reloads = 0;  ///< bases restored from disk on load
    uint64_t persist_failures = 0;  ///< entries degraded to memory-only
  };
  Stats GetStats() const;

  /// Solves currently running or queued on the solver mutex (the load
  /// signal behind admission and the server's retry_after_ms hint).
  size_t PendingSolves() const {
    return pending_solves_.load(std::memory_order_relaxed);
  }

  /// Persists every entry to `dir` (created if missing): one checksummed
  /// io-v3 entry file per entry named by the stable signature hash, one
  /// basis document per LP entry with a non-empty basis, and a rewritten
  /// manifest.  Existing files are overwritten; foreign files are left
  /// alone.  Idempotent over entries already persisted at publish time.
  Status SaveToDirectory(const std::string& dir) const;

  /// What LoadFromDirectory found.  `quarantined` and `basis_reloads`
  /// also accumulate into GetStats().
  struct LoadReport {
    int loaded = 0;         ///< entries now serving from this load
    int quarantined = 0;    ///< corrupt/claim-violating files quarantined
    int basis_reloads = 0;  ///< entries whose warm-start basis survived
    int debris_removed = 0;  ///< stale *.tmp and unmanifested files removed
  };

  /// Loads the manifested entries under `dir` into the cache.  A corrupt,
  /// torn or claim-violating entry/basis/manifest file is moved to
  /// `dir`/quarantine/ and counted — never served, never fatal.  A
  /// manifested-but-missing entry (a crash mid-eviction) is skipped; an
  /// unmanifested entry or basis file (a crash between persist and
  /// manifest commit, or mid-eviction unlink) is removed as debris so an
  /// evicted entry can never resurrect.  A directory with entries but no
  /// manifest (written before manifests existed) loads every valid entry
  /// and adopts it.  Stale "*.tmp" files are swept.  After a successful
  /// load the manifest is rewritten to match the loaded set.  A missing
  /// directory loads nothing.
  Result<LoadReport> LoadFromDirectory(const std::string& dir);

 private:
  /// One published entry plus its LRU bookkeeping.  The entry itself
  /// stays immutable and shared; recency and size live in the slot so
  /// hits can bump `last_used` under the shard lock without touching the
  /// shared object.
  struct Slot {
    std::shared_ptr<const ServedMechanism> entry;
    uint64_t last_used = 0;  ///< global LRU tick at last hit/publish
    size_t bytes = 0;        ///< serialized (entry + basis) size on disk
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable solved;  ///< signaled when an in-flight key lands
    std::unordered_map<std::string, Slot> entries;
    std::unordered_set<std::string> in_flight;  ///< keys being solved now
  };

  Shard& ShardFor(const MechanismSignature& signature);
  const Shard& ShardFor(const MechanismSignature& signature) const;

  /// Solves `signature` with an optional warm seed.  Caller must hold
  /// solve_mu_ (the pool is not reentrant).  `deadline_ms > 0` bounds the
  /// solve's pivots (ExactSimplexOptions::deadline_ms).
  Result<ServedMechanism> SolveLocked(const MechanismSignature& signature,
                                      const LpBasis* warm_seed,
                                      int64_t deadline_ms) const;

  /// Writes `entry`'s files under `dir` write-then-rename: the io-v3
  /// entry document (with `serialized` as its mechanism block) and, for a
  /// non-empty basis, the basis document.
  Status PersistEntryFiles(const std::string& dir,
                           const ServedMechanism& entry,
                           const std::string& serialized) const;

  /// Rewrites `dir`/manifest from `stems` write-then-rename.  Caller must
  /// hold maintenance_mu_.
  Status WriteManifestLocked(const std::string& dir,
                             const std::set<std::string>& stems) const;

  /// Adds `stem` to the live set and commits the manifest (best effort).
  void ManifestAdd(const std::string& stem);

  /// Enforces max_entries/max_bytes: picks victims from the coldest
  /// structural class first, pins each class's warm-start anchor, commits
  /// the shrunken manifest to disk *before* erasing from memory or
  /// unlinking files (so a crash can only under-delete, never resurrect).
  void MaybeEvict();

  CacheOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // shared by every miss solve
  mutable std::timed_mutex solve_mu_;  // serializes solves / guards pool_
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<size_t> pending_solves_{0};
  std::atomic<uint64_t> tick_{0};   // global LRU clock
  std::atomic<uint64_t> bytes_{0};  // serialized size of live entries
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> quarantined_{0};
  std::atomic<uint64_t> basis_warm_reloads_{0};
  std::atomic<uint64_t> persist_failures_{0};
  /// Serializes eviction and manifest commits; guards manifest_stems_.
  /// Lock order: maintenance_mu_ before any shard.mu, never the reverse.
  mutable std::mutex maintenance_mu_;
  mutable std::set<std::string> manifest_stems_;  ///< live entry file stems
};

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_MECHANISM_CACHE_H_
