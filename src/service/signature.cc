#include "service/signature.h"

#include <utility>

namespace geopriv {

Result<ServeMode> ServeModeFromString(const std::string& text) {
  if (text == "exact" || text.empty()) return ServeMode::kExactOptimal;
  if (text == "geometric") return ServeMode::kGeometric;
  return Status::InvalidArgument("unknown mode '" + text +
                                 "' (exact|geometric)");
}

const char* ServeModeName(ServeMode mode) {
  return mode == ServeMode::kGeometric ? "geometric" : "exact";
}

namespace {

Result<std::string> CanonicalLossName(const std::string& name) {
  if (name == "absolute" || name.empty()) return std::string("absolute");
  if (name == "squared") return std::string("squared");
  if (name == "zero-one" || name == "zeroone") return std::string("zero-one");
  return Status::InvalidArgument("unknown loss '" + name +
                                 "' (absolute|squared|zero-one)");
}

}  // namespace

Result<MechanismSignature> MechanismSignature::Create(
    int n, Rational alpha, const std::string& loss_name, int lo, int hi,
    ServeMode mode) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  if (alpha.IsNegative() || alpha > Rational(1)) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (mode == ServeMode::kGeometric && alpha == Rational(1)) {
    return Status::InvalidArgument(
        "geometric mode needs alpha < 1 (alpha == 1 has no mechanism)");
  }
  if (lo < 0 || hi < lo || hi > n) {
    return Status::InvalidArgument(
        "side interval must satisfy 0 <= lo <= hi <= n");
  }
  GEOPRIV_ASSIGN_OR_RETURN(std::string canonical_loss,
                           CanonicalLossName(loss_name));
  MechanismSignature sig;
  sig.n = n;
  sig.alpha = std::move(alpha);
  // Force the lazy reduction now so CanonicalKey is lowest-terms even if
  // alpha arrived from arithmetic.
  (void)sig.alpha.numerator();
  sig.loss = std::move(canonical_loss);
  sig.lo = lo;
  sig.hi = hi;
  sig.mode = mode;
  return sig;
}

std::string MechanismSignature::CanonicalKey() const {
  return StructuralKey() + ";loss=" + loss + ";alpha=" + alpha.ToString();
}

std::string MechanismSignature::StructuralKey() const {
  return std::string("mode=") + ServeModeName(mode) +
         ";n=" + std::to_string(n) + ";side=" + std::to_string(lo) + ".." +
         std::to_string(hi);
}

Result<ExactLossFunction> MechanismSignature::ResolveLoss() const {
  if (loss == "absolute") return ExactLossFunction::AbsoluteError();
  if (loss == "squared") return ExactLossFunction::SquaredError();
  if (loss == "zero-one") return ExactLossFunction::ZeroOne();
  return Status::Internal("non-canonical loss name '" + loss + "'");
}

Result<SideInformation> MechanismSignature::ResolveSide() const {
  return SideInformation::Interval(lo, hi, n);
}

uint64_t SignatureHash(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace geopriv
