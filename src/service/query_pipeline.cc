#include "service/query_pipeline.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "rng/engine.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace geopriv {

namespace {

// Pipeline instrumentation.  Counters are always-on (striped fetch_adds,
// nanoseconds); the per-stage clock reads are taken only for traced
// batches and a 1-in-64 sample of the rest, so the ~0.8us cached hot path
// never pays three steady_clock reads per batch by default.
struct PipelineMetrics {
  metrics::Histogram* batch_size;
  metrics::Histogram* stage_solve_us;
  metrics::Histogram* stage_charge_us;
  metrics::Histogram* stage_sample_us;
  metrics::Histogram* sample_batch_size;
  metrics::Gauge* samples_per_sec;
  metrics::Counter* samples_total;
  metrics::Counter* ledger_charges;
  metrics::Counter* ledger_rejections;

  static const PipelineMetrics& Get() {
    static const PipelineMetrics m = [] {
      metrics::Registry* registry = metrics::Registry::Default();
      PipelineMetrics out;
      out.batch_size = registry->GetHistogram(
          "geopriv_pipeline_batch_size", "Queries per executed batch");
      out.stage_solve_us = registry->GetHistogram(
          "geopriv_pipeline_stage_us",
          "Batch-level pipeline stage wall time in microseconds (traced or "
          "1-in-64 sampled batches)",
          {{"stage", "solve"}});
      out.stage_charge_us = registry->GetHistogram(
          "geopriv_pipeline_stage_us",
          "Batch-level pipeline stage wall time in microseconds (traced or "
          "1-in-64 sampled batches)",
          {{"stage", "charge"}});
      out.stage_sample_us = registry->GetHistogram(
          "geopriv_pipeline_stage_us",
          "Batch-level pipeline stage wall time in microseconds (traced or "
          "1-in-64 sampled batches)",
          {{"stage", "sample"}});
      out.sample_batch_size = registry->GetHistogram(
          "geopriv_sample_batch_size",
          "Lanes per batched sampling kernel invocation (one row group — "
          "queries sharing a mechanism and true-count row)");
      out.samples_per_sec = registry->GetGauge(
          "geopriv_samples_per_sec",
          "Sampling throughput of the most recent timed batch (draws per "
          "second through the sample stage)");
      out.samples_total = registry->GetCounter(
          "geopriv_samples_total", "Released samples drawn from mechanisms");
      out.ledger_charges = registry->GetCounter(
          "geopriv_ledger_charges_total", "Budget charges recorded");
      out.ledger_rejections = registry->GetCounter(
          "geopriv_ledger_rejections_total",
          "Releases rejected by the budget ledger");
      return out;
    }();
    return m;
  }
};

}  // namespace

QueryPipeline::QueryPipeline(MechanismCache* cache, BudgetLedger* ledger,
                             PipelineOptions options)
    : cache_(cache), ledger_(ledger), options_(options) {
  const int count = ThreadPool::ConfiguredThreads(options_.threads);
  if (count > 1) pool_ = std::make_unique<ThreadPool>(count);
}

std::vector<ServiceReply> QueryPipeline::ExecuteBatch(
    const std::vector<ServiceQuery>& queries) {
  return ExecuteBatch(queries, /*cached_only_override=*/false);
}

std::vector<ServiceReply> QueryPipeline::ExecuteBatch(
    const std::vector<ServiceQuery>& queries, bool cached_only_override) {
  const bool cached_only = options_.cached_only || cached_only_override;
  std::vector<ServiceReply> replies(queries.size());

  const PipelineMetrics& pm = PipelineMetrics::Get();
  pm.batch_size->Observe(static_cast<int64_t>(queries.size()));
  bool any_trace = false;
  for (const ServiceQuery& query : queries) any_trace |= query.trace;
  // Time the stages for traced batches and a 1-in-64 sample of the rest.
  static std::atomic<uint64_t> batch_counter{0};
  const bool timed =
      any_trace || options_.time_stages ||
      (metrics::Enabled() &&
       (batch_counter.fetch_add(1, std::memory_order_relaxed) & 63) == 0);
  Stopwatch stage_watch;
  int64_t solve_us = 0;
  int64_t charge_us = 0;
  int64_t sample_us = 0;

  // Stage 1 — group by canonical signature and resolve each group through
  // the cache once.  std::map keeps group iteration deterministic.
  struct Group {
    std::shared_ptr<const ServedMechanism> entry;
    Status status = Status::OK();
    const char* cache = "none";
    std::vector<size_t> members;
  };
  std::map<std::string, Group> groups;
  for (size_t q = 0; q < queries.size(); ++q) {
    groups[queries[q].signature.CanonicalKey()].members.push_back(q);
  }
  // Per-query group pointers (map nodes are stable): the later stages
  // never rebuild a canonical key or re-search the map.
  std::vector<const Group*> group_of(queries.size());
  for (auto& [key, group] : groups) {
    for (size_t q : group.members) group_of[q] = &group;
  }
  // Resolve the batch's distinct signatures as one warm family: structural
  // families together, alpha ascending within a family, so every exact
  // miss after the first warm-starts from the just-published nearest-alpha
  // neighbor (the cache's seed search) instead of paying a cold phase 1.
  // The order is deterministic (structure, then exact alpha compare, then
  // canonical key) and only affects solve cost, never results: replies are
  // keyed by query index and charging below stays in input order.
  std::vector<std::pair<const std::string*, Group*>> solve_order;
  solve_order.reserve(groups.size());
  for (auto& [key, group] : groups) solve_order.push_back({&key, &group});
  std::sort(solve_order.begin(), solve_order.end(),
            [&](const auto& a, const auto& b) {
              const MechanismSignature& sa =
                  queries[a.second->members.front()].signature;
              const MechanismSignature& sb =
                  queries[b.second->members.front()].signature;
              const std::string ka = sa.StructuralKey();
              const std::string kb = sb.StructuralKey();
              if (ka != kb) return ka < kb;
              const int cmp = sa.alpha.Compare(sb.alpha);
              if (cmp != 0) return cmp < 0;
              return *a.first < *b.first;
            });
  size_t batch_solves = 0;
  if (timed) stage_watch.Reset();
  for (auto& [key_ptr, group_ptr] : solve_order) {
    Group& group = *group_ptr;
    const ServiceQuery& first = queries[group.members.front()];
    // Already-solved signatures are served to everyone: a lookup is free.
    group.entry = cache_->Peek(first.signature);
    if (group.entry != nullptr) {
      group.cache = "hit";
      continue;
    }
    // A fresh solve is only justified when at least one member could be
    // admitted by the ledger right now.  Charges never raise a level, so
    // a group with no admissible member can never need the entry — its
    // members are headed for budget rejections either way, and solving
    // first would let an over-budget consumer burn unbounded solver time
    // (and the solve mutex) for free.
    bool worth_solving = ledger_ == nullptr;
    for (size_t q : group.members) {
      if (worth_solving) break;
      Result<BudgetDecision> preview =
          ledger_->Preview(queries[q].consumer,
                          queries[q].signature.alpha.ToDouble());
      worth_solving = preview.ok() && preview->allowed;
    }
    if (!worth_solving) {
      group.cache = "skipped";  // entry stays null; charges reject below
      continue;
    }
    // Overload shedding: in cached_only degraded mode no miss may solve,
    // and under max_batch_solves only the first K miss groups (in the
    // deterministic solve order above) are admitted.  Shed groups answer
    // Unavailable with a backoff hint; cached service above is untouched.
    // The per-call override is the event loop's eviction race showing up
    // here: work classified as cached a moment ago missed after all, and
    // the retry (off the I/O thread) is the place to solve it.
    if (cached_only ||
        (options_.max_batch_solves > 0 &&
         batch_solves >= options_.max_batch_solves)) {
      group.cache = "shed";
      group.status = Status::Unavailable(
          cached_only_override
              ? "signature is no longer cached (evicted since "
                "classification); retry to solve it"
              : options_.cached_only
                    ? "service is in cached-only degraded mode; signature is "
                      "not cached"
                    : "batch solve budget exhausted; retry later");
      continue;
    }
    // The group's deadline: the laxest among its members (one solve serves
    // them all; a member with no deadline means the solve may run
    // unbounded).  Queries without their own deadline inherit the default.
    int64_t deadline_ms = 0;
    bool unbounded = false;
    for (size_t q : group.members) {
      int64_t member_ms = queries[q].deadline_ms > 0
                              ? queries[q].deadline_ms
                              : options_.default_deadline_ms;
      if (member_ms <= 0) {
        unbounded = true;
        break;
      }
      deadline_ms = std::max(deadline_ms, member_ms);
    }
    if (unbounded) deadline_ms = 0;
    ++batch_solves;
    bool hit = false;
    Result<std::shared_ptr<const ServedMechanism>> entry =
        cache_->GetOrSolve(first.signature, &hit, deadline_ms);
    if (!entry.ok()) {
      if (entry.status().IsUnavailable()) group.cache = "shed";
      group.status = entry.status();
      continue;
    }
    group.entry = std::move(*entry);
    group.cache = hit ? "hit" : (group.entry->warm_started ? "warm" : "cold");
  }

  if (timed) {
    solve_us = static_cast<int64_t>(stage_watch.ElapsedMicros());
    stage_watch.Reset();
  }

  // Stage 2 — budget admission, strictly in input order (the ledger is
  // sequential state: a batch's earlier queries shrink the budget its
  // later ones see, exactly as if they had arrived one by one).
  int64_t charges = 0;
  int64_t rejections = 0;
  std::vector<const ServedMechanism*> admitted(queries.size(), nullptr);
  for (size_t q = 0; q < queries.size(); ++q) {
    const ServiceQuery& query = queries[q];
    ServiceReply& reply = replies[q];
    if (ledger_ != nullptr) reply.budget = ledger_->budget();
    const Group& group = *group_of[q];
    if (!group.status.ok()) {
      reply.status = group.status;
      reply.cache = group.cache;
      if (group.status.IsUnavailable()) {
        reply.retry_after_ms = options_.retry_after_ms;
      }
      continue;
    }
    reply.cache = group.cache;
    if (group.entry != nullptr) {
      reply.optimal_loss = group.entry->loss;
      reply.lp_iterations = group.entry->lp_iterations;
    }
    if (query.true_count < 0 || query.true_count > query.signature.n) {
      reply.status =
          Status::OutOfRange("true count outside {0..n} for this signature");
      continue;
    }
    if (ledger_ != nullptr) {
      // Always sequential composition: a pipeline release is a fresh
      // independent sample, never part of an Algorithm-1 chain.  A
      // K-sample query is charged atomically for all K draws — admitted
      // together or rejected together, never partially released.
      Result<BudgetDecision> decision = ledger_->ChargeMany(
          query.consumer, query.signature.alpha.ToDouble(),
          static_cast<uint64_t>(std::max(1, query.samples)));
      if (!decision.ok()) {
        reply.status = decision.status();
        continue;
      }
      reply.composed_level = decision->composed_level;
      reply.budget = decision->budget;
      if (!decision->allowed) {
        ++rejections;
        reply.level_after = decision->current_level;
        reply.status = Status::FailedPrecondition(
            "privacy budget exceeded: release would compose consumer '" +
            query.consumer + "' to level " +
            std::to_string(decision->composed_level) + " < budget " +
            std::to_string(decision->budget));
        continue;
      }
      reply.level_after = decision->composed_level;
      reply.charged = true;
      ++charges;
    } else {
      reply.composed_level = query.signature.alpha.ToDouble();
      reply.level_after = reply.composed_level;
    }
    if (group.entry == nullptr) {
      // Unreachable by construction: a skipped group had no admissible
      // member at batch start, and charges only lower levels — but never
      // sample from nothing if the invariant is ever broken.
      reply.status = Status::Internal(
          "query admitted for a signature whose solve was skipped");
      continue;
    }
    admitted[q] = group.entry.get();
  }
  if (timed) {
    charge_us = static_cast<int64_t>(stage_watch.ElapsedMicros());
    stage_watch.Reset();
  }

  // Stage 3 — the columnar sample plane.  Admitted requests are decoded
  // into parallel arrays (seed, draw count, output offset) and
  // partitioned by (mechanism, true-count row): one quantized alias
  // table then serves a whole lane group through the batched kernel
  // (rng/batch_sampler.h), and the fan-out parallelizes across row
  // groups, each of which owns its members' reply slots exclusively.
  // Bit-identity with the per-request scalar path is the kernel's
  // contract — lane k reproduces exactly the stream Xoshiro256(seed_k)
  // yields — so neither the decomposition nor the pool's scheduling of
  // it can change any released value.
  auto scatter = [&](size_t q, const int32_t* draws) {
    ServiceReply& reply = replies[q];
    const int reps = std::max(1, queries[q].samples);
    reply.released = draws[0];
    if (reps > 1) reply.released_values.assign(draws, draws + reps);
  };
  if (queries.size() == 1) {
    // Single-query fast path: a one-lane batch gains nothing from the
    // columnar decode, and the ~0.8us cached hot path must not pay for
    // the row-group scaffolding.  This IS the scalar oracle: one stream,
    // `samples` sequential draws.
    if (admitted[0] != nullptr) {
      const ServiceQuery& query = queries[0];
      const int reps = std::max(1, query.samples);
      Xoshiro256 rng(query.seed);
      if (reps == 1) {
        // No draw buffer: the ~0.8us cached hot path must not pay a
        // heap allocation for its one released value.
        Result<int> released =
            admitted[0]->mechanism.Sample(query.true_count, rng);
        if (!released.ok()) {
          replies[0].status = released.status();
        } else {
          replies[0].released = *released;
          pm.sample_batch_size->Observe(1);
        }
      } else {
        std::vector<int32_t>& draws = replies[0].released_values;
        draws.resize(static_cast<size_t>(reps));
        Status failed = Status::OK();
        for (int j = 0; j < reps; ++j) {
          Result<int> released =
              admitted[0]->mechanism.Sample(query.true_count, rng);
          if (!released.ok()) {
            failed = released.status();
            break;
          }
          draws[static_cast<size_t>(j)] = *released;
        }
        if (!failed.ok()) {
          replies[0].status = failed;
          replies[0].released_values.clear();
        } else {
          replies[0].released = draws[0];
          pm.sample_batch_size->Observe(1);
        }
      }
    }
  } else {
    // One row group per (signature group, true-count row).  Group
    // iteration follows the deterministic std::map order from stage 1,
    // and rows ascend within a group, so the row-group list — and with
    // it every kernel invocation — is independent of arrival timing.
    struct RowGroup {
      const ServedMechanism* entry = nullptr;
      int row = 0;
      std::vector<size_t> members;  // query indices, input order
    };
    std::vector<RowGroup> row_groups;
    for (auto& [key, group] : groups) {
      if (group.entry == nullptr) continue;
      std::map<int, std::vector<size_t>> by_row;
      for (size_t q : group.members) {
        if (admitted[q] != nullptr) by_row[queries[q].true_count].push_back(q);
      }
      for (auto& [row, members] : by_row) {
        row_groups.push_back({group.entry.get(), row, std::move(members)});
      }
    }
    auto sample_group = [&](size_t g) {
      const RowGroup& rg = row_groups[g];
      const size_t lanes = rg.members.size();
      std::vector<uint64_t> seeds(lanes);
      std::vector<int32_t> counts(lanes);
      std::vector<size_t> offsets(lanes);
      size_t total = 0;
      bool single_draw = true;
      for (size_t j = 0; j < lanes; ++j) {
        const ServiceQuery& query = queries[rg.members[j]];
        seeds[j] = query.seed;
        counts[j] = std::max(1, query.samples);
        single_draw &= counts[j] == 1;
        offsets[j] = total;
        total += static_cast<size_t>(counts[j]);
      }
      std::vector<int32_t> draws(total);
      const Status status =
          single_draw
              ? rg.entry->mechanism.SampleBatch(seeds.data(), rg.row, lanes,
                                                draws.data())
              : rg.entry->mechanism.SampleRuns(seeds.data(), counts.data(),
                                               offsets.data(), rg.row, lanes,
                                               draws.data());
      if (!status.ok()) {
        for (size_t q : rg.members) replies[q].status = status;
        return;
      }
      for (size_t j = 0; j < lanes; ++j) {
        scatter(rg.members[j], draws.data() + offsets[j]);
      }
      pm.sample_batch_size->Observe(static_cast<int64_t>(lanes));
    };
    if (pool_ != nullptr && row_groups.size() > 1) {
      // The pool is not reentrant (one ParallelFor at a time), and the
      // event-loop transport runs concurrent batches through one
      // pipeline — serialize just the fan-out, not the stages above.
      std::lock_guard<std::mutex> lock(pool_mu_);
      pool_->ParallelFor(row_groups.size(), sample_group);
    } else {
      for (size_t g = 0; g < row_groups.size(); ++g) sample_group(g);
    }
  }
  if (timed) sample_us = static_cast<int64_t>(stage_watch.ElapsedMicros());

  int64_t samples = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (admitted[q] != nullptr && replies[q].status.ok()) {
      samples += std::max(1, queries[q].samples);
    }
  }
  pm.samples_total->Add(samples);
  if (timed && metrics::Enabled() && samples > 0 && sample_us > 0) {
    pm.samples_per_sec->Set(static_cast<int64_t>(
        (static_cast<double>(samples) * 1e6) / static_cast<double>(sample_us)));
  }
  if (charges > 0) pm.ledger_charges->Add(charges);
  if (rejections > 0) pm.ledger_rejections->Add(rejections);
  if (timed && metrics::Enabled()) {
    pm.stage_solve_us->Observe(solve_us);
    pm.stage_charge_us->Observe(charge_us);
    pm.stage_sample_us->Observe(sample_us);
  }
  if (timed) {
    // Spans land in every reply (the slow-query log reads them even for
    // untraced queries); the `traced` flag — which puts them on the wire —
    // follows the request's own ask.
    for (size_t q = 0; q < queries.size(); ++q) {
      replies[q].traced = queries[q].trace;
      replies[q].trace_solve_us = solve_us;
      replies[q].trace_charge_us = charge_us;
      replies[q].trace_sample_us = sample_us;
    }
  }
  return replies;
}

}  // namespace geopriv
