#include "service/query_pipeline.h"

#include <algorithm>
#include <map>
#include <utility>

#include "rng/engine.h"

namespace geopriv {

QueryPipeline::QueryPipeline(MechanismCache* cache, BudgetLedger* ledger,
                             PipelineOptions options)
    : cache_(cache), ledger_(ledger), options_(options) {
  const int count = ThreadPool::ConfiguredThreads(options_.threads);
  if (count > 1) pool_ = std::make_unique<ThreadPool>(count);
}

std::vector<ServiceReply> QueryPipeline::ExecuteBatch(
    const std::vector<ServiceQuery>& queries) {
  return ExecuteBatch(queries, /*cached_only_override=*/false);
}

std::vector<ServiceReply> QueryPipeline::ExecuteBatch(
    const std::vector<ServiceQuery>& queries, bool cached_only_override) {
  const bool cached_only = options_.cached_only || cached_only_override;
  std::vector<ServiceReply> replies(queries.size());

  // Stage 1 — group by canonical signature and resolve each group through
  // the cache once.  std::map keeps group iteration deterministic.
  struct Group {
    std::shared_ptr<const ServedMechanism> entry;
    Status status = Status::OK();
    const char* cache = "none";
    std::vector<size_t> members;
  };
  std::map<std::string, Group> groups;
  for (size_t q = 0; q < queries.size(); ++q) {
    groups[queries[q].signature.CanonicalKey()].members.push_back(q);
  }
  // Per-query group pointers (map nodes are stable): the later stages
  // never rebuild a canonical key or re-search the map.
  std::vector<const Group*> group_of(queries.size());
  for (auto& [key, group] : groups) {
    for (size_t q : group.members) group_of[q] = &group;
  }
  // Resolve the batch's distinct signatures as one warm family: structural
  // families together, alpha ascending within a family, so every exact
  // miss after the first warm-starts from the just-published nearest-alpha
  // neighbor (the cache's seed search) instead of paying a cold phase 1.
  // The order is deterministic (structure, then exact alpha compare, then
  // canonical key) and only affects solve cost, never results: replies are
  // keyed by query index and charging below stays in input order.
  std::vector<std::pair<const std::string*, Group*>> solve_order;
  solve_order.reserve(groups.size());
  for (auto& [key, group] : groups) solve_order.push_back({&key, &group});
  std::sort(solve_order.begin(), solve_order.end(),
            [&](const auto& a, const auto& b) {
              const MechanismSignature& sa =
                  queries[a.second->members.front()].signature;
              const MechanismSignature& sb =
                  queries[b.second->members.front()].signature;
              const std::string ka = sa.StructuralKey();
              const std::string kb = sb.StructuralKey();
              if (ka != kb) return ka < kb;
              const int cmp = sa.alpha.Compare(sb.alpha);
              if (cmp != 0) return cmp < 0;
              return *a.first < *b.first;
            });
  size_t batch_solves = 0;
  for (auto& [key_ptr, group_ptr] : solve_order) {
    Group& group = *group_ptr;
    const ServiceQuery& first = queries[group.members.front()];
    // Already-solved signatures are served to everyone: a lookup is free.
    group.entry = cache_->Peek(first.signature);
    if (group.entry != nullptr) {
      group.cache = "hit";
      continue;
    }
    // A fresh solve is only justified when at least one member could be
    // admitted by the ledger right now.  Charges never raise a level, so
    // a group with no admissible member can never need the entry — its
    // members are headed for budget rejections either way, and solving
    // first would let an over-budget consumer burn unbounded solver time
    // (and the solve mutex) for free.
    bool worth_solving = ledger_ == nullptr;
    for (size_t q : group.members) {
      if (worth_solving) break;
      Result<BudgetDecision> preview =
          ledger_->Preview(queries[q].consumer,
                          queries[q].signature.alpha.ToDouble());
      worth_solving = preview.ok() && preview->allowed;
    }
    if (!worth_solving) {
      group.cache = "skipped";  // entry stays null; charges reject below
      continue;
    }
    // Overload shedding: in cached_only degraded mode no miss may solve,
    // and under max_batch_solves only the first K miss groups (in the
    // deterministic solve order above) are admitted.  Shed groups answer
    // Unavailable with a backoff hint; cached service above is untouched.
    // The per-call override is the event loop's eviction race showing up
    // here: work classified as cached a moment ago missed after all, and
    // the retry (off the I/O thread) is the place to solve it.
    if (cached_only ||
        (options_.max_batch_solves > 0 &&
         batch_solves >= options_.max_batch_solves)) {
      group.cache = "shed";
      group.status = Status::Unavailable(
          cached_only_override
              ? "signature is no longer cached (evicted since "
                "classification); retry to solve it"
              : options_.cached_only
                    ? "service is in cached-only degraded mode; signature is "
                      "not cached"
                    : "batch solve budget exhausted; retry later");
      continue;
    }
    // The group's deadline: the laxest among its members (one solve serves
    // them all; a member with no deadline means the solve may run
    // unbounded).  Queries without their own deadline inherit the default.
    int64_t deadline_ms = 0;
    bool unbounded = false;
    for (size_t q : group.members) {
      int64_t member_ms = queries[q].deadline_ms > 0
                              ? queries[q].deadline_ms
                              : options_.default_deadline_ms;
      if (member_ms <= 0) {
        unbounded = true;
        break;
      }
      deadline_ms = std::max(deadline_ms, member_ms);
    }
    if (unbounded) deadline_ms = 0;
    ++batch_solves;
    bool hit = false;
    Result<std::shared_ptr<const ServedMechanism>> entry =
        cache_->GetOrSolve(first.signature, &hit, deadline_ms);
    if (!entry.ok()) {
      if (entry.status().IsUnavailable()) group.cache = "shed";
      group.status = entry.status();
      continue;
    }
    group.entry = std::move(*entry);
    group.cache = hit ? "hit" : (group.entry->warm_started ? "warm" : "cold");
  }

  // Stage 2 — budget admission, strictly in input order (the ledger is
  // sequential state: a batch's earlier queries shrink the budget its
  // later ones see, exactly as if they had arrived one by one).
  std::vector<const ServedMechanism*> admitted(queries.size(), nullptr);
  for (size_t q = 0; q < queries.size(); ++q) {
    const ServiceQuery& query = queries[q];
    ServiceReply& reply = replies[q];
    if (ledger_ != nullptr) reply.budget = ledger_->budget();
    const Group& group = *group_of[q];
    if (!group.status.ok()) {
      reply.status = group.status;
      reply.cache = group.cache;
      if (group.status.IsUnavailable()) {
        reply.retry_after_ms = options_.retry_after_ms;
      }
      continue;
    }
    reply.cache = group.cache;
    if (group.entry != nullptr) {
      reply.optimal_loss = group.entry->loss;
      reply.lp_iterations = group.entry->lp_iterations;
    }
    if (query.true_count < 0 || query.true_count > query.signature.n) {
      reply.status =
          Status::OutOfRange("true count outside {0..n} for this signature");
      continue;
    }
    if (ledger_ != nullptr) {
      // Always sequential composition: a pipeline release is a fresh
      // independent sample, never part of an Algorithm-1 chain.
      Result<BudgetDecision> decision = ledger_->Charge(
          query.consumer, query.signature.alpha.ToDouble());
      if (!decision.ok()) {
        reply.status = decision.status();
        continue;
      }
      reply.composed_level = decision->composed_level;
      reply.budget = decision->budget;
      if (!decision->allowed) {
        reply.level_after = decision->current_level;
        reply.status = Status::FailedPrecondition(
            "privacy budget exceeded: release would compose consumer '" +
            query.consumer + "' to level " +
            std::to_string(decision->composed_level) + " < budget " +
            std::to_string(decision->budget));
        continue;
      }
      reply.level_after = decision->composed_level;
      reply.charged = true;
    } else {
      reply.composed_level = query.signature.alpha.ToDouble();
      reply.level_after = reply.composed_level;
    }
    if (group.entry == nullptr) {
      // Unreachable by construction: a skipped group had no admissible
      // member at batch start, and charges only lower levels — but never
      // sample from nothing if the invariant is ever broken.
      reply.status = Status::Internal(
          "query admitted for a signature whose solve was skipped");
      continue;
    }
    admitted[q] = group.entry.get();
  }

  // Stage 3 — sample the admitted requests.  Each iteration owns its
  // reply slot and draws from its own seeded stream; iterations share
  // nothing mutable, so the pool's scheduling cannot change any result.
  auto sample_one = [&](size_t q) {
    const ServedMechanism* entry = admitted[q];
    if (entry == nullptr) return;
    Xoshiro256 rng(queries[q].seed);
    Result<int> released = entry->mechanism.Sample(queries[q].true_count, rng);
    if (!released.ok()) {
      replies[q].status = released.status();
      return;
    }
    replies[q].released = *released;
  };
  if (pool_ != nullptr && queries.size() > 1) {
    // The pool is not reentrant (one ParallelFor at a time), and the
    // event-loop transport runs concurrent batches through one pipeline —
    // serialize just the fan-out, not the cache/ledger stages above.
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_->ParallelFor(queries.size(), sample_one);
  } else {
    for (size_t q = 0; q < queries.size(); ++q) sample_one(q);
  }
  return replies;
}

}  // namespace geopriv
