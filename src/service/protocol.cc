#include "service/protocol.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/metrics.h"
#include "util/stopwatch.h"

namespace geopriv {

namespace {

// Cursor over the request line; the parse functions advance `pos`.
struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  char Peek() { return pos < text.size() ? text[pos] : '\0'; }
};

Result<std::string> ParseJsonString(Cursor& c) {
  // c.Peek() == '"' on entry.
  ++c.pos;
  std::string out;
  while (c.pos < c.text.size()) {
    char ch = c.text[c.pos++];
    if (ch == '"') return out;
    if (ch == '\\') {
      if (c.pos >= c.text.size()) break;
      char esc = c.text[c.pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // \uXXXX must round-trip: JsonEscape emits it for control
          // characters, and a persisted ledger the parser cannot re-read
          // would brick the daemon's restart.
          if (c.pos + 4 > c.text.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int d = 0; d < 4; ++d) {
            const char hex = c.text[c.pos++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              return Status::InvalidArgument("malformed \\u escape");
            }
          }
          if (code >= 0xd800 && code <= 0xdfff) {
            return Status::InvalidArgument(
                "surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Status::InvalidArgument(
              std::string("unsupported string escape '\\") + esc + "'");
      }
      continue;
    }
    out.push_back(ch);
  }
  return Status::InvalidArgument("unterminated string");
}

Result<std::string> ParseJsonNumber(Cursor& c) {
  // Accepts JSON number syntax including exponents ("1e-05") — values the
  // service itself emits (composed levels, %.17g) must re-parse.
  const size_t begin = c.pos;
  if (c.Peek() == '-' || c.Peek() == '+') ++c.pos;
  bool digits = false, dot = false, exponent = false;
  while (c.pos < c.text.size()) {
    char ch = c.text[c.pos];
    if (ch >= '0' && ch <= '9') {
      digits = true;
      ++c.pos;
    } else if (ch == '.' && !dot && !exponent) {
      dot = true;
      ++c.pos;
    } else if ((ch == 'e' || ch == 'E') && !exponent && digits) {
      exponent = true;
      ++c.pos;
      if (c.Peek() == '-' || c.Peek() == '+') ++c.pos;
      digits = false;  // the exponent needs its own digits
    } else {
      break;
    }
  }
  if (!digits) return Status::InvalidArgument("malformed number");
  return c.text.substr(begin, c.pos - begin);
}

}  // namespace

Result<JsonObject> JsonObject::Parse(const std::string& line) {
  Cursor c{line};
  c.SkipSpace();
  if (c.Peek() != '{') {
    return Status::InvalidArgument("expected a JSON object ('{...}')");
  }
  ++c.pos;
  JsonObject object;
  c.SkipSpace();
  if (c.Peek() == '}') {
    ++c.pos;
  } else {
    for (;;) {
      c.SkipSpace();
      if (c.Peek() != '"') {
        return Status::InvalidArgument("expected a quoted key");
      }
      GEOPRIV_ASSIGN_OR_RETURN(std::string key, ParseJsonString(c));
      c.SkipSpace();
      if (c.Peek() != ':') {
        return Status::InvalidArgument("expected ':' after key '" + key +
                                       "'");
      }
      ++c.pos;
      c.SkipSpace();
      Value value;
      char head = c.Peek();
      if (head == '"') {
        GEOPRIV_ASSIGN_OR_RETURN(value.token, ParseJsonString(c));
        value.kind = Kind::kString;
      } else if (head == 't' && c.text.compare(c.pos, 4, "true") == 0) {
        c.pos += 4;
        value = {Kind::kBool, "true"};
      } else if (head == 'f' && c.text.compare(c.pos, 5, "false") == 0) {
        c.pos += 5;
        value = {Kind::kBool, "false"};
      } else if (head == '{' || head == '[') {
        return Status::InvalidArgument(
            "nested objects/arrays are not part of the protocol");
      } else if (head == 'n') {
        return Status::InvalidArgument("null values are not accepted");
      } else {
        GEOPRIV_ASSIGN_OR_RETURN(value.token, ParseJsonNumber(c));
        value.kind = Kind::kNumber;
      }
      if (!object.values_.emplace(key, std::move(value)).second) {
        return Status::InvalidArgument("duplicate key '" + key + "'");
      }
      c.SkipSpace();
      if (c.Peek() == ',') {
        ++c.pos;
        continue;
      }
      if (c.Peek() == '}') {
        ++c.pos;
        break;
      }
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }
  if (!c.AtEnd()) {
    return Status::InvalidArgument("trailing content after object");
  }
  return object;
}

Result<std::string> JsonObject::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kString) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return it->second.token;
}

Result<int64_t> JsonObject::GetInt(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kNumber ||
      it->second.token.find_first_of(".eE") != std::string::npos) {
    return Status::InvalidArgument("field '" + key +
                                   "' must be an integer");
  }
  // strtoll, not atoll: out-of-range input is a reported error, never the
  // undefined behavior / silent saturation the caller's range checks would
  // then be built on.
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.token.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("field '" + key +
                                   "' is out of integer range");
  }
  return static_cast<int64_t>(value);
}

Result<double> JsonObject::GetDouble(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kNumber) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return std::atof(it->second.token.c_str());
}

Result<bool> JsonObject::GetBool(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  if (it->second.kind != Kind::kBool) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return it->second.token == "true";
}

Result<std::string> JsonObject::GetRawToken(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  return it->second.token;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch) & 0xff);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

Result<ServiceRequest> ParseRequestLine(const std::string& line) {
  GEOPRIV_ASSIGN_OR_RETURN(JsonObject object, JsonObject::Parse(line));
  GEOPRIV_ASSIGN_OR_RETURN(std::string op, object.GetString("op"));
  ServiceRequest request;
  if (op == "ping") {
    request.op = ServiceOp::kPing;
    return request;
  }
  if (op == "shutdown") {
    request.op = ServiceOp::kShutdown;
    return request;
  }
  if (op == "stats") {
    request.op = ServiceOp::kStats;
    return request;
  }
  if (op == "metrics") {
    request.op = ServiceOp::kMetrics;
    return request;
  }
  if (op == "batch_begin") {
    request.op = ServiceOp::kBatchBegin;
    return request;
  }
  if (op == "batch_end") {
    request.op = ServiceOp::kBatchEnd;
    return request;
  }
  if (op == "budget") {
    request.op = ServiceOp::kBudget;
    GEOPRIV_ASSIGN_OR_RETURN(request.consumer, object.GetString("consumer"));
    return request;
  }
  if (op != "query") {
    return Status::InvalidArgument("unknown op '" + op + "'");
  }

  request.op = ServiceOp::kQuery;
  ServiceQuery& query = request.query;
  GEOPRIV_ASSIGN_OR_RETURN(query.consumer, object.GetString("consumer"));

  // Optional fields are strict when present: a mistyped value is an error,
  // never a silent default.  Integer fields are bounded BEFORE the cast to
  // int so out-of-range values cannot truncate into a different, valid
  // problem (n=2^32+5 must not quietly become n=5).
  std::string mode_name = "exact";
  if (object.Has("mode")) {
    GEOPRIV_ASSIGN_OR_RETURN(mode_name, object.GetString("mode"));
  }
  GEOPRIV_ASSIGN_OR_RETURN(ServeMode mode, ServeModeFromString(mode_name));
  // The n ceiling is a denial-of-service guard sized to what one entry
  // actually COSTS, in CPU as well as memory: exact LP solves serialize
  // on one solver mutex and grow superlinearly (n=16 is seconds, n=32 is
  // the practical edge), so the exact cap keeps one request from parking
  // the solve mutex for hours; a geometric entry is closed-form but holds
  // (n+1)^2 exact rationals plus samplers — n=1024 is ~50 MB, n=10^6
  // would be an unauthenticated one-line OOM.
  const int64_t max_n = mode == ServeMode::kGeometric ? 1024 : 32;
  GEOPRIV_ASSIGN_OR_RETURN(int64_t n, object.GetInt("n"));
  if (n < 0 || n > max_n) {
    return Status::InvalidArgument("field 'n' must lie in [0, " +
                                   std::to_string(max_n) + "] for mode " +
                                   mode_name);
  }
  GEOPRIV_ASSIGN_OR_RETURN(int64_t count, object.GetInt("count"));
  if (count < 0 || count > n) {
    return Status::InvalidArgument("field 'count' must lie in [0, n]");
  }
  GEOPRIV_ASSIGN_OR_RETURN(std::string alpha_token,
                           object.GetRawToken("alpha"));
  Result<Rational> alpha = Rational::FromString(alpha_token);
  if (!alpha.ok()) {
    return Status::InvalidArgument("field 'alpha': " +
                                   alpha.status().message());
  }
  std::string loss_name = "absolute";
  if (object.Has("loss")) {
    GEOPRIV_ASSIGN_OR_RETURN(loss_name, object.GetString("loss"));
  }
  int64_t lo = 0, hi = n;
  if (object.Has("lo")) {
    GEOPRIV_ASSIGN_OR_RETURN(lo, object.GetInt("lo"));
  }
  if (object.Has("hi")) {
    GEOPRIV_ASSIGN_OR_RETURN(hi, object.GetInt("hi"));
  }
  if (lo < 0 || lo > n || hi < 0 || hi > n) {
    return Status::InvalidArgument("fields 'lo'/'hi' must lie in [0, n]");
  }
  int64_t seed = 1;
  if (object.Has("seed")) {
    GEOPRIV_ASSIGN_OR_RETURN(seed, object.GetInt("seed"));
  }
  int64_t samples = 1;
  if (object.Has("samples")) {
    // K draws from the one per-request stream, charged as K releases
    // atomically (all admitted or the query is rejected whole).  The cap
    // bounds reply size and per-query ledger work the same way the batch
    // window cap bounds daemon memory.
    GEOPRIV_ASSIGN_OR_RETURN(samples, object.GetInt("samples"));
    if (samples < 1 || samples > 4096) {
      return Status::InvalidArgument(
          "field 'samples' must lie in [1, 4096]");
    }
  }
  int64_t deadline_ms = 0;
  if (object.Has("deadline_ms")) {
    GEOPRIV_ASSIGN_OR_RETURN(deadline_ms, object.GetInt("deadline_ms"));
    // Capped at 10 minutes: a huge "deadline" is a typo, not a bound, and
    // 0 (= none) is the spelling for unbounded.
    if (deadline_ms < 0 || deadline_ms > 600000) {
      return Status::InvalidArgument(
          "field 'deadline_ms' must lie in [0, 600000]");
    }
  }
  if (object.Has("trace")) {
    // Per-request tracing: the reply carries a per-stage timing breakdown
    // (trace_*_us fields) and the pipeline times its stages for this
    // batch.  "trace":false is tolerated and means untraced.
    GEOPRIV_ASSIGN_OR_RETURN(query.trace, object.GetBool("trace"));
  }
  if (object.Has("chained")) {
    // Min-composition is only sound for an actual Algorithm-1 chain; a
    // client-declared flag on independent samples would be a budget
    // bypass (min never drops, product does).  Rejected until a real
    // multilevel-serving op exists; "chained":false is tolerated.
    GEOPRIV_ASSIGN_OR_RETURN(const bool chained, object.GetBool("chained"));
    if (chained) {
      return Status::InvalidArgument(
          "'chained' accounting is not available for independent query "
          "sampling (it would discount releases that do not form an "
          "Algorithm-1 chain)");
    }
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      query.signature,
      MechanismSignature::Create(static_cast<int>(n), std::move(*alpha),
                                 loss_name, static_cast<int>(lo),
                                 static_cast<int>(hi), mode));
  query.true_count = static_cast<int>(count);
  query.seed = static_cast<uint64_t>(seed);
  query.samples = static_cast<int>(samples);
  query.deadline_ms = deadline_ms;
  return request;
}

namespace {

// to_chars-based integer append: the sampling path serializes one (or
// samples-many) integers per reply, and a per-value std::to_string heap
// string is measurable at batch sizes the columnar pipeline reaches.
template <typename Int>
void AppendInt(Int value, std::string* out) {
  char buf[24];
  const auto end = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, end.ptr);
}

}  // namespace

void AppendQueryReply(const ServiceQuery& query, const ServiceReply& reply,
                      std::string* out) {
  // Every query reply — pipeline-executed or shed at the transport —
  // passes through here, so this is the one place the reply-result
  // counters can be made to match what clients actually received.
  if (metrics::Enabled()) {
    metrics::Registry* registry = metrics::Registry::Default();
    static metrics::Counter* const replies_ok = registry->GetCounter(
        "geopriv_query_replies_total", "Query replies by result",
        {{"result", "ok"}});
    static metrics::Counter* const replies_rejected = registry->GetCounter(
        "geopriv_query_replies_total", "Query replies by result",
        {{"result", "rejected"}});
    static metrics::Counter* const replies_shed = registry->GetCounter(
        "geopriv_query_replies_total", "Query replies by result",
        {{"result", "shed"}});
    static metrics::Counter* const replies_error = registry->GetCounter(
        "geopriv_query_replies_total", "Query replies by result",
        {{"result", "error"}});
    if (reply.status.ok()) {
      replies_ok->Increment();
    } else if (reply.status.IsFailedPrecondition()) {
      replies_rejected->Increment();
    } else if (reply.status.IsUnavailable()) {
      replies_shed->Increment();
    } else {
      replies_error->Increment();
    }
  }
  Stopwatch serialize_watch;
  char buf[64];
  *out += "{\"op\":\"query\",\"ok\":";
  *out += reply.status.ok() ? "true" : "false";
  *out += ",\"consumer\":\"";
  *out += JsonEscape(query.consumer);
  *out += "\",\"signature\":\"";
  *out += JsonEscape(query.signature.CanonicalKey());
  *out += "\"";
  if (reply.status.ok()) {
    if (reply.released_values.size() > 1) {
      // Multi-draw query: all values, in stream order.  Single-draw
      // replies keep the historical scalar field byte for byte.
      *out += ",\"released\":[";
      for (size_t j = 0; j < reply.released_values.size(); ++j) {
        if (j > 0) out->push_back(',');
        AppendInt(reply.released_values[j], out);
      }
      out->push_back(']');
    } else {
      *out += ",\"released\":";
      AppendInt(reply.released, out);
    }
    *out += ",\"loss\":\"";
    *out += JsonEscape(reply.optimal_loss.ToString());
    *out += "\"";
  } else {
    *out += ",\"error\":\"";
    *out += JsonEscape(std::string(StatusCodeToString(reply.status.code())));
    *out += "\",\"message\":\"";
    *out += JsonEscape(reply.status.message());
    *out += "\"";
  }
  std::snprintf(buf, sizeof(buf), ",\"level\":%.17g", reply.level_after);
  *out += buf;
  std::snprintf(buf, sizeof(buf), ",\"composed_level\":%.17g",
                reply.composed_level);
  *out += buf;
  std::snprintf(buf, sizeof(buf), ",\"budget\":%.17g", reply.budget);
  *out += buf;
  if (reply.retry_after_ms > 0) {
    *out += ",\"retry_after_ms\":";
    AppendInt(reply.retry_after_ms, out);
  }
  *out += ",\"cache\":\"";
  *out += reply.cache;
  *out += "\"";
  if (reply.traced) {
    // Flat keys by protocol rule (no nesting).  The serialize span covers
    // the formatting up to this point; the send span happens after the
    // reply leaves this function and is recorded to histograms only.
    *out += ",\"trace_parse_us\":";
    AppendInt(reply.trace_parse_us, out);
    *out += ",\"trace_queue_us\":";
    AppendInt(reply.trace_queue_us, out);
    *out += ",\"trace_solve_us\":";
    AppendInt(reply.trace_solve_us, out);
    *out += ",\"trace_charge_us\":";
    AppendInt(reply.trace_charge_us, out);
    *out += ",\"trace_sample_us\":";
    AppendInt(reply.trace_sample_us, out);
    *out += ",\"trace_persist_us\":";
    AppendInt(reply.trace_persist_us, out);
    *out += ",\"trace_serialize_us\":";
    AppendInt(static_cast<int64_t>(serialize_watch.ElapsedMicros()), out);
  }
  *out += "}";
}

std::string FormatQueryReply(const ServiceQuery& query,
                             const ServiceReply& reply) {
  std::string out;
  out.reserve(192);
  AppendQueryReply(query, reply, &out);
  return out;
}

std::string FormatErrorReply(const std::string& op, const Status& status) {
  return "{\"op\":\"" + JsonEscape(op) + "\",\"ok\":false,\"error\":\"" +
         JsonEscape(std::string(StatusCodeToString(status.code()))) +
         "\",\"message\":\"" + JsonEscape(status.message()) + "\"}";
}

}  // namespace geopriv
