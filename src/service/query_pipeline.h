// Batched query pipeline: amortize solves, fan out samples.
//
// Under load the service sees many concurrent queries, and most share a
// signature (one negotiated contract, many data points).  The pipeline
// exploits that: a batch is grouped by canonical signature, each distinct
// signature is resolved through the solve cache exactly once (so a batch
// of 1000 queries against one contract pays one lookup — or one solve on
// the first ever batch), the budget ledger is charged in input order
// (deterministic: the ledger is sequential state), and sampling fans out
// across a worker pool.
//
// Determinism: every request carries its own seed, and its sample is drawn
// from a fresh Xoshiro256 stream seeded with it.  No request reads another
// request's RNG state, so ParallelFor's arbitrary interleaving cannot
// change any released value — the reply vector is bit-identical for every
// thread count, which tests/service_test.cc pins.

#ifndef GEOPRIV_SERVICE_QUERY_PIPELINE_H_
#define GEOPRIV_SERVICE_QUERY_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exact/rational.h"
#include "service/budget_ledger.h"
#include "service/mechanism_cache.h"
#include "service/signature.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace geopriv {

/// One count-query release request.  Every pipeline release is a FRESH
/// independent sample, so it always composes sequentially (product) —
/// there is deliberately no way to request Lemma-4 min-composition here:
/// that discount is only sound for an actual Algorithm-1 chain (each
/// release a post-processing of the previous one), which this pipeline
/// does not construct.  BudgetLedger keeps its chained API for a future
/// multilevel-serving op that really does chain.
struct ServiceQuery {
  std::string consumer;
  MechanismSignature signature;
  int true_count = 0;
  uint64_t seed = 1;  ///< per-request RNG stream seed
  /// Number of independent draws this query requests, all from the one
  /// per-request stream (draw j is the stream's j-th Sample — the
  /// scalar oracle order, which the batched kernel reproduces exactly).
  /// Each draw is a release: a K-draw query is admitted atomically for
  /// K sequential charges or rejected whole (BudgetLedger::ChargeMany).
  int samples = 1;
  /// Wall-clock bound on any fresh solve this query may trigger, in
  /// milliseconds; 0 defers to PipelineOptions::default_deadline_ms (and
  /// 0 there means none).  Cached lookups are never bounded — they are
  /// microseconds.  One solve serves a whole signature group, so the
  /// group's effective deadline is the laxest among its members (a member
  /// with no deadline lifts the bound for the shared solve).
  int64_t deadline_ms = 0;
  /// Request-level tracing: when set, the pipeline times its stages and
  /// the reply carries a per-stage breakdown (ServiceReply::traced).
  bool trace = false;
};

/// One per-request outcome.  `status` carries budget rejections and input
/// errors; the budget fields are reported either way.
struct ServiceReply {
  Status status;
  int released = -1;             ///< sampled value (when status is OK)
  /// All drawn values when the query asked for samples > 1 (released
  /// mirrors the first); empty for single-draw queries, whose wire
  /// replies must stay byte-identical to the historical format.
  std::vector<int32_t> released_values;
  double level_after = 1.0;      ///< consumer's composed level after charge
  double composed_level = 1.0;   ///< level the release composes/composed to
  double budget = 0.0;           ///< the ledger's floor
  Rational optimal_loss;         ///< the served mechanism's exact loss
  /// "hit" | "warm" | "cold" | "skipped" | "shed" | "none"
  const char* cache = "none";
  int lp_iterations = 0;
  /// True when the ledger recorded this release (the service only
  /// rewrites the persisted ledger when some reply in the batch charged).
  bool charged = false;
  /// Nonzero on shed replies (status Unavailable): the client should back
  /// off at least this long before retrying.
  int64_t retry_after_ms = 0;
  /// Per-stage timings, filled when the query set `trace`.  The pipeline
  /// stages are batch-level spans (one solve/charge/sample pass serves the
  /// whole batch); the transport adds its own spans (parse, queue wait,
  /// persist, serialize) before the reply is formatted.
  bool traced = false;
  int64_t trace_solve_us = 0;   ///< stage 1: group + cache resolve
  int64_t trace_charge_us = 0;  ///< stage 2: budget admission + charge
  int64_t trace_sample_us = 0;  ///< stage 3: sampling fan-out
  /// Transport spans, filled by the serving layer (not the pipeline):
  int64_t trace_parse_us = 0;    ///< request line parse + validation
  int64_t trace_queue_us = 0;    ///< event-loop executor queue wait
  int64_t trace_persist_us = 0;  ///< ledger rewrite after the batch
};

/// Pipeline tuning; all defaults preserve the historical behavior.
struct PipelineOptions {
  /// Sampling pool size (0 defers to GEOPRIV_THREADS).
  int threads = 0;
  /// Overload admission: at most this many fresh solves per batch; later
  /// miss groups are shed with Status::Unavailable and retry_after_ms.
  /// 0 means unbounded.
  size_t max_batch_solves = 0;
  /// Degraded mode: serve cached entries only; every miss group is shed.
  /// The switch an operator flips (or a future overload controller sets)
  /// when solver capacity must be protected.
  bool cached_only = false;
  /// Backoff hint attached to shed replies.
  int64_t retry_after_ms = 1000;
  /// Deadline applied to queries that do not carry their own; 0 = none.
  int64_t default_deadline_ms = 0;
  /// Time the pipeline stages for EVERY batch (three clock reads per
  /// batch) instead of only traced/sampled ones.  The server sets this
  /// when a slow-query threshold is configured, so slow-query lines
  /// always carry a full breakdown.
  bool time_stages = false;
};

class QueryPipeline {
 public:
  /// The cache and ledger are borrowed and must outlive the pipeline.
  QueryPipeline(MechanismCache* cache, BudgetLedger* ledger,
                PipelineOptions options = {});
  /// Convenience overload: only the sampling pool size.
  QueryPipeline(MechanismCache* cache, BudgetLedger* ledger, int threads)
      : QueryPipeline(cache, ledger, PipelineOptions{threads, 0, false,
                                                     1000, 0}) {}

  /// Executes a batch: group by signature -> resolve each signature once
  /// through the cache -> charge the ledger in input order -> sample the
  /// admitted requests in parallel.  Replies come back in input order.
  /// Per-request failures land in the reply's status; the call itself only
  /// fails on internal errors.  Thread-safe: concurrent batches (the
  /// event-loop transport's executor workers plus its inline cached path)
  /// synchronize on the cache, the ledger, and the sampling pool; each
  /// batch is internally deterministic regardless of what runs beside it.
  ///
  /// Miss groups resolve as one warm family: distinct unsolved signatures
  /// are taken in (structure, alpha) order, so each exact solve seeds the
  /// next via the cache's nearest-alpha warm start — a cold batch over an
  /// alpha grid pays one cold phase 1, not one per signature.
  std::vector<ServiceReply> ExecuteBatch(
      const std::vector<ServiceQuery>& queries);

  /// Same, with a per-call cached-only override (effective mode is
  /// options().cached_only || cached_only_override).  The event loop sets
  /// the override when executing work it classified as fully cached on
  /// the I/O thread: if an entry was evicted between classification and
  /// execution, the miss is shed as transient Unavailable — the client's
  /// retry re-routes through the executor — instead of cold-solving
  /// inline or stalling the loop.
  std::vector<ServiceReply> ExecuteBatch(
      const std::vector<ServiceQuery>& queries, bool cached_only_override);

 private:
  MechanismCache* cache_;
  BudgetLedger* ledger_;
  PipelineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // sampling fan-out (may be null)
  std::mutex pool_mu_;  // the pool is not reentrant; one fan-out at a time
};

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_QUERY_PIPELINE_H_
