// Batched query pipeline: amortize solves, fan out samples.
//
// Under load the service sees many concurrent queries, and most share a
// signature (one negotiated contract, many data points).  The pipeline
// exploits that: a batch is grouped by canonical signature, each distinct
// signature is resolved through the solve cache exactly once (so a batch
// of 1000 queries against one contract pays one lookup — or one solve on
// the first ever batch), the budget ledger is charged in input order
// (deterministic: the ledger is sequential state), and sampling fans out
// across a worker pool.
//
// Determinism: every request carries its own seed, and its sample is drawn
// from a fresh Xoshiro256 stream seeded with it.  No request reads another
// request's RNG state, so ParallelFor's arbitrary interleaving cannot
// change any released value — the reply vector is bit-identical for every
// thread count, which tests/service_test.cc pins.

#ifndef GEOPRIV_SERVICE_QUERY_PIPELINE_H_
#define GEOPRIV_SERVICE_QUERY_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exact/rational.h"
#include "service/budget_ledger.h"
#include "service/mechanism_cache.h"
#include "service/signature.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace geopriv {

/// One count-query release request.  Every pipeline release is a FRESH
/// independent sample, so it always composes sequentially (product) —
/// there is deliberately no way to request Lemma-4 min-composition here:
/// that discount is only sound for an actual Algorithm-1 chain (each
/// release a post-processing of the previous one), which this pipeline
/// does not construct.  BudgetLedger keeps its chained API for a future
/// multilevel-serving op that really does chain.
struct ServiceQuery {
  std::string consumer;
  MechanismSignature signature;
  int true_count = 0;
  uint64_t seed = 1;  ///< per-request RNG stream seed
};

/// One per-request outcome.  `status` carries budget rejections and input
/// errors; the budget fields are reported either way.
struct ServiceReply {
  Status status;
  int released = -1;             ///< sampled value (when status is OK)
  double level_after = 1.0;      ///< consumer's composed level after charge
  double composed_level = 1.0;   ///< level the release composes/composed to
  double budget = 0.0;           ///< the ledger's floor
  Rational optimal_loss;         ///< the served mechanism's exact loss
  const char* cache = "none";    ///< "hit" | "warm" | "cold" | "skipped" | "none"
  int lp_iterations = 0;
  /// True when the ledger recorded this release (the service only
  /// rewrites the persisted ledger when some reply in the batch charged).
  bool charged = false;
};

class QueryPipeline {
 public:
  /// The cache and ledger are borrowed and must outlive the pipeline.
  /// `threads` sizes the sampling pool (0 defers to GEOPRIV_THREADS).
  QueryPipeline(MechanismCache* cache, BudgetLedger* ledger, int threads = 0);

  /// Executes a batch: group by signature -> resolve each signature once
  /// through the cache -> charge the ledger in input order -> sample the
  /// admitted requests in parallel.  Replies come back in input order.
  /// Per-request failures land in the reply's status; the call itself only
  /// fails on internal errors.
  std::vector<ServiceReply> ExecuteBatch(
      const std::vector<ServiceQuery>& queries);

 private:
  MechanismCache* cache_;
  BudgetLedger* ledger_;
  std::unique_ptr<ThreadPool> pool_;  // sampling fan-out (may be null)
};

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_QUERY_PIPELINE_H_
