// MechanismService: the deployable front of the library.
//
// Owns the three service pieces — sharded solve cache, privacy-budget
// ledger, batched query pipeline — and speaks the JSONL protocol
// (protocol.h) one line at a time.  The same HandleLine drives every
// transport: the geopriv_serve daemon's stdin loop, its TCP loop, the
// geopriv_cli `serve`/`query` subcommands, and the in-process tests.
//
// Batching over the wire: lines between {"op":"batch_begin"} and
// {"op":"batch_end"} are buffered (each acknowledged with op "queued") and
// executed as ONE pipeline batch at batch_end — grouped by signature,
// solved once per distinct signature, budget-charged in arrival order,
// sampled in parallel.  Queries outside a batch window execute
// immediately as a batch of one.
//
// Concurrency: the batch window is SESSION state, not service state.  Each
// transport connection owns a BatchWindow and hands it to HandleLine /
// HandleRequest; the service itself (cache, ledger, pipeline, persistence)
// is safe to drive from concurrent sessions, which is what the event-loop
// TCP transport (event_loop.h) does.  The window-less HandleLine overload
// keeps the historical single-session API for the stdin loop and tests.

#ifndef GEOPRIV_SERVICE_SERVER_H_
#define GEOPRIV_SERVICE_SERVER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "service/budget_ledger.h"
#include "service/mechanism_cache.h"
#include "service/protocol.h"
#include "service/query_pipeline.h"
#include "util/result.h"

namespace geopriv {

struct ServiceOptions {
  /// Budget floor: no consumer's composed level may drop below this.
  /// 0 disables enforcement (levels are still tracked).
  double budget_alpha = 0.0;
  /// Cache shard count.
  size_t shards = 8;
  /// Worker threads for solves and sampling fan-out (0 defers to
  /// GEOPRIV_THREADS, else serial).
  int threads = 0;
  /// When non-empty: entries are loaded from here on LoadPersisted() and
  /// written back on Persist() (the daemon persists at shutdown/EOF).
  std::string persist_dir;
  /// Base exact-solver configuration for cache misses.
  ExactSimplexOptions solver;
  /// Deadline applied to queries that carry none of their own; 0 = none.
  int64_t default_deadline_ms = 0;
  /// Solve-admission bound passed to the cache: at most this many solves
  /// may be pending at once before further misses are shed.  0 = unbounded.
  size_t max_pending = 0;
  /// Cache LRU bounds (CacheOptions::max_entries/max_bytes); 0 = unbounded.
  /// Entry count is a soft bound: per-class warm-start anchors stay pinned.
  size_t max_entries = 0;
  size_t max_bytes = 0;
  /// Backoff hint attached to shed (Unavailable) replies, milliseconds.
  int64_t retry_after_ms = 1000;
  /// TCP transport: drop a client that sends nothing for this long.
  /// 0 = wait forever (the historical behavior).
  int64_t idle_timeout_ms = 0;
  /// Degraded mode: serve cached entries only, shed every miss.
  bool cached_only = false;
  /// Event-loop transport: batch-executor threads that run solve-bearing
  /// work off the I/O thread, so a slow cold solve never stalls
  /// cached-signature traffic on other connections.  0 picks a small
  /// default (2, or more when the hardware has cores to spare).
  int workers = 0;
  /// Serve TCP with the historical one-client-at-a-time accept loop
  /// instead of the event loop — the baseline the load bench compares
  /// against, and an escape hatch if the event loop misbehaves.
  bool serial_accept = false;
  /// Loopback HTTP metrics endpoint: the event loop additionally listens
  /// on 127.0.0.1:metrics_port and answers GET /metrics with the
  /// Prometheus text exposition.  0 picks a free port; -1 (default)
  /// disables the listener.  Ignored by the serial transport.
  int metrics_port = -1;
  /// Slow-query log: a query whose end-to-end handling (parse + queue +
  /// pipeline + persist) takes at least this long is logged as one JSONL
  /// line with its full stage breakdown.  0 (default) disables.
  int64_t slow_query_ms = 0;
  /// Slow-query log sink; nullptr means stderr.  Borrowed, not owned.
  std::ostream* slow_query_log = nullptr;
};

/// One protocol session's batch-window state.  Every transport connection
/// owns one; the stdin loop uses the service's built-in default window.
struct BatchWindow {
  bool open = false;
  std::vector<ServiceQuery> pending;
  void Reset() {
    open = false;
    pending.clear();
  }
};

class MechanismService {
 public:
  explicit MechanismService(ServiceOptions options = {});

  /// Handles one protocol line and returns the response — usually one
  /// line, but batch_end returns one reply line per buffered query plus a
  /// summary line (separated by '\n', no trailing newline).  Blank input
  /// returns an empty string (no response).  Sets *shutdown on a shutdown
  /// request.  This overload uses the service's built-in default window
  /// (the single-session API: stdin loop, CLI one-shots, tests) and must
  /// not race with itself; concurrent transports use the overload below.
  std::string HandleLine(const std::string& line, bool* shutdown);

  /// Same, against a caller-owned batch window.  Safe to call from
  /// concurrent threads as long as each window is driven by one thread at
  /// a time — the shared pieces (cache, ledger, pipeline, ledger
  /// persistence) synchronize internally.
  std::string HandleLine(const std::string& line, BatchWindow* window,
                         bool* shutdown);

  /// The parsed-request entry point the event loop uses: it parses lines
  /// itself (to classify cached-only work), then executes through here so
  /// request semantics can never drift between transports.
  ///
  /// `cached_only` is the event loop's inline-execution guard: work it
  /// classified as fully cached runs on the I/O thread with the flag set,
  /// so if an entry was evicted between classification and execution the
  /// miss is shed as transient Unavailable (the client's retry re-routes
  /// through the executor) instead of cold-solving on the I/O thread —
  /// and never answered with the wrong mechanism.
  std::string HandleRequest(const ServiceRequest& request, BatchWindow* window,
                            bool* shutdown, bool cached_only = false);

  /// Discards the default window's open batch (buffered queries are
  /// dropped uncharged).  Transports call this when a client disconnects
  /// so a dropped connection's half-built batch can neither wedge the
  /// service in queueing mode nor be flushed — and budget-charged — by the
  /// NEXT client's batch_end.
  void ResetBatch() { default_window_.Reset(); }

  /// Loads persisted cache entries and the ledger (no-op without
  /// persist_dir); returns the number of entries loaded.  Corrupt cache
  /// files are quarantined, not fatal (details in cache().GetStats());
  /// a corrupt ledger IS fatal — it is the budget floor's memory.
  Result<int> LoadPersisted();
  /// Flushes durable state (no-op without persist_dir).  Cache entries
  /// persist continuously at publish time, so this is the ledger rewrite.
  Status Persist();

  MechanismCache& cache() { return cache_; }
  BudgetLedger& ledger() { return ledger_; }
  QueryPipeline& pipeline() { return pipeline_; }
  const ServiceOptions& options() const { return options_; }

  /// Prometheus text exposition of the process metrics registry, with
  /// this service's cache and ledger aggregates synced in first.  What
  /// the HTTP GET /metrics endpoint serves.
  std::string MetricsText();

  /// The `metrics` protocol op's reply body: the same registry as one
  /// flat JSON line (labels flattened into key suffixes; histograms as
  /// their _count/_sum aggregates — buckets are Prometheus-only).
  std::string MetricsJson();

 private:
  /// Rewrites just the ledger file (cheap: one line per consumer).
  /// Called after every batch that charged, so a crash between batches
  /// never resets spent budget; the solve cache, which is a pure
  /// performance artifact, still persists only at shutdown/EOF.
  /// Serialized on persist_mu_ — concurrent sessions may both finish a
  /// charging batch, and the write-then-rename dance must not interleave.
  Status PersistLedger();
  Status PersistLedgerLocked();
  /// PersistLedger, skipped when no reply in the batch recorded a charge.
  Status PersistLedgerIfCharged(const std::vector<ServiceReply>& replies);

  /// Mirrors the cache/ledger aggregates into the process registry.
  /// Caller must hold the process-wide metrics sync mutex (the stats and
  /// metrics ops sync-then-read atomically so concurrent services cannot
  /// interleave their snapshots).
  void SyncMetricsLocked();

  /// Emits one slow-query JSONL line when options_.slow_query_ms is set
  /// and `total_us` crosses it.
  void MaybeLogSlowQuery(const ServiceQuery& query, const ServiceReply& reply,
                         int64_t total_us);

  ServiceOptions options_;
  MechanismCache cache_;
  BudgetLedger ledger_;
  QueryPipeline pipeline_;
  BatchWindow default_window_;
  std::mutex persist_mu_;
  std::mutex slow_log_mu_;  ///< slow-query lines must not interleave
};

/// Reads request lines from `in` until EOF or shutdown, writing each
/// response chunk (plus newline) to `out` and flushing per line.  Persists
/// the cache on exit when configured.  The daemon's stdin transport and
/// the tests' harness.
Status RunServeLoop(std::istream& in, std::ostream& out,
                    MechanismService& service);

/// Serves the same protocol over TCP on 127.0.0.1:`port` (0 picks a free
/// port).  Announces "geopriv_serve listening on 127.0.0.1:<port>" on
/// `announce` before accepting.  By default this is the concurrent
/// event-loop transport (event_loop.h: epoll with a poll fallback,
/// per-connection batch windows, write backpressure, idle timer wheel,
/// graceful drain); ServiceOptions::serial_accept selects the historical
/// one-client-at-a-time loop.  Returns after a shutdown request
/// (persisting when configured).
Status ServeTcp(int port, MechanismService& service, std::ostream& announce);

/// The historical serial accept loop: clients served one at a time, each
/// to completion.  Kept as the load bench's baseline and as the
/// --serial-accept escape hatch.
Status ServeTcpSerial(int port, MechanismService& service,
                      std::ostream& announce);

/// One-shot client for the daemon's TCP transport: sends `line`, returns
/// the response chunk (batch replies arrive as multiple lines).
Result<std::string> TcpRequest(const std::string& host, int port,
                               const std::string& line);

/// Client-side retry policy for TcpRequestWithRetry.
struct RetryOptions {
  /// Total attempts (first try included).  1 degenerates to TcpRequest.
  int attempts = 3;
  /// First backoff; each retry doubles it, capped at max_backoff_ms.
  int64_t base_backoff_ms = 100;
  int64_t max_backoff_ms = 2000;
  /// Jitter stream seed.  Full jitter (uniform in [0, backoff]) keeps a
  /// thundering herd of shed clients from re-converging on the same tick.
  uint64_t jitter_seed = 1;
};

/// TcpRequest wrapped in capped exponential backoff with full jitter.
/// Retries transport failures (connect refused, connection lost) and
/// replies the server marked transient (op-level Unavailable shed replies
/// carrying "retry_after_ms"); when the reply names a retry_after_ms, the
/// wait honors it as the backoff floor.  Permanent errors — parse errors,
/// budget rejections, deadline timeouts — return immediately: retrying
/// them would spend budget or wall-clock for an identical answer.
Result<std::string> TcpRequestWithRetry(const std::string& host, int port,
                                        const std::string& line,
                                        const RetryOptions& retry = {});

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_SERVER_H_
