// MechanismService: the deployable front of the library.
//
// Owns the three service pieces — sharded solve cache, privacy-budget
// ledger, batched query pipeline — and speaks the JSONL protocol
// (protocol.h) one line at a time.  The same HandleLine drives every
// transport: the geopriv_serve daemon's stdin loop, its TCP loop, the
// geopriv_cli `serve`/`query` subcommands, and the in-process tests.
//
// Batching over the wire: lines between {"op":"batch_begin"} and
// {"op":"batch_end"} are buffered (each acknowledged with op "queued") and
// executed as ONE pipeline batch at batch_end — grouped by signature,
// solved once per distinct signature, budget-charged in arrival order,
// sampled in parallel.  Queries outside a batch window execute
// immediately as a batch of one.

#ifndef GEOPRIV_SERVICE_SERVER_H_
#define GEOPRIV_SERVICE_SERVER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "service/budget_ledger.h"
#include "service/mechanism_cache.h"
#include "service/protocol.h"
#include "service/query_pipeline.h"
#include "util/result.h"

namespace geopriv {

struct ServiceOptions {
  /// Budget floor: no consumer's composed level may drop below this.
  /// 0 disables enforcement (levels are still tracked).
  double budget_alpha = 0.0;
  /// Cache shard count.
  size_t shards = 8;
  /// Worker threads for solves and sampling fan-out (0 defers to
  /// GEOPRIV_THREADS, else serial).
  int threads = 0;
  /// When non-empty: entries are loaded from here on LoadPersisted() and
  /// written back on Persist() (the daemon persists at shutdown/EOF).
  std::string persist_dir;
  /// Base exact-solver configuration for cache misses.
  ExactSimplexOptions solver;
  /// Deadline applied to queries that carry none of their own; 0 = none.
  int64_t default_deadline_ms = 0;
  /// Solve-admission bound passed to the cache: at most this many solves
  /// may be pending at once before further misses are shed.  0 = unbounded.
  size_t max_pending = 0;
  /// Backoff hint attached to shed (Unavailable) replies, milliseconds.
  int64_t retry_after_ms = 1000;
  /// TCP transport: drop a client that sends nothing for this long.
  /// 0 = wait forever (the historical behavior).
  int64_t idle_timeout_ms = 0;
  /// Degraded mode: serve cached entries only, shed every miss.
  bool cached_only = false;
};

class MechanismService {
 public:
  explicit MechanismService(ServiceOptions options = {});

  /// Handles one protocol line and returns the response — usually one
  /// line, but batch_end returns one reply line per buffered query plus a
  /// summary line (separated by '\n', no trailing newline).  Blank input
  /// returns an empty string (no response).  Sets *shutdown on a shutdown
  /// request.
  std::string HandleLine(const std::string& line, bool* shutdown);

  /// Discards an open batch window (buffered queries are dropped
  /// uncharged).  Transports call this when a client disconnects so a
  /// dropped connection's half-built batch can neither wedge the service
  /// in queueing mode nor be flushed — and budget-charged — by the NEXT
  /// client's batch_end.
  void ResetBatch() {
    in_batch_ = false;
    pending_.clear();
  }

  /// Loads persisted cache entries (no-op without persist_dir).
  Result<int> LoadPersisted();
  /// Writes cache entries back (no-op without persist_dir).
  Status Persist();

  MechanismCache& cache() { return cache_; }
  BudgetLedger& ledger() { return ledger_; }
  QueryPipeline& pipeline() { return pipeline_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::string HandleParsed(const ServiceRequest& request, bool* shutdown);

  /// Rewrites just the ledger file (cheap: one line per consumer).
  /// Called after every batch that charged, so a crash between batches
  /// never resets spent budget; the solve cache, which is a pure
  /// performance artifact, still persists only at shutdown/EOF.
  Status PersistLedger();
  /// PersistLedger, skipped when no reply in the batch recorded a charge.
  Status PersistLedgerIfCharged(const std::vector<ServiceReply>& replies);

  ServiceOptions options_;
  MechanismCache cache_;
  BudgetLedger ledger_;
  QueryPipeline pipeline_;
  bool in_batch_ = false;
  std::vector<ServiceQuery> pending_;
};

/// Reads request lines from `in` until EOF or shutdown, writing each
/// response chunk (plus newline) to `out` and flushing per line.  Persists
/// the cache on exit when configured.  The daemon's stdin transport and
/// the tests' harness.
Status RunServeLoop(std::istream& in, std::ostream& out,
                    MechanismService& service);

/// Serves the same protocol over TCP on 127.0.0.1:`port` (0 picks a free
/// port).  Announces "geopriv_serve listening on 127.0.0.1:<port>" on
/// `announce` before accepting.  Clients are served one at a time; the
/// loop returns after a shutdown request (persisting when configured).
Status ServeTcp(int port, MechanismService& service, std::ostream& announce);

/// One-shot client for the daemon's TCP transport: sends `line`, returns
/// the response chunk (batch replies arrive as multiple lines).
Result<std::string> TcpRequest(const std::string& host, int port,
                               const std::string& line);

/// Client-side retry policy for TcpRequestWithRetry.
struct RetryOptions {
  /// Total attempts (first try included).  1 degenerates to TcpRequest.
  int attempts = 3;
  /// First backoff; each retry doubles it, capped at max_backoff_ms.
  int64_t base_backoff_ms = 100;
  int64_t max_backoff_ms = 2000;
  /// Jitter stream seed.  Full jitter (uniform in [0, backoff]) keeps a
  /// thundering herd of shed clients from re-converging on the same tick.
  uint64_t jitter_seed = 1;
};

/// TcpRequest wrapped in capped exponential backoff with full jitter.
/// Retries transport failures (connect refused, connection lost) and
/// replies the server marked transient (op-level Unavailable shed replies
/// carrying "retry_after_ms"); when the reply names a retry_after_ms, the
/// wait honors it as the backoff floor.  Permanent errors — parse errors,
/// budget rejections, deadline timeouts — return immediately: retrying
/// them would spend budget or wall-clock for an identical answer.
Result<std::string> TcpRequestWithRetry(const std::string& host, int port,
                                        const std::string& line,
                                        const RetryOptions& retry = {});

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_SERVER_H_
