// The geopriv_serve line protocol: one JSON object per line, in and out.
//
// Dependency-free on purpose — the parser below understands exactly the
// subset the protocol needs (flat objects, string / number / boolean
// values, no nesting) and rejects everything else with a useful message.
// The full grammar, request catalog and examples live in docs/SERVICE.md.
//
// Requests (one per line):
//   {"op":"query","consumer":C,"n":N,"alpha":A,"count":K, ...}
//   {"op":"batch_begin"} ... {"op":"batch_end"}
//   {"op":"budget","consumer":C}
//   {"op":"stats"} | {"op":"ping"} | {"op":"shutdown"}
//
// `alpha` may be a JSON number (parsed as an exact decimal: 0.3 means
// 3/10, not the nearest double) or a string rational like "1/3" — the
// latter is the only lossless spelling for non-dyadic levels.

#ifndef GEOPRIV_SERVICE_PROTOCOL_H_
#define GEOPRIV_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>

#include "service/query_pipeline.h"
#include "util/result.h"

namespace geopriv {

/// A parsed flat JSON object: keys mapped to raw value tokens.
class JsonObject {
 public:
  /// Parses one flat JSON object.  Rejects nested objects/arrays, null,
  /// duplicate keys, and trailing content.
  static Result<JsonObject> Parse(const std::string& line);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// The decoded string value; fails when absent or not a string.
  /// There are deliberately no silently-defaulting getters: a field that
  /// is present with the wrong type is a protocol error, never a default
  /// (a mistyped "hi" must not quietly serve the unrestricted mechanism).
  Result<std::string> GetString(const std::string& key) const;

  /// Integer value; fails when absent, not a number, or fractional.
  Result<int64_t> GetInt(const std::string& key) const;

  Result<double> GetDouble(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;

  /// The raw token (string values decoded, numbers verbatim) — what
  /// Rational::FromString wants for "alpha": both 0.3 and "1/3" work.
  Result<std::string> GetRawToken(const std::string& key) const;

 private:
  enum class Kind { kString, kNumber, kBool };
  struct Value {
    Kind kind;
    std::string token;  // decoded string / verbatim number / "true"/"false"
  };
  std::map<std::string, Value> values_;
};

/// Escapes a string for embedding in a JSON response line.
std::string JsonEscape(const std::string& text);

/// The service operations a request line can name.
enum class ServiceOp {
  kQuery,
  kBatchBegin,
  kBatchEnd,
  kBudget,
  kStats,
  kMetrics,
  kPing,
  kShutdown,
};

/// One parsed request line.
struct ServiceRequest {
  ServiceOp op = ServiceOp::kPing;
  ServiceQuery query;    ///< populated for kQuery
  std::string consumer;  ///< populated for kBudget
  /// Transport-filled trace spans, microseconds: time spent parsing the
  /// request line, and (event-loop transport) waiting in the executor
  /// queue.  Copied into traced replies and the slow-query log.
  int64_t parse_us = 0;
  int64_t queue_us = 0;
};

/// Parses and validates one request line (including the signature
/// canonicalization for queries).
Result<ServiceRequest> ParseRequestLine(const std::string& line);

/// Response formatting: every reply is one JSON line.
///
/// AppendQueryReply is the batch-aware form: it serializes straight into
/// `out` (integers via to_chars, no per-reply temporary strings), so a
/// batch_end response builds one reserved buffer instead of
/// concatenating per-reply strings.  Every query reply — batched,
/// single, or shed at the transport — passes through it, which keeps
/// the geopriv_query_replies_total choke-point accounting exact.
void AppendQueryReply(const ServiceQuery& query, const ServiceReply& reply,
                      std::string* out);
std::string FormatQueryReply(const ServiceQuery& query,
                             const ServiceReply& reply);
std::string FormatErrorReply(const std::string& op, const Status& status);

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_PROTOCOL_H_
