#include "service/mechanism_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/geometric.h"
#include "core/io.h"
#include "core/optimal_exact.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace geopriv {

namespace {

namespace fs = std::filesystem;

using SteadyClock = std::chrono::steady_clock;

constexpr char kEntryHeader[] = "geopriv-service-entry v1";
constexpr char kManifestHeader[] = "geopriv-manifest v1";
constexpr char kManifestName[] = "manifest";
constexpr char kQuarantineDir[] = "quarantine";

// Milliseconds left before `deadline`, floored at 1 so a nearly-expired
// deadline still reaches the per-pivot check instead of rounding to
// "unlimited" (0 means "no deadline" everywhere downstream).
int64_t RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return std::max<int64_t>(1, left.count());
}

// Stable on-disk identity of an entry: 16 hex digits of the canonical-key
// hash.  The entry file is "<stem>.entry", its basis "<stem>.basis".
std::string HashStem(const MechanismSignature& signature) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    SignatureHash(signature.CanonicalKey())));
  return std::string(buf);
}

bool StructurallyCompatible(const MechanismSignature& a,
                            const MechanismSignature& b) {
  return a.mode == b.mode && a.n == b.n && a.lo == b.lo && a.hi == b.hi;
}

// Moves a failed-validation file into dir/quarantine/ so it is preserved
// for inspection but can never be loaded (or re-quarantined) again.  Falls
// back to deleting it if the rename fails — an unloadable file must not
// brick every subsequent start.
void QuarantineFile(const fs::path& dir, const fs::path& path) {
  std::error_code ec;
  fs::create_directories(dir / kQuarantineDir, ec);
  fs::rename(path, dir / kQuarantineDir / path.filename(), ec);
  if (ec) fs::remove(path, ec);
}

// The manifest is the authoritative index of live entries:
//
//   geopriv-manifest v1
//   checksum <16 hex digits>
//   entry <stem>
//   ...
//
// with the checksum covering the entry lines.  A stem present on disk but
// absent here is debris from a crashed eviction or a crashed publish and
// must not be loaded; a stem listed here but missing on disk was half-
// evicted and is skipped.
Result<std::vector<std::string>> ParseManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::InvalidArgument("missing 'geopriv-manifest v1' header");
  }
  if (!std::getline(in, line) || line.size() != 9 + 16 ||
      line.compare(0, 9, "checksum ") != 0) {
    return Status::InvalidArgument("missing 'checksum <16 hex>' line");
  }
  const std::string stored = line.substr(9);
  const std::string body = text.substr(static_cast<size_t>(in.tellg()));
  if (Fnv1a64Hex(body) != stored) {
    return Status::InvalidArgument("manifest checksum mismatch");
  }
  std::vector<std::string> stems;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.compare(0, 6, "entry ") != 0 || line.size() == 6) {
      return Status::InvalidArgument("malformed manifest line '" + line +
                                     "'");
    }
    stems.push_back(line.substr(6));
  }
  return stems;
}

// Miss solves are millisecond-scale, so the clock reads and interned
// lookups below are noise there; the hit path records nothing.
void RecordSolveMetrics(const ServedMechanism& entry, double micros) {
  if (!metrics::Enabled()) return;
  metrics::Registry* registry = metrics::Registry::Default();
  static metrics::Histogram* const latency_warm = registry->GetHistogram(
      "geopriv_cache_solve_latency_us",
      "Miss solve wall time in microseconds, by warm-start outcome",
      {{"start", "warm"}});
  static metrics::Histogram* const latency_cold = registry->GetHistogram(
      "geopriv_cache_solve_latency_us",
      "Miss solve wall time in microseconds, by warm-start outcome",
      {{"start", "cold"}});
  static metrics::Histogram* const pivots_p1_warm = registry->GetHistogram(
      "geopriv_solver_pivots",
      "Simplex pivots per miss solve, by phase and warm-start outcome",
      {{"phase", "1"}, {"start", "warm"}});
  static metrics::Histogram* const pivots_p2_warm = registry->GetHistogram(
      "geopriv_solver_pivots",
      "Simplex pivots per miss solve, by phase and warm-start outcome",
      {{"phase", "2"}, {"start", "warm"}});
  static metrics::Histogram* const pivots_p1_cold = registry->GetHistogram(
      "geopriv_solver_pivots",
      "Simplex pivots per miss solve, by phase and warm-start outcome",
      {{"phase", "1"}, {"start", "cold"}});
  static metrics::Histogram* const pivots_p2_cold = registry->GetHistogram(
      "geopriv_solver_pivots",
      "Simplex pivots per miss solve, by phase and warm-start outcome",
      {{"phase", "2"}, {"start", "cold"}});
  const bool warm = entry.warm_started;
  (warm ? latency_warm : latency_cold)
      ->Observe(static_cast<int64_t>(micros));
  (warm ? pivots_p1_warm : pivots_p1_cold)->Observe(entry.phase1_iterations);
  (warm ? pivots_p2_warm : pivots_p2_cold)->Observe(entry.phase2_iterations);
}

}  // namespace

MechanismCache::MechanismCache(CacheOptions options)
    : options_(std::move(options)),
      shards_(options_.shards == 0 ? 1 : options_.shards) {
  const int threads = ThreadPool::ConfiguredThreads(options_.threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

MechanismCache::Shard& MechanismCache::ShardFor(
    const MechanismSignature& signature) {
  return shards_[SignatureHash(signature.StructuralKey()) % shards_.size()];
}

const MechanismCache::Shard& MechanismCache::ShardFor(
    const MechanismSignature& signature) const {
  return shards_[SignatureHash(signature.StructuralKey()) % shards_.size()];
}

Result<ServedMechanism> MechanismCache::SolveLocked(
    const MechanismSignature& signature, const LpBasis* warm_seed,
    int64_t deadline_ms) const {
  GEOPRIV_ASSIGN_OR_RETURN(ExactLossFunction loss, signature.ResolveLoss());
  GEOPRIV_ASSIGN_OR_RETURN(SideInformation side, signature.ResolveSide());

  ServedMechanism entry;
  entry.signature = signature;

  if (signature.mode == ServeMode::kGeometric) {
    GEOPRIV_ASSIGN_OR_RETURN(
        RationalMatrix matrix,
        GeometricMechanism::BuildExactMatrix(signature.n, signature.alpha));
    GEOPRIV_ASSIGN_OR_RETURN(Rational worst,
                             ExactWorstCaseLoss(matrix, loss, side));
    entry.exact = std::move(matrix);
    entry.loss = std::move(worst);
  } else {
    ExactSimplexOptions solver = options_.solver;
    solver.warm_start = warm_seed;
    solver.pool = pool_.get();
    solver.threads = 1;  // never spawn per-solve workers; pool_ is the pool
    solver.deadline_ms = deadline_ms;
    Result<ExactOptimalResult> solved = SolveOptimalMechanismExact(
        signature.n, signature.alpha, loss, side, solver);
    if (!solved.ok() && !solved.status().IsDeadlineExceeded() &&
        warm_seed != nullptr) {
      // A seed that does not fit (or drove the solver into a corner) must
      // never cost correctness: fall back to the cold path once.  A timed-
      // out warm attempt is the one exception — retrying cold would spend
      // the deadline twice.
      solver.warm_start = nullptr;
      solved = SolveOptimalMechanismExact(signature.n, signature.alpha, loss,
                                          side, solver);
    }
    GEOPRIV_ASSIGN_OR_RETURN(ExactOptimalResult result, std::move(solved));
    entry.exact = std::move(result.matrix);
    entry.loss = std::move(result.loss);
    entry.basis = std::move(result.basis);
    entry.lp_iterations = result.lp_iterations;
    entry.phase1_iterations = result.phase1_iterations;
    entry.phase2_iterations = result.phase2_iterations;
    entry.warm_started = result.warm_started;
  }

  GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism,
                           Mechanism::FromExact(entry.exact));
  GEOPRIV_RETURN_IF_ERROR(mechanism.PrepareSamplers());
  entry.mechanism = std::move(mechanism);
  return entry;
}

bool MechanismCache::Contains(const MechanismSignature& signature) const {
  const Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(signature.CanonicalKey()) > 0;
}

std::shared_ptr<const ServedMechanism> MechanismCache::Peek(
    const MechanismSignature& signature) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(signature.CanonicalKey());
  if (it == shard.entries.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  it->second.last_used = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  return it->second.entry;
}

Result<std::shared_ptr<const ServedMechanism>> MechanismCache::GetOrSolve(
    const MechanismSignature& signature, bool* was_hit, int64_t deadline_ms) {
  Shard& shard = ShardFor(signature);
  const std::string key = signature.CanonicalKey();
  // One deadline covers the whole call: waiting on a duplicate in-flight
  // solve, queueing on the solver mutex, and the solve's own pivots.
  const bool has_deadline = deadline_ms > 0;
  const SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::milliseconds(deadline_ms);

  std::shared_ptr<const ServedMechanism> seed_entry;
  {
    std::unique_lock<std::mutex> shard_lock(shard.mu);
    // Wait out a concurrent solve of the same signature: each signature is
    // solved at most once, and waiters come back as hits (or retry the
    // solve themselves if the first attempt failed and vanished).
    for (;;) {
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        it->second.last_used =
            tick_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (was_hit != nullptr) *was_hit = true;
        return it->second.entry;
      }
      if (shard.in_flight.count(key) == 0) break;
      if (!has_deadline) {
        shard.solved.wait(shard_lock);
      } else if (shard.solved.wait_until(shard_lock, deadline) ==
                 std::cv_status::timeout) {
        // Only this waiter gives up; the in-flight solve it was watching
        // continues and will still publish for later callers.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return Status::DeadlineExceeded(
            "deadline expired waiting for an in-flight solve of '" + key +
            "'");
      }
    }
    if (was_hit != nullptr) *was_hit = false;
    // Overload admission: shed this miss rather than join an unbounded
    // convoy on the solver mutex.  Checked before the in-flight marker so
    // a shed call leaves no state to clean up.
    if (options_.max_pending > 0 &&
        pending_solves_.load(std::memory_order_relaxed) >=
            options_.max_pending) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "solve queue is full (max_pending=" +
          std::to_string(options_.max_pending) + "); retry later");
    }
    pending_solves_.fetch_add(1, std::memory_order_relaxed);
    shard.in_flight.insert(key);

    // Pick the warm seed before unlocking.  Only entries of the same
    // structural family fit (warm starts require identical LP shape), only
    // LP entries carry a basis, and the nearest alpha gives the seed whose
    // optimal basis most likely still prices out optimal (ties prefer the
    // same loss, then the smaller key for determinism).  Holding the
    // shared_ptr keeps the seed's basis alive after the lock drops.
    if (signature.mode == ServeMode::kExactOptimal) {
      for (const auto& [other_key, slot] : shard.entries) {
        const std::shared_ptr<const ServedMechanism>& other = slot.entry;
        if (!StructurallyCompatible(other->signature, signature)) continue;
        if (other->basis.empty()) continue;
        if (seed_entry == nullptr) {
          seed_entry = other;
          continue;
        }
        const Rational cand_dist =
            (other->signature.alpha - signature.alpha).Abs();
        const Rational seed_dist =
            (seed_entry->signature.alpha - signature.alpha).Abs();
        const int cmp = cand_dist.Compare(seed_dist);
        if (cmp < 0) {
          seed_entry = other;
        } else if (cmp == 0) {
          const bool cand_same = other->signature.loss == signature.loss;
          const bool seed_same = seed_entry->signature.loss == signature.loss;
          if ((cand_same && !seed_same) ||
              (cand_same == seed_same &&
               other->signature.CanonicalKey() <
                   seed_entry->signature.CanonicalKey())) {
            seed_entry = other;
          }
        }
      }
    }
  }

  // The shard lock is released while the solve grinds, so concurrent hits
  // on this shard (and GetStats) stay cheap; the in_flight marker keeps
  // duplicate solves of this signature out.
  Result<ServedMechanism> solved = Status::Internal("unreachable");
  Stopwatch solve_watch;
  {
    std::unique_lock<std::timed_mutex> solve_lock(solve_mu_, std::defer_lock);
    if (!has_deadline) {
      solve_lock.lock();
      solved = SolveLocked(
          signature, seed_entry != nullptr ? &seed_entry->basis : nullptr,
          /*deadline_ms=*/0);
    } else if (solve_lock.try_lock_until(deadline)) {
      // Whatever deadline survives the queue bounds the solve's pivots.
      solved = SolveLocked(
          signature, seed_entry != nullptr ? &seed_entry->basis : nullptr,
          RemainingMs(deadline));
    } else {
      solved = Status::DeadlineExceeded(
          "deadline expired queueing for the solver mutex on '" + key + "'");
    }
  }

  // Persist before publishing: files first, memory second, manifest last.
  // A crash after the files but before the manifest leaves unmanifested
  // files the next load removes as debris — the store can only lose the
  // entry in flight, never serve a half-written one.  Persist failures
  // degrade the entry to memory-only (the cache is a performance
  // artifact); the query still succeeds.
  std::shared_ptr<const ServedMechanism> entry;
  size_t entry_bytes = 0;
  if (solved.ok()) {
    entry = std::make_shared<const ServedMechanism>(std::move(*solved));
    RecordSolveMetrics(*entry, solve_watch.ElapsedMicros());
    if (!options_.persist_dir.empty()) {
      const std::string serialized = SerializeExactMechanismV3(entry->exact);
      entry_bytes = serialized.size();
      if (!entry->basis.empty()) {
        entry_bytes += SerializeBasisDoc(key, entry->basis.basic_columns)
                           .size();
      }
      const Status persisted =
          PersistEntryFiles(options_.persist_dir, *entry, serialized);
      if (!persisted.ok()) {
        // Memory-only degradation (see comment above), but visibly so.
        persist_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      entry_bytes = SerializeExactMechanismV3(entry->exact).size();
    }
  }

  {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.in_flight.erase(key);
    pending_solves_.fetch_sub(1, std::memory_order_relaxed);
    shard.solved.notify_all();
    if (!solved.ok()) {
      if (solved.status().IsDeadlineExceeded()) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      return solved.status();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (entry->warm_started) {
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
    }
    Slot slot;
    slot.entry = entry;
    slot.last_used = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    slot.bytes = entry_bytes;
    shard.entries.emplace(key, std::move(slot));
    bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
  }
  if (!options_.persist_dir.empty()) ManifestAdd(HashStem(entry->signature));
  MaybeEvict();
  return entry;
}

Result<std::shared_ptr<const ServedMechanism>> MechanismCache::SolveUncached(
    const MechanismSignature& signature) const {
  std::lock_guard<std::timed_mutex> solve_lock(solve_mu_);
  GEOPRIV_ASSIGN_OR_RETURN(
      ServedMechanism solved,
      SolveLocked(signature, nullptr, /*deadline_ms=*/0));
  return std::make_shared<const ServedMechanism>(std::move(solved));
}

MechanismCache::Stats MechanismCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.quarantined = quarantined_.load(std::memory_order_relaxed);
  stats.basis_warm_reloads =
      basis_warm_reloads_.load(std::memory_order_relaxed);
  stats.persist_failures = persist_failures_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.entries.size();
  }
  return stats;
}

Status MechanismCache::PersistEntryFiles(const std::string& dir,
                                         const ServedMechanism& entry,
                                         const std::string& serialized) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  const MechanismSignature& sig = entry.signature;
  const std::string key = sig.CanonicalKey();
  const std::string stem = HashStem(sig);
  // Write-then-rename: a crash mid-write must never leave a torn file
  // where the loader expects a committed one — torn bytes live only in
  // "*.tmp", which the next start sweeps.
  const std::string path = (fs::path(dir) / (stem + ".entry")).string();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::NotFound("cannot open '" + tmp + "'");
    out << kEntryHeader << "\n"
        << "key " << key << "\n"
        << "mode " << ServeModeName(sig.mode) << "\n"
        << "n " << sig.n << "\n"
        << "lo " << sig.lo << "\n"
        << "hi " << sig.hi << "\n"
        << "loss " << sig.loss << "\n"
        << "alpha " << sig.alpha.ToString() << "\n";
    // Crash point between the header and the matrix: an abort here leaves
    // a torn tmp file on disk — which the next start must sweep, never
    // load (the flush pins the torn bytes so the harness exercises a real
    // partial write, not an empty file).
    out.flush();
    GEOPRIV_INJECT_FAULT("cache.entry.write");
    out << serialized;
    out.flush();
    if (!out) return Status::Internal("write to '" + tmp + "' failed");
  }
  // Crash point between a complete tmp and the publishing rename: the
  // previous version of the entry (or its absence) must survive intact.
  GEOPRIV_INJECT_FAULT("cache.entry.rename");
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename '" + tmp + "': " + ec.message());
  }
  if (entry.basis.empty()) return Status::OK();
  const std::string basis_doc = SerializeBasisDoc(key, entry.basis.basic_columns);
  const std::string basis_path =
      (fs::path(dir) / (stem + ".basis")).string();
  const std::string basis_tmp = basis_path + ".tmp";
  {
    std::ofstream out(basis_tmp, std::ios::trunc);
    if (!out) return Status::NotFound("cannot open '" + basis_tmp + "'");
    const size_t split = basis_doc.find('\n') + 1;
    out << basis_doc.substr(0, split);
    out.flush();
    GEOPRIV_INJECT_FAULT("cache.basis.write");
    out << basis_doc.substr(split);
    out.flush();
    if (!out) {
      return Status::Internal("write to '" + basis_tmp + "' failed");
    }
  }
  GEOPRIV_INJECT_FAULT("cache.basis.rename");
  fs::rename(basis_tmp, basis_path, ec);
  if (ec) {
    return Status::Internal("cannot rename '" + basis_tmp +
                            "': " + ec.message());
  }
  return Status::OK();
}

Status MechanismCache::WriteManifestLocked(
    const std::string& dir, const std::set<std::string>& stems) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  std::string body;
  for (const std::string& stem : stems) body += "entry " + stem + "\n";
  const std::string path = (fs::path(dir) / kManifestName).string();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::NotFound("cannot open '" + tmp + "'");
    out << kManifestHeader << "\nchecksum " << Fnv1a64Hex(body) << "\n";
    // Crash point between the checksum and the entry lines: the torn tmp
    // (or, if it were ever committed, the checksum mismatch) is what the
    // loader's quarantine-and-fall-back path exists for.
    out.flush();
    GEOPRIV_INJECT_FAULT("cache.manifest.write");
    out << body;
    out.flush();
    if (!out) return Status::Internal("write to '" + tmp + "' failed");
  }
  // Crash point between a complete tmp and the rename: the previous
  // manifest stays authoritative, so files persisted after it are debris
  // the next load removes — never resurrected entries.
  GEOPRIV_INJECT_FAULT("cache.manifest.rename");
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("cannot rename '" + tmp + "': " + ec.message());
  }
  return Status::OK();
}

void MechanismCache::ManifestAdd(const std::string& stem) {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  manifest_stems_.insert(stem);
  const Status written =
      WriteManifestLocked(options_.persist_dir, manifest_stems_);
  (void)written;  // a failed commit leaves the new files unmanifested —
                  // the next load removes them as debris and re-solves
}

Status MechanismCache::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  std::set<std::string> stems;
  for (const Shard& shard : shards_) {
    std::vector<std::shared_ptr<const ServedMechanism>> snapshot;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      snapshot.reserve(shard.entries.size());
      for (const auto& [key, slot] : shard.entries) {
        snapshot.push_back(slot.entry);
      }
    }
    // Files are written outside the shard lock (entry pointers keep the
    // data alive); hits on this shard stay cheap during a bulk save.
    for (const auto& entry : snapshot) {
      GEOPRIV_RETURN_IF_ERROR(PersistEntryFiles(
          dir, *entry, SerializeExactMechanismV3(entry->exact)));
      stems.insert(HashStem(entry->signature));
    }
  }
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  manifest_stems_.insert(stems.begin(), stems.end());
  return WriteManifestLocked(dir, manifest_stems_);
}

namespace {

// Unlinking runs last, after the manifest commit and the in-memory erase:
// by then the files are unmanifested, so a crash (or an injected failure)
// anywhere in this loop only leaves debris the next load removes.
Status UnlinkEvictedFiles(const fs::path& dir,
                          const std::vector<std::string>& stems) {
  for (const std::string& stem : stems) {
    GEOPRIV_INJECT_FAULT("cache.evict.unlink");
    std::error_code ec;
    fs::remove(dir / (stem + ".entry"), ec);
    fs::remove(dir / (stem + ".basis"), ec);
  }
  return Status::OK();
}

}  // namespace

void MechanismCache::MaybeEvict() {
  if (options_.max_entries == 0 && options_.max_bytes == 0) return;
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  struct Item {
    std::shared_ptr<const ServedMechanism> entry;
    std::string key;
    std::string struct_key;
    uint64_t last_used = 0;
    size_t bytes = 0;
    size_t shard_index = 0;
  };
  std::vector<Item> items;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [key, slot] : shards_[s].entries) {
      items.push_back(Item{slot.entry, key,
                           slot.entry->signature.StructuralKey(),
                           slot.last_used, slot.bytes, s});
    }
  }
  uint64_t total_bytes = 0;
  for (const Item& item : items) total_bytes += item.bytes;
  const auto over = [this](size_t count, uint64_t bytes) {
    return (options_.max_entries > 0 && count > options_.max_entries) ||
           (options_.max_bytes > 0 && bytes > options_.max_bytes);
  };
  if (!over(items.size(), total_bytes)) return;

  // Pin each structural class's warm-start anchor: the smallest-
  // denominator alpha (ties: smaller alpha, then smaller canonical key).
  // Contract alphas negotiated from coarse grids (1/2, 2/5, ...) make the
  // low-denominator entry the one whose basis seeds the rest of the
  // class, so it is the entry eviction must never destroy.
  std::unordered_map<std::string, size_t> anchors;
  for (size_t i = 0; i < items.size(); ++i) {
    auto [it, inserted] = anchors.emplace(items[i].struct_key, i);
    if (inserted) continue;
    const Rational& cand = items[i].entry->signature.alpha;
    const Rational& best = items[it->second].entry->signature.alpha;
    const int denom_cmp = cand.denominator().Compare(best.denominator());
    const int alpha_cmp = denom_cmp != 0 ? 0 : cand.Compare(best);
    if (denom_cmp < 0 || (denom_cmp == 0 && alpha_cmp < 0) ||
        (denom_cmp == 0 && alpha_cmp == 0 &&
         items[i].key < items[it->second].key)) {
      it->second = i;
    }
  }
  // A class is as warm as its most recently used member; eviction drains
  // the coldest class first so one hot family cannot starve another's
  // warm-start neighborhood, then oldest-first within the class.
  std::unordered_map<std::string, uint64_t> class_heat;
  for (const Item& item : items) {
    uint64_t& heat = class_heat[item.struct_key];
    heat = std::max(heat, item.last_used);
  }
  std::unordered_set<size_t> pinned;
  for (const auto& [struct_key, index] : anchors) pinned.insert(index);
  std::vector<size_t> candidates;
  for (size_t i = 0; i < items.size(); ++i) {
    if (pinned.count(i) == 0) candidates.push_back(i);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](size_t a, size_t b) {
              const uint64_t heat_a = class_heat[items[a].struct_key];
              const uint64_t heat_b = class_heat[items[b].struct_key];
              if (heat_a != heat_b) return heat_a < heat_b;
              if (items[a].last_used != items[b].last_used) {
                return items[a].last_used < items[b].last_used;
              }
              return items[a].key < items[b].key;
            });
  size_t count = items.size();
  uint64_t bytes = total_bytes;
  std::vector<size_t> victims;
  for (const size_t i : candidates) {
    if (!over(count, bytes)) break;
    victims.push_back(i);
    --count;
    bytes -= items[i].bytes;
  }
  if (victims.empty()) return;

  // Commit to disk first: a manifest that no longer lists the victims is
  // the point of no return.  A crash after it under-deletes (the files
  // become debris the next load removes); a crash before it changes
  // nothing — restart can never resurrect an evicted entry.
  std::vector<std::string> victim_stems;
  victim_stems.reserve(victims.size());
  for (const size_t i : victims) {
    victim_stems.push_back(HashStem(items[i].entry->signature));
  }
  if (!options_.persist_dir.empty()) {
    std::set<std::string> shrunk = manifest_stems_;
    for (const std::string& stem : victim_stems) shrunk.erase(stem);
    if (!WriteManifestLocked(options_.persist_dir, shrunk).ok()) {
      return;  // could not commit: evict nothing, retry at the next publish
    }
    manifest_stems_ = std::move(shrunk);
  }
  for (const size_t i : victims) {
    Shard& shard = shards_[items[i].shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(items[i].key);
    if (it == shard.entries.end()) continue;
    bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    shard.entries.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!options_.persist_dir.empty()) {
    const Status unlinked =
        UnlinkEvictedFiles(fs::path(options_.persist_dir), victim_stems);
    (void)unlinked;  // failures leave unmanifested debris, removed on load
  }
}

namespace {

// One persisted entry -> (signature, exact matrix).  The signature is
// rebuilt through MechanismSignature::Create so a tampered or stale file
// re-validates from scratch; the loss value is recomputed, not trusted.
// Every field extraction is checked: a truncated "alpha" line defaulting
// to 0 would make the load-time alpha-DP re-validation vacuous (any
// non-negative matrix is 0-DP), so missing-or-malformed fields are
// errors, never defaults.  The embedded canonical key is returned through
// `stored_key` so the caller can cross-check it against the key the
// fields re-derive — a bit flip in any header field changes one side of
// that comparison but not the other.
Result<MechanismSignature> ParseEntryHeader(std::istringstream& in,
                                            std::string* stored_key) {
  std::string line;
  if (!std::getline(in, line) || line != kEntryHeader) {
    return Status::InvalidArgument("missing '" + std::string(kEntryHeader) +
                                   "' header");
  }
  std::string mode_name, loss_name, alpha_text;
  int n = -1, lo = -1, hi = -1;
  bool saw_alpha = false;
  while (!saw_alpha && std::getline(in, line)) {
    std::istringstream fields(line);
    std::string field;
    fields >> field;
    bool parsed = true;
    if (field == "key") {
      parsed = static_cast<bool>(fields >> *stored_key);
    } else if (field == "mode") {
      parsed = static_cast<bool>(fields >> mode_name);
    } else if (field == "n") {
      parsed = static_cast<bool>(fields >> n);
    } else if (field == "lo") {
      parsed = static_cast<bool>(fields >> lo);
    } else if (field == "hi") {
      parsed = static_cast<bool>(fields >> hi);
    } else if (field == "loss") {
      parsed = static_cast<bool>(fields >> loss_name);
    } else if (field == "alpha") {
      parsed = static_cast<bool>(fields >> alpha_text);
      saw_alpha = parsed;  // alpha closes the header; the v2 block follows
    } else {
      return Status::InvalidArgument("unknown entry field '" + field + "'");
    }
    if (!parsed) {
      return Status::InvalidArgument("malformed entry field '" + field +
                                     "'");
    }
  }
  if (!saw_alpha || mode_name.empty() || loss_name.empty()) {
    return Status::InvalidArgument(
        "entry header is missing required fields (mode/loss/alpha)");
  }
  GEOPRIV_ASSIGN_OR_RETURN(ServeMode mode, ServeModeFromString(mode_name));
  GEOPRIV_ASSIGN_OR_RETURN(Rational alpha, Rational::FromString(alpha_text));
  return MechanismSignature::Create(n, std::move(alpha), loss_name, lo, hi,
                                    mode);
}

// Parses and fully re-validates one entry file.  Any failure means the
// file must be quarantined, so everything that can reject a byte of it —
// header fields, the key cross-check, the v2/v3 mechanism block (and its
// v3 checksum), shape, and the alpha-DP claim — funnels through here.
Result<ServedMechanism> ParseAndValidateEntry(const std::string& text) {
  std::istringstream in(text);
  std::string stored_key;
  GEOPRIV_ASSIGN_OR_RETURN(MechanismSignature signature,
                           ParseEntryHeader(in, &stored_key));
  if (stored_key.empty()) {
    return Status::InvalidArgument("entry header is missing its key line");
  }
  if (signature.CanonicalKey() != stored_key) {
    return Status::InvalidArgument(
        "entry key line does not match its header fields (stored '" +
        stored_key + "', derived '" + signature.CanonicalKey() + "')");
  }
  // Everything after the header fields is one io v2/v3 document.
  if (in.tellg() < 0) {
    return Status::InvalidArgument("missing mechanism block");
  }
  const std::string rest(text.substr(static_cast<size_t>(in.tellg())));
  GEOPRIV_ASSIGN_OR_RETURN(RationalMatrix exact, ParseExactMechanism(rest));
  if (exact.rows() != static_cast<size_t>(signature.n) + 1) {
    return Status::InvalidArgument("matrix size does not match n");
  }

  // Safety re-validation: the signature's alpha-DP claim is what the
  // ledger charges for, so a tampered or corrupted matrix must never be
  // served under it (a file swapped for the identity matrix would turn
  // the service into a plaintext oracle billed at alpha).  Geometric
  // entries must equal the closed form exactly; LP entries must satisfy
  // Definition 2 exactly (a tampered-but-DP matrix can only cost
  // utility, never privacy).
  if (signature.mode == ServeMode::kGeometric) {
    GEOPRIV_ASSIGN_OR_RETURN(
        RationalMatrix expected,
        GeometricMechanism::BuildExactMatrix(signature.n, signature.alpha));
    if (!(exact == expected)) {
      return Status::InvalidArgument(
          "matrix is not G_{n,alpha} for its signature");
    }
  } else {
    const size_t size = exact.rows();
    for (size_t i = 0; i + 1 < size; ++i) {
      for (size_t r = 0; r < size; ++r) {
        const Rational& a = exact.At(i, r);
        const Rational& b = exact.At(i + 1, r);
        if (a < signature.alpha * b || b < signature.alpha * a) {
          return Status::InvalidArgument(
              "matrix violates the alpha-DP level its signature claims");
        }
      }
    }
  }

  ServedMechanism entry;
  entry.signature = signature;
  GEOPRIV_ASSIGN_OR_RETURN(ExactLossFunction loss, signature.ResolveLoss());
  GEOPRIV_ASSIGN_OR_RETURN(SideInformation side, signature.ResolveSide());
  GEOPRIV_ASSIGN_OR_RETURN(Rational worst,
                           ExactWorstCaseLoss(exact, loss, side));
  entry.loss = std::move(worst);
  GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism, Mechanism::FromExact(exact));
  GEOPRIV_RETURN_IF_ERROR(mechanism.PrepareSamplers());
  entry.exact = std::move(exact);
  entry.mechanism = std::move(mechanism);
  return entry;
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

Result<MechanismCache::LoadReport> MechanismCache::LoadFromDirectory(
    const std::string& dir) {
  LoadReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return report;
  const fs::path root(dir);

  std::set<std::string> entry_stems;
  std::set<std::string> basis_stems;
  std::vector<fs::path> stale_tmps;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    const fs::path& path = dirent.path();
    if (path.extension() == ".entry") {
      entry_stems.insert(path.stem().string());
    } else if (path.extension() == ".basis") {
      basis_stems.insert(path.stem().string());
    } else if (path.extension() == ".tmp") {
      // A leftover "*.tmp" is a write that never reached its rename — a
      // crash mid-persist.  Its content is untrusted (possibly torn); the
      // committed file beside it (if any) is intact.  Sweep our own kinds
      // only — the ledger sweeps its own tmp.
      const fs::path inner = path.stem();
      if (inner.extension() == ".entry" || inner.extension() == ".basis" ||
          inner.string() == kManifestName) {
        stale_tmps.push_back(path);
      }
    }
  }
  if (ec) {
    return Status::Internal("cannot list '" + dir + "': " + ec.message());
  }
  for (const fs::path& tmp : stale_tmps) {
    std::error_code remove_ec;
    fs::remove(tmp, remove_ec);
    ++report.debris_removed;
  }

  // The manifest decides what is live.  A corrupt or torn manifest is
  // quarantined and the load falls back to adopting every entry that
  // passes validation — over-loading is safe (every adopted entry is
  // still fully re-validated), silently dropping the whole store is not.
  // No manifest at all means a pre-manifest store: adopt it the same way.
  std::set<std::string> live;
  bool adopt_all = false;
  const fs::path manifest_path = root / kManifestName;
  if (fs::exists(manifest_path, ec)) {
    Result<std::string> text = ReadFile(manifest_path);
    Result<std::vector<std::string>> stems =
        text.ok() ? ParseManifest(*text)
                  : Result<std::vector<std::string>>(text.status());
    if (stems.ok()) {
      live.insert(stems->begin(), stems->end());
    } else {
      QuarantineFile(root, manifest_path);
      ++report.quarantined;
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      adopt_all = true;
    }
  } else {
    adopt_all = true;
  }
  if (adopt_all) live = entry_stems;

  // An on-disk file the manifest does not list is debris: either a crash
  // landed between persisting it and committing the manifest (the entry
  // was never published to a client as durable) or between evicting it
  // from the manifest and unlinking it.  Both must not load — the second
  // would resurrect an evicted entry.
  if (!adopt_all) {
    for (const std::string& stem : entry_stems) {
      if (live.count(stem) != 0) continue;
      std::error_code remove_ec;
      fs::remove(root / (stem + ".entry"), remove_ec);
      ++report.debris_removed;
    }
    for (const std::string& stem : basis_stems) {
      if (live.count(stem) != 0) continue;
      std::error_code remove_ec;
      fs::remove(root / (stem + ".basis"), remove_ec);
      ++report.debris_removed;
    }
  }

  std::set<std::string> adopted;
  for (const std::string& stem : live) {
    const fs::path path = root / (stem + ".entry");
    Result<std::string> text = ReadFile(path);
    if (!text.ok()) continue;  // manifested-but-missing: a half-done evict

    Result<ServedMechanism> parsed = ParseAndValidateEntry(*text);
    if (!parsed.ok()) {
      QuarantineFile(root, path);
      ++report.quarantined;
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      // The basis describes a mechanism that no longer loads; without its
      // entry it is dead weight, not evidence — remove, don't quarantine,
      // so the quarantined count stays one per corrupted artifact.
      if (basis_stems.count(stem) != 0) {
        std::error_code remove_ec;
        fs::remove(root / (stem + ".basis"), remove_ec);
        ++report.debris_removed;
      }
      continue;
    }

    ServedMechanism entry = std::move(*parsed);
    size_t slot_bytes = text->size();
    if (basis_stems.count(stem) != 0) {
      const fs::path basis_path = root / (stem + ".basis");
      Result<std::string> basis_text = ReadFile(basis_path);
      std::string basis_key;
      Result<std::vector<size_t>> columns =
          basis_text.ok()
              ? ParseBasisDoc(*basis_text, &basis_key)
              : Result<std::vector<size_t>>(basis_text.status());
      if (columns.ok() && basis_key == entry.signature.CanonicalKey()) {
        // A restored basis re-arms warm starts; a bad one could at worst
        // cost a wasted warm attempt (SolveLocked falls back to cold),
        // but the checksum means we never even try a corrupt one.
        entry.basis.basic_columns = std::move(*columns);
        slot_bytes += basis_text->size();
        ++report.basis_reloads;
        basis_warm_reloads_.fetch_add(1, std::memory_order_relaxed);
      } else {
        QuarantineFile(root, basis_path);
        ++report.quarantined;
        quarantined_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    Shard& shard = ShardFor(entry.signature);
    const std::string key = entry.signature.CanonicalKey();
    Slot slot;
    slot.entry = std::make_shared<const ServedMechanism>(std::move(entry));
    slot.last_used = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    slot.bytes = slot_bytes;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
      }
      shard.entries[key] = std::move(slot);
    }
    bytes_.fetch_add(slot_bytes, std::memory_order_relaxed);
    adopted.insert(stem);
    ++report.loaded;
  }

  // Rewrite the manifest to exactly the set being served, so quarantined
  // and skipped stems stop being listed and an adopted pre-manifest store
  // becomes a manifested one.
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    manifest_stems_.insert(adopted.begin(), adopted.end());
    const Status written = WriteManifestLocked(dir, manifest_stems_);
    (void)written;  // best effort; the files themselves are committed
  }
  MaybeEvict();
  return report;
}

}  // namespace geopriv
