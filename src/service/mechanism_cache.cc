#include "service/mechanism_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/geometric.h"
#include "core/io.h"
#include "core/optimal_exact.h"
#include "util/fault_injection.h"

namespace geopriv {

namespace {

namespace fs = std::filesystem;

using SteadyClock = std::chrono::steady_clock;

constexpr char kEntryHeader[] = "geopriv-service-entry v1";

// Milliseconds left before `deadline`, floored at 1 so a nearly-expired
// deadline still reaches the per-pivot check instead of rounding to
// "unlimited" (0 means "no deadline" everywhere downstream).
int64_t RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return std::max<int64_t>(1, left.count());
}

std::string HashFileName(const MechanismSignature& signature) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    SignatureHash(signature.CanonicalKey())));
  return std::string(buf) + ".entry";
}

bool StructurallyCompatible(const MechanismSignature& a,
                            const MechanismSignature& b) {
  return a.mode == b.mode && a.n == b.n && a.lo == b.lo && a.hi == b.hi;
}

}  // namespace

MechanismCache::MechanismCache(CacheOptions options)
    : options_(std::move(options)),
      shards_(options_.shards == 0 ? 1 : options_.shards) {
  const int threads = ThreadPool::ConfiguredThreads(options_.threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

MechanismCache::Shard& MechanismCache::ShardFor(
    const MechanismSignature& signature) {
  return shards_[SignatureHash(signature.StructuralKey()) % shards_.size()];
}

const MechanismCache::Shard& MechanismCache::ShardFor(
    const MechanismSignature& signature) const {
  return shards_[SignatureHash(signature.StructuralKey()) % shards_.size()];
}

Result<ServedMechanism> MechanismCache::SolveLocked(
    const MechanismSignature& signature, const LpBasis* warm_seed,
    int64_t deadline_ms) const {
  GEOPRIV_ASSIGN_OR_RETURN(ExactLossFunction loss, signature.ResolveLoss());
  GEOPRIV_ASSIGN_OR_RETURN(SideInformation side, signature.ResolveSide());

  ServedMechanism entry;
  entry.signature = signature;

  if (signature.mode == ServeMode::kGeometric) {
    GEOPRIV_ASSIGN_OR_RETURN(
        RationalMatrix matrix,
        GeometricMechanism::BuildExactMatrix(signature.n, signature.alpha));
    GEOPRIV_ASSIGN_OR_RETURN(Rational worst,
                             ExactWorstCaseLoss(matrix, loss, side));
    entry.exact = std::move(matrix);
    entry.loss = std::move(worst);
  } else {
    ExactSimplexOptions solver = options_.solver;
    solver.warm_start = warm_seed;
    solver.pool = pool_.get();
    solver.threads = 1;  // never spawn per-solve workers; pool_ is the pool
    solver.deadline_ms = deadline_ms;
    Result<ExactOptimalResult> solved = SolveOptimalMechanismExact(
        signature.n, signature.alpha, loss, side, solver);
    if (!solved.ok() && !solved.status().IsDeadlineExceeded() &&
        warm_seed != nullptr) {
      // A seed that does not fit (or drove the solver into a corner) must
      // never cost correctness: fall back to the cold path once.  A timed-
      // out warm attempt is the one exception — retrying cold would spend
      // the deadline twice.
      solver.warm_start = nullptr;
      solved = SolveOptimalMechanismExact(signature.n, signature.alpha, loss,
                                          side, solver);
    }
    GEOPRIV_ASSIGN_OR_RETURN(ExactOptimalResult result, std::move(solved));
    entry.exact = std::move(result.matrix);
    entry.loss = std::move(result.loss);
    entry.basis = std::move(result.basis);
    entry.lp_iterations = result.lp_iterations;
    entry.warm_started = result.warm_started;
  }

  GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism,
                           Mechanism::FromExact(entry.exact));
  GEOPRIV_RETURN_IF_ERROR(mechanism.PrepareSamplers());
  entry.mechanism = std::move(mechanism);
  return entry;
}

bool MechanismCache::Contains(const MechanismSignature& signature) const {
  const Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(signature.CanonicalKey()) > 0;
}

std::shared_ptr<const ServedMechanism> MechanismCache::Peek(
    const MechanismSignature& signature) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(signature.CanonicalKey());
  if (it == shard.entries.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

Result<std::shared_ptr<const ServedMechanism>> MechanismCache::GetOrSolve(
    const MechanismSignature& signature, bool* was_hit, int64_t deadline_ms) {
  Shard& shard = ShardFor(signature);
  const std::string key = signature.CanonicalKey();
  // One deadline covers the whole call: waiting on a duplicate in-flight
  // solve, queueing on the solver mutex, and the solve's own pivots.
  const bool has_deadline = deadline_ms > 0;
  const SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::milliseconds(deadline_ms);

  std::shared_ptr<const ServedMechanism> seed_entry;
  {
    std::unique_lock<std::mutex> shard_lock(shard.mu);
    // Wait out a concurrent solve of the same signature: each signature is
    // solved at most once, and waiters come back as hits (or retry the
    // solve themselves if the first attempt failed and vanished).
    for (;;) {
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (was_hit != nullptr) *was_hit = true;
        return it->second;
      }
      if (shard.in_flight.count(key) == 0) break;
      if (!has_deadline) {
        shard.solved.wait(shard_lock);
      } else if (shard.solved.wait_until(shard_lock, deadline) ==
                 std::cv_status::timeout) {
        // Only this waiter gives up; the in-flight solve it was watching
        // continues and will still publish for later callers.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return Status::DeadlineExceeded(
            "deadline expired waiting for an in-flight solve of '" + key +
            "'");
      }
    }
    if (was_hit != nullptr) *was_hit = false;
    // Overload admission: shed this miss rather than join an unbounded
    // convoy on the solver mutex.  Checked before the in-flight marker so
    // a shed call leaves no state to clean up.
    if (options_.max_pending > 0 &&
        pending_solves_.load(std::memory_order_relaxed) >=
            options_.max_pending) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "solve queue is full (max_pending=" +
          std::to_string(options_.max_pending) + "); retry later");
    }
    pending_solves_.fetch_add(1, std::memory_order_relaxed);
    shard.in_flight.insert(key);

    // Pick the warm seed before unlocking.  Only entries of the same
    // structural family fit (warm starts require identical LP shape), only
    // LP entries carry a basis, and the nearest alpha gives the seed whose
    // optimal basis most likely still prices out optimal (ties prefer the
    // same loss, then the smaller key for determinism).  Holding the
    // shared_ptr keeps the seed's basis alive after the lock drops.
    if (signature.mode == ServeMode::kExactOptimal) {
      for (const auto& [other_key, other] : shard.entries) {
        if (!StructurallyCompatible(other->signature, signature)) continue;
        if (other->basis.empty()) continue;
        if (seed_entry == nullptr) {
          seed_entry = other;
          continue;
        }
        const Rational cand_dist =
            (other->signature.alpha - signature.alpha).Abs();
        const Rational seed_dist =
            (seed_entry->signature.alpha - signature.alpha).Abs();
        const int cmp = cand_dist.Compare(seed_dist);
        if (cmp < 0) {
          seed_entry = other;
        } else if (cmp == 0) {
          const bool cand_same = other->signature.loss == signature.loss;
          const bool seed_same = seed_entry->signature.loss == signature.loss;
          if ((cand_same && !seed_same) ||
              (cand_same == seed_same &&
               other->signature.CanonicalKey() <
                   seed_entry->signature.CanonicalKey())) {
            seed_entry = other;
          }
        }
      }
    }
  }

  // The shard lock is released while the solve grinds, so concurrent hits
  // on this shard (and GetStats) stay cheap; the in_flight marker keeps
  // duplicate solves of this signature out.
  Result<ServedMechanism> solved = Status::Internal("unreachable");
  {
    std::unique_lock<std::timed_mutex> solve_lock(solve_mu_, std::defer_lock);
    if (!has_deadline) {
      solve_lock.lock();
      solved = SolveLocked(
          signature, seed_entry != nullptr ? &seed_entry->basis : nullptr,
          /*deadline_ms=*/0);
    } else if (solve_lock.try_lock_until(deadline)) {
      // Whatever deadline survives the queue bounds the solve's pivots.
      solved = SolveLocked(
          signature, seed_entry != nullptr ? &seed_entry->basis : nullptr,
          RemainingMs(deadline));
    } else {
      solved = Status::DeadlineExceeded(
          "deadline expired queueing for the solver mutex on '" + key + "'");
    }
  }

  std::lock_guard<std::mutex> shard_lock(shard.mu);
  shard.in_flight.erase(key);
  pending_solves_.fetch_sub(1, std::memory_order_relaxed);
  shard.solved.notify_all();
  if (!solved.ok()) {
    if (solved.status().IsDeadlineExceeded()) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    return solved.status();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (solved->warm_started) {
    warm_starts_.fetch_add(1, std::memory_order_relaxed);
  }
  auto entry = std::make_shared<const ServedMechanism>(std::move(*solved));
  shard.entries.emplace(key, entry);
  return entry;
}

Result<std::shared_ptr<const ServedMechanism>> MechanismCache::SolveUncached(
    const MechanismSignature& signature) const {
  std::lock_guard<std::timed_mutex> solve_lock(solve_mu_);
  GEOPRIV_ASSIGN_OR_RETURN(
      ServedMechanism solved,
      SolveLocked(signature, nullptr, /*deadline_ms=*/0));
  return std::make_shared<const ServedMechanism>(std::move(solved));
}

MechanismCache::Stats MechanismCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.entries.size();
  }
  return stats;
}

Status MechanismCache::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      const MechanismSignature& sig = entry->signature;
      // Write-then-rename: LoadFromDirectory treats malformed entries as
      // fatal (by design — a tampered matrix must not load), so a crash
      // mid-write must never leave a torn file that bricks the next start.
      const std::string path =
          (fs::path(dir) / HashFileName(sig)).string();
      const std::string tmp = path + ".tmp";
      {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) return Status::NotFound("cannot open '" + tmp + "'");
        out << kEntryHeader << "\n"
            << "key " << key << "\n"
            << "mode " << ServeModeName(sig.mode) << "\n"
            << "n " << sig.n << "\n"
            << "lo " << sig.lo << "\n"
            << "hi " << sig.hi << "\n"
            << "loss " << sig.loss << "\n"
            << "alpha " << sig.alpha.ToString() << "\n";
        // Crash point between the header and the matrix: an abort here
        // leaves a torn tmp file on disk — which the next start must skip
        // and clean up, never load (the flush pins the torn bytes so the
        // harness exercises a real partial write, not an empty file).
        out.flush();
        GEOPRIV_INJECT_FAULT("cache.entry.write");
        out << SerializeExactMechanism(entry->exact);
        out.flush();
        if (!out) return Status::Internal("write to '" + tmp + "' failed");
      }
      // Crash point between a complete tmp and the publishing rename: the
      // previous version of the entry (or its absence) must survive intact.
      GEOPRIV_INJECT_FAULT("cache.entry.rename");
      std::error_code rename_ec;
      fs::rename(tmp, path, rename_ec);
      if (rename_ec) {
        return Status::Internal("cannot rename '" + tmp +
                                "': " + rename_ec.message());
      }
    }
  }
  return Status::OK();
}

namespace {

// One persisted entry -> (signature, exact matrix).  The signature is
// rebuilt through MechanismSignature::Create so a tampered or stale file
// re-validates from scratch; the loss value is recomputed, not trusted.
// Every field extraction is checked: a truncated "alpha" line defaulting
// to 0 would make the load-time alpha-DP re-validation vacuous (any
// non-negative matrix is 0-DP), so missing-or-malformed fields are
// errors, never defaults.
Result<MechanismSignature> ParseEntryHeader(std::istringstream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kEntryHeader) {
    return Status::InvalidArgument("missing '" + std::string(kEntryHeader) +
                                   "' header");
  }
  std::string mode_name, loss_name, alpha_text;
  int n = -1, lo = -1, hi = -1;
  bool saw_alpha = false;
  while (!saw_alpha && std::getline(in, line)) {
    std::istringstream fields(line);
    std::string field;
    fields >> field;
    bool parsed = true;
    if (field == "key") {
      continue;  // informational; identity is re-derived from the fields
    } else if (field == "mode") {
      parsed = static_cast<bool>(fields >> mode_name);
    } else if (field == "n") {
      parsed = static_cast<bool>(fields >> n);
    } else if (field == "lo") {
      parsed = static_cast<bool>(fields >> lo);
    } else if (field == "hi") {
      parsed = static_cast<bool>(fields >> hi);
    } else if (field == "loss") {
      parsed = static_cast<bool>(fields >> loss_name);
    } else if (field == "alpha") {
      parsed = static_cast<bool>(fields >> alpha_text);
      saw_alpha = parsed;  // alpha closes the header; the v2 block follows
    } else {
      return Status::InvalidArgument("unknown entry field '" + field + "'");
    }
    if (!parsed) {
      return Status::InvalidArgument("malformed entry field '" + field +
                                     "'");
    }
  }
  if (!saw_alpha || mode_name.empty() || loss_name.empty()) {
    return Status::InvalidArgument(
        "entry header is missing required fields (mode/loss/alpha)");
  }
  GEOPRIV_ASSIGN_OR_RETURN(ServeMode mode, ServeModeFromString(mode_name));
  GEOPRIV_ASSIGN_OR_RETURN(Rational alpha, Rational::FromString(alpha_text));
  return MechanismSignature::Create(n, std::move(alpha), loss_name, lo, hi,
                                    mode);
}

}  // namespace

Result<int> MechanismCache::LoadFromDirectory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  int loaded = 0;
  std::vector<fs::path> paths;
  std::vector<fs::path> stale_tmps;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    if (dirent.path().extension() == ".entry") paths.push_back(dirent.path());
    // A leftover "*.entry.tmp" is a write that never reached its rename —
    // a crash mid-persist.  Its content is untrusted (possibly torn), the
    // committed ".entry" beside it (if any) is intact; remove the debris
    // so it cannot accumulate or confuse a later inspection.
    if (dirent.path().extension() == ".tmp" &&
        dirent.path().stem().extension() == ".entry") {
      stale_tmps.push_back(dirent.path());
    }
  }
  if (ec) {
    return Status::Internal("cannot list '" + dir + "': " + ec.message());
  }
  for (const fs::path& tmp : stale_tmps) {
    std::error_code remove_ec;
    fs::remove(tmp, remove_ec);
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open '" + path.string() + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::istringstream in(buffer.str());

    Result<MechanismSignature> signature = ParseEntryHeader(in);
    if (!signature.ok()) {
      return Status::InvalidArgument(path.string() + ": " +
                                     signature.status().message());
    }
    // Everything after the header fields is one io-v2 document.
    if (in.tellg() < 0) {
      return Status::InvalidArgument(path.string() +
                                     ": missing v2 mechanism block");
    }
    std::string rest(buffer.str().substr(static_cast<size_t>(in.tellg())));
    Result<RationalMatrix> exact = ParseExactMechanism(rest);
    if (!exact.ok()) {
      return Status::InvalidArgument(path.string() + ": " +
                                     exact.status().message());
    }
    if (exact->rows() != static_cast<size_t>(signature->n) + 1) {
      return Status::InvalidArgument(path.string() +
                                     ": matrix size does not match n");
    }

    // Safety re-validation: the signature's alpha-DP claim is what the
    // ledger charges for, so a tampered or corrupted matrix must never be
    // served under it (a file swapped for the identity matrix would turn
    // the service into a plaintext oracle billed at alpha).  Geometric
    // entries must equal the closed form exactly; LP entries must satisfy
    // Definition 2 exactly (a tampered-but-DP matrix can only cost
    // utility, never privacy).
    if (signature->mode == ServeMode::kGeometric) {
      GEOPRIV_ASSIGN_OR_RETURN(
          RationalMatrix expected,
          GeometricMechanism::BuildExactMatrix(signature->n,
                                               signature->alpha));
      if (!(*exact == expected)) {
        return Status::InvalidArgument(
            path.string() + ": matrix is not G_{n,alpha} for its signature");
      }
    } else {
      const size_t size = exact->rows();
      for (size_t i = 0; i + 1 < size; ++i) {
        for (size_t r = 0; r < size; ++r) {
          const Rational& a = exact->At(i, r);
          const Rational& b = exact->At(i + 1, r);
          if (a < signature->alpha * b || b < signature->alpha * a) {
            return Status::InvalidArgument(
                path.string() +
                ": matrix violates the alpha-DP level its signature claims");
          }
        }
      }
    }

    ServedMechanism entry;
    entry.signature = *signature;
    GEOPRIV_ASSIGN_OR_RETURN(ExactLossFunction loss, signature->ResolveLoss());
    GEOPRIV_ASSIGN_OR_RETURN(SideInformation side, signature->ResolveSide());
    GEOPRIV_ASSIGN_OR_RETURN(Rational worst,
                             ExactWorstCaseLoss(*exact, loss, side));
    entry.loss = std::move(worst);
    GEOPRIV_ASSIGN_OR_RETURN(Mechanism mechanism,
                             Mechanism::FromExact(*exact));
    GEOPRIV_RETURN_IF_ERROR(mechanism.PrepareSamplers());
    entry.exact = std::move(*exact);
    entry.mechanism = std::move(mechanism);

    Shard& shard = ShardFor(entry.signature);
    const std::string key = entry.signature.CanonicalKey();
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries[key] =
        std::make_shared<const ServedMechanism>(std::move(entry));
    ++loaded;
  }
  return loaded;
}

}  // namespace geopriv
