#include "service/service_flags.h"

#include "util/fault_injection.h"

namespace geopriv {

void RegisterServiceFlags(ArgParser* parser, ServiceFlags* flags) {
  parser->AddDouble("budget", &flags->budget, 0.0, 1.0,
                    "privacy-budget floor in [0, 1]; 0 disables enforcement");
  parser->AddInt("shards", &flags->shards, 1, 1 << 20,
                 "cache shard count");
  parser->AddInt("threads", &flags->threads, 0, 4096,
                 "worker threads (0 defers to GEOPRIV_THREADS)");
  parser->AddString("persist", &flags->persist,
                    "directory for durable cache + ledger state");
  parser->AddInt("port", &flags->port, 0, 65535,
                 "serve/query over TCP on 127.0.0.1 (0 picks a free port)");
  parser->AddString("fault", &flags->fault,
                    "fault-injection spec point=action[:arg][@N],... "
                    "(testing only)");
  parser->AddInt64("deadline-ms", &flags->deadline_ms, 0, 600000,
                   "default wall-clock bound on fresh solves; 0 = none");
  parser->AddInt64("max-pending", &flags->max_pending, 0, 1 << 20,
                   "max concurrently pending solves before shedding; "
                   "0 = unbounded");
  parser->AddInt64("max-entries", &flags->max_entries, 0, INT64_C(1) << 40,
                   "cache LRU bound on entry count (soft: per-class "
                   "warm-start anchors stay pinned); 0 = unbounded");
  parser->AddInt64("max-bytes", &flags->max_bytes, 0, INT64_C(1) << 50,
                   "cache LRU bound on serialized entry bytes; "
                   "0 = unbounded");
  parser->AddInt64("retry-after-ms", &flags->retry_after_ms, 0, 600000,
                   "backoff hint attached to shed replies");
  parser->AddInt64("idle-timeout-ms", &flags->idle_timeout_ms, 0, 86400000,
                   "drop a TCP client idle this long; 0 = never");
  parser->AddBool("cached-only", &flags->cached_only,
                  "degraded mode: serve cached entries only, shed misses");
  parser->AddInt("workers", &flags->workers, 0, 256,
                 "event-loop batch executor threads (0 = auto)");
  parser->AddBool("serial-accept", &flags->serial_accept,
                  "serve TCP with the historical one-client-at-a-time loop");
  parser->AddInt("metrics-port", &flags->metrics_port, -1, 65535,
                 "serve Prometheus GET /metrics over loopback HTTP "
                 "(0 picks a free port, -1 disables; event loop only)");
  parser->AddInt64("slow-query-ms", &flags->slow_query_ms, 0, 600000,
                   "log a JSONL line to stderr for any query slower than "
                   "this end to end; 0 disables");
}

ServiceOptions ToServiceOptions(const ServiceFlags& flags) {
  ServiceOptions options;
  options.budget_alpha = flags.budget;
  options.shards = static_cast<size_t>(flags.shards);
  options.threads = flags.threads;
  options.persist_dir = flags.persist;
  options.default_deadline_ms = flags.deadline_ms;
  options.max_pending = static_cast<size_t>(flags.max_pending);
  options.max_entries = static_cast<size_t>(flags.max_entries);
  options.max_bytes = static_cast<size_t>(flags.max_bytes);
  options.retry_after_ms = flags.retry_after_ms;
  options.idle_timeout_ms = flags.idle_timeout_ms;
  options.cached_only = flags.cached_only;
  options.workers = flags.workers;
  options.serial_accept = flags.serial_accept;
  options.metrics_port = flags.metrics_port;
  options.slow_query_ms = flags.slow_query_ms;
  return options;
}

Status ArmConfiguredFaults(const ServiceFlags& flags) {
  GEOPRIV_RETURN_IF_ERROR(fault_injection::ArmFromEnv());
  if (!flags.fault.empty()) {
    GEOPRIV_RETURN_IF_ERROR(fault_injection::ArmFromSpec(flags.fault));
  }
  return Status::OK();
}

}  // namespace geopriv
