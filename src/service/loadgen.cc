#include "service/loadgen.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "rng/engine.h"
#include "util/metrics.h"

namespace geopriv {

namespace {

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LoadConn {
  int fd = -1;
  bool established = false;
  bool dead = false;
  std::string outbox;
  size_t out_off = 0;
  std::string inbox;
  /// Reference times for the replies this connection owes, FIFO: the
  /// scheduled arrival (open loop) or the actual send (closed loop).
  std::deque<double> owed;
  ~LoadConn() {
    if (fd >= 0) ::close(fd);
  }
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Result<LoadStats> RunLoad(const LoadOptions& options) {
  if (options.connections < 1) {
    return Status::InvalidArgument("connections must be >= 1");
  }
  if (options.line_prefix.empty()) {
    return Status::InvalidArgument("line_prefix must be set");
  }
  const bool open_loop = options.rate > 0.0;
  const int depth = std::max(1, options.depth);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + options.host +
                                   "' (dotted IPv4 only)");
  }

  // Nonblocking connects, all launched up front.  Against the serial
  // daemon most of them park in the listen backlog (or beyond it) — that
  // is the scenario, not an error.
  std::vector<std::unique_ptr<LoadConn>> conns;
  conns.reserve(static_cast<size_t>(options.connections));
  for (int c = 0; c < options.connections; ++c) {
    auto conn = std::make_unique<LoadConn>();
    conn->fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (conn->fd < 0) return Status::Internal("socket() failed");
    const int flags = ::fcntl(conn->fd, F_GETFL, 0);
    ::fcntl(conn->fd, F_SETFL, flags | O_NONBLOCK);
    const int one = 1;
    ::setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int rc = ::connect(conn->fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    if (rc == 0) {
      conn->established = true;
    } else if (errno != EINPROGRESS) {
      conn->dead = true;
    }
    conns.push_back(std::move(conn));
  }

  LoadStats stats;
  std::vector<double> latencies;
  Xoshiro256 rng(options.seed);
  uint64_t seed_counter = options.seed;

  const double start = NowS();
  const double gen_end = start + static_cast<double>(options.duration_ms) / 1e3;
  const double drain_end =
      gen_end + static_cast<double>(options.drain_ms) / 1e3;
  double next_arrival = start;
  double last_reply = start;
  size_t rr = 0;  // round-robin cursor over established connections

  const auto queue_request = [&](LoadConn& conn, double reference_time) {
    conn.outbox += options.line_prefix;
    conn.outbox += std::to_string(seed_counter++);
    conn.outbox += "}\n";
    conn.owed.push_back(reference_time);
    ++stats.sent;
  };

  // Flushes what the socket accepts; leftover bytes wait for POLLOUT.
  const auto flush = [](LoadConn& conn) {
    while (conn.out_off < conn.outbox.size()) {
      const ssize_t k =
          ::send(conn.fd, conn.outbox.data() + conn.out_off,
                 conn.outbox.size() - conn.out_off, MSG_NOSIGNAL);
      if (k > 0) {
        conn.out_off += static_cast<size_t>(k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (k < 0 && errno == EINTR) continue;
      conn.dead = true;
      break;
    }
    if (conn.out_off == conn.outbox.size()) {
      conn.outbox.clear();
      conn.out_off = 0;
    }
  };

  const auto consume_replies = [&](LoadConn& conn, double now) {
    size_t newline;
    while ((newline = conn.inbox.find('\n')) != std::string::npos) {
      const std::string line = conn.inbox.substr(0, newline);
      conn.inbox.erase(0, newline + 1);
      if (line.empty()) continue;
      if (conn.owed.empty() || line.front() != '{' ||
          line.find("\"op\"") == std::string::npos) {
        ++stats.malformed;
        continue;
      }
      const double reference = conn.owed.front();
      conn.owed.pop_front();
      ++stats.completed;
      last_reply = now;
      latencies.push_back((now - reference) * 1e3);
      if (line.find("\"ok\":true") == std::string::npos) {
        if (line.find("\"error\":\"Unavailable\"") != std::string::npos) {
          ++stats.rejected;
        } else {
          ++stats.errors;
        }
      }
      // Closed loop: replace the completed request while the window is
      // open, keeping `depth` outstanding.
      if (!open_loop && now < gen_end) queue_request(conn, now);
    }
  };

  std::vector<pollfd> pollset;
  for (;;) {
    const double now = NowS();
    if (now >= drain_end) break;

    // Established connections, in stable order, for round-robin and for
    // the closed-loop priming below.
    std::vector<LoadConn*> live;
    for (auto& conn : conns) {
      if (conn->established && !conn->dead) live.push_back(conn.get());
    }

    if (open_loop) {
      // Emit every arrival whose scheduled time has come.  Arrivals keep
      // their schedule even when no connection is up yet (the server owns
      // that delay too).
      while (next_arrival <= now && next_arrival < gen_end) {
        if (!live.empty()) {
          LoadConn& conn = *live[rr++ % live.size()];
          queue_request(conn, next_arrival);
        }
        next_arrival += -std::log(rng.NextDoublePositive()) / options.rate;
      }
    } else {
      // Prime (and keep) `depth` requests outstanding per connection.
      for (LoadConn* conn : live) {
        while (now < gen_end &&
               conn->owed.size() < static_cast<size_t>(depth)) {
          queue_request(*conn, now);
        }
      }
    }

    // Done once the window closed and nothing is owed anywhere.
    if (now >= gen_end) {
      bool outstanding = false;
      for (auto& conn : conns) {
        if (!conn->dead && conn->established && !conn->owed.empty()) {
          outstanding = true;
          break;
        }
      }
      if (!outstanding) break;
    }

    pollset.clear();
    for (auto& conn : conns) {
      if (conn->dead) continue;
      pollfd p{};
      p.fd = conn->fd;
      if (!conn->established) {
        p.events = POLLOUT;  // connect completion
      } else {
        p.events = POLLIN;
        if (!conn->outbox.empty()) p.events |= POLLOUT;
      }
      pollset.push_back(p);
    }
    if (pollset.empty()) break;  // every connection died

    int timeout_ms = 10;
    if (open_loop && next_arrival < gen_end) {
      const double wait_s = next_arrival - NowS();
      timeout_ms = std::max(0, std::min(10, static_cast<int>(wait_s * 1e3)));
    }
    const int n = ::poll(pollset.data(), static_cast<nfds_t>(pollset.size()),
                         timeout_ms);
    if (n < 0 && errno != EINTR) return Status::Internal("poll() failed");

    size_t pi = 0;
    for (auto& conn : conns) {
      if (conn->dead) continue;
      const pollfd& p = pollset[pi++];
      if (p.revents == 0) continue;
      const double reply_now = NowS();
      if (!conn->established) {
        if (p.revents & (POLLERR | POLLHUP)) {
          conn->dead = true;
          continue;
        }
        if (p.revents & POLLOUT) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            conn->dead = true;
          } else {
            conn->established = true;
          }
        }
        continue;
      }
      if (p.revents & POLLOUT) flush(*conn);
      if (p.revents & POLLIN) {
        char chunk[65536];
        for (;;) {
          const ssize_t k = ::recv(conn->fd, chunk, sizeof(chunk), 0);
          if (k > 0) {
            conn->inbox.append(chunk, static_cast<size_t>(k));
            continue;
          }
          if (k == 0) conn->dead = true;  // server closed on us
          if (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            conn->dead = true;
          }
          break;
        }
        consume_replies(*conn, reply_now);
      }
      if ((p.revents & (POLLERR | POLLNVAL)) != 0) conn->dead = true;
    }

    // Kick fresh bytes out without waiting a poll cycle for POLLOUT.
    for (auto& conn : conns) {
      if (!conn->dead && conn->established && !conn->outbox.empty()) {
        flush(*conn);
      }
    }
  }

  for (auto& conn : conns) {
    if (conn->established) ++stats.connected;
  }
  if (stats.connected == 0) {
    return Status::NotFound("no connection to " + options.host + ":" +
                            std::to_string(options.port) +
                            " could be established");
  }

  stats.elapsed_s = std::max(1e-9, (stats.completed > 0 ? last_reply : NowS()) -
                                       start);
  stats.throughput_qps =
      static_cast<double>(stats.completed) / stats.elapsed_s;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    stats.p50_ms = Percentile(latencies, 0.50);
    stats.p99_ms = Percentile(latencies, 0.99);
    stats.p999_ms = Percentile(latencies, 0.999);
    stats.max_ms = latencies.back();
    double sum = 0.0;
    for (double v : latencies) sum += v;
    stats.mean_ms = sum / static_cast<double>(latencies.size());
    // Server-comparable histogram: same log2 microsecond buckets as
    // util/metrics.h histograms.
    stats.latency_us_buckets.assign(metrics::kBuckets + 1, 0);
    for (double ms : latencies) {
      const auto us = static_cast<int64_t>(ms * 1e3);
      ++stats.latency_us_buckets[static_cast<size_t>(
          metrics::Histogram::BucketFor(us))];
    }
  }
  return stats;
}

std::string FormatLoadStats(const LoadStats& stats) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"connected\":%d,\"sent\":%llu,\"completed\":%llu,"
      "\"rejected\":%llu,\"errors\":%llu,\"malformed\":%llu,"
      "\"elapsed_s\":%.3f,\"throughput_qps\":%.1f,"
      "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"p999_ms\":%.3f,"
      "\"mean_ms\":%.3f,\"max_ms\":%.3f}",
      stats.connected, static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.malformed), stats.elapsed_s,
      stats.throughput_qps, stats.p50_ms, stats.p99_ms, stats.p999_ms,
      stats.mean_ms, stats.max_ms);
  return buf;
}

std::string FormatLatencyHistogram(const LoadStats& stats) {
  // Cumulative counts (Prometheus `le` convention), flat keys so CI can
  // grep bucket lines the same way it greps the stats line.  Empty bucket
  // vector (no completed requests) renders all-zero.
  std::string out = "{\"histogram\":\"latency_us\"";
  uint64_t total = 0;
  char buf[64];
  for (int i = 0; i <= metrics::kBuckets; ++i) {
    const uint64_t n = i < static_cast<int>(stats.latency_us_buckets.size())
                           ? stats.latency_us_buckets[static_cast<size_t>(i)]
                           : 0;
    total += n;
    if (i < metrics::kBuckets) {
      std::snprintf(buf, sizeof(buf), ",\"le_%lldus\":%llu",
                    static_cast<long long>(metrics::Histogram::BucketBound(i)),
                    static_cast<unsigned long long>(total));
    } else {
      std::snprintf(buf, sizeof(buf), ",\"le_inf\":%llu",
                    static_cast<unsigned long long>(total));
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"count\":%llu}",
                static_cast<unsigned long long>(total));
  out += buf;
  return out;
}

}  // namespace geopriv
