// Open-loop load generator for the event-loop daemon.
//
// Measuring a concurrent server with a closed-loop client (send, wait,
// send) understates latency under load: the client slows down with the
// server, so queueing delay never shows up in the numbers (coordinated
// omission).  This generator's primary mode is OPEN-LOOP: request
// arrivals follow a Poisson process at a fixed rate, scheduled from a
// deterministic Xoshiro256 stream, and each request's latency is measured
// from its SCHEDULED arrival — so time a request spends queued behind a
// slow server counts against the server, exactly as it would for the
// independent clients the arrivals model.
//
// rate = 0 switches to closed-loop saturation mode: every connection
// keeps `depth` requests outstanding, which measures the server's
// throughput ceiling rather than its latency under a fixed offered load.
//
// The generator is a single-threaded nonblocking poll(2) client driving
// N concurrent connections (round-robin arrival assignment, per-connection
// write backpressure, partial-line reassembly on replies).  Connections a
// server never accepts or serves — the serial baseline at N=64 parks all
// but one — are tolerated: their requests simply stay unanswered and the
// run drains out on its deadline.

#ifndef GEOPRIV_SERVICE_LOADGEN_H_
#define GEOPRIV_SERVICE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace geopriv {

struct LoadOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Concurrent TCP connections.
  int connections = 1;
  /// Offered load in queries/second across all connections (Poisson
  /// arrivals).  0 = closed-loop: keep `depth` outstanding per connection.
  double rate = 0.0;
  /// Closed-loop pipeline depth per connection (ignored in open loop).
  int depth = 1;
  /// Arrival-generation window.
  int64_t duration_ms = 2000;
  /// Extra time after the window to wait for outstanding replies.
  int64_t drain_ms = 2000;
  /// Seed for the arrival process and the per-request seed counter base.
  uint64_t seed = 1;
  /// Request-line prefix; each request is `line_prefix + <uint64> + "}"`
  /// with a distinct counter value, e.g.
  ///   {"op":"query","consumer":"load","n":5,"alpha":"1/2","count":2,"seed":
  /// Every line must elicit exactly one reply line (no batch ops).
  std::string line_prefix;
};

struct LoadStats {
  int connected = 0;       ///< connections whose connect() completed
  uint64_t sent = 0;       ///< requests written (or queued) to the wire
  uint64_t completed = 0;  ///< reply lines matched to a request
  uint64_t rejected = 0;   ///< shed replies (server said Unavailable)
  uint64_t errors = 0;     ///< non-ok replies other than sheds
  uint64_t malformed = 0;  ///< reply lines that were not protocol JSON
  double elapsed_s = 0.0;  ///< first arrival to last reply (or drain end)
  double throughput_qps = 0.0;  ///< completed / elapsed_s
  /// Latency percentiles over completed requests, milliseconds.  Open
  /// loop: from scheduled arrival.  Closed loop: from the actual send.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  /// Client-side latency histogram, microseconds, in the SAME log2
  /// buckets as the server's metrics registry (util/metrics.h: bucket i
  /// counts latencies in (2^(i-1), 2^i], bucket 0 counts <= 1µs; the last
  /// slot is +Inf) — so a scraped server histogram and this one line up
  /// bucket for bucket.
  std::vector<uint64_t> latency_us_buckets;
};

/// Runs one load-generation session against a live daemon.  Fails only on
/// setup errors (no connection could be established, bad options); server
/// misbehavior during the run lands in the stats, not the status.
Result<LoadStats> RunLoad(const LoadOptions& options);

/// Formats `stats` as one flat JSON line (the loadgen tool's output; CI
/// greps it).
std::string FormatLoadStats(const LoadStats& stats);

/// Formats the client-side latency histogram as one flat JSON line with
/// CUMULATIVE per-bucket counts (Prometheus-style `le`): keys "le_1us",
/// "le_2us", ..., "le_inf", plus "count" and the percentile summary's
/// source size.  Emitted by `geopriv_loadgen --dump-histogram 1`.
std::string FormatLatencyHistogram(const LoadStats& stats);

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_LOADGEN_H_
