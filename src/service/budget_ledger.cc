#include "service/budget_ledger.h"

#include <algorithm>

#include "core/accounting.h"

namespace geopriv {

BudgetLedger::BudgetLedger(double budget_alpha)
    : budget_(std::min(1.0, std::max(0.0, budget_alpha))) {}

Result<BudgetLedger::FoldedLevels> BudgetLedger::Fold(const Account& account,
                                                      double alpha,
                                                      bool chained) {
  // Delegate every fold to core/accounting.h so the ledger can never
  // drift from the library's composition semantics.  Folding one release
  // at a time into the running aggregates is bit-identical to composing
  // the full history: ComposeSequential is the same left-fold of
  // products, and min is associative.
  FoldedLevels folded{account.independent_level, account.chained_level};
  if (alpha >= 0.0) {
    if (chained) {
      GEOPRIV_ASSIGN_OR_RETURN(
          folded.chained, account.chained_releases == 0
                              ? Result<double>(alpha)
                              : ComposeChained({folded.chained, alpha}));
    } else {
      GEOPRIV_ASSIGN_OR_RETURN(
          folded.independent, ComposeSequential({folded.independent, alpha}));
    }
  }
  return folded;
}

Result<BudgetLedger::FoldedLevels> BudgetLedger::Decide(
    const Account& account, double alpha, bool chained,
    BudgetDecision* decision) const {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("release level alpha must lie in [0, 1]");
  }
  decision->budget = budget_;
  decision->current_level =
      account.independent_level * account.chained_level;
  GEOPRIV_ASSIGN_OR_RETURN(FoldedLevels folded,
                           Fold(account, alpha, chained));
  decision->composed_level = folded.independent * folded.chained;
  decision->allowed = decision->composed_level >= budget_;
  return folded;
}

Result<BudgetDecision> BudgetLedger::Charge(const std::string& consumer,
                                            double alpha, bool chained) {
  std::lock_guard<std::mutex> lock(mu_);
  // No account is created for a rejected (or malformed) charge: a stream
  // of unique rejected consumer names must not grow ledger state — and
  // the persisted file — without bound.
  static const Account kEmpty;
  auto it = accounts_.find(consumer);
  const Account& account = it == accounts_.end() ? kEmpty : it->second;
  BudgetDecision decision;
  GEOPRIV_ASSIGN_OR_RETURN(FoldedLevels folded,
                           Decide(account, alpha, chained, &decision));
  if (decision.allowed) {
    // Record exactly what was admitted — the same fold, not a re-derivation.
    Account& stored =
        it == accounts_.end() ? accounts_[consumer] : it->second;
    stored.independent_level = folded.independent;
    stored.chained_level = folded.chained;
    ++(chained ? stored.chained_releases : stored.independent_releases);
  }
  return decision;
}

Result<BudgetDecision> BudgetLedger::ChargeMany(const std::string& consumer,
                                                double alpha, uint64_t k) {
  if (k == 0) {
    return Status::InvalidArgument(
        "a multi-release charge must cover at least one release");
  }
  if (k == 1) return Charge(consumer, alpha);
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("release level alpha must lie in [0, 1]");
  }
  std::lock_guard<std::mutex> lock(mu_);
  static const Account kEmpty;
  auto it = accounts_.find(consumer);
  const Account& account = it == accounts_.end() ? kEmpty : it->second;
  BudgetDecision decision;
  decision.budget = budget_;
  decision.current_level =
      account.independent_level * account.chained_level;
  // Fold the k releases one at a time — the identical left-fold k
  // sequential Charge calls would run, so an admitted ChargeMany leaves
  // the account bit-identical to k admitted Charges.
  Account folding = account;
  FoldedLevels folded{account.independent_level, account.chained_level};
  for (uint64_t j = 0; j < k; ++j) {
    GEOPRIV_ASSIGN_OR_RETURN(folded,
                             Fold(folding, alpha, /*chained=*/false));
    folding.independent_level = folded.independent;
    folding.chained_level = folded.chained;
  }
  decision.composed_level = folded.independent * folded.chained;
  decision.allowed = decision.composed_level >= budget_;
  if (decision.allowed) {
    Account& stored =
        it == accounts_.end() ? accounts_[consumer] : it->second;
    stored.independent_level = folded.independent;
    stored.chained_level = folded.chained;
    stored.independent_releases += k;
  }
  return decision;
}

Result<BudgetDecision> BudgetLedger::Preview(const std::string& consumer,
                                             double alpha,
                                             bool chained) const {
  std::lock_guard<std::mutex> lock(mu_);
  static const Account kEmpty;
  auto it = accounts_.find(consumer);
  const Account& account = it == accounts_.end() ? kEmpty : it->second;
  BudgetDecision decision;
  GEOPRIV_RETURN_IF_ERROR(
      Decide(account, alpha, chained, &decision).status());
  return decision;
}

double BudgetLedger::Level(const std::string& consumer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(consumer);
  if (it == accounts_.end()) return 1.0;
  return it->second.independent_level * it->second.chained_level;
}

uint64_t BudgetLedger::Releases(const std::string& consumer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(consumer);
  if (it == accounts_.end()) return 0;
  return it->second.independent_releases + it->second.chained_releases;
}

std::vector<BudgetLedger::AccountSnapshot> BudgetLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AccountSnapshot> out;
  out.reserve(accounts_.size());
  for (const auto& [consumer, account] : accounts_) {
    out.push_back({consumer, account.independent_level,
                   account.independent_releases, account.chained_level,
                   account.chained_releases});
  }
  std::sort(out.begin(), out.end(),
            [](const AccountSnapshot& a, const AccountSnapshot& b) {
              return a.consumer < b.consumer;
            });
  return out;
}

Status BudgetLedger::Restore(const std::vector<AccountSnapshot>& accounts) {
  for (const AccountSnapshot& account : accounts) {
    if (!(account.independent_level >= 0.0 &&
          account.independent_level <= 1.0 &&
          account.chained_level >= 0.0 && account.chained_level <= 1.0)) {
      return Status::InvalidArgument(
          "persisted ledger holds a level outside [0, 1] for consumer '" +
          account.consumer + "'");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  accounts_.clear();
  for (const AccountSnapshot& account : accounts) {
    accounts_[account.consumer] = {
        account.independent_level, account.independent_releases,
        account.chained_level, account.chained_releases};
  }
  return Status::OK();
}

}  // namespace geopriv
