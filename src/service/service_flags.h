// Shared service flag table: one declaration, every binary.
//
// The geopriv_serve daemon and geopriv_cli's serve/query subcommands
// configure the same MechanismService, and historically each grew its own
// flag parser — so a new service option (a deadline, an overload knob)
// had to land twice and could drift.  This table registers the full flag
// set on a util/arg_parser.h ArgParser once; both tools call it, so a
// flag added here appears everywhere with identical names, ranges and
// strictness.

#ifndef GEOPRIV_SERVICE_SERVICE_FLAGS_H_
#define GEOPRIV_SERVICE_SERVICE_FLAGS_H_

#include <cstdint>
#include <string>

#include "service/server.h"
#include "util/arg_parser.h"
#include "util/status.h"

namespace geopriv {

/// Targets for the shared flags; defaults match ServiceOptions.
struct ServiceFlags {
  double budget = 0.0;        ///< --budget: floor in [0, 1]; 0 disables
  int shards = 8;             ///< --shards
  int threads = 0;            ///< --threads (0 defers to GEOPRIV_THREADS)
  std::string persist;        ///< --persist: durable state directory
  int port = 0;               ///< --port: TCP (check Provided("port"))
  std::string fault;          ///< --fault: injection spec (testing only)
  int64_t deadline_ms = 0;    ///< --deadline-ms: default solve deadline
  int64_t max_pending = 0;    ///< --max-pending: solve admission bound
  int64_t max_entries = 0;    ///< --max-entries: cache LRU entry bound
  int64_t max_bytes = 0;      ///< --max-bytes: cache LRU byte bound
  int64_t retry_after_ms = 1000;  ///< --retry-after-ms: shed backoff hint
  int64_t idle_timeout_ms = 0;    ///< --idle-timeout-ms: TCP idle drop
  bool cached_only = false;   ///< --cached-only: degraded mode
  int workers = 0;            ///< --workers: event-loop batch executors
  bool serial_accept = false; ///< --serial-accept: historical TCP loop
  int metrics_port = -1;      ///< --metrics-port: loopback HTTP /metrics
  int64_t slow_query_ms = 0;  ///< --slow-query-ms: JSONL slow-query log
};

/// Registers every service flag on `parser`, bound to `flags`.  Both must
/// outlive the Parse call.
void RegisterServiceFlags(ArgParser* parser, ServiceFlags* flags);

/// The ServiceOptions the parsed flags describe (ranges were already
/// enforced by ArgParser, so this cannot fail).
ServiceOptions ToServiceOptions(const ServiceFlags& flags);

/// Arms fault injection from the environment (GEOPRIV_FAULTS), then from
/// the --fault spec; a non-empty flag replaces whatever the environment
/// armed (ArmFromSpec replaces the whole registry).  No-op when both are
/// empty.
Status ArmConfiguredFaults(const ServiceFlags& flags);

}  // namespace geopriv

#endif  // GEOPRIV_SERVICE_SERVICE_FLAGS_H_
