// BigInt: arbitrary-precision signed integer.
//
// The paper's derivation matrices T = G⁻¹·M and the determinant identity
// det G'_{n,α} = (1−α²)^n involve rationals whose numerators/denominators
// grow like α^n; with α = p/q these quickly overflow 64-bit (and even
// 128-bit) integers.  BigInt gives the exact substrate on which Rational
// (rational.h) is built, so Theorem 2 / Lemma 3 can be verified with zero
// numerical error.
//
// Representation: a two-state small/large design tuned for the exact LP and
// matrix hot paths, where the overwhelming majority of values fit a machine
// word.
//   * Small: any value representable as int64_t is stored inline in
//     `small_` with no heap allocation.  Add/sub/mul/div/gcd run on native
//     integers with overflow checks and fall back to the slow path only on
//     actual overflow.
//   * Large: sign + little-endian magnitude in base 2^32.  Division is
//     Knuth's Algorithm D.  The magnitude vector never has trailing zero
//     limbs.
// The representation is canonical: a BigInt is large if and only if its
// value does not fit in int64_t, so small/large promotion and demotion are
// deterministic and comparisons can shortcut on the state.

#ifndef GEOPRIV_EXACT_BIGINT_H_
#define GEOPRIV_EXACT_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace geopriv {

/// Arbitrary-precision signed integer with value semantics.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer (always the small representation).
  BigInt(int64_t value) : small_(value) {}  // NOLINT(google-explicit-constructor)

  /// Parses a base-10 string, optionally signed ("-123", "+7", "0").
  static Result<BigInt> FromString(std::string_view text);

  /// Base-10 rendering.
  std::string ToString() const;

  // Queries -------------------------------------------------------------
  bool IsZero() const { return !large_ && small_ == 0; }
  bool IsNegative() const { return large_ ? negative_ : small_ < 0; }
  /// -1, 0 or +1.
  int Sign() const {
    if (large_) return negative_ ? -1 : 1;
    return small_ == 0 ? 0 : (small_ < 0 ? -1 : 1);
  }
  /// True when the value fits in int64_t (the inline representation).
  bool FitsInt64() const { return !large_; }
  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;
  /// Converts to int64 when representable.
  Result<int64_t> ToInt64() const;
  /// Closest double (may lose precision for large magnitudes).
  double ToDouble() const;

  // Arithmetic ------------------------------------------------------------
  BigInt operator-() const;
  BigInt Abs() const;
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Fails on division by zero.
  static Result<BigInt> Divide(const BigInt& num, const BigInt& den);
  /// Remainder matching Divide: num == q*den + r, |r| < |den|, sign(r) ==
  /// sign(num).  Fails on division by zero.
  static Result<BigInt> Remainder(const BigInt& num, const BigInt& den);
  /// num^exp for exp >= 0.
  static BigInt Pow(const BigInt& base, uint64_t exp);
  /// Greatest common divisor (always non-negative).
  static BigInt Gcd(BigInt a, BigInt b);

  /// In-place compound ops.  These mutate the receiver directly (native
  /// arithmetic for small values, in-place limb add/sub for large ones)
  /// instead of routing through a full temporary.
  BigInt& operator+=(const BigInt& o) {
    AddSigned(o, /*negate_o=*/false);
    return *this;
  }
  BigInt& operator-=(const BigInt& o) {
    AddSigned(o, /*negate_o=*/true);
    return *this;
  }
  BigInt& operator*=(const BigInt& o);

  // Comparison ------------------------------------------------------------
  /// Three-way compare: -1, 0, +1.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

 private:
  /// Borrowed view of a little-endian base-2^32 magnitude.
  struct LimbSpan {
    const uint32_t* data;
    size_t size;
    bool empty() const { return size == 0; }
    uint32_t operator[](size_t i) const { return data[i]; }
  };

  /// |value| of the small representation in unsigned space (INT64_MIN-safe).
  uint64_t SmallMagnitude() const;
  /// Magnitude view; `scratch` backs the limbs of a small value.
  LimbSpan Magnitude(uint32_t scratch[2]) const;
  /// Installs sign+magnitude, trimming and demoting to small when it fits.
  void AssignMagnitude(bool negative, std::vector<uint32_t>&& mag);
  static BigInt FromMagnitude(bool negative, std::vector<uint32_t>&& mag);
  /// Value from an unsigned machine word (promotes above INT64_MAX).
  static BigInt FromUnsigned(uint64_t mag, bool negative);
  /// *this += (negate_o ? -o : o), mutating in place where possible.
  void AddSigned(const BigInt& o, bool negate_o);

  // Magnitude helpers (sign-agnostic).
  static int CompareMagnitude(LimbSpan a, LimbSpan b);
  static std::vector<uint32_t> AddMagnitude(LimbSpan a, LimbSpan b);
  static void AddMagnitudeInPlace(std::vector<uint32_t>* a, LimbSpan b);
  /// Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(LimbSpan a, LimbSpan b);
  /// Requires |*a| >= |b|.
  static void SubMagnitudeInPlace(std::vector<uint32_t>* a, LimbSpan b);
  static std::vector<uint32_t> MulMagnitude(LimbSpan a, LimbSpan b);
  /// Knuth Algorithm D; b must be non-empty.
  static void DivModMagnitude(LimbSpan a, LimbSpan b,
                              std::vector<uint32_t>* quot,
                              std::vector<uint32_t>* rem);
  /// v = v * mul + add over the raw magnitude.
  static void MulAddSmallInPlace(std::vector<uint32_t>* v, uint32_t mul,
                                 uint32_t add);
  static void Trim(std::vector<uint32_t>* v);

  int64_t small_ = 0;            // value when !large_
  bool large_ = false;           // discriminates the representation
  bool negative_ = false;        // sign of the large magnitude
  std::vector<uint32_t> limbs_;  // large magnitude; empty when small
};

}  // namespace geopriv

#endif  // GEOPRIV_EXACT_BIGINT_H_
