// BigInt: arbitrary-precision signed integer.
//
// The paper's derivation matrices T = G⁻¹·M and the determinant identity
// det G'_{n,α} = (1−α²)^n involve rationals whose numerators/denominators
// grow like α^n; with α = p/q these quickly overflow 64-bit (and even
// 128-bit) integers.  BigInt gives the exact substrate on which Rational
// (rational.h) is built, so Theorem 2 / Lemma 3 can be verified with zero
// numerical error.
//
// Representation: sign + little-endian magnitude in base 2^32.  Division is
// Knuth's Algorithm D.  The magnitude vector never has trailing zero limbs;
// zero is the empty vector with positive sign.

#ifndef GEOPRIV_EXACT_BIGINT_H_
#define GEOPRIV_EXACT_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace geopriv {

/// Arbitrary-precision signed integer with value semantics.
class BigInt {
 public:
  /// Zero.
  BigInt() : negative_(false) {}
  /// From a machine integer.
  BigInt(int64_t value);  // NOLINT(google-explicit-constructor)

  /// Parses a base-10 string, optionally signed ("-123", "+7", "0").
  static Result<BigInt> FromString(std::string_view text);

  /// Base-10 rendering.
  std::string ToString() const;

  // Queries -------------------------------------------------------------
  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  /// -1, 0 or +1.
  int Sign() const { return IsZero() ? 0 : (negative_ ? -1 : 1); }
  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;
  /// Converts to int64 when representable.
  Result<int64_t> ToInt64() const;
  /// Closest double (may lose precision for large magnitudes).
  double ToDouble() const;

  // Arithmetic ------------------------------------------------------------
  BigInt operator-() const;
  BigInt Abs() const;
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Fails on division by zero.
  static Result<BigInt> Divide(const BigInt& num, const BigInt& den);
  /// Remainder matching Divide: num == q*den + r, |r| < |den|, sign(r) ==
  /// sign(num).  Fails on division by zero.
  static Result<BigInt> Remainder(const BigInt& num, const BigInt& den);
  /// num^exp for exp >= 0.
  static BigInt Pow(const BigInt& base, uint64_t exp);
  /// Greatest common divisor (always non-negative).
  static BigInt Gcd(BigInt a, BigInt b);

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  // Comparison ------------------------------------------------------------
  /// Three-way compare: -1, 0, +1.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

 private:
  // Magnitude helpers (sign-agnostic, little-endian base 2^32 vectors).
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Knuth Algorithm D; b must be non-empty.
  static void DivModMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              std::vector<uint32_t>* quot,
                              std::vector<uint32_t>* rem);
  static void Trim(std::vector<uint32_t>* v);

  void Normalize();

  bool negative_;
  std::vector<uint32_t> limbs_;
};

}  // namespace geopriv

#endif  // GEOPRIV_EXACT_BIGINT_H_
