#include "exact/rational.h"

#include <utility>

namespace geopriv {

void Rational::Reduce() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = *BigInt::Divide(num_, g);
    den_ = *BigInt::Divide(den_, g);
  }
}

Result<Rational> Rational::Create(BigInt num, BigInt den) {
  if (den.IsZero()) {
    return Status::InvalidArgument("rational with zero denominator");
  }
  Rational out(std::move(num), std::move(den), /*normalized_tag=*/true);
  out.Reduce();
  return out;
}

Result<Rational> Rational::FromInts(int64_t num, int64_t den) {
  return Create(BigInt(num), BigInt(den));
}

Result<Rational> Rational::FromString(std::string_view text) {
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    GEOPRIV_ASSIGN_OR_RETURN(BigInt num,
                             BigInt::FromString(text.substr(0, slash)));
    GEOPRIV_ASSIGN_OR_RETURN(BigInt den,
                             BigInt::FromString(text.substr(slash + 1)));
    return Create(std::move(num), std::move(den));
  }
  size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(text.substr(0, dot));
    std::string_view frac = text.substr(dot + 1);
    if (frac.empty()) {
      return Status::InvalidArgument("decimal literal has no fraction part");
    }
    digits.append(frac);
    GEOPRIV_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
    BigInt den = BigInt::Pow(BigInt(10), frac.size());
    return Create(std::move(num), std::move(den));
  }
  GEOPRIV_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text));
  return Rational(std::move(num));
}

std::string Rational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const { return num_.ToDouble() / den_.ToDouble(); }

Rational Rational::operator-() const {
  return Rational(-num_, den_, /*normalized_tag=*/true);
}

Rational Rational::Abs() const {
  return Rational(num_.Abs(), den_, /*normalized_tag=*/true);
}

Rational Rational::operator+(const Rational& o) const {
  Rational out(num_ * o.den_ + o.num_ * den_, den_ * o.den_,
               /*normalized_tag=*/true);
  out.Reduce();
  return out;
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  Rational out(num_ * o.num_, den_ * o.den_, /*normalized_tag=*/true);
  out.Reduce();
  return out;
}

Result<Rational> Rational::Divide(const Rational& num, const Rational& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  Rational out(num.num_ * den.den_, num.den_ * den.num_,
               /*normalized_tag=*/true);
  out.Reduce();
  return out;
}

Result<Rational> Rational::Inverse() const {
  if (IsZero()) return Status::InvalidArgument("inverse of zero");
  Rational out(den_, num_, /*normalized_tag=*/true);
  out.Reduce();
  return out;
}

Result<Rational> Rational::Pow(int64_t exp) const {
  if (exp >= 0) {
    return Rational(BigInt::Pow(num_, static_cast<uint64_t>(exp)),
                    BigInt::Pow(den_, static_cast<uint64_t>(exp)),
                    /*normalized_tag=*/true);
  }
  if (IsZero()) {
    return Status::InvalidArgument("zero raised to a negative power");
  }
  GEOPRIV_ASSIGN_OR_RETURN(Rational inv, Inverse());
  return inv.Pow(-exp);
}

int Rational::Compare(const Rational& o) const {
  // Cross-multiply; denominators are positive so the sign is preserved.
  return (num_ * o.den_).Compare(o.num_ * den_);
}

}  // namespace geopriv
