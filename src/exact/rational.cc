#include "exact/rational.h"

#include <utility>

namespace geopriv {

namespace {
// Combined numerator+denominator bit size above which lazy reduction is
// abandoned and the gcd is taken immediately (see Normalize()).
constexpr size_t kLazyReduceBits = 512;
}  // namespace

void Rational::Normalize() {
  // The caller just rewrote num_/den_ in place; any previous canonical-form
  // claim is stale.
  reduced_ = false;
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    reduced_ = true;
    return;
  }
  if (num_.FitsInt64() && den_.FitsInt64()) {
    // A native-word gcd is nearly free; keep small values canonical so the
    // fast paths keep firing downstream.
    Reduce();
    return;
  }
  // Deferring the gcd on unbounded chains of large ops (e.g. rational
  // Gauss-Jordan) grows entries exponentially — reduced entries are minors
  // and stay polynomial, unreduced ones compound.  Defer only while the
  // representation stays modest, reduce eagerly beyond the threshold.
  if (num_.BitLength() + den_.BitLength() > kLazyReduceBits) {
    Reduce();
    return;
  }
  reduced_ = false;
}

void Rational::Reduce() const {
  if (reduced_) return;
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = *BigInt::Divide(num_, g);
    den_ = *BigInt::Divide(den_, g);
  }
  reduced_ = true;
}

Result<Rational> Rational::Create(BigInt num, BigInt den) {
  if (den.IsZero()) {
    return Status::InvalidArgument("rational with zero denominator");
  }
  Rational out(std::move(num), std::move(den), /*reduced=*/false);
  out.Normalize();
  return out;
}

Result<Rational> Rational::FromInts(int64_t num, int64_t den) {
  return Create(BigInt(num), BigInt(den));
}

Result<Rational> Rational::FromString(std::string_view text) {
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    GEOPRIV_ASSIGN_OR_RETURN(BigInt num,
                             BigInt::FromString(text.substr(0, slash)));
    GEOPRIV_ASSIGN_OR_RETURN(BigInt den,
                             BigInt::FromString(text.substr(slash + 1)));
    return Create(std::move(num), std::move(den));
  }
  size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(text.substr(0, dot));
    std::string_view frac = text.substr(dot + 1);
    if (frac.empty()) {
      return Status::InvalidArgument("decimal literal has no fraction part");
    }
    digits.append(frac);
    GEOPRIV_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
    BigInt den = BigInt::Pow(BigInt(10), frac.size());
    return Create(std::move(num), std::move(den));
  }
  GEOPRIV_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text));
  return Rational(std::move(num));
}

std::string Rational::ToString() const {
  Reduce();
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const {
  // Reduce first: an unreduced pair can overflow double range even when the
  // value itself is tame.
  Reduce();
  return num_.ToDouble() / den_.ToDouble();
}

Rational Rational::operator-() const {
  return Rational(-num_, den_, reduced_);
}

Rational Rational::Abs() const {
  return Rational(num_.Abs(), den_, reduced_);
}

Rational& Rational::operator+=(const Rational& o) {
  if (den_ == o.den_) {
    // Shared denominator (integers, tableau rows, accumulators): one add.
    num_ += o.num_;
  } else {
    num_ *= o.den_;
    num_ += o.num_ * den_;
    den_ *= o.den_;
  }
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) {
  if (den_ == o.den_) {
    num_ -= o.num_;
  } else {
    num_ *= o.den_;
    num_ -= o.num_ * den_;
    den_ *= o.den_;
  }
  Normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& o) {
  num_ *= o.num_;
  den_ *= o.den_;
  Normalize();
  return *this;
}

Result<Rational> Rational::Divide(const Rational& num, const Rational& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  Rational out(num.num_ * den.den_, num.den_ * den.num_, /*reduced=*/false);
  out.Normalize();
  return out;
}

Result<Rational> Rational::Inverse() const {
  if (IsZero()) return Status::InvalidArgument("inverse of zero");
  Rational out(den_, num_, reduced_);
  if (out.den_.IsNegative()) {
    out.num_ = -out.num_;
    out.den_ = -out.den_;
  }
  return out;
}

Result<Rational> Rational::Pow(int64_t exp) const {
  if (exp >= 0) {
    // Reduce first so the powered pair is born canonical
    // (gcd(p, q) == 1 implies gcd(p^k, q^k) == 1).
    Reduce();
    return Rational(BigInt::Pow(num_, static_cast<uint64_t>(exp)),
                    BigInt::Pow(den_, static_cast<uint64_t>(exp)),
                    /*reduced=*/true);
  }
  if (IsZero()) {
    return Status::InvalidArgument("zero raised to a negative power");
  }
  GEOPRIV_ASSIGN_OR_RETURN(Rational inv, Inverse());
  return inv.Pow(-exp);
}

int Rational::Compare(const Rational& o) const {
  // Sign shortcut, then cross-multiply; denominators are positive so the
  // sign is preserved.  Works on unreduced operands.
  int sa = Sign(), sb = o.Sign();
  if (sa != sb) return sa < sb ? -1 : 1;
  if (sa == 0) return 0;
  return (num_ * o.den_).Compare(o.num_ * den_);
}

}  // namespace geopriv
