// RationalMatrix: dense matrices over exact rationals.
//
// Supports exactly the operations the paper's proofs need: products
// (mechanism composition x = y·T), Gaussian elimination (determinants for
// Lemma 1/2, inverses and solves for T = G⁻¹·M in Theorem 2 and Lemma 3)
// and stochasticity checks (Definition 3's feasible interactions).

#ifndef GEOPRIV_EXACT_RATIONAL_MATRIX_H_
#define GEOPRIV_EXACT_RATIONAL_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "exact/rational.h"
#include "util/result.h"

namespace geopriv {

/// Dense rows×cols matrix of Rational with value semantics.
class RationalMatrix {
 public:
  /// Zero matrix of the given shape (shape may be 0x0).
  RationalMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  /// Identity of order n.
  static RationalMatrix Identity(size_t n);

  /// Builds from a row-major initializer; fails when the data size does not
  /// equal rows*cols.
  static Result<RationalMatrix> FromRows(
      size_t rows, size_t cols, std::vector<Rational> row_major_data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  const Rational& At(size_t i, size_t j) const {
    return data_[i * cols_ + j];
  }
  Rational& At(size_t i, size_t j) { return data_[i * cols_ + j]; }

  bool operator==(const RationalMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  RationalMatrix operator+(const RationalMatrix& o) const;
  RationalMatrix operator-(const RationalMatrix& o) const;
  /// Matrix product; shapes must be compatible (asserted).
  RationalMatrix operator*(const RationalMatrix& o) const;
  /// Scales every entry.
  RationalMatrix ScaledBy(const Rational& s) const;
  RationalMatrix Transposed() const;

  /// Exact determinant by fraction-preserving Gaussian elimination.
  /// Requires a square matrix.
  Result<Rational> Determinant() const;

  /// Exact inverse; fails when singular or non-square.
  Result<RationalMatrix> Inverse() const;

  /// Solves A·X = B exactly (X has B's shape); fails when A is singular.
  Result<RationalMatrix> Solve(const RationalMatrix& b) const;

  /// True when every row sums to exactly 1 and all entries are >= 0
  /// (a feasible consumer interaction / mechanism in the paper's sense).
  bool IsRowStochastic() const;

  /// True when every row sums to exactly 1 (entries may be negative) —
  /// the paper's "generalized stochastic matrix".
  bool IsGeneralizedRowStochastic() const;

  /// Converts to a row-major double vector (for printing / numeric code).
  std::vector<double> ToDoubles() const;

  /// Multi-line text rendering with "p/q" entries.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<Rational> data_;
};

}  // namespace geopriv

#endif  // GEOPRIV_EXACT_RATIONAL_MATRIX_H_
