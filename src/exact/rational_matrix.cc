#include "exact/rational_matrix.h"

#include <cassert>
#include <utility>

namespace geopriv {

RationalMatrix RationalMatrix::Identity(size_t n) {
  RationalMatrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = Rational(1);
  return out;
}

Result<RationalMatrix> RationalMatrix::FromRows(
    size_t rows, size_t cols, std::vector<Rational> row_major_data) {
  if (row_major_data.size() != rows * cols) {
    return Status::InvalidArgument("matrix data size does not match shape");
  }
  RationalMatrix out(rows, cols);
  out.data_ = std::move(row_major_data);
  return out;
}

RationalMatrix RationalMatrix::operator+(const RationalMatrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  RationalMatrix out(rows_, cols_);
  for (size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] + o.data_[k];
  return out;
}

RationalMatrix RationalMatrix::operator-(const RationalMatrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  RationalMatrix out(rows_, cols_);
  for (size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] - o.data_[k];
  return out;
}

RationalMatrix RationalMatrix::operator*(const RationalMatrix& o) const {
  assert(cols_ == o.rows_);
  RationalMatrix out(rows_, o.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const Rational& a = At(i, k);
      if (a.IsZero()) continue;
      for (size_t j = 0; j < o.cols_; ++j) {
        out.At(i, j) += a * o.At(k, j);
      }
    }
  }
  return out;
}

RationalMatrix RationalMatrix::ScaledBy(const Rational& s) const {
  RationalMatrix out(rows_, cols_);
  for (size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] * s;
  return out;
}

RationalMatrix RationalMatrix::Transposed() const {
  RationalMatrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

Result<Rational> RationalMatrix::Determinant() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("determinant requires a square matrix");
  }
  RationalMatrix a = *this;
  const size_t n = rows_;
  Rational det(1);
  for (size_t col = 0; col < n; ++col) {
    // Find a pivot.
    size_t pivot = col;
    while (pivot < n && a.At(pivot, col).IsZero()) ++pivot;
    if (pivot == n) return Rational(0);
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(a.At(pivot, j), a.At(col, j));
      }
      det = -det;
    }
    det *= a.At(col, col);
    Rational inv = *a.At(col, col).Inverse();
    for (size_t i = col + 1; i < n; ++i) {
      if (a.At(i, col).IsZero()) continue;
      Rational factor = a.At(i, col) * inv;
      for (size_t j = col; j < n; ++j) {
        a.At(i, j) -= factor * a.At(col, j);
      }
    }
  }
  return det;
}

Result<RationalMatrix> RationalMatrix::Solve(const RationalMatrix& b) const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("solve requires a square matrix");
  }
  if (b.rows_ != rows_) {
    return Status::InvalidArgument("right-hand side has mismatched rows");
  }
  const size_t n = rows_;
  RationalMatrix a = *this;
  RationalMatrix x = b;
  // Forward elimination with partial (first non-zero) pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && a.At(pivot, col).IsZero()) ++pivot;
    if (pivot == n) {
      return Status::NumericalError("matrix is singular over Q");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a.At(pivot, j), a.At(col, j));
      for (size_t j = 0; j < x.cols_; ++j) std::swap(x.At(pivot, j), x.At(col, j));
    }
    Rational inv = *a.At(col, col).Inverse();
    for (size_t i = col + 1; i < n; ++i) {
      if (a.At(i, col).IsZero()) continue;
      Rational factor = a.At(i, col) * inv;
      for (size_t j = col; j < n; ++j) a.At(i, j) -= factor * a.At(col, j);
      for (size_t j = 0; j < x.cols_; ++j) x.At(i, j) -= factor * x.At(col, j);
    }
  }
  // Back substitution.
  for (size_t col = n; col-- > 0;) {
    Rational inv = *a.At(col, col).Inverse();
    for (size_t j = 0; j < x.cols_; ++j) {
      Rational acc = x.At(col, j);
      for (size_t k = col + 1; k < n; ++k) {
        acc -= a.At(col, k) * x.At(k, j);
      }
      x.At(col, j) = acc * inv;
    }
  }
  return x;
}

Result<RationalMatrix> RationalMatrix::Inverse() const {
  return Solve(Identity(rows_));
}

bool RationalMatrix::IsRowStochastic() const {
  for (size_t i = 0; i < rows_; ++i) {
    Rational sum(0);
    for (size_t j = 0; j < cols_; ++j) {
      if (At(i, j).IsNegative()) return false;
      sum += At(i, j);
    }
    if (sum != Rational(1)) return false;
  }
  return true;
}

bool RationalMatrix::IsGeneralizedRowStochastic() const {
  for (size_t i = 0; i < rows_; ++i) {
    Rational sum(0);
    for (size_t j = 0; j < cols_; ++j) sum += At(i, j);
    if (sum != Rational(1)) return false;
  }
  return true;
}

std::vector<double> RationalMatrix::ToDoubles() const {
  std::vector<double> out;
  out.reserve(data_.size());
  for (const Rational& r : data_) out.push_back(r.ToDouble());
  return out;
}

std::string RationalMatrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    out += "[ ";
    for (size_t j = 0; j < cols_; ++j) {
      out += At(i, j).ToString();
      if (j + 1 < cols_) out += "  ";
    }
    out += " ]\n";
  }
  return out;
}

}  // namespace geopriv
