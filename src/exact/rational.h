// Rational: exact arithmetic over Q, built on BigInt.
//
// All of the paper's matrices (the geometric mechanism G_{n,α}, its scaled
// form G', derivation matrices T = G⁻¹·M, the Table 1 / Appendix B examples)
// have rational entries once α = p/q is rational.  Rational lets us verify
// Theorem 2, Lemma 1 and Lemma 3 with equality instead of tolerances.
//
// Normalization is lazy: the denominator is kept positive at all times (so
// IsZero/Sign/Compare never need the gcd), but the division by gcd(num, den)
// is deferred.  After an arithmetic op the value is reduced immediately when
// both components fit a machine word (a native gcd is nearly free) and
// deferred otherwise; observers that need the canonical form (numerator(),
// denominator(), ToString()) reduce on demand.  Compound ops (+=, -=, *=)
// mutate in place on top of BigInt's in-place arithmetic.  Not thread-safe:
// lazy reduction mutates `mutable` state under const observers.

#ifndef GEOPRIV_EXACT_RATIONAL_H_
#define GEOPRIV_EXACT_RATIONAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "exact/bigint.h"
#include "util/result.h"

namespace geopriv {

/// Exact rational number with a positive denominator; reported in lowest
/// terms (reduction may run lazily).  Value semantics.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  /// Integer value.
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT

  /// num/den; fails when den == 0.
  static Result<Rational> Create(BigInt num, BigInt den);
  /// num/den from machine integers; fails when den == 0.
  static Result<Rational> FromInts(int64_t num, int64_t den);
  /// Parses "p/q", "p" or decimal "0.25".
  static Result<Rational> FromString(std::string_view text);

  /// Canonical (lowest-terms) numerator; reduces on demand.
  const BigInt& numerator() const {
    Reduce();
    return num_;
  }
  /// Canonical (positive, lowest-terms) denominator; reduces on demand.
  const BigInt& denominator() const {
    Reduce();
    return den_;
  }

  bool IsZero() const { return num_.IsZero(); }
  bool IsNegative() const { return num_.IsNegative(); }
  /// -1, 0 or +1.
  int Sign() const { return num_.Sign(); }

  /// "p/q" (or just "p" when q == 1), always in lowest terms.
  std::string ToString() const;
  /// Closest double.
  double ToDouble() const;

  Rational operator-() const;
  Rational Abs() const;
  Rational operator+(const Rational& o) const {
    Rational out = *this;
    out += o;
    return out;
  }
  Rational operator-(const Rational& o) const {
    Rational out = *this;
    out -= o;
    return out;
  }
  Rational operator*(const Rational& o) const {
    Rational out = *this;
    out *= o;
    return out;
  }
  /// Fails on division by zero.
  static Result<Rational> Divide(const Rational& num, const Rational& den);
  /// Reciprocal; fails when zero.
  Result<Rational> Inverse() const;
  /// this^exp; exp may be negative (then fails when zero).
  Result<Rational> Pow(int64_t exp) const;

  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);

  /// Three-way compare: -1, 0, +1.
  int Compare(const Rational& o) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

 private:
  Rational(BigInt num, BigInt den, bool reduced)
      : num_(std::move(num)), den_(std::move(den)), reduced_(reduced) {}

  /// Restores the positive-denominator invariant after an arithmetic op and
  /// reduces immediately when cheap (both parts small) or defers otherwise.
  void Normalize();

  /// Forces the canonical lowest-terms form.
  void Reduce() const;

  mutable BigInt num_;
  mutable BigInt den_;  // always positive
  mutable bool reduced_ = true;
};

}  // namespace geopriv

#endif  // GEOPRIV_EXACT_RATIONAL_H_
