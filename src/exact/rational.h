// Rational: exact arithmetic over Q, built on BigInt.
//
// All of the paper's matrices (the geometric mechanism G_{n,α}, its scaled
// form G', derivation matrices T = G⁻¹·M, the Table 1 / Appendix B examples)
// have rational entries once α = p/q is rational.  Rational lets us verify
// Theorem 2, Lemma 1 and Lemma 3 with equality instead of tolerances.

#ifndef GEOPRIV_EXACT_RATIONAL_H_
#define GEOPRIV_EXACT_RATIONAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "exact/bigint.h"
#include "util/result.h"

namespace geopriv {

/// Exact rational number, always stored in lowest terms with a positive
/// denominator.  Value semantics.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  /// Integer value.
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT

  /// num/den; fails when den == 0.
  static Result<Rational> Create(BigInt num, BigInt den);
  /// num/den from machine integers; fails when den == 0.
  static Result<Rational> FromInts(int64_t num, int64_t den);
  /// Parses "p/q", "p" or decimal "0.25".
  static Result<Rational> FromString(std::string_view text);

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  bool IsNegative() const { return num_.IsNegative(); }
  /// -1, 0 or +1.
  int Sign() const { return num_.Sign(); }

  /// "p/q" (or just "p" when q == 1).
  std::string ToString() const;
  /// Closest double.
  double ToDouble() const;

  Rational operator-() const;
  Rational Abs() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Fails on division by zero.
  static Result<Rational> Divide(const Rational& num, const Rational& den);
  /// Reciprocal; fails when zero.
  Result<Rational> Inverse() const;
  /// this^exp; exp may be negative (then fails when zero).
  Result<Rational> Pow(int64_t exp) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }

  /// Three-way compare: -1, 0, +1.
  int Compare(const Rational& o) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

 private:
  Rational(BigInt num, BigInt den, bool /*normalized_tag*/)
      : num_(std::move(num)), den_(std::move(den)) {}

  /// Divides out gcd and moves the sign to the numerator.
  void Reduce();

  BigInt num_;
  BigInt den_;  // always positive
};

}  // namespace geopriv

#endif  // GEOPRIV_EXACT_RATIONAL_H_
