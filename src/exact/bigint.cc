#include "exact/bigint.h"

#include <algorithm>
#include <cctype>

namespace geopriv {

namespace {

constexpr uint64_t kBase = 1ULL << 32;
// Magnitude of INT64_MIN; the one int64 whose |value| has bit 63 set.
constexpr uint64_t kInt64MinMagnitude = 1ULL << 63;

uint64_t GcdU64(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

}  // namespace

uint64_t BigInt::SmallMagnitude() const {
  return small_ < 0 ? ~static_cast<uint64_t>(small_) + 1
                    : static_cast<uint64_t>(small_);
}

BigInt::LimbSpan BigInt::Magnitude(uint32_t scratch[2]) const {
  if (large_) return {limbs_.data(), limbs_.size()};
  uint64_t mag = SmallMagnitude();
  size_t n = 0;
  if (mag != 0) {
    scratch[n++] = static_cast<uint32_t>(mag & 0xffffffffULL);
    if (mag >> 32) scratch[n++] = static_cast<uint32_t>(mag >> 32);
  }
  return {scratch, n};
}

void BigInt::AssignMagnitude(bool negative, std::vector<uint32_t>&& mag) {
  Trim(&mag);
  if (mag.size() <= 2) {
    uint64_t v = 0;
    if (mag.size() >= 1) v = mag[0];
    if (mag.size() == 2) v |= static_cast<uint64_t>(mag[1]) << 32;
    if (!negative && v <= static_cast<uint64_t>(INT64_MAX)) {
      small_ = static_cast<int64_t>(v);
      large_ = false;
      negative_ = false;
      limbs_.clear();
      return;
    }
    if (negative && v <= kInt64MinMagnitude) {
      small_ = static_cast<int64_t>(~v + 1);
      large_ = false;
      negative_ = false;
      limbs_.clear();
      return;
    }
  }
  large_ = true;
  negative_ = negative;
  limbs_ = std::move(mag);
}

BigInt BigInt::FromMagnitude(bool negative, std::vector<uint32_t>&& mag) {
  BigInt out;
  out.AssignMagnitude(negative, std::move(mag));
  return out;
}

BigInt BigInt::FromUnsigned(uint64_t mag, bool negative) {
  if (!negative && mag <= static_cast<uint64_t>(INT64_MAX)) {
    return BigInt(static_cast<int64_t>(mag));
  }
  if (negative && mag <= kInt64MinMagnitude) {
    return BigInt(static_cast<int64_t>(~mag + 1));
  }
  std::vector<uint32_t> limbs;
  limbs.push_back(static_cast<uint32_t>(mag & 0xffffffffULL));
  if (mag >> 32) limbs.push_back(static_cast<uint32_t>(mag >> 32));
  return FromMagnitude(negative, std::move(limbs));
}

void BigInt::Trim(std::vector<uint32_t>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

void BigInt::MulAddSmallInPlace(std::vector<uint32_t>* v, uint32_t mul,
                                uint32_t add) {
  uint64_t carry = add;
  for (uint32_t& limb : *v) {
    uint64_t cur = static_cast<uint64_t>(limb) * mul + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffULL);
    carry = cur >> 32;
  }
  if (carry) v->push_back(static_cast<uint32_t>(carry));
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) {
    return Status::InvalidArgument("integer literal has no digits");
  }
  // Accumulate in a machine word while it fits; spill into limbs only for
  // genuinely large literals.
  uint64_t acc = 0;
  bool overflowed = false;
  std::vector<uint32_t> limbs;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("invalid digit in integer literal");
    }
    uint32_t digit = static_cast<uint32_t>(c - '0');
    if (!overflowed) {
      if (acc > (UINT64_MAX - digit) / 10) {
        overflowed = true;
        limbs.push_back(static_cast<uint32_t>(acc & 0xffffffffULL));
        limbs.push_back(static_cast<uint32_t>(acc >> 32));
        MulAddSmallInPlace(&limbs, 10, digit);
      } else {
        acc = acc * 10 + digit;
      }
    } else {
      MulAddSmallInPlace(&limbs, 10, digit);
    }
  }
  if (!overflowed) return FromUnsigned(acc, negative);
  return FromMagnitude(negative, std::move(limbs));
}

std::string BigInt::ToString() const {
  if (!large_) return std::to_string(small_);
  // Repeatedly divide the magnitude by 10^9 and emit 9-digit chunks.
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    Trim(&mag);
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::BitLength() const {
  if (!large_) {
    uint64_t mag = SmallMagnitude();
    size_t bits = 0;
    while (mag != 0) {
      ++bits;
      mag >>= 1;
    }
    return bits;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

Result<int64_t> BigInt::ToInt64() const {
  // Canonical representation: large values never fit in int64.
  if (large_) return Status::OutOfRange("BigInt exceeds int64");
  return small_;
}

double BigInt::ToDouble() const {
  if (!large_) return static_cast<double>(small_);
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * static_cast<double>(kBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

BigInt BigInt::operator-() const {
  if (!large_) {
    if (small_ != INT64_MIN) return BigInt(-small_);
    return FromUnsigned(kInt64MinMagnitude, /*negative=*/false);
  }
  // Canonicalize: negating +2^63 lands back on INT64_MIN (small).
  return FromMagnitude(!negative_, std::vector<uint32_t>(limbs_));
}

BigInt BigInt::Abs() const {
  if (!large_) {
    if (small_ != INT64_MIN) return BigInt(small_ < 0 ? -small_ : small_);
    return FromUnsigned(kInt64MinMagnitude, /*negative=*/false);
  }
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::CompareMagnitude(LimbSpan a, LimbSpan b) {
  if (a.size != b.size) return a.size < b.size ? -1 : 1;
  for (size_t i = a.size; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (!large_ && !other.large_) {
    if (small_ != other.small_) return small_ < other.small_ ? -1 : 1;
    return 0;
  }
  bool an = IsNegative(), bn = other.IsNegative();
  if (an != bn) return an ? -1 : 1;
  int mag;
  if (large_ != other.large_) {
    // Canonical: a large magnitude always exceeds a small one.
    mag = large_ ? 1 : -1;
  } else {
    mag = CompareMagnitude({limbs_.data(), limbs_.size()},
                           {other.limbs_.data(), other.limbs_.size()});
  }
  return an ? -mag : mag;
}

std::vector<uint32_t> BigInt::AddMagnitude(LimbSpan a, LimbSpan b) {
  LimbSpan big = a.size >= b.size ? a : b;
  LimbSpan small = a.size >= b.size ? b : a;
  std::vector<uint32_t> out;
  out.reserve(big.size + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size; ++i) {
    uint64_t sum = carry + big[i] + (i < small.size ? small[i] : 0);
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

void BigInt::AddMagnitudeInPlace(std::vector<uint32_t>* a, LimbSpan b) {
  if (a->size() < b.size) a->resize(b.size, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    if (carry == 0 && i >= b.size) return;  // nothing left to propagate
    uint64_t sum = carry + (*a)[i] + (i < b.size ? b[i] : 0);
    (*a)[i] = static_cast<uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  if (carry) a->push_back(static_cast<uint32_t>(carry));
}

std::vector<uint32_t> BigInt::SubMagnitude(LimbSpan a, LimbSpan b) {
  std::vector<uint32_t> out;
  out.reserve(a.size);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size; ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

void BigInt::SubMagnitudeInPlace(std::vector<uint32_t>* a, LimbSpan b) {
  int64_t borrow = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    if (borrow == 0 && i >= b.size) break;
    int64_t diff = static_cast<int64_t>((*a)[i]) - borrow -
                   (i < b.size ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<uint32_t>(diff);
  }
  Trim(a);
}

std::vector<uint32_t> BigInt::MulMagnitude(LimbSpan a, LimbSpan b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size + b.size, 0);
  for (size_t i = 0; i < a.size; ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size; ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size;
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

void BigInt::DivModMagnitude(LimbSpan a, LimbSpan b,
                             std::vector<uint32_t>* quot,
                             std::vector<uint32_t>* rem) {
  quot->clear();
  rem->clear();
  if (CompareMagnitude(a, b) < 0) {
    rem->assign(a.data, a.data + a.size);
    Trim(rem);
    return;
  }
  if (b.size == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = b[0];
    quot->assign(a.size, 0);
    uint64_t r = 0;
    for (size_t i = a.size; i-- > 0;) {
      uint64_t cur = (r << 32) | a[i];
      (*quot)[i] = static_cast<uint32_t>(cur / d);
      r = cur % d;
    }
    Trim(quot);
    if (r) rem->push_back(static_cast<uint32_t>(r));
    return;
  }

  // Knuth Algorithm D.  Normalize so the top divisor limb has its high bit
  // set, which makes the 2-limb quotient estimate off by at most 2.
  int shift = 0;
  uint32_t top = b[b.size - 1];
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shifted = [shift](LimbSpan src) {
    std::vector<uint32_t> out(src.size + 1, 0);
    for (size_t i = 0; i < src.size; ++i) {
      out[i] |= src[i] << shift;
      if (shift)
        out[i + 1] |= static_cast<uint32_t>(
            static_cast<uint64_t>(src[i]) >> (32 - shift));
    }
    return out;  // intentionally not trimmed: u keeps an extra high limb
  };
  std::vector<uint32_t> u = shifted(a);
  std::vector<uint32_t> v = shifted(b);
  Trim(&v);
  const size_t n = v.size();
  const size_t m = u.size() - n - 1 + 1;  // number of quotient limbs
  quot->assign(m, 0);

  const uint64_t vtop = v[n - 1];
  const uint64_t vsecond = n >= 2 ? v[n - 2] : 0;
  for (size_t j = m; j-- > 0;) {
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / vtop;
    uint64_t rhat = numerator % vtop;
    if (qhat > 0xffffffffULL) {
      qhat = 0xffffffffULL;
      rhat = numerator - qhat * vtop;
    }
    // n >= 2 here (single-limb divisors take the fast path above), so
    // u[j + n - 2] is always a valid index.
    while (rhat <= 0xffffffffULL &&
           qhat * vsecond > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffULL) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u[j + n]) -
                static_cast<int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add v back.
      t += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t c2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t s = static_cast<uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<uint32_t>(s & 0xffffffffULL);
        c2 = s >> 32;
      }
      t += static_cast<int64_t>(c2);
      t &= static_cast<int64_t>(kBase) - 1;
    }
    u[j + n] = static_cast<uint32_t>(t);
    (*quot)[j] = static_cast<uint32_t>(qhat);
  }
  Trim(quot);

  // Denormalize the remainder.
  std::vector<uint32_t> r(u.begin(), u.begin() + static_cast<long>(n));
  if (shift) {
    for (size_t i = 0; i + 1 < r.size(); ++i) {
      r[i] = (r[i] >> shift) |
             static_cast<uint32_t>(static_cast<uint64_t>(r[i + 1])
                                   << (32 - shift));
    }
    r[r.size() - 1] >>= shift;
  }
  Trim(&r);
  *rem = std::move(r);
}

void BigInt::AddSigned(const BigInt& o, bool negate_o) {
  if (!large_ && !o.large_) {
    // Negating INT64_MIN overflows; that single case takes the slow path.
    if (!(negate_o && o.small_ == INT64_MIN)) {
      int64_t rhs = negate_o ? -o.small_ : o.small_;
      int64_t r;
      if (!__builtin_add_overflow(small_, rhs, &r)) {
        small_ = r;
        return;
      }
    }
  }
  const bool an = IsNegative();
  const bool bn = negate_o ? !o.IsNegative() : o.IsNegative();
  uint32_t sa[2], sb[2];
  LimbSpan ma = Magnitude(sa);
  LimbSpan mb = o.Magnitude(sb);
  if (an == bn) {
    if (large_) {
      // Same-sign addition only grows the magnitude: stays large.
      AddMagnitudeInPlace(&limbs_, mb);
      return;
    }
    AssignMagnitude(an, AddMagnitude(ma, mb));
    return;
  }
  int cmp = CompareMagnitude(ma, mb);
  if (cmp == 0) {
    *this = BigInt();
    return;
  }
  if (cmp > 0) {
    if (large_) {
      SubMagnitudeInPlace(&limbs_, mb);
      std::vector<uint32_t> mag = std::move(limbs_);
      AssignMagnitude(an, std::move(mag));
    } else {
      AssignMagnitude(an, SubMagnitude(ma, mb));
    }
    return;
  }
  AssignMagnitude(bn, SubMagnitude(mb, ma));
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (!large_ && !other.large_) {
    int64_t r;
    if (!__builtin_add_overflow(small_, other.small_, &r)) return BigInt(r);
  }
  BigInt out = *this;
  out.AddSigned(other, /*negate_o=*/false);
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (!large_ && !other.large_) {
    int64_t r;
    if (!__builtin_sub_overflow(small_, other.small_, &r)) return BigInt(r);
  }
  BigInt out = *this;
  out.AddSigned(other, /*negate_o=*/true);
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (!large_ && !other.large_) {
    int64_t r;
    if (!__builtin_mul_overflow(small_, other.small_, &r)) return BigInt(r);
  }
  uint32_t sa[2], sb[2];
  return FromMagnitude(IsNegative() != other.IsNegative(),
                       MulMagnitude(Magnitude(sa), other.Magnitude(sb)));
}

BigInt& BigInt::operator*=(const BigInt& o) {
  if (!large_ && !o.large_) {
    int64_t r;
    if (!__builtin_mul_overflow(small_, o.small_, &r)) {
      small_ = r;
      return *this;
    }
  }
  // A limb product cannot alias its inputs; build into a fresh vector and
  // move it in (one allocation, no extra copy).
  uint32_t sa[2], sb[2];
  AssignMagnitude(IsNegative() != o.IsNegative(),
                  MulMagnitude(Magnitude(sa), o.Magnitude(sb)));
  return *this;
}

Result<BigInt> BigInt::Divide(const BigInt& num, const BigInt& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  if (!num.large_ && !den.large_) {
    // INT64_MIN / -1 is the lone overflowing quotient.
    if (!(num.small_ == INT64_MIN && den.small_ == -1)) {
      return BigInt(num.small_ / den.small_);
    }
    return FromUnsigned(kInt64MinMagnitude, /*negative=*/false);
  }
  uint32_t sa[2], sb[2];
  std::vector<uint32_t> q, r;
  DivModMagnitude(num.Magnitude(sa), den.Magnitude(sb), &q, &r);
  return FromMagnitude(num.IsNegative() != den.IsNegative(), std::move(q));
}

Result<BigInt> BigInt::Remainder(const BigInt& num, const BigInt& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  if (!num.large_ && !den.large_) {
    // den == ±1 divides everything (and INT64_MIN % -1 is UB in C++).
    if (den.small_ == 1 || den.small_ == -1) return BigInt(0);
    return BigInt(num.small_ % den.small_);
  }
  uint32_t sa[2], sb[2];
  std::vector<uint32_t> q, r;
  DivModMagnitude(num.Magnitude(sa), den.Magnitude(sb), &q, &r);
  return FromMagnitude(num.IsNegative(), std::move(r));
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exp) {
  BigInt result(1);
  BigInt b = base;
  while (exp > 0) {
    if (exp & 1) result *= b;
    b *= b;
    exp >>= 1;
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  // Both small: native Euclid on unsigned magnitudes.
  if (!a.large_ && !b.large_) {
    return FromUnsigned(GcdU64(a.SmallMagnitude(), b.SmallMagnitude()),
                        /*negative=*/false);
  }
  // Mixed small/large: one exact remainder collapses to the small case.
  if (!a.large_ || !b.large_) {
    BigInt& small = a.large_ ? b : a;
    BigInt& large = a.large_ ? a : b;
    if (small.IsZero()) return large.Abs();
    BigInt r = *Remainder(large, small);  // |r| < |small| fits int64
    return FromUnsigned(GcdU64(small.SmallMagnitude(), r.SmallMagnitude()),
                        /*negative=*/false);
  }
  a.negative_ = false;
  b.negative_ = false;
  while (!b.IsZero()) {
    BigInt r = *Remainder(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a.Abs();
}

}  // namespace geopriv
