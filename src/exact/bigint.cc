#include "exact/bigint.h"

#include <algorithm>
#include <cctype>

namespace geopriv {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(int64_t value) : negative_(value < 0) {
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  if (mag != 0) limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffULL));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
}

void BigInt::Trim(std::vector<uint32_t>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

void BigInt::Normalize() {
  Trim(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) {
    return Status::InvalidArgument("integer literal has no digits");
  }
  BigInt out;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("invalid digit in integer literal");
    }
    out = out * ten + BigInt(c - '0');
  }
  out.negative_ = negative;
  out.Normalize();
  return out;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  // Repeatedly divide the magnitude by 10^9 and emit 9-digit chunks.
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    Trim(&mag);
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

Result<int64_t> BigInt::ToInt64() const {
  if (limbs_.size() > 2) return Status::OutOfRange("BigInt exceeds int64");
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag |= limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > (1ULL << 63)) return Status::OutOfRange("BigInt exceeds int64");
    return static_cast<int64_t>(~mag + 1);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX)) {
    return Status::OutOfRange("BigInt exceeds int64");
  }
  return static_cast<int64_t>(mag);
}

double BigInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * static_cast<double>(kBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& big = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& small = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(big.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    uint64_t sum = carry + big[i] + (i < small.size() ? small[i] : 0);
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

void BigInt::DivModMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             std::vector<uint32_t>* quot,
                             std::vector<uint32_t>* rem) {
  quot->clear();
  rem->clear();
  if (CompareMagnitude(a, b) < 0) {
    *rem = a;
    Trim(rem);
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = b[0];
    quot->assign(a.size(), 0);
    uint64_t r = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (r << 32) | a[i];
      (*quot)[i] = static_cast<uint32_t>(cur / d);
      r = cur % d;
    }
    Trim(quot);
    if (r) rem->push_back(static_cast<uint32_t>(r));
    return;
  }

  // Knuth Algorithm D.  Normalize so the top divisor limb has its high bit
  // set, which makes the 2-limb quotient estimate off by at most 2.
  int shift = 0;
  uint32_t top = b.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shifted = [shift](const std::vector<uint32_t>& v) {
    std::vector<uint32_t> out(v.size() + 1, 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << shift;
      if (shift)
        out[i + 1] |= static_cast<uint32_t>(
            static_cast<uint64_t>(v[i]) >> (32 - shift));
    }
    return out;  // intentionally not trimmed: u keeps an extra high limb
  };
  std::vector<uint32_t> u = shifted(a);
  std::vector<uint32_t> v = shifted(b);
  Trim(&v);
  const size_t n = v.size();
  const size_t m = u.size() - n - 1 + 1;  // number of quotient limbs
  quot->assign(m, 0);

  const uint64_t vtop = v[n - 1];
  const uint64_t vsecond = n >= 2 ? v[n - 2] : 0;
  for (size_t j = m; j-- > 0;) {
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / vtop;
    uint64_t rhat = numerator % vtop;
    if (qhat > 0xffffffffULL) {
      qhat = 0xffffffffULL;
      rhat = numerator - qhat * vtop;
    }
    // n >= 2 here (single-limb divisors take the fast path above), so
    // u[j + n - 2] is always a valid index.
    while (rhat <= 0xffffffffULL &&
           qhat * vsecond > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffULL) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u[j + n]) -
                static_cast<int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add v back.
      t += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t c2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t s = static_cast<uint64_t>(u[i + j]) + v[i] + c2;
        u[i + j] = static_cast<uint32_t>(s & 0xffffffffULL);
        c2 = s >> 32;
      }
      t += static_cast<int64_t>(c2);
      t &= static_cast<int64_t>(kBase) - 1;
    }
    u[j + n] = static_cast<uint32_t>(t);
    (*quot)[j] = static_cast<uint32_t>(qhat);
  }
  Trim(quot);

  // Denormalize the remainder.
  std::vector<uint32_t> r(u.begin(), u.begin() + static_cast<long>(n));
  if (shift) {
    for (size_t i = 0; i + 1 < r.size(); ++i) {
      r[i] = (r[i] >> shift) |
             static_cast<uint32_t>(static_cast<uint64_t>(r[i + 1])
                                   << (32 - shift));
    }
    r[r.size() - 1] >>= shift;
  }
  Trim(&r);
  *rem = std::move(r);
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  if (negative_ == other.negative_) {
    out.limbs_ = AddMagnitude(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMagnitude(limbs_, other.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMagnitude(other.limbs_, limbs_);
      out.negative_ = other.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out;
  out.limbs_ = MulMagnitude(limbs_, other.limbs_);
  out.negative_ = negative_ != other.negative_;
  out.Normalize();
  return out;
}

Result<BigInt> BigInt::Divide(const BigInt& num, const BigInt& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  BigInt out;
  std::vector<uint32_t> q, r;
  DivModMagnitude(num.limbs_, den.limbs_, &q, &r);
  out.limbs_ = std::move(q);
  out.negative_ = num.negative_ != den.negative_;
  out.Normalize();
  return out;
}

Result<BigInt> BigInt::Remainder(const BigInt& num, const BigInt& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  BigInt out;
  std::vector<uint32_t> q, r;
  DivModMagnitude(num.limbs_, den.limbs_, &q, &r);
  out.limbs_ = std::move(r);
  out.negative_ = num.negative_;
  out.Normalize();
  return out;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exp) {
  BigInt result(1);
  BigInt b = base;
  while (exp > 0) {
    if (exp & 1) result *= b;
    b *= b;
    exp >>= 1;
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.IsZero()) {
    BigInt r = *Remainder(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

}  // namespace geopriv
