// Deterministic pseudo-random engines.
//
// The library needs reproducible randomness for tests, benches and the
// release algorithms (Algorithm 1 of the paper samples repeatedly).  We
// implement SplitMix64 (seeding / stream splitting) and Xoshiro256++ (the
// workhorse generator) from their public-domain reference definitions, so
// that no behavior depends on the standard library's unspecified engines.

#ifndef GEOPRIV_RNG_ENGINE_H_
#define GEOPRIV_RNG_ENGINE_H_

#include <array>
#include <cstdint>

namespace geopriv {

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++ 1.0 by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Satisfies the UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the 256-bit state by expanding `seed` through SplitMix64.
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Returns the next 64 pseudo-random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoublePositive() {
    return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Jump function: advances the state by 2^128 steps, equivalent to
  /// generating 2^128 outputs.  Used to create non-overlapping streams.
  void Jump();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_;
};

}  // namespace geopriv

#endif  // GEOPRIV_RNG_ENGINE_H_
