#include "rng/engine.h"

#ifdef __SIZEOF_INT128__
using geopriv_uint128 = unsigned __int128;
#endif

namespace geopriv {

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  geopriv_uint128 m = static_cast<geopriv_uint128>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<geopriv_uint128>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
#else
  // Classic rejection sampling fallback.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
#endif
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace geopriv
