#include "rng/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace geopriv {

// ---------------------------------------------------------------------------
// TwoSidedGeometricSampler
// ---------------------------------------------------------------------------

Result<TwoSidedGeometricSampler> TwoSidedGeometricSampler::Create(
    double alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    return Status::InvalidArgument(
        "two-sided geometric requires alpha in (0, 1)");
  }
  return TwoSidedGeometricSampler(alpha);
}

TwoSidedGeometricSampler::TwoSidedGeometricSampler(double alpha)
    : alpha_(alpha),
      log_alpha_(std::log(alpha)),
      mass_zero_((1.0 - alpha) / (1.0 + alpha)) {}

int64_t TwoSidedGeometricSampler::Sample(Xoshiro256& rng) const {
  // With probability (1-α)/(1+α) the noise is exactly 0.  Otherwise the
  // magnitude m >= 1 follows Pr[m = k] ∝ α^k (a shifted geometric) and the
  // sign is a fair coin.
  double u = rng.NextDouble();
  if (u < mass_zero_) return 0;
  double v = rng.NextDoublePositive();
  int64_t magnitude =
      1 + static_cast<int64_t>(std::floor(std::log(v) / log_alpha_));
  return (rng.Next() & 1) ? magnitude : -magnitude;
}

double TwoSidedGeometricSampler::Pmf(int64_t z) const {
  return mass_zero_ * std::pow(alpha_, static_cast<double>(std::llabs(z)));
}

double TwoSidedGeometricSampler::Cdf(int64_t z) const {
  if (z < 0) {
    return std::pow(alpha_, static_cast<double>(-z)) / (1.0 + alpha_);
  }
  return 1.0 -
         std::pow(alpha_, static_cast<double>(z + 1)) / (1.0 + alpha_);
}

// ---------------------------------------------------------------------------
// LaplaceSampler
// ---------------------------------------------------------------------------

Result<LaplaceSampler> LaplaceSampler::Create(double mu, double b) {
  if (!(b > 0.0) || !std::isfinite(b) || !std::isfinite(mu)) {
    return Status::InvalidArgument("Laplace requires finite mu and b > 0");
  }
  return LaplaceSampler(mu, b);
}

double LaplaceSampler::Sample(Xoshiro256& rng) const {
  // Inverse-CDF sampling from a uniform in (-1/2, 1/2].
  double u = rng.NextDoublePositive() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  return mu_ - b_ * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double LaplaceSampler::Pdf(double x) const {
  return std::exp(-std::abs(x - mu_) / b_) / (2.0 * b_);
}

double LaplaceSampler::Cdf(double x) const {
  if (x < mu_) return 0.5 * std::exp((x - mu_) / b_);
  return 1.0 - 0.5 * std::exp(-(x - mu_) / b_);
}

// ---------------------------------------------------------------------------
// DiscreteSampler
// ---------------------------------------------------------------------------

namespace {

Status ValidateWeights(const std::vector<double>& weights, double* total) {
  if (weights.empty()) {
    return Status::InvalidArgument("weight vector must be non-empty");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "weights must be finite and non-negative");
    }
    sum += w;
  }
  if (!(sum > 0.0)) {
    return Status::InvalidArgument("weights must have a positive sum");
  }
  *total = sum;
  return Status::OK();
}

}  // namespace

Result<DiscreteSampler> DiscreteSampler::Create(std::vector<double> weights) {
  double total = 0.0;
  GEOPRIV_RETURN_IF_ERROR(ValidateWeights(weights, &total));
  std::vector<double> probs(weights.size());
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    probs[i] = weights[i] / total;
    acc += probs[i];
    cdf[i] = acc;
  }
  cdf.back() = 1.0;  // guard against round-off leaving the tail short
  return DiscreteSampler(std::move(probs), std::move(cdf));
}

size_t DiscreteSampler::Sample(Xoshiro256& rng) const {
  double u = rng.NextDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

// ---------------------------------------------------------------------------
// AliasSampler (Vose's stable construction)
// ---------------------------------------------------------------------------

Result<AliasSampler> AliasSampler::Create(const std::vector<double>& weights) {
  double total = 0.0;
  GEOPRIV_RETURN_IF_ERROR(ValidateWeights(weights, &total));
  const size_t n = weights.size();
  // `prob` doubles as the scaled-weight work array: a small bucket's final
  // acceptance probability IS its scaled weight at pop time, and a large
  // bucket's residual lives in the same slot until it is popped, so the
  // Vose loop runs in place — no separate `scaled` copy.
  std::vector<double> prob;
  prob.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prob.push_back(weights[i] / total * static_cast<double>(n));
  }

  std::vector<uint32_t> alias(n, 0);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (prob[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    alias[s] = l;
    prob[l] = (prob[l] + prob[s]) - 1.0;
    (prob[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to round-off.
  for (uint32_t l : large) prob[l] = 1.0;
  for (uint32_t s : small) prob[s] = 1.0;

  return AliasSampler(std::move(prob), std::move(alias));
}

size_t AliasSampler::Sample(Xoshiro256& rng) const {
  size_t bucket = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace geopriv
