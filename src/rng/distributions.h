// Samplers for the distributions the paper's mechanisms need.
//
// * TwoSidedGeometricSampler — the noise of the α-geometric mechanism
//   (Definition 1 of the paper): Pr[Z=z] = (1-α)/(1+α) · α^|z|.
// * LaplaceSampler — the continuous analogue from Dwork et al. (TCC 2006),
//   used as a comparison baseline.
// * DiscreteSampler / AliasSampler — generic finite discrete distributions;
//   AliasSampler is Walker's alias method with Vose's O(n) construction and
//   O(1) per sample, used to sample mechanism rows.

#ifndef GEOPRIV_RNG_DISTRIBUTIONS_H_
#define GEOPRIV_RNG_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "rng/engine.h"
#include "util/result.h"
#include "util/status.h"

namespace geopriv {

/// Samples the two-sided geometric distribution
/// Pr[Z = z] = (1-α)/(1+α) · α^|z| for integer z, with α in (0, 1).
///
/// Sampling: |Z| is 0 with probability (1-α)/(1+α); otherwise |Z| is a
/// shifted geometric and the sign is a fair coin.  Implemented by inversion:
/// draw the positive/zero/negative region from a single uniform.
class TwoSidedGeometricSampler {
 public:
  /// Creates a sampler.  Fails unless 0 < alpha < 1 (alpha == 0 would be a
  /// point mass, alpha == 1 is not a distribution).
  static Result<TwoSidedGeometricSampler> Create(double alpha);

  /// Draws one noise value Z.
  int64_t Sample(Xoshiro256& rng) const;

  /// Pr[Z = z]; exact closed form.
  double Pmf(int64_t z) const;

  /// Pr[Z <= z]; exact closed form.
  double Cdf(int64_t z) const;

  double alpha() const { return alpha_; }

 private:
  explicit TwoSidedGeometricSampler(double alpha);

  double alpha_;
  double log_alpha_;
  double mass_zero_;  // (1-α)/(1+α)
};

/// Samples the Laplace distribution with density (1/2b)·exp(-|x-mu|/b).
class LaplaceSampler {
 public:
  /// Creates a sampler.  Fails unless scale b > 0.
  static Result<LaplaceSampler> Create(double mu, double b);

  /// Draws one value.
  double Sample(Xoshiro256& rng) const;

  /// Density at x.
  double Pdf(double x) const;

  /// Pr[X <= x].
  double Cdf(double x) const;

  double mu() const { return mu_; }
  double scale() const { return b_; }

 private:
  LaplaceSampler(double mu, double b) : mu_(mu), b_(b) {}

  double mu_;
  double b_;
};

/// Samples a finite discrete distribution by CDF inversion (binary search).
/// O(log n) per sample; construction validates the weight vector.
class DiscreteSampler {
 public:
  /// Creates a sampler over {0, ..., weights.size()-1}.  Weights must be
  /// non-negative, finite, and sum to a positive value; they are normalized
  /// internally.
  static Result<DiscreteSampler> Create(std::vector<double> weights);

  /// Draws one index.
  size_t Sample(Xoshiro256& rng) const;

  /// Normalized probability of index i.
  double Probability(size_t i) const { return probs_[i]; }

  size_t size() const { return probs_.size(); }

 private:
  explicit DiscreteSampler(std::vector<double> probs,
                           std::vector<double> cdf)
      : probs_(std::move(probs)), cdf_(std::move(cdf)) {}

  std::vector<double> probs_;
  std::vector<double> cdf_;
};

/// Walker/Vose alias method: O(n) construction, O(1) per sample.
/// Preferred when many samples are drawn from the same row.
class AliasSampler {
 public:
  /// Creates a sampler over {0, ..., weights.size()-1}.  Same validity
  /// requirements as DiscreteSampler.
  static Result<AliasSampler> Create(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Xoshiro256& rng) const;

  size_t size() const { return prob_.size(); }

  /// The Vose tables, exposed so the batched kernel (rng/batch_sampler.h)
  /// can quantize them once instead of re-running the construction.
  const std::vector<double>& probabilities() const { return prob_; }
  const std::vector<uint32_t>& aliases() const { return alias_; }

 private:
  AliasSampler(std::vector<double> prob, std::vector<uint32_t> alias)
      : prob_(std::move(prob)), alias_(std::move(alias)) {}

  std::vector<double> prob_;     // acceptance probability per bucket
  std::vector<uint32_t> alias_;  // fallback index per bucket
};

}  // namespace geopriv

#endif  // GEOPRIV_RNG_DISTRIBUTIONS_H_
