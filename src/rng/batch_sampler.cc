#include "rng/batch_sampler.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "rng/engine.h"

// The AVX2 backend mirrors Lemire's __int128 bounded draw from
// rng/engine.cc; without __int128 the scalar path takes the classic
// rejection branch and the mirrored sequence would diverge, so the
// vector backend is only built where both halves agree.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    defined(__SIZEOF_INT128__)
#define GEOPRIV_BATCH_AVX2 1
#include <immintrin.h>
#endif

namespace geopriv {

namespace {

SampleBackend ResolveBackend() {
  const char* force = std::getenv("GEOPRIV_FORCE_SCALAR");
  const bool forced =
      force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0');
  if (forced) return SampleBackend::kScalar;
  if (Avx512Available()) return SampleBackend::kAvx512;
  if (Avx2Available()) return SampleBackend::kAvx2;
  return SampleBackend::kScalar;
}

std::atomic<int> g_backend{-1};

}  // namespace

bool Avx2Available() {
#ifdef GEOPRIV_BATCH_AVX2
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2;
#else
  return false;
#endif
}

bool Avx512Available() {
#ifdef GEOPRIV_BATCH_AVX2
  // F for the 512-bit lanes, gathers and rotates; DQ for vpmullq (the
  // native 64-bit multiply that SplitMix64 seeding leans on).
  static const bool avx512 = __builtin_cpu_supports("avx512f") &&
                             __builtin_cpu_supports("avx512dq");
  return avx512;
#else
  return false;
#endif
}

SampleBackend ActiveSampleBackend() {
  int backend = g_backend.load(std::memory_order_acquire);
  if (backend < 0) {
    backend = static_cast<int>(ResolveBackend());
    g_backend.store(backend, std::memory_order_release);
  }
  return static_cast<SampleBackend>(backend);
}

void RefreshSampleBackend() {
  g_backend.store(static_cast<int>(ResolveBackend()),
                  std::memory_order_release);
}

AliasTable AliasTable::FromSampler(const AliasSampler& sampler) {
  const std::vector<double>& prob = sampler.probabilities();
  const std::vector<uint32_t>& alias = sampler.aliases();
  AliasTable table;
  const size_t n = prob.size();
  table.size_ = static_cast<uint32_t>(n);
  table.table_.resize(2 * n);
  for (size_t i = 0; i < n; ++i) {
    // ceil(prob * 2^53): the exact integer form of the scalar acceptance
    // test (header comment).  prob == 1.0 lands on 2^53, above every
    // 53-bit uniform, so full buckets always accept — as in the scalar
    // path, whose compare (u * 2^-53 < 1.0) also always holds.
    table.table_[2 * i] =
        static_cast<uint64_t>(std::ceil(prob[i] * 0x1.0p53));
    table.table_[2 * i + 1] = alias[i];
  }
  if (n > 0) {
    const uint64_t bound = static_cast<uint64_t>(n);
    table.reject_threshold_ = (0 - bound) % bound;
  }
  return table;
}

Result<AliasTable> AliasTable::FromWeights(
    const std::vector<double>& weights) {
  GEOPRIV_ASSIGN_OR_RETURN(AliasSampler sampler,
                           AliasSampler::Create(weights));
  return FromSampler(sampler);
}

void AliasTable::SampleBatch(const uint64_t* seeds, size_t count,
                             int32_t* out, SampleBackend backend) const {
  SampleRuns(seeds, /*counts=*/nullptr, /*offsets=*/nullptr, count, out,
             backend);
}

void AliasTable::SampleRuns(const uint64_t* seeds, const int32_t* counts,
                            const size_t* offsets, size_t count,
                            int32_t* out, SampleBackend backend) const {
  if (size_ == 0 || count == 0) return;
#ifdef GEOPRIV_BATCH_AVX2
  if (backend == SampleBackend::kAvx512 && Avx512Available() &&
      counts == nullptr) {
    SampleBatchAvx512(seeds, count, out);
    return;
  }
  // kAvx512 with ragged per-lane counts, or requested-but-unavailable
  // width, degrades to the AVX2 loop — bit-identical by contract.
  if (backend != SampleBackend::kScalar && Avx2Available()) {
    SampleRunsAvx2(seeds, counts, offsets, count, out);
    return;
  }
#else
  (void)backend;
#endif
  SampleRunsScalar(seeds, counts, offsets, count, out);
}

void AliasTable::SampleRunsScalar(const uint64_t* seeds,
                                  const int32_t* counts,
                                  const size_t* offsets, size_t count,
                                  int32_t* out) const {
  // The oracle: per lane, exactly what AliasSampler::Sample does on a
  // fresh per-request stream — NextBounded via the engine itself, the
  // acceptance via the quantized-threshold compare (provably the same
  // branch the double compare takes).
  for (size_t k = 0; k < count; ++k) {
    Xoshiro256 rng(seeds[k]);
    int32_t* dst = out + (offsets != nullptr ? offsets[k] : k);
    const int32_t reps = counts != nullptr ? counts[k] : 1;
    for (int32_t j = 0; j < reps; ++j) {
      const uint64_t bucket = rng.NextBounded(size_);
      const uint64_t u = rng.Next() >> 11;
      const uint64_t* cell = table_.data() + 2 * bucket;
      dst[j] = u < cell[0] ? static_cast<int32_t>(bucket)
                           : static_cast<int32_t>(cell[1]);
    }
  }
}

#ifdef GEOPRIV_BATCH_AVX2

namespace {

// Scalar Xoshiro256++ step over raw state words, for the (essentially
// never taken) per-lane Lemire rejection fix-up.  Must match
// Xoshiro256::Next in rng/engine.h bit for bit.
inline uint64_t ScalarRotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline uint64_t ScalarStep(uint64_t s[4]) {
  const uint64_t result = ScalarRotl(s[0] + s[3], 23) + s[0];
  const uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = ScalarRotl(s[3], 45);
  return result;
}

__attribute__((target("avx2"))) inline __m256i Rotl64(__m256i v, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(v, k),
                         _mm256_srli_epi64(v, 64 - k));
}

/// Lane-wise low 64 bits of a 64x64 multiply (AVX2 has no vpmullq):
/// alo*blo + ((alo*bhi + ahi*blo) << 32).
__attribute__((target("avx2"))) inline __m256i Mul64Lo(__m256i a,
                                                       __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Four independent Xoshiro256++ streams in structure-of-arrays form:
/// sN holds state word N of all four lanes.
struct VecXoshiro {
  __m256i s0, s1, s2, s3;
};

/// SplitMix64 seed expansion, lane-parallel; must match SplitMix64 in
/// rng/engine.h bit for bit.
__attribute__((target("avx2"))) inline VecXoshiro SeedLanes(
    __m256i seeds) {
  const __m256i golden =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i mix1 =
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i mix2 =
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  __m256i state = seeds;
  __m256i word[4];
  for (int j = 0; j < 4; ++j) {
    state = _mm256_add_epi64(state, golden);
    __m256i z = state;
    z = Mul64Lo(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), mix1);
    z = Mul64Lo(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), mix2);
    word[j] = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
  }
  return {word[0], word[1], word[2], word[3]};
}

/// Lane-parallel Xoshiro256++ Next; must match Xoshiro256::Next.
__attribute__((target("avx2"))) inline __m256i VecNext(VecXoshiro& v) {
  const __m256i result =
      _mm256_add_epi64(Rotl64(_mm256_add_epi64(v.s0, v.s3), 23), v.s0);
  const __m256i t = _mm256_slli_epi64(v.s1, 17);
  v.s2 = _mm256_xor_si256(v.s2, v.s0);
  v.s3 = _mm256_xor_si256(v.s3, v.s1);
  v.s1 = _mm256_xor_si256(v.s1, v.s2);
  v.s0 = _mm256_xor_si256(v.s0, v.s3);
  v.s2 = _mm256_xor_si256(v.s2, t);
  v.s3 = Rotl64(v.s3, 45);
  return result;
}

/// The vector constants every draw needs, hoisted once per kernel call.
struct DrawConsts {
  const long long* table;
  __m256i bound;
  __m256i sign;
  __m256i low32;
  __m256i one;
  uint64_t reject_threshold;
  uint32_t size;
};

/// The Lemire bounded draw for four lanes: bucket = hi64(x * size),
/// size < 2^32, so the 128-bit product reduces to two 32x32 multiplies
/// per lane.  Returns the rejection mask (nonzero lanes need the scalar
/// fix-up — probability size/2^64 per lane).
__attribute__((target("avx2"))) inline __m256i BoundedDraw(
    VecXoshiro& rng, const DrawConsts& c, __m256i* lo, __m256i* bucket) {
  const __m256i x = VecNext(rng);
  const __m256i t = _mm256_mul_epu32(x, c.bound);
  const __m256i mid = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(x, 32), c.bound),
      _mm256_srli_epi64(t, 32));
  *bucket = _mm256_srli_epi64(mid, 32);
  *lo = _mm256_or_si256(_mm256_slli_epi64(mid, 32),
                        _mm256_and_si256(t, c.low32));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(c.bound, c.sign),
                            _mm256_xor_si256(*lo, c.sign));
}

/// Finishes rejecting lanes with the scalar redraw loop on the lane's
/// own extracted state, so the redraw sequence is the scalar sequence
/// by construction.  Cold by design; never inlined into the hot loop.
__attribute__((target("avx2"), noinline)) void FixupRejectedLanes(
    VecXoshiro& rng, const DrawConsts& c, __m256i lo, __m256i* bucket) {
  alignas(32) uint64_t s0[4], s1[4], s2[4], s3[4], lo4[4], b4[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(s0), rng.s0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(s1), rng.s1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(s2), rng.s2);
  _mm256_store_si256(reinterpret_cast<__m256i*>(s3), rng.s3);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo4), lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(b4), *bucket);
  for (int lane = 0; lane < 4; ++lane) {
    if (lo4[lane] >= static_cast<uint64_t>(c.size)) continue;
    uint64_t st[4] = {s0[lane], s1[lane], s2[lane], s3[lane]};
    uint64_t l64 = lo4[lane];
    while (l64 < c.reject_threshold) {
      const unsigned __int128 m =
          static_cast<unsigned __int128>(ScalarStep(st)) * c.size;
      l64 = static_cast<uint64_t>(m);
      b4[lane] = static_cast<uint64_t>(m >> 64);
    }
    s0[lane] = st[0];
    s1[lane] = st[1];
    s2[lane] = st[2];
    s3[lane] = st[3];
  }
  rng.s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(s0));
  rng.s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(s1));
  rng.s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(s2));
  rng.s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(s3));
  *bucket = _mm256_load_si256(reinterpret_cast<const __m256i*>(b4));
}

/// The quantized-threshold acceptance for four lanes: two adjacent
/// 8-byte gathers fetch each lane's {threshold, alias} pair; both the
/// threshold and the 53-bit uniform fit in 62 bits, so the signed
/// compare is exact.  (Four contiguous 128-bit pair loads + unpacks
/// were measured slower than the gathers on Skylake-class cores — the
/// store-forward of the bucket indices serializes what the gather unit
/// pipelines.)
__attribute__((target("avx2"))) inline __m256i AcceptDraw(
    VecXoshiro& rng, const DrawConsts& c, __m256i bucket) {
  const __m256i u = _mm256_srli_epi64(VecNext(rng), 11);
  const __m256i idx = _mm256_slli_epi64(bucket, 1);
  const __m256i thresh = _mm256_i64gather_epi64(c.table, idx, 8);
  const __m256i alias =
      _mm256_i64gather_epi64(c.table, _mm256_add_epi64(idx, c.one), 8);
  const __m256i accept = _mm256_cmpgt_epi64(thresh, u);
  return _mm256_blendv_epi8(alias, bucket, accept);
}

/// One draw for four lanes: bounded bucket, fix-up, acceptance.
__attribute__((target("avx2"))) inline __m256i DrawVec(
    VecXoshiro& rng, const DrawConsts& c) {
  __m256i lo, bucket;
  const __m256i reject = BoundedDraw(rng, c, &lo, &bucket);
  if (__builtin_expect(_mm256_movemask_epi8(reject) != 0, 0)) {
    FixupRejectedLanes(rng, c, lo, &bucket);
  }
  return AcceptDraw(rng, c, bucket);
}

}  // namespace

__attribute__((target("avx2")))
void AliasTable::SampleRunsAvx2(const uint64_t* seeds,
                                const int32_t* counts,
                                const size_t* offsets, size_t count,
                                int32_t* out) const {
  DrawConsts c;
  c.table = reinterpret_cast<const long long*>(table_.data());
  c.bound = _mm256_set1_epi64x(static_cast<long long>(size_));
  c.sign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  c.low32 = _mm256_set1_epi64x(0xffffffffLL);
  c.one = _mm256_set1_epi64x(1);
  c.reject_threshold = reject_threshold_;
  c.size = size_;
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);

  size_t k = 0;
  if (counts == nullptr) {
    // Single-draw batches (the columnar plane's common case): three
    // 4-lane chunks interleaved per iteration.  Seeding is the bulk of
    // a one-draw lane's work and is a chain of dependent vector ops;
    // independent chains keep the multiply ports busy through each
    // other's latency bubbles.
    for (; k + 12 <= count; k += 12) {
      VecXoshiro rng_a = SeedLanes(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(seeds + k)));
      VecXoshiro rng_b = SeedLanes(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(seeds + k + 4)));
      VecXoshiro rng_c = SeedLanes(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(seeds + k + 8)));
      __m256i lo_a, lo_b, lo_c, bucket_a, bucket_b, bucket_c;
      const __m256i rej_a = BoundedDraw(rng_a, c, &lo_a, &bucket_a);
      const __m256i rej_b = BoundedDraw(rng_b, c, &lo_b, &bucket_b);
      const __m256i rej_c = BoundedDraw(rng_c, c, &lo_c, &bucket_c);
      // One branch decides all twelve lanes: the combined mask is still
      // ~never set, and folding the three checks keeps the hot path one
      // straight-line scheduling region.
      const __m256i rej =
          _mm256_or_si256(_mm256_or_si256(rej_a, rej_b), rej_c);
      if (__builtin_expect(_mm256_movemask_epi8(rej) != 0, 0)) {
        FixupRejectedLanes(rng_a, c, lo_a, &bucket_a);
        FixupRejectedLanes(rng_b, c, lo_b, &bucket_b);
        FixupRejectedLanes(rng_c, c, lo_c, &bucket_c);
      }
      const __m256i result_a = AcceptDraw(rng_a, c, bucket_a);
      const __m256i result_b = AcceptDraw(rng_b, c, bucket_b);
      const __m256i result_c = AcceptDraw(rng_c, c, bucket_c);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + k),
          _mm256_castsi256_si128(
              _mm256_permutevar8x32_epi32(result_a, pack)));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + k + 4),
          _mm256_castsi256_si128(
              _mm256_permutevar8x32_epi32(result_b, pack)));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + k + 8),
          _mm256_castsi256_si128(
              _mm256_permutevar8x32_epi32(result_c, pack)));
    }
  }
  for (; k + 4 <= count; k += 4) {
    VecXoshiro rng = SeedLanes(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(seeds + k)));
    int32_t reps[4] = {1, 1, 1, 1};
    int32_t max_reps = 1;
    if (counts != nullptr) {
      for (int lane = 0; lane < 4; ++lane) {
        reps[lane] = counts[k + static_cast<size_t>(lane)];
        if (reps[lane] > max_reps) max_reps = reps[lane];
      }
    }
    for (int32_t draw = 0; draw < max_reps; ++draw) {
      const __m256i result = DrawVec(rng, c);
      if (counts == nullptr) {
        // One draw per lane: pack the four i64 lanes to i32 and store.
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(out + k),
            _mm256_castsi256_si128(
                _mm256_permutevar8x32_epi32(result, pack)));
      } else {
        alignas(32) int64_t res4[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(res4), result);
        for (int lane = 0; lane < 4; ++lane) {
          // Lanes past their own count keep drawing (streams are
          // per-lane, the extra values are simply not stored).
          if (draw < reps[lane]) {
            out[offsets[k + static_cast<size_t>(lane)] +
                static_cast<size_t>(draw)] =
                static_cast<int32_t>(res4[lane]);
          }
        }
      }
    }
  }
  if (k < count) {
    SampleRunsScalar(seeds + k, counts != nullptr ? counts + k : nullptr,
                     offsets != nullptr ? offsets + k : nullptr, count - k,
                     counts != nullptr ? out : out + k);
  }
}

// --- AVX-512 backend -------------------------------------------------
//
// Same three stages as the AVX2 kernel, twice the lanes, and the two
// instructions AVX2 must emulate come native: vpmullq (64-bit multiply,
// the heart of SplitMix64 seeding — 1 instruction vs a 6-op cross-term
// dance) and vprolq (rotate, vs shift/shift/or).  Rejection and
// acceptance decisions land in mask registers, so the unsigned compares
// need no sign-flip trick and the never-taken fix-up branch is a single
// kortest.  Bit-identity with the scalar oracle holds lane-for-lane by
// the same arguments as the AVX2 backend (header comment).

namespace {

/// Eight independent Xoshiro256++ streams, one state word per vector.
struct VecXoshiro512 {
  __m512i s0, s1, s2, s3;
};

#define GEOPRIV_AVX512 __attribute__((target("avx512f,avx512dq")))

/// SplitMix64 seed expansion, eight lanes; must match SplitMix64 in
/// rng/engine.h bit for bit.
GEOPRIV_AVX512 inline VecXoshiro512 SeedLanes512(__m512i seeds) {
  const __m512i golden =
      _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m512i mix1 =
      _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m512i mix2 =
      _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL));
  __m512i state = seeds;
  __m512i word[4];
  for (int j = 0; j < 4; ++j) {
    state = _mm512_add_epi64(state, golden);
    __m512i z = state;
    z = _mm512_mullo_epi64(
        _mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), mix1);
    z = _mm512_mullo_epi64(
        _mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), mix2);
    word[j] = _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
  }
  return {word[0], word[1], word[2], word[3]};
}

/// Lane-parallel Xoshiro256++ Next; must match Xoshiro256::Next.
GEOPRIV_AVX512 inline __m512i VecNext512(VecXoshiro512& v) {
  const __m512i result = _mm512_add_epi64(
      _mm512_rol_epi64(_mm512_add_epi64(v.s0, v.s3), 23), v.s0);
  const __m512i t = _mm512_slli_epi64(v.s1, 17);
  v.s2 = _mm512_xor_si512(v.s2, v.s0);
  v.s3 = _mm512_xor_si512(v.s3, v.s1);
  v.s1 = _mm512_xor_si512(v.s1, v.s2);
  v.s0 = _mm512_xor_si512(v.s0, v.s3);
  v.s2 = _mm512_xor_si512(v.s2, t);
  v.s3 = _mm512_rol_epi64(v.s3, 45);
  return result;
}

struct DrawConsts512 {
  const long long* table;
  __m512i bound;
  __m512i low32;
  __m512i one;
  uint64_t reject_threshold;
  uint32_t size;
};

/// Lemire bounded draw, eight lanes.  Returns the mask of lanes whose
/// low product word fell under size (candidates for the scalar fix-up;
/// probability size/2^64 per lane).
GEOPRIV_AVX512 inline __mmask8 BoundedDraw512(VecXoshiro512& rng,
                                              const DrawConsts512& c,
                                              __m512i* lo,
                                              __m512i* bucket) {
  const __m512i x = VecNext512(rng);
  const __m512i t = _mm512_mul_epu32(x, c.bound);
  const __m512i mid = _mm512_add_epi64(
      _mm512_mul_epu32(_mm512_srli_epi64(x, 32), c.bound),
      _mm512_srli_epi64(t, 32));
  *bucket = _mm512_srli_epi64(mid, 32);
  *lo = _mm512_or_si512(_mm512_slli_epi64(mid, 32),
                        _mm512_and_si512(t, c.low32));
  return _mm512_cmplt_epu64_mask(*lo, c.bound);
}

/// Scalar redraw for flagged lanes on each lane's own extracted state —
/// identical policy to the AVX2 fix-up, eight lanes wide.
GEOPRIV_AVX512 __attribute__((noinline)) void FixupRejectedLanes512(
    VecXoshiro512& rng, const DrawConsts512& c, __m512i lo,
    __m512i* bucket) {
  alignas(64) uint64_t s0[8], s1[8], s2[8], s3[8], lo8[8], b8[8];
  _mm512_store_si512(reinterpret_cast<void*>(s0), rng.s0);
  _mm512_store_si512(reinterpret_cast<void*>(s1), rng.s1);
  _mm512_store_si512(reinterpret_cast<void*>(s2), rng.s2);
  _mm512_store_si512(reinterpret_cast<void*>(s3), rng.s3);
  _mm512_store_si512(reinterpret_cast<void*>(lo8), lo);
  _mm512_store_si512(reinterpret_cast<void*>(b8), *bucket);
  for (int lane = 0; lane < 8; ++lane) {
    if (lo8[lane] >= static_cast<uint64_t>(c.size)) continue;
    uint64_t st[4] = {s0[lane], s1[lane], s2[lane], s3[lane]};
    uint64_t l64 = lo8[lane];
    while (l64 < c.reject_threshold) {
      const unsigned __int128 m =
          static_cast<unsigned __int128>(ScalarStep(st)) * c.size;
      l64 = static_cast<uint64_t>(m);
      b8[lane] = static_cast<uint64_t>(m >> 64);
    }
    s0[lane] = st[0];
    s1[lane] = st[1];
    s2[lane] = st[2];
    s3[lane] = st[3];
  }
  rng.s0 = _mm512_load_si512(reinterpret_cast<const void*>(s0));
  rng.s1 = _mm512_load_si512(reinterpret_cast<const void*>(s1));
  rng.s2 = _mm512_load_si512(reinterpret_cast<const void*>(s2));
  rng.s3 = _mm512_load_si512(reinterpret_cast<const void*>(s3));
  *bucket = _mm512_load_si512(reinterpret_cast<const void*>(b8));
}

/// Quantized-threshold acceptance, eight lanes: two adjacent 8-byte
/// gathers per lane pair, unsigned mask compare, mask blend.
GEOPRIV_AVX512 inline __m512i AcceptDraw512(VecXoshiro512& rng,
                                            const DrawConsts512& c,
                                            __m512i bucket) {
  const __m512i u = _mm512_srli_epi64(VecNext512(rng), 11);
  const __m512i idx = _mm512_slli_epi64(bucket, 1);
  const __m512i thresh = _mm512_i64gather_epi64(idx, c.table, 8);
  const __m512i alias =
      _mm512_i64gather_epi64(_mm512_add_epi64(idx, c.one), c.table, 8);
  const __mmask8 accept = _mm512_cmplt_epu64_mask(u, thresh);
  return _mm512_mask_blend_epi64(accept, alias, bucket);
}

}  // namespace

GEOPRIV_AVX512
void AliasTable::SampleBatchAvx512(const uint64_t* seeds, size_t count,
                                   int32_t* out) const {
  DrawConsts512 c;
  c.table = reinterpret_cast<const long long*>(table_.data());
  c.bound = _mm512_set1_epi64(static_cast<long long>(size_));
  c.low32 = _mm512_set1_epi64(0xffffffffLL);
  c.one = _mm512_set1_epi64(1);
  c.reject_threshold = reject_threshold_;
  c.size = size_;

  size_t k = 0;
  // Two interleaved 8-lane chunks per iteration: the seeding chain is
  // still latency-bound (vpmullq is high-latency even where native), so
  // a second independent chain fills its bubbles.  One fused kortest
  // decides all sixteen lanes' (essentially never taken) fix-up branch.
  for (; k + 16 <= count; k += 16) {
    VecXoshiro512 rng_a = SeedLanes512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(seeds + k)));
    VecXoshiro512 rng_b = SeedLanes512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(seeds + k + 8)));
    __m512i lo_a, lo_b, bucket_a, bucket_b;
    const __mmask8 rej_a = BoundedDraw512(rng_a, c, &lo_a, &bucket_a);
    const __mmask8 rej_b = BoundedDraw512(rng_b, c, &lo_b, &bucket_b);
    if (__builtin_expect(
            (static_cast<unsigned>(rej_a) | static_cast<unsigned>(rej_b)) !=
                0,
            0)) {
      FixupRejectedLanes512(rng_a, c, lo_a, &bucket_a);
      FixupRejectedLanes512(rng_b, c, lo_b, &bucket_b);
    }
    const __m512i result_a = AcceptDraw512(rng_a, c, bucket_a);
    const __m512i result_b = AcceptDraw512(rng_b, c, bucket_b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm512_cvtepi64_epi32(result_a));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 8),
                        _mm512_cvtepi64_epi32(result_b));
  }
  for (; k + 8 <= count; k += 8) {
    VecXoshiro512 rng = SeedLanes512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(seeds + k)));
    __m512i lo, bucket;
    const __mmask8 rej = BoundedDraw512(rng, c, &lo, &bucket);
    if (__builtin_expect(rej != 0, 0)) {
      FixupRejectedLanes512(rng, c, lo, &bucket);
    }
    const __m512i result = AcceptDraw512(rng, c, bucket);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm512_cvtepi64_epi32(result));
  }
  if (k < count) {
    SampleRunsScalar(seeds + k, /*counts=*/nullptr, /*offsets=*/nullptr,
                     count - k, out + k);
  }
}

#undef GEOPRIV_AVX512

#endif  // GEOPRIV_BATCH_AVX2

}  // namespace geopriv
